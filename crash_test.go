package mapsim_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"github.com/maps-sim/mapsim"
)

// buildMapsd compiles the real daemon binary once per test run — the
// crash drill needs a process it can SIGKILL, not an in-process server.
func buildMapsd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mapsd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/mapsd")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/mapsd: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// startMapsd launches the daemon and waits for /healthz.
func startMapsd(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

func waitHealthy(t *testing.T, baseURL string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", baseURL)
}

// scrapeMetric reads one integer-valued metric from /metrics.
func scrapeMetric(t *testing.T, baseURL, name string) (int, bool) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false
	}
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindSubmatch(body)
	if m == nil {
		return 0, false
	}
	n, err := strconv.Atoi(string(m[1]))
	if err != nil {
		return 0, false
	}
	return n, true
}

// TestCrashRecoverySIGKILL is the issue's acceptance drill: a daemon
// SIGKILLed mid-sweep and restarted on the same -journal-dir and
// -store-dir recovers the sweep from its journal, finishes it without
// re-simulating any journaled-and-stored point, keeps the sweep ID
// stable so a live watch client reattaches across the restart, and
// produces a result byte-identical to an uninterrupted run.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash drill skipped in -short mode")
	}
	bin := buildMapsd(t)
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	sdir := filepath.Join(dir, "store")
	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	addr := fmt.Sprintf("127.0.0.1:%d", port)

	daemonArgs := []string{
		"-addr", addr, "-workers", "1",
		"-journal-dir", jdir, "-store-dir", sdir,
	}
	d1 := startMapsd(t, bin, daemonArgs...)
	waitHealthy(t, base)

	c := mapsim.NewClient(base)
	c.PollInterval = 10 * time.Millisecond
	ctx := context.Background()

	// One worker and eight multi-million-instruction points: slow
	// enough that the kill lands mid-sweep with completed points on
	// both sides of it.
	req := mapsim.SweepRequest{
		Base: mapsim.ConfigSpec{Instructions: 5_000_000, Speculation: true},
		Axes: mapsim.SweepAxes{
			Benchmarks: []string{"fft", "canneal"},
			Meta:       mapsim.SweepIntAxis{Points: []mapsim.ByteSize{16 << 10, 32 << 10, 64 << 10, 128 << 10}},
		},
	}
	st, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	id, total := st.ID, st.Total

	// A live watcher with a generous reconnect budget: it must ride
	// out the kill-and-restart window and still see the terminal line.
	watcher := mapsim.NewClient(base)
	watcher.MaxRetries = 40
	watcher.RetryBase = 50 * time.Millisecond
	watcher.PollInterval = 20 * time.Millisecond
	watchDone := make(chan mapsim.SweepStatus, 1)
	watchErr := make(chan error, 1)
	go func() {
		fin, err := watcher.SweepProgress(ctx, id, nil)
		if err != nil {
			watchErr <- err
			return
		}
		watchDone <- fin
	}()

	// Wait for ≥2 completed points, then for the store to flush them,
	// so the journal and disk tier agree on what the kill preserves.
	var progressed int
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		cur, err := c.SweepStatus(ctx, id)
		if err == nil && cur.Done >= 2 {
			progressed = cur.Done
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if progressed < 2 {
		t.Fatal("sweep made no progress before the kill")
	}
	for time.Now().Before(deadline) {
		if n, ok := scrapeMetric(t, base, "mapsd_store_pending_writes"); ok && n == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := d1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d1.Wait()

	startMapsd(t, bin, daemonArgs...)
	waitHealthy(t, base)
	if n, ok := scrapeMetric(t, base, "mapsd_sweeps_recovered_total"); !ok || n != 1 {
		t.Fatalf("mapsd_sweeps_recovered_total = %d (found %v), want 1", n, ok)
	}

	// Reattach by the original ID and run the sweep to completion.
	res, err := c.ResumeSweep(ctx, id, nil)
	if err != nil {
		t.Fatalf("ResumeSweep after SIGKILL: %v", err)
	}
	if len(res.Points) != total {
		t.Fatalf("recovered result has %d points, want %d", len(res.Points), total)
	}
	final, err := c.SweepStatus(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if final.Done != total {
		t.Fatalf("recovered sweep finished %d/%d", final.Done, total)
	}
	// Zero duplicate simulations: every point the restarted daemon's
	// pool ran is one the journal did not already account for.
	if final.Deduped < progressed {
		t.Fatalf("Deduped = %d, want >= %d journaled points", final.Deduped, progressed)
	}
	if n, ok := scrapeMetric(t, base, "mapsd_jobs_submitted_total"); !ok || n != total-final.Deduped {
		t.Fatalf("restart daemon simulated %d points, want %d", n, total-final.Deduped)
	}

	// The pre-kill watcher reattached on its own and saw the end.
	select {
	case fin := <-watchDone:
		if fin.State != mapsim.JobDone || fin.Done != total {
			t.Fatalf("watcher terminal status: %+v", fin)
		}
	case err := <-watchErr:
		t.Fatalf("watch stream did not survive the restart: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("watcher never saw the terminal status")
	}

	// Byte-identity against an uninterrupted run on a fresh daemon.
	dir2 := t.TempDir()
	port2 := freePort(t)
	base2 := fmt.Sprintf("http://127.0.0.1:%d", port2)
	startMapsd(t, bin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port2), "-workers", "2",
		"-journal-dir", filepath.Join(dir2, "journal"),
		"-store-dir", filepath.Join(dir2, "store"))
	waitHealthy(t, base2)
	ref := mapsim.NewClient(base2)
	ref.PollInterval = 10 * time.Millisecond
	refRes, err := ref.RunSweepRemote(ctx, req, nil)
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	if got, want := sanitizeSweep(t, res), sanitizeSweep(t, refRes); string(got) != string(want) {
		t.Fatalf("recovered result differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// The finished journal is cleaned up on the next startup pass, and
	// nothing was quarantined along the way.
	if ents, err := os.ReadDir(filepath.Join(jdir, "quarantine")); err == nil && len(ents) > 0 {
		t.Fatalf("%d journals quarantined during a clean recovery", len(ents))
	}
}
