package mapsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/maps-sim/mapsim"
	"github.com/maps-sim/mapsim/internal/fleet"
	"github.com/maps-sim/mapsim/internal/server"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// fleetDaemon starts one in-process mapsd and hands back its server
// plus the HTTP listener (so tests can kill a worker mid-sweep by
// closing it). A non-empty fleet makes it a coordinator: its single
// pool worker keeps the straggler deadline short so a point stuck
// behind a busy local pool re-issues to a remote in test time.
func fleetDaemon(t *testing.T, workers []fleet.Worker) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg := server.Config{Workers: 2, QueueDepth: 32}
	if len(workers) > 0 {
		cfg.Workers = 1
		cfg.Fleet = workers
		// Long enough that a healthy remote point (tens of ms under the
		// race detector) never re-issues spuriously, short enough that
		// the point stuck behind the blocked local pool travels in test
		// time.
		cfg.FleetStragglerAfter = 500 * time.Millisecond
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

// fleetWorkerFor adapts a daemon URL as a sweep worker with test-speed
// client knobs: fast polling, one quick retry so a killed worker is
// written off in milliseconds, not seconds.
func fleetWorkerFor(url string) fleet.Worker {
	c := mapsim.NewClient(url)
	c.PollInterval = 5 * time.Millisecond
	c.MaxRetries = 1
	c.RetryBase = 10 * time.Millisecond
	return mapsim.FleetWorker(c, 2)
}

// blockPool submits a job big enough to never finish, waits until it
// occupies the daemon's only pool worker, and returns a cancel func.
// With the local pool saturated, a coordinator's sweep points can only
// complete on remote workers — deterministic fan-out even on one CPU.
func blockPool(t *testing.T, c *mapsim.Client) func() {
	t.Helper()
	ctx := context.Background()
	st, err := c.Submit(ctx, mapsim.JobRequest{
		Type:   mapsim.JobRun,
		Config: mapsim.ConfigSpec{Benchmark: "canneal", Instructions: 1 << 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == mapsim.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker job stuck in state %s", j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return func() { c.Cancel(ctx, st.ID) }
}

// fleetSweepRequest is the shared 8-point grid: 2 benchmarks × 2 meta
// sizes × 2 content policies. Parallelism 1 bounds the coordinator's
// local lane to one slot.
func fleetSweepRequest() mapsim.SweepRequest {
	return mapsim.SweepRequest{
		Base: mapsim.ConfigSpec{Instructions: 60_000},
		Axes: mapsim.SweepAxes{
			Benchmarks: []string{"canneal", "libquantum"},
			Meta:       mapsim.SweepIntAxis{Points: []mapsim.ByteSize{16 << 10, 64 << 10}},
			Contents:   []string{"counters", "all"},
		},
		Parallelism: 1,
	}
}

// sanitizeSweep strips the host-time and attribution fields that
// legitimately differ between runs, leaving only simulation substance;
// the remainder must be byte-identical across fleet shapes.
func sanitizeSweep(t *testing.T, res *mapsim.SweepResult) []byte {
	t.Helper()
	cp := *res
	cp.Wall = 0
	cp.Deduped = 0
	cp.Points = append([]sweep.PointResult(nil), res.Points...)
	for i := range cp.Points {
		cp.Points[i].Worker = ""
		cp.Points[i].Cached = false
		if cp.Points[i].Result != nil {
			r := *cp.Points[i].Result
			r.Timing = sim.PhaseTiming{}
			cp.Points[i].Result = &r
		}
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetSweepByteIdenticalToSingleDaemon is the acceptance path: the
// same sweep through a coordinator fanning out to two worker daemons
// must produce byte-identical results to one standalone daemon, with
// every grid point simulated exactly once across the whole fleet.
func TestFleetSweepByteIdenticalToSingleDaemon(t *testing.T) {
	ctx := context.Background()
	req := fleetSweepRequest()

	// Reference: one standalone daemon.
	srvSingle, tsSingle := fleetDaemon(t, nil)
	cSingle := mapsim.NewClient(tsSingle.URL)
	cSingle.PollInterval = 5 * time.Millisecond
	single, err := cSingle.RunSweepRemote(ctx, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if single.Done != 8 || single.Deduped != 0 {
		t.Fatalf("single-daemon sweep: %d done, %d deduped, want 8/0", single.Done, single.Deduped)
	}
	if got := srvSingle.PoolStats().Completed; got != 8 {
		t.Fatalf("single daemon simulated %d points, want 8", got)
	}

	// Fleet: coordinator A fanning out to workers B and C, A's own
	// pool pinned busy so every point must travel.
	srvB, tsB := fleetDaemon(t, nil)
	srvC, tsC := fleetDaemon(t, nil)
	_, tsA := fleetDaemon(t, []fleet.Worker{fleetWorkerFor(tsB.URL), fleetWorkerFor(tsC.URL)})
	cA := mapsim.NewClient(tsA.URL)
	cA.PollInterval = 5 * time.Millisecond
	unblock := blockPool(t, cA)
	defer unblock()

	var last mapsim.SweepStatus
	var mu sync.Mutex
	fleetRes, err := cA.RunSweepRemote(ctx, req, func(st mapsim.SweepStatus) {
		mu.Lock()
		last = st
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := sanitizeSweep(t, fleetRes), sanitizeSweep(t, single); !bytes.Equal(got, want) {
		t.Fatalf("fleet sweep differs from single-daemon sweep:\nfleet:  %s\nsingle: %s", got, want)
	}

	// Exactly-once across the fleet: the worker pools together
	// simulated each of the 8 points precisely one time (the
	// coordinator's own pool was busy the whole sweep).
	b, c := srvB.PoolStats().Completed, srvC.PoolStats().Completed
	if b+c != 8 {
		t.Fatalf("fleet simulated %d points (B=%d C=%d), want exactly 8", b+c, b, c)
	}
	for i := range fleetRes.Points {
		if w := fleetRes.Points[i].Worker; w != tsB.URL && w != tsC.URL {
			t.Fatalf("point %d attributed to %q, want a remote worker", i, w)
		}
	}

	// Watch-stream attribution: the final status accounts every
	// non-cached completion to a named worker.
	mu.Lock()
	defer mu.Unlock()
	sum := 0
	for _, n := range last.Workers {
		sum += n
	}
	if sum != last.Total-last.Deduped {
		t.Fatalf("per-worker attribution %v sums to %d, want %d", last.Workers, sum, last.Total-last.Deduped)
	}
}

// TestFleetSurvivesWorkerKilledMidSweep closes one worker daemon's
// listener partway through the sweep; its in-flight points must
// re-issue to the survivor and the final result must still match the
// single-daemon reference.
func TestFleetSurvivesWorkerKilledMidSweep(t *testing.T) {
	ctx := context.Background()
	req := fleetSweepRequest()
	req.Axes.Secure = []bool{false, true} // 16 points: enough runway to die mid-sweep

	_, tsSingle := fleetDaemon(t, nil)
	cSingle := mapsim.NewClient(tsSingle.URL)
	cSingle.PollInterval = 5 * time.Millisecond
	single, err := cSingle.RunSweepRemote(ctx, req, nil)
	if err != nil {
		t.Fatal(err)
	}

	_, tsB := fleetDaemon(t, nil)
	_, tsC := fleetDaemon(t, nil)
	_, tsA := fleetDaemon(t, []fleet.Worker{fleetWorkerFor(tsB.URL), fleetWorkerFor(tsC.URL)})
	cA := mapsim.NewClient(tsA.URL)
	cA.PollInterval = 5 * time.Millisecond
	unblock := blockPool(t, cA)
	defer unblock()

	var killOnce sync.Once
	fleetRes, err := cA.RunSweepRemote(ctx, req, func(st mapsim.SweepStatus) {
		if st.Done >= 2 {
			killOnce.Do(func() {
				// Sever live connections first so in-flight polls fail
				// immediately, then tear the listener down.
				tsB.CloseClientConnections()
				go tsB.Close()
			})
		}
	})
	if err != nil {
		t.Fatalf("sweep did not survive worker death: %v", err)
	}
	if fleetRes.Done != 16 {
		t.Fatalf("done %d, want 16", fleetRes.Done)
	}
	for i := range fleetRes.Points {
		if fleetRes.Points[i].Result == nil {
			t.Fatalf("point %d has no result after worker death", i)
		}
	}
	if got, want := sanitizeSweep(t, fleetRes), sanitizeSweep(t, single); !bytes.Equal(got, want) {
		t.Fatal("sweep results diverged from the single-daemon reference after a worker was killed mid-sweep")
	}
}

// TestClientReady covers the single-attempt health probe workers are
// gated on.
func TestClientReady(t *testing.T) {
	srv, ts := fleetDaemon(t, nil)
	c := mapsim.NewClient(ts.URL)
	ctx := context.Background()
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("fresh daemon not ready: %v", err)
	}
	srv.MarkDraining()
	if err := c.Ready(ctx); err == nil {
		t.Fatal("draining daemon reported ready")
	}
	w := mapsim.NewWorkerRunner(c)
	if w.Healthy(ctx) {
		t.Fatal("WorkerRunner.Healthy true for a draining daemon")
	}
	if w.Name() != c.BaseURL {
		t.Fatalf("worker name %q, want base URL %q", w.Name(), c.BaseURL)
	}
}
