# Verify targets. `make check` is the full gate (ROADMAP "Tier-1
# verify" plus formatting, vet, the doc-comment lint, and the
# race-detector pass over the concurrent packages); CI and pre-commit
# should run exactly this.

GO ?= go

# Packages with real concurrency (worker pool, server, suite fan-out,
# result cache, fault injection, sweep engine, tiered result store,
# fleet coordinator, sweep journal, and the root package's fleet and
# crash e2e tests) — the ones -race can actually catch regressions in.
# The server and journal lists include the chaos tests.
RACE_PKGS := ./internal/server ./internal/jobs ./internal/results ./internal/sim ./internal/faults ./internal/sweep ./internal/store ./internal/fleet ./internal/journal ./internal/trace ./internal/workload ./internal/workload/spec .

# Hot-loop benchmarks guarded by the perf-regression gate
# (cmd/benchcheck + BENCH_kernel.json; see docs/PERFORMANCE.md).
BENCHES := BenchmarkAccessKernel|BenchmarkRunInsecure|BenchmarkRunSecure|BenchmarkRunSecureParallel
BENCH_PKG := ./internal/sim
# Allowed fractional ns/op growth before benchcheck fails the build.
BENCH_TOLERANCE ?= 0.10

.PHONY: check build fmt lint test vet race bench benchcheck fuzzsmoke run-mapsd fleet-demo crash-drill

check: build fmt vet lint test race fuzzsmoke benchcheck

build:
	$(GO) build ./...

# Fail (and list offenders) when any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Doc-comment lint: cliutil.MissingDocs enforced by its test — every
# exported identifier in the API-surface packages stays documented.
lint:
	$(GO) test -run TestRepoPackagesFullyDocumented ./internal/cliutil

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)
	# Epoch-parallel twin tests under both extremes of scheduler
	# pressure: one P serializes the shards (interleaving bugs hide
	# here), eight Ps maximizes true parallelism on small runners.
	GOMAXPROCS=1 $(GO) test -race -count=1 -run 'TestEpoch|TestConcurrencyFromContext|TestEffectiveShards|TestShardsCanonicalErased' ./internal/sim
	GOMAXPROCS=8 $(GO) test -race -count=1 -run 'TestEpoch|TestConcurrencyFromContext|TestEffectiveShards|TestShardsCanonicalErased' ./internal/sim

# Ten seconds of coverage-guided fuzzing per decoder that parses
# untrusted bytes: the trace readers (legacy and streaming), the
# workload-spec parser (hand-rolled YAML fed by user files and wire
# requests), the store's envelope decoder (fed by disk files and peer
# responses), and the sweep journal's record decoder (fed by
# crash-scrambled WAL files) — enough to catch parser regressions on
# malformed input without slowing the gate meaningfully. Fuzz corpus
# findings land in each package's testdata.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz=FuzzReadFrom -fuzztime=10s ./internal/trace
	$(GO) test -run '^$$' -fuzz=FuzzReadStream -fuzztime=10s ./internal/trace
	$(GO) test -run '^$$' -fuzz=FuzzDecodeWorkloadSpec -fuzztime=10s ./internal/workload/spec
	$(GO) test -run '^$$' -fuzz=FuzzDecodeEnvelope -fuzztime=10s ./internal/store
	$(GO) test -run '^$$' -fuzz=FuzzDecodeJournalRecord -fuzztime=10s ./internal/journal

# Full benchmark pass: measure the access kernel and end-to-end runs,
# then record the numbers into BENCH_kernel.json's current section.
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -count 5 $(BENCH_PKG) | tee /tmp/bench.out
	$(GO) run ./cmd/benchcheck -update -out BENCH_kernel.json < /tmp/bench.out

# Short-mode regression gate for `make check`: quick repeated runs,
# min-of-N comparison against the committed baseline.
benchcheck:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime 0.3s -count 5 $(BENCH_PKG) \
		| $(GO) run ./cmd/benchcheck -baseline BENCH_kernel.json -tolerance $(BENCH_TOLERANCE)

run-mapsd:
	$(GO) run ./cmd/mapsd

# Three-daemon fleet smoke test: two worker daemons plus a coordinator
# registered to both via -fleet, one small sweep fanned across them,
# per-worker attribution printed at the end. See docs/FLEET.md.
fleet-demo:
	./scripts/fleet_demo.sh

# Kill-and-recover drill: SIGKILL a journaled daemon mid-sweep,
# restart it on the same directories, and verify the sweep resumes
# under its original ID with zero re-simulated points. The narrated
# version lives in docs/ROBUSTNESS.md.
crash-drill:
	./scripts/crash_drill.sh
