# Verify targets. `make check` is the full gate (ROADMAP "Tier-1
# verify" plus formatting, vet, the doc-comment lint, and the
# race-detector pass over the concurrent packages); CI and pre-commit
# should run exactly this.

GO ?= go

# Packages with real concurrency (worker pool, server, suite fan-out,
# result cache) — the ones -race can actually catch regressions in.
RACE_PKGS := ./internal/server ./internal/jobs ./internal/results ./internal/sim

.PHONY: check build fmt lint test vet race run-mapsd

check: build fmt vet lint test race

build:
	$(GO) build ./...

# Fail (and list offenders) when any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Doc-comment lint: cliutil.MissingDocs enforced by its test — every
# exported identifier in the API-surface packages stays documented.
lint:
	$(GO) test -run TestRepoPackagesFullyDocumented ./internal/cliutil

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

run-mapsd:
	$(GO) run ./cmd/mapsd
