# Verify targets. `make check` is the full gate (ROADMAP "Tier-1
# verify" plus vet and the race-detector pass over the concurrent
# packages); CI and pre-commit should run exactly this.

GO ?= go

# Packages with real concurrency (worker pool, server, suite fan-out,
# result cache) — the ones -race can actually catch regressions in.
RACE_PKGS := ./internal/server ./internal/jobs ./internal/results ./internal/sim

.PHONY: check build test vet race run-mapsd

check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

run-mapsd:
	$(GO) run ./cmd/mapsd
