package mapsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/server"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// Wire types shared with the mapsd service (internal/server).
type (
	// JobRequest is the body of POST /v1/jobs.
	JobRequest = server.JobRequest
	// JobStatus describes a submitted job.
	JobStatus = server.JobStatus
	// JobResult carries a finished job's result (Run or Suite set).
	JobResult = server.JobResult
	// JobProgress reports how far a running job's simulation has come.
	JobProgress = server.JobProgress
	// ConfigSpec is the JSON-expressible subset of Config.
	ConfigSpec = server.ConfigSpec
	// MetaSpec is the wire form of the metadata-cache config.
	MetaSpec = server.MetaSpec
	// ByteSize is the wire form of capacities: JSON numbers or
	// suffixed strings like "64KB".
	ByteSize = server.ByteSize
	// JobState is a job's lifecycle position.
	JobState = jobs.State
	// SweepRequest is the body of POST /v1/sweeps: a base config plus
	// the axes that vary.
	SweepRequest = server.SweepRequest
	// SweepAxes declares a sweep's dimensions.
	SweepAxes = server.SweepAxes
	// SweepIntAxis is a byte-size axis: explicit points or a range.
	SweepIntAxis = server.SweepIntAxis
	// SweepStatus reports a sweep's per-point completion counts.
	SweepStatus = server.SweepStatus
	// SweepResult is a completed sweep: points in grid order plus
	// per-axis geomeans and a rendered pivot table.
	SweepResult = sweep.Result
	// SweepPointResult pairs one grid point with its result.
	SweepPointResult = sweep.PointResult
)

// Job types and states.
const (
	JobRun   = server.TypeRun
	JobSuite = server.TypeSuite

	JobQueued   = jobs.StateQueued
	JobRunning  = jobs.StateRunning
	JobDone     = jobs.StateDone
	JobFailed   = jobs.StateFailed
	JobCanceled = jobs.StateCanceled
)

// Client talks to a mapsd daemon. Requests that fail transiently —
// network errors, 429 (shed), 502/503/504 — are retried with
// exponential backoff and full jitter, honoring any Retry-After the
// daemon sent. Retrying POST /v1/jobs is safe: the daemon
// deduplicates submissions by the canonical config hash, so a retry
// whose first attempt actually landed joins the in-flight job instead
// of starting a second simulation.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8750".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces Wait (default 250ms).
	PollInterval time.Duration
	// MaxRetries bounds retries per request beyond the first attempt
	// (default 3; negative disables retrying).
	MaxRetries int
	// RetryBase is the backoff scale: attempt n waits a uniformly
	// random duration in [0, RetryBase<<n] (default 100ms).
	RetryBase time.Duration
	// RetryMax caps a single backoff sleep, including server-directed
	// Retry-After waits (default 5s).
	RetryMax time.Duration

	retries atomic.Uint64
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx response from the daemon.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the daemon's Retry-After hint (zero when absent):
	// how long it asked the client to back off before retrying.
	RetryAfter time.Duration
}

// Error renders the status code and the daemon's error message.
func (e *APIError) Error() string {
	return fmt.Sprintf("mapsd: %d: %s", e.StatusCode, e.Message)
}

// Retries returns how many request retries this client has performed,
// across all calls — each increment is one repeated HTTP attempt after
// a transient failure.
func (c *Client) Retries() uint64 {
	return c.retries.Load()
}

// retryableStatus reports whether a response status signals a
// transient condition worth retrying: the daemon shedding load (429)
// or an intermediary/daemon outage (502/503/504).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter reads a Retry-After header: either delay-seconds or
// an HTTP-date. Returns zero when absent or unparseable.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// do runs one API call with retries. The body is marshaled once and
// replayed per attempt. Attempt n backs off a uniformly random
// duration in [0, RetryBase<<n] (full jitter — concurrent clients
// decorrelate instead of retrying in lockstep), except that a
// server-provided Retry-After is used verbatim; both are capped at
// RetryMax. Context errors are never retried.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
	}
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	base := c.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxWait := c.RetryMax
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.once(ctx, method, path, buf, out)
		if err == nil || attempt >= maxRetries || ctx.Err() != nil {
			return err
		}
		wait := time.Duration(0)
		if apiErr, ok := err.(*APIError); ok {
			if !retryableStatus(apiErr.StatusCode) {
				return err
			}
			wait = apiErr.RetryAfter
		}
		if wait == 0 {
			wait = time.Duration(rand.Int64N(int64(base<<attempt) + 1))
		}
		if wait > maxWait {
			wait = maxWait
		}
		c.retries.Add(1)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// once performs a single HTTP attempt.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		ae := &APIError{StatusCode: resp.StatusCode, Message: string(msg), RetryAfter: parseRetryAfter(resp.Header)}
		if json.Unmarshal(msg, &apiErr) == nil && apiErr.Error != "" {
			ae.Message = apiErr.Error
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job and returns its status — already done when the
// daemon answered from its result cache (status.CacheHit).
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel asks the daemon to stop a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Progress fetches a running job's instruction-level progress:
// monotonically non-decreasing instruction counts, the expected
// total, and a linear time-remaining estimate. Cache-hit jobs report
// Fraction 1 with zero counts.
func (c *Client) Progress(ctx context.Context, id string) (JobProgress, error) {
	var p JobProgress
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/progress", nil, &p)
	return p, err
}

// Wait polls until the job reaches a terminal state or ctx is done.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Result fetches a finished job's result envelope.
func (c *Client) Result(ctx context.Context, id string) (JobResult, error) {
	var res JobResult
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res)
	return res, err
}

// RunRemote submits a run job, waits for it, and returns the result —
// the remote analogue of Run.
func (c *Client) RunRemote(ctx context.Context, spec ConfigSpec) (*Result, error) {
	st, err := c.Submit(ctx, JobRequest{Type: JobRun, Config: spec})
	if err != nil {
		return nil, err
	}
	return c.runResult(ctx, st)
}

// RunSuiteRemote submits a suite job, waits, and returns the result —
// the remote analogue of RunSuite.
func (c *Client) RunSuiteRemote(ctx context.Context, spec ConfigSpec, benchmarks []string, parallelism int) (*SuiteResult, error) {
	st, err := c.Submit(ctx, JobRequest{
		Type: JobSuite, Config: spec, Benchmarks: benchmarks, Parallelism: parallelism,
	})
	if err != nil {
		return nil, err
	}
	if st, err = c.awaitDone(ctx, st); err != nil {
		return nil, err
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if res.Suite == nil {
		return nil, fmt.Errorf("mapsim: job %s returned no suite result", st.ID)
	}
	return res.Suite, nil
}

func (c *Client) runResult(ctx context.Context, st JobStatus) (*Result, error) {
	var err error
	if st, err = c.awaitDone(ctx, st); err != nil {
		return nil, err
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	if res.Run == nil {
		return nil, fmt.Errorf("mapsim: job %s returned no run result", st.ID)
	}
	return res.Run, nil
}

func (c *Client) awaitDone(ctx context.Context, st JobStatus) (JobStatus, error) {
	if !st.State.Terminal() {
		var err error
		if st, err = c.Wait(ctx, st.ID); err != nil {
			return st, err
		}
	}
	if st.State != JobDone {
		return st, fmt.Errorf("mapsim: job %s %s: %s", st.ID, st.State, st.Error)
	}
	return st, nil
}

// Sweep submits a parameter sweep and returns its initial status
// (Total already reflects the expanded grid size).
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &st)
	return st, err
}

// SweepProgress streams a sweep's per-point completion counts: the
// daemon pushes one status line per completed point (NDJSON over
// ?watch=1), onUpdate observes each, and the terminal status is
// returned. A nil onUpdate just waits for the terminal status.
//
// The watch stream survives transient disconnects — a dropped
// connection, a daemon restart, a shedding 429/503 — by reconnecting
// with the client's usual full-jitter backoff (honoring Retry-After)
// and resuming from the last-seen done-count, so onUpdate never
// observes progress running backwards across a reconnect. Only a
// non-retryable API error (e.g. 404 after the sweep was evicted), a
// canceled context, or MaxRetries consecutive dead connections with
// no progress between them ends the watch early; the last of those
// falls back to plain status polling.
func (c *Client) SweepProgress(ctx context.Context, id string, onUpdate func(SweepStatus)) (SweepStatus, error) {
	var last SweepStatus
	seen := false
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	base := c.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxWait := c.RetryMax
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		st, progressed, err := c.watchSweep(ctx, id, &last, &seen, onUpdate)
		if err == nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return last, ctx.Err()
		}
		wait := time.Duration(0)
		if apiErr, ok := err.(*APIError); ok {
			if !retryableStatus(apiErr.StatusCode) {
				return last, apiErr
			}
			wait = apiErr.RetryAfter
		}
		// A connection that delivered lines before dying is a live
		// stream hiccup, not a failing endpoint: reset the budget.
		if progressed {
			failures = 0
		}
		if failures >= maxRetries {
			// Out of reconnect budget; hand off to plain polling so a
			// watch over a flaky path still resolves the sweep.
			return c.SweepWait(ctx, id)
		}
		if wait == 0 {
			wait = time.Duration(rand.Int64N(int64(base<<failures) + 1))
		}
		if wait > maxWait {
			wait = maxWait
		}
		failures++
		c.retries.Add(1)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return last, ctx.Err()
		}
	}
}

// watchSweep runs one ?watch=1 connection. It feeds onUpdate only
// statuses that advance the last-seen done-count (or are terminal, or
// are the first ever seen), updating *last as it goes, and returns
// the terminal status with a nil error when the sweep finishes. Any
// other outcome — transport error, bad status, stream ended without a
// terminal line — returns an error plus whether this connection made
// observable progress.
func (c *Client) watchSweep(ctx context.Context, id string, last *SweepStatus, seen *bool, onUpdate func(SweepStatus)) (SweepStatus, bool, error) {
	progressed := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/sweeps/"+id+"?watch=1", nil)
	if err != nil {
		return *last, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return *last, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		ae := &APIError{StatusCode: resp.StatusCode, Message: string(msg), RetryAfter: parseRetryAfter(resp.Header)}
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &apiErr) == nil && apiErr.Error != "" {
			ae.Message = apiErr.Error
		}
		return *last, false, ae
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var st SweepStatus
		if err := dec.Decode(&st); err != nil {
			if err == io.EOF {
				// Clean EOF without a terminal line: daemon restart or
				// proxy timeout — reconnect.
				err = io.ErrUnexpectedEOF
			}
			return *last, progressed, err
		}
		progressed = true
		// A fresh connection replays the current status; suppress
		// updates that don't advance past what an earlier connection
		// already delivered.
		if *seen && st.Done <= last.Done && !st.State.Terminal() {
			continue
		}
		*seen = true
		*last = st
		if onUpdate != nil {
			onUpdate(st)
		}
		if st.State.Terminal() {
			return st, progressed, nil
		}
	}
}

// SweepStatus fetches a sweep's current status by ID.
func (c *Client) SweepStatus(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// SweepWait polls until the sweep reaches a terminal state.
func (c *Client) SweepWait(ctx context.Context, id string) (SweepStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	for {
		var st SweepStatus
		if err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st); err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// SweepResultRemote fetches a finished sweep's full result.
func (c *Client) SweepResultRemote(ctx context.Context, id string) (*SweepResult, error) {
	var res SweepResult
	if err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// RunSweepRemote submits a sweep, streams progress through onUpdate
// (which may be nil), and returns the completed result — the remote
// analogue of sweep.Run.
func (c *Client) RunSweepRemote(ctx context.Context, req SweepRequest, onUpdate func(SweepStatus)) (*SweepResult, error) {
	st, err := c.Sweep(ctx, req)
	if err != nil {
		return nil, err
	}
	if !st.State.Terminal() {
		if st, err = c.SweepProgress(ctx, st.ID, onUpdate); err != nil {
			return nil, err
		}
	}
	if st.State != JobDone {
		return nil, fmt.Errorf("mapsim: sweep %s %s: %s", st.ID, st.State, st.Error)
	}
	return c.SweepResultRemote(ctx, st.ID)
}

// ResumeSweep reattaches to a sweep by ID — typically one submitted
// before a daemon restart and recovered from its journal — streams
// progress through onUpdate (which may be nil), and returns the
// completed result. Sweep IDs are stable across restarts when the
// daemon runs with -journal-dir, so the ID from the original
// submission keeps working after a crash.
func (c *Client) ResumeSweep(ctx context.Context, id string, onUpdate func(SweepStatus)) (*SweepResult, error) {
	st, err := c.SweepProgress(ctx, id, onUpdate)
	if err != nil {
		return nil, err
	}
	if st.State != JobDone {
		return nil, fmt.Errorf("mapsim: sweep %s %s: %s", st.ID, st.State, st.Error)
	}
	return c.SweepResultRemote(ctx, st.ID)
}

// StoreFetch fetches the raw result-store envelope for a content
// key (GET /v1/store/{key}) — the verb mapsd peers use to fill local
// store misses from each other. The bytes are a store.Envelope JSON
// document; a daemon that doesn't hold the key locally answers 404
// (an *APIError, not retried).
func (c *Client) StoreFetch(ctx context.Context, key string) ([]byte, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/store/"+key, nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// RemoteBenchmarks lists the benchmarks the daemon serves.
func (c *Client) RemoteBenchmarks(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.do(ctx, http.MethodGet, "/v1/benchmarks", nil, &out); err != nil {
		return nil, err
	}
	return out["benchmarks"], nil
}
