package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/maps-sim/mapsim"
	"github.com/maps-sim/mapsim/internal/cliutil"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/sweep"
	wspec "github.com/maps-sim/mapsim/internal/workload/spec"
)

// runSweepCmd implements the `maps sweep` verb: a declarative
// parameter sweep over benchmark × size × policy axes, run locally
// through internal/sweep or remotely via a mapsd daemon's POST
// /v1/sweeps. Returns the process exit code.
func runSweepCmd(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	benchmarks := fs.String("benchmarks", "canneal,libquantum", "comma-separated benchmark axis")
	specFiles := fs.String("workload-specs", "", `comma-separated workload-spec files (YAML or JSON) added to the benchmark axis; pass -benchmarks "" for a spec-only sweep`)
	metaFlag := fs.String("meta", "", `metadata-cache size axis: sizes ("16KB,64KB,1MB") or a doubling range ("16KB..2MB")`)
	llcFlag := fs.String("llc", "", `LLC size axis: sizes or a doubling range (empty = Table I's 2MB)`)
	contents := fs.String("contents", "", "content-policy axis (counters, counters+hashes, all, ...)")
	policies := fs.String("policies", "", "replacement-policy axis (plru, lru, srrip, eva, eva-pertype, typepred)")
	partitions := fs.String("partitions", "", "partition axis (none, static:N, dynamic)")
	secure := fs.String("secure", "true", "secure axis: true, false, or both")
	partial := fs.String("partial", "", "partial-writes axis: on, off, or both (empty = base default)")
	instructions := fs.Uint64("instructions", 2_000_000, "simulated instructions per point")
	parallel := fs.Int("parallel", 0, "concurrent points (default NumCPU locally, pool workers remotely)")
	asJSON := fs.Bool("json", false, "emit the sweep.Result JSON instead of rendered tables")
	remote := fs.String("remote", "", "run via the mapsd daemon at this base URL instead of locally")
	noCache := fs.Bool("no-cache", false, "remote only: skip result-cache lookups (points still stored)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `maps sweep — run a declarative parameter sweep

usage: maps sweep [flags]

Expands the axes into a config grid (benchmark outermost, partial
writes innermost), runs every point with bounded parallelism and
fail-fast cancellation, and prints per-axis geomeans plus a pivot
table. Example — the Figure 1 grid:

  maps sweep -benchmarks canneal,libquantum \
    -meta 16KB..2MB -contents counters,counters+hashes,all

Declarative workload specs (docs/WORKLOADS.md) sweep alongside named
benchmarks: -workload-specs mixed.yaml adds each spec to the
benchmark axis, locally and through -remote.

flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "maps sweep: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	meta, err := parseSizeAxis(*metaFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maps sweep: -meta: %v\n", err)
		return 2
	}
	llc, err := parseSizeAxis(*llcFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maps sweep: -llc: %v\n", err)
		return 2
	}
	secures, baseSecure, err := parseBoolAxis(*secure, "true", "false")
	if err != nil {
		fmt.Fprintf(os.Stderr, "maps sweep: -secure: %v\n", err)
		return 2
	}
	partials, _, err := parseBoolAxis(*partial, "on", "off")
	if err != nil {
		fmt.Fprintf(os.Stderr, "maps sweep: -partial: %v\n", err)
		return 2
	}
	specs, err := loadWorkloadSpecs(*specFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maps sweep: -workload-specs: %v\n", err)
		return 2
	}

	axes := sweep.Axes{
		Benchmarks:    splitList(*benchmarks),
		WorkloadSpecs: specs,
		Secure:        secures,
		LLC:           llc,
		Meta:          meta,
		Contents:      splitList(*contents),
		Policies:      splitList(*policies),
		Partitions:    splitList(*partitions),
		PartialWrites: partials,
	}

	var res *sweep.Result
	if *remote != "" {
		res, err = runSweepRemote(*remote, axes, *instructions, baseSecure, *parallel, *noCache)
	} else {
		spec := sweep.Spec{
			Base: sim.Config{
				Instructions: *instructions,
				Secure:       baseSecure,
				Speculation:  baseSecure,
			},
			Axes: axes,
		}
		res, err = sweep.Run(context.Background(), spec, *parallel)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "maps sweep: %v\n", err)
		return 1
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "maps sweep: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Println(res.Render())
	return 0
}

// runSweepRemote ships the sweep to a mapsd daemon and streams its
// per-point completion counts to stderr while waiting.
func runSweepRemote(baseURL string, axes sweep.Axes, instructions uint64, secure bool, parallel int, noCache bool) (*sweep.Result, error) {
	toWire := func(a sweep.IntAxis) mapsim.SweepIntAxis {
		out := mapsim.SweepIntAxis{
			Min:    mapsim.ByteSize(a.Min),
			Max:    mapsim.ByteSize(a.Max),
			Factor: a.Factor,
		}
		for _, p := range a.Points {
			out.Points = append(out.Points, mapsim.ByteSize(p))
		}
		return out
	}
	req := mapsim.SweepRequest{
		Base: mapsim.ConfigSpec{
			Instructions: instructions,
			Secure:       &secure,
			Speculation:  secure,
		},
		Axes: mapsim.SweepAxes{
			Benchmarks:    axes.Benchmarks,
			WorkloadSpecs: axes.WorkloadSpecs,
			Secure:        axes.Secure,
			LLC:           toWire(axes.LLC),
			Meta:          toWire(axes.Meta),
			Contents:      axes.Contents,
			Policies:      axes.Policies,
			Partitions:    axes.Partitions,
			PartialWrites: axes.PartialWrites,
		},
		Parallelism: parallel,
		NoCache:     noCache,
	}
	c := mapsim.NewClient(baseURL)
	last := time.Now()
	return c.RunSweepRemote(context.Background(), req, func(st mapsim.SweepStatus) {
		// Throttle the progress feed to one line per second (plus the
		// terminal line) so big sweeps don't flood stderr.
		if st.State.Terminal() || time.Since(last) >= time.Second {
			last = time.Now()
			// Per-worker attribution ("local:12 http://w2:3") lets an
			// operator spot fleet skew from the progress feed alone.
			var byWorker string
			if len(st.Workers) > 0 {
				names := make([]string, 0, len(st.Workers))
				for name := range st.Workers {
					names = append(names, name)
				}
				sort.Strings(names)
				parts := make([]string, len(names))
				for i, name := range names {
					parts[i] = fmt.Sprintf("%s:%d", name, st.Workers[name])
				}
				byWorker = ", " + strings.Join(parts, " ")
			}
			fmt.Fprintf(os.Stderr, "[sweep %s: %d/%d points, %d deduped%s]\n",
				st.ID, st.Done, st.Total, st.Deduped, byWorker)
		}
	})
}

// loadWorkloadSpecs reads and validates a comma-separated list of
// workload-spec files for the sweep's workload axis.
func loadWorkloadSpecs(s string) ([]*wspec.Spec, error) {
	var specs []*wspec.Spec
	for _, path := range splitList(s) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		sp, err := wspec.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// splitList splits a comma-separated flag, dropping empty items.
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// parseSizeAxis parses a byte-size axis flag: a comma list of sizes
// ("16KB,64KB,1MB"), a doubling range ("16KB..2MB"), or empty (axis
// absent).
func parseSizeAxis(s string) (sweep.IntAxis, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return sweep.IntAxis{}, nil
	}
	if lo, hi, ok := strings.Cut(s, ".."); ok {
		min, err := cliutil.ParseSize(lo)
		if err != nil {
			return sweep.IntAxis{}, err
		}
		max, err := cliutil.ParseSize(hi)
		if err != nil {
			return sweep.IntAxis{}, err
		}
		return sweep.IntAxis{Min: min, Max: max}, nil
	}
	var axis sweep.IntAxis
	for _, item := range splitList(s) {
		n, err := cliutil.ParseSize(item)
		if err != nil {
			return sweep.IntAxis{}, err
		}
		axis.Points = append(axis.Points, n)
	}
	return axis, nil
}

// parseBoolAxis parses an on/off axis flag: onWord, offWord, "both"
// (sweep both values), or empty (no axis). It returns the axis values
// plus the base value for single-valued flags.
func parseBoolAxis(s, onWord, offWord string) (axis []bool, base bool, err error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return nil, true, nil
	case onWord:
		return nil, true, nil
	case offWord:
		return nil, false, nil
	case "both":
		return []bool{false, true}, true, nil
	}
	return nil, false, fmt.Errorf("want %s, %s, or both (got %q)", onWord, offWord, s)
}
