// Command maps regenerates the tables and figures of MAPS (ISPASS
// 2018). Each subcommand runs one experiment's simulation sweep and
// prints the same rows/series the paper plots.
//
// Usage:
//
//	maps [flags] <experiment> [experiment ...]
//	maps all
//	maps sweep [sweep flags]
//	maps run [run flags]
//
// The sweep verb expands declarative axes (benchmarks, workload
// specs, cache sizes, contents, policies, partitions) into a config
// grid and runs it with bounded parallelism, locally or against a
// mapsd daemon's POST /v1/sweeps endpoint; `maps sweep -h` lists its
// flags. The run verb executes one simulation of a named benchmark,
// a declarative workload spec (docs/WORKLOADS.md), or a recorded
// trace replayed in constant memory; `maps run -h` lists its flags.
//
// Experiments: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7, plus
// the extensions ablate-partial, content-matrix, org-compare, csopt,
// spec-window, and tree-stretch.
//
// Flags:
//
//	-instructions N       simulated instructions per run (default 2000000)
//	-benchmarks a,b       restrict the benchmark set
//	-parallel N           concurrent simulations (default NumCPU)
//	-plot                 append ASCII charts to each experiment's tables
//	-json                 emit machine-readable results (the same structs
//	                      mapsd serializes) instead of rendered tables
//	-v                    verbose structured logs on stderr
//	-log-format text|json log output format (default text)
//
// Running more than one experiment (including `maps all`) appends a
// per-experiment wall-clock timing table; with -json the same data is
// emitted as a final {"timing": [...]} object.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/maps-sim/mapsim/internal/experiments"
	"github.com/maps-sim/mapsim/internal/obs"
)

func main() {
	// The sweep and run verbs have their own flag sets (axes, workload
	// sources, remote daemon, ...): dispatch before the experiment
	// flags ever parse.
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		os.Exit(runSweepCmd(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "run" {
		os.Exit(runRunCmd(os.Args[2:]))
	}

	instructions := flag.Uint64("instructions", 2_000_000, "simulated instructions per run")
	withPlot := flag.Bool("plot", false, "append ASCII charts to each experiment's tables")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON results instead of tables")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset")
	parallel := flag.Int("parallel", 0, "concurrent simulations (default NumCPU)")
	shards := flag.Int("shards", 0, "epoch shards per run: 0 sequential, N forces N epochs, -1 auto-sizes to idle CPUs")
	logFormat := flag.String("log-format", obs.FormatText, "log output format: text or json")
	verbose := flag.Bool("v", false, "verbose logging (Debug level) on stderr")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maps: %v\n", err)
		os.Exit(2)
	}

	opt := experiments.Options{Instructions: *instructions, Parallelism: *parallel, Shards: *shards}
	if *benchmarks != "" {
		opt.Benchmarks = strings.Split(*benchmarks, ",")
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = experiments.Names()
	}
	reports := make([]*experiments.Report, 0, len(names))
	for _, name := range names {
		logger.Debug("experiment start", "experiment", name)
		rep, err := experiments.Run(name, opt, *withPlot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maps: %s: %v\n", name, err)
			os.Exit(1)
		}
		logger.Info("experiment done", "experiment", name, "elapsed", rep.Elapsed)
		if err := emit(rep, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "maps: %s: %v\n", name, err)
			os.Exit(1)
		}
		reports = append(reports, rep)
	}
	if len(reports) > 1 {
		if err := emitTiming(reports, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "maps: %v\n", err)
			os.Exit(1)
		}
	}
}

// emit prints one experiment's output: indented JSON (timing on
// stderr, keeping stdout pure) or the rendered tables plus chart.
func emit(rep *experiments.Report, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", rep.Name, rep.Elapsed.Round(time.Millisecond))
		return nil
	}
	fmt.Println(rep.Table)
	if rep.Chart != "" {
		fmt.Println(rep.Chart)
	}
	fmt.Printf("[%s completed in %v]\n\n", rep.Name, rep.Elapsed.Round(time.Millisecond))
	return nil
}

// emitTiming summarizes wall-clock time across a multi-experiment run
// (`maps all`): a table on stdout, or a final {"timing": [...]}
// object in -json mode.
func emitTiming(reports []*experiments.Report, asJSON bool) error {
	if asJSON {
		type row struct {
			Experiment string  `json:"experiment"`
			ElapsedSec float64 `json:"elapsed_sec"`
		}
		rows := make([]row, len(reports))
		for i, r := range reports {
			rows[i] = row{r.Name, r.Elapsed.Seconds()}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"timing": rows})
	}
	var total time.Duration
	fmt.Println("experiment timing")
	fmt.Printf("%-16s %10s\n", "experiment", "wall")
	for _, r := range reports {
		fmt.Printf("%-16s %10v\n", r.Name, r.Elapsed.Round(time.Millisecond))
		total += r.Elapsed
	}
	fmt.Printf("%-16s %10v\n", "total", total.Round(time.Millisecond))
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `maps — regenerate the MAPS (ISPASS 2018) tables and figures

usage: maps [flags] <experiment> [experiment ...]
       maps all
       maps sweep [sweep flags]   (see maps sweep -h)
       maps run [run flags]       (see maps run -h)

experiments:
  table1  simulation configuration
  table2  metadata organization / data protected
  fig1    metadata MPKI vs cache contents and size
  fig2    normalized ED^2 across LLC/metadata-cache budgets
  fig3    reuse-distance CDFs by metadata type
  fig4    bimodal reuse-distance classes
  fig5    reuse CDFs by request type (fft, leslie3d)
  fig6    eviction policies: plru, eva, min, itermin (+lru, srrip)
  fig7    partitioning: none, best-static, avg-static, dynamic

extensions beyond the paper:
  ablate-partial  partial-write mechanism on/off (paper SIV-E)
  content-matrix  all seven content-policy combinations
  org-compare     PoisonIvy split counters vs SGX monolithic
  csopt           CSOPT solve + live replay + state explosion (paper SV-B)
  spec-window     finite speculation windows vs metadata cache size
  tree-stretch    tree reuse distances with vs without a metadata cache

flags:
`)
	flag.PrintDefaults()
}
