// Command maps regenerates the tables and figures of MAPS (ISPASS
// 2018). Each subcommand runs one experiment's simulation sweep and
// prints the same rows/series the paper plots.
//
// Usage:
//
//	maps [flags] <experiment> [experiment ...]
//	maps all
//
// Experiments: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7, plus
// the extensions ablate-partial, content-matrix, org-compare, csopt,
// spec-window, and tree-stretch.
//
// Flags:
//
//	-instructions N   simulated instructions per run (default 2000000)
//	-benchmarks a,b   restrict the benchmark set
//	-parallel N       concurrent simulations (default NumCPU)
//	-plot             append ASCII charts to each experiment's tables
//	-json             emit machine-readable results (the same structs
//	                  mapsd serializes) instead of rendered tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/maps-sim/mapsim/internal/experiments"
)

func main() {
	instructions := flag.Uint64("instructions", 2_000_000, "simulated instructions per run")
	withPlot := flag.Bool("plot", false, "append ASCII charts to each experiment's tables")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON results instead of tables")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark subset")
	parallel := flag.Int("parallel", 0, "concurrent simulations (default NumCPU)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	opt := experiments.Options{Instructions: *instructions, Parallelism: *parallel}
	if *benchmarks != "" {
		opt.Benchmarks = strings.Split(*benchmarks, ",")
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		if err := runOne(name, opt, *withPlot, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "maps: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

// run executes one experiment, returning both the structured result
// (for -json; the same structs mapsd's API serializes) and the
// rendered tables (plus an optional chart).
func run(name string, opt experiments.Options, withPlot bool) (result any, out, chart string, err error) {
	switch name {
	case "table1":
		out = experiments.Table1()
		result = out
	case "table2":
		r := experiments.Table2()
		result, out = r, r.Render()
	case "fig1":
		r, err := experiments.Fig1(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
		if withPlot {
			chart = r.RenderChart()
		}
	case "fig2":
		r, err := experiments.Fig2(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
		if withPlot {
			chart = r.RenderChart()
		}
	case "fig3":
		r, err := experiments.Fig3(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
		if withPlot {
			chart = r.RenderChart()
		}
	case "fig4":
		r, err := experiments.Fig4(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
		if withPlot {
			chart = r.RenderChart()
		}
	case "fig5":
		r, err := experiments.Fig5(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
	case "fig6":
		r, err := experiments.Fig6(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
		if withPlot {
			chart = r.RenderChart()
		}
	case "fig7":
		r, err := experiments.Fig7(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
		if withPlot {
			chart = r.RenderChart()
		}
	case "ablate-partial":
		r, err := experiments.AblatePartial(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
	case "content-matrix":
		r, err := experiments.ContentMatrix(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
	case "org-compare":
		r, err := experiments.OrgCompare(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
	case "csopt":
		r, err := experiments.CSOPT(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
	case "spec-window":
		r, err := experiments.SpecWindow(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
	case "tree-stretch":
		r, err := experiments.TreeStretch(opt)
		if err != nil {
			return nil, "", "", err
		}
		result, out = r, r.Render()
	default:
		return nil, "", "", fmt.Errorf("unknown experiment (want table1|table2|fig1..fig7|ablate-partial|content-matrix|org-compare|csopt|spec-window|tree-stretch|all)")
	}
	return result, out, chart, nil
}

func runOne(name string, opt experiments.Options, withPlot, asJSON bool) error {
	start := time.Now()
	result, out, chart, err := run(name, opt, withPlot)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiment": name, "result": result}); err != nil {
			return err
		}
		// Keep stdout pure JSON; timing goes to stderr.
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	fmt.Println(out)
	if chart != "" {
		fmt.Println(chart)
	}
	fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `maps — regenerate the MAPS (ISPASS 2018) tables and figures

usage: maps [flags] <experiment> [experiment ...]
       maps all

experiments:
  table1  simulation configuration
  table2  metadata organization / data protected
  fig1    metadata MPKI vs cache contents and size
  fig2    normalized ED^2 across LLC/metadata-cache budgets
  fig3    reuse-distance CDFs by metadata type
  fig4    bimodal reuse-distance classes
  fig5    reuse CDFs by request type (fft, leslie3d)
  fig6    eviction policies: plru, eva, min, itermin (+lru, srrip)
  fig7    partitioning: none, best-static, avg-static, dynamic

extensions beyond the paper:
  ablate-partial  partial-write mechanism on/off (paper SIV-E)
  content-matrix  all seven content-policy combinations
  org-compare     PoisonIvy split counters vs SGX monolithic
  csopt           CSOPT solve + live replay + state explosion (paper SV-B)
  spec-window     finite speculation windows vs metadata cache size
  tree-stretch    tree reuse distances with vs without a metadata cache

flags:
`)
	flag.PrintDefaults()
}
