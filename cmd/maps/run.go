package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/maps-sim/mapsim"
	"github.com/maps-sim/mapsim/internal/cliutil"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
	wspec "github.com/maps-sim/mapsim/internal/workload/spec"
)

// runRunCmd implements the `maps run` verb: one simulation of a named
// benchmark, a declarative workload spec, or a recorded trace, run
// locally or against a mapsd daemon. Returns the process exit code.
func runRunCmd(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	specFile := fs.String("workload-spec", "", "workload-spec file (YAML or JSON); see docs/WORKLOADS.md")
	bench := fs.String("bench", "", "named benchmark to run")
	traceFile := fs.String("trace", "", "recorded workload trace to replay (see mapstrace record-workload)")
	instructions := fs.Uint64("instructions", 2_000_000, "simulated instructions")
	seed := fs.Int64("seed", 0, "workload seed")
	secure := fs.Bool("secure", true, "enable secure memory (counters, hashes, integrity tree)")
	metaSize := fs.String("meta", "", "metadata-cache size (e.g. 128KB); empty = Table I default")
	metaWays := fs.Int("ways", 0, "metadata-cache associativity (0 = default)")
	metaContent := fs.String("content", "", "metadata-cache content policy (counters, counters+hashes, all, ...)")
	shards := fs.Int("shards", 0, "epoch shards: 0 sequential, N forces N epochs, -1 auto-sizes to idle CPUs")
	asJSON := fs.Bool("json", false, "emit the full Result JSON instead of a summary")
	remote := fs.String("remote", "", "run via the mapsd daemon at this base URL instead of locally")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `maps run — run one simulation

usage: maps run (-workload-spec spec.yaml | -bench NAME | -trace FILE) [flags]

Exactly one workload source is required. Workload specs compose
several synthetic clients — rate fractions, arrival processes,
per-client locality — into one deterministic access stream; traces
replay a recorded stream in constant memory. Examples:

  maps run -workload-spec mixed.yaml -meta 128KB -json
  maps run -bench canneal -shards 4
  maps run -trace web.mtrc.gz -instructions 5000000

flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "maps run: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	sources := 0
	for _, s := range []string{*specFile, *bench, *traceFile} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "maps run: exactly one of -workload-spec, -bench, or -trace is required")
		return 2
	}

	var spec *wspec.Spec
	if *specFile != "" {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maps run: %v\n", err)
			return 2
		}
		if spec, err = wspec.Parse(data); err != nil {
			fmt.Fprintf(os.Stderr, "maps run: %s: %v\n", *specFile, err)
			return 2
		}
	}

	var meta *metacache.Config
	if *metaSize != "" || *metaWays != 0 || *metaContent != "" {
		size := 0
		if *metaSize != "" {
			var err error
			if size, err = cliutil.ParseSize(*metaSize); err != nil {
				fmt.Fprintf(os.Stderr, "maps run: -meta: %v\n", err)
				return 2
			}
		}
		content, err := metacache.ParseContent(*metaContent)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maps run: -content: %v\n", err)
			return 2
		}
		meta = &metacache.Config{Size: size, Ways: *metaWays, Content: content}
	}

	start := time.Now()
	var res *mapsim.Result
	var err error
	if *remote != "" {
		res, err = runRemoteOnce(*remote, spec, *bench, *traceFile, *instructions, *seed, *secure, *metaSize, *metaWays, *metaContent, *shards)
	} else {
		cfg := sim.Config{
			Benchmark:    *bench,
			WorkloadSpec: spec,
			TracePath:    *traceFile,
			Instructions: *instructions,
			Seed:         *seed,
			Secure:       *secure,
			Speculation:  *secure,
			Shards:       *shards,
			Meta:         meta,
		}
		res, err = mapsim.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "maps run: %v\n", err)
		return 1
	}

	// Timing and Sharding describe how this run executed, not what it
	// simulated; strip them so output is bit-identical across repeats
	// and -shards values (the wall clock goes to stderr instead).
	res.Timing, res.Sharding = sim.PhaseTiming{}, nil
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "maps run: %v\n", err)
			return 1
		}
	} else {
		fmt.Printf("benchmark      %s\n", res.Benchmark)
		fmt.Printf("instructions   %d\n", res.Instructions)
		fmt.Printf("cycles         %d\n", res.Cycles)
		fmt.Printf("ipc            %.4f\n", res.IPC)
		fmt.Printf("llc mpki       %.4f\n", res.LLCMPKI)
		if res.MetaMPKI > 0 || res.MetaHitRate > 0 {
			fmt.Printf("meta mpki      %.4f\n", res.MetaMPKI)
			fmt.Printf("meta hit rate  %.4f\n", res.MetaHitRate)
		}
		fmt.Printf("energy (pJ)    %.0f\n", res.EnergyPJ)
		fmt.Printf("ed^2           %.4g\n", res.ED2)
	}
	fmt.Fprintf(os.Stderr, "[run completed in %v]\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// runRemoteOnce ships a single run to a mapsd daemon. Traces cannot
// travel: they are files on this machine, outside the canonical
// config encoding the daemon dedupes on.
func runRemoteOnce(baseURL string, spec *wspec.Spec, bench, tracePath string, instructions uint64, seed int64, secure bool, metaSize string, metaWays int, metaContent string, shards int) (*mapsim.Result, error) {
	if tracePath != "" {
		return nil, fmt.Errorf("-trace is machine-local and cannot run via -remote; replay it locally")
	}
	if shards != 0 {
		return nil, fmt.Errorf("-shards is a local execution knob; the daemon chooses its own parallelism")
	}
	cs := mapsim.ConfigSpec{
		Benchmark:    bench,
		Workload:     spec,
		Instructions: instructions,
		Seed:         seed,
		Secure:       &secure,
		Speculation:  secure,
	}
	if metaSize != "" || metaWays != 0 || metaContent != "" {
		size := 0
		if metaSize != "" {
			var err error
			if size, err = cliutil.ParseSize(metaSize); err != nil {
				return nil, fmt.Errorf("-meta: %w", err)
			}
		}
		cs.Meta = &mapsim.MetaSpec{Size: mapsim.ByteSize(size), Ways: metaWays, Content: metaContent}
	}
	return mapsim.NewClient(baseURL).RunRemote(context.Background(), cs)
}
