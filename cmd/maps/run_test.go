package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const testSpecYAML = `
name: cli-mix
clients:
  - name: web
    rate_fraction: 0.7
    footprint: 256KB
    write_fraction: 0.2
    arrival:
      process: poisson
  - name: batch
    rate_fraction: 0.3
    footprint: 512KB
    write_fraction: 0.5
    arrival:
      process: gamma
      cv: 2.0
`

func buildMaps(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "maps")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func runMaps(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

// TestRunSpecDeterministicAcrossShards exercises the real binary: a
// workload-spec run must emit byte-identical JSON across repeats and
// across -shards values, the end-to-end form of the epoch-parallel
// bit-identity contract.
func TestRunSpecDeterministicAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildMaps(t)
	specPath := filepath.Join(t.TempDir(), "mix.yaml")
	if err := os.WriteFile(specPath, []byte(testSpecYAML), 0o644); err != nil {
		t.Fatal(err)
	}

	args := []string{"run", "-workload-spec", specPath, "-instructions", "100000", "-json"}
	first, _, err := runMaps(t, bin, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(first, `"benchmark": "cli-mix"`) {
		t.Fatalf("output missing spec name:\n%s", first)
	}
	repeat, _, err := runMaps(t, bin, args...)
	if err != nil {
		t.Fatalf("repeat run: %v", err)
	}
	if first != repeat {
		t.Error("repeated runs emitted different JSON")
	}
	sharded, _, err := runMaps(t, bin, append(args, "-shards", "4")...)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if first != sharded {
		t.Error("-shards 4 emitted different JSON than the sequential run")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildMaps(t)
	cases := [][]string{
		{"run"}, // no workload source
		{"run", "-bench", "fft", "-trace", "x.mtrc"},                    // two sources
		{"run", "-trace", "x.mtrc", "-remote", "http://localhost:1"},    // trace is machine-local
		{"run", "-bench", "fft", "-shards", "2", "-remote", "http://x"}, // shards is local-only
	}
	for _, args := range cases {
		if _, _, err := runMaps(t, bin, args...); err == nil {
			t.Errorf("maps %s succeeded, want error", strings.Join(args, " "))
		}
	}
}
