// Command mapsim runs a single secure-memory simulation and prints a
// detailed report: timing, per-kind metadata cache behaviour, memory
// traffic, and energy.
//
// Usage:
//
//	mapsim -bench canneal -meta 64KB -policy plru -content all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/eva"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/cache/typepred"
	"github.com/maps-sim/mapsim/internal/cliutil"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "libquantum", "benchmark name (see -list)")
	suite := flag.Bool("suite", false, "run every benchmark and print a summary with geomeans")
	list := flag.Bool("list", false, "list benchmarks and exit")
	instructions := flag.Uint64("instructions", 2_000_000, "simulated instructions")
	secure := flag.Bool("secure", true, "enable secure memory")
	spec := flag.Bool("speculation", true, "hide verification latency")
	org := flag.String("org", "pi", "counter organization: pi or sgx")
	metaSize := flag.String("meta", "64KB", "metadata cache size (e.g. 64KB, 1MB, or 0 for none)")
	ways := flag.Int("ways", 8, "metadata cache associativity")
	policyName := flag.String("policy", "plru", "replacement: plru, lru, fifo, random, srrip, brrip, eva, eva-pertype, typepred")
	content := flag.String("content", "all", "cache contents: counters, counters+hashes, all")
	partial := flag.Bool("partial-writes", false, "enable partial writes for hash/tree blocks")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	cfg := sim.Config{
		Benchmark:    *bench,
		Instructions: *instructions,
		Seed:         *seed,
		Secure:       *secure,
		Speculation:  *spec,
	}
	if strings.EqualFold(*org, "sgx") {
		cfg.Org = memlayout.SGX
	}
	size, err := cliutil.ParseSize(*metaSize)
	if err != nil {
		fatal(err)
	}

	if *suite {
		// Suite mode shares one config across all benchmarks; per-run
		// policy instances are stateful, so RunSuite requires the
		// defaults (pseudo-LRU, no partition).
		if *secure && size > 0 {
			c, err := parseContent(*content)
			if err != nil {
				fatal(err)
			}
			cfg.Meta = &metacache.Config{Size: size, Ways: *ways, Content: c, PartialWrites: *partial}
		}
		res, err := sim.RunSuite(cfg, nil, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
		return
	}

	if *secure && size > 0 {
		p, err := parsePolicy(*policyName)
		if err != nil {
			fatal(err)
		}
		c, err := parseContent(*content)
		if err != nil {
			fatal(err)
		}
		cfg.Meta = &metacache.Config{
			Size: size, Ways: *ways, Policy: p, Content: c, PartialWrites: *partial,
		}
	}

	res, err := sim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	report(res, cfg)
}

func parsePolicy(name string) (cache.Policy, error) {
	switch strings.ToLower(name) {
	case "plru":
		return policy.NewPLRU(), nil
	case "lru":
		return policy.NewLRU(), nil
	case "fifo":
		return policy.NewFIFO(), nil
	case "random":
		return policy.NewRandom(1), nil
	case "srrip":
		return policy.NewSRRIP(), nil
	case "brrip":
		return policy.NewBRRIP(), nil
	case "eva":
		return eva.New(eva.Config{}), nil
	case "typepred":
		return typepred.New(), nil
	case "eva-pertype":
		return eva.NewPerType(eva.Config{}), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func parseContent(name string) (metacache.ContentPolicy, error) {
	switch strings.ToLower(name) {
	case "counters":
		return metacache.CountersOnly, nil
	case "counters+hashes":
		return metacache.CountersHashes, nil
	case "all":
		return metacache.AllTypes, nil
	default:
		return 0, fmt.Errorf("unknown content policy %q", name)
	}
}

func report(r *sim.Result, cfg sim.Config) {
	fmt.Printf("benchmark: %s  (%d instructions)\n\n", r.Benchmark, r.Instructions)

	var t stats.Table
	t.AddRow("metric", "value")
	t.AddRow("cycles", fmt.Sprintf("%d", r.Cycles))
	t.AddRow("IPC", fmt.Sprintf("%.3f", r.IPC))
	t.AddRow("LLC MPKI", fmt.Sprintf("%.2f", r.LLCMPKI))
	t.AddRow("metadata MPKI", fmt.Sprintf("%.2f", r.MetaMPKI))
	t.AddRow("metadata hit rate", fmt.Sprintf("%.3f", r.MetaHitRate))
	t.AddRow("page re-encryptions", fmt.Sprintf("%d", r.PageReencryptions))
	t.AddRow("DRAM accesses", fmt.Sprintf("%d (row hit %.2f)", r.DRAM.Accesses(), r.DRAM.RowHitRate()))
	t.AddRow("energy (mJ)", fmt.Sprintf("%.3f", r.EnergyPJ/1e9))
	t.AddRow("ED^2", fmt.Sprintf("%.3e", r.ED2))
	fmt.Println(t.String())

	if r.Meta != nil {
		fmt.Println("metadata cache by kind:")
		var mt stats.Table
		mt.AddRow("kind", "accesses", "hits", "misses", "MPKI")
		for _, k := range memlayout.MetaKinds {
			s := r.Meta[k]
			mt.AddRow(k.String(),
				fmt.Sprintf("%d", s.Accesses), fmt.Sprintf("%d", s.Hits),
				fmt.Sprintf("%d", s.Misses), fmt.Sprintf("%.2f", s.MPKI))
		}
		fmt.Println(mt.String())
	}

	if len(r.TreeLevels) > 0 {
		fmt.Println("tree levels (leaf first):")
		var lt stats.Table
		lt.AddRow("level", "accesses", "hits", "hit rate")
		for lev, s := range r.TreeLevels {
			rate := 0.0
			if s.Accesses > 0 {
				rate = float64(s.Hits) / float64(s.Accesses)
			}
			lt.AddRow(fmt.Sprintf("%d", lev),
				fmt.Sprintf("%d", s.Accesses), fmt.Sprintf("%d", s.Hits),
				fmt.Sprintf("%.3f", rate))
		}
		fmt.Println(lt.String())
	}

	if cfg.Secure {
		fmt.Println("memory traffic:")
		var tt stats.Table
		tt.AddRow("stream", "reads", "writes")
		tt.AddRow("data", fmt.Sprintf("%d", r.Mem.DataReads), fmt.Sprintf("%d", r.Mem.DataWrites))
		tt.AddRow("counters", fmt.Sprintf("%d", r.Mem.CounterReads), fmt.Sprintf("%d", r.Mem.CounterWrites))
		tt.AddRow("hashes", fmt.Sprintf("%d", r.Mem.HashReads), fmt.Sprintf("%d", r.Mem.HashWrites))
		tt.AddRow("tree", fmt.Sprintf("%d", r.Mem.TreeReads), fmt.Sprintf("%d", r.Mem.TreeWrites))
		fmt.Println(tt.String())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mapsim: %v\n", err)
	os.Exit(1)
}
