// Command mapsd serves the MAPS simulator as a long-lived daemon:
// submit simulation or suite jobs over HTTP, poll their status and
// progress, and fetch results. Identical requests (by canonical
// config hash) are answered from an LRU result cache without
// re-simulating.
//
// Usage:
//
//	mapsd [-addr :8750] [-workers N] [-queue N] [-cache-entries N]
//	      [-log-format text|json] [-v] [-pprof]
//
// Endpoints (see internal/server and docs/OBSERVABILITY.md):
//
//	POST   /v1/jobs             GET /v1/jobs/{id}[/result|/progress]
//	DELETE /v1/jobs/{id}        GET /v1/benchmarks /v1/experiments
//	GET    /metrics             GET /healthz
//	GET    /debug/pprof/        (only with -pprof)
//
// Logs are structured (log/slog) on stderr; -log-format json emits
// one JSON object per line, -v adds Debug-level span and scrape
// events. On SIGINT/SIGTERM the daemon stops accepting work, drains
// running and queued jobs (bounded by -drain-timeout), and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/maps-sim/mapsim/internal/obs"
	"github.com/maps-sim/mapsim/internal/server"
)

func main() {
	addr := flag.String("addr", ":8750", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "simulation worker count")
	queue := flag.Int("queue", 64, "job queue depth (beyond it, submissions get 503)")
	cacheEntries := flag.Int("cache-entries", 256, "result cache capacity (entries)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to drain jobs on shutdown")
	logFormat := flag.String("log-format", obs.FormatText, "log output format: text or json")
	verbose := flag.Bool("v", false, "verbose logging (Debug level: spans, scrapes)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapsd: %v\n", err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		Logger:       logger,
		EnablePprof:  *withPprof,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("mapsd listening",
			"addr", *addr,
			"workers", *workers,
			"queue", *queue,
			"cache_entries", *cacheEntries,
			"pprof", *withPprof)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("mapsd draining", "signal", sig.String(), "drain_timeout", *drainTimeout)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "mapsd: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop intake first so drains can't be outrun by new submissions,
	// then let running and queued jobs finish.
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("http shutdown", "error", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			logger.Error("drain timed out; in-flight jobs were cancelled")
		} else {
			logger.Error("drain", "error", err)
		}
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
