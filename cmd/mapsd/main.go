// Command mapsd serves the MAPS simulator as a long-lived daemon:
// submit simulation or suite jobs over HTTP, poll their status, and
// fetch results. Identical requests (by canonical config hash) are
// answered from an LRU result cache without re-simulating.
//
// Usage:
//
//	mapsd [-addr :8750] [-workers N] [-queue N] [-cache-entries N]
//
// Endpoints (see internal/server and README "Running mapsd"):
//
//	POST   /v1/jobs             GET /v1/jobs/{id}[/result]
//	DELETE /v1/jobs/{id}        GET /v1/benchmarks /v1/experiments
//	GET    /metrics             GET /healthz
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains running
// and queued jobs (bounded by -drain-timeout), and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/maps-sim/mapsim/internal/server"
)

func main() {
	addr := flag.String("addr", ":8750", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "simulation worker count")
	queue := flag.Int("queue", 64, "job queue depth (beyond it, submissions get 503)")
	cacheEntries := flag.Int("cache-entries", 256, "result cache capacity (entries)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to drain jobs on shutdown")
	flag.Parse()

	srv := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("mapsd: listening on %s (%d workers, queue %d, cache %d entries)",
			*addr, *workers, *queue, *cacheEntries)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("mapsd: %s: draining (up to %v)", sig, *drainTimeout)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "mapsd: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop intake first so drains can't be outrun by new submissions,
	// then let running and queued jobs finish.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("mapsd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("mapsd: drain timed out; in-flight jobs were cancelled")
		} else {
			log.Printf("mapsd: drain: %v", err)
		}
		os.Exit(1)
	}
	log.Printf("mapsd: drained cleanly")
}
