// Command mapsd serves the MAPS simulator as a long-lived daemon:
// submit simulation, suite, or parameter-sweep jobs over HTTP, poll
// their status and progress, and fetch results. Identical requests
// (by canonical config hash) are answered from an LRU result cache
// without re-simulating; sweeps consult the same cache per point and
// report how many points it absorbed.
//
// Usage:
//
//	mapsd [-addr :8750] [-workers N] [-queue N] [-cache-entries N]
//	      [-store-dir DIR] [-store-max-bytes SIZE] [-peers URL,...]
//	      [-fleet URL,...] [-fleet-inflight N] [-straggler-after DUR]
//	      [-journal-dir DIR] [-journal-fsync always|interval|never]
//	      [-sweep-ttl DUR] [-max-sweeps N]
//	      [-log-format text|json] [-v] [-pprof] [-faults SPEC]
//
// Endpoints (see internal/server and docs/OBSERVABILITY.md):
//
//	POST   /v1/jobs             GET /v1/jobs/{id}[/result|/progress]
//	DELETE /v1/jobs/{id}        GET /v1/benchmarks /v1/experiments
//	POST   /v1/sweeps           GET /v1/sweeps/{id}[/result][?watch=1]
//	DELETE /v1/sweeps/{id}      GET /metrics /healthz /readyz
//	GET    /debug/pprof/        (only with -pprof)
//
// /healthz answers 200 while the process lives; /readyz answers 503
// while the daemon is draining or its queue is saturated, so load
// balancers stop routing before requests start being shed.
//
// Logs are structured (log/slog) on stderr; -log-format json emits
// one JSON object per line, -v adds Debug-level span and scrape
// events. On SIGINT/SIGTERM the daemon marks itself unready, stops
// accepting work, drains running and queued jobs (bounded by
// -drain-timeout), and exits.
//
// -store-dir enables the persistent result store's disk tier
// (internal/store): results survive restarts, so a re-run sweep is
// answered from disk instead of re-simulated. -store-max-bytes caps
// it ("2GB", "512MB", or bytes; 0 = unlimited) with an LRA GC.
// -peers lists other mapsd base URLs consulted on local store misses
// over GET /v1/store/{key}, so a fleet shares results instead of
// recomputing them. Pending disk writes are flushed during the
// graceful drain, and a one-line store summary is logged at startup
// and shutdown.
//
// -fleet registers other mapsd daemons as sweep workers: every
// POST /v1/sweeps fans its grid points out over this daemon's own
// pool plus the registered workers, with bounded in-flight work per
// worker (-fleet-inflight), health gating via each worker's /readyz,
// work stealing, and straggler re-issue after -straggler-after
// (negative disables it). Results dedupe exactly-once through the
// result store's canonical config hashes, so pointing -peers at the
// same daemons lets the fleet share results instead of recomputing
// them. See docs/FLEET.md for the operator guide.
//
// -journal-dir enables the per-sweep write-ahead journal
// (internal/journal): every sweep admission, point completion, and
// terminal status is logged durably, so a daemon killed mid-sweep
// replays intact journals on the next start, pre-marks the completed
// points (the result store answers them without re-simulation), and
// resumes dispatch under the same sweep ID — watching clients
// reattach to GET /v1/sweeps/{id}. Torn journal tails are truncated;
// corrupt journals are quarantined under <dir>/quarantine.
// -journal-fsync trades durability for append latency: "always"
// (default) fsyncs every record, "interval" batches syncs (~100ms
// windows), "never" leaves flushing to the OS. Finished sweeps are
// evicted from the registry (journal file included) after -sweep-ttl,
// or earliest-first beyond -max-sweeps; results stay in the store.
//
// -faults (default: the MAPSD_FAULTS environment variable) arms
// deterministic fault injection for chaos drills, e.g.
// "jobs.run:err:0.01,results.put:err:0.05" — see docs/ROBUSTNESS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/maps-sim/mapsim"
	"github.com/maps-sim/mapsim/internal/cliutil"
	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/fleet"
	"github.com/maps-sim/mapsim/internal/journal"
	"github.com/maps-sim/mapsim/internal/obs"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/server"
	"github.com/maps-sim/mapsim/internal/store"
)

// buildPeers turns the -peers list into store peers backed by the
// retrying mapsim.Client, so peer fill inherits its backoff and
// Retry-After handling. Retries are kept short: a slow peer must cost
// less than recomputing locally.
func buildPeers(spec string) []store.Peer {
	var peers []store.Peer
	for _, u := range strings.Split(spec, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		pc := mapsim.NewClient(u)
		pc.MaxRetries = 1
		pc.RetryBase = 50 * time.Millisecond
		peers = append(peers, store.Peer{
			Name: u,
			Fetch: func(ctx context.Context, key results.Key) ([]byte, error) {
				return pc.StoreFetch(ctx, string(key))
			},
		})
	}
	return peers
}

// buildFleet turns the -fleet list into remote sweep workers over the
// retrying mapsim.Client. Client retries stay at their defaults: a
// dispatched point is worth a few retransmits before the coordinator
// writes the worker off and re-issues elsewhere.
func buildFleet(spec string, maxInflight int) []fleet.Worker {
	var workers []fleet.Worker
	for _, u := range strings.Split(spec, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		workers = append(workers, mapsim.FleetWorker(mapsim.NewClient(u), maxInflight))
	}
	return workers
}

func main() {
	addr := flag.String("addr", ":8750", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "simulation worker count")
	shards := flag.Int("shards", 0, "epoch shards per run: 0 sequential, N forces N epochs, -1 auto-sizes to idle CPUs")
	queue := flag.Int("queue", 64, "job queue depth (beyond it, submissions get 503)")
	cacheEntries := flag.Int("cache-entries", 256, "result cache capacity (entries)")
	storeDir := flag.String("store-dir", "", "persistent result-store directory (empty = memory-only)")
	storeMax := flag.String("store-max-bytes", "1GB", "disk-tier size cap before GC evicts least-recently-accessed results (0 = unlimited)")
	peersSpec := flag.String("peers", "", "comma-separated peer mapsd base URLs consulted on local store misses")
	fleetSpec := flag.String("fleet", "", "comma-separated worker mapsd base URLs sweeps fan out to (this daemon's pool is always the first worker)")
	fleetInflight := flag.Int("fleet-inflight", 2, "max in-flight sweep points per fleet worker")
	stragglerAfter := flag.Duration("straggler-after", 30*time.Second, "re-issue a sweep point still in flight on one worker after this long (negative disables)")
	journalDir := flag.String("journal-dir", "", "sweep write-ahead journal directory; unfinished sweeps resume on restart (empty = no journal)")
	journalFsync := flag.String("journal-fsync", "always", "journal fsync policy: always, interval, or never")
	sweepTTL := flag.Duration("sweep-ttl", time.Hour, "evict finished sweeps (and their journals) from the registry after this long (negative disables)")
	maxSweeps := flag.Int("max-sweeps", 512, "max sweeps kept in the registry; oldest finished are evicted first (negative = uncapped)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to drain jobs on shutdown")
	logFormat := flag.String("log-format", obs.FormatText, "log output format: text or json")
	verbose := flag.Bool("v", false, "verbose logging (Debug level: spans, scrapes)")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	faultSpec := flag.String("faults", os.Getenv("MAPSD_FAULTS"),
		"fault-injection spec, e.g. point:mode[:rate],... (default $MAPSD_FAULTS)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *verbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapsd: %v\n", err)
		os.Exit(2)
	}

	if *faultSpec != "" {
		if err := faults.ArmSpec(*faultSpec); err != nil {
			fmt.Fprintf(os.Stderr, "mapsd: -faults: %v\n", err)
			os.Exit(2)
		}
		logger.Warn("fault injection armed", "points", faults.Armed(), "spec", *faultSpec)
	}

	maxBytes, err := cliutil.ParseSize(*storeMax)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapsd: -store-max-bytes: %v\n", err)
		os.Exit(2)
	}
	st, err := store.Open(store.Options{
		Memory:   results.New(*cacheEntries),
		Dir:      *storeDir,
		MaxBytes: int64(maxBytes),
		Peers:    buildPeers(*peersSpec),
		Logger:   logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapsd: -store-dir: %v\n", err)
		os.Exit(2)
	}
	ss := st.Stats()
	storeDirLabel := ss.Dir
	if storeDirLabel == "" {
		storeDirLabel = "(memory-only)"
	}
	logger.Info("result store open",
		"dir", storeDirLabel, "entries", ss.DiskEntries, "bytes", ss.DiskBytes, "peers", ss.Peers)

	var jdir *journal.Dir
	if *journalDir != "" {
		sync, err := journal.ParseSync(*journalFsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapsd: -journal-fsync: %v\n", err)
			os.Exit(2)
		}
		jdir, err = journal.Open(journal.Options{Dir: *journalDir, Sync: sync, Logger: logger})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapsd: -journal-dir: %v\n", err)
			os.Exit(2)
		}
		logger.Info("sweep journal open", "dir", jdir.Path(), "fsync", sync.String())
	}

	fleetWorkers := buildFleet(*fleetSpec, *fleetInflight)
	if len(fleetWorkers) > 0 {
		names := make([]string, len(fleetWorkers))
		for i, w := range fleetWorkers {
			names[i] = w.Runner.Name()
		}
		logger.Info("fleet workers registered",
			"workers", names, "max_inflight", *fleetInflight, "straggler_after", *stragglerAfter)
	}

	srv := server.New(server.Config{
		Workers:             *workers,
		Shards:              *shards,
		QueueDepth:          *queue,
		Store:               st,
		Logger:              logger,
		EnablePprof:         *withPprof,
		Fleet:               fleetWorkers,
		FleetStragglerAfter: *stragglerAfter,
		Journal:             jdir,
		SweepTTL:            *sweepTTL,
		MaxSweeps:           *maxSweeps,
	})
	// Timeouts bound every connection phase so one stalled client
	// cannot pin a goroutine: headers in 10s, the whole request in
	// 30s, responses written within 60s (suite results are large but
	// bounded), idle keep-alives reaped after 2 minutes.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("mapsd listening",
			"addr", *addr,
			"workers", *workers,
			"queue", *queue,
			"cache_entries", *cacheEntries,
			"pprof", *withPprof)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("mapsd draining", "signal", sig.String(), "drain_timeout", *drainTimeout)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "mapsd: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Flip readiness first — probes see 503 and load balancers stop
	// routing — then stop intake so drains can't be outrun by new
	// submissions, then let running and queued jobs finish.
	srv.MarkDraining()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("http shutdown", "error", err)
	}
	// srv.Shutdown drains the pool, then flushes every pending
	// disk-tier write and closes the store — results the final jobs
	// computed are on disk before the process exits.
	drainErr := srv.Shutdown(ctx)
	ss = st.Stats()
	logger.Info("result store closed",
		"dir", storeDirLabel, "entries", ss.DiskEntries, "bytes", ss.DiskBytes,
		"disk_puts", ss.DiskPuts, "dropped_disk_puts", ss.DroppedDiskPuts,
		"gc_evictions", ss.GCEvictions, "peer_fills", ss.PeerFills)
	if drainErr != nil {
		if errors.Is(drainErr, context.DeadlineExceeded) {
			logger.Error("drain timed out; in-flight jobs were cancelled")
		} else {
			logger.Error("drain", "error", drainErr)
		}
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
