package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSIGTERMDrainsRunningJobs exercises the real binary: with a job
// mid-simulation, SIGTERM must drain it to completion (exit 0,
// "drained cleanly") rather than killing it.
func TestSIGTERMDrainsRunningJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "mapsd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Reserve a port; the tiny close-to-bind window is acceptable in
	// a test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var logs bytes.Buffer
	cmd := exec.Command(bin, "-addr", addr, "-workers", "1", "-drain-timeout", "2m")
	cmd.Stderr = &logs
	cmd.Stdout = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitUp := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(waitUp) {
			t.Fatalf("daemon never came up:\n%s", logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A job big enough to still be running when the signal lands.
	body := `{"type":"run","config":{"benchmark":"libquantum","instructions":5000000}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, buf.String())
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	// Ensure it is actually running (left the queue) before signalling.
	for deadline := time.Now().Add(10 * time.Second); ; {
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		var cur struct {
			State string `json:"state"`
		}
		json.Unmarshal(buf.Bytes(), &cur)
		if cur.State == "running" {
			break
		}
		if cur.State != "queued" || time.Now().After(deadline) {
			t.Fatalf("job state %q before signal", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("mapsd exited %v (drain should exit 0):\n%s", err, logs.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("mapsd did not exit after SIGTERM:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "drained cleanly") {
		t.Fatalf("no clean-drain log; the running job was not drained:\n%s", logs.String())
	}
}
