// Command benchcheck is the perf-regression gate around the hot-loop
// benchmarks. It parses `go test -bench -benchmem` output on stdin
// and either records it into the committed baseline file
// (BENCH_kernel.json, mode -update) or compares it against that
// baseline and exits nonzero on a regression (mode -baseline).
//
// Repeated -count runs of the same benchmark are collapsed to the
// fastest run: on a shared machine the minimum is the measurement
// least polluted by steal time, and comparisons between minima are
// far more stable than between means.
//
//	go test -run '^$' -bench . -benchmem -count 5 ./internal/sim | benchcheck -update
//	go test -run '^$' -bench . -benchmem -count 5 ./internal/sim | benchcheck -baseline BENCH_kernel.json -tolerance 0.10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's measured figures.
type Entry struct {
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     float64 `json:"b_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	AccessesPerSec float64 `json:"accesses_per_sec,omitempty"`
}

// Baseline is the on-disk layout of BENCH_kernel.json. PrePR freezes
// the numbers measured at the commit before the performance overhaul;
// Current is what `make bench` most recently recorded and what the
// comparison mode gates against.
type Baseline struct {
	Note    string           `json:"note,omitempty"`
	PrePR   map[string]Entry `json:"pre_pr,omitempty"`
	Current map[string]Entry `json:"current"`
}

func main() {
	var (
		update    = flag.Bool("update", false, "record stdin into the baseline file's current section")
		out       = flag.String("out", "BENCH_kernel.json", "baseline file written by -update")
		baseline  = flag.String("baseline", "", "baseline file to compare stdin against")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional ns/op growth before failing")
	)
	flag.Parse()

	got, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	switch {
	case *update:
		if err := writeBaseline(*out, got); err != nil {
			fatal(err)
		}
	case *baseline != "":
		if err := compare(*baseline, got, *tolerance); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: %d benchmarks within %.0f%% of baseline\n", len(got), *tolerance*100)
	default:
		fatal(fmt.Errorf("one of -update or -baseline is required"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}

// parseBench extracts Entry values from testing's benchmark output,
// keeping the fastest (minimum ns/op) run per benchmark name. The
// trailing -N GOMAXPROCS suffix is stripped so baselines survive a
// core-count change.
func parseBench(f *os.File) (map[string]Entry, error) {
	got := make(map[string]Entry)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var e Entry
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
				seen = true
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "accesses/s":
				e.AccessesPerSec = v
			}
		}
		if !seen {
			continue
		}
		if prev, ok := got[name]; !ok || e.NsPerOp < prev.NsPerOp {
			got[name] = e
		}
	}
	return got, sc.Err()
}

// writeBaseline replaces the file's current section with got. The
// pre_pr section and note survive; a brand-new file freezes got as
// pre_pr too so the very first -update establishes both points.
func writeBaseline(path string, got map[string]Entry) error {
	base := Baseline{
		Note: "Hot-loop benchmark baseline (see docs/PERFORMANCE.md). " +
			"Regenerate with `make bench`; `make check` fails on ns/op regressions vs the current section.",
	}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if base.PrePR == nil {
		base.PrePR = got
	}
	base.Current = got
	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// compare fails if any baseline benchmark is missing from got, any
// got benchmark is missing from the baseline (a new benchmark must be
// recorded with `make bench` before the gate knows its floor), got
// slower by more than the tolerance fraction, or allocates more than
// the baseline (plus one alloc of slack for map-growth timing).
func compare(path string, got map[string]Entry, tolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(base.Current) == 0 {
		return fmt.Errorf("%s has no current section; run `make bench` first", path)
	}
	var bad []string
	for name, want := range base.Current {
		have, ok := got[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from input", name))
			continue
		}
		if limit := want.NsPerOp * (1 + tolerance); have.NsPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%",
				name, have.NsPerOp, want.NsPerOp, tolerance*100))
		}
		if have.AllocsPerOp > want.AllocsPerOp+1 {
			bad = append(bad, fmt.Sprintf("%s: %.0f allocs/op exceeds baseline %.0f allocs/op",
				name, have.AllocsPerOp, want.AllocsPerOp))
		}
	}
	for name := range got {
		if _, ok := base.Current[name]; !ok {
			bad = append(bad, fmt.Sprintf("%s: not in baseline; run `make bench` to record it", name))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("performance regression vs %s:\n  %s", path, strings.Join(bad, "\n  "))
	}
	return nil
}
