package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTempBaseline(t *testing.T, current map[string]Entry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	buf, err := json.Marshal(Baseline{Current: current})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinTolerance(t *testing.T) {
	path := writeTempBaseline(t, map[string]Entry{
		"BenchmarkRunSecure": {NsPerOp: 100, AllocsPerOp: 10},
	})
	got := map[string]Entry{
		"BenchmarkRunSecure": {NsPerOp: 105, AllocsPerOp: 10},
	}
	if err := compare(path, got, 0.10); err != nil {
		t.Fatalf("5%% growth under a 10%% tolerance must pass: %v", err)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	path := writeTempBaseline(t, map[string]Entry{
		"BenchmarkRunSecure": {NsPerOp: 100, AllocsPerOp: 10},
	})
	got := map[string]Entry{
		"BenchmarkRunSecure": {NsPerOp: 150, AllocsPerOp: 10},
	}
	err := compare(path, got, 0.10)
	if err == nil || !strings.Contains(err.Error(), "exceeds baseline") {
		t.Fatalf("50%% growth must fail the gate, got %v", err)
	}
}

func TestCompareFlagsMissingFromInput(t *testing.T) {
	path := writeTempBaseline(t, map[string]Entry{
		"BenchmarkRunSecure":   {NsPerOp: 100},
		"BenchmarkRunInsecure": {NsPerOp: 50},
	})
	got := map[string]Entry{
		"BenchmarkRunSecure": {NsPerOp: 100},
	}
	err := compare(path, got, 0.10)
	if err == nil || !strings.Contains(err.Error(), "missing from input") {
		t.Fatalf("baseline benchmark absent from the run must fail, got %v", err)
	}
}

func TestCompareFlagsMissingFromBaseline(t *testing.T) {
	// The reverse check: a benchmark the current run measures but the
	// committed baseline has never recorded means `make bench` wasn't
	// re-run after adding it — the gate would silently not cover it.
	path := writeTempBaseline(t, map[string]Entry{
		"BenchmarkRunSecure": {NsPerOp: 100},
	})
	got := map[string]Entry{
		"BenchmarkRunSecure":         {NsPerOp: 100},
		"BenchmarkRunSecureParallel": {NsPerOp: 30},
	}
	err := compare(path, got, 0.10)
	if err == nil || !strings.Contains(err.Error(), "not in baseline") {
		t.Fatalf("unrecorded benchmark must fail the gate, got %v", err)
	}
}
