// Command mapstrace records metadata-access traces to disk and
// inspects them. Traces are the raw material of the offline policies
// (MIN, iterMIN, CSOPT) and the reuse analyses; persisting them lets
// expensive characterization runs be analyzed repeatedly.
//
// Usage:
//
//	mapstrace record -bench canneal -out canneal.trace [-instructions N] [-meta 64KB]
//	mapstrace record-workload -bench canneal -out canneal.mtrc [-gz] [-instructions N] [-seed N]
//	mapstrace info canneal.trace
//	mapstrace analyze canneal.trace
//
// record taps the simulator's metadata stream (counters, hashes, tree
// levels); record-workload captures the *workload's* data-access
// stream instead, in the chunked streaming format that `maps run
// -trace` replays in constant memory. Both info and analyze stream
// their input, so multi-gigabyte traces never load into memory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/maps-sim/mapsim/internal/cliutil"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/reuse"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
	wspec "github.com/maps-sim/mapsim/internal/workload/spec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "record-workload":
		err = recordWorkload(os.Args[2:])
	case "info":
		err = withReader(os.Args[2:], info)
	case "analyze":
		err = withReader(os.Args[2:], analyze)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapstrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `mapstrace — record and inspect access traces

usage:
  mapstrace record -bench <name> -out <file> [-instructions N] [-meta SIZE]
  mapstrace record-workload (-bench <name> | -spec <file>) -out <file> [-gz] [-instructions N] [-seed N]
  mapstrace info <file>       counts, read/write mix, miss costs
  mapstrace analyze <file>    reuse-distance CDFs per metadata type

record captures the simulator's metadata stream; record-workload
captures a workload generator's data-access stream for constant-memory
replay via "maps run -trace". info and analyze stream their input.`)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "libquantum", "benchmark name")
	out := fs.String("out", "", "output file (required)")
	instructions := fs.Uint64("instructions", 2_000_000, "simulated instructions")
	metaSize := fs.String("meta", "0", "metadata cache size during recording (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("record: -out is required")
	}
	size, err := cliutil.ParseSize(*metaSize)
	if err != nil {
		return err
	}

	var tr trace.Trace
	cfg := sim.Config{
		Benchmark:    *bench,
		Instructions: *instructions,
		Secure:       true,
		Speculation:  true,
		Tap:          tr.Append,
	}
	if size > 0 {
		cfg.Meta = &metacache.Config{Size: size, Ways: 8}
	}
	if _, err := sim.Run(cfg); err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := tr.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d metadata accesses (%d bytes) from %s to %s\n",
		tr.Len(), n, *bench, *out)
	return nil
}

// recordWorkload drains a workload generator — a named benchmark or a
// declarative spec — into a streaming trace that `maps run -trace`
// replays in constant memory. It records until the stream's gap sum
// covers the instruction budget plus warmup and slack, so a replay at
// the same -instructions never needs to wrap.
func recordWorkload(args []string) error {
	fs := flag.NewFlagSet("record-workload", flag.ExitOnError)
	bench := fs.String("bench", "", "named benchmark to record")
	specFile := fs.String("spec", "", "workload-spec file (YAML or JSON) to record")
	out := fs.String("out", "", "output file (required)")
	compress := fs.Bool("gz", false, "gzip-compress the record stream")
	instructions := fs.Uint64("instructions", 2_000_000, "instruction budget the recording must cover")
	seed := fs.Int64("seed", 0, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("record-workload: -out is required")
	}
	if (*bench == "") == (*specFile == "") {
		return fmt.Errorf("record-workload: exactly one of -bench or -spec is required")
	}

	var gen workload.Generator
	if *bench != "" {
		g, err := workload.New(*bench)
		if err != nil {
			return err
		}
		gen = g
	} else {
		data, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		sp, err := wspec.Parse(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *specFile, err)
		}
		if gen, err = sp.Generator(); err != nil {
			return err
		}
	}
	// The simulator maps seed 0 to 1 (sim.Config's default), so do
	// the same here: a default-seed replay then reproduces the
	// default-seed direct run bit for bit.
	if *seed == 0 {
		*seed = 1
	}
	gen.Reset(*seed)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, trace.StreamHeader{
		Name:      gen.Name(),
		Footprint: gen.Footprint(),
	}, *compress)
	if err != nil {
		return err
	}

	// Warmup defaults to Instructions/10; an extra eighth of slack
	// absorbs rounding in the simulator's access scheduling.
	target := *instructions + *instructions/10 + *instructions/8
	var gapSum uint64
	var a workload.Access
	for gapSum < target {
		gen.Next(&a)
		gapSum += uint64(a.Gap)
		rec := trace.Record{Addr: a.Addr, Write: a.Write, Gap: a.Gap}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses (%d instructions covered) from %s to %s\n",
		w.Count(), gapSum, gen.Name(), *out)
	return nil
}

// withReader opens the single trace-file argument as a streaming
// reader (both the streaming and legacy formats) and hands it to fn.
func withReader(args []string, fn func(*trace.Reader) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one trace file argument")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", args[0], err)
	}
	if err := fn(r); err != nil {
		return fmt.Errorf("reading %s: %w", args[0], err)
	}
	return nil
}

func info(r *trace.Reader) error {
	type agg struct {
		reads, writes uint64
		costSum       uint64
		costMax       uint8
	}
	perKind := map[memlayout.Kind]*agg{}
	var total, gapSum uint64
	var rec trace.Record
	for {
		if err := r.Next(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		total++
		gapSum += uint64(rec.Gap)
		k := memlayout.Kind(rec.Class)
		g := perKind[k]
		if g == nil {
			g = &agg{}
			perKind[k] = g
		}
		if rec.Write {
			g.writes++
		} else {
			g.reads++
		}
		g.costSum += uint64(rec.Cost)
		if rec.Cost > g.costMax {
			g.costMax = rec.Cost
		}
	}
	if h := r.Header(); h.Name != "" {
		fmt.Printf("workload: %s (footprint %d bytes)\n", h.Name, h.Footprint)
	}
	fmt.Printf("trace: %d accesses", total)
	if total > 0 {
		fmt.Printf(", mean gap %.2f", float64(gapSum)/float64(total))
	}
	fmt.Print("\n\n")
	var t stats.Table
	t.AddRow("kind", "reads", "writes", "write%", "avg cost", "max cost")
	kinds := append([]memlayout.Kind{memlayout.KindData}, memlayout.MetaKinds...)
	for _, k := range kinds {
		g := perKind[k]
		if g == nil {
			continue
		}
		n := g.reads + g.writes
		t.AddRow(k.String(),
			fmt.Sprintf("%d", g.reads), fmt.Sprintf("%d", g.writes),
			fmt.Sprintf("%.1f%%", 100*float64(g.writes)/float64(n)),
			fmt.Sprintf("%.2f", float64(g.costSum)/float64(n)),
			fmt.Sprintf("%d", g.costMax))
	}
	fmt.Print(t.String())
	return nil
}

func analyze(r *trace.Reader) error {
	an := reuse.NewAnalyzer(0)
	var rec trace.Record
	for {
		if err := r.Next(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		an.Record(rec.Addr, memlayout.Kind(rec.Class), rec.Write)
	}
	thresholds := []uint64{512, 4 << 10, 32 << 10, 288 << 10, 1 << 20, 16 << 20}
	var t stats.Table
	header := []string{"kind", "accesses", "cold"}
	for _, th := range thresholds {
		switch {
		case th >= 1<<20:
			header = append(header, fmt.Sprintf("<=%dMB", th>>20))
		case th >= 1<<10:
			header = append(header, fmt.Sprintf("<=%dKB", th>>10))
		default:
			header = append(header, fmt.Sprintf("<=%dB", th))
		}
	}
	header = append(header, "bimodality")
	t.AddRow(header...)
	kinds := append([]memlayout.Kind{memlayout.KindData}, memlayout.MetaKinds...)
	for _, k := range kinds {
		if an.Accesses(k) == 0 {
			continue
		}
		row := []string{k.String(), fmt.Sprintf("%d", an.Accesses(k)), fmt.Sprintf("%d", an.ColdAccesses(k))}
		for _, v := range an.CDF(k, thresholds) {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		row = append(row, fmt.Sprintf("%.2f", an.BimodalityScore(k)))
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	return nil
}
