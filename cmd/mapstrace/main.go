// Command mapstrace records metadata-access traces to disk and
// inspects them. Traces are the raw material of the offline policies
// (MIN, iterMIN, CSOPT) and the reuse analyses; persisting them lets
// expensive characterization runs be analyzed repeatedly.
//
// Usage:
//
//	mapstrace record -bench canneal -out canneal.trace [-instructions N] [-meta 64KB]
//	mapstrace info canneal.trace
//	mapstrace analyze canneal.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/maps-sim/mapsim/internal/cliutil"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/reuse"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = withTrace(os.Args[2:], info)
	case "analyze":
		err = withTrace(os.Args[2:], analyze)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mapstrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `mapstrace — record and inspect metadata access traces

usage:
  mapstrace record -bench <name> -out <file> [-instructions N] [-meta SIZE]
  mapstrace info <file>       counts, read/write mix, miss costs
  mapstrace analyze <file>    reuse-distance CDFs per metadata type`)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "libquantum", "benchmark name")
	out := fs.String("out", "", "output file (required)")
	instructions := fs.Uint64("instructions", 2_000_000, "simulated instructions")
	metaSize := fs.String("meta", "0", "metadata cache size during recording (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("record: -out is required")
	}
	size, err := cliutil.ParseSize(*metaSize)
	if err != nil {
		return err
	}

	var tr trace.Trace
	cfg := sim.Config{
		Benchmark:    *bench,
		Instructions: *instructions,
		Secure:       true,
		Speculation:  true,
		Tap:          tr.Append,
	}
	if size > 0 {
		cfg.Meta = &metacache.Config{Size: size, Ways: 8}
	}
	if _, err := sim.Run(cfg); err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := tr.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d metadata accesses (%d bytes) from %s to %s\n",
		tr.Len(), n, *bench, *out)
	return nil
}

func withTrace(args []string, fn func(*trace.Trace) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one trace file argument")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	var tr trace.Trace
	if _, err := tr.ReadFrom(f); err != nil {
		return fmt.Errorf("reading %s: %w", args[0], err)
	}
	return fn(&tr)
}

func info(tr *trace.Trace) error {
	type agg struct {
		reads, writes uint64
		costSum       uint64
		costMax       uint8
	}
	perKind := map[memlayout.Kind]*agg{}
	for _, a := range tr.Accesses {
		k := memlayout.Kind(a.Class)
		g := perKind[k]
		if g == nil {
			g = &agg{}
			perKind[k] = g
		}
		if a.Write {
			g.writes++
		} else {
			g.reads++
		}
		g.costSum += uint64(a.Cost)
		if a.Cost > g.costMax {
			g.costMax = a.Cost
		}
	}
	fmt.Printf("trace: %d metadata accesses\n\n", tr.Len())
	var t stats.Table
	t.AddRow("kind", "reads", "writes", "write%", "avg cost", "max cost")
	for _, k := range memlayout.MetaKinds {
		g := perKind[k]
		if g == nil {
			continue
		}
		total := g.reads + g.writes
		t.AddRow(k.String(),
			fmt.Sprintf("%d", g.reads), fmt.Sprintf("%d", g.writes),
			fmt.Sprintf("%.1f%%", 100*float64(g.writes)/float64(total)),
			fmt.Sprintf("%.2f", float64(g.costSum)/float64(total)),
			fmt.Sprintf("%d", g.costMax))
	}
	fmt.Print(t.String())
	return nil
}

func analyze(tr *trace.Trace) error {
	an := reuse.NewAnalyzer(tr.Len())
	for _, a := range tr.Accesses {
		an.Record(a.Addr, memlayout.Kind(a.Class), a.Write)
	}
	thresholds := []uint64{512, 4 << 10, 32 << 10, 288 << 10, 1 << 20, 16 << 20}
	var t stats.Table
	header := []string{"kind", "accesses", "cold"}
	for _, th := range thresholds {
		switch {
		case th >= 1<<20:
			header = append(header, fmt.Sprintf("<=%dMB", th>>20))
		case th >= 1<<10:
			header = append(header, fmt.Sprintf("<=%dKB", th>>10))
		default:
			header = append(header, fmt.Sprintf("<=%dB", th))
		}
	}
	header = append(header, "bimodality")
	t.AddRow(header...)
	for _, k := range memlayout.MetaKinds {
		if an.Accesses(k) == 0 {
			continue
		}
		row := []string{k.String(), fmt.Sprintf("%d", an.Accesses(k)), fmt.Sprintf("%d", an.ColdAccesses(k))}
		for _, v := range an.CDF(k, thresholds) {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		row = append(row, fmt.Sprintf("%.2f", an.BimodalityScore(k)))
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	return nil
}
