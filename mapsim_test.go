package mapsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	r, err := Run(Config{
		Benchmark:    "libquantum",
		Instructions: 100_000,
		Secure:       true,
		Speculation:  true,
		Meta:         &MetaConfig{Size: 64 << 10, Ways: 8, Content: AllTypes},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MetaMPKI <= 0 || r.Meta[KindCounter].Accesses == 0 {
		t.Errorf("facade run produced empty results: %+v", r)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if len(Benchmarks()) != 16 {
		t.Errorf("benchmarks: %v", Benchmarks())
	}
	if len(MemoryIntensiveBenchmarks()) == 0 {
		t.Error("memory-intensive list empty")
	}
	g, err := NewBenchmark("canneal")
	if err != nil || g.Name() != "canneal" {
		t.Errorf("NewBenchmark: %v", err)
	}
}

func TestFacadePolicies(t *testing.T) {
	for _, p := range []ReplacementPolicy{
		NewLRU(), NewPLRU(), NewFIFO(), NewSRRIP(), NewBRRIP(), NewEVA(),
		NewRandomPolicy(1), NewMIN(&Trace{}),
	} {
		if p.Name() == "" {
			t.Error("policy without name")
		}
	}
	for _, s := range []PartitionScheme{NoPartition(), StaticPartition(4), DynamicPartition(2, 6)} {
		if s.Name() == "" {
			t.Error("scheme without name")
		}
	}
}

func TestFacadeTables(t *testing.T) {
	if !strings.Contains(Table1(), "3GHz") {
		t.Error("Table1 incomplete")
	}
	if !strings.Contains(Table2(), "SGX") {
		t.Error("Table2 incomplete")
	}
}

func TestFacadeSecureMemory(t *testing.T) {
	sm, err := NewSecureMemory(PoisonIvy, 1<<20, bytes.Repeat([]byte{7}, 16), []byte("mac"))
	if err != nil {
		t.Fatal(err)
	}
	var in, out Block
	copy(in[:], "facade round trip")
	if err := sm.Store(0, &in); err != nil {
		t.Fatal(err)
	}
	if err := sm.Load(0, &out); err != nil || out != in {
		t.Fatalf("round trip: %v", err)
	}
	sm.Memory().FlipBit(0, 5)
	if err := sm.Load(0, &out); err == nil {
		t.Error("tamper undetected through facade")
	}
	if _, err := NewSecureMemory(SGX, 123, nil, nil); err == nil {
		t.Error("bad size accepted")
	}
}

func TestFacadeReuseAnalyzer(t *testing.T) {
	an := NewReuseAnalyzer(0)
	_, err := Run(Config{
		Benchmark:    "libquantum",
		Instructions: 50_000,
		Secure:       true,
		Tap:          func(a TraceAccess) { an.Record(a.Addr, Kind(a.Class), a.Write) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if an.Accesses(KindCounter) == 0 {
		t.Error("analyzer saw no counters")
	}
}

func TestFacadeExperimentSmoke(t *testing.T) {
	opt := ExperimentOptions{Instructions: 60_000, Benchmarks: []string{"libquantum"}, Parallelism: 2}
	r, err := Fig1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MPKI) != 1 {
		t.Error("fig1 empty")
	}
}

func TestFacadeExperimentWrappers(t *testing.T) {
	// Exercise every experiment wrapper at minimal scale so the
	// facade stays wired end to end.
	opt := ExperimentOptions{Instructions: 50_000, Benchmarks: []string{"libquantum"}, Parallelism: 2}
	if _, err := Fig2(opt); err != nil {
		t.Errorf("Fig2: %v", err)
	}
	if _, err := Fig3(opt); err != nil {
		t.Errorf("Fig3: %v", err)
	}
	if _, err := Fig4(opt); err != nil {
		t.Errorf("Fig4: %v", err)
	}
	if _, err := Fig5(opt); err != nil {
		t.Errorf("Fig5: %v", err)
	}
	if _, err := Fig6(opt); err != nil {
		t.Errorf("Fig6: %v", err)
	}
	if _, err := Fig7(opt); err != nil {
		t.Errorf("Fig7: %v", err)
	}
}

func TestFacadeRunSeeds(t *testing.T) {
	res, err := RunSeeds(Config{Benchmark: "libquantum", Instructions: 60_000, Secure: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds != 2 || res.MetaMPKI.Mean <= 0 {
		t.Errorf("seeds result: %+v", res)
	}
}

func TestFacadePerTypePolicies(t *testing.T) {
	for _, p := range []ReplacementPolicy{NewTypePredictor(), NewPerTypeEVA()} {
		r, err := Run(Config{Benchmark: "fft", Instructions: 60_000, Secure: true,
			Meta: &MetaConfig{Size: 16 << 10, Ways: 8, Policy: p}})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if r.MetaMPKI <= 0 {
			t.Errorf("%s: empty result", p.Name())
		}
	}
}

func TestFacadeCachedSecureMemory(t *testing.T) {
	sm, err := NewSecureMemory(PoisonIvy, 1<<20, make([]byte, 16), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	csm, err := NewCachedSecureMemory(sm, 8*64, 8)
	if err != nil {
		t.Fatal(err)
	}
	var in, out Block
	copy(in[:], "cached")
	if err := csm.Store(0, &in); err != nil {
		t.Fatal(err)
	}
	if err := csm.Load(0, &out); err != nil || out != in {
		t.Fatalf("cached round trip: %v", err)
	}
	if csm.CounterHits == 0 {
		t.Error("no cached hits through facade")
	}
}
