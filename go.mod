module github.com/maps-sim/mapsim

go 1.23
