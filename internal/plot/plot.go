// Package plot renders small ASCII charts for terminal experiment
// reports: multi-series line charts (reuse-distance CDFs, MPKI-vs-size
// curves) and grouped horizontal bar charts (per-benchmark
// comparisons). It exists so `cmd/maps` can show figure-shaped output
// next to the tables.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// seriesMarks are the per-series glyphs, in assignment order.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Series is one named line on a chart.
type Series struct {
	Name string
	// Y values; all series on a chart share the X positions.
	Y []float64
}

// LineChart is a fixed-grid multi-series chart with labeled X ticks.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	// XTicks label each sample position.
	XTicks []string
	Height int // plot rows (default 12)
	Series []Series
	// YMax overrides auto-scaling when > 0.
	YMax float64
}

// Render draws the chart.
func (c *LineChart) Render() string {
	if len(c.Series) == 0 || len(c.XTicks) == 0 {
		return c.Title + "\n(no data)\n"
	}
	height := c.Height
	if height <= 0 {
		height = 12
	}
	ymax := c.YMax
	if ymax <= 0 {
		for _, s := range c.Series {
			for _, v := range s.Y {
				if !math.IsNaN(v) && v > ymax {
					ymax = v
				}
			}
		}
	}
	if ymax <= 0 {
		ymax = 1
	}

	cols := len(c.XTicks)
	colWidth := 0
	for _, t := range c.XTicks {
		if len(t) > colWidth {
			colWidth = len(t)
		}
	}
	colWidth += 2

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colWidth))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for xi, v := range s.Y {
			if xi >= cols || math.IsNaN(v) {
				continue
			}
			level := int(math.Round(v / ymax * float64(height-1)))
			if level < 0 {
				level = 0
			}
			if level > height-1 {
				level = height - 1
			}
			row := height - 1 - level
			col := xi*colWidth + colWidth/2
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			} else {
				grid[row][col] = '?' // overlapping series
			}
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	axisWidth := 8
	for r, row := range grid {
		label := strings.Repeat(" ", axisWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.3g ", axisWidth-1, ymax)
		case len(grid) - 1:
			label = fmt.Sprintf("%*.3g ", axisWidth-1, 0.0)
		}
		sb.WriteString(label)
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", axisWidth))
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", cols*colWidth))
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat(" ", axisWidth+1))
	for _, t := range c.XTicks {
		fmt.Fprintf(&sb, "%-*s", colWidth, centered(t, colWidth))
	}
	sb.WriteByte('\n')
	if c.XLabel != "" {
		fmt.Fprintf(&sb, "%s%s\n", strings.Repeat(" ", axisWidth+1), c.XLabel)
	}
	// Legend.
	sb.WriteString(strings.Repeat(" ", axisWidth+1))
	for si, s := range c.Series {
		if si > 0 {
			sb.WriteString("   ")
		}
		fmt.Fprintf(&sb, "%c %s", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	sb.WriteByte('\n')
	return sb.String()
}

func centered(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

// Bar is one bar of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart is a horizontal bar chart.
type BarChart struct {
	Title string
	Width int // bar area width (default 40)
	Bars  []Bar
	// Max overrides auto-scaling when > 0.
	Max float64
}

// Render draws the chart.
func (c *BarChart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	max := c.Max
	if max <= 0 {
		for _, b := range c.Bars {
			if b.Value > max {
				max = b.Value
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	labelW := 0
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		n := int(math.Round(b.Value / max * float64(width)))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.2f\n",
			labelW, b.Label, strings.Repeat("=", n), strings.Repeat(" ", width-n), b.Value)
	}
	return sb.String()
}

// StackedBar is one bar composed of segments that sum to <= 1.
type StackedBar struct {
	Label    string
	Segments []float64
}

// StackedChart draws normalized stacked bars (Figure 4's shape).
type StackedChart struct {
	Title    string
	Width    int
	Legend   []string
	Bars     []StackedBar
	segMarks []byte
}

// Render draws the chart.
func (c *StackedChart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	marks := c.segMarks
	if len(marks) == 0 {
		marks = []byte{'#', '=', '-', '.'}
	}
	labelW := 0
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		fmt.Fprintf(&sb, "%-*s |", labelW, b.Label)
		used := 0
		for si, frac := range b.Segments {
			n := int(math.Round(frac * float64(width)))
			if used+n > width {
				n = width - used
			}
			sb.WriteString(strings.Repeat(string(marks[si%len(marks)]), n))
			used += n
		}
		sb.WriteString(strings.Repeat(" ", width-used))
		sb.WriteString("|\n")
	}
	if len(c.Legend) > 0 {
		sb.WriteString(strings.Repeat(" ", labelW+2))
		for si, name := range c.Legend {
			if si > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%c=%s", marks[si%len(marks)], name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
