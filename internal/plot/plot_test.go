package plot

import (
	"strings"
	"testing"
)

func TestLineChartBasics(t *testing.T) {
	c := &LineChart{
		Title:  "test chart",
		XTicks: []string{"16K", "64K", "256K"},
		Series: []Series{
			{Name: "a", Y: []float64{1, 2, 3}},
			{Name: "b", Y: []float64{3, 2, 1}},
		},
	}
	out := c.Render()
	for _, want := range []string{"test chart", "16K", "256K", "* a", "o b", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Max value appears on the y-axis.
	if !strings.Contains(out, "3") {
		t.Error("y-axis max missing")
	}
}

func TestLineChartEmpty(t *testing.T) {
	c := &LineChart{Title: "empty"}
	if !strings.Contains(c.Render(), "(no data)") {
		t.Error("empty chart should say so")
	}
}

func TestLineChartOverlap(t *testing.T) {
	c := &LineChart{
		XTicks: []string{"x"},
		Series: []Series{{Name: "a", Y: []float64{1}}, {Name: "b", Y: []float64{1}}},
	}
	if !strings.Contains(c.Render(), "?") {
		t.Error("overlapping points should render '?'")
	}
}

func TestLineChartScaling(t *testing.T) {
	c := &LineChart{
		XTicks: []string{"a", "b"},
		Series: []Series{{Name: "s", Y: []float64{0, 100}}},
		Height: 5,
		YMax:   200,
	}
	out := c.Render()
	if !strings.Contains(out, "200") {
		t.Errorf("explicit YMax not used:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// 5 plot rows + axis + ticks + legend.
	if len(lines) < 8 {
		t.Errorf("unexpected line count %d", len(lines))
	}
}

func TestLineChartZeroValues(t *testing.T) {
	c := &LineChart{
		XTicks: []string{"a"},
		Series: []Series{{Name: "s", Y: []float64{0}}},
	}
	if out := c.Render(); !strings.Contains(out, "*") {
		t.Errorf("zero value should still plot at the bottom:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{
		Title: "bars",
		Bars:  []Bar{{"plru", 10}, {"min", 20}},
		Width: 20,
	}
	out := c.Render()
	if !strings.Contains(out, "plru") || !strings.Contains(out, "20.00") {
		t.Errorf("bar chart incomplete:\n%s", out)
	}
	// min's bar should be twice plru's.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	plruBar := strings.Count(lines[1], "=")
	minBar := strings.Count(lines[2], "=")
	if minBar != 2*plruBar {
		t.Errorf("bar lengths %d vs %d, want 2x", plruBar, minBar)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	c := &BarChart{Bars: []Bar{{"z", 0}}}
	out := c.Render()
	if !strings.Contains(out, "0.00") {
		t.Errorf("zero bar missing:\n%s", out)
	}
}

func TestStackedChart(t *testing.T) {
	c := &StackedChart{
		Title:  "classes",
		Width:  20,
		Legend: []string{"short", "mid1", "mid2", "long"},
		Bars: []StackedBar{
			{Label: "libquantum", Segments: []float64{0.9, 0, 0, 0.1}},
			{Label: "canneal", Segments: []float64{0.4, 0.05, 0.05, 0.5}},
		},
	}
	out := c.Render()
	for _, want := range []string{"classes", "libquantum", "#=short", ".=long"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Fractions map to glyph counts.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "libquantum") {
			if n := strings.Count(line, "#"); n != 18 {
				t.Errorf("libquantum short segment = %d glyphs, want 18", n)
			}
		}
	}
}

func TestStackedChartOverflowClamped(t *testing.T) {
	c := &StackedChart{
		Width: 10,
		Bars:  []StackedBar{{Label: "x", Segments: []float64{0.8, 0.8}}},
	}
	out := c.Render()
	line := strings.Split(out, "\n")[0]
	if inner := strings.TrimSuffix(strings.SplitN(line, "|", 2)[1], "|"); len(inner) != 10 {
		t.Errorf("bar area width %d, want 10: %q", len(inner), line)
	}
}

func TestCentered(t *testing.T) {
	if got := centered("ab", 6); got != "  ab" {
		t.Errorf("centered = %q", got)
	}
	if got := centered("abcdef", 4); got != "abcdef" {
		t.Errorf("long string should pass through, got %q", got)
	}
}
