// Package sim is the top-level simulation driver: it runs a workload
// through the cache hierarchy and (optionally) the secure-memory
// engine, producing the timing, traffic, MPKI, and energy numbers the
// MAPS experiments report.
//
// The core model is deliberately simple — a fixed base CPI plus
// blocking stalls for hierarchy and memory latency — because every
// result in the paper is driven by the LLC miss/writeback stream and
// the metadata traffic it induces, not by core microarchitecture
// (DESIGN.md §1).
package sim

import (
	"context"
	"fmt"
	"time"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/dram"
	"github.com/maps-sim/mapsim/internal/energy"
	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/hierarchy"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/obs"
	"github.com/maps-sim/mapsim/internal/secmem/engine"
	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
	"github.com/maps-sim/mapsim/internal/workload/spec"
)

// Config describes one simulation.
type Config struct {
	// Benchmark selects a workload by name; Workload overrides it
	// with a caller-supplied generator.
	Benchmark string
	Workload  workload.Generator

	// WorkloadSpec selects a declarative multi-client workload
	// (internal/workload/spec) instead of a named benchmark. Benchmark
	// may be left empty (it is filled from the spec's name) or must
	// match it. Unlike Workload, a spec is pure data: spec-driven
	// configs canonicalize, hash, and dedupe through the result cache
	// like named-benchmark runs.
	WorkloadSpec *spec.Spec

	// TracePath replays a recorded streaming trace (see `mapstrace
	// record-workload`) as the workload. The file is machine-local
	// state, so trace-driven configs have no canonical form and never
	// enter the result cache.
	TracePath string

	// Instructions is the measured instruction count (default 2M).
	Instructions uint64
	// Warmup is the unmeasured prefix (default Instructions/10).
	Warmup uint64
	// Seed drives the workload's randomness.
	Seed int64

	// Hierarchy sets the cache stack; zero selects Table I.
	Hierarchy hierarchy.Config

	// Secure enables the secure-memory engine. When false the run is
	// the insecure baseline used for normalization.
	Secure bool
	// Org selects the counter organization.
	Org memlayout.Organization
	// Meta configures the metadata cache; nil simulates no metadata
	// cache (every metadata access goes to memory).
	Meta *metacache.Config
	// Speculation hides verification latency (PoisonIvy).
	Speculation bool
	// SpeculationWindow bounds the hidden verification latency in
	// cycles; zero = unbounded. Ignored without Speculation.
	SpeculationWindow uint64

	// DRAM sets memory timing; zero selects dram.Default.
	DRAM dram.Config
	// BaseCPI is the cycles-per-instruction floor (default 1.0).
	BaseCPI float64
	// L2HitLatency and L3HitLatency are the extra stall cycles for
	// hits below L1 (defaults 12 and 40).
	L2HitLatency uint64
	L3HitLatency uint64

	// Tap observes every metadata access the engine makes, warmup
	// included, for reuse analysis and trace recording.
	Tap func(trace.Access)

	// Progress, when non-nil, is ticked with retired instructions from
	// the run's cancellation checkpoints (every 64Ki instructions), so
	// an observer can watch a long run advance. Leaving it nil — the
	// default — costs the hot loop a nil check and nothing else.
	Progress *obs.Progress

	// DisableFastPath routes every cache (hierarchy levels and the
	// metadata cache) through the generic Policy interface instead of
	// the devirtualized fast path. The two paths are bit-identical by
	// contract — this knob exists so the cross-check tests can prove
	// it — so it is erased during canonicalization and never affects
	// cached results.
	DisableFastPath bool

	// Shards enables epoch-parallel execution: the access stream is
	// split into epochs simulated concurrently and merged with a
	// deterministic reduction (see epoch.go). 0 and 1 run the
	// sequential path; N > 1 forces N shards; AutoShards derives the
	// count from the CPUs left over after inter-run parallelism
	// (WithConcurrency). The parallel path is bit-identical to the
	// sequential one by contract, so — exactly like DisableFastPath —
	// the knob is erased during canonicalization and never affects
	// cached results. Configurations the driver cannot shard safely
	// (caller Taps, non-cloneable generators or policies) silently
	// fall back to the sequential path.
	Shards int
}

func (c *Config) fill() error {
	if c.Workload == nil {
		switch {
		case c.WorkloadSpec != nil:
			if c.TracePath != "" {
				return fmt.Errorf("sim: WorkloadSpec and TracePath are mutually exclusive")
			}
			if c.Benchmark != "" && c.Benchmark != c.WorkloadSpec.Name {
				return fmt.Errorf("sim: Benchmark %q conflicts with WorkloadSpec name %q", c.Benchmark, c.WorkloadSpec.Name)
			}
			g, err := c.WorkloadSpec.Generator()
			if err != nil {
				return err
			}
			c.Workload = g
		case c.TracePath != "":
			if c.Benchmark != "" {
				return fmt.Errorf("sim: Benchmark and TracePath are mutually exclusive")
			}
			g, err := workload.NewTraceReplay(c.TracePath)
			if err != nil {
				return err
			}
			c.Workload = g
		case c.Benchmark != "":
			g, err := workload.New(c.Benchmark)
			if err != nil {
				return err
			}
			c.Workload = g
		default:
			return fmt.Errorf("sim: one of Benchmark, WorkloadSpec, TracePath, or Workload is required")
		}
	}
	c.fillDefaults()
	return nil
}

// Canonical returns the configuration with every default applied —
// the same rules Run uses — without resolving the workload generator,
// so two configs that would simulate identically compare (and hash)
// equal. It is the canonicalization step behind the result cache's
// content addressing. Configs carrying caller-supplied state
// (Workload, Tap, Progress, Meta.Policy, Meta.Partition) have no
// canonical form and are rejected.
func (c Config) Canonical() (Config, error) {
	switch {
	case c.Workload != nil:
		return c, fmt.Errorf("sim: config with a caller-supplied Workload is not canonicalizable")
	case c.TracePath != "":
		return c, fmt.Errorf("sim: config with a TracePath is not canonicalizable (trace files are machine-local)")
	case c.Tap != nil:
		return c, fmt.Errorf("sim: config with a Tap is not canonicalizable")
	case c.Progress != nil:
		return c, fmt.Errorf("sim: config with a Progress is not canonicalizable")
	case c.Meta != nil && (c.Meta.Policy != nil || c.Meta.Partition != nil):
		return c, fmt.Errorf("sim: config with a stateful Meta.Policy or Meta.Partition is not canonicalizable")
	case c.Benchmark == "" && c.WorkloadSpec == nil:
		return c, fmt.Errorf("sim: Benchmark is required")
	}
	if c.WorkloadSpec != nil {
		if err := c.WorkloadSpec.Validate(); err != nil {
			return c, err
		}
		if c.Benchmark != "" && c.Benchmark != c.WorkloadSpec.Name {
			return c, fmt.Errorf("sim: Benchmark %q conflicts with WorkloadSpec name %q", c.Benchmark, c.WorkloadSpec.Name)
		}
		// Normalize the spec so equivalent spellings hash identically.
		c.WorkloadSpec = c.WorkloadSpec.Canonicalize()
	}
	if c.Meta != nil {
		metaCopy := *c.Meta
		c.Meta = &metaCopy
		c.Meta.DisableFastPath = false
		if c.Meta.Content == 0 {
			// metacache.New defaults an unset content policy to
			// AllTypes; mirror it so a zero and an explicit AllTypes
			// config — which simulate identically — hash identically
			// (the fleet's wire round-trip depends on this).
			c.Meta.Content = metacache.AllTypes
		}
	}
	c.fillDefaults()
	// The fast and generic paths produce bit-identical results, so the
	// knob carries no simulation identity. The same contract covers
	// epoch-parallel execution, so the shard count is erased too.
	c.DisableFastPath = false
	c.Hierarchy.DisableFastPath = false
	c.Shards = 0
	return c, nil
}

// fillDefaults applies every scalar default. Run's fill and Canonical
// share it so content addressing can never drift from what Run would
// actually simulate.
func (c *Config) fillDefaults() {
	if c.Benchmark == "" && c.Workload != nil {
		c.Benchmark = c.Workload.Name()
	}
	if c.Benchmark == "" && c.WorkloadSpec != nil {
		c.Benchmark = c.WorkloadSpec.Name
	}
	if c.Instructions == 0 {
		c.Instructions = 2_000_000
	}
	if c.Warmup == 0 {
		c.Warmup = c.Instructions / 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Hierarchy == (hierarchy.Config{}) {
		c.Hierarchy = hierarchy.Default()
	}
	if c.DRAM == (dram.Config{}) {
		c.DRAM = dram.Default()
	}
	if c.BaseCPI == 0 {
		c.BaseCPI = 1.0
	}
	if c.L2HitLatency == 0 {
		c.L2HitLatency = 12
	}
	if c.L3HitLatency == 0 {
		c.L3HitLatency = 40
	}
}

// KindResult summarizes one metadata kind. Bypassed accesses (kinds
// the content policy excludes) are not misses — matching the paper's
// Figure 1 metric — but still generate memory traffic.
type KindResult struct {
	Accesses uint64  `json:"accesses"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	Bypassed uint64  `json:"bypassed"`
	MPKI     float64 `json:"mpki"`
}

// PhaseTiming records where a run's wall-clock time went, split by
// simulation phase. Durations serialize as nanoseconds. The phase
// names match the span taxonomy in docs/OBSERVABILITY.md: setup
// (building the hierarchy, DRAM model, and secure-memory engine),
// warmup (the unmeasured prefix), and measure (the measured window).
type PhaseTiming struct {
	Setup   time.Duration `json:"setup_ns"`
	Warmup  time.Duration `json:"warmup_ns"`
	Measure time.Duration `json:"measure_ns"`
	Total   time.Duration `json:"total_ns"`
}

// Result is the output of one simulation.
type Result struct {
	Benchmark    string  `json:"benchmark"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`

	LLC      cache.Stats    `json:"llc"`
	LLCMPKI  float64        `json:"llc_mpki"`
	Hier     [3]cache.Stats `json:"hierarchy"` // L1, L2, L3
	DataMPKI float64        `json:"data_mpki"` // alias of LLCMPKI for readability

	// Metadata cache results (zero when no metadata cache / insecure).
	Meta        map[memlayout.Kind]KindResult `json:"meta,omitempty"`
	MetaMPKI    float64                       `json:"meta_mpki"`    // metadata-cache misses per kilo-instruction
	MetaMemPKI  float64                       `json:"meta_mem_pki"` // metadata *memory accesses* per kilo-instruction
	MetaHitRate float64                       `json:"meta_hit_rate"`
	// TreeLevels holds per-tree-level cache behaviour (leaf first);
	// upper levels cover more data and should hit more.
	TreeLevels []KindResult `json:"tree_levels,omitempty"`

	Mem               engine.MemTraffic `json:"mem_traffic"`
	PageReencryptions uint64            `json:"page_reencryptions"`
	SpecWindowStalls  uint64            `json:"spec_window_stalls"`

	DRAM dram.Stats `json:"dram"`

	Energy   energy.Account `json:"energy"`
	EnergyPJ float64        `json:"energy_pj"`
	ED2      float64        `json:"ed2"`

	// Timing is the run's own wall-clock profile (host time, not
	// simulated cycles).
	Timing PhaseTiming `json:"timing"`

	// Sharding diagnoses the epoch-parallel run (nil on the
	// sequential path). Like Timing it describes how the run
	// executed, not what it simulated: the simulated numbers above
	// are bit-identical either way.
	Sharding *ShardStats `json:"sharding,omitempty"`
}

// cancelCheckInterval is how many instructions the simulation loop
// retires between context checks — rare enough that the check never
// shows up in profiles, frequent enough (~100 µs of simulated work)
// that cancellation feels immediate.
const cancelCheckInterval = 1 << 16

// faultStep is the injection point armed (as "sim.step") to make a
// running simulation fail or stall mid-flight. It is evaluated only at
// cancellation checkpoints — every 64Ki instructions — so the per-access
// hot loop carries no fault-injection cost at all, and even the
// checkpoint pays one inlined atomic load while disarmed (the
// benchcheck gate holds it to that).
var faultStep = faults.P("sim.step")

// Run executes one simulation to completion; it cannot be cancelled.
func Run(cfg Config) (*Result, error) { return RunContext(context.Background(), cfg) }

// RunContext executes one simulation, stopping early with ctx.Err()
// if the context is cancelled or its deadline passes mid-run.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.DisableFastPath {
		cfg.Hierarchy.DisableFastPath = true
		if cfg.Meta != nil {
			metaCopy := *cfg.Meta
			metaCopy.DisableFastPath = true
			cfg.Meta = &metaCopy
		}
	}
	if n := effectiveShards(ctx, cfg.Shards); n > 1 && cfg.shardable() {
		if res, ok, err := runEpochParallel(ctx, cfg, n); ok {
			return res, err
		}
		// Not safely shardable after all (e.g. an uncloneable policy):
		// fall through to the sequential path.
	}
	endRun := obs.Span(ctx, "run", "benchmark", cfg.Benchmark)
	endSetup := obs.Span(ctx, "setup", "benchmark", cfg.Benchmark)
	prog := cfg.Progress
	if prog != nil {
		// EnsureTotal, not Start: in a suite fan-out the coordinator
		// has already published the whole suite's total.
		prog.EnsureTotal(cfg.Warmup + cfg.Instructions)
	}
	gen := cfg.Workload
	gen.Reset(cfg.Seed)

	hier, err := hierarchy.New(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	mem, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}

	var eng *engine.Engine
	var meta *metacache.MetaCache
	if cfg.Secure {
		footprint := (gen.Footprint() + memlayout.PageSize - 1) &^ (memlayout.PageSize - 1)
		layout, err := memlayout.New(cfg.Org, footprint)
		if err != nil {
			return nil, err
		}
		if cfg.Meta != nil {
			meta, err = metacache.New(*cfg.Meta)
			if err != nil {
				return nil, err
			}
		}
		eng, err = engine.New(engine.Config{
			Layout:            layout,
			Meta:              meta,
			DRAM:              mem,
			Speculation:       cfg.Speculation,
			SpeculationWindow: cfg.SpeculationWindow,
			Tap:               cfg.Tap,
		})
		if err != nil {
			return nil, err
		}
	}

	// Per-access invariants, hoisted out of the inner loop: latency
	// constants, the CPI mode, and the engine presence test.
	var (
		cycles     uint64
		acc        workload.Access
		sinceCheck uint64
		l2Lat      = cfg.L2HitLatency
		l3Lat      = cfg.L3HitLatency
		baseCPI    = cfg.BaseCPI
		unitCPI    = cfg.BaseCPI == 1.0
		secure     = eng != nil
	)
	step := func(limit uint64) (uint64, error) {
		var instrs uint64
		for instrs < limit {
			gen.Next(&acc)
			gap := uint64(acc.Gap)
			instrs += gap
			sinceCheck += gap
			if sinceCheck >= cancelCheckInterval {
				if prog != nil {
					prog.Add(sinceCheck)
				}
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					return instrs, err
				}
				if err := faultStep.Hit(); err != nil {
					return instrs, err
				}
			}
			if unitCPI {
				// The common BaseCPI == 1 case stays in pure integer
				// math; the float path rounds identically for it.
				cycles += gap
			} else {
				cycles += uint64(float64(gap) * baseCPI)
			}
			out := hier.Access(acc.Addr, acc.Write)
			switch out.Hit {
			case hierarchy.L2:
				cycles += l2Lat
			case hierarchy.L3:
				cycles += l3Lat
			case hierarchy.Memory:
				cycles += l3Lat
				if secure {
					cycles += eng.Read(cycles, acc.Addr)
				} else {
					cycles += mem.Access(cycles, memlayout.BlockOf(acc.Addr), false)
				}
			}
			if len(out.Writebacks) > 0 {
				if secure {
					for _, wb := range out.Writebacks {
						eng.Writeback(cycles, wb)
					}
				} else {
					for _, wb := range out.Writebacks {
						mem.Access(cycles, wb, true)
					}
				}
			}
		}
		return instrs, nil
	}

	setupTime := endSetup()

	// Warmup: run, then discard statistics (state persists).
	endWarmup := obs.Span(ctx, "warmup", "benchmark", cfg.Benchmark)
	if _, err := step(cfg.Warmup); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", cfg.Benchmark, err)
	}
	warmupTime := endWarmup()
	hier.ResetStats()
	mem.ResetStats()
	if eng != nil {
		eng.ResetStats()
	}
	cyclesStart := cycles

	endMeasure := obs.Span(ctx, "measure", "benchmark", cfg.Benchmark)
	measured, err := step(cfg.Instructions)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", cfg.Benchmark, err)
	}
	measureTime := endMeasure()
	cycles -= cyclesStart
	if prog != nil && sinceCheck > 0 {
		// Flush the sub-checkpoint remainder so the run finishes at
		// exactly Warmup+Instructions done.
		prog.Add(sinceCheck)
		sinceCheck = 0
	}

	t := runTotals{
		measured:  measured,
		cycles:    cycles,
		hier:      [3]cache.Stats{hier.L1Stats(), hier.L2Stats(), hier.L3Stats()},
		dramStats: mem.Stats(),
		secure:    eng != nil,
		hasMeta:   meta != nil,
	}
	if eng != nil {
		t.engStats = eng.Stats()
	}
	if meta != nil {
		t.metaSize = meta.Size()
		t.metaTotal = meta.TotalStats()
		for _, k := range memlayout.MetaKinds {
			t.metaKind[k] = meta.KindStats(k)
		}
		for level := 0; level < 16; level++ {
			t.metaLevel[level] = meta.LevelStats(level)
		}
	}
	res := buildResult(cfg, t)
	res.Timing = PhaseTiming{
		Setup:   setupTime,
		Warmup:  warmupTime,
		Measure: measureTime,
		Total:   endRun(),
	}
	obs.From(ctx).Debug("run done",
		"benchmark", cfg.Benchmark,
		"instructions", measured,
		"ipc", res.IPC,
		"wall", res.Timing.Total)
	return res, nil
}

// runTotals are the raw integer counters one run produces — gathered
// directly from the models on the sequential path, or merged from
// per-epoch deltas on the parallel one. buildResult derives every
// reported float from them, which is what makes the two paths
// bit-identical: identical integers in, one shared float pipeline
// out.
type runTotals struct {
	measured  uint64
	cycles    uint64
	hier      [3]cache.Stats
	dramStats dram.Stats
	secure    bool
	hasMeta   bool
	engStats  engine.Stats
	metaSize  int
	metaTotal metacache.KindStats
	metaKind  [4]metacache.KindStats
	metaLevel [16]metacache.KindStats
}

// buildResult assembles the reported Result (everything except
// Timing) from a run's raw totals.
func buildResult(cfg Config, t runTotals) *Result {
	res := &Result{
		Benchmark:    cfg.Benchmark,
		Instructions: t.measured,
		Cycles:       t.cycles,
		Hier:         t.hier,
		LLC:          t.hier[2],
		DRAM:         t.dramStats,
	}
	kilo := float64(t.measured) / 1000
	res.IPC = float64(t.measured) / float64(t.cycles)
	res.LLCMPKI = float64(res.LLC.Misses) / kilo
	res.DataMPKI = res.LLCMPKI

	if t.secure {
		es := t.engStats
		res.Mem = es.Mem
		res.PageReencryptions = es.PageReencryptions
		res.SpecWindowStalls = es.SpecWindowStalls
		res.MetaMemPKI = float64(es.Mem.Metadata()) / kilo
		if t.hasMeta {
			res.Meta = make(map[memlayout.Kind]KindResult, 3)
			var misses, accesses, hits uint64
			for _, k := range memlayout.MetaKinds {
				ks := t.metaKind[k]
				res.Meta[k] = KindResult{
					Accesses: ks.Accesses,
					Hits:     ks.Hits,
					Misses:   ks.Misses,
					Bypassed: ks.Bypassed,
					MPKI:     float64(ks.Misses) / kilo,
				}
				misses += ks.Misses
				accesses += ks.Accesses
				hits += ks.Hits
			}
			res.MetaMPKI = float64(misses) / kilo
			if accesses > 0 {
				res.MetaHitRate = float64(hits) / float64(accesses)
			}
			for level := 0; level < 16; level++ {
				ls := t.metaLevel[level]
				if ls.Accesses == 0 {
					break
				}
				res.TreeLevels = append(res.TreeLevels, KindResult{
					Accesses: ls.Accesses,
					Hits:     ls.Hits,
					Misses:   ls.Misses,
					Bypassed: ls.Bypassed,
					MPKI:     float64(ls.Misses) / kilo,
				})
			}
		} else {
			// No metadata cache: every metadata memory access is a
			// "miss" for MPKI purposes.
			res.MetaMPKI = res.MetaMemPKI
		}
	}

	// Energy: core + per-level SRAM (dynamic + leakage) + metadata
	// SRAM + DRAM.
	res.Energy.AddInstructions(t.measured)
	res.Energy.AddSRAM(cfg.Hierarchy.L1Size, res.Hier[0].Accesses)
	res.Energy.AddSRAM(cfg.Hierarchy.L2Size, res.Hier[1].Accesses)
	res.Energy.AddSRAM(cfg.Hierarchy.L3Size, res.Hier[2].Accesses)
	res.Energy.AddSRAMLeakage(cfg.Hierarchy.L1Size+cfg.Hierarchy.L2Size+cfg.Hierarchy.L3Size, t.cycles)
	if t.hasMeta {
		res.Energy.AddSRAM(t.metaSize, t.metaTotal.Accesses)
		res.Energy.AddSRAMLeakage(t.metaSize, t.cycles)
	}
	res.Energy.AddDRAMPJ(res.DRAM.EnergyPJ)
	res.EnergyPJ = res.Energy.TotalPJ()
	res.ED2 = energy.ED2(res.EnergyPJ, res.Cycles)
	return res
}
