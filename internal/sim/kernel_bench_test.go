package sim

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/hierarchy"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/workload"
)

// Kernel benchmarks: the numbers behind BENCH_kernel.json and the
// make-check perf gate. `make bench` runs exactly these four and
// records ns/op, allocs/op, and simulated accesses per second; see
// docs/PERFORMANCE.md for how to read and regenerate the file.
//
// The workload is canneal — the paper's metadata-hostile benchmark —
// so the secure run exercises deep tree walks, not just counter hits.

// kernelInstructions keeps one benchmark iteration around 100 ms so
// short -benchtime gates still complete a few iterations.
const kernelInstructions = 200_000

// BenchmarkAccessKernel measures the bare per-access inner loop —
// workload.Next plus hierarchy.Access — without Run's setup, engine,
// or accounting, i.e. the floor every simulation pays per reference.
func BenchmarkAccessKernel(b *testing.B) {
	gen := workload.MustNew("canneal")
	gen.Reset(1)
	hier := hierarchy.MustNew(hierarchy.Default())
	var acc workload.Access
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&acc)
		out := hier.Access(acc.Addr, acc.Write)
		_ = out.Writebacks
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// benchFullRun runs one full simulation per iteration and reports
// simulated accesses per second (memory references retired through
// the hierarchy, warmup included — the unit sweeps are billed in).
func benchFullRun(b *testing.B, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	var accesses uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		accesses += res.Hier[0].Accesses
	}
	b.ReportMetric(float64(accesses)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkRunInsecure measures the insecure baseline: workload,
// three-level hierarchy, and DRAM timing, no secure-memory engine.
func BenchmarkRunInsecure(b *testing.B) {
	benchFullRun(b, Config{
		Benchmark:    "canneal",
		Instructions: kernelInstructions,
	})
}

// BenchmarkRunSecure measures the full secure stack: engine, 64 KB
// metadata cache, and speculative verification — the configuration
// the paper's sweeps spend nearly all their time in.
func BenchmarkRunSecure(b *testing.B) {
	benchFullRun(b, Config{
		Benchmark:    "canneal",
		Instructions: kernelInstructions,
		Secure:       true,
		Speculation:  true,
		Meta:         &metacache.Config{Size: 64 << 10, Ways: 8},
	})
}

// BenchmarkRunSecureParallel is BenchmarkRunSecure with four forced
// epoch shards — the intra-run parallel path, including the scan,
// reconciliation, and merge overheads. On a multi-core machine its
// accesses/s should approach 4× BenchmarkRunSecure; on one core it
// measures the sharding overhead instead (see docs/PERFORMANCE.md).
func BenchmarkRunSecureParallel(b *testing.B) {
	benchFullRun(b, Config{
		Benchmark:    "canneal",
		Instructions: kernelInstructions,
		Secure:       true,
		Speculation:  true,
		Meta:         &metacache.Config{Size: 64 << 10, Ways: 8},
		Shards:       4,
	})
}
