package sim

import (
	"fmt"
	"math"
)

// SeedStats summarizes a metric across seeds.
type SeedStats struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func summarize(vals []float64) SeedStats {
	s := SeedStats{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range vals {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(vals))
	for _, v := range vals {
		s.StdDev += (v - s.Mean) * (v - s.Mean)
	}
	if len(vals) > 1 {
		s.StdDev = math.Sqrt(s.StdDev / float64(len(vals)-1))
	}
	return s
}

// SeedsResult reports metric distributions across workload seeds.
type SeedsResult struct {
	Seeds    int       `json:"seeds"`
	MetaMPKI SeedStats `json:"meta_mpki"`
	LLCMPKI  SeedStats `json:"llc_mpki"`
	IPC      SeedStats `json:"ipc"`
	// Runs holds the individual results, seed order.
	Runs []*Result `json:"runs"`
}

// RunSeeds repeats one configuration across n workload seeds
// (1..n), reporting the spread. Synthetic workloads make seed
// sensitivity cheap to quantify; tight spreads justify the
// single-seed sweeps the experiments use.
func RunSeeds(cfg Config, n int) (*SeedsResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: need at least one seed")
	}
	if cfg.Meta != nil && (cfg.Meta.Policy != nil || cfg.Meta.Partition != nil) {
		return nil, fmt.Errorf("sim: RunSeeds requires nil Meta.Policy and Meta.Partition (stateful instances cannot be reused across runs)")
	}
	res := &SeedsResult{Seeds: n}
	var meta, llc, ipc []float64
	for seed := 1; seed <= n; seed++ {
		c := cfg
		c.Seed = int64(seed)
		c.Workload = nil // fresh generator per run
		if c.Meta != nil {
			mc := *c.Meta
			c.Meta = &mc
		}
		r, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("sim: seed %d: %w", seed, err)
		}
		res.Runs = append(res.Runs, r)
		meta = append(meta, r.MetaMPKI)
		llc = append(llc, r.LLCMPKI)
		ipc = append(ipc, r.IPC)
	}
	res.MetaMPKI = summarize(meta)
	res.LLCMPKI = summarize(llc)
	res.IPC = summarize(ipc)
	return res, nil
}

// CoefficientOfVariation returns stddev/mean, the unitless spread.
func (s SeedStats) CoefficientOfVariation() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}
