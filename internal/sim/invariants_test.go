package sim

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/metacache"
)

// Every memory access the engine claims must correspond to a DRAM
// transaction, and vice versa: the two books are kept independently
// (engine purpose counters vs DRAM model counters) so this catches
// any path that touches one and not the other.
func TestTrafficConservation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"no-metacache", Config{Benchmark: "fft", Instructions: 200_000, Secure: true}},
		{"with-metacache", Config{Benchmark: "fft", Instructions: 200_000, Secure: true,
			Meta: &metacache.Config{Size: 64 << 10, Ways: 8}}},
		{"partial-writes", Config{Benchmark: "lbm", Instructions: 200_000, Secure: true,
			Meta: &metacache.Config{Size: 16 << 10, Ways: 8, PartialWrites: true}}},
		{"counters-only", Config{Benchmark: "canneal", Instructions: 200_000, Secure: true,
			Meta: &metacache.Config{Size: 64 << 10, Ways: 8, Content: metacache.CountersOnly}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := r.DRAM.Accesses(), r.Mem.Total(); got != want {
				t.Errorf("DRAM transactions %d != engine accounting %d", got, want)
			}
		})
	}
}

// The insecure baseline's DRAM traffic is exactly LLC misses plus
// surfaced writebacks.
func TestInsecureTrafficMatchesLLC(t *testing.T) {
	r, err := Run(Config{Benchmark: "libquantum", Instructions: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAM.Reads != r.LLC.Misses {
		t.Errorf("DRAM reads %d != LLC misses %d", r.DRAM.Reads, r.LLC.Misses)
	}
	// Writebacks surface only from LLC dirty evictions.
	if r.DRAM.Writes > r.LLC.DirtyEvicts {
		t.Errorf("DRAM writes %d exceed LLC dirty evictions %d", r.DRAM.Writes, r.LLC.DirtyEvicts)
	}
}

// Secure-memory traffic decomposes: data reads equal LLC misses
// (every miss fetches exactly one data block, plus page
// re-encryptions).
func TestSecureDataReadsMatchLLCMisses(t *testing.T) {
	r, err := Run(Config{Benchmark: "libquantum", Instructions: 200_000, Secure: true,
		Meta: &metacache.Config{Size: 64 << 10, Ways: 8}})
	if err != nil {
		t.Fatal(err)
	}
	reencReads := r.PageReencryptions * 64
	if r.Mem.DataReads != r.LLC.Misses+reencReads {
		t.Errorf("data reads %d != LLC misses %d + re-encryption reads %d",
			r.Mem.DataReads, r.LLC.Misses, reencReads)
	}
}
