package sim

import (
	"strings"
	"testing"

	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/partition"
)

func TestRunSuiteBasics(t *testing.T) {
	res, err := RunSuite(Config{
		Instructions: 80_000,
		Secure:       true,
		Speculation:  true,
		Meta:         &metacache.Config{Size: 64 << 10, Ways: 8},
	}, []string{"libquantum", "perlbench", "fft"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBench) != 3 {
		t.Fatalf("got %d results", len(res.PerBench))
	}
	if res.GeomeanLLCMPKI <= 0 || res.GeomeanIPC <= 0 || res.GeomeanED2 <= 0 {
		t.Errorf("geomeans: %+v", res)
	}
	for _, b := range res.Order {
		r := res.PerBench[b]
		if r == nil || r.MetaMPKI <= 0 || r.Cycles == 0 {
			t.Errorf("%s: degenerate result %+v", b, r)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "fft") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestRunSuiteDefaultsToFullRegistry(t *testing.T) {
	res, err := RunSuite(Config{Instructions: 20_000}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBench) != 16 {
		t.Errorf("expected all 16 benchmarks, got %d", len(res.PerBench))
	}
}

func TestRunSuiteRejectsSharedStatefulConfig(t *testing.T) {
	_, err := RunSuite(Config{
		Instructions: 10_000,
		Secure:       true,
		Meta:         &metacache.Config{Size: 64 << 10, Ways: 8, Policy: policy.NewLRU()},
	}, []string{"libquantum", "fft"}, 2)
	if err == nil {
		t.Error("shared policy instance accepted")
	}
	_, err = RunSuite(Config{
		Instructions: 10_000,
		Secure:       true,
		Meta:         &metacache.Config{Size: 64 << 10, Ways: 8, Partition: partition.NewDynamic(2, 6)},
	}, []string{"libquantum", "fft"}, 2)
	if err == nil {
		t.Error("shared partition instance accepted")
	}
}

func TestRunSuitePropagatesErrors(t *testing.T) {
	if _, err := RunSuite(Config{Instructions: 10_000}, []string{"nonesuch"}, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunSeeds(t *testing.T) {
	res, err := RunSeeds(Config{
		Benchmark:    "canneal",
		Instructions: 100_000,
		Secure:       true,
		Meta:         &metacache.Config{Size: 64 << 10, Ways: 8},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 || res.Seeds != 4 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	if res.MetaMPKI.Mean <= 0 || res.MetaMPKI.Min > res.MetaMPKI.Max {
		t.Errorf("meta stats: %+v", res.MetaMPKI)
	}
	// Synthetic workloads are statistically stable: spread under 10%.
	if cv := res.MetaMPKI.CoefficientOfVariation(); cv > 0.10 {
		t.Errorf("meta MPKI CV = %v across seeds, want < 0.10", cv)
	}
	if (SeedStats{}).CoefficientOfVariation() != 0 {
		t.Error("zero-mean CV should be 0")
	}
}

func TestRunSeedsValidation(t *testing.T) {
	if _, err := RunSeeds(Config{Benchmark: "fft"}, 0); err == nil {
		t.Error("zero seeds accepted")
	}
	if _, err := RunSeeds(Config{Benchmark: "fft", Instructions: 10_000, Secure: true,
		Meta: &metacache.Config{Size: 64 << 10, Ways: 8, Policy: policy.NewLRU()}}, 2); err == nil {
		t.Error("stateful policy accepted")
	}
	if _, err := RunSeeds(Config{Benchmark: "nonesuch", Instructions: 10_000}, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestSuiteRenderPartial is the regression test for the nil-pointer
// panic a partial SuiteResult (e.g. JSON-decoded from mapsd with a
// benchmark missing from PerBench) used to hit in Render: the missing
// benchmark now renders a placeholder row and the geomean row still
// prints.
func TestSuiteRenderPartial(t *testing.T) {
	res, err := RunSuite(Config{
		Instructions: 40_000,
		Secure:       true,
		Speculation:  true,
		Meta:         &metacache.Config{Size: 64 << 10, Ways: 8},
	}, []string{"libquantum", "fft"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	delete(res.PerBench, "fft") // simulate the partial decode
	out := res.Render()
	if !strings.Contains(out, "fft") {
		t.Fatalf("missing benchmark dropped from render:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fft") && !strings.Contains(line, "-") {
			t.Fatalf("fft row is not a placeholder: %q", line)
		}
	}
	if !strings.Contains(out, "geomean") {
		t.Fatalf("geomean row missing:\n%s", out)
	}
}
