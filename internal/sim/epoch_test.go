package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/obs"
	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
)

// runTwin executes cfg sequentially and epoch-parallel and fails the
// test unless the two Results are bit-identical. Timing and Sharding
// describe how the run executed, not what it simulated, so they are
// zeroed before comparison — everything else must match exactly.
func runTwin(t *testing.T, cfg Config, shards int) *Result {
	t.Helper()
	seq, err := Run(cfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par := cfg
	par.Shards = shards
	if par.Meta != nil {
		metaCopy := *par.Meta
		par.Meta = &metaCopy
	}
	pres, err := Run(par)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if pres.Sharding == nil {
		t.Fatalf("parallel run did not shard (Sharding == nil)")
	}
	sharding := *pres.Sharding
	seq.Timing, pres.Timing = PhaseTiming{}, PhaseTiming{}
	seq.Sharding, pres.Sharding = nil, nil
	if !reflect.DeepEqual(seq, pres) {
		t.Errorf("epoch-parallel result diverges from sequential (sharding %+v)\nseq: %+v\npar: %+v",
			sharding, seq, pres)
	}
	pres.Sharding = &sharding
	return pres
}

// TestEpochParallelBitIdenticalAllBenchmarks is the tentpole
// contract: for every named benchmark, secure and insecure, the
// epoch-parallel path must reproduce the sequential Result bit for
// bit — splices and full replays included.
func TestEpochParallelBitIdenticalAllBenchmarks(t *testing.T) {
	for _, name := range workload.Names() {
		cfgs := map[string]Config{
			"insecure": {
				Benchmark:    name,
				Instructions: 50_000,
			},
			"secure": {
				Benchmark:    name,
				Instructions: 50_000,
				Secure:       true,
				Speculation:  true,
				Meta:         &metacache.Config{Size: 64 << 10, Ways: 8},
			},
		}
		for variant, cfg := range cfgs {
			cfg := cfg
			t.Run(name+"/"+variant, func(t *testing.T) {
				t.Parallel()
				runTwin(t, cfg, 3)
			})
		}
	}
}

// TestEpochParallelBitIdenticalVariants covers the dimensions the
// all-benchmarks sweep holds fixed: both counter organizations, runs
// without a metadata cache, the generic (DisableFastPath) policy
// path — which can never converge a fingerprint and so exercises
// full replays — a bounded speculation window, and a non-unit CPI.
func TestEpochParallelBitIdenticalVariants(t *testing.T) {
	meta := func() *metacache.Config { return &metacache.Config{Size: 32 << 10, Ways: 8} }
	cfgs := map[string]Config{
		"pi-meta": {
			Benchmark: "canneal", Instructions: testInstr,
			Secure: true, Speculation: true, Org: memlayout.PoisonIvy, Meta: meta(),
		},
		"sgx-meta": {
			Benchmark: "streamcluster", Instructions: testInstr,
			Secure: true, Speculation: true, Org: memlayout.SGX, Meta: meta(),
		},
		"pi-no-meta": {
			Benchmark: "canneal", Instructions: testInstr / 4,
			Secure: true, Org: memlayout.PoisonIvy,
		},
		"sgx-no-meta": {
			Benchmark: "mcf", Instructions: testInstr / 4,
			Secure: true, Org: memlayout.SGX,
		},
		"generic-policies": {
			Benchmark: "canneal", Instructions: testInstr / 4,
			Secure: true, Meta: meta(), DisableFastPath: true,
		},
		"spec-window": {
			Benchmark: "lbm", Instructions: testInstr / 2,
			Secure: true, Speculation: true, SpeculationWindow: 100, Meta: meta(),
		},
		"base-cpi": {
			Benchmark: "milc", Instructions: testInstr / 2,
			BaseCPI: 1.5,
		},
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runTwin(t, cfg, 4)
		})
	}
}

// TestEpochParallelDeterministic pins that the parallel path is
// deterministic against itself, diagnostics included: same config,
// same shard count, same splice/replay trajectory.
func TestEpochParallelDeterministic(t *testing.T) {
	cfg := Config{
		Benchmark: "canneal", Instructions: testInstr,
		Secure: true, Speculation: true,
		Meta:   &metacache.Config{Size: 64 << 10, Ways: 8},
		Shards: 4,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Timing, b.Timing = PhaseTiming{}, PhaseTiming{}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("parallel path is not deterministic\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestEpochParallelProgress verifies the coarser per-epoch progress
// ticks still land on exactly the retired-instruction total the
// sequential path reports.
func TestEpochParallelProgress(t *testing.T) {
	base := Config{Benchmark: "canneal", Instructions: testInstr}

	seq := base
	seq.Progress = &obs.Progress{}
	if _, err := Run(seq); err != nil {
		t.Fatal(err)
	}
	par := base
	par.Shards = 3
	par.Progress = &obs.Progress{}
	if _, err := Run(par); err != nil {
		t.Fatal(err)
	}
	if seq.Progress.Done() != par.Progress.Done() {
		t.Errorf("progress totals differ: sequential %d, parallel %d",
			seq.Progress.Done(), par.Progress.Done())
	}
}

// TestEpochParallelCancellation cancels a sharded run mid-flight and
// verifies both that the error surfaces promptly and that the
// partial-epoch teardown leaks no goroutines.
func TestEpochParallelCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, Config{
			Benchmark:    "canneal",
			Instructions: 500_000_000, // far longer than the test will allow
			Secure:       true,
			Meta:         &metacache.Config{Size: 64 << 10, Ways: 8},
			Shards:       4,
		})
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let epochs spin up
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}

	// Every epoch worker must have unwound; poll briefly since exits
	// are asynchronous with the driver's return.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEpochFault proves a fault injected inside a speculative epoch
// (the "sim.epoch" point) surfaces as the run's error, tears down
// cleanly, and leaves the process healthy for the next run.
func TestEpochFault(t *testing.T) {
	defer faults.Reset()
	before := runtime.NumGoroutine()
	if err := faults.P("sim.epoch").Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Benchmark: "canneal", Instructions: testInstr,
		Secure: true, Meta: &metacache.Config{Size: 64 << 10, Ways: 8},
		Shards: 3,
	}
	_, err := Run(cfg)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("got %v, want injected error", err)
	}
	if fired := faults.P("sim.epoch").Fired(); fired == 0 {
		t.Fatal("sim.epoch never fired")
	}
	faults.Reset()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked after injected fault: %d before, %d after", before, n)
	}

	// The same config must run clean once disarmed.
	runTwin(t, Config{
		Benchmark: "canneal", Instructions: testInstr,
		Secure: true, Meta: &metacache.Config{Size: 64 << 10, Ways: 8},
	}, 3)
}

// TestEffectiveShards pins the oversubscription guard: AutoShards
// divides the machine's CPUs by the inter-run parallelism already
// recorded on the context, nested parallelism composes
// multiplicatively, and explicit counts pass through untouched.
func TestEffectiveShards(t *testing.T) {
	restore := cpuCount
	defer func() { cpuCount = restore }()
	cpuCount = func() int { return 16 }

	bg := context.Background()
	cases := []struct {
		name   string
		ctx    context.Context
		shards int
		want   int
	}{
		{"sequential-default", bg, 0, 1},
		{"sequential-explicit", bg, 1, 1},
		{"forced", bg, 6, 6},
		{"forced-ignores-budget", WithConcurrency(bg, 8), 6, 6},
		{"auto-idle-machine", bg, AutoShards, 16},
		{"auto-under-pool", WithConcurrency(bg, 4), AutoShards, 4},
		{"auto-nested-pools", WithConcurrency(WithConcurrency(bg, 4), 2), AutoShards, 2},
		{"auto-saturated", WithConcurrency(bg, 16), AutoShards, 1},
		{"auto-oversubscribed", WithConcurrency(bg, 64), AutoShards, 1},
	}
	for _, tc := range cases {
		if got := effectiveShards(tc.ctx, tc.shards); got != tc.want {
			t.Errorf("%s: effectiveShards = %d, want %d", tc.name, got, tc.want)
		}
	}

	// A huge machine is still clamped: past maxAutoShards the
	// reconciliation chain dominates and more shards only burn memory.
	cpuCount = func() int { return 256 }
	if got := effectiveShards(bg, AutoShards); got != maxAutoShards {
		t.Errorf("unclamped auto shards: got %d, want %d", got, maxAutoShards)
	}
}

// TestConcurrencyFromContext covers the accessor's defaults and
// floor.
func TestConcurrencyFromContext(t *testing.T) {
	bg := context.Background()
	if got := ConcurrencyFromContext(bg); got != 1 {
		t.Errorf("unset concurrency = %d, want 1", got)
	}
	if got := ConcurrencyFromContext(WithConcurrency(bg, 0)); got != 1 {
		t.Errorf("zero-clamped concurrency = %d, want 1", got)
	}
	if got := ConcurrencyFromContext(WithConcurrency(bg, 5)); got != 5 {
		t.Errorf("concurrency = %d, want 5", got)
	}
}

// TestShardsCanonicalErased mirrors the DisableFastPath test: the
// shard count changes how a run executes, never what it computes, so
// it must not reach result-cache keys.
func TestShardsCanonicalErased(t *testing.T) {
	base := Config{Benchmark: "canneal", Secure: true, Meta: &metacache.Config{Size: 32 << 10, Ways: 8}}
	on := base
	on.Shards = 8
	metaCopy := *base.Meta
	on.Meta = &metaCopy

	cOff, err := base.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cOn, err := on.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cOff, cOn) {
		t.Errorf("canonical forms differ:\noff: %+v\non:  %+v", cOff, cOn)
	}
	if cOn.Shards != 0 {
		t.Errorf("canonical form retains Shards: %+v", cOn)
	}
}

// TestEpochParallelFallbacks verifies configurations the driver
// cannot shard safely silently run sequentially and still succeed.
func TestEpochParallelFallbacks(t *testing.T) {
	t.Run("tap", func(t *testing.T) {
		res, err := Run(Config{
			Benchmark: "canneal", Instructions: testInstr / 4,
			Secure: true, Meta: &metacache.Config{Size: 32 << 10, Ways: 8},
			Shards: 4,
			Tap:    func(trace.Access) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Sharding != nil {
			t.Error("a tapped run must not shard")
		}
	})
	t.Run("tiny-run", func(t *testing.T) {
		// A single access (warmup defaults to Instructions/10 == 0)
		// cannot split into two epochs.
		res, err := Run(Config{Benchmark: "canneal", Instructions: 1, Shards: 8})
		if err != nil {
			t.Fatal(err)
		}
		if res.Sharding != nil {
			t.Error("a single-epoch run must not shard")
		}
	})
}
