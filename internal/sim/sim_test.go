package sim

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/trace"
)

const testInstr = 300_000

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Benchmark: "nonesuch"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestInsecureBaseline(t *testing.T) {
	r, err := Run(Config{Benchmark: "libquantum", Instructions: testInstr})
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions < testInstr {
		t.Errorf("measured %d instructions", r.Instructions)
	}
	if r.Cycles == 0 || r.IPC <= 0 || r.IPC > 1 {
		t.Errorf("cycles=%d ipc=%v", r.Cycles, r.IPC)
	}
	if r.LLCMPKI <= 0 {
		t.Error("libquantum should miss in the LLC")
	}
	if r.MetaMPKI != 0 || r.Meta != nil {
		t.Error("insecure run should have no metadata stats")
	}
	if r.EnergyPJ <= 0 || r.ED2 <= 0 {
		t.Error("energy accounting empty")
	}
}

func TestSecureNoMetaCacheCostsMore(t *testing.T) {
	base, err := Run(Config{Benchmark: "libquantum", Instructions: testInstr})
	if err != nil {
		t.Fatal(err)
	}
	sec, err := Run(Config{Benchmark: "libquantum", Instructions: testInstr, Secure: true, Speculation: true})
	if err != nil {
		t.Fatal(err)
	}
	if sec.Cycles <= base.Cycles {
		t.Errorf("secure cycles %d <= baseline %d", sec.Cycles, base.Cycles)
	}
	if sec.EnergyPJ <= base.EnergyPJ {
		t.Errorf("secure energy %v <= baseline %v", sec.EnergyPJ, base.EnergyPJ)
	}
	if sec.MetaMPKI <= 0 {
		t.Error("no metadata traffic recorded")
	}
	if sec.Mem.Metadata() == 0 {
		t.Error("metadata memory traffic empty")
	}
}

func TestMetaCacheReducesTraffic(t *testing.T) {
	noCache, err := Run(Config{Benchmark: "libquantum", Instructions: testInstr, Secure: true, Speculation: true})
	if err != nil {
		t.Fatal(err)
	}
	withCache, err := Run(Config{
		Benchmark: "libquantum", Instructions: testInstr, Secure: true, Speculation: true,
		Meta: &metacache.Config{Size: 128 << 10, Ways: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if withCache.MetaMPKI >= noCache.MetaMPKI {
		t.Errorf("metadata cache did not reduce MPKI: %v >= %v", withCache.MetaMPKI, noCache.MetaMPKI)
	}
	if withCache.Mem.Metadata() >= noCache.Mem.Metadata() {
		t.Errorf("metadata cache did not reduce memory traffic: %d >= %d",
			withCache.Mem.Metadata(), noCache.Mem.Metadata())
	}
	if withCache.Meta == nil || withCache.Meta[memlayout.KindCounter].Accesses == 0 {
		t.Error("per-kind stats missing")
	}
	if withCache.MetaHitRate <= 0 || withCache.MetaHitRate > 1 {
		t.Errorf("hit rate = %v", withCache.MetaHitRate)
	}
}

func TestSpeculationHelps(t *testing.T) {
	spec, err := Run(Config{Benchmark: "canneal", Instructions: testInstr, Secure: true, Speculation: true,
		Meta: &metacache.Config{Size: 64 << 10, Ways: 8}})
	if err != nil {
		t.Fatal(err)
	}
	noSpec, err := Run(Config{Benchmark: "canneal", Instructions: testInstr, Secure: true, Speculation: false,
		Meta: &metacache.Config{Size: 64 << 10, Ways: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cycles >= noSpec.Cycles {
		t.Errorf("speculation cycles %d >= non-speculative %d", spec.Cycles, noSpec.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		r, err := Run(Config{Benchmark: "fft", Instructions: 100_000, Secure: true,
			Meta: &metacache.Config{Size: 64 << 10, Ways: 8}})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.MetaMPKI != b.MetaMPKI || a.Mem != b.Mem {
		t.Error("identical configs produced different results")
	}
}

func TestTapRecordsTrace(t *testing.T) {
	var tr trace.Trace
	_, err := Run(Config{
		Benchmark: "libquantum", Instructions: 100_000, Secure: true,
		Meta: &metacache.Config{Size: 64 << 10, Ways: 8},
		Tap:  func(a trace.Access) { tr.Append(a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("tap recorded nothing")
	}
	kinds := map[uint8]bool{}
	for _, a := range tr.Accesses {
		kinds[a.Class] = true
	}
	if !kinds[uint8(memlayout.KindCounter)] || !kinds[uint8(memlayout.KindHash)] {
		t.Errorf("trace kinds incomplete: %v", kinds)
	}
}

func TestSGXOrganizationRuns(t *testing.T) {
	r, err := Run(Config{Benchmark: "libquantum", Instructions: 100_000, Secure: true,
		Org:  memlayout.SGX,
		Meta: &metacache.Config{Size: 64 << 10, Ways: 8}})
	if err != nil {
		t.Fatal(err)
	}
	// SGX counter blocks cover 8x less data: more counter traffic
	// than PI for a streaming workload.
	pi, err := Run(Config{Benchmark: "libquantum", Instructions: 100_000, Secure: true,
		Org:  memlayout.PoisonIvy,
		Meta: &metacache.Config{Size: 64 << 10, Ways: 8}})
	if err != nil {
		t.Fatal(err)
	}
	sgxC := r.Meta[memlayout.KindCounter]
	piC := pi.Meta[memlayout.KindCounter]
	if sgxC.Misses <= piC.Misses {
		t.Errorf("SGX counter misses %d should exceed PI's %d", sgxC.Misses, piC.Misses)
	}
}

func TestLargerMetaCacheNoWorse(t *testing.T) {
	small, err := Run(Config{Benchmark: "fft", Instructions: testInstr, Secure: true,
		Meta: &metacache.Config{Size: 16 << 10, Ways: 8}})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Config{Benchmark: "fft", Instructions: testInstr, Secure: true,
		Meta: &metacache.Config{Size: 1 << 20, Ways: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if big.MetaMPKI > small.MetaMPKI*1.05 {
		t.Errorf("1MB metadata cache (%v MPKI) much worse than 16KB (%v)", big.MetaMPKI, small.MetaMPKI)
	}
}
