package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
	wspec "github.com/maps-sim/mapsim/internal/workload/spec"
)

const specTestYAML = `
version: 1
name: mixed-web
mean_gap: 4
clients:
  - name: web
    rate_fraction: 0.6
    footprint: 256KB
    write_fraction: 0.2
    arrival:
      process: poisson
  - name: batch
    rate_fraction: 0.4
    footprint: 1MB
    write_fraction: 0.5
    sequential_run: 16
    arrival:
      process: gamma
      cv: 2.5
`

func parseSpecT(t *testing.T) *wspec.Spec {
	t.Helper()
	sp, err := wspec.Parse([]byte(specTestYAML))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// recordSpecTrace drains the spec's generator at the given seed into
// a streaming trace file covering at least budget instructions.
func recordSpecTrace(t *testing.T, sp *wspec.Spec, seed int64, budget uint64) string {
	t.Helper()
	gen, err := sp.Generator()
	if err != nil {
		t.Fatal(err)
	}
	gen.Reset(seed)
	path := filepath.Join(t.TempDir(), "w.mtrc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f, trace.StreamHeader{Name: gen.Name(), Footprint: gen.Footprint()}, false)
	if err != nil {
		t.Fatal(err)
	}
	var gapSum uint64
	var a workload.Access
	for gapSum < budget {
		gen.Next(&a)
		gapSum += uint64(a.Gap)
		if err := w.Write(trace.Record{Addr: a.Addr, Write: a.Write, Gap: a.Gap}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// stripExecution erases the fields that describe how a run executed
// (wall clock, shard layout) rather than what it simulated, so two
// runs can be compared for simulated bit-identity.
func stripExecution(rs ...*Result) {
	for _, r := range rs {
		r.Timing = PhaseTiming{}
		r.Sharding = nil
	}
}

// TestSpecReplayMatchesDirect records a spec workload's access stream
// at the sim's default seed and checks the trace replay reproduces
// the direct spec-driven run bit for bit. This pins the seed contract
// between mapstrace record-workload and sim.Run: the sim maps seed 0
// to 1, so the recording must too.
func TestSpecReplayMatchesDirect(t *testing.T) {
	sp := parseSpecT(t)
	// Budget covers warmup (Instructions/10) + measure + slack: the
	// replay must not wrap or the streams diverge.
	path := recordSpecTrace(t, sp, 1, 300_000)

	direct, err := Run(Config{WorkloadSpec: sp, Instructions: 200_000, Secure: true, Speculation: true})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := Run(Config{TracePath: path, Instructions: 200_000, Secure: true, Speculation: true})
	if err != nil {
		t.Fatal(err)
	}
	stripExecution(direct, replay)
	if !reflect.DeepEqual(direct, replay) {
		t.Errorf("replay diverged from direct run:\n direct: instrs=%d cycles=%d llc=%+v\n replay: instrs=%d cycles=%d llc=%+v",
			direct.Instructions, direct.Cycles, direct.LLC,
			replay.Instructions, replay.Cycles, replay.LLC)
	}
	if direct.Benchmark != "mixed-web" || replay.Benchmark != "mixed-web" {
		t.Errorf("benchmark labels = %q, %q, want both %q", direct.Benchmark, replay.Benchmark, "mixed-web")
	}
}

// TestSpecShardsBitIdentical is the epoch-parallel twin test for
// spec-driven workloads: the sharded run must reproduce the
// sequential run exactly, which requires the spec generator (and
// every sub-generator) to clone correctly.
func TestSpecShardsBitIdentical(t *testing.T) {
	sp := parseSpecT(t)
	base := Config{WorkloadSpec: sp, Instructions: 200_000, Secure: true, Speculation: true}

	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		cfg := base
		cfg.Shards = shards
		par, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if par.Sharding == nil || par.Sharding.Shards != shards {
			t.Fatalf("shards=%d: sharding stats = %+v, want %d shards", shards, par.Sharding, shards)
		}
		stripExecution(seq, par)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("shards=%d diverged: seq cycles=%d par cycles=%d", shards, seq.Cycles, par.Cycles)
		}
	}
}

// TestTraceReplayRunsSequentially pins the fallback contract: a trace
// replay generator is deliberately not a Cloner (one file handle, one
// cursor), so a Shards request silently runs sequentially — same
// results, no shard stats.
func TestTraceReplayRunsSequentially(t *testing.T) {
	sp := parseSpecT(t)
	path := recordSpecTrace(t, sp, 1, 150_000)
	cfg := Config{TracePath: path, Instructions: 100_000, Secure: true, Shards: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sharding != nil {
		t.Errorf("trace replay ran sharded (%+v); want sequential fallback", res.Sharding)
	}
}

func TestConfigSpecValidation(t *testing.T) {
	sp := parseSpecT(t)
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"spec and trace", Config{WorkloadSpec: sp, TracePath: "x.mtrc"}, "mutually exclusive"},
		{"bench and trace", Config{Benchmark: "canneal", TracePath: "x.mtrc"}, "mutually exclusive"},
		{"bench conflicts with spec name", Config{WorkloadSpec: sp, Benchmark: "canneal"}, "conflicts"},
		{"nothing set", Config{}, "required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Run() err = %v, want containing %q", err, tc.want)
			}
		})
	}

	// Benchmark equal to the spec name is fine — that is what
	// fillDefaults produces on the round trip through the wire format.
	cfg := Config{WorkloadSpec: sp, Benchmark: sp.Name, Instructions: 50_000}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run(spec with matching benchmark) = %v", err)
	}
}

func TestCanonicalRejectsTracePath(t *testing.T) {
	cfg := Config{TracePath: "/tmp/some.mtrc", Instructions: 1000}
	if _, err := cfg.Canonical(); err == nil || !strings.Contains(err.Error(), "machine-local") {
		t.Fatalf("Canonical() err = %v, want machine-local rejection", err)
	}
}

func TestCanonicalNormalizesSpec(t *testing.T) {
	sp := parseSpecT(t)
	cfg := Config{WorkloadSpec: sp, Instructions: 50_000}
	c, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c.WorkloadSpec == sp {
		t.Error("Canonical() aliased the caller's spec instead of canonicalizing a copy")
	}
	if c.WorkloadSpec.Version != 1 || c.Benchmark != sp.Name {
		t.Errorf("canonical spec version=%d benchmark=%q, want 1/%q", c.WorkloadSpec.Version, c.Benchmark, sp.Name)
	}
	// An invalid spec must be rejected at canonicalization time, not
	// at simulation time — remote daemons hash before they run.
	bad := *sp
	bad.Clients = nil
	cfg = Config{WorkloadSpec: &bad}
	if _, err := cfg.Canonical(); err == nil {
		t.Error("Canonical() accepted a spec with no clients")
	}
}

func TestSuiteRejectsSpecAndTrace(t *testing.T) {
	sp := parseSpecT(t)
	if _, err := RunSuite(Config{WorkloadSpec: sp}, []string{"canneal"}, 1); err == nil {
		t.Error("RunSuite accepted a base config with WorkloadSpec")
	}
	if _, err := RunSuite(Config{TracePath: "x.mtrc"}, []string{"canneal"}, 1); err == nil {
		t.Error("RunSuite accepted a base config with TracePath")
	}
}
