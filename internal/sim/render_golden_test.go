package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/maps-sim/mapsim/internal/dram"
	"github.com/maps-sim/mapsim/internal/memlayout"
)

// Golden test: the human-readable table rendering is part of the CLI
// contract and must not drift as result structs gain JSON tags or new
// fields. Built from a hand-constructed SuiteResult so the expected
// text is exact, not simulation-dependent.
func TestSuiteResultRenderGolden(t *testing.T) {
	s := &SuiteResult{
		PerBench: map[string]*Result{
			"fft": {
				Benchmark: "fft", LLCMPKI: 12.3456, MetaMPKI: 4.5678, IPC: 0.98765,
				DRAM: dram.Stats{Reads: 1000, Writes: 234},
			},
			"canneal": {
				Benchmark: "canneal", LLCMPKI: 30, MetaMPKI: 15.5, IPC: 0.5,
				DRAM: dram.Stats{Reads: 4000, Writes: 1000},
			},
		},
		Order:           []string{"fft", "canneal"},
		GeomeanLLCMPKI:  19.2465,
		GeomeanMetaMPKI: 8.4142,
		GeomeanIPC:      0.70271,
		// geomean(1234, 5000) = sqrt(6,170,000) ≈ 2483.95
		GeomeanMemAccesses: 2483.9485,
	}
	got := s.Render()
	want := "benchmark  LLC MPKI  meta MPKI  IPC    mem accesses\n" +
		"---------  --------  ---------  -----  ------------\n" +
		"fft        12.35     4.57       0.988  1234        \n" +
		"canneal    30.00     15.50      0.500  5000        \n" +
		"geomean    19.25     8.41       0.703  2484        \n"
	if got != want {
		t.Errorf("Render drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// The JSON encoding feeds both `maps -json` and mapsd's API; pin the
// key spelling so clients don't break when fields are renamed.
func TestSuiteResultJSONKeys(t *testing.T) {
	s := &SuiteResult{
		PerBench: map[string]*Result{
			"fft": {
				Benchmark: "fft",
				Meta: map[memlayout.Kind]KindResult{
					memlayout.KindCounter: {Accesses: 10, Hits: 9, Misses: 1, MPKI: 0.5},
				},
			},
		},
		Order: []string{"fft"},
	}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	text := string(buf)
	for _, key := range []string{
		`"per_bench"`, `"order"`, `"geomean_llc_mpki"`, `"geomean_meta_mpki"`,
		`"geomean_ipc"`, `"geomean_ed2"`, `"geomean_mem_accesses"`, `"wall_ns"`,
		`"benchmark"`, `"llc_mpki"`, `"timing"`, `"setup_ns"`,
		`"counter"`, // Kind map keys serialize as names, not numbers
	} {
		if !strings.Contains(text, key) {
			t.Errorf("JSON missing %s:\n%s", key, text)
		}
	}
	// Round-trip through the wire format.
	var back SuiteResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	kr := back.PerBench["fft"].Meta[memlayout.KindCounter]
	if kr.Hits != 9 || kr.MPKI != 0.5 {
		t.Fatalf("round-trip lost data: %+v", kr)
	}
}
