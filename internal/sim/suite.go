package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/maps-sim/mapsim/internal/obs"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/workload"
)

// SuiteResult aggregates one configuration across a benchmark suite.
type SuiteResult struct {
	// PerBench maps benchmark name to its result.
	PerBench map[string]*Result `json:"per_bench"`
	// Order preserves the requested benchmark order for reports.
	Order []string `json:"order"`

	// Geomeans across the suite.
	GeomeanLLCMPKI  float64 `json:"geomean_llc_mpki"`
	GeomeanMetaMPKI float64 `json:"geomean_meta_mpki"`
	GeomeanIPC      float64 `json:"geomean_ipc"`
	GeomeanED2      float64 `json:"geomean_ed2"`
	// GeomeanMemAccesses is the geometric mean of per-benchmark DRAM
	// accesses (reads + writes).
	GeomeanMemAccesses float64 `json:"geomean_mem_accesses"`

	// Wall is the fan-out's host wall-clock time (not simulated
	// cycles); it serializes as nanoseconds.
	Wall time.Duration `json:"wall_ns"`
}

// RunSuite runs the same configuration (everything except Benchmark /
// Workload) across the given benchmarks in parallel. An empty
// benchmark list selects the full registry.
func RunSuite(base Config, benchmarks []string, parallelism int) (*SuiteResult, error) {
	return RunSuiteContext(context.Background(), base, benchmarks, parallelism)
}

// RunSuiteContext is RunSuite under a context: cancelling ctx stops
// every in-flight run. The fan-out also cancels itself as soon as any
// benchmark fails — queued runs never start and in-flight ones stop
// at their next cancellation check — so a bad config does not burn a
// suite's worth of simulation before reporting.
func RunSuiteContext(ctx context.Context, base Config, benchmarks []string, parallelism int) (*SuiteResult, error) {
	if len(benchmarks) == 0 {
		benchmarks = workload.Names()
	}
	if base.WorkloadSpec != nil || base.TracePath != "" {
		// A suite varies Benchmark across the registry; a base that pins
		// the workload another way would silently override every entry.
		return nil, fmt.Errorf("sim: suite base must not set WorkloadSpec or TracePath")
	}
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	// Record the fan-out width so runs with Shards == AutoShards size
	// their epoch parallelism to the CPU budget left over after the
	// suite's own concurrency (see effectiveShards).
	ctx = WithConcurrency(ctx, parallelism)
	endSuite := obs.Span(ctx, "suite", "benchmarks", len(benchmarks), "parallelism", parallelism)
	if base.Progress != nil {
		// Publish the whole suite's instruction total before any run
		// starts, so observers see a stable denominator. Each run's
		// own EnsureTotal then keeps its hands off it.
		per := base
		per.Benchmark = "-" // a suite base legitimately omits Benchmark
		per.fillDefaults()
		base.Progress.Start(uint64(len(benchmarks)) * (per.Warmup + per.Instructions))
	}
	res := &SuiteResult{
		PerBench: make(map[string]*Result, len(benchmarks)),
		Order:    append([]string{}, benchmarks...),
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel() // abandon the rest of the fan-out
	}
	for _, b := range benchmarks {
		wg.Add(1)
		sem <- struct{}{}
		go func(b string) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return // a sibling already failed; don't start
			}
			cfg := base
			cfg.Benchmark = b
			cfg.Workload = nil // force a private generator per run
			if cfg.Meta != nil {
				metaCopy := *cfg.Meta
				// Policies and partition schemes are stateful; a
				// shared instance across concurrent runs would race.
				if metaCopy.Policy != nil || metaCopy.Partition != nil {
					fail(fmt.Errorf("sim: RunSuite requires nil Meta.Policy and Meta.Partition (stateful instances cannot be shared across runs)"))
					return
				}
				cfg.Meta = &metaCopy
			}
			r, err := RunContext(ctx, cfg)
			if err != nil {
				// fail keeps only the first error, so runs cancelled
				// as victims of an earlier failure never mask it.
				fail(fmt.Errorf("sim: %s: %w", b, err))
				return
			}
			mu.Lock()
			res.PerBench[b] = r
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res.computeGeomeans(benchmarks)
	res.Wall = endSuite()
	return res, nil
}

// computeGeomeans fills the suite-level geometric means from the
// per-benchmark results.
func (s *SuiteResult) computeGeomeans(benchmarks []string) {
	var llc, meta, ipc, ed2, mem []float64
	for _, b := range benchmarks {
		r := s.PerBench[b]
		if r == nil {
			continue
		}
		llc = append(llc, r.LLCMPKI)
		meta = append(meta, r.MetaMPKI)
		ipc = append(ipc, r.IPC)
		ed2 = append(ed2, r.ED2)
		mem = append(mem, float64(r.DRAM.Accesses()))
	}
	s.GeomeanLLCMPKI = GeomeanPositive(llc)
	s.GeomeanMetaMPKI = GeomeanPositive(meta)
	s.GeomeanIPC = GeomeanPositive(ipc)
	s.GeomeanED2 = GeomeanPositive(ed2)
	s.GeomeanMemAccesses = GeomeanPositive(mem)
}

// GeomeanPositive is stats.Geomean restricted to the strictly positive
// entries. A zero per-benchmark value — MetaMPKI in an insecure suite,
// LLCMPKI for a cache-resident workload — would otherwise be clamped
// to Geomean's 1e-12 log floor and drag the whole mean to nonsense.
// With no positive entries the mean is 0. The suite geomeans and the
// sweep engine's per-axis aggregates share these semantics.
func GeomeanPositive(vals []float64) float64 {
	pos := make([]float64, 0, len(vals))
	for _, v := range vals {
		if v > 0 {
			pos = append(pos, v)
		}
	}
	if len(pos) == 0 {
		return 0
	}
	return stats.Geomean(pos)
}

// Render prints a per-benchmark summary table with the geomean row.
func (s *SuiteResult) Render() string {
	var t stats.Table
	t.AddRow("benchmark", "LLC MPKI", "meta MPKI", "IPC", "mem accesses")
	for _, b := range s.Order {
		r := s.PerBench[b]
		if r == nil {
			// A partial result — e.g. a JSON-decoded SuiteResult from
			// mapsd that is missing a benchmark — renders a placeholder
			// row instead of panicking, matching computeGeomeans's nil
			// guard.
			t.AddRow(b, "-", "-", "-", "-")
			continue
		}
		t.AddRow(b,
			fmt.Sprintf("%.2f", r.LLCMPKI),
			fmt.Sprintf("%.2f", r.MetaMPKI),
			fmt.Sprintf("%.3f", r.IPC),
			fmt.Sprintf("%d", r.DRAM.Accesses()))
	}
	t.AddRow("geomean",
		fmt.Sprintf("%.2f", s.GeomeanLLCMPKI),
		fmt.Sprintf("%.2f", s.GeomeanMetaMPKI),
		fmt.Sprintf("%.3f", s.GeomeanIPC),
		fmt.Sprintf("%.0f", s.GeomeanMemAccesses))
	return t.String()
}
