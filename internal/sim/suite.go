package sim

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/workload"
)

// SuiteResult aggregates one configuration across a benchmark suite.
type SuiteResult struct {
	// PerBench maps benchmark name to its result.
	PerBench map[string]*Result
	// Order preserves the requested benchmark order for reports.
	Order []string

	// Geomeans across the suite.
	GeomeanLLCMPKI  float64
	GeomeanMetaMPKI float64
	GeomeanIPC      float64
	GeomeanED2      float64
}

// RunSuite runs the same configuration (everything except Benchmark /
// Workload) across the given benchmarks in parallel. An empty
// benchmark list selects the full registry.
func RunSuite(base Config, benchmarks []string, parallelism int) (*SuiteResult, error) {
	if len(benchmarks) == 0 {
		benchmarks = workload.Names()
	}
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	res := &SuiteResult{
		PerBench: make(map[string]*Result, len(benchmarks)),
		Order:    append([]string{}, benchmarks...),
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, b := range benchmarks {
		wg.Add(1)
		sem <- struct{}{}
		go func(b string) {
			defer wg.Done()
			defer func() { <-sem }()
			cfg := base
			cfg.Benchmark = b
			cfg.Workload = nil // force a private generator per run
			if cfg.Meta != nil {
				metaCopy := *cfg.Meta
				// Policies and partition schemes are stateful; a
				// shared instance across concurrent runs would race.
				if metaCopy.Policy != nil || metaCopy.Partition != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sim: RunSuite requires nil Meta.Policy and Meta.Partition (stateful instances cannot be shared across runs)")
					}
					mu.Unlock()
					return
				}
				cfg.Meta = &metaCopy
			}
			r, err := Run(cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("sim: %s: %w", b, err)
				}
				return
			}
			res.PerBench[b] = r
		}(b)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	var llc, meta, ipc, ed2 []float64
	for _, b := range benchmarks {
		r := res.PerBench[b]
		llc = append(llc, r.LLCMPKI)
		meta = append(meta, r.MetaMPKI)
		ipc = append(ipc, r.IPC)
		ed2 = append(ed2, r.ED2)
	}
	res.GeomeanLLCMPKI = stats.Geomean(llc)
	res.GeomeanMetaMPKI = stats.Geomean(meta)
	res.GeomeanIPC = stats.Geomean(ipc)
	res.GeomeanED2 = stats.Geomean(ed2)
	return res, nil
}

// Render prints a per-benchmark summary table with the geomean row.
func (s *SuiteResult) Render() string {
	var t stats.Table
	t.AddRow("benchmark", "LLC MPKI", "meta MPKI", "IPC", "mem accesses")
	for _, b := range s.Order {
		r := s.PerBench[b]
		t.AddRow(b,
			fmt.Sprintf("%.2f", r.LLCMPKI),
			fmt.Sprintf("%.2f", r.MetaMPKI),
			fmt.Sprintf("%.3f", r.IPC),
			fmt.Sprintf("%d", r.DRAM.Accesses()))
	}
	t.AddRow("geomean",
		fmt.Sprintf("%.2f", s.GeomeanLLCMPKI),
		fmt.Sprintf("%.2f", s.GeomeanMetaMPKI),
		fmt.Sprintf("%.3f", s.GeomeanIPC),
		"")
	return t.String()
}
