package sim

import (
	"math"
	"testing"

	"github.com/maps-sim/mapsim/internal/dram"
)

// Zero-valued per-benchmark entries (MetaMPKI on an insecure suite,
// LLCMPKI on a cache-resident workload) must be excluded from the
// suite geomeans instead of being clamped to the 1e-12 log floor,
// which would drag the mean to ~0 no matter what the real entries say.
func TestSuiteGeomeansIgnoreZeroEntries(t *testing.T) {
	res := &SuiteResult{PerBench: map[string]*Result{
		"a": {LLCMPKI: 4, MetaMPKI: 0, IPC: 0.5, ED2: 2, DRAM: dram.Stats{Reads: 100}},
		"b": {LLCMPKI: 9, MetaMPKI: 16, IPC: 0.8, ED2: 0, DRAM: dram.Stats{Reads: 400}},
		"c": {LLCMPKI: 0, MetaMPKI: 4, IPC: 0.2, ED2: 8, DRAM: dram.Stats{Reads: 0}},
	}}
	res.computeGeomeans([]string{"a", "b", "c"})

	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	approx("GeomeanLLCMPKI", res.GeomeanLLCMPKI, 6)   // sqrt(4*9), zero entry dropped
	approx("GeomeanMetaMPKI", res.GeomeanMetaMPKI, 8) // sqrt(16*4)
	approx("GeomeanED2", res.GeomeanED2, 4)           // sqrt(2*8)
	approx("GeomeanMemAccesses", res.GeomeanMemAccesses, 200)
	approx("GeomeanIPC", res.GeomeanIPC, math.Cbrt(0.5*0.8*0.2))
}

// A metric that is zero for every benchmark reports 0, not the clamp
// floor, and benchmarks missing from PerBench are skipped.
func TestSuiteGeomeansAllZero(t *testing.T) {
	res := &SuiteResult{PerBench: map[string]*Result{
		"a": {LLCMPKI: 2, IPC: 1},
		"b": {LLCMPKI: 8, IPC: 1},
	}}
	res.computeGeomeans([]string{"a", "b", "missing"})
	if res.GeomeanMetaMPKI != 0 {
		t.Errorf("GeomeanMetaMPKI = %g, want 0", res.GeomeanMetaMPKI)
	}
	if res.GeomeanLLCMPKI != 4 {
		t.Errorf("GeomeanLLCMPKI = %g, want 4", res.GeomeanLLCMPKI)
	}
}
