package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
)

// A cancelled context must stop a long run mid-flight rather than
// letting it complete.
func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Far more instructions than complete in the test's lifetime.
		_, err := RunContext(ctx, Config{Benchmark: "libquantum", Instructions: 2_000_000_000})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := RunContext(ctx, Config{Benchmark: "libquantum", Instructions: 2_000_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// One failing benchmark must cancel the rest of the fan-out: the
// remaining long runs stop early instead of completing and being
// discarded.
func TestRunSuiteContextEarlyCancelOnFailure(t *testing.T) {
	start := time.Now()
	// "no-such-bench" fails instantly in fill; the valid benchmarks
	// are sized so that finishing them all would take far longer than
	// the asserted bound.
	_, err := RunSuiteContext(context.Background(), Config{Instructions: 500_000_000},
		[]string{"no-such-bench", "libquantum", "fft", "canneal", "leslie3d"}, 2)
	if err == nil {
		t.Fatal("want error from invalid benchmark")
	}
	if !strings.Contains(err.Error(), "no-such-bench") {
		t.Fatalf("error %q does not name the failing benchmark", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("suite took %v; cancellation did not stop the fan-out", elapsed)
	}
}

func TestRunSuiteContextParentCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSuiteContext(ctx, Config{Instructions: 100_000_000}, []string{"libquantum", "fft"}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestCanonicalAppliesDefaults(t *testing.T) {
	implicit, err := Config{Benchmark: "fft"}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Config{
		Benchmark:    "fft",
		Instructions: 2_000_000,
		Warmup:       200_000,
		Seed:         1,
	}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(implicit, explicit) {
		t.Fatalf("defaulted config differs from explicit equivalent:\n%+v\n%+v", implicit, explicit)
	}
	if implicit.Instructions != 2_000_000 || implicit.Warmup != 200_000 || implicit.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", implicit)
	}
	if implicit.Hierarchy.L1Size == 0 || implicit.DRAM.Banks == 0 || implicit.BaseCPI != 1.0 {
		t.Fatalf("structural defaults not applied: %+v", implicit)
	}
}

func TestCanonicalRejectsStatefulFields(t *testing.T) {
	if _, err := (Config{}).Canonical(); err == nil {
		t.Error("want error for missing benchmark")
	}
	if _, err := (Config{Benchmark: "fft", Tap: func(trace.Access) {}}).Canonical(); err == nil {
		t.Error("want error for Tap")
	}
	g, err := workload.New("fft")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Config{Workload: g}).Canonical(); err == nil {
		t.Error("want error for caller-supplied Workload")
	}
	if _, err := (Config{
		Benchmark: "fft",
		Meta:      &metacache.Config{Size: 64 << 10, Ways: 8, Policy: policy.NewLRU()},
	}).Canonical(); err == nil {
		t.Error("want error for stateful Meta.Policy")
	}
}
