package sim

import (
	"reflect"
	"testing"

	"github.com/maps-sim/mapsim/internal/metacache"
)

// TestFastPathBitIdentical is the cross-check behind the fast-path
// contract: routing every cache through the generic Policy interface
// (DisableFastPath) must produce a bit-identical Result to the
// devirtualized hot path, for both the insecure baseline and a full
// secure run with a metadata cache.
func TestFastPathBitIdentical(t *testing.T) {
	configs := map[string]Config{
		"insecure": {
			Benchmark:    "canneal",
			Instructions: testInstr,
		},
		"secure": {
			Benchmark:    "streamcluster",
			Instructions: testInstr,
			Secure:       true,
			Speculation:  true,
			Meta:         &metacache.Config{Size: 32 << 10, Ways: 8},
		},
		"secure-no-meta": {
			Benchmark:    "canneal",
			Instructions: testInstr / 4,
			Secure:       true,
		},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			fast, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			slow := cfg
			slow.DisableFastPath = true
			if slow.Meta != nil {
				metaCopy := *slow.Meta
				slow.Meta = &metaCopy
			}
			generic, err := Run(slow)
			if err != nil {
				t.Fatal(err)
			}
			// Wall-clock timing legitimately differs between the paths.
			fast.Timing = PhaseTiming{}
			generic.Timing = PhaseTiming{}
			if !reflect.DeepEqual(fast, generic) {
				t.Errorf("fast path diverges from generic policy path\nfast:    %+v\ngeneric: %+v", fast, generic)
			}
		})
	}
}

// TestDisableFastPathCanonicalErased pins that the knob carries no
// simulation identity: canonical forms (and therefore result-cache
// keys) are identical with and without it.
func TestDisableFastPathCanonicalErased(t *testing.T) {
	base := Config{Benchmark: "canneal", Secure: true, Meta: &metacache.Config{Size: 32 << 10, Ways: 8}}
	on := base
	on.DisableFastPath = true
	metaCopy := *base.Meta
	metaCopy.DisableFastPath = true
	on.Meta = &metaCopy

	cOff, err := base.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cOn, err := on.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cOff, cOn) {
		t.Errorf("canonical forms differ:\noff: %+v\non:  %+v", cOff, cOn)
	}
	if cOn.DisableFastPath || cOn.Hierarchy.DisableFastPath || cOn.Meta.DisableFastPath {
		t.Errorf("canonical form retains DisableFastPath: %+v", cOn)
	}
}
