package sim

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/obs"
)

func progressCfg(p *obs.Progress) Config {
	return Config{
		Benchmark:    "fft",
		Instructions: 4 * cancelCheckInterval,
		Warmup:       cancelCheckInterval,
		Secure:       true,
		Progress:     p,
	}
}

// A run must publish its total and finish with done ≥ warmup +
// measured instructions (step granularity can overshoot slightly).
func TestRunTicksProgress(t *testing.T) {
	var p obs.Progress
	cfg := progressCfg(&p)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	wantTotal := cfg.Warmup + cfg.Instructions
	if s.Total != wantTotal {
		t.Errorf("total = %d, want %d", s.Total, wantTotal)
	}
	if s.Done < wantTotal {
		t.Errorf("done = %d, want ≥ %d", s.Done, wantTotal)
	}
	if s.Fraction != 1 {
		t.Errorf("fraction = %v, want 1", s.Fraction)
	}
}

// Mid-run observations must be monotonically non-decreasing — the
// contract behind mapsd's GET /v1/jobs/{id}/progress.
func TestProgressMonotonicMidRun(t *testing.T) {
	var p obs.Progress
	cfg := progressCfg(&p)
	cfg.Instructions = 40 * cancelCheckInterval

	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		done <- err
	}()

	var last uint64
	var observations int
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if observations == 0 {
				t.Skip("run finished before any observation; machine too fast for this assertion")
			}
			if final := p.Done(); final < last {
				t.Errorf("final done %d below observed %d", final, last)
			}
			return
		default:
		}
		cur := p.Done()
		if cur < last {
			t.Fatalf("progress went backwards: %d after %d", cur, last)
		}
		if cur > last {
			observations++
		}
		last = cur
		time.Sleep(100 * time.Microsecond)
	}
}

// A suite sharing one Progress must publish the whole fan-out's total
// before runs start adding to it.
func TestSuiteProgressTotal(t *testing.T) {
	var p obs.Progress
	base := Config{
		Instructions: 2 * cancelCheckInterval,
		Warmup:       cancelCheckInterval,
		Secure:       true,
		Progress:     &p,
	}
	benches := []string{"fft", "libquantum", "lbm"}
	if _, err := RunSuite(base, benches, 2); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	wantTotal := uint64(len(benches)) * (base.Warmup + base.Instructions)
	if s.Total != wantTotal {
		t.Errorf("suite total = %d, want %d", s.Total, wantTotal)
	}
	if s.Done < wantTotal {
		t.Errorf("suite done = %d, want ≥ %d", s.Done, wantTotal)
	}
}

// The disabled-progress hot loop must allocate exactly as much as the
// enabled one — i.e. the progress machinery is allocation-free, so
// leaving Progress nil cannot cost anything either. Run-to-run the
// simulator's allocations are deterministic (same config, same seed),
// which is what makes the equality meaningful.
func TestProgressAllocParity(t *testing.T) {
	cfgOff := progressCfg(nil)
	var p obs.Progress
	cfgOn := progressCfg(&p)

	run := func(cfg Config) func() {
		return func() {
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(cfgOff)() // warm any lazy global state before counting
	off := testing.AllocsPerRun(3, run(cfgOff))
	on := testing.AllocsPerRun(3, run(cfgOn))
	if off != on {
		t.Errorf("allocs differ: progress disabled %v, enabled %v", off, on)
	}
}

// Cancellation mid-run must leave progress monotone (no rollback).
func TestProgressSurvivesCancel(t *testing.T) {
	var p obs.Progress
	cfg := progressCfg(&p)
	cfg.Instructions = 1000 * cancelCheckInterval
	ctx, cancel := context.WithCancel(context.Background())
	var sampled atomic.Uint64
	go func() {
		for sampled.Load() == 0 {
			sampled.Store(p.Done())
		}
		cancel()
	}()
	_, err := RunContext(ctx, cfg)
	cancel()
	if err == nil {
		t.Skip("run finished before cancellation landed")
	}
	if p.Done() < sampled.Load() {
		t.Errorf("done rolled back after cancel: %d < %d", p.Done(), sampled.Load())
	}
}

func benchRun(b *testing.B, p *obs.Progress) {
	b.Helper()
	cfg := progressCfg(p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunProgressDisabled vs BenchmarkRunProgressEnabled: the
// pair demonstrates the disabled path's zero-cost claim (allocs/op
// must match; ns/op within noise). `go test -bench Progress ./internal/sim`.
func BenchmarkRunProgressDisabled(b *testing.B) { benchRun(b, nil) }

// BenchmarkRunProgressEnabled is the enabled-side counterpart.
func BenchmarkRunProgressEnabled(b *testing.B) {
	var p obs.Progress
	benchRun(b, &p)
}
