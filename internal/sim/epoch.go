// Epoch-parallel intra-run simulation.
//
// RunContext normally walks the access stream once, single-threaded.
// When Config.Shards asks for intra-run parallelism the driver below
// splits the stream into near-equal epochs and pipelines them across
// cores, merging per-epoch statistics with a fixed-order integer
// reduction so the output is bit-identical to the sequential path:
//
//	scan       one generator-only pass places epoch boundaries (the
//	           warmup/measure boundary is always a boundary, because
//	           the sequential path resets statistics there) and
//	           snapshots the generator at each
//	front      per epoch, in parallel: the cache hierarchy runs from a
//	           speculative cold start (epoch 0 from the true cold
//	           start) and records a compact event log — LLC miss
//	           reads and writeback bursts, each carrying the cycle
//	           and instruction weight accumulated since the previous
//	           event — plus fingerprint checkpoints at geometrically
//	           spaced positions
//	reconcile  in epoch order: each epoch is re-run from its true
//	           predecessor state and compared against its speculative
//	           run at the checkpoints; on a fingerprint match the
//	           speculative suffix (events, writebacks, stat deltas)
//	           is spliced onto the replay prefix, otherwise the
//	           replay runs to the end (full replay)
//	fold       a sequential walk of the now-exact writeback stream
//	           advances the logical encryption counters, snapshotting
//	           them at epoch boundaries, so every epoch's engine sees
//	           split-counter overflows exactly where the sequential
//	           run would
//	back       per epoch, in parallel: the metadata cache, secure
//	           engine, and DRAM timing model consume the exact event
//	           log, again speculatively cold-started and reconciled
//	           through relative-basis fingerprints (bank readyAt and
//	           the HMAC engine's readyAt are compared as remaining
//	           cycles, since speculative and exact runs disagree on
//	           absolute cycle counts)
//	merge      per-epoch integer counters sum in epoch order over the
//	           measured epochs only; derived floats (energy, MPKI,
//	           IPC) are computed once from the merged totals, which
//	           is why they cannot drift from the sequential path
//
// Speculation is confined to cache/bank/HMAC state: the generator
// snapshots are exact, so access and writeback streams never need
// re-deriving, and the counter fold is exact by construction. A
// fingerprint match certifies behavioral equivalence (identical
// future hits, misses, evictions, and latencies), not bit-equality —
// see cache.Cache.Fingerprint for the per-policy contracts.

package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/dram"
	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/hierarchy"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/obs"
	"github.com/maps-sim/mapsim/internal/secmem/ctr"
	"github.com/maps-sim/mapsim/internal/secmem/engine"
	"github.com/maps-sim/mapsim/internal/workload"
)

// AutoShards, assigned to Config.Shards, derives the shard count from
// the CPU budget left over after inter-run parallelism (see
// WithConcurrency) instead of forcing a fixed value.
const AutoShards = -1

// maxAutoShards caps derived shard counts; beyond this the
// reconciliation chain, not the parallel phases, dominates.
const maxAutoShards = 16

// cpuCount is swapped by tests to exercise the CPU-budget math on a
// fixed "machine size".
var cpuCount = runtime.NumCPU

// faultEpoch is the injection point armed (as "sim.epoch") to make a
// speculative epoch fail at launch, exercising the parallel driver's
// teardown path.
var faultEpoch = faults.P("sim.epoch")

type concurrencyKey struct{}

// WithConcurrency records that the caller is already running n
// simulations in parallel. Nested callers compose multiplicatively
// (a 4-worker job pool running 2-way suite fan-outs occupies 8
// cores), and AutoShards divides the machine's CPUs by the recorded
// product so intra-run sharding never oversubscribes the host.
func WithConcurrency(ctx context.Context, n int) context.Context {
	if n < 1 {
		n = 1
	}
	return context.WithValue(ctx, concurrencyKey{}, concurrencyFrom(ctx)*n)
}

// ConcurrencyFromContext returns the inter-run parallelism recorded
// by WithConcurrency (1 when unset).
func ConcurrencyFromContext(ctx context.Context) int { return concurrencyFrom(ctx) }

func concurrencyFrom(ctx context.Context) int {
	if v, ok := ctx.Value(concurrencyKey{}).(int); ok && v > 0 {
		return v
	}
	return 1
}

// effectiveShards resolves Config.Shards against the context's CPU
// budget: 0 or 1 stays sequential, an explicit count is honored
// as-is, and AutoShards takes the CPUs not already claimed by
// inter-run parallelism.
func effectiveShards(ctx context.Context, shards int) int {
	switch {
	case shards == 0 || shards == 1:
		return 1
	case shards > 1:
		return shards
	}
	n := cpuCount() / concurrencyFrom(ctx)
	if n < 1 {
		n = 1
	}
	if n > maxAutoShards {
		n = maxAutoShards
	}
	return n
}

// activeShards counts shard workers across all in-flight parallel
// runs, for the mapsd_run_shards gauge.
var activeShards atomic.Int64

// ActiveShards reports how many intra-run shard slots are currently
// claimed across all in-flight runs in this process.
func ActiveShards() int64 { return activeShards.Load() }

// ShardStats diagnoses how the epoch-parallel run went: how many
// epochs converged at a fingerprint checkpoint (splices) versus
// degenerating into a full sequential replay, and how much work the
// reconciliation chain re-did. High full-replay counts mean the
// workload's state does not converge from a cold start and the run
// gained little from sharding (docs/PERFORMANCE.md).
type ShardStats struct {
	Shards                int    `json:"shards"`
	Epochs                int    `json:"epochs"`
	FrontSplices          int    `json:"front_splices"`
	FrontFullReplays      int    `json:"front_full_replays"`
	FrontReplayedAccesses uint64 `json:"front_replayed_accesses"`
	BackSplices           int    `json:"back_splices"`
	BackFullReplays       int    `json:"back_full_replays"`
	BackReplayedEvents    uint64 `json:"back_replayed_events"`
}

// shardable reports whether the configuration can run epoch-parallel
// at all: a Tap must observe the true interleaved metadata stream
// (which sharding does not preserve during speculation), and the
// generator must be snapshottable at epoch boundaries. Stateful
// metadata-cache policies and partitions are checked at run time via
// metacache.Cloneable.
func (c *Config) shardable() bool {
	if c.Tap != nil {
		return false
	}
	_, ok := c.Workload.(workload.Cloner)
	return ok
}

// ---------------------------------------------------------------------------
// Epoch planning

type epochPlan struct {
	gen      workload.Generator // snapshot at the epoch's first access
	accesses uint64
	warm     bool
}

// planEpochs walks the generator twice: once to count the accesses in
// the warmup and measured windows (replicating the sequential loop's
// overshoot — the final access's gap may carry the retired count past
// the limit), and once to snapshot the generator at each epoch start.
// It returns nil when the workload cannot be planned (not a Cloner).
func planEpochs(ctx context.Context, cfg *Config, shards int) ([]epochPlan, error) {
	cl, ok := cfg.Workload.(workload.Cloner)
	if !ok {
		return nil, nil
	}
	gen := cfg.Workload
	gen.Reset(cfg.Seed)
	var acc workload.Access
	countTo := func(limit uint64) (uint64, error) {
		var instrs, accs, sinceCheck uint64
		for instrs < limit {
			gen.Next(&acc)
			gap := uint64(acc.Gap)
			instrs += gap
			accs++
			sinceCheck += gap
			if sinceCheck >= cancelCheckInterval {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
		}
		return accs, nil
	}
	aW, err := countTo(cfg.Warmup)
	if err != nil {
		return nil, err
	}
	aM, err := countTo(cfg.Instructions)
	if err != nil {
		return nil, err
	}

	var plans []epochPlan
	split := func(total uint64, warm bool) {
		k := uint64(shards)
		if k > total {
			k = total
		}
		if k == 0 {
			return
		}
		base, extra := total/k, total%k
		for j := uint64(0); j < k; j++ {
			n := base
			if j < extra {
				n++
			}
			plans = append(plans, epochPlan{accesses: n, warm: warm})
		}
	}
	split(aW, true)
	split(aM, false)
	if len(plans) < 2 {
		return nil, nil
	}

	gen.Reset(cfg.Seed)
	for i := range plans {
		snap := cl.Clone()
		if _, ok := snap.(workload.Cloner); !ok {
			// The snapshot itself must be cloneable again (spec run +
			// possible replay both start from it).
			return nil, nil
		}
		plans[i].gen = snap
		for j := uint64(0); j < plans[i].accesses; j++ {
			gen.Next(&acc)
			if j&0xFFFF == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
		}
	}
	return plans, nil
}

func cloneGen(g workload.Generator) workload.Generator {
	return g.(workload.Cloner).Clone()
}

// ---------------------------------------------------------------------------
// Event log

// event is one entry of the compact log the front pass records and
// the back pass consumes. pre and instr carry the cycle advance and
// instructions retired since the previous event (base CPI plus L2/L3
// hit latencies — everything the hierarchy resolves without memory).
type event struct {
	pre   uint64
	addr  uint64 // data address (evRead only)
	instr uint32
	nWB   uint16 // writebacks issued after the read (or alone, evWB)
	kind  uint8
}

const (
	evNull uint8 = iota // accumulator flush at a checkpoint: no memory work
	evRead              // LLC miss read, followed by nWB writebacks
	evWB                // writebacks without a read (dirty evict under a hit)
)

// Checkpoint spacing doubles from these bases: dense early — where a
// cold speculative start is most likely to have just converged — and
// sparse late, so checkpoint overhead stays logarithmic.
const (
	frontCkptBase = 4096 // accesses
	backCkptBase  = 256  // events
)

// ---------------------------------------------------------------------------
// Front pass: generator + cache hierarchy

type frontCkpt struct {
	access  uint64
	fp      uint64
	nEvents int
	nWBs    int
	stats   [3]cache.Stats
}

type frontOut struct {
	events      []event
	wbs         []uint64 // flattened writeback addresses, in stream order
	ckpts       []frontCkpt
	stats       [3]cache.Stats // cumulative at end (or at the match point)
	instrs      uint64
	endHier     *hierarchy.Hierarchy
	converged   int // index into the spec's ckpts where the replay matched, -1 otherwise
	ranAccesses uint64
}

// parRun carries the per-access invariants the sequential loop hoists
// (latency constants, CPI mode) plus the layout shared by every
// epoch's engine.
type parRun struct {
	cfg     *Config
	layout  *memlayout.Layout
	secure  bool
	l2Lat   uint64
	l3Lat   uint64
	baseCPI float64
	unitCPI bool
}

// runFront simulates `accesses` accesses of one epoch through the
// cache hierarchy only, recording the event log. With spec == nil it
// records fingerprint checkpoints at the geometric schedule
// (speculative mode); with a speculative run's checkpoints it instead
// compares its own fingerprint at each recorded position and stops at
// the first match (replay mode).
func (pr *parRun) runFront(ctx context.Context, gen workload.Generator, hier *hierarchy.Hierarchy, accesses uint64, spec []frontCkpt) (*frontOut, error) {
	out := &frontOut{converged: -1}
	var (
		acc        workload.Access
		pendCycles uint64
		pendInstr  uint64
		nextCk     = uint64(frontCkptBase)
		specIdx    int
	)
	flush := func() {
		if pendCycles != 0 || pendInstr != 0 {
			out.events = append(out.events, event{pre: pendCycles, instr: uint32(pendInstr), kind: evNull})
			pendCycles, pendInstr = 0, 0
		}
	}
	snapStats := func() [3]cache.Stats {
		return [3]cache.Stats{hier.L1Stats(), hier.L2Stats(), hier.L3Stats()}
	}
	for a := uint64(0); a < accesses; a++ {
		gen.Next(&acc)
		gap := uint64(acc.Gap)
		out.instrs += gap
		pendInstr += gap
		if pendInstr >= 1<<31 {
			flush() // keep instr within its uint32
		}
		if pr.unitCPI {
			pendCycles += gap
		} else {
			pendCycles += uint64(float64(gap) * pr.baseCPI)
		}
		o := hier.Access(acc.Addr, acc.Write)
		switch o.Hit {
		case hierarchy.L2:
			pendCycles += pr.l2Lat
		case hierarchy.L3:
			pendCycles += pr.l3Lat
		case hierarchy.Memory:
			pendCycles += pr.l3Lat
			out.events = append(out.events, event{
				pre: pendCycles, addr: acc.Addr,
				instr: uint32(pendInstr), nWB: uint16(len(o.Writebacks)), kind: evRead,
			})
			pendCycles, pendInstr = 0, 0
			out.wbs = append(out.wbs, o.Writebacks...)
		}
		if o.Hit != hierarchy.Memory && len(o.Writebacks) > 0 {
			// A hit can still evict dirty blocks from the LLC (the
			// insert cascade below the hit level).
			out.events = append(out.events, event{
				pre: pendCycles, instr: uint32(pendInstr),
				nWB: uint16(len(o.Writebacks)), kind: evWB,
			})
			pendCycles, pendInstr = 0, 0
			out.wbs = append(out.wbs, o.Writebacks...)
		}
		if a&0x3FFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		done := a + 1
		if spec == nil {
			if done == nextCk && done < accesses {
				flush()
				out.ckpts = append(out.ckpts, frontCkpt{
					access: done, fp: hier.Fingerprint(),
					nEvents: len(out.events), nWBs: len(out.wbs),
					stats: snapStats(),
				})
				nextCk *= 2
			}
		} else if specIdx < len(spec) && done == spec[specIdx].access {
			flush()
			if hier.Fingerprint() == spec[specIdx].fp {
				out.converged = specIdx
				out.stats = snapStats()
				out.ranAccesses = done
				return out, nil
			}
			specIdx++
		}
	}
	flush()
	out.stats = snapStats()
	out.endHier = hier
	out.ranAccesses = accesses
	return out, nil
}

// spliceFront combines a replay prefix (exact through the matched
// checkpoint) with a speculative suffix. The accumulator flush at
// every checkpoint guarantees the cut is a clean concatenation: the
// spec's events after ck.nEvents carry no weight from before the
// checkpoint.
func spliceFront(spec, rep *frontOut) *frontOut {
	ck := spec.ckpts[rep.converged]
	out := &frontOut{
		events:  append(rep.events, spec.events[ck.nEvents:]...),
		wbs:     append(rep.wbs, spec.wbs[ck.nWBs:]...),
		instrs:  spec.instrs, // the generator is exact in both runs
		endHier: spec.endHier,
	}
	for l := 0; l < 3; l++ {
		out.stats[l] = csAdd(rep.stats[l], csSub(spec.stats[l], ck.stats[l]))
	}
	return out
}

// ---------------------------------------------------------------------------
// Counter fold

// foldCounters replays the exact writeback stream through the
// split-counter state machine, snapshotting the counter map at each
// epoch boundary. Increment-per-writeback is the engine's exact rule
// (engine.increment), so each epoch's engine, seeded with its
// snapshot, re-encrypts pages at exactly the writebacks the
// sequential run would. SGX-organization counters never overflow and
// are skipped entirely.
func foldCounters(ctx context.Context, pr *parRun, exact []*frontOut) ([]map[uint64]*ctr.PIBlock, error) {
	seeds := make([]map[uint64]*ctr.PIBlock, len(exact))
	if !pr.secure || pr.layout.Organization() == memlayout.SGX {
		return seeds, nil
	}
	cur := make(map[uint64]*ctr.PIBlock)
	for i, eo := range exact {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seeds[i] = engine.CloneCounters(cur)
		for _, wb := range eo.wbs {
			blkAddr := memlayout.BlockOf(wb)
			cAddr := pr.layout.CounterAddr(blkAddr)
			blk := cur[cAddr]
			if blk == nil {
				blk = &ctr.PIBlock{}
				cur[cAddr] = blk
			}
			blk.Increment(pr.layout.CounterSlot(blkAddr))
		}
	}
	return seeds, nil
}

// ---------------------------------------------------------------------------
// Back pass: metadata cache + secure engine + DRAM timing

// backStats are the mergeable integer counters one back epoch
// produces. dram.EnergyPJ stays zero here; the merged totals derive
// it once (dram.Config.EnergyOf).
type backStats struct {
	eng   engine.Stats
	dram  dram.Stats
	metaK [4]metacache.KindStats
	metaL [16]metacache.KindStats
}

type backCkpt struct {
	event  int
	fp     uint64
	cycles uint64
	st     backStats
}

type backOut struct {
	cycles       uint64 // the epoch's cycle advance (its own frame starts at 0)
	st           backStats
	ckpts        []backCkpt
	endMeta      *metacache.MetaCache
	endMem       *dram.Memory
	endHashReady uint64
	endFrame     uint64 // cycle count the end state is expressed in
	converged    int
	ranEvents    uint64
}

// backStart is the state one back epoch begins from.
type backStart struct {
	meta      *metacache.MetaCache
	mem       *dram.Memory
	counters  map[uint64]*ctr.PIBlock
	hashReady uint64
}

// backStartCold builds the speculative (and, for epoch 0, the true)
// cold start: empty caches, idle banks, and the epoch's exact counter
// seed.
func (pr *parRun) backStartCold(seed map[uint64]*ctr.PIBlock) (backStart, error) {
	var st backStart
	var err error
	if pr.secure && pr.cfg.Meta != nil {
		st.meta, err = metacache.New(*pr.cfg.Meta)
		if err != nil {
			return st, err
		}
	}
	st.mem, err = dram.New(pr.cfg.DRAM)
	if err != nil {
		return st, err
	}
	st.counters = engine.CloneCounters(seed)
	return st, nil
}

// backFP digests everything that can influence the epoch's remaining
// behavior, in a cycle-relative basis: bank open rows and remaining
// busy time, metadata-cache contents, and the HMAC engine's remaining
// backlog. Counters are deliberately excluded — speculative and
// replay runs are seeded with the same exact snapshot and consume the
// same event stream, so their counter state is identical by
// construction.
func (pr *parRun) backFP(st backStart, eng *engine.Engine, cycles uint64) uint64 {
	h := st.mem.Fingerprint(cycles)
	if st.meta != nil {
		h ^= rotl64(st.meta.Fingerprint(), 17)
	}
	if eng != nil {
		h ^= rotl64(fpMix64(satSub(eng.HashReadyAt(), cycles)), 33)
	}
	return h
}

// runBack consumes one epoch's exact event log through the metadata
// cache, engine, and DRAM model. Mode selection mirrors runFront:
// spec == nil records checkpoints, otherwise the run compares and
// stops at the first fingerprint match.
func (pr *parRun) runBack(ctx context.Context, st backStart, ep *frontOut, spec []backCkpt) (*backOut, error) {
	out := &backOut{converged: -1}
	var eng *engine.Engine
	var err error
	if pr.secure {
		eng, err = engine.New(engine.Config{
			Layout:            pr.layout,
			Meta:              st.meta,
			DRAM:              st.mem,
			Speculation:       pr.cfg.Speculation,
			SpeculationWindow: pr.cfg.SpeculationWindow,
			SeedCounters:      st.counters,
			SeedHashReady:     st.hashReady,
		})
		if err != nil {
			return nil, err
		}
	}
	collect := func(bs *backStats) {
		if eng != nil {
			bs.eng = eng.Stats()
		}
		bs.dram = st.mem.Stats()
		bs.dram.EnergyPJ = 0
		if st.meta != nil {
			for _, k := range memlayout.MetaKinds {
				bs.metaK[k] = st.meta.KindStats(k)
			}
			for l := 0; l < 16; l++ {
				bs.metaL[l] = st.meta.LevelStats(l)
			}
		}
	}
	var (
		cycles     uint64
		sinceCheck uint64
		wbIdx      int
		nextCk     = backCkptBase
		specIdx    int
	)
	for ei := range ep.events {
		e := &ep.events[ei]
		cycles += e.pre
		sinceCheck += uint64(e.instr)
		if sinceCheck >= cancelCheckInterval {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := faultStep.Hit(); err != nil {
				return nil, err
			}
		}
		if e.kind == evRead {
			if pr.secure {
				cycles += eng.Read(cycles, e.addr)
			} else {
				cycles += st.mem.Access(cycles, memlayout.BlockOf(e.addr), false)
			}
		}
		for k := 0; k < int(e.nWB); k++ {
			wb := ep.wbs[wbIdx]
			wbIdx++
			if pr.secure {
				eng.Writeback(cycles, wb)
			} else {
				st.mem.Access(cycles, wb, true)
			}
		}
		done := ei + 1
		if spec == nil {
			if done == nextCk && done < len(ep.events) {
				ck := backCkpt{event: done, fp: pr.backFP(st, eng, cycles), cycles: cycles}
				collect(&ck.st)
				out.ckpts = append(out.ckpts, ck)
				nextCk *= 2
			}
		} else if specIdx < len(spec) && done == spec[specIdx].event {
			if pr.backFP(st, eng, cycles) == spec[specIdx].fp {
				out.converged = specIdx
				out.cycles = cycles
				collect(&out.st)
				out.ranEvents = uint64(done)
				return out, nil
			}
			specIdx++
		}
	}
	out.cycles = cycles
	collect(&out.st)
	out.endMeta = st.meta
	out.endMem = st.mem
	if eng != nil {
		out.endHashReady = eng.HashReadyAt()
	}
	out.endFrame = cycles
	out.ranEvents = uint64(len(ep.events))
	return out, nil
}

// spliceBack combines a replay prefix with a speculative suffix. Both
// runs consumed the same exact event stream, so only timing and
// counters are spliced: the suffix's cycle advance and stat deltas
// transplant directly (the timing model is translation-invariant),
// and the carry-out state comes from the speculative run in its own
// frame.
func spliceBack(spec, rep *backOut) *backOut {
	ck := spec.ckpts[rep.converged]
	return &backOut{
		cycles:       rep.cycles + (spec.cycles - ck.cycles),
		st:           bsAdd(rep.st, bsSub(spec.st, ck.st)),
		endMeta:      spec.endMeta,
		endMem:       spec.endMem,
		endHashReady: spec.endHashReady,
		endFrame:     spec.endFrame,
	}
}

// ---------------------------------------------------------------------------
// Orchestration

// phaseRun fans spec work for every epoch across `shards` workers and
// reconciles results on the calling goroutine in epoch order, so
// replays of early epochs overlap speculation of later ones. finalize
// is called per epoch with the exact result index; any error cancels
// the phase, and the function does not return until every worker has
// exited (the cancellation teardown the context tests rely on).
func phaseRun(ctx context.Context, shards, n int,
	specOne func(ctx context.Context, i int) error,
	reconcileOne func(ctx context.Context, i int) error,
) error {
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()
	errs := make([]error, n)
	done := make([]chan struct{}, n)
	sem := make(chan struct{}, shards)
	for i := 0; i < n; i++ {
		done[i] = make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(done[i])
			select {
			case sem <- struct{}{}:
			case <-pctx.Done():
				errs[i] = pctx.Err()
				return
			}
			defer func() { <-sem }()
			errs[i] = specOne(pctx, i)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done[i]
		if errs[i] != nil {
			cancel()
			return errs[i]
		}
		if err := reconcileOne(pctx, i); err != nil {
			cancel()
			return err
		}
	}
	return nil
}

// runEpochParallel is the sharded twin of the sequential loop in
// RunContext. It returns ok == false (without error) when the
// configuration turns out not to be safely shardable — an uncloneable
// hierarchy policy or metadata cache, or a run too small to split —
// in which case the caller falls back to the sequential path.
func runEpochParallel(ctx context.Context, cfg Config, shards int) (res *Result, ok bool, err error) {
	endRun := obs.Span(ctx, "run", "benchmark", cfg.Benchmark, "shards", shards)
	endSetup := obs.Span(ctx, "setup", "benchmark", cfg.Benchmark)

	pr := &parRun{
		cfg:     &cfg,
		secure:  cfg.Secure,
		l2Lat:   cfg.L2HitLatency,
		l3Lat:   cfg.L3HitLatency,
		baseCPI: cfg.BaseCPI,
		unitCPI: cfg.BaseCPI == 1.0,
	}

	// True cold-start state; also the pre-flight cloneability probe.
	hier0, err := hierarchy.New(cfg.Hierarchy)
	if err != nil {
		return nil, true, err
	}
	if _, cok := hier0.Clone(); !cok {
		return nil, false, nil
	}
	metaSize := 0
	if cfg.Secure {
		footprint := (cfg.Workload.Footprint() + memlayout.PageSize - 1) &^ (memlayout.PageSize - 1)
		pr.layout, err = memlayout.New(cfg.Org, footprint)
		if err != nil {
			return nil, true, err
		}
		if cfg.Meta != nil {
			probe, err := metacache.New(*cfg.Meta)
			if err != nil {
				return nil, true, err
			}
			if !probe.Cloneable() {
				return nil, false, nil
			}
			metaSize = probe.Size()
		}
	}

	plans, err := planEpochs(ctx, &cfg, shards)
	if err != nil {
		return nil, true, fmt.Errorf("sim: %s: %w", cfg.Benchmark, err)
	}
	if plans == nil {
		return nil, false, nil
	}

	prog := cfg.Progress
	if prog != nil {
		prog.EnsureTotal(cfg.Warmup + cfg.Instructions)
	}
	activeShards.Add(int64(shards))
	defer activeShards.Add(int64(-shards))

	sh := &ShardStats{Shards: shards, Epochs: len(plans)}
	setupTime := endSetup()

	// Front phase (the "warmup" wall-clock bucket: everything up to
	// the point the sequential path would have warm caches is spent
	// here and in the scan above).
	endFront := obs.Span(ctx, "warmup", "benchmark", cfg.Benchmark)
	specF := make([]*frontOut, len(plans))
	exactF := make([]*frontOut, len(plans))
	err = phaseRun(ctx, shards, len(plans),
		func(ctx context.Context, i int) error {
			if err := faultEpoch.Hit(); err != nil {
				return err
			}
			end := obs.Span(ctx, "epoch", "phase", "front", "index", i, "benchmark", cfg.Benchmark)
			defer end()
			h := hier0
			if i > 0 {
				var herr error
				h, herr = hierarchy.New(cfg.Hierarchy)
				if herr != nil {
					return herr
				}
			}
			fo, ferr := pr.runFront(ctx, cloneGen(plans[i].gen), h, plans[i].accesses, nil)
			specF[i] = fo
			return ferr
		},
		func(ctx context.Context, i int) error {
			if i == 0 {
				exactF[0] = specF[0] // the cold start is the true start
			} else {
				base, cok := exactF[i-1].endHier.Clone()
				if !cok {
					return fmt.Errorf("sim: internal: hierarchy became uncloneable mid-run")
				}
				rep, rerr := pr.runFront(ctx, cloneGen(plans[i].gen), base, plans[i].accesses, specF[i].ckpts)
				if rerr != nil {
					return rerr
				}
				sh.FrontReplayedAccesses += rep.ranAccesses
				if rep.converged >= 0 {
					sh.FrontSplices++
					exactF[i] = spliceFront(specF[i], rep)
				} else {
					sh.FrontFullReplays++
					exactF[i] = rep
				}
				specF[i] = nil
				exactF[i-1].endHier = nil // the chain has moved past it
			}
			if prog != nil {
				prog.Add(exactF[i].instrs)
			}
			return nil
		})
	frontTime := endFront()
	if err != nil {
		return nil, true, fmt.Errorf("sim: %s: %w", cfg.Benchmark, err)
	}
	exactF[len(plans)-1].endHier = nil

	// Fold + back phase (the "measure" bucket: this is where cycles
	// and memory-system statistics are produced).
	endBack := obs.Span(ctx, "measure", "benchmark", cfg.Benchmark)
	seeds, err := foldCounters(ctx, pr, exactF)
	if err != nil {
		endBack()
		return nil, true, fmt.Errorf("sim: %s: %w", cfg.Benchmark, err)
	}
	specB := make([]*backOut, len(plans))
	exactB := make([]*backOut, len(plans))
	err = phaseRun(ctx, shards, len(plans),
		func(ctx context.Context, i int) error {
			end := obs.Span(ctx, "epoch", "phase", "back", "index", i, "benchmark", cfg.Benchmark)
			defer end()
			st, serr := pr.backStartCold(seeds[i])
			if serr != nil {
				return serr
			}
			bo, berr := pr.runBack(ctx, st, exactF[i], nil)
			specB[i] = bo
			return berr
		},
		func(ctx context.Context, i int) error {
			if i == 0 {
				exactB[0] = specB[0]
			} else {
				prev := exactB[i-1]
				var st backStart
				if prev.endMeta != nil {
					m, cok := prev.endMeta.Clone()
					if !cok {
						return fmt.Errorf("sim: internal: metadata cache became uncloneable mid-run")
					}
					st.meta = m
				}
				st.mem = prev.endMem.CloneRebased(prev.endFrame)
				st.counters = engine.CloneCounters(seeds[i])
				st.hashReady = satSub(prev.endHashReady, prev.endFrame)
				rep, rerr := pr.runBack(ctx, st, exactF[i], specB[i].ckpts)
				if rerr != nil {
					return rerr
				}
				sh.BackReplayedEvents += rep.ranEvents
				if rep.converged >= 0 {
					sh.BackSplices++
					exactB[i] = spliceBack(specB[i], rep)
				} else {
					sh.BackFullReplays++
					exactB[i] = rep
				}
				specB[i] = nil
				// Free the predecessor's carried state.
				prev.endMeta, prev.endMem = nil, nil
			}
			return nil
		})
	backTime := endBack()
	if err != nil {
		return nil, true, fmt.Errorf("sim: %s: %w", cfg.Benchmark, err)
	}

	// Deterministic merge: integer sums in fixed epoch order over the
	// measured epochs, floats derived once from the totals.
	t := runTotals{secure: pr.secure, hasMeta: pr.secure && cfg.Meta != nil, metaSize: metaSize}
	for i := range plans {
		if plans[i].warm {
			continue
		}
		t.measured += exactF[i].instrs
		t.cycles += exactB[i].cycles
		for l := 0; l < 3; l++ {
			t.hier[l] = csAdd(t.hier[l], exactF[i].stats[l])
		}
		t.dramStats = drAdd(t.dramStats, exactB[i].st.dram)
		t.engStats = engAdd(t.engStats, exactB[i].st.eng)
		for k := range t.metaKind {
			t.metaKind[k] = ksAdd(t.metaKind[k], exactB[i].st.metaK[k])
		}
		for l := range t.metaLevel {
			t.metaLevel[l] = ksAdd(t.metaLevel[l], exactB[i].st.metaL[l])
		}
	}
	t.dramStats.EnergyPJ = cfg.DRAM.EnergyOf(t.dramStats)
	if t.hasMeta {
		for _, k := range memlayout.MetaKinds {
			t.metaTotal = ksAdd(t.metaTotal, t.metaKind[k])
		}
	}

	res = buildResult(cfg, t)
	res.Sharding = sh
	res.Timing = PhaseTiming{
		Setup:   setupTime,
		Warmup:  frontTime,
		Measure: backTime,
		Total:   endRun(),
	}
	obs.From(ctx).Debug("run done",
		"benchmark", cfg.Benchmark,
		"instructions", t.measured,
		"ipc", res.IPC,
		"shards", shards,
		"epochs", sh.Epochs,
		"front_full_replays", sh.FrontFullReplays,
		"back_full_replays", sh.BackFullReplays,
		"wall", res.Timing.Total)
	return res, true, nil
}

// ---------------------------------------------------------------------------
// Fieldwise stat arithmetic. Addition in fixed epoch order over
// integers is associative, which is the whole reason the merged
// result is bit-identical to the sequential one.

func csAdd(a, b cache.Stats) cache.Stats {
	a.Accesses += b.Accesses
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.PartialMiss += b.PartialMiss
	a.Inserts += b.Inserts
	a.Evictions += b.Evictions
	a.DirtyEvicts += b.DirtyEvicts
	return a
}

func csSub(a, b cache.Stats) cache.Stats {
	a.Accesses -= b.Accesses
	a.Hits -= b.Hits
	a.Misses -= b.Misses
	a.PartialMiss -= b.PartialMiss
	a.Inserts -= b.Inserts
	a.Evictions -= b.Evictions
	a.DirtyEvicts -= b.DirtyEvicts
	return a
}

func ksAdd(a, b metacache.KindStats) metacache.KindStats {
	a.Accesses += b.Accesses
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Bypassed += b.Bypassed
	a.PartialMiss += b.PartialMiss
	return a
}

func ksSub(a, b metacache.KindStats) metacache.KindStats {
	a.Accesses -= b.Accesses
	a.Hits -= b.Hits
	a.Misses -= b.Misses
	a.Bypassed -= b.Bypassed
	a.PartialMiss -= b.PartialMiss
	return a
}

func engAdd(a, b engine.Stats) engine.Stats {
	a.Reads += b.Reads
	a.Writebacks += b.Writebacks
	a.Mem.DataReads += b.Mem.DataReads
	a.Mem.DataWrites += b.Mem.DataWrites
	a.Mem.CounterReads += b.Mem.CounterReads
	a.Mem.CounterWrites += b.Mem.CounterWrites
	a.Mem.HashReads += b.Mem.HashReads
	a.Mem.HashWrites += b.Mem.HashWrites
	a.Mem.TreeReads += b.Mem.TreeReads
	a.Mem.TreeWrites += b.Mem.TreeWrites
	a.PageReencryptions += b.PageReencryptions
	a.TreeWalkLevels += b.TreeWalkLevels
	a.SpecWindowStalls += b.SpecWindowStalls
	return a
}

func engSub(a, b engine.Stats) engine.Stats {
	a.Reads -= b.Reads
	a.Writebacks -= b.Writebacks
	a.Mem.DataReads -= b.Mem.DataReads
	a.Mem.DataWrites -= b.Mem.DataWrites
	a.Mem.CounterReads -= b.Mem.CounterReads
	a.Mem.CounterWrites -= b.Mem.CounterWrites
	a.Mem.HashReads -= b.Mem.HashReads
	a.Mem.HashWrites -= b.Mem.HashWrites
	a.Mem.TreeReads -= b.Mem.TreeReads
	a.Mem.TreeWrites -= b.Mem.TreeWrites
	a.PageReencryptions -= b.PageReencryptions
	a.TreeWalkLevels -= b.TreeWalkLevels
	a.SpecWindowStalls -= b.SpecWindowStalls
	return a
}

func drAdd(a, b dram.Stats) dram.Stats {
	a.Reads += b.Reads
	a.Writes += b.Writes
	a.RowHits += b.RowHits
	a.RowMisses += b.RowMisses
	a.BusyCycles += b.BusyCycles
	return a
}

func drSub(a, b dram.Stats) dram.Stats {
	a.Reads -= b.Reads
	a.Writes -= b.Writes
	a.RowHits -= b.RowHits
	a.RowMisses -= b.RowMisses
	a.BusyCycles -= b.BusyCycles
	return a
}

func bsAdd(a, b backStats) backStats {
	a.eng = engAdd(a.eng, b.eng)
	a.dram = drAdd(a.dram, b.dram)
	for k := range a.metaK {
		a.metaK[k] = ksAdd(a.metaK[k], b.metaK[k])
	}
	for l := range a.metaL {
		a.metaL[l] = ksAdd(a.metaL[l], b.metaL[l])
	}
	return a
}

func bsSub(a, b backStats) backStats {
	a.eng = engSub(a.eng, b.eng)
	a.dram = drSub(a.dram, b.dram)
	for k := range a.metaK {
		a.metaK[k] = ksSub(a.metaK[k], b.metaK[k])
	}
	for l := range a.metaL {
		a.metaL[l] = ksSub(a.metaL[l], b.metaL[l])
	}
	return a
}

func satSub(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return 0
}

func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// fpMix64 is the SplitMix64 output finalizer, the digest primitive
// shared with the cache and DRAM fingerprints.
func fpMix64(z uint64) uint64 {
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}
