// Package store is mapsd's persistent, tiered, content-addressed
// result store. It layers three tiers under one Get/Put surface, all
// keyed by the canonical config hash from internal/results:
//
//	tier 0  memory  the existing results.Cache LRU — fastest, dies
//	                with the process
//	tier 1  disk    one file per key under Options.Dir, sharded by
//	                hash prefix, each a versioned + checksummed JSON
//	                envelope written via temp-file + atomic rename;
//	                corrupt or truncated entries are quarantined, not
//	                fatal, and a size-capped GC evicts the least
//	                recently accessed files past Options.MaxBytes
//	tier 2  peers   other mapsd daemons consulted over HTTP
//	                (GET /v1/store/{key}) on a local miss, so a fleet
//	                shares results instead of recomputing them
//
// A hit in a lower tier back-fills the tiers above it, so repeated
// access migrates hot results toward memory. Every disk and peer
// failure mode degrades to a miss — the daemon recomputes instead of
// erroring — which the store.get / store.put / store.peer fault
// points let chaos tests prove (docs/ROBUSTNESS.md).
//
// The on-disk and on-wire unit is the Envelope (see DESIGN.md §7):
// the payload is the result's plain JSON, framed with a format
// version, the content key, a kind tag selecting the Go type to
// decode into, and a SHA-256 payload checksum, so a stored result can
// be validated byte-for-byte years later or after a network hop.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
)

// Version is the envelope format version this build reads and
// writes. Decode rejects (and the disk tier quarantines) any other
// version rather than guessing at a foreign layout.
const Version = 1

// Envelope kinds: which Go type the payload decodes into.
const (
	// KindRun frames a *sim.Result.
	KindRun = "run"
	// KindSuite frames a *sim.SuiteResult.
	KindSuite = "suite"
)

// ErrCorrupt is the sentinel wrapped by every Decode failure that
// means "these bytes are not a valid envelope" — truncation, version
// skew, checksum mismatch, or a key that doesn't match its frame. The
// disk tier quarantines on it instead of failing the lookup.
var ErrCorrupt = errors.New("store: corrupt envelope")

// corrupt wraps a detail message in the ErrCorrupt sentinel.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Envelope frames one stored result on disk and on the wire.
type Envelope struct {
	// Version is the format version (see the package constant).
	Version int `json:"version"`
	// Key is the content address the payload was stored under; Decode
	// verifies it is well-formed and callers verify it matches the key
	// they asked for, so a renamed file or a confused peer can never
	// serve the wrong result.
	Key string `json:"key"`
	// Kind selects the payload's Go type: KindRun or KindSuite.
	Kind string `json:"kind"`
	// Created records when the envelope was encoded (informational).
	Created time.Time `json:"created"`
	// Checksum is the hex SHA-256 of the raw Payload bytes.
	Checksum string `json:"checksum"`
	// Payload is the result's plain JSON encoding.
	Payload json.RawMessage `json:"payload"`
}

// ValidKey reports whether k is a well-formed content address: the
// lowercase-hex SHA-256 the results package produces. Everything that
// touches the filesystem or the HTTP path namespace checks this
// first, so a hostile key can never escape the store directory.
func ValidKey(k results.Key) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Encode frames value — a *sim.Result or *sim.SuiteResult — into an
// envelope's JSON bytes under key. Any other type is an error: the
// store only persists what it knows how to decode again.
func Encode(key results.Key, value any) ([]byte, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("store: invalid key %q", key)
	}
	var kind string
	switch value.(type) {
	case *sim.Result:
		kind = KindRun
	case *sim.SuiteResult:
		kind = KindSuite
	default:
		return nil, fmt.Errorf("store: cannot encode %T (want *sim.Result or *sim.SuiteResult)", value)
	}
	payload, err := json.Marshal(value)
	if err != nil {
		return nil, fmt.Errorf("store: encode payload: %w", err)
	}
	sum := sha256.Sum256(payload)
	return json.Marshal(Envelope{
		Version:  Version,
		Key:      string(key),
		Kind:     kind,
		Created:  time.Now().UTC(),
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  payload,
	})
}

// Decode parses and validates envelope bytes: well-formed JSON, the
// current format version, a valid key, a known kind, and a payload
// whose SHA-256 matches the recorded checksum. Every failure wraps
// ErrCorrupt so callers can quarantine rather than crash.
func Decode(data []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, corrupt("bad JSON: %v", err)
	}
	if env.Version != Version {
		return nil, corrupt("version %d (want %d)", env.Version, Version)
	}
	if !ValidKey(results.Key(env.Key)) {
		return nil, corrupt("invalid key %q", env.Key)
	}
	if env.Kind != KindRun && env.Kind != KindSuite {
		return nil, corrupt("unknown kind %q", env.Kind)
	}
	if len(env.Payload) == 0 {
		return nil, corrupt("empty payload")
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.Checksum {
		return nil, corrupt("checksum mismatch (payload %s, recorded %s)", got, env.Checksum)
	}
	return &env, nil
}

// Value decodes the payload into its Go type: *sim.Result for
// KindRun, *sim.SuiteResult for KindSuite.
func (e *Envelope) Value() (any, error) {
	switch e.Kind {
	case KindRun:
		v := new(sim.Result)
		if err := json.Unmarshal(e.Payload, v); err != nil {
			return nil, corrupt("run payload: %v", err)
		}
		return v, nil
	case KindSuite:
		v := new(sim.SuiteResult)
		if err := json.Unmarshal(e.Payload, v); err != nil {
			return nil, corrupt("suite payload: %v", err)
		}
		return v, nil
	default:
		return nil, corrupt("unknown kind %q", e.Kind)
	}
}
