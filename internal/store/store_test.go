package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
)

// key derives a syntactically valid content address from a label.
func key(label string) results.Key {
	sum := sha256.Sum256([]byte(label))
	return results.Key(hex.EncodeToString(sum[:]))
}

// runResult builds a small but non-trivial result to store.
func runResult(bench string, n uint64) *sim.Result {
	return &sim.Result{
		Benchmark:    bench,
		Instructions: n,
		Cycles:       3 * n,
		IPC:          1.0 / 3.0,
		LLCMPKI:      7.25,
		EnergyPJ:     123456.789,
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func flush(t *testing.T, s *Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestValidKey(t *testing.T) {
	good := key("x")
	if !ValidKey(good) {
		t.Fatalf("ValidKey(%q) = false", good)
	}
	for _, bad := range []string{
		"", "abc", string(good)[:63], string(good) + "0",
		"../../../../etc/passwd/////////////////////////////////////////",
		string(good[:63]) + "G", string(good[:63]) + "/",
	} {
		if ValidKey(results.Key(bad)) {
			t.Errorf("ValidKey(%q) = true", bad)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	k := key("round-trip")
	want := runResult("fft", 1000)
	data, err := Encode(k, want)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if env.Key != string(k) || env.Kind != KindRun || env.Version != Version {
		t.Fatalf("bad frame: %+v", env)
	}
	v, err := env.Value()
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*sim.Result); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mutated the result:\ngot  %+v\nwant %+v", got, want)
	}

	// Suites frame too.
	suite := &sim.SuiteResult{
		PerBench:   map[string]*sim.Result{"fft": want},
		Order:      []string{"fft"},
		GeomeanIPC: 1.0 / 3.0,
	}
	data, err = Encode(k, suite)
	if err != nil {
		t.Fatal(err)
	}
	env, err = Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != KindSuite {
		t.Fatalf("kind %q, want suite", env.Kind)
	}
	v, err = env.Value()
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(*sim.SuiteResult); !reflect.DeepEqual(got, suite) {
		t.Fatalf("suite round trip mutated the result")
	}

	// Unknown types refuse to encode.
	if _, err := Encode(k, "not a result"); err == nil {
		t.Fatal("Encode accepted a string")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	k := key("corrupt")
	data, err := Encode(k, runResult("fft", 1))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":  data[:len(data)/2],
		"empty":      nil,
		"not json":   []byte("hello"),
		"junk tail":  append(append([]byte{}, data...), '}'),
		"zero value": []byte("{}"),
	}
	// A flipped payload byte must trip the checksum.
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env.Payload[10] ^= 0xff
	flipped, _ := json.Marshal(env)
	cases["bit flip"] = flipped
	// Version skew is corruption, not a guess.
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env.Version = Version + 1
	skewed, _ := json.Marshal(env)
	cases["version skew"] = skewed

	for name, bad := range cases {
		if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestGetPutAcrossReopen is the persistence contract: what one
// process stores, the next one (fresh memory tier) reads back
// identically from disk.
func TestGetPutAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	k := key("persist")
	want := runResult("libquantum", 50000)

	s1 := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	s1.Put(k, want)
	flush(t, s1)
	s1.Close()

	s2 := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	if st := s2.Stats(); st.DiskEntries != 1 || st.DiskBytes <= 0 {
		t.Fatalf("reopen indexed %d entries / %d bytes, want 1 / >0", st.DiskEntries, st.DiskBytes)
	}
	v, ok := s2.Get(context.Background(), k)
	if !ok {
		t.Fatal("Get missed after reopen")
	}
	if got := v.(*sim.Result); !reflect.DeepEqual(got, want) {
		t.Fatalf("disk round trip mutated the result:\ngot  %+v\nwant %+v", got, want)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("stats after disk hit: %+v", st)
	}
	// The hit back-filled memory: the next Get is a memory hit.
	if _, ok := s2.Get(context.Background(), k); !ok {
		t.Fatal("second Get missed")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("second Get did not hit memory: %+v", st)
	}
}

// TestCorruptEntryQuarantined: a damaged file costs one recompute and
// a quarantine move, never an error or a wrong result.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	k := key("to-corrupt")
	s1 := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	s1.Put(k, runResult("fft", 10))
	flush(t, s1)
	s1.Close()

	// Truncate the visible entry — the torn-write shape a crashed
	// kernel or failing disk could leave.
	path := filepath.Join(dir, objectsDir, string(k)[:2], string(k)+entryExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	if v, ok := s2.Get(context.Background(), k); ok {
		t.Fatalf("Get returned %v from a corrupt entry", v)
	}
	st := s2.Stats()
	if st.Quarantined != 1 || st.Misses != 1 || st.DiskEntries != 0 {
		t.Fatalf("stats after corrupt read: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, string(k)+entryExt)); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	// A fresh Put heals the slot.
	want := runResult("fft", 10)
	s2.Put(k, want)
	flush(t, s2)
	s2.Close()
	s3 := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	if v, ok := s3.Get(context.Background(), k); !ok || !reflect.DeepEqual(v, want) {
		t.Fatalf("healed entry not served: ok=%v", ok)
	}
}

// TestCrashMidWriteInvisible is the atomic-rename contract: a process
// killed between temp-file write and rename leaves only a *.tmp —
// never a visible, half-written entry — and Open sweeps it.
func TestCrashMidWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	kGood, kTorn := key("good"), key("torn")
	s1 := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	s1.Put(kGood, runResult("fft", 20))
	flush(t, s1)
	s1.Close()

	// Fake the crash: a partial envelope parked at the temp name the
	// writer would have used, rename never reached.
	shard := filepath.Join(dir, objectsDir, string(kTorn)[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(shard, string(kTorn)+entryExt+tmpExt)
	if err := os.WriteFile(tmp, []byte(`{"version":1,"key":"tr`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	if st := s2.Stats(); st.DiskEntries != 1 {
		t.Fatalf("indexed %d entries, want 1 (tmp must be invisible)", st.DiskEntries)
	}
	if _, ok := s2.Get(context.Background(), kTorn); ok {
		t.Fatal("Get served the torn write")
	}
	if _, ok := s2.Get(context.Background(), kGood); !ok {
		t.Fatal("good entry lost")
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp file not swept at open: %v", err)
	}
	if st := s2.Stats(); st.Quarantined != 0 {
		t.Fatalf("tmp sweep counted as quarantine: %+v", st)
	}
}

// TestGCEvictsLeastRecentlyAccessed pins the GC's victim order: the
// entry nobody touched goes first, and the tier lands under the cap.
func TestGCEvictsLeastRecentlyAccessed(t *testing.T) {
	dir := t.TempDir()
	// Memory tier of one entry, so Gets actually reach the disk tier
	// and advance the LRA clock.
	s := mustOpen(t, Options{Dir: dir, Memory: results.New(1)})
	keys := make([]results.Key, 4)
	for i := range keys {
		keys[i] = key(fmt.Sprintf("gc-%d", i))
		s.Put(keys[i], runResult("fft", uint64(1000+i)))
	}
	flush(t, s)
	// Touch everything except keys[1].
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.Get(context.Background(), keys[i]); !ok {
			t.Fatalf("warm-up Get(%d) missed", i)
		}
	}
	before := s.Stats()
	if before.DiskEntries != 4 {
		t.Fatalf("disk entries %d, want 4", before.DiskEntries)
	}
	// Shrink the budget below current occupancy and let the GC run.
	s.maxBytes = before.DiskBytes - 1
	s.gc()
	after := s.Stats()
	if after.DiskBytes > s.maxBytes {
		t.Fatalf("GC left %d bytes above the %d cap", after.DiskBytes, s.maxBytes)
	}
	if after.GCEvictions == 0 {
		t.Fatal("GC evicted nothing")
	}
	if _, ok := s.Get(context.Background(), keys[1]); ok {
		t.Fatal("least-recently-accessed entry survived GC")
	}
	// The most recently touched entry must have survived.
	if _, ok := s.Get(context.Background(), keys[3]); !ok {
		t.Fatal("most-recently-accessed entry was evicted")
	}
}

// TestOpenGCEnforcesCap: a store reopened over a too-large directory
// trims itself at open, before serving anything.
func TestOpenGCEnforcesCap(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	for i := 0; i < 6; i++ {
		s1.Put(key(fmt.Sprintf("cap-%d", i)), runResult("fft", uint64(i)))
	}
	flush(t, s1)
	total := s1.Stats().DiskBytes
	s1.Close()

	s2 := mustOpen(t, Options{Dir: dir, Memory: results.New(8), MaxBytes: total / 2})
	st := s2.Stats()
	if st.DiskBytes > total/2 {
		t.Fatalf("open left %d bytes above the %d cap", st.DiskBytes, total/2)
	}
	if st.GCEvictions == 0 || st.DiskEntries >= 6 {
		t.Fatalf("open-time GC did not trim: %+v", st)
	}
}

// TestDiskFaultsDegradeToMemory: armed store.put / store.get faults
// (the disk-full and dying-disk drills) cost persistence, never
// correctness or availability.
func TestDiskFaultsDegradeToMemory(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	k := key("faulty")
	want := runResult("fft", 77)

	if err := faults.P("store.put").Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}
	s.Put(k, want)
	flush(t, s)
	st := s.Stats()
	if st.DroppedDiskPuts != 1 || st.DiskPuts != 0 || st.DiskEntries != 0 {
		t.Fatalf("stats under store.put fault: %+v", st)
	}
	// The memory tier still serves.
	if v, ok := s.Get(context.Background(), k); !ok || !reflect.DeepEqual(v, want) {
		t.Fatalf("memory tier lost the result under a disk fault (ok=%v)", ok)
	}
	faults.Reset()

	// Now a real disk entry, with reads failing.
	s.Put(k, want)
	flush(t, s)
	s2 := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	if err := faults.P("store.get").Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(context.Background(), k); ok {
		t.Fatal("Get served through an armed store.get fault")
	}
	st = s2.Stats()
	if st.DiskErrors != 1 || st.Misses != 1 || st.Quarantined != 0 {
		t.Fatalf("stats under store.get fault: %+v", st)
	}
	faults.Reset()
	// Disarmed, the entry is intact — a flaky disk never destroys data.
	if v, ok := s2.Get(context.Background(), k); !ok || !reflect.DeepEqual(v, want) {
		t.Fatalf("entry damaged by read-fault drill (ok=%v)", ok)
	}
}

func TestPeerFill(t *testing.T) {
	// Peer A: a store with the result, serving envelopes.
	remote := mustOpen(t, Options{Memory: results.New(8)})
	k := key("shared")
	want := runResult("fft", 4242)
	remote.Put(k, want)

	fetches := 0
	peer := Peer{Name: "A", Fetch: func(ctx context.Context, key results.Key) ([]byte, error) {
		fetches++
		if raw, ok := remote.Envelope(key); ok {
			return raw, nil
		}
		return nil, errors.New("not found")
	}}

	// Peer B: empty, disk-backed, with A configured.
	dir := t.TempDir()
	local := mustOpen(t, Options{Dir: dir, Memory: results.New(8), Peers: []Peer{peer}})
	v, ok := local.Get(context.Background(), k)
	if !ok {
		t.Fatal("peer fill missed")
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("peer fill mutated the result:\ngot  %+v\nwant %+v", v, want)
	}
	if fetches != 1 {
		t.Fatalf("fetched %d times, want 1", fetches)
	}
	st := local.Stats()
	if st.PeerFills != 1 || st.Misses != 0 {
		t.Fatalf("stats after peer fill: %+v", st)
	}
	// The fill back-filled memory AND disk: no more peer traffic.
	flush(t, local)
	if st := local.Stats(); st.DiskEntries != 1 {
		t.Fatalf("peer fill not persisted: %+v", st)
	}
	if _, ok := local.Get(context.Background(), k); !ok {
		t.Fatal("refetch missed")
	}
	if fetches != 1 {
		t.Fatalf("refetch went back to the peer (%d fetches)", fetches)
	}
	// An unknown key tries the peer, then misses gracefully.
	if _, ok := local.Get(context.Background(), key("absent")); ok {
		t.Fatal("Get invented a result")
	}
	if st := local.Stats(); st.Misses != 1 || st.PeerErrors != 1 {
		t.Fatalf("stats after peer miss: %+v", st)
	}
}

// TestPeerPathologies: garbage, wrong-key answers, hangs, and armed
// store.peer faults all degrade to recompute, never to a wrong
// result or a wedged lookup.
func TestPeerPathologies(t *testing.T) {
	defer faults.Reset()
	k := key("pathological")
	good := runResult("fft", 9)
	goodRaw, err := Encode(key("some-other-key"), good)
	if err != nil {
		t.Fatal(err)
	}
	garbage := Peer{Name: "garbage", Fetch: func(context.Context, results.Key) ([]byte, error) {
		return []byte("{not json"), nil
	}}
	wrongKey := Peer{Name: "wrong-key", Fetch: func(context.Context, results.Key) ([]byte, error) {
		return goodRaw, nil
	}}
	hung := Peer{Name: "hung", Fetch: func(ctx context.Context, _ results.Key) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	s := mustOpen(t, Options{
		Memory:      results.New(8),
		Peers:       []Peer{garbage, wrongKey, hung},
		PeerTimeout: 20 * time.Millisecond,
	})
	start := time.Now()
	if _, ok := s.Get(context.Background(), k); ok {
		t.Fatal("Get served a pathological peer answer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung peer wedged the lookup for %v", elapsed)
	}
	if st := s.Stats(); st.PeerErrors != 3 || st.Misses != 1 {
		t.Fatalf("stats after pathological peers: %+v", st)
	}

	// An armed store.peer fault (fleet partition drill) skips the
	// fetch entirely.
	faults.Reset()
	if err := faults.P("store.peer").Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}
	called := false
	s2 := mustOpen(t, Options{Memory: results.New(8), Peers: []Peer{{
		Name:  "unreachable",
		Fetch: func(context.Context, results.Key) ([]byte, error) { called = true; return nil, nil },
	}}})
	if _, ok := s2.Get(context.Background(), k); ok || called {
		t.Fatalf("store.peer fault leaked through (ok=%v called=%v)", ok, called)
	}
	if st := s2.Stats(); st.PeerErrors != 1 {
		t.Fatalf("stats under store.peer fault: %+v", st)
	}
}

func TestPutAfterCloseDrops(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Memory: results.New(8)})
	s.Close()
	s.Close() // idempotent
	k := key("late")
	s.Put(k, runResult("fft", 1)) // must not panic
	if st := s.Stats(); st.DroppedDiskPuts != 1 {
		t.Fatalf("late Put not counted as dropped: %+v", st)
	}
	// Memory still took it.
	if _, ok := s.Get(context.Background(), k); !ok {
		t.Fatal("late Put lost from memory tier")
	}
}

// TestEnvelopeServesLocalOnly: Envelope answers from memory and disk
// but never recurses into peers, and rejects hostile keys.
func TestEnvelopeServesLocalOnly(t *testing.T) {
	recursed := false
	s := mustOpen(t, Options{Memory: results.New(8), Peers: []Peer{{
		Name:  "loop",
		Fetch: func(context.Context, results.Key) ([]byte, error) { recursed = true; return nil, nil },
	}}})
	k := key("local")
	want := runResult("fft", 5)
	s.Put(k, want)
	raw, ok := s.Envelope(k)
	if !ok {
		t.Fatal("Envelope missed a memory-tier entry")
	}
	env, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := env.Value(); err != nil || !reflect.DeepEqual(v, want) {
		t.Fatalf("Envelope frame does not decode to the stored value: %v", err)
	}
	if _, ok := s.Envelope(key("missing")); ok || recursed {
		t.Fatalf("Envelope recursed into peers (ok=%v recursed=%v)", ok, recursed)
	}
	if _, ok := s.Envelope(results.Key("../sneaky")); ok {
		t.Fatal("Envelope accepted a malformed key")
	}
	// Serving a peer must not perturb the memory tier's counters.
	if cs := s.Memory().Stats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("Envelope counted against cache stats: %+v", cs)
	}
}
