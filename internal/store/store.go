package store

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/obs"
	"github.com/maps-sim/mapsim/internal/results"
)

// Fault-injection points (docs/ROBUSTNESS.md). All three degrade the
// store to the next tier — or to recompute — rather than surfacing
// errors to callers:
//
//	store.get   disk reads fail (dying disk): lookups skip the disk tier
//	store.put   disk writes fail (disk full): results stay memory-only
//	store.peer  peer fetches fail (fleet partition): misses recompute
var (
	faultGet  = faults.P("store.get")
	faultPut  = faults.P("store.put")
	faultPeer = faults.P("store.peer")
)

// defaultPeerTimeout bounds one peer fetch during Get. Recomputing a
// point costs real simulation time, so it is worth waiting a moment —
// but a hung peer must never wedge a lookup.
const defaultPeerTimeout = 5 * time.Second

// writeQueueDepth bounds the async disk-write backlog. Beyond it,
// writes are dropped (and counted) rather than stalling simulation
// workers on a slow disk: the store is a cache, not a ledger.
const writeQueueDepth = 256

// Peer is one remote mapsd consulted on local misses. Fetch returns
// the raw envelope bytes for a key — in production it is backed by
// the retrying mapsim.Client hitting GET /v1/store/{key} (wired in
// cmd/mapsd), so peer fill inherits the client's backoff and
// Retry-After handling.
type Peer struct {
	// Name labels the peer in logs (its base URL in production).
	Name string
	// Fetch retrieves the envelope for key, or an error on any miss
	// or failure. It must honor ctx.
	Fetch func(ctx context.Context, key results.Key) ([]byte, error)
}

// Options configures Open.
type Options struct {
	// Memory is tier 0, the in-process LRU. Nil gets a modest default
	// (results.New(256)).
	Memory *results.Cache
	// Dir roots the disk tier; empty disables it (memory + peers only).
	Dir string
	// MaxBytes caps the disk tier; past it the GC evicts
	// least-recently-accessed entries. Zero or negative = unbounded.
	MaxBytes int64
	// Peers are consulted in order on local (memory + disk) misses.
	Peers []Peer
	// PeerTimeout bounds each peer fetch (default 5s).
	PeerTimeout time.Duration
	// Logger receives quarantine and dropped-write warnings; nil means
	// silent.
	Logger *slog.Logger
}

// pendingWrite is one queued disk write: raw envelope bytes when the
// value arrived already framed (peer fill), otherwise the value to
// encode on the writer goroutine.
type pendingWrite struct {
	key   results.Key
	value any
	raw   []byte
}

// Store is the tiered result store. All methods are safe for
// concurrent use. See the package comment for the tier discipline.
type Store struct {
	mem         *results.Cache
	dir         string
	maxBytes    int64
	peers       []Peer
	peerTimeout time.Duration
	log         *slog.Logger

	// Disk index (disk.go): key → size + LRA tick.
	dmu       sync.Mutex
	entries   map[results.Key]*diskEntry
	diskBytes int64
	clock     uint64

	// Async writer: Put enqueues, one goroutine drains. closed gates
	// the channel so Put after Close degrades to a counted drop
	// instead of a panic.
	wmu        sync.Mutex
	writeCh    chan pendingWrite
	writerDone chan struct{}
	closed     bool
	pending    atomic.Int64

	memHits         atomic.Uint64
	diskHits        atomic.Uint64
	peerFills       atomic.Uint64
	misses          atomic.Uint64
	puts            atomic.Uint64
	diskPuts        atomic.Uint64
	droppedDiskPuts atomic.Uint64
	gcEvictions     atomic.Uint64
	quarantined     atomic.Uint64
	diskErrors      atomic.Uint64
	peerErrors      atomic.Uint64
}

// Open builds a store over opts, preparing the disk directory tree
// (when Dir is set) and starting the background writer. Close (or
// server.Shutdown, which calls it) flushes and stops the writer.
func Open(opts Options) (*Store, error) {
	if opts.Memory == nil {
		opts.Memory = results.New(256)
	}
	if opts.PeerTimeout <= 0 {
		opts.PeerTimeout = defaultPeerTimeout
	}
	log := opts.Logger
	if log == nil {
		log = obs.Nop()
	}
	s := &Store{
		mem:         opts.Memory,
		dir:         opts.Dir,
		maxBytes:    opts.MaxBytes,
		peers:       opts.Peers,
		peerTimeout: opts.PeerTimeout,
		log:         log,
		entries:     make(map[results.Key]*diskEntry),
	}
	if s.dir != "" {
		if err := s.openDisk(); err != nil {
			return nil, err
		}
		s.writeCh = make(chan pendingWrite, writeQueueDepth)
		s.writerDone = make(chan struct{})
		go s.writer()
	}
	return s, nil
}

// MemoryOnly wraps an existing results.Cache as a store with no disk
// tier and no peers — the zero-configuration default the server falls
// back to. It cannot fail and starts no goroutines.
func MemoryOnly(c *results.Cache) *Store {
	s, _ := Open(Options{Memory: c})
	return s
}

// Memory returns tier 0, the in-process LRU (its Stats feed the
// mapsd_cache_* metric family).
func (s *Store) Memory() *results.Cache { return s.mem }

// Get looks key up through the tiers: memory, then disk, then each
// peer in order. Lower-tier hits back-fill the tiers above (a peer
// hit is also queued for the disk tier). ctx bounds only the peer
// fetches — local tiers never block on it.
func (s *Store) Get(ctx context.Context, key results.Key) (any, bool) {
	if v, ok := s.mem.Get(key); ok {
		s.memHits.Add(1)
		return v, true
	}
	if s.dir != "" {
		if _, env, ok := s.diskGet(key); ok {
			v, err := env.Value()
			if err == nil {
				s.diskHits.Add(1)
				s.mem.Put(key, v)
				return v, true
			}
			s.quarantine(key, s.entryPath(key), err)
		}
	}
	for i := range s.peers {
		p := &s.peers[i]
		v, raw, ok := s.fetchPeer(ctx, p, key)
		if !ok {
			continue
		}
		s.peerFills.Add(1)
		s.mem.Put(key, v)
		s.enqueue(pendingWrite{key: key, raw: raw})
		return v, true
	}
	s.misses.Add(1)
	return nil, false
}

// fetchPeer asks one peer for key, validating the returned envelope
// exactly like a disk read — a confused or hostile peer can cost a
// recompute, never serve a wrong or torn result.
func (s *Store) fetchPeer(ctx context.Context, p *Peer, key results.Key) (any, []byte, bool) {
	if err := faultPeer.Hit(); err != nil {
		s.peerErrors.Add(1)
		return nil, nil, false
	}
	fctx, cancel := context.WithTimeout(ctx, s.peerTimeout)
	defer cancel()
	raw, err := p.Fetch(fctx, key)
	if err != nil {
		s.peerErrors.Add(1)
		return nil, nil, false
	}
	env, err := Decode(raw)
	if err == nil && env.Key != string(key) {
		err = corrupt("peer %s answered key %s for %s", p.Name, env.Key, key)
	}
	var v any
	if err == nil {
		v, err = env.Value()
	}
	if err != nil {
		s.peerErrors.Add(1)
		s.log.Warn("store: bad peer envelope", "peer", p.Name, "key", string(key), "error", err)
		return nil, nil, false
	}
	return v, raw, true
}

// Put stores value under key in the memory tier and, when a disk tier
// is configured, queues an asynchronous envelope write. It never
// blocks on the disk: a full write queue drops the disk copy (counted
// in Stats.DroppedDiskPuts) and keeps the memory one.
func (s *Store) Put(key results.Key, value any) {
	s.puts.Add(1)
	s.mem.Put(key, value)
	if s.dir != "" {
		s.enqueue(pendingWrite{key: key, value: value})
	}
}

// enqueue hands a write to the background writer, dropping (and
// counting) it when the queue is full or the store is closed.
func (s *Store) enqueue(pw pendingWrite) {
	if s.writeCh == nil {
		return
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed {
		s.droppedDiskPuts.Add(1)
		return
	}
	select {
	case s.writeCh <- pw:
		s.pending.Add(1)
	default:
		s.droppedDiskPuts.Add(1)
	}
}

// writer drains the queue: encode (unless the bytes arrived framed,
// as peer fills do) and write-with-rename. Encoding off the Put path
// keeps simulation workers from paying JSON costs for large suites.
func (s *Store) writer() {
	defer close(s.writerDone)
	for pw := range s.writeCh {
		data := pw.raw
		if data == nil {
			var err error
			if data, err = Encode(pw.key, pw.value); err != nil {
				s.droppedDiskPuts.Add(1)
				s.log.Warn("store: unencodable value dropped", "key", string(pw.key), "error", err)
				s.pending.Add(-1)
				continue
			}
		}
		s.diskPut(pw.key, data)
		s.pending.Add(-1)
	}
}

// Envelope returns the raw envelope bytes for key from the local
// tiers only — peers are never consulted, so two daemons pointing at
// each other cannot set off a fill storm. This is what the
// GET /v1/store/{key} handler serves. Memory-tier values are framed
// on the fly; the memory LRU order and hit counters are left
// untouched (serving a peer is not local demand).
func (s *Store) Envelope(key results.Key) ([]byte, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	if v, ok := s.mem.Peek(key); ok {
		if data, err := Encode(key, v); err == nil {
			return data, true
		}
	}
	if s.dir != "" {
		if raw, _, ok := s.diskGet(key); ok {
			return raw, true
		}
	}
	return nil, false
}

// Flush blocks until every queued disk write has been attempted, or
// ctx expires. The graceful-drain path runs it so a SIGTERM'd daemon
// persists everything its last jobs computed.
func (s *Store) Flush(ctx context.Context) error {
	if s.writeCh == nil {
		return nil
	}
	for s.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Close stops the writer after it drains every queued write, then
// returns. Idempotent; Puts arriving after Close keep the memory tier
// but drop (and count) their disk copy.
func (s *Store) Close() {
	if s.writeCh == nil {
		return
	}
	s.wmu.Lock()
	if !s.closed {
		s.closed = true
		close(s.writeCh)
	}
	s.wmu.Unlock()
	<-s.writerDone
}

// Stats is a snapshot of the store's counters and gauges, feeding the
// mapsd_store_* metric family (docs/OBSERVABILITY.md).
type Stats struct {
	// MemHits, DiskHits, and PeerFills count Gets answered by each
	// tier; Misses count Gets no tier could answer.
	MemHits   uint64 `json:"mem_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	PeerFills uint64 `json:"peer_fills"`
	Misses    uint64 `json:"misses"`
	// Puts counts stores; DiskPuts the envelopes that reached disk;
	// DroppedDiskPuts the disk copies lost to faults, write errors, a
	// full queue, or Close.
	Puts            uint64 `json:"puts"`
	DiskPuts        uint64 `json:"disk_puts"`
	DroppedDiskPuts uint64 `json:"dropped_disk_puts"`
	// GCEvictions counts entries the size cap evicted, Quarantined the
	// corrupt entries moved aside, DiskErrors failed reads that were
	// not corruption, PeerErrors failed or invalid peer fetches.
	GCEvictions uint64 `json:"gc_evictions"`
	Quarantined uint64 `json:"quarantined"`
	DiskErrors  uint64 `json:"disk_errors"`
	PeerErrors  uint64 `json:"peer_errors"`
	// DiskEntries and DiskBytes size the disk tier; PendingWrites is
	// the writer backlog; Peers counts configured peers.
	DiskEntries   int   `json:"disk_entries"`
	DiskBytes     int64 `json:"disk_bytes"`
	PendingWrites int   `json:"pending_writes"`
	Peers         int   `json:"peers"`
	// Dir is the disk tier root, empty when memory-only.
	Dir string `json:"dir,omitempty"`
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.dmu.Lock()
	entries, bytes := len(s.entries), s.diskBytes
	s.dmu.Unlock()
	return Stats{
		MemHits:         s.memHits.Load(),
		DiskHits:        s.diskHits.Load(),
		PeerFills:       s.peerFills.Load(),
		Misses:          s.misses.Load(),
		Puts:            s.puts.Load(),
		DiskPuts:        s.diskPuts.Load(),
		DroppedDiskPuts: s.droppedDiskPuts.Load(),
		GCEvictions:     s.gcEvictions.Load(),
		Quarantined:     s.quarantined.Load(),
		DiskErrors:      s.diskErrors.Load(),
		PeerErrors:      s.peerErrors.Load(),
		DiskEntries:     entries,
		DiskBytes:       bytes,
		PendingWrites:   int(s.pending.Load()),
		Peers:           len(s.peers),
		Dir:             s.dir,
	}
}
