package store

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
)

// FuzzDecodeEnvelope throws arbitrary bytes at the envelope decoder —
// the bytes a failing disk or a hostile peer could hand us. The
// invariant is total robustness: Decode never panics, and anything it
// accepts satisfies the full frame contract (current version, valid
// key, known kind, checksum-verified payload that decodes).
func FuzzDecodeEnvelope(f *testing.F) {
	sum := sha256.Sum256([]byte("fuzz-seed"))
	key := results.Key(hex.EncodeToString(sum[:]))
	if valid, err := Encode(key, &sim.Result{Benchmark: "fft", Instructions: 1000, Cycles: 3000}); err != nil {
		f.Fatal(err)
	} else {
		f.Add(valid)
		f.Add(valid[:len(valid)/2])
	}
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"kind":"run","payload":{}}`))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		if env.Version != Version {
			t.Fatalf("accepted version %d", env.Version)
		}
		if !ValidKey(results.Key(env.Key)) {
			t.Fatalf("accepted invalid key %q", env.Key)
		}
		if env.Kind != KindRun && env.Kind != KindSuite {
			t.Fatalf("accepted unknown kind %q", env.Kind)
		}
		payloadSum := sha256.Sum256(env.Payload)
		if hex.EncodeToString(payloadSum[:]) != env.Checksum {
			t.Fatal("accepted checksum mismatch")
		}
		// An accepted envelope must also decode; Value may still reject
		// (payload shape vs kind), but never panic.
		if _, err := env.Value(); err != nil {
			_ = err // acceptable: frame-valid, payload-shaped wrong
		}
	})
}
