package store

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/maps-sim/mapsim/internal/results"
)

// Disk layout under Options.Dir:
//
//	objects/<key[:2]>/<key>.json   one envelope per stored result,
//	                               sharded by hash prefix so no single
//	                               directory grows unbounded
//	objects/.../<key>.json.tmp     in-flight write; never read, swept
//	                               at Open (a crash mid-write leaves
//	                               only these, never a corrupt entry)
//	quarantine/<key>.json          entries that failed validation,
//	                               moved aside for post-mortems
const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	entryExt      = ".json"
	tmpExt        = ".tmp"
)

// diskEntry is the in-memory index record for one on-disk envelope.
type diskEntry struct {
	size int64
	// access is a logical LRA clock tick: higher = more recently
	// accessed. Seeded from file mtime order at Open, bumped on every
	// hit and write, consulted by the GC.
	access uint64
}

// entryPath maps a key to its sharded object path.
func (s *Store) entryPath(key results.Key) string {
	k := string(key)
	return filepath.Join(s.dir, objectsDir, k[:2], k+entryExt)
}

// openDisk prepares the directory tree and indexes what's already
// there: valid-looking entry files are recorded (sized, LRA-ordered
// by mtime); leftover temp files from a crashed writer are removed.
// Contents are not validated here — that happens lazily on Get, so a
// huge store opens in O(entries) stats, not O(bytes) reads.
func (s *Store) openDisk() error {
	for _, d := range []string{
		s.dir,
		filepath.Join(s.dir, objectsDir),
		filepath.Join(s.dir, quarantineDir),
	} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	type found struct {
		key     results.Key
		size    int64
		modNano int64
	}
	var scan []found
	root := filepath.Join(s.dir, objectsDir)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasSuffix(name, tmpExt) {
			// A crash between create and rename strands these; they
			// were never visible as entries and never will be.
			os.Remove(path)
			return nil
		}
		key := results.Key(strings.TrimSuffix(name, entryExt))
		if !strings.HasSuffix(name, entryExt) || !ValidKey(key) {
			return nil // not ours; leave it alone
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		scan = append(scan, found{key, info.Size(), info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return err
	}
	// Oldest files get the lowest access ticks, so the GC's
	// least-recently-accessed order survives a restart (approximated
	// by mtime until real accesses re-rank them).
	sort.Slice(scan, func(i, j int) bool { return scan[i].modNano < scan[j].modNano })
	s.dmu.Lock()
	for _, f := range scan {
		s.clock++
		s.entries[f.key] = &diskEntry{size: f.size, access: s.clock}
		s.diskBytes += f.size
	}
	s.dmu.Unlock()
	s.gc()
	return nil
}

// diskGet reads and validates the on-disk envelope for key. It
// returns (nil, false) on any miss or failure — the caller falls
// through to the next tier — after quarantining entries that exist
// but fail validation.
func (s *Store) diskGet(key results.Key) ([]byte, *Envelope, bool) {
	s.dmu.Lock()
	_, indexed := s.entries[key]
	s.dmu.Unlock()
	if !indexed {
		return nil, nil, false
	}
	if err := faultGet.Hit(); err != nil {
		// Injected disk-read failure: degrade to a miss, keep the
		// entry — the disk may come back.
		s.diskErrors.Add(1)
		return nil, nil, false
	}
	path := s.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.dropIndex(key) // evicted or removed behind our back
		} else {
			s.diskErrors.Add(1)
		}
		return nil, nil, false
	}
	env, err := Decode(raw)
	if err == nil && env.Key != string(key) {
		err = corrupt("entry %s holds key %s", key, env.Key)
	}
	if err != nil {
		s.quarantine(key, path, err)
		return nil, nil, false
	}
	s.touch(key)
	return raw, env, true
}

// touch marks key most recently accessed in the LRA index.
func (s *Store) touch(key results.Key) {
	s.dmu.Lock()
	if e, ok := s.entries[key]; ok {
		s.clock++
		e.access = s.clock
	}
	s.dmu.Unlock()
}

// dropIndex forgets key without touching the filesystem.
func (s *Store) dropIndex(key results.Key) {
	s.dmu.Lock()
	if e, ok := s.entries[key]; ok {
		s.diskBytes -= e.size
		delete(s.entries, key)
	}
	s.dmu.Unlock()
}

// quarantine moves a failed-validation entry into the quarantine
// directory (falling back to deletion if even that fails) and drops
// it from the index. The simulation that produced it will simply be
// re-run on the next request — corruption costs compute, never
// availability.
func (s *Store) quarantine(key results.Key, path string, cause error) {
	dst := filepath.Join(s.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.dropIndex(key)
	s.quarantined.Add(1)
	s.log.Warn("store: quarantined corrupt entry", "key", string(key), "error", cause)
}

// diskPut writes one envelope with the crash-safe discipline: the
// bytes land in a temp file in the entry's own shard directory (same
// filesystem, so the rename is atomic), then take the entry's name in
// one rename. A reader or a crash can observe the old entry or the
// new one, never a torn mix. Only the writer goroutine calls this, so
// two writes never race on the temp name.
func (s *Store) diskPut(key results.Key, data []byte) {
	if err := faultPut.Hit(); err != nil {
		// Injected write failure (the disk-full drill): drop the write
		// and count it; the result still lives in the memory tier.
		s.droppedDiskPuts.Add(1)
		return
	}
	path := s.entryPath(key)
	tmp := path + tmpExt
	fail := func(err error) {
		os.Remove(tmp)
		s.droppedDiskPuts.Add(1)
		s.log.Warn("store: disk write dropped", "key", string(key), "error", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fail(err)
		return
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		fail(err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		fail(err)
		return
	}
	s.dmu.Lock()
	s.clock++
	if e, ok := s.entries[key]; ok {
		s.diskBytes += int64(len(data)) - e.size
		e.size = int64(len(data))
		e.access = s.clock
	} else {
		s.entries[key] = &diskEntry{size: int64(len(data)), access: s.clock}
		s.diskBytes += int64(len(data))
	}
	s.dmu.Unlock()
	s.diskPuts.Add(1)
	s.gc()
}

// gc enforces MaxBytes by deleting least-recently-accessed entries
// until the disk tier fits. It runs on the writer goroutine (after
// each put) and once at Open — never on a Get path — so lookups never
// pay for eviction.
func (s *Store) gc() {
	if s.maxBytes <= 0 {
		return
	}
	for {
		s.dmu.Lock()
		if s.diskBytes <= s.maxBytes || len(s.entries) == 0 {
			s.dmu.Unlock()
			return
		}
		var victim results.Key
		var oldest uint64
		first := true
		for k, e := range s.entries {
			if first || e.access < oldest {
				victim, oldest, first = k, e.access, false
			}
		}
		e := s.entries[victim]
		s.diskBytes -= e.size
		delete(s.entries, victim)
		s.dmu.Unlock()
		os.Remove(s.entryPath(victim))
		s.gcEvictions.Add(1)
	}
}
