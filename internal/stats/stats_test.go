package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBucketExactSmallValues(t *testing.T) {
	for v := uint64(0); v < 16; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Errorf("bucketOf(%d) = %d", v, got)
		}
		if got := bucketUpper(int(v)); got != v {
			t.Errorf("bucketUpper(%d) = %d", v, got)
		}
	}
}

func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for v := uint64(0); v < 100000; v += 7 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
	}
}

func TestPropertyBucketUpperContains(t *testing.T) {
	f := func(v uint64) bool {
		b := bucketOf(v)
		return bucketUpper(b) >= v && (b == 0 || bucketUpper(b-1) < v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFractionAtOrBelowExactAtPowersOfTwo(t *testing.T) {
	h := NewHistogram()
	// 50 samples at 100, 50 samples at 1000.
	h.AddN(100, 50)
	h.AddN(1000, 50)
	if got := h.FractionAtOrBelow(512); got != 0.5 {
		t.Errorf("F(512) = %v, want 0.5", got)
	}
	if got := h.FractionAtOrBelow(2048); got != 1.0 {
		t.Errorf("F(2048) = %v, want 1", got)
	}
	if got := h.FractionAtOrBelow(64); got != 0 {
		t.Errorf("F(64) = %v, want 0", got)
	}
}

func TestCDFAgainstSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := NewHistogram()
	var samples []uint64
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1 << 20))
		samples = append(samples, v)
		h.Add(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, x := range []uint64{128, 4096, 65536, 1 << 19} {
		want := float64(sort.Search(len(samples), func(i int) bool { return samples[i] > x })) / float64(len(samples))
		got := h.FractionAtOrBelow(x)
		// Bucket resolution is a quarter octave: allow small error.
		if math.Abs(got-want) > 0.05 {
			t.Errorf("F(%d) = %v, oracle %v", x, got, want)
		}
	}
}

func TestCountBetween(t *testing.T) {
	h := NewHistogram()
	h.AddN(100, 10)  // in (64, 256]
	h.AddN(1000, 20) // above
	if got := h.CountBetween(64, 256); got != 10 {
		t.Errorf("CountBetween(64,256) = %d, want 10", got)
	}
	if got := h.CountBetween(256, 2048); got != 20 {
		t.Errorf("CountBetween(256,2048) = %d, want 20", got)
	}
}

func TestMergeAndTotals(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(5)
	b.Add(500)
	a.Merge(b)
	if a.Total() != 2 {
		t.Errorf("total = %d", a.Total())
	}
	if a.FractionAtOrBelow(1024) != 1 {
		t.Error("merged sample missing")
	}
	if got := a.CDF([]uint64{8, 1024}); got[0] != 0.5 || got[1] != 1 {
		t.Errorf("CDF = %v", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.FractionAtOrBelow(100) != 0 || h.Total() != 0 {
		t.Error("empty histogram misbehaves")
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %v", got)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	// Zeros clamp rather than collapse.
	if Geomean([]float64{0, 4}) <= 0 {
		t.Error("zero-containing geomean should stay positive")
	}
}

func TestTableRendering(t *testing.T) {
	var tb Table
	tb.AddRow("bench", "mpki")
	tb.AddRowf("%s %.1f", "canneal", 73.0)
	out := tb.String()
	if !strings.Contains(out, "canneal") || !strings.Contains(out, "73.0") {
		t.Errorf("table output:\n%s", out)
	}
	if !strings.Contains(out, "-----") {
		t.Error("missing header rule")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("unexpected line count %d", len(lines))
	}
}

func TestTableAddRowfPanicsOnMismatch(t *testing.T) {
	var tb Table
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tb.AddRowf("%s %s", "only-one")
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("sorted keys = %v", got)
	}
}
