// Package stats provides the small statistical toolkit the analyses
// share: log-bucketed histograms with CDF queries, geometric means,
// and aligned text tables for experiment reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// subBuckets is the number of histogram buckets per power of two;
// finer than the paper's plotted resolution.
const subBuckets = 4

// Histogram counts uint64 samples in logarithmic buckets: exact for
// small values, then subBuckets per octave. It answers the
// "fraction of samples ≤ x" queries that reuse-distance CDFs need;
// bucket edges land on powers of two, so the paper's class
// boundaries (128/256/512 blocks) are exact.
type Histogram struct {
	counts map[int]uint64
	total  uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// bucketOf maps a value to its bucket index. Values 0..16 get exact
// buckets; above that, buckets are quarter-octave half-open intervals
// (lo, hi] whose upper edges land exactly on powers of two, so CDF
// queries at power-of-two thresholds are exact.
func bucketOf(v uint64) int {
	if v <= 16 {
		return int(v) // exact buckets 0..16
	}
	// Work on w = v-1 so interval tops are inclusive powers of two.
	// width/subBuckets divides exactly (width >= 16), and dividing
	// first avoids overflow for values near 2^64.
	w := v - 1
	o := 63 - leadingZeros(w)
	width := uint64(1) << uint(o)
	frac := (w - width) / (width / subBuckets) // 0..subBuckets-1
	return 17 + (o-4)*subBuckets + int(frac)
}

// bucketUpper returns the largest value contained in bucket b.
func bucketUpper(b int) uint64 {
	if b <= 16 {
		return uint64(b)
	}
	rel := b - 17
	o := rel/subBuckets + 4
	frac := rel % subBuckets
	width := uint64(1) << uint(o)
	if o == 63 && frac == subBuckets-1 {
		return ^uint64(0) // top bucket saturates instead of wrapping
	}
	return width + (width/subBuckets)*(uint64(frac)+1)
}

func leadingZeros(v uint64) int {
	n := 0
	for mask := uint64(1) << 63; mask != 0 && v&mask == 0; mask >>= 1 {
		n++
	}
	return n
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.counts[bucketOf(v)]++
	h.total++
}

// AddN records a sample with weight n.
func (h *Histogram) AddN(v, n uint64) {
	h.counts[bucketOf(v)] += n
	h.total += n
}

// Total reports the number of samples.
func (h *Histogram) Total() uint64 { return h.total }

// FractionAtOrBelow returns the fraction of samples with value ≤ x.
// Buckets straddling x count if their upper edge is ≤ x, so results
// are exact at powers of two and sub-octave edges.
func (h *Histogram) FractionAtOrBelow(x uint64) float64 {
	if h.total == 0 {
		return 0
	}
	limit := bucketOf(x)
	var n uint64
	for b, c := range h.counts {
		if b < limit || (b == limit && bucketUpper(b) <= x) {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// CountBetween returns samples with lo < value ≤ hi (bucket
// resolution; exact at bucket edges).
func (h *Histogram) CountBetween(lo, hi uint64) uint64 {
	bLo, bHi := bucketOf(lo), bucketOf(hi)
	var n uint64
	for b, c := range h.counts {
		if b > bLo && (b < bHi || (b == bHi && bucketUpper(b) <= hi)) {
			n += c
		}
	}
	return n
}

// Merge adds another histogram's counts.
func (h *Histogram) Merge(o *Histogram) {
	for b, c := range o.counts {
		h.counts[b] += c
	}
	h.total += o.total
}

// CDF samples the histogram at the given thresholds, returning
// cumulative fractions.
func (h *Histogram) CDF(thresholds []uint64) []float64 {
	out := make([]float64, len(thresholds))
	for i, x := range thresholds {
		out[i] = h.FractionAtOrBelow(x)
	}
	return out
}

// Geomean returns the geometric mean of positive values; zero or
// negative entries are clamped to a small epsilon so a single
// degenerate benchmark doesn't zero the suite average.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v < 1e-12 {
			v = 1e-12
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Table renders rows of cells as aligned text, first row treated as
// the header.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row formatting each value with the matching verb
// spec ("%s", "%.2f", ...). Convenience for numeric rows.
func (t *Table) AddRowf(format string, vals ...any) {
	parts := strings.Fields(format)
	if len(parts) != len(vals) {
		panic(fmt.Sprintf("stats: %d format verbs for %d values", len(parts), len(vals)))
	}
	cells := make([]string, len(vals))
	for i := range vals {
		cells[i] = fmt.Sprintf(parts[i], vals[i])
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	widths := map[int]int{}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for ri, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for i := range row {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", widths[i]))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// SortedKeys returns map keys in sorted order; report helpers use it
// for deterministic output.
func SortedKeys[K ~string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
