package dram

import (
	"testing"
)

func TestNewValidation(t *testing.T) {
	cfg := Default()
	cfg.Banks = 3
	if _, err := New(cfg); err == nil {
		t.Error("non-power-of-two banks accepted")
	}
	cfg = Default()
	cfg.RowBytes = 100
	if _, err := New(cfg); err == nil {
		t.Error("bad row size accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(Config{})
}

func TestRowBufferHit(t *testing.T) {
	m := MustNew(Default())
	cfg := Default()
	first := m.Access(0, 0, false)
	wantMiss := cfg.TRP + cfg.TRCD + cfg.TCAS + cfg.TBurst
	if first != wantMiss {
		t.Errorf("cold access latency = %d, want %d", first, wantMiss)
	}
	// Same row, after the bank is free.
	now := first
	second := m.Access(now, 64, false)
	wantHit := cfg.TCAS + cfg.TBurst
	if second != wantHit {
		t.Errorf("row-hit latency = %d, want %d", second, wantHit)
	}
	s := m.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 {
		t.Errorf("row stats: %+v", s)
	}
	if s.RowHitRate() != 0.5 {
		t.Errorf("hit rate = %v", s.RowHitRate())
	}
}

func TestRowConflict(t *testing.T) {
	cfg := Default()
	m := MustNew(cfg)
	m.Access(0, 0, false)
	// Different row, same bank: addresses separated by
	// RowBytes*Banks fall in the same bank.
	lat := m.Access(1000, cfg.RowBytes*uint64(cfg.Banks), false)
	if lat != cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBurst {
		t.Errorf("row conflict latency = %d", lat)
	}
	if m.Stats().RowMisses != 2 {
		t.Errorf("misses = %d", m.Stats().RowMisses)
	}
}

func TestBankQueueing(t *testing.T) {
	cfg := Default()
	m := MustNew(cfg)
	// Two immediate accesses to the same bank: second waits.
	l1 := m.Access(0, 0, false)
	l2 := m.Access(0, 64, false)
	if l2 <= cfg.TCAS+cfg.TBurst {
		t.Errorf("queued access latency = %d, should include wait for %d", l2, l1)
	}
	if l2 != l1+cfg.TCAS+cfg.TBurst {
		t.Errorf("queued latency = %d, want %d", l2, l1+cfg.TCAS+cfg.TBurst)
	}
}

func TestBankParallelism(t *testing.T) {
	cfg := Default()
	m := MustNew(cfg)
	m.Access(0, 0, false)
	// Next bank: no queueing even at the same instant.
	lat := m.Access(0, cfg.RowBytes, false)
	if lat != cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBurst {
		t.Errorf("parallel bank latency = %d", lat)
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := Default()
	m := MustNew(cfg)
	m.Access(0, 0, false)
	s := m.Stats()
	want := cfg.EnergyPJPerBit*64*8 + cfg.RowActivatePJ
	if s.EnergyPJ != want {
		t.Errorf("energy = %v, want %v", s.EnergyPJ, want)
	}
	m.Access(100, 64, true)
	s = m.Stats()
	want += cfg.EnergyPJPerBit * 64 * 8 // row hit: no activate
	if s.EnergyPJ != want {
		t.Errorf("energy after hit = %v, want %v", s.EnergyPJ, want)
	}
	if s.Reads != 1 || s.Writes != 1 || s.Accesses() != 2 {
		t.Errorf("counts: %+v", s)
	}
}

func TestResetStats(t *testing.T) {
	m := MustNew(Default())
	m.Access(0, 0, false)
	m.ResetStats()
	if m.Stats().Accesses() != 0 {
		t.Error("stats not reset")
	}
	if (Stats{}).RowHitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}
