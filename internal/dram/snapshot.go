package dram

// CloneRebased returns an independent memory whose bank state is
// carried over from the current one but re-expressed relative to CPU
// cycle `now`: each bank keeps its open row, and its readyAt becomes
// the remaining busy time (readyAt - now, clamped at zero). Statistics
// start at zero.
//
// The timing model is translation-invariant — Access only ever
// compares readyAt against the current cycle — so an epoch simulated
// from a rebased clone at cycle 0 produces exactly the latencies (and
// stats deltas) the original would from cycle `now`.
func (m *Memory) CloneRebased(now uint64) *Memory {
	n := &Memory{
		cfg:         m.cfg,
		rowShift:    m.rowShift,
		banks:       make([]bank, len(m.banks)),
		bankMask:    m.bankMask,
		bankShift:   m.bankShift,
		serviceHit:  m.serviceHit,
		serviceMiss: m.serviceMiss,
	}
	for i, b := range m.banks {
		n.banks[i].openRow = b.openRow
		if b.readyAt > now {
			n.banks[i].readyAt = b.readyAt - now
		}
	}
	return n
}

// Fingerprint digests the bank state relative to CPU cycle `now`:
// open rows plus each bank's remaining busy time. Two memories with
// equal fingerprints at their respective current cycles behave
// identically (same latencies, same row hits) for every future access
// sequence, regardless of how their absolute cycle counts differ.
func (m *Memory) Fingerprint(now uint64) uint64 {
	var h uint64
	for i, b := range m.banks {
		rel := uint64(0)
		if b.readyAt > now {
			rel = b.readyAt - now
		}
		h += fpMix(uint64(i) ^ fpMix(uint64(b.openRow)^fpMix(rel)))
	}
	return fpMix(h)
}

// fpMix is the SplitMix64 output finalizer (same digest primitive the
// cache fingerprints use).
func fpMix(z uint64) uint64 {
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}
