// Package dram models main-memory timing in the style of DRAMSim2,
// reduced to what the MAPS experiments consume: per-access latency
// with bank-level parallelism and row-buffer locality, plus transfer
// energy at the paper's 150 pJ/bit.
package dram

import (
	"fmt"
	"math/bits"
)

// Config sets the memory geometry and timing, in CPU cycles at the
// simulated core clock (3 GHz in Table I, so 1 cycle = 1/3 ns).
type Config struct {
	// Banks is the number of independent banks.
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes uint64
	// TRCD is the activate-to-read delay in cycles.
	TRCD uint64
	// TCAS is the column access latency in cycles.
	TCAS uint64
	// TRP is the precharge latency in cycles.
	TRP uint64
	// TBurst is the data-transfer time of one 64 B block in cycles.
	TBurst uint64
	// EnergyPJPerBit is the transfer energy; the paper uses 150 pJ/b.
	EnergyPJPerBit float64
	// RowActivatePJ is the fixed energy per row activation.
	RowActivatePJ float64
}

// Default returns timing typical of DDR3-1600 expressed in 3 GHz CPU
// cycles (≈13.75 ns tRCD/tCAS/tRP → ≈41 cycles).
func Default() Config {
	return Config{
		Banks:          8,
		RowBytes:       8 << 10,
		TRCD:           41,
		TCAS:           41,
		TRP:            41,
		TBurst:         12,
		EnergyPJPerBit: 150,
		RowActivatePJ:  5000,
	}
}

// Stats aggregates memory activity.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	// EnergyPJ is the total transfer + activation energy. It is
	// derived from the integer counters on read (see Config.EnergyOf)
	// rather than accumulated per access: the hot path stays pure
	// integer, and partial stats — per-epoch deltas in the parallel
	// driver — merge by integer addition with the energy recomputed
	// once from the totals, which is how the float stays bit-identical
	// between the sequential and epoch-parallel paths.
	EnergyPJ float64
	// BusyCycles approximates total bank occupancy.
	BusyCycles uint64
}

// EnergyOf computes the transfer + activation energy for the given
// counters under this configuration's energy parameters.
func (c Config) EnergyOf(s Stats) float64 {
	return float64(s.RowMisses)*c.RowActivatePJ + float64(s.Reads+s.Writes)*(c.EnergyPJPerBit*64*8)
}

// Accesses returns reads + writes.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// RowHitRate returns the fraction of accesses hitting an open row.
func (s Stats) RowHitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses())
}

type bank struct {
	openRow int64
	readyAt uint64
}

// Memory is an open-page banked DRAM timing model. Not safe for
// concurrent use; parallel experiment sweeps own private Memories.
type Memory struct {
	cfg      Config
	rowShift uint
	banks    []bank
	stats    Stats

	// Hot-path constants folded at New: bank count is a power of two,
	// so bank/row selection is a mask and a shift (the generic modulo
	// compiled to a hardware divide), and the fixed latency sums don't
	// change per access.
	bankMask    uint64
	bankShift   uint
	serviceHit  uint64
	serviceMiss uint64
}

// New creates a memory. Banks must be a power of two and RowBytes a
// power-of-two multiple of 64.
func New(cfg Config) (*Memory, error) {
	if cfg.Banks <= 0 || cfg.Banks&(cfg.Banks-1) != 0 {
		return nil, fmt.Errorf("dram: banks %d must be a positive power of two", cfg.Banks)
	}
	if cfg.RowBytes < 64 || cfg.RowBytes&(cfg.RowBytes-1) != 0 {
		return nil, fmt.Errorf("dram: row size %d must be a power of two >= 64", cfg.RowBytes)
	}
	m := &Memory{
		cfg:         cfg,
		rowShift:    uint(bits.TrailingZeros64(cfg.RowBytes)),
		banks:       make([]bank, cfg.Banks),
		bankMask:    uint64(cfg.Banks - 1),
		bankShift:   uint(bits.TrailingZeros64(uint64(cfg.Banks))),
		serviceHit:  cfg.TCAS + cfg.TBurst,
		serviceMiss: cfg.TRP + cfg.TRCD + cfg.TCAS + cfg.TBurst,
	}
	for i := range m.banks {
		m.banks[i].openRow = -1
	}
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Stats returns a copy of the counters, with the derived energy
// filled in.
func (m *Memory) Stats() Stats {
	s := m.stats
	s.EnergyPJ = m.cfg.EnergyOf(s)
	return s
}

// ResetStats zeroes the counters (bank state persists).
func (m *Memory) ResetStats() { m.stats = Stats{} }

// Access issues one 64 B block transfer at CPU cycle `now` and
// returns its completion latency in cycles, including any wait for
// the target bank.
func (m *Memory) Access(now uint64, addr uint64, write bool) (latency uint64) {
	rowGlobal := addr >> m.rowShift
	b := &m.banks[rowGlobal&m.bankMask]
	row := int64(rowGlobal >> m.bankShift)

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}
	var service uint64
	if b.openRow == row {
		m.stats.RowHits++
		service = m.serviceHit
	} else {
		m.stats.RowMisses++
		service = m.serviceMiss
		b.openRow = row
	}
	b.readyAt = start + service
	m.stats.BusyCycles += service

	if write {
		m.stats.Writes++
	} else {
		m.stats.Reads++
	}
	return (start - now) + service
}
