package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	t.Cleanup(Reset)
	p := P("test.disarmed")
	for i := 0; i < 1000; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("disarmed point injected: %v", err)
		}
	}
	if p.Fired() != 0 {
		t.Fatalf("disarmed point counted %d firings", p.Fired())
	}
}

func TestErrModeFiresEveryHit(t *testing.T) {
	t.Cleanup(Reset)
	p := P("test.err")
	if err := p.Arm(Injection{Mode: ModeErr}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		err := p.Hit()
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
		}
		var inj *InjectedError
		if !errors.As(err, &inj) || inj.Point != "test.err" || !inj.Transient() {
			t.Fatalf("hit %d: bad injected error %#v", i, err)
		}
	}
	if p.Fired() != 10 {
		t.Fatalf("fired %d, want 10", p.Fired())
	}
	p.Disarm()
	if err := p.Hit(); err != nil {
		t.Fatalf("disarmed point still injecting: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	t.Cleanup(Reset)
	p := P("test.panic")
	if err := p.Arm(Injection{Mode: ModePanic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("armed panic point did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "test.panic") {
			t.Fatalf("panic value %v does not name the point", r)
		}
		if p.Fired() != 1 {
			t.Fatalf("fired %d, want 1", p.Fired())
		}
	}()
	p.Hit()
}

func TestDelayMode(t *testing.T) {
	t.Cleanup(Reset)
	p := P("test.delay")
	if err := p.Arm(Injection{Mode: ModeDelay, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := p.Hit(); err != nil {
		t.Fatalf("delay mode returned error: %v", err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("hit returned after %v, want ≥ 20ms", d)
	}
	if p.Fired() != 1 {
		t.Fatalf("fired %d, want 1", p.Fired())
	}
}

// A fractional rate must fire deterministically given a seed: same
// seed, same schedule; and the firing fraction should be in the right
// neighborhood.
func TestRateIsSeededAndDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	const n = 10_000
	run := func(seed int64) (fired uint64, schedule []bool) {
		Seed(seed)
		p := P("test.rate")
		p.fired.Store(0)
		if err := p.Arm(Injection{Mode: ModeErr, Rate: 0.3}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			schedule = append(schedule, p.Hit() != nil)
		}
		p.Disarm()
		return p.Fired(), schedule
	}
	fired1, sched1 := run(42)
	fired2, sched2 := run(42)
	if fired1 != fired2 {
		t.Fatalf("same seed fired %d then %d", fired1, fired2)
	}
	for i := range sched1 {
		if sched1[i] != sched2[i] {
			t.Fatalf("schedules diverge at hit %d", i)
		}
	}
	if frac := float64(fired1) / n; frac < 0.25 || frac > 0.35 {
		t.Fatalf("rate 0.3 fired fraction %v", frac)
	}
	fired3, _ := run(43)
	if fired3 == fired1 {
		t.Fatalf("different seeds produced identical counts (%d); suspicious", fired1)
	}
}

func TestArmValidation(t *testing.T) {
	t.Cleanup(Reset)
	p := P("test.validate")
	for _, inj := range []Injection{
		{},                          // no mode
		{Mode: ModeDelay},           // delay without duration
		{Mode: ModeErr, Rate: -0.1}, // negative rate
		{Mode: ModeErr, Rate: 1.5},  // rate > 1
		{Mode: Mode(99)},            // unknown mode
	} {
		if err := p.Arm(inj); err == nil {
			t.Errorf("Arm(%+v) accepted", inj)
		}
	}
	if p.Armed() {
		t.Fatal("rejected Arm left the point armed")
	}
}

func TestArmSpec(t *testing.T) {
	t.Cleanup(Reset)
	spec := "spec.a:panic:0.01, spec.b:err:0.05 ,spec.c:delay=50ms:0.1,spec.d:err"
	if err := ArmSpec(spec); err != nil {
		t.Fatal(err)
	}
	armed := Armed()
	for _, want := range []string{"spec.a", "spec.b", "spec.c", "spec.d"} {
		found := false
		for _, name := range armed {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s not armed (armed: %v)", want, armed)
		}
	}
	a, b, c := P("spec.a"), P("spec.b"), P("spec.c")
	if a.inj.Mode != ModePanic || a.inj.Rate != 0.01 {
		t.Errorf("spec.a: %+v", a.inj)
	}
	if b.inj.Mode != ModeErr || b.inj.Rate != 0.05 {
		t.Errorf("spec.b: %+v", b.inj)
	}
	if c.inj.Mode != ModeDelay || c.inj.Delay != 50*time.Millisecond || c.inj.Rate != 0.1 {
		t.Errorf("spec.c: %+v", c.inj)
	}
	if d := P("spec.d"); d.inj.Rate != 0 { // 0 means always fire
		t.Errorf("spec.d rate: %v", d.inj.Rate)
	}
	if err := P("spec.d").Hit(); !errors.Is(err, ErrInjected) {
		t.Errorf("spec.d did not fire: %v", err)
	}
}

func TestArmSpecRejectsMalformedAtomically(t *testing.T) {
	t.Cleanup(Reset)
	for _, spec := range []string{
		"justaname",
		"x:warp",
		"x:err:yes",
		"x:err:2.0",
		"x:delay=banana",
		"x:delay=-5ms",
		":err",
		"x:err:0.5:extra",
	} {
		if err := ArmSpec("good.point:err," + spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if P("good.point").Armed() {
		t.Fatal("malformed spec armed its valid prefix; ArmSpec must be atomic")
	}
	if err := ArmSpec("  "); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	p := P("test.snapshot")
	if err := p.Arm(Injection{Mode: ModeErr}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p.Hit()
	}
	snap := Snapshot()
	if snap["test.snapshot"] != 3 {
		t.Fatalf("snapshot: %v", snap)
	}
	Reset()
	if p.Armed() || p.Fired() != 0 {
		t.Fatalf("Reset left point armed=%v fired=%d", p.Armed(), p.Fired())
	}
	if snap := Snapshot(); len(snap) != 0 {
		t.Fatalf("snapshot after reset: %v", snap)
	}
}

// The production invariant: a disarmed Hit is one atomic load. This
// benchmark exists so a regression (lock, map lookup, allocation) is
// visible; the real gate is `make benchcheck` on the simulation loop.
func BenchmarkDisarmedHit(b *testing.B) {
	p := P("bench.disarmed")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Hit(); err != nil {
			b.Fatal(err)
		}
	}
}
