// Package faults is a deterministic fault-injection framework: named
// injection points scattered through the service path (the job pool,
// the result cache, the HTTP submit handler, the simulation loop) that
// are inert in production and can be armed — programmatically in
// tests, or from a spec string like
//
//	MAPSD_FAULTS="jobs.run:panic:0.01,results.put:err:0.05,server.submit:delay=50ms:0.1"
//
// — to return errors, inject latency, or panic at a configured rate.
//
// The design contract is that a disarmed point costs one atomic load
// and a predicted branch, nothing else: Point.Hit is small enough to
// inline, so instrumenting a hot path (the simulation loop checks its
// point only at cancellation checkpoints) is free until someone arms
// it. The perf-regression gate (`make benchcheck`) verifies this.
//
// Firing decisions are deterministic: every armed point draws from its
// own SplitMix64 stream seeded from the package seed and the point
// name, so a chaos run with a fixed seed injects the same schedule of
// faults every time — the property that lets the chaos tests assert
// exact accounting instead of "roughly N".
//
// The package is stdlib-only and dependency-free so any layer can
// import it without cycles.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed point does when it fires.
type Mode uint8

// Injection modes.
const (
	// ModeErr makes the point return an *InjectedError.
	ModeErr Mode = iota + 1
	// ModePanic makes the point panic with an "injected panic" message.
	ModePanic
	// ModeDelay makes the point sleep for Injection.Delay, then
	// proceed normally.
	ModeDelay
)

// String names the mode as it appears in a fault spec.
func (m Mode) String() string {
	switch m {
	case ModeErr:
		return "err"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Injection describes what an armed point injects and how often.
type Injection struct {
	// Mode selects error, panic, or latency injection.
	Mode Mode
	// Delay is the injected latency; required for ModeDelay, ignored
	// otherwise.
	Delay time.Duration
	// Rate is the firing probability in [0, 1]. Zero means 1 (every
	// hit fires) so the common always-fire arm reads Injection{Mode: ModeErr}.
	Rate float64
}

// ErrInjected is the sentinel every injected error matches via
// errors.Is, so callers can distinguish injected faults from organic
// failures without string comparison.
var ErrInjected = errors.New("faults: injected error")

// InjectedError is the error an armed ModeErr point returns. It is
// transient by construction (retry frameworks should treat an injected
// fault like a recoverable blip, which is exactly what it simulates)
// and matches ErrInjected via errors.Is.
type InjectedError struct {
	// Point is the name of the injection point that fired.
	Point string
}

// Error renders the point name.
func (e *InjectedError) Error() string {
	return "faults: injected error at " + e.Point
}

// Is matches the package's ErrInjected sentinel.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Transient marks injected errors as retryable (see jobs.IsTransient).
func (e *InjectedError) Transient() bool { return true }

// Point is one named injection site. The zero value is not usable;
// get points through P, which registers them by name.
type Point struct {
	name string
	// armed is the fast-path gate: 0 disarmed, 1 armed. Hit loads it
	// and returns immediately when disarmed.
	armed atomic.Uint32
	fired atomic.Uint64

	mu  sync.Mutex
	inj Injection
	rng uint64 // SplitMix64 state; advanced under mu
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Fired returns how many injections this point has performed (errors
// returned, panics raised, delays slept) since the last Reset.
func (p *Point) Fired() uint64 { return p.fired.Load() }

// Hit is the injection site: call it where a fault could plausibly
// happen. Disarmed — the production state — it is a single atomic load
// and inlines into the caller. Armed, it consults the point's seeded
// random stream and either does nothing, sleeps (ModeDelay), returns
// an *InjectedError (ModeErr), or panics (ModePanic).
func (p *Point) Hit() error {
	if p.armed.Load() == 0 {
		return nil
	}
	return p.fire()
}

// fire is the armed slow path, kept out of Hit so Hit stays inlinable.
func (p *Point) fire() error {
	p.mu.Lock()
	inj := p.inj
	fires := true
	if inj.Rate > 0 && inj.Rate < 1 {
		fires = unitFloat(splitmix64(&p.rng)) < inj.Rate
	}
	p.mu.Unlock()
	if !fires {
		return nil
	}
	p.fired.Add(1)
	switch inj.Mode {
	case ModeDelay:
		time.Sleep(inj.Delay)
		return nil
	case ModePanic:
		panic("faults: injected panic at " + p.name)
	default:
		return &InjectedError{Point: p.name}
	}
}

// Arm configures the point and starts injecting. The firing stream is
// re-seeded from the package seed and the point name, so two Arm calls
// with the same seed replay the same schedule. Arm validates the
// injection: an unknown mode, a rate outside [0, 1], or a ModeDelay
// without a positive delay is rejected.
func (p *Point) Arm(inj Injection) error {
	switch inj.Mode {
	case ModeErr, ModePanic:
	case ModeDelay:
		if inj.Delay <= 0 {
			return fmt.Errorf("faults: %s: delay mode needs a positive delay", p.name)
		}
	default:
		return fmt.Errorf("faults: %s: unknown mode %v", p.name, inj.Mode)
	}
	if inj.Rate < 0 || inj.Rate > 1 {
		return fmt.Errorf("faults: %s: rate %v outside [0, 1]", p.name, inj.Rate)
	}
	p.mu.Lock()
	p.inj = inj
	p.rng = pointSeed(p.name)
	p.mu.Unlock()
	p.armed.Store(1)
	return nil
}

// Disarm stops injecting. The fired counter is preserved (Reset zeroes
// it), so post-run accounting can still read it.
func (p *Point) Disarm() { p.armed.Store(0) }

// Armed reports whether the point currently injects.
func (p *Point) Armed() bool { return p.armed.Load() != 0 }

// registry maps names to points. Points are created on first use and
// never removed, so a *Point can be cached in a package variable next
// to the code it instruments.
var (
	regMu sync.Mutex
	reg   = make(map[string]*Point)
	seed  atomic.Int64
)

// P returns the injection point registered under name, creating it
// (disarmed) on first use. Cache the result in a variable near the
// instrumented code; the map lookup is not meant for hot paths.
func P(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	p, ok := reg[name]
	if !ok {
		p = &Point{name: name}
		reg[name] = p
	}
	return p
}

// Seed sets the package seed that every subsequent Arm derives its
// firing stream from. Arm-then-Seed does not retroactively re-seed;
// set the seed first, then arm.
func Seed(s int64) { seed.Store(s) }

// pointSeed mixes the package seed with an FNV-1a hash of the point
// name so distinct points draw from decorrelated streams.
func pointSeed(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h ^ uint64(seed.Load())
}

// splitmix64 advances state and returns the next value of the
// canonical SplitMix64 stream (same generator internal/workload uses).
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unitFloat maps a uint64 onto [0, 1) with 53 random bits.
func unitFloat(v uint64) float64 {
	return float64(v>>11) / (1 << 53)
}

// DisarmAll disarms every registered point, leaving fired counters in
// place for post-run accounting.
func DisarmAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range reg {
		p.Disarm()
	}
}

// Reset disarms every registered point and zeroes its fired counter —
// the between-tests clean slate.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range reg {
		p.Disarm()
		p.fired.Store(0)
	}
}

// Armed lists the names of currently armed points, sorted.
func Armed() []string {
	regMu.Lock()
	defer regMu.Unlock()
	var names []string
	for name, p := range reg {
		if p.Armed() {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the fired count of every point that has injected at
// least once, keyed by point name — the numbers behind the
// mapsd_faults_injected_total metric family.
func Snapshot() map[string]uint64 {
	regMu.Lock()
	defer regMu.Unlock()
	out := make(map[string]uint64)
	for name, p := range reg {
		if n := p.Fired(); n > 0 {
			out[name] = n
		}
	}
	return out
}

// ArmSpec parses and arms a comma-separated fault spec. Each entry is
//
//	point:mode[:rate]
//
// where point is a registered (or to-be-registered) injection-point
// name, mode is "err", "panic", or "delay=DURATION" (Go duration
// syntax), and the optional rate is a firing probability in [0, 1]
// (default 1, i.e. every hit fires). Examples:
//
//	jobs.run:panic:0.01
//	results.put:err:0.05
//	server.submit:delay=50ms:0.1
//	sim.step:err
//
// A malformed entry rejects the whole spec and arms nothing.
func ArmSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	type arm struct {
		name string
		inj  Injection
	}
	var arms []arm
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return fmt.Errorf("faults: bad spec entry %q (want point:mode[:rate])", entry)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return fmt.Errorf("faults: bad spec entry %q: empty point name", entry)
		}
		var inj Injection
		mode := strings.TrimSpace(parts[1])
		switch {
		case mode == "err":
			inj.Mode = ModeErr
		case mode == "panic":
			inj.Mode = ModePanic
		case strings.HasPrefix(mode, "delay="):
			d, err := time.ParseDuration(strings.TrimPrefix(mode, "delay="))
			if err != nil {
				return fmt.Errorf("faults: bad spec entry %q: %v", entry, err)
			}
			inj.Mode = ModeDelay
			inj.Delay = d
		default:
			return fmt.Errorf("faults: bad spec entry %q: unknown mode %q", entry, mode)
		}
		if len(parts) == 3 {
			rate, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return fmt.Errorf("faults: bad spec entry %q: %v", entry, err)
			}
			inj.Rate = rate
		}
		arms = append(arms, arm{name, inj})
	}
	// Validate everything before arming anything: a spec is atomic.
	for _, a := range arms {
		probe := Point{name: a.name}
		if err := probe.Arm(a.inj); err != nil {
			return err
		}
	}
	for _, a := range arms {
		if err := P(a.name).Arm(a.inj); err != nil {
			return err
		}
	}
	return nil
}
