package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// testSpec is a small grid (2 benchmarks × 2 meta sizes = 4 points,
// or ×2 contents = 8) the fake runners never actually simulate.
func testSpec(contents bool) sweep.Spec {
	s := sweep.Spec{
		Base: sim.Config{Instructions: 20_000, Secure: true},
		Axes: sweep.Axes{
			Benchmarks: []string{"canneal", "libquantum"},
			Meta:       sweep.IntAxis{Points: []int{16 << 10, 64 << 10}},
		},
	}
	if contents {
		s.Axes.Contents = []string{"counters", "all"}
	}
	return s
}

// fakeRunner is a scriptable in-memory worker.
type fakeRunner struct {
	name    string
	delay   time.Duration
	healthy atomic.Bool
	// fail, when set, decides each call's fate before any result is
	// produced; ran records the indexes of successfully executed
	// points.
	fail func(p sweep.Point, call int) error

	mu    sync.Mutex
	ran   []int
	calls int
}

func newFakeRunner(name string, delay time.Duration) *fakeRunner {
	f := &fakeRunner{name: name, delay: delay}
	f.healthy.Store(true)
	return f
}

func (f *fakeRunner) Name() string                 { return f.name }
func (f *fakeRunner) Healthy(context.Context) bool { return f.healthy.Load() }
func (f *fakeRunner) ranPoints() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.ran...)
}

func (f *fakeRunner) Run(ctx context.Context, p sweep.Point, _ time.Duration, _ bool) (*sim.Result, error) {
	f.mu.Lock()
	f.calls++
	call := f.calls
	f.mu.Unlock()
	if f.delay > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(f.delay):
		}
	}
	if f.fail != nil {
		if err := f.fail(p, call); err != nil {
			return nil, err
		}
	}
	f.mu.Lock()
	f.ran = append(f.ran, p.Index)
	f.mu.Unlock()
	// Deterministic per-point payload so exactly-once and identity
	// checks can compare results structurally.
	return &sim.Result{
		Benchmark: p.Benchmark,
		IPC:       1 + float64(p.Index),
		LLCMPKI:   float64(p.Index + 1),
	}, nil
}

// countingCache records puts per key so tests can prove exactly-once
// storage.
type countingCache struct {
	mu   sync.Mutex
	m    map[results.Key]any
	puts map[results.Key]int
}

func newCountingCache() *countingCache {
	return &countingCache{m: make(map[results.Key]any), puts: make(map[results.Key]int)}
}

func (c *countingCache) Get(_ context.Context, key results.Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *countingCache) Put(key results.Key, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = value
	c.puts[key]++
}

func (c *countingCache) maxPuts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := 0
	for _, n := range c.puts {
		if n > max {
			max = n
		}
	}
	return max
}

// deliveries collects OnPoint callbacks and checks exactly-once.
type deliveries struct {
	mu   sync.Mutex
	seen map[int]int
}

func newDeliveries() *deliveries { return &deliveries{seen: make(map[int]int)} }

func (d *deliveries) onPoint(pr sweep.PointResult) {
	d.mu.Lock()
	d.seen[pr.Index]++
	d.mu.Unlock()
}

func (d *deliveries) assertExactlyOnce(t *testing.T, total int) {
	t.Helper()
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.seen) != total {
		t.Fatalf("delivered %d distinct points, want %d", len(d.seen), total)
	}
	for idx, n := range d.seen {
		if n != 1 {
			t.Errorf("point %d delivered %d times, want exactly once", idx, n)
		}
	}
}

func TestCoordinatorCompletesGrid(t *testing.T) {
	a, b := newFakeRunner("a", 0), newFakeRunner("b", 0)
	del := newDeliveries()
	m := &Metrics{}
	c := &Coordinator{
		Workers: []Worker{{Runner: a, MaxInflight: 2}, {Runner: b, MaxInflight: 2}},
		OnPoint: del.onPoint,
		Metrics: m,
	}
	res, err := c.Run(context.Background(), testSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 8 || res.Total != 8 {
		t.Fatalf("done %d/%d, want 8/8", res.Done, res.Total)
	}
	del.assertExactlyOnce(t, 8)
	for i := range res.Points {
		p := &res.Points[i]
		if p.Result == nil {
			t.Fatalf("point %d has no result", i)
		}
		if p.Worker != "a" && p.Worker != "b" {
			t.Fatalf("point %d attributed to %q", i, p.Worker)
		}
		if p.Result.IPC != 1+float64(i) {
			t.Fatalf("point %d: result out of order (IPC %v)", i, p.Result.IPC)
		}
	}
	snap := m.Snapshot()
	var done uint64
	for _, s := range snap {
		done += s.Done
		if s.Inflight != 0 {
			t.Errorf("inflight gauge nonzero after completion: %+v", snap)
		}
	}
	if done != 8 {
		t.Fatalf("metrics count %d completions, want 8", done)
	}
	if len(a.ranPoints())+len(b.ranPoints()) != 8 {
		t.Fatalf("workers ran %d+%d points, want 8 total", len(a.ranPoints()), len(b.ranPoints()))
	}
}

// TestCoordinatorDeterministicAcrossFleets proves the aggregate is a
// pure function of the grid: the same spec through different fleet
// shapes yields identical points and geomeans.
func TestCoordinatorDeterministicAcrossFleets(t *testing.T) {
	run := func(workers ...Worker) *sweep.Result {
		t.Helper()
		c := &Coordinator{Workers: workers}
		res, err := c.Run(context.Background(), testSpec(true))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(Worker{Runner: newFakeRunner("solo", 0), MaxInflight: 1})
	three := run(
		Worker{Runner: newFakeRunner("w1", 0), MaxInflight: 2},
		Worker{Runner: newFakeRunner("w2", time.Millisecond), MaxInflight: 1},
		Worker{Runner: newFakeRunner("w3", 0), MaxInflight: 3},
	)
	if len(one.Geomeans) == 0 {
		t.Fatal("no geomeans aggregated")
	}
	if fmt.Sprintf("%+v", one.Geomeans) != fmt.Sprintf("%+v", three.Geomeans) {
		t.Fatalf("aggregates differ across fleet shapes:\n1 worker: %+v\n3 workers: %+v",
			one.Geomeans, three.Geomeans)
	}
	for i := range one.Points {
		if one.Points[i].Result.IPC != three.Points[i].Result.IPC {
			t.Fatalf("point %d differs across fleet shapes", i)
		}
	}
}

// TestWorkerDeathReissue kills a worker after two completions; every
// remaining point must re-issue to the survivor.
func TestWorkerDeathReissue(t *testing.T) {
	dying := newFakeRunner("dying", 0)
	var deaths atomic.Uint64
	dying.fail = func(_ sweep.Point, call int) error {
		if call > 2 {
			deaths.Add(1)
			dying.healthy.Store(false) // a dead daemon also fails probes
			return WorkerFailure(errors.New("connection refused"))
		}
		return nil
	}
	ok := newFakeRunner("ok", 2*time.Millisecond)
	del := newDeliveries()
	m := &Metrics{}
	c := &Coordinator{
		Workers:       []Worker{{Runner: dying, MaxInflight: 2}, {Runner: ok, MaxInflight: 2}},
		OnPoint:       del.onPoint,
		Metrics:       m,
		HealthBackoff: time.Millisecond,
	}
	res, err := c.Run(context.Background(), testSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 8 {
		t.Fatalf("done %d, want 8", res.Done)
	}
	del.assertExactlyOnce(t, 8)
	if deaths.Load() > 0 {
		snap := m.Snapshot()
		if snap["dying"].Failures == 0 {
			t.Fatalf("worker died %d times but no failures recorded: %+v", deaths.Load(), snap)
		}
	}
	if got := len(ok.ranPoints()) + len(dying.ranPoints()); got != 8 {
		t.Fatalf("workers ran %d points total, want 8", got)
	}
}

// TestStolenStragglerExactlyOnce re-issues a slow worker's point to a
// fast one; when both finish, the duplicate must be discarded and the
// store written once per point.
func TestStolenStragglerExactlyOnce(t *testing.T) {
	slow := newFakeRunner("slow", 300*time.Millisecond)
	fast := newFakeRunner("fast", 2*time.Millisecond)
	del := newDeliveries()
	m := &Metrics{}
	cache := newCountingCache()
	c := &Coordinator{
		Workers:        []Worker{{Runner: slow, MaxInflight: 1}, {Runner: fast, MaxInflight: 1}},
		OnPoint:        del.onPoint,
		Metrics:        m,
		Cache:          cache,
		StragglerAfter: 25 * time.Millisecond,
	}
	res, err := c.Run(context.Background(), testSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 8 {
		t.Fatalf("done %d, want 8", res.Done)
	}
	del.assertExactlyOnce(t, 8)
	if n := cache.maxPuts(); n > 1 {
		t.Fatalf("a point was stored %d times, want at most once", n)
	}
	snap := m.Snapshot()
	if snap["slow"].Reissues == 0 {
		t.Fatalf("slow worker held points past the straggler deadline but no re-issue recorded: %+v", snap)
	}
	if snap["fast"].Steals == 0 {
		t.Fatalf("fast worker should have stolen a re-issued point: %+v", snap)
	}
}

// TestUnhealthyWorkerExcluded proves a worker whose probe fails never
// executes a point and the transition is counted once.
func TestUnhealthyWorkerExcluded(t *testing.T) {
	sick := newFakeRunner("sick", 0)
	sick.healthy.Store(false)
	ok := newFakeRunner("ok", time.Millisecond)
	del := newDeliveries()
	m := &Metrics{}
	c := &Coordinator{
		Workers:       []Worker{{Runner: sick, MaxInflight: 2}, {Runner: ok, MaxInflight: 2}},
		OnPoint:       del.onPoint,
		Metrics:       m,
		HealthBackoff: time.Millisecond,
	}
	res, err := c.Run(context.Background(), testSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 8 {
		t.Fatalf("done %d, want 8", res.Done)
	}
	del.assertExactlyOnce(t, 8)
	if got := sick.ranPoints(); len(got) != 0 {
		t.Fatalf("unhealthy worker executed points %v", got)
	}
	for i := range res.Points {
		if res.Points[i].Worker != "ok" {
			t.Fatalf("point %d attributed to %q, want ok", i, res.Points[i].Worker)
		}
	}
	snap := m.Snapshot()
	if snap["sick"].Unhealthy > 1 {
		t.Fatalf("steady unhealthy state double-counted: %d transitions", snap["sick"].Unhealthy)
	}
}

// TestSimulationErrorFailsFast: a non-worker failure aborts the sweep
// with the point identified.
func TestSimulationErrorFailsFast(t *testing.T) {
	bad := newFakeRunner("bad", 0)
	bad.fail = func(p sweep.Point, _ int) error {
		if p.Index == 2 {
			return errors.New("simulation exploded")
		}
		return nil
	}
	c := &Coordinator{Workers: []Worker{{Runner: bad, MaxInflight: 2}}}
	_, err := c.Run(context.Background(), testSpec(false))
	if err == nil {
		t.Fatal("want fail-fast error")
	}
	if !strings.Contains(err.Error(), "point 2") || !strings.Contains(err.Error(), "simulation exploded") {
		t.Fatalf("error does not identify the failing point: %v", err)
	}
}

// TestGiveUpAfterAttempts: a point whose every issue hits a worker
// failure eventually fails the sweep with the attempt count.
func TestGiveUpAfterAttempts(t *testing.T) {
	broken := newFakeRunner("broken", 0)
	broken.fail = func(sweep.Point, int) error {
		return WorkerFailure(errors.New("always down"))
	}
	c := &Coordinator{
		Workers:     []Worker{{Runner: broken, MaxInflight: 1}},
		MaxAttempts: 3,
	}
	_, err := c.Run(context.Background(), testSpec(false))
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("want give-up error after 3 attempts, got: %v", err)
	}
}

// TestCachePrepassDedupesEverything: a fully warmed cache means no
// dispatches at all.
func TestCachePrepassDedupesEverything(t *testing.T) {
	spec := testSpec(true)
	points, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cache := newCountingCache()
	for _, p := range points {
		pol, part := sweep.CacheNames(p)
		key, err := results.PointKeyFor(p.Config, pol, part)
		if err != nil {
			t.Fatal(err)
		}
		cache.m[key] = &sim.Result{Benchmark: p.Benchmark, IPC: 42}
	}
	idle := newFakeRunner("idle", 0)
	c := &Coordinator{
		Workers: []Worker{{Runner: idle, MaxInflight: 2}},
		Cache:   cache,
	}
	res, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped != len(points) || res.Done != len(points) {
		t.Fatalf("deduped %d/%d done %d, want all %d cached", res.Deduped, res.Total, res.Done, len(points))
	}
	if got := idle.ranPoints(); len(got) != 0 {
		t.Fatalf("cached sweep still dispatched points %v", got)
	}
	for i := range res.Points {
		if !res.Points[i].Cached || res.Points[i].Worker != "" {
			t.Fatalf("point %d: Cached=%v Worker=%q, want cached with no worker", i, res.Points[i].Cached, res.Points[i].Worker)
		}
	}
}

// TestDispatchFaultPoint: a fully armed fleet.dispatch fault turns
// every dispatch into a worker failure, exhausting the attempt cap.
func TestDispatchFaultPoint(t *testing.T) {
	defer faults.DisarmAll()
	if err := faults.ArmSpec(FaultDispatch + ":err"); err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	c := &Coordinator{
		Workers:     []Worker{{Runner: newFakeRunner("w", 0), MaxInflight: 1}},
		MaxAttempts: 2,
		Metrics:     m,
	}
	_, err := c.Run(context.Background(), testSpec(false))
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("want give-up error under dispatch fault, got: %v", err)
	}
	if m.Snapshot()["w"].Failures == 0 {
		t.Fatal("dispatch faults not recorded as worker failures")
	}
}

// TestHealthFaultPoint: a fully armed fleet.health fault makes every
// worker look sick; the sweep stalls until the caller's deadline.
func TestHealthFaultPoint(t *testing.T) {
	defer faults.DisarmAll()
	if err := faults.ArmSpec(FaultHealth + ":err"); err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	c := &Coordinator{
		Workers:       []Worker{{Runner: newFakeRunner("w", 0), MaxInflight: 1}},
		HealthBackoff: time.Millisecond,
		Metrics:       m,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := c.Run(ctx, testSpec(false))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded while all workers look sick, got: %v", err)
	}
	if m.Snapshot()["w"].Unhealthy == 0 {
		t.Fatal("health-fault transitions not recorded")
	}
}

// TestParentCancelPropagates: canceling the caller's context aborts
// the sweep with the context error.
func TestParentCancelPropagates(t *testing.T) {
	slow := newFakeRunner("slow", 200*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{Workers: []Worker{{Runner: slow, MaxInflight: 1}}}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := c.Run(ctx, testSpec(false))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}
}

func TestNoWorkers(t *testing.T) {
	c := &Coordinator{}
	if _, err := c.Run(context.Background(), testSpec(false)); err == nil {
		t.Fatal("want error with no workers")
	}
}
