// Package fleet fans sweep grid points out across a set of mapsd
// workers. A Coordinator owns the dispatch loop: it dedupes points
// through the shared result cache before issuing any work, bounds
// in-flight points per worker, steals work from slow workers,
// excludes workers whose health probe fails, re-issues straggling
// points past a deadline, and resolves duplicate completions (the
// price of stealing) exactly once. Both the local jobs pool
// (PoolRunner) and remote daemons (mapsim.NewWorkerRunner, in the
// root package) plug in through the Runner interface, so a fleet of
// one local worker behaves byte-identically to the single-node sweep
// engine.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// Fault points the coordinator exposes to the chaos suite: dispatch
// fires just before a point is handed to a worker (an injected error
// is treated as a worker failure, so the point re-issues elsewhere);
// health fires inside every health probe (an injected error makes the
// probed worker look unhealthy).
const (
	FaultDispatch = "fleet.dispatch"
	FaultHealth   = "fleet.health"
)

// Runner executes one grid point somewhere — on the local jobs pool
// or on a remote daemon. Implementations must be safe for concurrent
// Run calls up to the Worker's MaxInflight bound.
type Runner interface {
	// Name identifies the worker in point attribution, metrics, and
	// logs; names must be unique within one Coordinator.
	Name() string
	// Run executes the point and returns its result; noCache forwards
	// the sweep's forced-rerun flag (a remote worker must then skip
	// its own result store's lookup). Infrastructure errors (transport
	// failures, worker overload, worker death) must be wrapped with
	// WorkerFailure so the coordinator re-issues the point elsewhere;
	// plain errors mean the simulation itself failed and fail the
	// whole sweep fast.
	Run(ctx context.Context, p sweep.Point, timeout time.Duration, noCache bool) (*sim.Result, error)
	// Healthy probes the worker (e.g. GET /readyz); an unhealthy
	// worker is excluded from dispatch until a later probe passes.
	Healthy(ctx context.Context) bool
}

// Worker pairs a Runner with its dispatch bound.
type Worker struct {
	// Runner executes points.
	Runner Runner
	// MaxInflight bounds concurrently dispatched points on this
	// worker (<= 0 means 1).
	MaxInflight int
}

// workerFailure marks an infrastructure error — the worker, not the
// simulation, failed — so the coordinator re-issues instead of
// failing the sweep.
type workerFailure struct{ err error }

func (e *workerFailure) Error() string { return e.err.Error() }
func (e *workerFailure) Unwrap() error { return e.err }

// WorkerFailure wraps err as a worker failure: the coordinator will
// re-issue the point to another worker (up to the attempt cap)
// instead of failing the sweep. A nil err returns nil.
func WorkerFailure(err error) error {
	if err == nil {
		return nil
	}
	return &workerFailure{err: err}
}

// IsWorkerFailure reports whether any error in err's chain was marked
// by WorkerFailure.
func IsWorkerFailure(err error) bool {
	var wf *workerFailure
	return errors.As(err, &wf)
}

// Coordinator fans a sweep's grid points out over Workers. Configure
// the fields before the first Run; a Coordinator is safe for
// concurrent Run calls (each run keeps private state), and Metrics
// accumulates across runs.
type Coordinator struct {
	// Workers is the fleet; at least one is required.
	Workers []Worker
	// Cache, when set, dedupes points against previously computed
	// results (by results.PointKeyFor) and stores fresh ones —
	// the fleet's exactly-once layer.
	Cache sweep.Cache
	// Completed pre-marks grid indices already finished by an earlier
	// run of the same sweep (journal recovery): the pre-pass consults
	// Cache for them even when the spec sets NoCache, so a resumed
	// sweep re-serves them from the store instead of re-simulating. A
	// pre-marked point the store no longer holds falls back to a
	// normal dispatch. Set this only on a Coordinator built for one
	// recovered sweep.
	Completed map[int]bool
	// OnPoint, when set, observes every completed point in completion
	// order; calls are serialized.
	OnPoint func(sweep.PointResult)
	// Timeout is the per-point deadline passed to Runner.Run (0 = none).
	Timeout time.Duration
	// StragglerAfter re-issues a point still in flight after this long
	// to another worker (0 disables straggler re-issue; rescue of
	// stranded points stays on).
	StragglerAfter time.Duration
	// HealthBackoff is how long an unhealthy worker sits out before
	// its next probe (default 250ms).
	HealthBackoff time.Duration
	// MaxAttempts caps issues per point before a worker failure
	// becomes fatal (default max(3, 2×len(Workers))).
	MaxAttempts int
	// Metrics, when set, accumulates per-worker dispatch counters.
	Metrics *Metrics
	// Logger, when set, records steals, re-issues, worker failures,
	// and health transitions.
	Logger *slog.Logger
}

// task is one grid point's dispatch state, guarded by runState.mu.
type task struct {
	point      sweep.Point
	key        results.Key
	done       bool
	attempts   int       // times issued to a worker
	inflight   int       // workers currently running it (>1 after a steal)
	queued     int       // copies sitting in the queue
	pending    int       // copies picked up but not yet claimed (health probe in progress)
	lastIssue  time.Time // most recent dispatch, for straggler detection
	lastWorker string    // most recent worker, for re-issue attribution
}

// runState is one Run's private coordination state.
type runState struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	tasks       []*task
	queue       chan *task
	res         *sweep.Result
	onPoint     func(sweep.PointResult)
	remaining   int
	maxAttempts int
	noCache     bool
	firstErr    error
	finished    bool
	healthy     map[string]bool
}

// fail records the sweep's first error and cancels the rest; callers
// hold mu.
func (r *runState) fail(err error) {
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.cancel()
}

// deliver records a completed point and notifies the observer;
// callers hold mu, which serializes the observer stream.
func (r *runState) deliver(pr sweep.PointResult) {
	r.res.Points[pr.Index] = pr
	r.res.Done++
	if pr.Cached {
		r.res.Deduped++
	}
	if r.onPoint != nil {
		r.onPoint(pr)
	}
}

// resend queues another copy of t without blocking; callers hold mu.
// A full queue is not fatal — the monitor's rescue pass retries.
func (r *runState) resend(t *task) {
	if t.done {
		return
	}
	select {
	case r.queue <- t:
		t.queued++
	default:
	}
}

// Run expands the spec and executes the grid across the fleet,
// failing fast on simulation errors and re-issuing points whose
// worker failed. The returned Result orders points exactly as Expand
// did and aggregates identically to the single-node engine.
func (c *Coordinator) Run(ctx context.Context, spec sweep.Spec) (*sweep.Result, error) {
	if len(c.Workers) == 0 {
		return nil, errors.New("fleet: no workers registered")
	}
	points, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &sweep.Result{
		Points: make([]sweep.PointResult, len(points)),
		Total:  len(points),
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &runState{
		ctx:         rctx,
		cancel:      cancel,
		res:         res,
		onPoint:     c.OnPoint,
		maxAttempts: c.maxAttempts(),
		noCache:     spec.NoCache,
		healthy:     make(map[string]bool),
	}

	// Cache pre-pass: serve every already-known point before issuing
	// any work, exactly as the single-node engine does.
	var tasks []*task
	for _, p := range points {
		key, hit := c.lookup(rctx, spec, p, c.Completed[p.Index])
		if hit != nil {
			r.mu.Lock()
			r.deliver(sweep.PointResult{Point: p, Result: hit, Cached: true})
			r.mu.Unlock()
			continue
		}
		tasks = append(tasks, &task{point: p, key: key})
	}
	r.tasks = tasks
	r.remaining = len(tasks)
	if len(tasks) == 0 {
		res.Wall = time.Since(start)
		res.Aggregate()
		return res, nil
	}

	// Queue capacity covers every possible copy: each task holds at
	// most maxAttempts+1 queued copies at once (unhealthy hand-backs
	// are net-zero), so sends only ever block on a bug.
	r.queue = make(chan *task, len(tasks)*(r.maxAttempts+1)+len(c.Workers))
	for _, t := range tasks {
		r.queue <- t
		t.queued = 1
	}

	var wg sync.WaitGroup
	for _, w := range c.Workers {
		n := w.MaxInflight
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(w Worker) {
				defer wg.Done()
				c.slot(rctx, r, w)
			}(w)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.monitor(rctx, r)
	}()
	wg.Wait()

	r.mu.Lock()
	firstErr := r.firstErr
	finished := r.finished
	r.mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	if !finished {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("fleet: sweep stopped before completion")
	}
	res.Wall = time.Since(start)
	res.Aggregate()
	return res, nil
}

// lookup computes the point's content address and consults the cache,
// mirroring the single-node engine: same key mapping, so fleet and
// local sweeps dedupe against each other. force consults the cache
// even under NoCache — the recovered-point path, where the store is
// the completed point's only surviving copy.
func (c *Coordinator) lookup(ctx context.Context, spec sweep.Spec, p sweep.Point, force bool) (results.Key, *sim.Result) {
	if c.Cache == nil {
		return "", nil
	}
	pol, part := sweep.CacheNames(p)
	key, err := results.PointKeyFor(p.Config, pol, part)
	if err != nil {
		return "", nil
	}
	if spec.NoCache && !force {
		return key, nil
	}
	if v, ok := c.Cache.Get(ctx, key); ok {
		if r, ok := v.(*sim.Result); ok {
			return key, r
		}
	}
	return key, nil
}

// slot is one in-flight dispatch lane on worker w: pull a point,
// gate on health, run it, hand the outcome to complete.
func (c *Coordinator) slot(rctx context.Context, r *runState, w Worker) {
	name := w.Runner.Name()
	for {
		select {
		case <-rctx.Done():
			return
		case t := <-r.queue:
			r.mu.Lock()
			t.queued--
			if t.done || r.firstErr != nil {
				r.mu.Unlock()
				continue
			}
			// pending marks the probe window: the point is neither
			// queued nor in flight, but it is NOT stranded — without
			// this, a monitor tick during a slow probe would resend it
			// and the sweep would simulate it twice.
			t.pending++
			r.mu.Unlock()

			if !c.probe(r, w) {
				// Hand the point back and sit out a backoff.
				r.mu.Lock()
				t.pending--
				r.resend(t)
				r.mu.Unlock()
				select {
				case <-rctx.Done():
					return
				case <-time.After(c.healthBackoff()):
				}
				continue
			}

			r.mu.Lock()
			t.pending--
			if t.done || r.firstErr != nil {
				r.mu.Unlock()
				continue
			}
			steal := t.inflight > 0
			t.inflight++
			t.attempts++
			t.lastIssue = time.Now()
			t.lastWorker = name
			r.mu.Unlock()
			c.Metrics.dispatch(name, steal)
			if steal && c.Logger != nil {
				c.Logger.Debug("fleet point stolen",
					"worker", name, "point", t.point.Index)
			}

			var res *sim.Result
			err := faults.P(FaultDispatch).Hit()
			if err != nil {
				err = WorkerFailure(fmt.Errorf("fleet: dispatch to %s: %w", name, err))
			} else {
				res, err = w.Runner.Run(rctx, t.point, c.Timeout, r.noCache)
			}
			c.complete(r, t, name, res, err)
		}
	}
}

// probe checks w's health (through the fleet.health fault point) and
// records healthy→unhealthy transitions.
func (c *Coordinator) probe(r *runState, w Worker) bool {
	name := w.Runner.Name()
	ok := faults.P(FaultHealth).Hit() == nil && w.Runner.Healthy(r.ctx)
	r.mu.Lock()
	was, seen := r.healthy[name]
	r.healthy[name] = ok
	r.mu.Unlock()
	if !ok && (was || !seen) {
		c.Metrics.unhealthy(name)
		if c.Logger != nil {
			c.Logger.Warn("fleet worker unhealthy", "worker", name)
		}
	}
	return ok
}

// complete resolves one dispatch outcome exactly once: the first
// successful completion wins, duplicates from steals are discarded,
// worker failures re-issue up to the attempt cap, and simulation
// errors fail the sweep fast.
func (c *Coordinator) complete(r *runState, t *task, worker string, res *sim.Result, err error) {
	c.Metrics.finish(worker)
	r.mu.Lock()
	defer r.mu.Unlock()
	t.inflight--
	if t.done || r.firstErr != nil {
		return // duplicate from a steal, or the sweep already failed
	}
	if err != nil {
		if r.ctx.Err() != nil {
			return // cancellation victim, not a cause
		}
		if IsWorkerFailure(err) {
			c.Metrics.failure(worker)
			if c.Logger != nil {
				c.Logger.Warn("fleet worker failed point",
					"worker", worker, "point", t.point.Index,
					"attempt", t.attempts, "err", err)
			}
			if t.attempts >= r.maxAttempts {
				r.fail(fmt.Errorf("fleet: point %d (%s): gave up after %d attempts: %w",
					t.point.Index, t.point, t.attempts, err))
				return
			}
			r.resend(t)
			return
		}
		r.fail(fmt.Errorf("sweep: point %d (%s) on %s: %w", t.point.Index, t.point, worker, err))
		return
	}
	t.done = true
	if c.Cache != nil && t.key != "" {
		c.Cache.Put(t.key, res)
	}
	r.deliver(sweep.PointResult{Point: t.point, Result: res, Worker: worker})
	c.Metrics.donePoint(worker)
	r.remaining--
	if r.remaining == 0 {
		r.finished = true
		r.cancel()
	}
}

// monitor is the straggler/rescue loop: re-issue points in flight
// past StragglerAfter, and resend any point that is neither queued
// nor in flight (a resend lost to a momentarily full queue).
func (c *Coordinator) monitor(rctx context.Context, r *runState) {
	tick := 50 * time.Millisecond
	if c.StragglerAfter > 0 {
		if t := c.StragglerAfter / 4; t < tick {
			tick = t
			if tick < time.Millisecond {
				tick = time.Millisecond
			}
		}
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-rctx.Done():
			return
		case <-tk.C:
		}
		now := time.Now()
		r.mu.Lock()
		for _, t := range r.tasks {
			if t.done {
				continue
			}
			if t.queued == 0 && t.inflight == 0 && t.pending == 0 {
				r.resend(t) // rescue a stranded point
				continue
			}
			if c.StragglerAfter > 0 && t.queued == 0 && t.pending == 0 && t.inflight > 0 &&
				t.attempts < r.maxAttempts && now.Sub(t.lastIssue) > c.StragglerAfter {
				r.resend(t)
				if t.queued > 0 {
					c.Metrics.reissue(t.lastWorker)
					if c.Logger != nil {
						c.Logger.Info("fleet straggler re-issued",
							"worker", t.lastWorker, "point", t.point.Index,
							"inflight", now.Sub(t.lastIssue))
					}
					t.lastIssue = now
				}
			}
		}
		r.mu.Unlock()
	}
}

// maxAttempts resolves the per-point attempt cap.
func (c *Coordinator) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	n := 2 * len(c.Workers)
	if n < 3 {
		n = 3
	}
	return n
}

// healthBackoff resolves the unhealthy-worker sit-out.
func (c *Coordinator) healthBackoff() time.Duration {
	if c.HealthBackoff > 0 {
		return c.HealthBackoff
	}
	return 250 * time.Millisecond
}
