package fleet

import "sync"

// WorkerStats counts one worker's fleet activity since process start.
type WorkerStats struct {
	// Inflight is the worker's currently dispatched point count.
	Inflight int
	// Done counts points this worker completed (winning completions
	// only — discarded duplicates from steals are not counted).
	Done uint64
	// Steals counts points this worker picked up while another worker
	// was still running them.
	Steals uint64
	// Reissues counts straggler re-issues charged to this worker (it
	// held the point past the straggler deadline).
	Reissues uint64
	// Failures counts worker-failure outcomes (dispatch faults,
	// transport errors, worker overload or death).
	Failures uint64
	// Unhealthy counts healthy→unhealthy probe transitions.
	Unhealthy uint64
}

// Metrics accumulates per-worker dispatch counters across every sweep
// a coordinator runs. Safe for concurrent use; a nil *Metrics
// discards all updates, so callers never need to guard.
type Metrics struct {
	mu      sync.Mutex
	workers map[string]*WorkerStats
}

// stat returns the named worker's mutable stats; callers hold mu.
func (m *Metrics) stat(name string) *WorkerStats {
	if m.workers == nil {
		m.workers = make(map[string]*WorkerStats)
	}
	s := m.workers[name]
	if s == nil {
		s = &WorkerStats{}
		m.workers[name] = s
	}
	return s
}

// dispatch records a point pickup (and the steal, if it was one).
func (m *Metrics) dispatch(name string, steal bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	s := m.stat(name)
	s.Inflight++
	if steal {
		s.Steals++
	}
	m.mu.Unlock()
}

// finish records a dispatch ending, whatever the outcome.
func (m *Metrics) finish(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stat(name).Inflight--
	m.mu.Unlock()
}

// donePoint records a winning completion.
func (m *Metrics) donePoint(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stat(name).Done++
	m.mu.Unlock()
}

// failure records a worker-failure outcome.
func (m *Metrics) failure(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stat(name).Failures++
	m.mu.Unlock()
}

// reissue records a straggler re-issue charged to name.
func (m *Metrics) reissue(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stat(name).Reissues++
	m.mu.Unlock()
}

// unhealthy records a healthy→unhealthy transition.
func (m *Metrics) unhealthy(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stat(name).Unhealthy++
	m.mu.Unlock()
}

// Snapshot copies the per-worker counters for metrics export.
func (m *Metrics) Snapshot() map[string]WorkerStats {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]WorkerStats, len(m.workers))
	for name, s := range m.workers {
		out[name] = *s
	}
	return out
}
