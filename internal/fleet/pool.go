package fleet

import (
	"context"
	"fmt"
	"time"

	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// PoolRunner adapts the local jobs pool to the Runner interface, so
// the coordinator dispatches to this daemon's own workers exactly
// like to a remote one. Points run through sweep.Instantiate — the
// same materialization path as the single-node engine — so a
// one-worker fleet is byte-identical to Engine.Run.
type PoolRunner struct {
	// Pool executes the points; required.
	Pool *jobs.Pool
	// WorkerName is the attribution name (default "local").
	WorkerName string
}

// Name identifies the local worker in attribution and metrics.
func (r *PoolRunner) Name() string {
	if r.WorkerName != "" {
		return r.WorkerName
	}
	return "local"
}

// Run executes the point as a pool job; noCache is moot here — the
// pool always simulates, the coordinator owns cache lookups. Pool
// errors are returned plain: a failure on the local pool fails the
// sweep fast, matching single-node engine semantics.
func (r *PoolRunner) Run(ctx context.Context, p sweep.Point, timeout time.Duration, _ bool) (*sim.Result, error) {
	out, err := r.Pool.Run(ctx, func(jctx context.Context) (any, error) {
		cfg, err := sweep.Instantiate(p)
		if err != nil {
			return nil, err
		}
		return sim.RunContext(jctx, cfg)
	}, timeout)
	if err != nil {
		return nil, err
	}
	res, ok := out.(*sim.Result)
	if !ok {
		return nil, fmt.Errorf("fleet: point job returned %T, want *sim.Result", out)
	}
	return res, nil
}

// Healthy reports whether the pool is accepting work.
func (r *PoolRunner) Healthy(context.Context) bool {
	return r.Pool != nil && !r.Pool.Draining()
}
