package memlayout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadSizes(t *testing.T) {
	if _, err := New(PoisonIvy, 0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(PoisonIvy, PageSize+1); err == nil {
		t.Error("New(non-page-multiple) should fail")
	}
	if _, err := New(SGX, 100); err == nil {
		t.Error("New(100) should fail")
	}
}

func TestOrganizationString(t *testing.T) {
	if PoisonIvy.String() != "PI" || SGX.String() != "SGX" {
		t.Errorf("unexpected names: %q %q", PoisonIvy, SGX)
	}
	if Organization(9).String() == "" {
		t.Error("unknown organization should still print")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindData: "data", KindCounter: "counter", KindHash: "hash", KindTree: "tree"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestPICounterCoversPage(t *testing.T) {
	l := MustNew(PoisonIvy, 1<<20) // 1 MB
	if got := l.CounterBlocks(); got != 1<<20/PageSize {
		t.Fatalf("counter blocks = %d, want one per page (%d)", got, 1<<20/PageSize)
	}
	// Every data block in the same page shares one counter block.
	base := Addr(5 * PageSize)
	want := l.CounterAddr(base)
	for b := uint64(0); b < BlocksPerPage; b++ {
		if got := l.CounterAddr(base + b*BlockSize); got != want {
			t.Fatalf("block %d of page maps to %#x, want %#x", b, got, want)
		}
	}
	// The next page maps elsewhere.
	if l.CounterAddr(base+PageSize) == want {
		t.Error("next page should use a different counter block")
	}
}

func TestSGXCounterCovers512B(t *testing.T) {
	l := MustNew(SGX, 1<<20)
	if got := l.CounterBlocks(); got != 1<<20/512 {
		t.Fatalf("counter blocks = %d, want one per 512 B (%d)", got, 1<<20/512)
	}
	base := Addr(0)
	want := l.CounterAddr(base)
	for b := uint64(0); b < 8; b++ {
		if got := l.CounterAddr(base + b*BlockSize); got != want {
			t.Fatalf("block %d maps to %#x, want %#x", b, got, want)
		}
	}
	if l.CounterAddr(base+512) == want {
		t.Error("9th block should use a different counter block")
	}
}

func TestHashMapping(t *testing.T) {
	l := MustNew(PoisonIvy, 1<<20)
	// Eight consecutive data blocks share a hash block; the ninth
	// does not.
	want := l.HashAddr(0)
	for b := uint64(0); b < HashesPerBlock; b++ {
		addr := b * BlockSize
		if got := l.HashAddr(addr); got != want {
			t.Fatalf("block %d hash at %#x, want %#x", b, got, want)
		}
		if got := l.HashSlot(addr); got != int(b) {
			t.Fatalf("block %d hash slot = %d, want %d", b, got, b)
		}
	}
	if l.HashAddr(HashesPerBlock*BlockSize) == want {
		t.Error("9th block should use a different hash block")
	}
}

func TestCounterSlot(t *testing.T) {
	pi := MustNew(PoisonIvy, 1<<20)
	sgx := MustNew(SGX, 1<<20)
	if got := pi.CounterSlot(63 * BlockSize); got != 63 {
		t.Errorf("PI slot of last block in page = %d, want 63", got)
	}
	if got := pi.CounterSlot(PageSize); got != 0 {
		t.Errorf("PI slot of next page start = %d, want 0", got)
	}
	if got := sgx.CounterSlot(7 * BlockSize); got != 7 {
		t.Errorf("SGX slot = %d, want 7", got)
	}
	if got := sgx.CounterSlot(8 * BlockSize); got != 0 {
		t.Errorf("SGX slot after wrap = %d, want 0", got)
	}
}

func TestRegionsDisjointAndOrdered(t *testing.T) {
	for _, org := range []Organization{PoisonIvy, SGX} {
		l := MustNew(org, 4<<20)
		c := l.CounterAddr(0)
		h := l.HashAddr(0)
		tr := l.TreeAddr(0, 0)
		if !(l.DataBytes() <= c && c < h && h < tr) {
			t.Errorf("%v: regions out of order: data=%d counter=%#x hash=%#x tree=%#x", org, l.DataBytes(), c, h, tr)
		}
		if l.TotalBytes() <= l.DataBytes() {
			t.Errorf("%v: no metadata space", org)
		}
	}
}

func TestTreeShape(t *testing.T) {
	// 4 MB of PI data -> 1024 counter blocks -> 128 leaf nodes ->
	// 16 -> 2 -> 1; four in-memory levels.
	l := MustNew(PoisonIvy, 4<<20)
	if got := l.TreeLevels(); got != 4 {
		t.Fatalf("tree levels = %d, want 4", got)
	}
	wantBlocks := []uint64{128, 16, 2, 1}
	for lev, want := range wantBlocks {
		if got := l.TreeLevelBlocks(lev); got != want {
			t.Errorf("level %d blocks = %d, want %d", lev, got, want)
		}
	}
}

func TestParentChainReachesRoot(t *testing.T) {
	l := MustNew(PoisonIvy, 16<<20)
	counter := l.CounterAddr(12345 * BlockSize)
	chain := l.VerifyChain(counter)
	if len(chain) != l.TreeLevels() {
		t.Fatalf("chain length = %d, want %d", len(chain), l.TreeLevels())
	}
	// Levels must be strictly increasing and end below the root.
	prevLevel := -1
	for _, node := range chain {
		kind, lev := l.Classify(node)
		if kind != KindTree {
			t.Fatalf("chain node %#x classified %v", node, kind)
		}
		if lev != prevLevel+1 {
			t.Fatalf("chain level %d after %d", lev, prevLevel)
		}
		prevLevel = lev
	}
	if l.Parent(chain[len(chain)-1]) != RootAddr {
		t.Error("top of chain should parent to on-chip root")
	}
}

func TestChildSlot(t *testing.T) {
	l := MustNew(PoisonIvy, 4<<20)
	for i := uint64(0); i < 16; i++ {
		c := l.CounterAddr(i * PageSize)
		if got, want := l.ChildSlot(c), int(i%TreeArity); got != want {
			t.Errorf("counter %d child slot = %d, want %d", i, got, want)
		}
	}
	leaf := l.TreeAddr(0, 9)
	if got := l.ChildSlot(leaf); got != 1 {
		t.Errorf("leaf 9 child slot = %d, want 1", got)
	}
}

func TestClassifyRoundTrip(t *testing.T) {
	l := MustNew(SGX, 8<<20)
	if k, _ := l.Classify(0); k != KindData {
		t.Errorf("addr 0 = %v, want data", k)
	}
	if k, _ := l.Classify(l.CounterAddr(0)); k != KindCounter {
		t.Errorf("counter addr = %v", k)
	}
	if k, _ := l.Classify(l.HashAddr(0)); k != KindHash {
		t.Errorf("hash addr = %v", k)
	}
	for lev := 0; lev < l.TreeLevels(); lev++ {
		k, gotLev := l.Classify(l.TreeAddr(lev, 0))
		if k != KindTree || gotLev != lev {
			t.Errorf("tree level %d classified (%v,%d)", lev, k, gotLev)
		}
	}
}

func TestDataProtectedTableII(t *testing.T) {
	pi := MustNew(PoisonIvy, 64<<20)
	sgx := MustNew(SGX, 64<<20)

	if got := pi.DataProtected(KindCounter, 0); got != 4096 {
		t.Errorf("PI counter coverage = %d, want 4096", got)
	}
	if got := sgx.DataProtected(KindCounter, 0); got != 512 {
		t.Errorf("SGX counter coverage = %d, want 512", got)
	}
	for _, l := range []*Layout{pi, sgx} {
		if got := l.DataProtected(KindHash, 0); got != 512 {
			t.Errorf("%v hash coverage = %d, want 512", l.Organization(), got)
		}
	}
	// Tree: PI leaves cover 4 KB * 8 = 32 KB; each level up x8.
	if got := pi.DataProtected(KindTree, 0); got != 32<<10 {
		t.Errorf("PI tree leaf coverage = %d, want 32 KB", got)
	}
	if got := pi.DataProtected(KindTree, 1); got != 256<<10 {
		t.Errorf("PI tree L1 coverage = %d, want 256 KB", got)
	}
	if got := sgx.DataProtected(KindTree, 0); got != 4<<10 {
		t.Errorf("SGX tree leaf coverage = %d, want 4 KB", got)
	}
	// Coverage saturates at the data size.
	top := pi.TreeLevels() - 1
	if got := pi.DataProtected(KindTree, top+3); got != pi.DataBytes() {
		t.Errorf("coverage beyond root = %d, want clamped to %d", got, pi.DataBytes())
	}
	if got := pi.DataProtected(KindData, 0); got != BlockSize {
		t.Errorf("data coverage = %d, want %d", got, BlockSize)
	}
}

func TestMetadataPerPage(t *testing.T) {
	// PI: 1 counter block + 8 hash blocks = 9 per 4 KB page (the
	// paper's 288 KB-for-2MB-LLC marker).
	pi := MustNew(PoisonIvy, 4<<20)
	if got := pi.MetadataPerPage(); got != 9 {
		t.Errorf("PI metadata per page = %d, want 9", got)
	}
	// SGX: 8 counter blocks + 8 hash blocks.
	sgx := MustNew(SGX, 4<<20)
	if got := sgx.MetadataPerPage(); got != 16 {
		t.Errorf("SGX metadata per page = %d, want 16", got)
	}
}

func TestMetadataOverheadFraction(t *testing.T) {
	// PI metadata ~ 1/64 (counters) + 1/8 (hashes) + tree (~1/512)
	// of data. Check within loose bounds.
	l := MustNew(PoisonIvy, 64<<20)
	frac := float64(l.MetadataBytes()) / float64(l.DataBytes())
	if frac < 0.14 || frac > 0.15 {
		t.Errorf("PI metadata fraction = %.4f, want ~0.143", frac)
	}
	// SGX: 1/8 counters + 1/8 hashes + tree.
	s := MustNew(SGX, 64<<20)
	sfrac := float64(s.MetadataBytes()) / float64(s.DataBytes())
	if sfrac < 0.26 || sfrac > 0.28 {
		t.Errorf("SGX metadata fraction = %.4f, want ~0.268", sfrac)
	}
}

func TestBlockAndPageOf(t *testing.T) {
	if got := BlockOf(127); got != 64 {
		t.Errorf("BlockOf(127) = %d, want 64", got)
	}
	if got := PageOf(PageSize + 17); got != PageSize {
		t.Errorf("PageOf = %d, want %d", got, PageSize)
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	l := MustNew(PoisonIvy, 1<<20)
	for name, fn := range map[string]func(){
		"CounterAddr": func() { l.CounterAddr(l.DataBytes()) },
		"HashAddr":    func() { l.HashAddr(l.DataBytes() + 64) },
		"TreeAddr":    func() { l.TreeAddr(99, 0) },
		"TreeIdx":     func() { l.TreeAddr(0, 1<<40) },
		"Parent":      func() { l.Parent(0) }, // data has no tree parent
		"Classify":    func() { l.Classify(l.TotalBytes()) },
		"TreeLeafFor": func() { l.TreeLeafFor(0) },
		"ChildSlot":   func() { l.ChildSlot(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: every data block's metadata addresses classify back to the
// right kinds and stay inside the layout.
func TestPropertyMappingInRange(t *testing.T) {
	l := MustNew(PoisonIvy, 32<<20)
	f := func(raw uint64) bool {
		addr := raw % l.DataBytes()
		addr = BlockOf(addr)
		c := l.CounterAddr(addr)
		h := l.HashAddr(addr)
		if k, _ := l.Classify(c); k != KindCounter {
			return false
		}
		if k, _ := l.Classify(h); k != KindHash {
			return false
		}
		for _, node := range l.VerifyChain(c) {
			if k, _ := l.Classify(node); k != KindTree {
				return false
			}
			if node >= l.TotalBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: parent coverage strictly contains child coverage until the
// clamp; tree levels protect 8x more data each step.
func TestPropertyTreeCoverageMonotonic(t *testing.T) {
	for _, org := range []Organization{PoisonIvy, SGX} {
		l := MustNew(org, 128<<20)
		prev := uint64(0)
		for lev := 0; lev < l.TreeLevels(); lev++ {
			cov := l.DataProtected(KindTree, lev)
			if cov <= prev && cov != l.DataBytes() {
				t.Errorf("%v: coverage not increasing at level %d: %d <= %d", org, lev, cov, prev)
			}
			prev = cov
		}
	}
}

// Property: two data blocks share a counter block iff they are within
// the same coverage window.
func TestPropertySharedCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, org := range []Organization{PoisonIvy, SGX} {
		l := MustNew(org, 16<<20)
		cov := org.CounterCoverage()
		for i := 0; i < 300; i++ {
			a := BlockOf(uint64(rng.Int63n(int64(l.DataBytes()))))
			b := BlockOf(uint64(rng.Int63n(int64(l.DataBytes()))))
			same := l.CounterAddr(a) == l.CounterAddr(b)
			wantSame := a/cov == b/cov
			if same != wantSame {
				t.Fatalf("%v: a=%#x b=%#x share=%v want %v", org, a, b, same, wantSame)
			}
		}
	}
}

func TestVerifyChainSharedPrefix(t *testing.T) {
	// Counters in adjacent "tree arity" groups share everything above
	// the leaf.
	l := MustNew(PoisonIvy, 4<<20)
	c0 := l.CounterAddr(0)
	c1 := l.CounterAddr(PageSize) // next counter block
	ch0, ch1 := l.VerifyChain(c0), l.VerifyChain(c1)
	if ch0[0] != ch1[0] {
		t.Error("adjacent counter blocks should share their leaf node")
	}
	cFar := l.CounterAddr(uint64(9 * TreeArity * PageSize))
	chFar := l.VerifyChain(cFar)
	if ch0[0] == chFar[0] {
		t.Error("distant counter blocks should not share the leaf")
	}
	if ch0[len(ch0)-1] != chFar[len(chFar)-1] {
		t.Error("all chains share the top in-memory level")
	}
}
