package memlayout

import "testing"

// TestWalkMatchesParentChain checks the decode-once iterator against
// the reference Parent/Classify/ChildSlot chain for both
// organizations, over every counter block and every tree node.
func TestWalkMatchesParentChain(t *testing.T) {
	for _, org := range []Organization{PoisonIvy, SGX} {
		l := MustNew(org, 8<<20)
		var starts []Addr
		for i := uint64(0); i < l.CounterBlocks(); i++ {
			starts = append(starts, l.counterOff+i*BlockSize)
		}
		for lev := 0; lev < l.TreeLevels(); lev++ {
			for i := uint64(0); i < l.TreeLevelBlocks(lev); i++ {
				starts = append(starts, l.TreeAddr(lev, i))
			}
		}
		for _, addr := range starts {
			// ParentInfo vs the three separate decodes.
			parent, level, slot := l.ParentInfo(addr)
			if want := l.Parent(addr); parent != want {
				t.Fatalf("%v ParentInfo(%#x) parent = %#x, want %#x", org, addr, parent, want)
			}
			if want := l.ChildSlot(addr); slot != want {
				t.Fatalf("%v ParentInfo(%#x) slot = %d, want %d", org, addr, slot, want)
			}
			if parent != RootAddr {
				if k, want := l.Classify(parent); k != KindTree || level != want {
					t.Fatalf("%v ParentInfo(%#x) level = %d, want %d", org, addr, level, want)
				}
			}

			// TreeWalk vs iterating Parent.
			walk := l.WalkFrom(addr)
			for node := l.Parent(addr); node != RootAddr; node = l.Parent(node) {
				got, lev, ok := walk.Next()
				if !ok {
					t.Fatalf("%v walk from %#x ended before %#x", org, addr, node)
				}
				if got != node {
					t.Fatalf("%v walk from %#x = %#x, want %#x", org, addr, got, node)
				}
				if _, want := l.Classify(node); lev != want {
					t.Fatalf("%v walk from %#x level = %d, want %d", org, addr, lev, want)
				}
			}
			if _, _, ok := walk.Next(); ok {
				t.Fatalf("%v walk from %#x did not terminate at the root", org, addr)
			}
		}
	}
}
