package memlayout

import "testing"

// FuzzClassifyRoundTrip checks that every in-range block address
// classifies without panicking and that metadata addresses derived
// from data addresses classify to the expected kinds.
func FuzzClassifyRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(4096), uint8(1))
	f.Add(uint64(1<<20-64), uint8(0))
	layouts := []*Layout{
		MustNew(PoisonIvy, 8<<20),
		MustNew(SGX, 8<<20),
	}
	f.Fuzz(func(t *testing.T, raw uint64, which uint8) {
		l := layouts[int(which)%len(layouts)]
		addr := BlockOf(raw % l.TotalBytes())
		kind, level := l.Classify(addr)
		switch kind {
		case KindData:
			c := l.CounterAddr(addr)
			if k, _ := l.Classify(c); k != KindCounter {
				t.Fatalf("counter addr %#x classifies as %v", c, k)
			}
			h := l.HashAddr(addr)
			if k, _ := l.Classify(h); k != KindHash {
				t.Fatalf("hash addr %#x classifies as %v", h, k)
			}
		case KindCounter, KindTree:
			// Parents chain to the root without panicking.
			node := addr
			for i := 0; i < l.TreeLevels()+2; i++ {
				parent := l.Parent(node)
				if parent == RootAddr {
					return
				}
				if k, lev := l.Classify(parent); k != KindTree || lev < 0 {
					t.Fatalf("parent %#x classifies as %v/%d", parent, k, lev)
				}
				node = parent
			}
			t.Fatalf("parent chain from %#x (level %d) did not reach the root", addr, level)
		case KindHash:
			// Hash blocks have no parents; nothing more to check.
		}
	})
}
