// Package memlayout defines the physical layout of a secure memory:
// where data, encryption counters, data hashes, and integrity-tree
// nodes live, and how a data address maps to the metadata that
// protects it.
//
// The layout follows the organizations studied by MAPS (ISPASS 2018):
//
//   - PoisonIvy (PI): split counters — one 8 B per-page counter plus
//     sixty-four 7 b per-block counters packed into a single 64 B
//     counter block, so one counter block protects a whole 4 KB page.
//   - SGX: monolithic counters — eight 8 B per-block counters per
//     64 B counter block, so one counter block protects 512 B.
//
// In both organizations an 8-ary Bonsai Merkle Tree of 8 B HMACs is
// built over the counter region, the root is kept on chip, and one
// 8 B HMAC per 64 B data block (eight per hash block) protects data
// integrity.
package memlayout

import (
	"fmt"
	"math/bits"
)

// Fundamental geometry constants shared by both organizations.
const (
	// BlockSize is the transfer granularity to the memory controller
	// and the unit in which all metadata is grouped.
	BlockSize = 64
	// PageSize is the OS page size used by the split-counter scheme.
	PageSize = 4096
	// BlocksPerPage is the number of 64 B data blocks in a 4 KB page.
	BlocksPerPage = PageSize / BlockSize
	// HashSize is the size of one truncated HMAC.
	HashSize = 8
	// HashesPerBlock is the number of 8 B HMACs in one 64 B block.
	HashesPerBlock = BlockSize / HashSize
	// TreeArity is the fan-out of the Bonsai Merkle Tree: each tree
	// node holds eight 8 B HMACs, one per child block.
	TreeArity = HashesPerBlock
)

// Organization selects the counter scheme.
type Organization int

const (
	// PoisonIvy uses split per-page/per-block counters: one 64 B
	// counter block per 4 KB page.
	PoisonIvy Organization = iota
	// SGX uses one 8 B counter per 64 B data block: one 64 B counter
	// block per 512 B of data.
	SGX
)

// String returns the organization name as used in the paper.
func (o Organization) String() string {
	switch o {
	case PoisonIvy:
		return "PI"
	case SGX:
		return "SGX"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// CounterCoverage returns the bytes of data protected by one 64 B
// counter block under this organization (Table II, "Counters" row).
func (o Organization) CounterCoverage() uint64 {
	switch o {
	case SGX:
		return HashesPerBlock * BlockSize // 512 B
	default:
		return PageSize // 4 KB
	}
}

// Kind classifies a physical block address.
type Kind uint8

const (
	// KindData is an application data block.
	KindData Kind = iota
	// KindCounter is an encryption-counter block.
	KindCounter
	// KindHash is a data-integrity HMAC block.
	KindHash
	// KindTree is a Bonsai Merkle Tree node (any level).
	KindTree
)

// String returns a short lower-case name for the kind.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindCounter:
		return "counter"
	case KindHash:
		return "hash"
	case KindTree:
		return "tree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MetaKinds lists the metadata kinds in a stable order, for reports.
var MetaKinds = []Kind{KindCounter, KindHash, KindTree}

// MarshalText encodes the kind as its String name, so JSON maps keyed
// by Kind serialize as {"counter": ..., "hash": ..., "tree": ...}
// rather than numeric codes.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText decodes a String-encoded kind.
func (k *Kind) UnmarshalText(text []byte) error {
	switch s := string(text); s {
	case "data":
		*k = KindData
	case "counter":
		*k = KindCounter
	case "hash":
		*k = KindHash
	case "tree":
		*k = KindTree
	default:
		return fmt.Errorf("memlayout: unknown kind %q", s)
	}
	return nil
}

// Addr is a physical byte address in the simulated memory. Block
// addresses are always BlockSize-aligned.
type Addr = uint64

// RootAddr is the sentinel address of the on-chip tree root. It is
// never stored in memory and never cached: it is always available.
const RootAddr Addr = ^Addr(0)

// Layout is the physical memory map for one secure-memory
// configuration. The address space is laid out as
//
//	[ data | counters | hashes | tree level 0 (leaves) | level 1 | ... ]
//
// with the topmost tree level having TreeArity or fewer blocks, whose
// digest is the on-chip root.
type Layout struct {
	org       Organization
	dataBytes uint64

	dataBlocks    uint64
	counterBlocks uint64
	hashBlocks    uint64

	counterOff uint64
	hashOff    uint64
	treeOff    []uint64 // per level, leaf = 0
	levelCount []uint64 // blocks per level
	totalBytes uint64

	// ctrShift is log2 of the organization's counter coverage, so the
	// per-access CounterAddr math is a shift instead of a divide.
	ctrShift uint
}

// New builds a layout covering dataBytes of protected data.
// dataBytes must be a positive multiple of PageSize.
func New(org Organization, dataBytes uint64) (*Layout, error) {
	if dataBytes == 0 {
		return nil, fmt.Errorf("memlayout: data size must be positive")
	}
	if dataBytes%PageSize != 0 {
		return nil, fmt.Errorf("memlayout: data size %d is not a multiple of the %d B page size", dataBytes, PageSize)
	}
	l := &Layout{org: org, dataBytes: dataBytes}
	l.dataBlocks = dataBytes / BlockSize
	l.counterBlocks = dataBytes / org.CounterCoverage()
	l.ctrShift = uint(bits.TrailingZeros64(org.CounterCoverage()))
	l.hashBlocks = ceilDiv(l.dataBlocks, HashesPerBlock)

	l.counterOff = dataBytes
	l.hashOff = l.counterOff + l.counterBlocks*BlockSize
	off := l.hashOff + l.hashBlocks*BlockSize

	// Build tree levels bottom-up over the counter blocks. Level 0
	// holds one 8 B HMAC per counter block. We stop once a level fits
	// in TreeArity blocks or fewer; the on-chip root covers that
	// level directly.
	children := l.counterBlocks
	for {
		blocks := ceilDiv(children, TreeArity)
		l.treeOff = append(l.treeOff, off)
		l.levelCount = append(l.levelCount, blocks)
		off += blocks * BlockSize
		if blocks == 1 {
			break
		}
		children = blocks
	}
	l.totalBytes = off
	return l, nil
}

// MustNew is New but panics on error; for tests and fixed configs.
func MustNew(org Organization, dataBytes uint64) *Layout {
	l, err := New(org, dataBytes)
	if err != nil {
		panic(err)
	}
	return l
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// Organization reports the counter scheme of this layout.
func (l *Layout) Organization() Organization { return l.org }

// DataBytes reports the protected data capacity.
func (l *Layout) DataBytes() uint64 { return l.dataBytes }

// TotalBytes reports the full physical footprint: data plus all
// metadata regions.
func (l *Layout) TotalBytes() uint64 { return l.totalBytes }

// MetadataBytes reports the space consumed by metadata alone.
func (l *Layout) MetadataBytes() uint64 { return l.totalBytes - l.dataBytes }

// CounterBlocks reports the number of 64 B counter blocks.
func (l *Layout) CounterBlocks() uint64 { return l.counterBlocks }

// HashBlocks reports the number of 64 B data-hash blocks.
func (l *Layout) HashBlocks() uint64 { return l.hashBlocks }

// TreeLevels reports the number of tree levels stored in memory
// (level 0 = leaves). The root above the top level is on chip.
func (l *Layout) TreeLevels() int { return len(l.treeOff) }

// TreeLevelBlocks reports the number of node blocks at a level.
func (l *Layout) TreeLevelBlocks(level int) uint64 { return l.levelCount[level] }

// BlockOf returns the block-aligned address containing addr.
func BlockOf(addr Addr) Addr { return addr &^ (BlockSize - 1) }

// PageOf returns the page-aligned address containing addr.
func PageOf(addr Addr) Addr { return addr &^ (PageSize - 1) }

// Contains reports whether addr falls inside the data region.
func (l *Layout) Contains(addr Addr) bool { return addr < l.dataBytes }

// CounterAddr returns the address of the counter block protecting the
// data block at dataAddr.
func (l *Layout) CounterAddr(dataAddr Addr) Addr {
	l.checkData(dataAddr)
	idx := dataAddr >> l.ctrShift
	return l.counterOff + idx*BlockSize
}

// HashAddr returns the address of the hash block holding the data
// HMAC for the data block at dataAddr.
func (l *Layout) HashAddr(dataAddr Addr) Addr {
	l.checkData(dataAddr)
	idx := dataAddr / (HashesPerBlock * BlockSize)
	return l.hashOff + idx*BlockSize
}

// HashSlot returns the 0..7 index of dataAddr's HMAC within its hash
// block.
func (l *Layout) HashSlot(dataAddr Addr) int {
	return int(dataAddr / BlockSize % HashesPerBlock)
}

// CounterSlot returns the index of dataAddr's counter within its
// counter block: the per-block minor counter index for PoisonIvy
// (0..63) or the 8 B counter index for SGX (0..7).
func (l *Layout) CounterSlot(dataAddr Addr) int {
	if l.org == SGX {
		return int(dataAddr / BlockSize % HashesPerBlock)
	}
	return int(dataAddr / BlockSize % BlocksPerPage)
}

// TreeAddr returns the address of tree node idx at the given level.
func (l *Layout) TreeAddr(level int, idx uint64) Addr {
	if level < 0 || level >= len(l.treeOff) {
		panic(fmt.Sprintf("memlayout: tree level %d out of range [0,%d)", level, len(l.treeOff)))
	}
	if idx >= l.levelCount[level] {
		panic(fmt.Sprintf("memlayout: tree index %d out of range at level %d (have %d)", idx, level, l.levelCount[level]))
	}
	return l.treeOff[level] + idx*BlockSize
}

// TreeLeafFor returns the address of the level-0 tree node whose
// HMACs cover the given counter block.
func (l *Layout) TreeLeafFor(counterAddr Addr) Addr {
	idx, ok := l.counterIndex(counterAddr)
	if !ok {
		panic(fmt.Sprintf("memlayout: %#x is not a counter block address", counterAddr))
	}
	return l.TreeAddr(0, idx/TreeArity)
}

// Parent returns the tree node (or RootAddr) that holds the HMAC
// protecting the given counter or tree block.
func (l *Layout) Parent(addr Addr) Addr {
	if idx, ok := l.counterIndex(addr); ok {
		return l.TreeAddr(0, idx/TreeArity)
	}
	level, idx, ok := l.treeIndex(addr)
	if !ok {
		panic(fmt.Sprintf("memlayout: %#x has no tree parent", addr))
	}
	if level == len(l.treeOff)-1 {
		return RootAddr
	}
	return l.TreeAddr(level+1, idx/TreeArity)
}

// ChildSlot returns which of its parent's HashesPerBlock HMAC slots
// protects the given counter or tree block.
func (l *Layout) ChildSlot(addr Addr) int {
	if idx, ok := l.counterIndex(addr); ok {
		return int(idx % TreeArity)
	}
	_, idx, ok := l.treeIndex(addr)
	if !ok {
		panic(fmt.Sprintf("memlayout: %#x has no parent slot", addr))
	}
	return int(idx % TreeArity)
}

// ParentInfo returns the parent of a counter or tree block together
// with the parent's tree level and the child's HMAC slot, from a
// single address decode. It is the fused form of Parent + Classify +
// ChildSlot for the engine's tree-update path, where the three
// separate calls each re-derived the node's (level, index) pair.
func (l *Layout) ParentInfo(addr Addr) (parent Addr, level int, slot int) {
	if idx, ok := l.counterIndex(addr); ok {
		return l.TreeAddr(0, idx/TreeArity), 0, int(idx % TreeArity)
	}
	lev, idx, ok := l.treeIndex(addr)
	if !ok {
		panic(fmt.Sprintf("memlayout: %#x has no tree parent", addr))
	}
	if lev == len(l.treeOff)-1 {
		return RootAddr, 0, int(idx % TreeArity)
	}
	return l.TreeAddr(lev+1, idx/TreeArity), lev + 1, int(idx % TreeArity)
}

// TreeWalk iterates the ancestor chain of a counter or tree block
// from its parent up to (not including) the on-chip root. The
// starting address is decoded once; each step is then a shift on the
// node index instead of a fresh address decode, which matters because
// the engine walks this chain on every metadata-cache counter miss.
type TreeWalk struct {
	l     *Layout
	level int
	idx   uint64
	done  bool
}

// WalkFrom starts a TreeWalk at the parent of the given counter or
// tree block address.
func (l *Layout) WalkFrom(addr Addr) TreeWalk {
	if idx, ok := l.counterIndex(addr); ok {
		return TreeWalk{l: l, level: 0, idx: idx / TreeArity}
	}
	lev, idx, ok := l.treeIndex(addr)
	if !ok {
		panic(fmt.Sprintf("memlayout: %#x has no tree parent", addr))
	}
	if lev == len(l.treeOff)-1 {
		return TreeWalk{done: true}
	}
	return TreeWalk{l: l, level: lev + 1, idx: idx / TreeArity}
}

// Next returns the next node in the chain and its level, or ok=false
// once the chain reaches the root.
func (w *TreeWalk) Next() (node Addr, level int, ok bool) {
	if w.done {
		return 0, 0, false
	}
	node = w.l.treeOff[w.level] + w.idx*BlockSize
	level = w.level
	if w.level == len(w.l.treeOff)-1 {
		w.done = true
	} else {
		w.level++
		w.idx /= TreeArity
	}
	return node, level, true
}

// VerifyChain returns the tree node addresses needed to verify the
// given counter block, ordered leaf to top in-memory level. The
// on-chip root (RootAddr) is not included.
func (l *Layout) VerifyChain(counterAddr Addr) []Addr {
	chain := make([]Addr, 0, len(l.treeOff))
	node := l.Parent(counterAddr)
	for node != RootAddr {
		chain = append(chain, node)
		node = l.Parent(node)
	}
	return chain
}

// Classify reports the kind of the block at addr and, for tree nodes,
// its level.
func (l *Layout) Classify(addr Addr) (kind Kind, level int) {
	switch {
	case addr < l.dataBytes:
		return KindData, 0
	case addr < l.hashOff:
		return KindCounter, 0
	case addr < l.treeOff[0]:
		return KindHash, 0
	default:
		lev, _, ok := l.treeIndex(addr)
		if !ok {
			panic(fmt.Sprintf("memlayout: address %#x is outside the layout (total %d)", addr, l.totalBytes))
		}
		return KindTree, lev
	}
}

// DataProtected returns the bytes of application data transitively
// protected by one 64 B block of the given kind (Table II). For
// KindTree, level 0 is the leaf level.
func (l *Layout) DataProtected(kind Kind, level int) uint64 {
	switch kind {
	case KindData:
		return BlockSize
	case KindCounter:
		return l.org.CounterCoverage()
	case KindHash:
		return HashesPerBlock * BlockSize
	case KindTree:
		cov := l.org.CounterCoverage() * TreeArity
		for i := 0; i < level; i++ {
			cov *= TreeArity
		}
		if cov > l.dataBytes {
			cov = l.dataBytes
		}
		return cov
	default:
		panic(fmt.Sprintf("memlayout: unknown kind %v", kind))
	}
}

// MetadataPerPage returns the number of metadata blocks (excluding
// tree nodes) needed to cover one 4 KB data page: the basis of the
// paper's 288 KB working-set marker for a 2 MB LLC.
func (l *Layout) MetadataPerPage() uint64 {
	counters := PageSize / l.org.CounterCoverage()
	if counters == 0 {
		counters = 1
	}
	hashes := uint64(PageSize / (HashesPerBlock * BlockSize))
	return counters + hashes
}

func (l *Layout) checkData(addr Addr) {
	if addr >= l.dataBytes {
		panic(fmt.Sprintf("memlayout: data address %#x out of range (data size %d)", addr, l.dataBytes))
	}
}

func (l *Layout) counterIndex(addr Addr) (uint64, bool) {
	if addr < l.counterOff || addr >= l.hashOff {
		return 0, false
	}
	return (addr - l.counterOff) / BlockSize, true
}

func (l *Layout) treeIndex(addr Addr) (level int, idx uint64, ok bool) {
	if addr < l.treeOff[0] || addr >= l.totalBytes {
		return 0, 0, false
	}
	for lev := len(l.treeOff) - 1; lev >= 0; lev-- {
		if addr >= l.treeOff[lev] {
			return lev, (addr - l.treeOff[lev]) / BlockSize, true
		}
	}
	return 0, 0, false
}
