package metacache

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/partition"
)

func TestContentPolicyAllows(t *testing.T) {
	if !AllTypes.Allows(memlayout.KindCounter) || !AllTypes.Allows(memlayout.KindHash) || !AllTypes.Allows(memlayout.KindTree) {
		t.Error("AllTypes should allow everything")
	}
	if CountersOnly.Allows(memlayout.KindHash) || CountersOnly.Allows(memlayout.KindTree) {
		t.Error("CountersOnly too permissive")
	}
	if !CountersHashes.Allows(memlayout.KindHash) || CountersHashes.Allows(memlayout.KindTree) {
		t.Error("CountersHashes wrong")
	}
	if AllTypes.Allows(memlayout.KindData) {
		t.Error("data should never be admitted")
	}
}

func TestContentPolicyStrings(t *testing.T) {
	names := map[ContentPolicy]string{
		CountersOnly: "counters", CountersHashes: "counters+hashes", AllTypes: "all",
		HashesOnly: "hashes", TreeOnly: "tree", CountersTree: "counters+tree", HashesTree: "hashes+tree",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p, want)
		}
	}
	if ContentPolicy(0).String() == "" {
		t.Error("zero policy should print something")
	}
}

func TestEncodeDecodeClass(t *testing.T) {
	for _, k := range []memlayout.Kind{memlayout.KindCounter, memlayout.KindHash, memlayout.KindTree} {
		for lev := 0; lev < 8; lev++ {
			gk, gl := DecodeClass(EncodeClass(k, lev))
			if gk != k || gl != lev {
				t.Fatalf("round trip (%v,%d) -> (%v,%d)", k, lev, gk, gl)
			}
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := MustNew(Config{Size: 16 << 10, Ways: 8})
	if m.Content() != AllTypes {
		t.Error("default content should be all types")
	}
	if m.PolicyName() != "plru" {
		t.Errorf("default policy = %s", m.PolicyName())
	}
	if m.Size() != 16<<10 {
		t.Errorf("size = %d", m.Size())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Size: 100, Ways: 8}); err == nil {
		t.Error("bad geometry accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(Config{Size: 1, Ways: 1})
}

func TestBypassedKindsAlwaysMiss(t *testing.T) {
	m := MustNew(Config{Size: 16 << 10, Ways: 8, Content: CountersOnly})
	for i := 0; i < 10; i++ {
		r := m.Access(1<<20, memlayout.KindHash, 0, false, 2)
		if r.Hit || r.TagHit {
			t.Fatal("bypassed hash hit the cache")
		}
	}
	hs := m.KindStats(memlayout.KindHash)
	if hs.Accesses != 10 || hs.Bypassed != 10 || hs.Misses != 0 || hs.Hits != 0 {
		t.Errorf("hash stats: %+v", hs)
	}
	if m.TotalStats().Bypassed != 10 {
		t.Errorf("total bypassed = %d", m.TotalStats().Bypassed)
	}
	// Counters cache normally.
	m.Access(0, memlayout.KindCounter, 0, false, -1)
	if r := m.Access(0, memlayout.KindCounter, 0, false, -1); !r.Hit {
		t.Error("counter should hit on reuse")
	}
}

func TestPerKindStatsAndTotal(t *testing.T) {
	m := MustNew(Config{Size: 16 << 10, Ways: 8})
	m.Access(0, memlayout.KindCounter, 0, false, -1)
	m.Access(0, memlayout.KindCounter, 0, false, -1)
	m.Access(64, memlayout.KindHash, 0, false, 0)
	m.Access(128, memlayout.KindTree, 2, false, 1)
	tot := m.TotalStats()
	if tot.Accesses != 4 || tot.Hits != 1 || tot.Misses != 3 {
		t.Errorf("total: %+v", tot)
	}
	if m.KindStats(memlayout.KindTree).Accesses != 1 {
		t.Error("tree stats missing")
	}
	m.ResetStats()
	if m.TotalStats().Accesses != 0 {
		t.Error("reset failed")
	}
}

func TestPartialWriteLifecycle(t *testing.T) {
	m := MustNew(Config{Size: 2 * 64, Ways: 2, PartialWrites: true})
	// Hash write miss inserts a placeholder (no memory fetch needed:
	// Hit=false tells the engine it wrote without fetching).
	r := m.Access(0, memlayout.KindHash, 0, true, 3)
	if r.Hit || r.TagHit {
		t.Fatalf("placeholder insert reported %+v", r)
	}
	// Read of another slot is a tag hit but requires memory (partial
	// miss).
	r = m.Access(0, memlayout.KindHash, 0, false, 5)
	if !r.TagHit || r.Hit {
		t.Fatalf("partial read: %+v", r)
	}
	if m.KindStats(memlayout.KindHash).PartialMiss != 1 {
		t.Error("partial miss not counted")
	}
	// Displace the block: eviction must carry Partial=true (slots
	// never fully filled).
	m.Access(2<<20, memlayout.KindCounter, 0, true, -1)
	r = m.Access(4<<20, memlayout.KindCounter, 0, true, -1)
	found := false
	for _, ev := range r.Evicted {
		if ev.Kind == memlayout.KindHash {
			found = true
			if !ev.Partial {
				t.Error("partially-filled hash evicted without Partial flag")
			}
		}
	}
	if !found {
		t.Fatalf("expected hash eviction, got %+v", r.Evicted)
	}
}

func TestPartialWritesDisabledFetchesWholeBlock(t *testing.T) {
	m := MustNew(Config{Size: 2 * 64, Ways: 2, PartialWrites: false})
	r := m.Access(0, memlayout.KindHash, 0, true, 3)
	if r.Hit {
		t.Fatal("write miss cannot hit")
	}
	// Whole block present: reading another slot hits fully.
	r = m.Access(0, memlayout.KindHash, 0, false, 5)
	if !r.Hit {
		t.Error("full line should satisfy any slot")
	}
}

func TestEvictedDirtyOnly(t *testing.T) {
	m := MustNew(Config{Size: 2 * 64, Ways: 2})
	m.Access(0, memlayout.KindCounter, 0, false, -1)          // clean
	m.Access(1<<20, memlayout.KindCounter, 0, false, -1)      // clean
	r := m.Access(2<<20, memlayout.KindCounter, 0, false, -1) // evicts a clean line
	if len(r.Evicted) != 0 {
		t.Errorf("clean eviction surfaced: %+v", r.Evicted)
	}
	m.Access(3<<20, memlayout.KindCounter, 0, true, -1)
	r = m.Access(4<<20, memlayout.KindCounter, 0, false, -1)
	// One of the last two insertions may evict the dirty line.
	r2 := m.Access(5<<20, memlayout.KindCounter, 0, false, -1)
	total := len(r.Evicted) + len(r2.Evicted)
	if total == 0 {
		t.Error("dirty eviction never surfaced")
	}
}

func TestPartitionConstrainsOccupancy(t *testing.T) {
	m := MustNew(Config{
		Size: 8 * 64, Ways: 8,
		Policy:    policy.NewLRU(),
		Partition: partition.NewStatic(2),
	})
	for i := uint64(0); i < 8; i++ {
		m.Access(i*64*1024, memlayout.KindCounter, 0, false, -1)
	}
	for i := uint64(100); i < 108; i++ {
		m.Access(i*64*1024, memlayout.KindHash, 0, false, -1)
	}
	if got := m.Occupancy(int(memlayout.KindCounter)); got != 2 {
		t.Errorf("counters occupy %d ways, want 2", got)
	}
	if got := m.Occupancy(int(memlayout.KindHash)); got != 6 {
		t.Errorf("hashes occupy %d ways, want 6", got)
	}
	if m.Occupancy(-1) != 8 {
		t.Error("total occupancy wrong")
	}
}

func TestTreeLevelsTracked(t *testing.T) {
	m := MustNew(Config{Size: 16 << 10, Ways: 8})
	m.Access(0, memlayout.KindTree, 3, true, -1)
	ev := m.Flush()
	if len(ev) != 1 || ev[0].Kind != memlayout.KindTree || ev[0].Level != 3 {
		t.Errorf("flush = %+v", ev)
	}
}

func TestCacheStatsExposed(t *testing.T) {
	m := MustNew(Config{Size: 16 << 10, Ways: 8})
	m.Access(0, memlayout.KindCounter, 0, false, -1)
	if m.CacheStats().Accesses != 1 {
		t.Error("cache stats not exposed")
	}
}

func TestLevelStats(t *testing.T) {
	m := MustNew(Config{Size: 16 << 10, Ways: 8})
	m.Access(0, memlayout.KindTree, 0, false, -1)
	m.Access(0, memlayout.KindTree, 0, false, -1)
	m.Access(64, memlayout.KindTree, 2, false, -1)
	l0 := m.LevelStats(0)
	if l0.Accesses != 2 || l0.Hits != 1 || l0.Misses != 1 {
		t.Errorf("level 0: %+v", l0)
	}
	l2 := m.LevelStats(2)
	if l2.Accesses != 1 || l2.Misses != 1 {
		t.Errorf("level 2: %+v", l2)
	}
	if m.LevelStats(5).Accesses != 0 {
		t.Error("untouched level has counts")
	}
	// Counter accesses must not pollute level stats.
	m.Access(128, memlayout.KindCounter, 0, false, -1)
	if m.LevelStats(0).Accesses != 2 {
		t.Error("counter access leaked into tree level stats")
	}
	m.ResetStats()
	if m.LevelStats(0).Accesses != 0 {
		t.Error("level stats not reset")
	}
}

func TestLevelStatsBypassed(t *testing.T) {
	m := MustNew(Config{Size: 16 << 10, Ways: 8, Content: CountersOnly})
	m.Access(0, memlayout.KindTree, 1, false, -1)
	l1 := m.LevelStats(1)
	if l1.Accesses != 1 || l1.Bypassed != 1 || l1.Misses != 0 {
		t.Errorf("bypassed level stats: %+v", l1)
	}
}
