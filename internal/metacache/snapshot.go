package metacache

import "github.com/maps-sim/mapsim/internal/partition"

// Cloneable reports whether the metadata cache can be snapshotted for
// epoch-parallel simulation: it must have no way partitioning (schemes
// carry per-set learning state with no clone contract) and its
// replacement policy must be cloneable whenever the underlying cache
// needs a private copy.
func (m *MetaCache) Cloneable() bool {
	_, ok := m.Clone()
	return ok
}

// Clone returns an independent metadata cache continuing from the
// current contents with all statistics zeroed, or false when the
// configuration is not Cloneable.
func (m *MetaCache) Clone() (*MetaCache, bool) {
	if !m.noPartition {
		return nil, false
	}
	cc, ok := m.c.Clone()
	if !ok {
		return nil, false
	}
	if m.observer != nil && cc.Policy() == m.cfg.Policy {
		// The policy observes every access but the cache kept the
		// shared instance (inline path): the copies would race on it.
		return nil, false
	}
	n := &MetaCache{cfg: m.cfg, c: cc}
	// The clone's config points at the cloned policy (and a fresh
	// stateless partition) so nothing mutable is shared.
	n.cfg.Policy = cc.Policy()
	n.cfg.Partition = partition.NewNone()
	n.cfg.Partition.Reset(cc.Sets(), m.cfg.Ways)
	n.observer, _ = n.cfg.Policy.(classObserver)
	n.noPartition = m.noPartition
	n.fullMask = m.fullMask
	n.allow = m.allow
	n.partialOK = m.partialOK
	return n, true
}

// Fingerprint digests the cache's behavioral state (see
// cache.Cache.Fingerprint for the convergence contract).
func (m *MetaCache) Fingerprint() uint64 { return m.c.Fingerprint() }
