// Package metacache implements the on-chip metadata cache at the
// heart of MAPS: a set-associative cache shared by encryption
// counters, data hashes, and integrity-tree nodes, with configurable
// content policies (which types may be cached), partial writes for
// hash/tree blocks, way partitioning, and per-type statistics.
package metacache

import (
	"fmt"
	"strings"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/partition"
)

// ContentPolicy is a bitmask of metadata kinds the cache may hold.
// Accesses to excluded kinds bypass the cache and always go to
// memory.
type ContentPolicy uint8

// Content bits.
const (
	Counters ContentPolicy = 1 << iota
	Hashes
	TreeNodes
)

// Named combinations studied in Figure 1 (and the text's "other
// configurations").
const (
	CountersOnly   = Counters
	CountersHashes = Counters | Hashes
	AllTypes       = Counters | Hashes | TreeNodes
	HashesOnly     = Hashes
	TreeOnly       = TreeNodes
	CountersTree   = Counters | TreeNodes
	HashesTree     = Hashes | TreeNodes
)

// Allows reports whether the policy admits a kind.
func (p ContentPolicy) Allows(kind memlayout.Kind) bool {
	switch kind {
	case memlayout.KindCounter:
		return p&Counters != 0
	case memlayout.KindHash:
		return p&Hashes != 0
	case memlayout.KindTree:
		return p&TreeNodes != 0
	default:
		return false
	}
}

// String names the policy as in Figure 1's legend.
func (p ContentPolicy) String() string {
	switch p {
	case CountersOnly:
		return "counters"
	case CountersHashes:
		return "counters+hashes"
	case AllTypes:
		return "all"
	case HashesOnly:
		return "hashes"
	case TreeOnly:
		return "tree"
	case CountersTree:
		return "counters+tree"
	case HashesTree:
		return "hashes+tree"
	default:
		return fmt.Sprintf("ContentPolicy(%#x)", uint8(p))
	}
}

// ParseContent resolves a content-policy name ("counters",
// "counters+hashes", "all", "hashes", "tree", "counters+tree",
// "hashes+tree") — the inverse of String. The CLI flags and the
// mapsd wire format share it.
func ParseContent(name string) (ContentPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "counters":
		return CountersOnly, nil
	case "counters+hashes":
		return CountersHashes, nil
	case "all", "":
		return AllTypes, nil
	case "hashes":
		return HashesOnly, nil
	case "tree":
		return TreeOnly, nil
	case "counters+tree":
		return CountersTree, nil
	case "hashes+tree":
		return HashesTree, nil
	default:
		return 0, fmt.Errorf("metacache: unknown content policy %q", name)
	}
}

// EncodeClass packs a metadata kind and tree level into the cache
// framework's class byte.
func EncodeClass(kind memlayout.Kind, level int) uint8 {
	return uint8(kind)<<4 | uint8(level&0xF)
}

// DecodeClass unpacks EncodeClass.
func DecodeClass(c uint8) (memlayout.Kind, int) {
	return memlayout.Kind(c >> 4), int(c & 0xF)
}

// Config assembles a metadata cache.
type Config struct {
	// Size is the capacity in bytes; Ways the associativity.
	Size, Ways int
	// Policy is the replacement policy; nil selects pseudo-LRU, the
	// paper's baseline.
	Policy cache.Policy
	// Content selects which kinds may be cached; zero means all.
	Content ContentPolicy
	// PartialWrites enables placeholder insertion for hash and tree
	// write misses (§IV-E).
	PartialWrites bool
	// Partition constrains counter/hash placement; nil means none.
	Partition partition.Scheme
	// DisableFastPath wraps the policy with policy.Generic so the
	// underlying cache cannot devirtualize it. Results are
	// bit-identical by contract; the cross-check tests use this to
	// prove it.
	DisableFastPath bool
}

// KindStats counts per-kind activity. Accesses = Hits + Misses +
// Bypassed: requests for kinds the content policy excludes never
// enter the cache, so — matching the paper's Figure 1 metric — they
// are tracked as Bypassed rather than Misses (they still cost a
// memory access, which the engine's traffic counters capture).
type KindStats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Bypassed    uint64
	PartialMiss uint64
}

// Result reports one metadata access.
type Result struct {
	// Hit means no memory access is needed for this block: tag hit
	// and, when slot-addressed, the slot held data.
	Hit bool
	// TagHit means the block was present (even if the slot wasn't
	// filled).
	TagHit bool
	// Evicted lists dirty blocks displaced by this access that the
	// memory controller must now write back (and whose tree updates
	// it must perform).
	Evicted []Evicted
}

// Evicted describes a displaced dirty block.
type Evicted struct {
	Addr  uint64
	Kind  memlayout.Kind
	Level int
	// Partial reports an incompletely-filled hash/tree block; the
	// writeback needs one fill read first.
	Partial bool
}

// MetaCache is the type-aware metadata cache.
type MetaCache struct {
	cfg      Config
	c        *cache.Cache
	perKind  [4]KindStats
	perLevel [16]KindStats // tree accesses split by level
	scratch  []Evicted

	// Per-access invariants resolved once at New: the policy's
	// optional class observer, whether the partition scheme is the
	// no-op None (whose mask is constant and observer empty), and the
	// content/partial-write policies flattened into per-kind tables —
	// the Access wrapper's bookkeeping showed up in profiles alongside
	// the cache probe itself.
	observer    classObserver
	noPartition bool
	fullMask    uint64
	allow       [4]bool
	partialOK   [4]bool
}

// classObserver is the optional per-class learning hook type-aware
// policies implement; detected once instead of asserted per access.
type classObserver interface{ Observe(class uint8, write bool) }

// New builds a metadata cache.
func New(cfg Config) (*MetaCache, error) {
	if cfg.Policy == nil {
		cfg.Policy = policy.NewPLRU()
	}
	if cfg.DisableFastPath {
		cfg.Policy = policy.Generic(cfg.Policy)
	}
	if cfg.Content == 0 {
		cfg.Content = AllTypes
	}
	c, err := cache.New(cfg.Size, cfg.Ways, cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("metacache: %w", err)
	}
	if cfg.Partition == nil {
		cfg.Partition = partition.NewNone()
	}
	cfg.Partition.Reset(c.Sets(), cfg.Ways)
	m := &MetaCache{cfg: cfg, c: c}
	m.observer, _ = cfg.Policy.(classObserver)
	if _, none := cfg.Partition.(*partition.None); none {
		m.noPartition = true
		m.fullMask = cfg.Partition.AllowedMask(0, memlayout.KindCounter)
	}
	for _, k := range memlayout.MetaKinds {
		m.allow[k] = cfg.Content.Allows(k)
	}
	if cfg.PartialWrites {
		m.partialOK[memlayout.KindHash] = true
		m.partialOK[memlayout.KindTree] = true
	}
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *MetaCache {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Size reports capacity in bytes.
func (m *MetaCache) Size() int { return m.c.SizeBytes() }

// Content reports the content policy.
func (m *MetaCache) Content() ContentPolicy { return m.cfg.Content }

// PolicyName reports the replacement policy name.
func (m *MetaCache) PolicyName() string { return m.cfg.Policy.Name() }

// PartialWrites reports whether write-miss placeholders are enabled.
func (m *MetaCache) PartialWrites() bool { return m.cfg.PartialWrites }

// Allows reports whether the content policy admits a kind.
func (m *MetaCache) Allows(kind memlayout.Kind) bool { return m.cfg.Content.Allows(kind) }

// fillAccesses derives the access total from its disjoint components;
// the hot path maintains only the components (one fewer counter
// update per access).
func fillAccesses(s KindStats) KindStats {
	s.Accesses = s.Hits + s.Misses + s.Bypassed
	return s
}

// KindStats returns per-kind counters.
func (m *MetaCache) KindStats(kind memlayout.Kind) KindStats { return fillAccesses(m.perKind[kind]) }

// LevelStats returns the counters for tree accesses at one level
// (leaf = 0). The paper's observation that upper levels cache better
// (they cover more data) is directly visible here.
func (m *MetaCache) LevelStats(level int) KindStats { return fillAccesses(m.perLevel[level&0xF]) }

// TotalStats sums the per-kind counters over metadata kinds.
func (m *MetaCache) TotalStats() KindStats {
	var t KindStats
	for _, k := range memlayout.MetaKinds {
		s := fillAccesses(m.perKind[k])
		t.Accesses += s.Accesses
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Bypassed += s.Bypassed
		t.PartialMiss += s.PartialMiss
	}
	return t
}

// CacheStats exposes the underlying cache counters.
func (m *MetaCache) CacheStats() cache.Stats { return m.c.Stats() }

// ResetStats zeroes all statistics (contents persist), for warmup.
func (m *MetaCache) ResetStats() {
	m.perKind = [4]KindStats{}
	m.perLevel = [16]KindStats{}
	m.c.ResetStats()
}

// Occupancy counts resident lines of one kind (-1 for all).
func (m *MetaCache) Occupancy(kind int) int {
	if kind < 0 {
		return m.c.Occupancy(-1)
	}
	n := 0
	for level := 0; level < 16; level++ {
		n += m.c.Occupancy(int(EncodeClass(memlayout.Kind(kind), level)))
	}
	return n
}

// Access performs one metadata access. slot addresses an 8 B entry
// within the block for hash/tree partial-write tracking; pass -1 for
// whole-block semantics (counters). The returned Evicted slice is
// reused across calls.
func (m *MetaCache) Access(addr uint64, kind memlayout.Kind, level int, write bool, slot int) Result {
	st := &m.perKind[kind]
	var lv *KindStats
	if kind == memlayout.KindTree {
		lv = &m.perLevel[level&0xF]
	}

	if !m.allow[kind] {
		st.Bypassed++
		if lv != nil {
			lv.Bypassed++
		}
		return Result{}
	}

	// Type-aware predictors learn from the (kind, level, request
	// type) signature of each access.
	if m.observer != nil {
		m.observer.Observe(EncodeClass(kind, level), write)
	}

	var set int
	var allowed uint64
	if m.noPartition {
		allowed = m.fullMask
	} else {
		set = m.c.SetOf(addr)
		allowed = m.cfg.Partition.AllowedMask(set, kind)
	}

	// Both branches produce the same register-friendly tuple: evFlags
	// is the displaced dirty line's packed flags word, zero when none.
	var tagHit, slotValid bool
	var evAddr, evFlags uint64
	if partial := m.partialOK[kind] && slot >= 0; !partial {
		// Whole-block accesses (counters, tree verification, and all
		// traffic when partial writes are off) skip the Options/Result
		// struct boundary of the general cache entry point.
		tagHit, evAddr, evFlags = m.c.FastAccessClassed(addr, write, EncodeClass(kind, level), allowed)
		slotValid = tagHit
	} else {
		res := m.c.Access(addr, write, cache.Options{
			Class:   EncodeClass(kind, level),
			Slot:    slot,
			Partial: partial,
			Allowed: allowed,
		})
		tagHit, slotValid = res.Hit, res.SlotValid
		if res.Evicted.Valid && res.Evicted.Dirty {
			evAddr = res.Evicted.Addr
			evFlags = packFlagsWord(res.Evicted.Class, res.Evicted.ValidMask)
		}
	}

	if !m.noPartition {
		m.cfg.Partition.Observe(set, kind, tagHit)
	}

	out := Result{TagHit: tagHit, Hit: tagHit && slotValid}
	if tagHit {
		st.Hits++
		if !slotValid {
			st.PartialMiss++
		}
	} else {
		st.Misses++
	}
	if lv != nil {
		if tagHit {
			lv.Hits++
			if !slotValid {
				lv.PartialMiss++
			}
		} else {
			lv.Misses++
		}
	}
	if evFlags != 0 {
		m.scratch = m.scratch[:0]
		k, lev := DecodeClass(uint8(evFlags >> 16))
		m.scratch = append(m.scratch, Evicted{
			Addr:    evAddr,
			Kind:    k,
			Level:   lev,
			Partial: uint8(evFlags>>8) != cache.FullMask,
		})
		out.Evicted = m.scratch
	}
	return out
}

// packFlagsWord mirrors the cache's packed flags layout
// (Class<<16 | ValidMask<<8 | dirty) for the slow-path branch above.
func packFlagsWord(class, vmask uint8) uint64 {
	return uint64(class)<<16 | uint64(vmask)<<8 | 1
}

// Flush evicts everything, returning the dirty blocks for final
// writeback accounting.
func (m *MetaCache) Flush() []Evicted {
	var out []Evicted
	for _, l := range m.c.Flush() {
		k, lev := DecodeClass(l.Class)
		out = append(out, Evicted{
			Addr:    l.Addr,
			Kind:    k,
			Level:   lev,
			Partial: l.ValidMask != cache.FullMask,
		})
	}
	return out
}
