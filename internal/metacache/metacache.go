// Package metacache implements the on-chip metadata cache at the
// heart of MAPS: a set-associative cache shared by encryption
// counters, data hashes, and integrity-tree nodes, with configurable
// content policies (which types may be cached), partial writes for
// hash/tree blocks, way partitioning, and per-type statistics.
package metacache

import (
	"fmt"
	"strings"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/partition"
)

// ContentPolicy is a bitmask of metadata kinds the cache may hold.
// Accesses to excluded kinds bypass the cache and always go to
// memory.
type ContentPolicy uint8

// Content bits.
const (
	Counters ContentPolicy = 1 << iota
	Hashes
	TreeNodes
)

// Named combinations studied in Figure 1 (and the text's "other
// configurations").
const (
	CountersOnly   = Counters
	CountersHashes = Counters | Hashes
	AllTypes       = Counters | Hashes | TreeNodes
	HashesOnly     = Hashes
	TreeOnly       = TreeNodes
	CountersTree   = Counters | TreeNodes
	HashesTree     = Hashes | TreeNodes
)

// Allows reports whether the policy admits a kind.
func (p ContentPolicy) Allows(kind memlayout.Kind) bool {
	switch kind {
	case memlayout.KindCounter:
		return p&Counters != 0
	case memlayout.KindHash:
		return p&Hashes != 0
	case memlayout.KindTree:
		return p&TreeNodes != 0
	default:
		return false
	}
}

// String names the policy as in Figure 1's legend.
func (p ContentPolicy) String() string {
	switch p {
	case CountersOnly:
		return "counters"
	case CountersHashes:
		return "counters+hashes"
	case AllTypes:
		return "all"
	case HashesOnly:
		return "hashes"
	case TreeOnly:
		return "tree"
	case CountersTree:
		return "counters+tree"
	case HashesTree:
		return "hashes+tree"
	default:
		return fmt.Sprintf("ContentPolicy(%#x)", uint8(p))
	}
}

// ParseContent resolves a content-policy name ("counters",
// "counters+hashes", "all", "hashes", "tree", "counters+tree",
// "hashes+tree") — the inverse of String. The CLI flags and the
// mapsd wire format share it.
func ParseContent(name string) (ContentPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "counters":
		return CountersOnly, nil
	case "counters+hashes":
		return CountersHashes, nil
	case "all", "":
		return AllTypes, nil
	case "hashes":
		return HashesOnly, nil
	case "tree":
		return TreeOnly, nil
	case "counters+tree":
		return CountersTree, nil
	case "hashes+tree":
		return HashesTree, nil
	default:
		return 0, fmt.Errorf("metacache: unknown content policy %q", name)
	}
}

// EncodeClass packs a metadata kind and tree level into the cache
// framework's class byte.
func EncodeClass(kind memlayout.Kind, level int) uint8 {
	return uint8(kind)<<4 | uint8(level&0xF)
}

// DecodeClass unpacks EncodeClass.
func DecodeClass(c uint8) (memlayout.Kind, int) {
	return memlayout.Kind(c >> 4), int(c & 0xF)
}

// Config assembles a metadata cache.
type Config struct {
	// Size is the capacity in bytes; Ways the associativity.
	Size, Ways int
	// Policy is the replacement policy; nil selects pseudo-LRU, the
	// paper's baseline.
	Policy cache.Policy
	// Content selects which kinds may be cached; zero means all.
	Content ContentPolicy
	// PartialWrites enables placeholder insertion for hash and tree
	// write misses (§IV-E).
	PartialWrites bool
	// Partition constrains counter/hash placement; nil means none.
	Partition partition.Scheme
}

// KindStats counts per-kind activity. Accesses = Hits + Misses +
// Bypassed: requests for kinds the content policy excludes never
// enter the cache, so — matching the paper's Figure 1 metric — they
// are tracked as Bypassed rather than Misses (they still cost a
// memory access, which the engine's traffic counters capture).
type KindStats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	Bypassed    uint64
	PartialMiss uint64
}

// Result reports one metadata access.
type Result struct {
	// Hit means no memory access is needed for this block: tag hit
	// and, when slot-addressed, the slot held data.
	Hit bool
	// TagHit means the block was present (even if the slot wasn't
	// filled).
	TagHit bool
	// Evicted lists dirty blocks displaced by this access that the
	// memory controller must now write back (and whose tree updates
	// it must perform).
	Evicted []Evicted
}

// Evicted describes a displaced dirty block.
type Evicted struct {
	Addr  uint64
	Kind  memlayout.Kind
	Level int
	// Partial reports an incompletely-filled hash/tree block; the
	// writeback needs one fill read first.
	Partial bool
}

// MetaCache is the type-aware metadata cache.
type MetaCache struct {
	cfg      Config
	c        *cache.Cache
	perKind  [4]KindStats
	perLevel [16]KindStats // tree accesses split by level
	scratch  []Evicted
}

// New builds a metadata cache.
func New(cfg Config) (*MetaCache, error) {
	if cfg.Policy == nil {
		cfg.Policy = policy.NewPLRU()
	}
	if cfg.Content == 0 {
		cfg.Content = AllTypes
	}
	c, err := cache.New(cfg.Size, cfg.Ways, cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("metacache: %w", err)
	}
	if cfg.Partition == nil {
		cfg.Partition = partition.NewNone()
	}
	cfg.Partition.Reset(c.Sets(), cfg.Ways)
	return &MetaCache{cfg: cfg, c: c}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *MetaCache {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Size reports capacity in bytes.
func (m *MetaCache) Size() int { return m.c.SizeBytes() }

// Content reports the content policy.
func (m *MetaCache) Content() ContentPolicy { return m.cfg.Content }

// PolicyName reports the replacement policy name.
func (m *MetaCache) PolicyName() string { return m.cfg.Policy.Name() }

// PartialWrites reports whether write-miss placeholders are enabled.
func (m *MetaCache) PartialWrites() bool { return m.cfg.PartialWrites }

// Allows reports whether the content policy admits a kind.
func (m *MetaCache) Allows(kind memlayout.Kind) bool { return m.cfg.Content.Allows(kind) }

// KindStats returns per-kind counters.
func (m *MetaCache) KindStats(kind memlayout.Kind) KindStats { return m.perKind[kind] }

// LevelStats returns the counters for tree accesses at one level
// (leaf = 0). The paper's observation that upper levels cache better
// (they cover more data) is directly visible here.
func (m *MetaCache) LevelStats(level int) KindStats { return m.perLevel[level&0xF] }

// TotalStats sums the per-kind counters over metadata kinds.
func (m *MetaCache) TotalStats() KindStats {
	var t KindStats
	for _, k := range memlayout.MetaKinds {
		s := m.perKind[k]
		t.Accesses += s.Accesses
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Bypassed += s.Bypassed
		t.PartialMiss += s.PartialMiss
	}
	return t
}

// CacheStats exposes the underlying cache counters.
func (m *MetaCache) CacheStats() cache.Stats { return m.c.Stats() }

// ResetStats zeroes all statistics (contents persist), for warmup.
func (m *MetaCache) ResetStats() {
	m.perKind = [4]KindStats{}
	m.perLevel = [16]KindStats{}
	m.c.ResetStats()
}

// Occupancy counts resident lines of one kind (-1 for all).
func (m *MetaCache) Occupancy(kind int) int {
	if kind < 0 {
		return m.c.Occupancy(-1)
	}
	n := 0
	for level := 0; level < 16; level++ {
		n += m.c.Occupancy(int(EncodeClass(memlayout.Kind(kind), level)))
	}
	return n
}

// Access performs one metadata access. slot addresses an 8 B entry
// within the block for hash/tree partial-write tracking; pass -1 for
// whole-block semantics (counters). The returned Evicted slice is
// reused across calls.
func (m *MetaCache) Access(addr uint64, kind memlayout.Kind, level int, write bool, slot int) Result {
	st := &m.perKind[kind]
	st.Accesses++
	var lv *KindStats
	if kind == memlayout.KindTree {
		lv = &m.perLevel[level&0xF]
		lv.Accesses++
	}

	if !m.cfg.Content.Allows(kind) {
		st.Bypassed++
		if lv != nil {
			lv.Bypassed++
		}
		return Result{}
	}

	// Type-aware predictors learn from the (kind, level, request
	// type) signature of each access.
	if obs, ok := m.cfg.Policy.(interface{ Observe(class uint8, write bool) }); ok {
		obs.Observe(EncodeClass(kind, level), write)
	}

	set := m.c.SetOf(addr)
	allowed := m.cfg.Partition.AllowedMask(set, kind)

	partial := m.cfg.PartialWrites && slot >= 0 &&
		(kind == memlayout.KindHash || kind == memlayout.KindTree)
	if !partial {
		slot = -1
	}
	res := m.c.Access(addr, write, cache.Options{
		Class:   EncodeClass(kind, level),
		Slot:    slot,
		Partial: partial,
		Allowed: allowed,
	})

	m.cfg.Partition.Observe(set, kind, res.Hit)

	out := Result{TagHit: res.Hit, Hit: res.Hit && res.SlotValid}
	if res.Hit {
		st.Hits++
		if !res.SlotValid {
			st.PartialMiss++
		}
	} else {
		st.Misses++
	}
	if lv != nil {
		if res.Hit {
			lv.Hits++
			if !res.SlotValid {
				lv.PartialMiss++
			}
		} else {
			lv.Misses++
		}
	}
	if res.Evicted.Valid && res.Evicted.Dirty {
		m.scratch = m.scratch[:0]
		k, lev := DecodeClass(res.Evicted.Class)
		m.scratch = append(m.scratch, Evicted{
			Addr:    res.Evicted.Addr,
			Kind:    k,
			Level:   lev,
			Partial: res.Evicted.ValidMask != cache.FullMask,
		})
		out.Evicted = m.scratch
	}
	return out
}

// Flush evicts everything, returning the dirty blocks for final
// writeback accounting.
func (m *MetaCache) Flush() []Evicted {
	var out []Evicted
	for _, l := range m.c.Flush() {
		k, lev := DecodeClass(l.Class)
		out = append(out, Evicted{
			Addr:    l.Addr,
			Kind:    k,
			Level:   lev,
			Partial: l.ValidMask != cache.FullMask,
		})
	}
	return out
}
