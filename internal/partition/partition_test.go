package partition

import (
	"math/bits"
	"testing"

	"github.com/maps-sim/mapsim/internal/memlayout"
)

func TestNoneAllowsEverything(t *testing.T) {
	n := NewNone()
	n.Reset(64, 8)
	for _, k := range []memlayout.Kind{memlayout.KindCounter, memlayout.KindHash, memlayout.KindTree} {
		if got := n.AllowedMask(3, k); got != 0xFF {
			t.Errorf("mask for %v = %#x", k, got)
		}
	}
	if n.Name() != "none" {
		t.Error("name")
	}
	n.Observe(0, memlayout.KindCounter, false) // must not panic
}

func TestFullMaskWide(t *testing.T) {
	if fullMask(64) != ^uint64(0) {
		t.Error("64-way mask wrong")
	}
	if fullMask(8) != 0xFF {
		t.Error("8-way mask wrong")
	}
}

func TestStaticSplit(t *testing.T) {
	s := NewStatic(3)
	s.Reset(16, 8)
	c := s.AllowedMask(0, memlayout.KindCounter)
	h := s.AllowedMask(0, memlayout.KindHash)
	tr := s.AllowedMask(0, memlayout.KindTree)
	if c != 0b00000111 {
		t.Errorf("counter mask = %#b", c)
	}
	if h != 0b11111000 {
		t.Errorf("hash mask = %#b", h)
	}
	if c&h != 0 {
		t.Error("counter and hash masks overlap")
	}
	if tr != 0xFF {
		t.Errorf("tree mask = %#b, want unconstrained", tr)
	}
	if s.Name() != "static-3" || s.CounterWays() != 3 {
		t.Error("identity accessors wrong")
	}
}

func TestStaticRejectsDegenerateSplits(t *testing.T) {
	for _, w := range []int{0, 8, 9} {
		s := NewStatic(w)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("split %d accepted", w)
				}
			}()
			s.Reset(16, 8)
		}()
	}
}

func TestDynamicLeaderRoles(t *testing.T) {
	d := NewDynamic(2, 6)
	d.Reset(128, 8)
	if d.role(0) != 0 || d.role(1) != 1 || d.role(2) != 2 || d.role(32) != 0 {
		t.Error("leader set layout wrong")
	}
	// Leader A uses split 2, leader B split 6 regardless of PSEL.
	a := d.AllowedMask(0, memlayout.KindCounter)
	b := d.AllowedMask(1, memlayout.KindCounter)
	if bits.OnesCount64(a) != 2 || bits.OnesCount64(b) != 6 {
		t.Errorf("leader masks: %#b %#b", a, b)
	}
	if d.AllowedMask(5, memlayout.KindTree) != 0xFF {
		t.Error("tree should be unconstrained")
	}
}

func TestDynamicDueling(t *testing.T) {
	d := NewDynamic(2, 6)
	d.Reset(128, 8)
	// Initially followers use split A.
	if d.currentSplit() != 2 {
		t.Errorf("initial split = %d", d.currentSplit())
	}
	// Misses in leader-A sets push followers toward B.
	for i := 0; i < 10; i++ {
		d.Observe(0, memlayout.KindCounter, false)
	}
	if d.currentSplit() != 6 {
		t.Errorf("after A misses, split = %d, want B's 6", d.currentSplit())
	}
	if d.Selector() != 10 {
		t.Errorf("psel = %d", d.Selector())
	}
	// Misses in leader-B sets pull back.
	for i := 0; i < 20; i++ {
		d.Observe(1, memlayout.KindHash, false)
	}
	if d.currentSplit() != 2 {
		t.Errorf("after B misses, split = %d, want A's 2", d.currentSplit())
	}
	// Hits and follower misses don't move the selector.
	before := d.Selector()
	d.Observe(0, memlayout.KindCounter, true)
	d.Observe(5, memlayout.KindCounter, false)
	d.Observe(0, memlayout.KindTree, false)
	if d.Selector() != before {
		t.Error("selector moved on non-leader or hit events")
	}
}

func TestDynamicSaturates(t *testing.T) {
	d := NewDynamic(2, 6)
	d.Reset(128, 8)
	for i := 0; i < 5000; i++ {
		d.Observe(0, memlayout.KindCounter, false)
	}
	if d.Selector() != 1024 {
		t.Errorf("psel = %d, want saturation at 1024", d.Selector())
	}
	for i := 0; i < 5000; i++ {
		d.Observe(1, memlayout.KindCounter, false)
	}
	if d.Selector() != -1024 {
		t.Errorf("psel = %d, want -1024", d.Selector())
	}
}

func TestDynamicValidation(t *testing.T) {
	d := NewDynamic(0, 4)
	defer func() {
		if recover() == nil {
			t.Error("bad split accepted")
		}
	}()
	d.Reset(64, 8)
}

func TestDynamicDefaultLeaderPeriod(t *testing.T) {
	d := NewDynamic(2, 6)
	d.LeaderPeriod = 0
	d.Reset(64, 8)
	if d.LeaderPeriod != 32 {
		t.Errorf("leader period = %d", d.LeaderPeriod)
	}
}
