// Package partition implements the metadata-cache partitioning
// schemes of MAPS §V-C: no partition, static way-partitions between
// counters and hashes, and a set-dueling dynamic partitioner. Tree
// nodes are never constrained, following the paper ("tree nodes need
// not be included in the partitioning scheme").
package partition

import (
	"fmt"

	"github.com/maps-sim/mapsim/internal/memlayout"
)

// Scheme decides which ways each metadata kind may occupy.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Reset (re)initializes for a cache geometry.
	Reset(sets, ways int)
	// AllowedMask returns the way mask the given kind may victimize
	// and occupy in the given set. Zero is not allowed.
	AllowedMask(set int, kind memlayout.Kind) uint64
	// Observe feeds access outcomes to adaptive schemes.
	Observe(set int, kind memlayout.Kind, hit bool)
}

// None places no constraints: the unpartitioned cache.
type None struct{ ways int }

// NewNone returns the unpartitioned scheme.
func NewNone() *None { return &None{} }

// Name implements Scheme.
func (*None) Name() string { return "none" }

// Reset implements Scheme.
func (n *None) Reset(sets, ways int) { n.ways = ways }

// AllowedMask implements Scheme.
func (n *None) AllowedMask(set int, kind memlayout.Kind) uint64 {
	return fullMask(n.ways)
}

// Observe implements Scheme.
func (*None) Observe(set int, kind memlayout.Kind, hit bool) {}

func fullMask(ways int) uint64 {
	if ways >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(ways)) - 1
}

// splitMasks returns the (counter, hash) way masks for a static split
// giving counterWays ways to counters.
func splitMasks(ways, counterWays int) (uint64, uint64) {
	c := (uint64(1) << uint(counterWays)) - 1
	return c, fullMask(ways) &^ c
}

// Static reserves a fixed number of ways for counters, the rest for
// hashes; tree nodes roam everywhere.
type Static struct {
	counterWays int
	ways        int
}

// NewStatic creates a static split. counterWays must leave at least
// one way for each side.
func NewStatic(counterWays int) *Static {
	return &Static{counterWays: counterWays}
}

// Name implements Scheme.
func (s *Static) Name() string { return fmt.Sprintf("static-%d", s.counterWays) }

// CounterWays reports the split.
func (s *Static) CounterWays() int { return s.counterWays }

// Reset implements Scheme.
func (s *Static) Reset(sets, ways int) {
	if s.counterWays < 1 || s.counterWays >= ways {
		panic(fmt.Sprintf("partition: static split %d must be in [1,%d)", s.counterWays, ways))
	}
	s.ways = ways
}

// AllowedMask implements Scheme.
func (s *Static) AllowedMask(set int, kind memlayout.Kind) uint64 {
	c, h := splitMasks(s.ways, s.counterWays)
	switch kind {
	case memlayout.KindCounter:
		return c
	case memlayout.KindHash:
		return h
	default:
		return fullMask(s.ways)
	}
}

// Observe implements Scheme.
func (*Static) Observe(set int, kind memlayout.Kind, hit bool) {}

// Dynamic is the set-dueling partitioner: two leader groups run the
// two candidate splits, a saturating selector counts their misses,
// and follower sets adopt the winner (Qureshi's DIP applied to
// partitioning, as the paper sketches).
type Dynamic struct {
	// SplitA and SplitB are the dueling counter-way allocations.
	SplitA, SplitB int
	// LeaderPeriod spaces leader sets; every LeaderPeriod-th set
	// leads for A, the next for B.
	LeaderPeriod int

	ways int
	psel int
	// pselMax bounds the saturating selector.
	pselMax int
}

// NewDynamic creates a set-dueling partitioner with the given
// candidate splits.
func NewDynamic(splitA, splitB int) *Dynamic {
	return &Dynamic{SplitA: splitA, SplitB: splitB, LeaderPeriod: 32, pselMax: 1024}
}

// Name implements Scheme.
func (d *Dynamic) Name() string { return "dynamic" }

// Reset implements Scheme.
func (d *Dynamic) Reset(sets, ways int) {
	check := func(s int) {
		if s < 1 || s >= ways {
			panic(fmt.Sprintf("partition: dynamic split %d must be in [1,%d)", s, ways))
		}
	}
	check(d.SplitA)
	check(d.SplitB)
	if d.LeaderPeriod < 2 {
		d.LeaderPeriod = 32
	}
	d.ways = ways
	d.psel = 0
}

// role classifies a set: 0 = leader A, 1 = leader B, 2 = follower.
func (d *Dynamic) role(set int) int {
	switch set % d.LeaderPeriod {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return 2
	}
}

// currentSplit returns the split followers should use.
func (d *Dynamic) currentSplit() int {
	if d.psel <= 0 {
		return d.SplitA
	}
	return d.SplitB
}

// AllowedMask implements Scheme.
func (d *Dynamic) AllowedMask(set int, kind memlayout.Kind) uint64 {
	if kind != memlayout.KindCounter && kind != memlayout.KindHash {
		return fullMask(d.ways)
	}
	var split int
	switch d.role(set) {
	case 0:
		split = d.SplitA
	case 1:
		split = d.SplitB
	default:
		split = d.currentSplit()
	}
	c, h := splitMasks(d.ways, split)
	if kind == memlayout.KindCounter {
		return c
	}
	return h
}

// Observe implements Scheme: leader misses move the selector.
func (d *Dynamic) Observe(set int, kind memlayout.Kind, hit bool) {
	if hit || (kind != memlayout.KindCounter && kind != memlayout.KindHash) {
		return
	}
	switch d.role(set) {
	case 0: // a miss under A argues for B
		if d.psel < d.pselMax {
			d.psel++
		}
	case 1: // a miss under B argues for A
		if d.psel > -d.pselMax {
			d.psel--
		}
	}
}

// Selector exposes the current PSEL value for diagnostics.
func (d *Dynamic) Selector() int { return d.psel }

// Interface checks.
var (
	_ Scheme = (*None)(nil)
	_ Scheme = (*Static)(nil)
	_ Scheme = (*Dynamic)(nil)
)
