package cache_test

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/cache"
)

// TestAccessZeroAllocs pins the steady-state allocation cost of the
// cache hot paths at zero: neither the full Access entry point nor the
// devirtualized FastAccess may touch the heap once the cache is built.
func TestAccessZeroAllocs(t *testing.T) {
	c := newLRU(t, 8<<10, 8)
	var x uint64 = 1
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33 % (1 << 12)) * 64
	}
	for i := 0; i < 10_000; i++ { // steady state: all sets full
		c.Access(next(), i%3 == 0, cache.WholeBlock)
	}
	if avg := testing.AllocsPerRun(200, func() {
		c.Access(next(), true, cache.WholeBlock)
	}); avg != 0 {
		t.Errorf("Access allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		c.FastAccess(next(), true)
	}); avg != 0 {
		t.Errorf("FastAccess allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		c.FastAccessClassed(next(), true, 1, 0)
	}); avg != 0 {
		t.Errorf("FastAccessClassed allocates %v per call, want 0", avg)
	}
}
