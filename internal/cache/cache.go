// Package cache provides the set-associative cache simulator used for
// both the processor cache hierarchy and the metadata cache. It
// supports pluggable replacement policies, write-back dirty tracking,
// per-8B-slot valid bits (for the partial-write optimization studied
// in MAPS §IV-E), victim-candidate masks (for way partitioning), and
// caller-defined block classes (metadata types).
package cache

import (
	"fmt"
	"math/bits"
)

// BlockSize is the line size in bytes; 64 B throughout the paper.
const BlockSize = 64

// SlotsPerLine is the number of independently-valid 8 B slots per
// line, used by partial writes.
const SlotsPerLine = 8

// FullMask marks every slot of a line valid.
const FullMask uint8 = 0xFF

// MaxWays bounds associativity so victim-candidate masks fit in a
// uint64.
const MaxWays = 64

// Line is one cache frame.
type Line struct {
	// Addr is the block-aligned address held by the frame.
	Addr uint64
	// Class is a caller-defined block classification (the metadata
	// cache stores the metadata kind and tree level here).
	Class uint8
	// Valid reports whether the frame holds a block.
	Valid bool
	// Dirty reports whether the block must be written back.
	Dirty bool
	// ValidMask tracks which 8 B slots hold real data. FullMask for
	// ordinary lines; sparse for partial-write placeholders.
	ValidMask uint8
}

// Policy is a replacement policy. Implementations keep per-set state
// sized by Reset and choose victims among an allowed-way mask so the
// same policy composes with way partitioning.
//
// Policies that must observe every access before lookup (offline
// policies like MIN that advance future knowledge) additionally
// implement AccessObserver; the cache only pays that call for
// policies that ask for it.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reset (re)initializes state for a cache geometry.
	Reset(sets, ways int)
	// OnHit observes a hit in set/way.
	OnHit(set, way int, line *Line, write bool)
	// OnInsert observes a fill into set/way.
	OnInsert(set, way int, line *Line)
	// OnEvict observes an eviction from set/way.
	OnEvict(set, way int, line *Line)
	// Victim picks the way to evict. Every set bit of allowed is a
	// candidate way holding a valid line; allowed is never zero.
	Victim(set int, lines []Line, allowed uint64) int
}

// AccessObserver is the optional pre-lookup hook: OnAccess observes
// every access, hit or miss, before the tag check. It was part of
// Policy itself, but nearly every policy left it a no-op while the
// cache paid an interface dispatch per access; now only policies
// that implement it are called.
type AccessObserver interface {
	// OnAccess observes every access before lookup, hit or miss.
	OnAccess(addr uint64, write bool)
}

// InlineKind identifies a built-in replacement policy whose
// touch/victim logic the cache inlines into its hot path, bypassing
// the Policy interface entirely (devirtualization).
type InlineKind uint8

// Inline kinds. InlineNone means every policy hook goes through the
// Policy interface.
const (
	InlineNone InlineKind = iota
	// InlineLRU is true least-recently-used (policy.LRU semantics).
	InlineLRU
	// InlinePLRU is MRU-bit pseudo-LRU (policy.PLRU semantics).
	InlinePLRU
)

// Inlinable marks a policy whose behaviour the cache may replicate
// inline. The contract is strict: the inlined implementation must be
// bit-identical to the policy's own hooks for every access sequence
// (the policy object itself is then never consulted on the hot
// path). A type that embeds an Inlinable policy but changes its
// behaviour must override InlineKind to return InlineNone, or wrap
// itself with policy.Generic.
type Inlinable interface {
	// InlineKind reports which built-in logic the cache may inline.
	InlineKind() InlineKind
}

// Options modifies a single Access.
type Options struct {
	// Class is recorded on the line at insertion.
	Class uint8
	// Slot, when >= 0, addresses one 8 B slot of the line for
	// ValidMask bookkeeping. Use -1 for whole-block accesses.
	Slot int
	// Partial inserts a write-miss placeholder whose ValidMask covers
	// only Slot, instead of fetching the whole block.
	Partial bool
	// NoAlloc bypasses the cache on a miss (no insertion).
	NoAlloc bool
	// Allowed restricts victim selection (and invalid-frame choice)
	// to the set bits; zero means every way.
	Allowed uint64
}

// WholeBlock is the Options zero-value helper for plain accesses.
var WholeBlock = Options{Slot: -1}

// Result reports what one Access did.
type Result struct {
	// Hit reports a tag match on a valid line.
	Hit bool
	// SlotValid reports whether the requested slot held data at hit
	// time. Always true for whole-block hits. A hit with
	// SlotValid=false still costs a memory access.
	SlotValid bool
	// Inserted reports that the block was filled on a miss.
	Inserted bool
	// Evicted is the displaced line; Evicted.Valid reports whether an
	// eviction happened.
	Evicted Line
}

// Stats aggregates cache activity.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	PartialMiss uint64 // hits whose requested slot was invalid
	Inserts     uint64
	Evictions   uint64
	DirtyEvicts uint64
}

// MissRate returns misses/accesses, 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, write-back, write-allocate cache model.
// It tracks tags and per-line state only; data movement is the
// caller's concern.
type Cache struct {
	sets    int
	ways    int
	shift   uint
	setMask uint64 // sets-1; set count is a power of two
	policy  Policy
	lines   []Line
	// meta packs each set's hot state into three adjacent stripes of
	// ways words each, at stride 3*ways per set:
	//
	//	meta[base+w]        tag: Addr | 1, or 0 when invalid
	//	meta[base+ways+w]   inlined-LRU last-use clock
	//	meta[base+2*ways+w] flags: Class<<16 | ValidMask<<8 | Dirty
	//
	// A probe, a recency update, and the dirty/valid bookkeeping all
	// land in consecutive cache lines, and on the devirtualized
	// LRU/PLRU path the Line structs are never touched at all: lines
	// is kept in sync only for generic policies (whose interface
	// traffics in *Line) and is refreshed lazily by Probe. Bit 0 of
	// the tag is free because addresses are block aligned.
	meta []uint64
	// valid holds one bit per way per set: which frames hold a block.
	// It turns the miss path's free-way scan and victim-candidate mask
	// into two bitwise ops.
	valid []uint64
	// fullWays is the all-ways candidate mask, (1<<ways)-1.
	fullWays uint64
	stats    Stats

	// Devirtualized fast path: when the policy is a built-in LRU or
	// PLRU (detected at New time via Inlinable), the cache runs an
	// inlined, bit-identical copy of its logic and never calls the
	// Policy interface on the hot path.
	inline InlineKind
	// observer is non-nil only for policies that implement
	// AccessObserver; everyone else skips the per-access call.
	observer AccessObserver
	// lruClock replicates policy.LRU's clock (inline path; the
	// per-frame stamps live in meta).
	lruClock uint64
	// plruMRU replicates policy.PLRU state (inline path).
	plruMRU []uint64
}

// New creates a cache of size bytes with the given associativity.
// size must yield a power-of-two number of sets of 64 B lines.
func New(size, ways int, policy Policy) (*Cache, error) {
	if ways <= 0 || ways > MaxWays {
		return nil, fmt.Errorf("cache: ways %d out of range [1,%d]", ways, MaxWays)
	}
	if size <= 0 || size%(BlockSize*ways) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d-way sets of %d B lines", size, ways, BlockSize)
	}
	sets := size / (BlockSize * ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	c := &Cache{
		sets:    sets,
		ways:    ways,
		shift:   uint(bits.TrailingZeros(uint(BlockSize))),
		setMask: uint64(sets - 1),
		policy:  policy,
		meta:    make([]uint64, sets*ways*3),
		valid:   make([]uint64, sets),
	}
	c.fullWays = ^uint64(0)
	if ways < MaxWays {
		c.fullWays = 1<<uint(ways) - 1
	}
	if il, ok := policy.(Inlinable); ok {
		switch il.InlineKind() {
		case InlineLRU:
			c.inline = InlineLRU
		case InlinePLRU:
			c.inline = InlinePLRU
			c.plruMRU = make([]uint64, sets)
		}
	}
	if c.inline == InlineNone {
		// The Line array backs the Policy interface; devirtualized
		// caches never consult it (Probe materializes it on demand),
		// so skipping the allocation saves the dominant share of a
		// cache's footprint — 768 KB for the 2 MB LLC.
		c.lines = make([]Line, sets*ways)
	}
	c.observer, _ = policy.(AccessObserver)
	policy.Reset(sets, ways)
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(size, ways int, policy Policy) *Cache {
	c, err := New(size, ways, policy)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways reports the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes reports the capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * BlockSize }

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Inlined reports which built-in policy logic, if any, the cache
// runs devirtualized. Tests use it to assert fast-path engagement.
func (c *Cache) Inlined() InlineKind { return c.inline }

// Stats returns a copy of the counters. Accesses is derived as
// Hits+Misses on read; the hot paths do not maintain it separately
// (one fewer read-modify-write per access).
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Accesses = s.Hits + s.Misses
	return s
}

// ResetStats zeroes the counters, e.g. after warmup.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// SetOf returns the set index for addr. The set count is a power of
// two, so this is a shift and mask — no division on the hot path.
func (c *Cache) SetOf(addr uint64) int {
	return int((addr >> c.shift) & c.setMask)
}

// setLines returns the ways of one set.
func (c *Cache) setLines(set int) []Line {
	return c.lines[set*c.ways : (set+1)*c.ways]
}

// flagDirty is bit 0 of a meta flags word; ValidMask occupies bits
// 8-15 and Class bits 16-23.
const flagDirty = 1 << 0

func packFlags(class uint8, dirty bool, vmask uint8) uint64 {
	f := uint64(class)<<16 | uint64(vmask)<<8
	if dirty {
		f |= flagDirty
	}
	return f
}

// lineAt reconstructs the Line for a valid frame from its meta
// stripes (the authoritative state on the devirtualized path).
func (c *Cache) lineAt(set, way int) Line {
	base := set * 3 * c.ways
	f := c.meta[base+2*c.ways+way]
	return Line{
		Addr:      c.meta[base+way] &^ 1,
		Class:     uint8(f >> 16),
		Valid:     true,
		Dirty:     f&flagDirty != 0,
		ValidMask: uint8(f >> 8),
	}
}

// Probe reports whether addr is present, without touching policy
// state or statistics. It returns the line for inspection (nil on
// absence).
func (c *Cache) Probe(addr uint64) *Line {
	addr = align(addr)
	set := c.SetOf(addr)
	base := set * 3 * c.ways
	for w := 0; w < c.ways; w++ {
		if c.meta[base+w] == addr|1 {
			idx := set*c.ways + w
			if c.inline != InlineNone {
				// lines is not maintained (or even allocated) on the
				// fast path; materialize this frame before handing out
				// the pointer.
				if c.lines == nil {
					c.lines = make([]Line, c.sets*c.ways)
				}
				c.lines[idx] = c.lineAt(set, w)
			}
			return &c.lines[idx]
		}
	}
	return nil
}

// Access performs one cache access. addr is block-aligned by the
// cache. On a miss with allocation, the returned Result.Evicted holds
// any displaced line.
func (c *Cache) Access(addr uint64, write bool, opt Options) Result {
	addr = align(addr)
	if c.observer != nil {
		c.observer.OnAccess(addr, write)
	}

	set := c.SetOf(addr)
	mbase := set * 3 * c.ways
	tags := c.meta[mbase : mbase+c.ways]
	key := addr | 1
	for w := range tags {
		if tags[w] == key {
			if opt.Slot < 0 {
				// Whole-block hit, inlined: the Line array is not
				// touched at all on the devirtualized path.
				c.stats.Hits++
				if write {
					c.meta[mbase+2*c.ways+w] |= flagDirty
				}
				switch c.inline {
				case InlineLRU:
					c.lruClock++
					c.meta[mbase+c.ways+w] = c.lruClock
				case InlinePLRU:
					c.touch(set, w)
				default:
					line := &c.lines[set*c.ways+w]
					if write {
						line.Dirty = true
					}
					c.policy.OnHit(set, w, line, write)
				}
				return Result{Hit: true, SlotValid: true}
			}
			return c.hit(set, w, write, opt)
		}
	}

	// Miss path, merged into the kernel: the call overhead and a
	// per-way free-frame scan both showed up in profiles. The slot
	// bound is checked here and in hit so the whole-block fast path
	// (Slot < 0) never pays for it.
	if opt.Slot >= SlotsPerLine {
		panic(fmt.Sprintf("cache: slot %d out of range", opt.Slot))
	}
	c.stats.Misses++
	if opt.NoAlloc {
		return Result{}
	}
	allowed := opt.Allowed
	if allowed == 0 {
		allowed = ^uint64(0)
	}
	if c.ways < 64 {
		allowed &= (1 << uint(c.ways)) - 1
	}
	if allowed == 0 {
		panic("cache: empty allowed-way mask")
	}

	fbase := mbase + 2*c.ways
	mask := FullMask
	if opt.Partial && write && opt.Slot >= 0 {
		mask = 1 << uint(opt.Slot)
	}

	var way int
	var evAddr, evf uint64
	evicted := false
	if free := allowed &^ c.valid[set]; free != 0 {
		// Lowest allowed invalid frame, as the scan used to find.
		way = bits.TrailingZeros64(free)
	} else {
		validAllowed := allowed & c.valid[set]
		if c.inline != InlineNone {
			way = c.victim(set, validAllowed)
		} else {
			way = c.policy.Victim(set, c.setLines(set), validAllowed)
			if way < 0 || way >= c.ways || validAllowed&(1<<uint(way)) == 0 {
				panic(fmt.Sprintf("cache: policy %s chose disallowed victim way %d (mask %#x)", c.policy.Name(), way, validAllowed))
			}
		}
		evAddr = c.meta[mbase+way] &^ 1
		evf = c.meta[fbase+way]
		evicted = true
		if c.inline == InlineNone {
			c.policy.OnEvict(set, way, &c.setLines(set)[way])
		}
		c.stats.Evictions++
		if evf&flagDirty != 0 {
			c.stats.DirtyEvicts++
		}
	}

	c.meta[mbase+way] = key
	c.meta[fbase+way] = packFlags(opt.Class, write, mask)
	c.valid[set] |= 1 << uint(way)
	c.stats.Inserts++
	if c.inline != InlineNone {
		c.touch(set, way)
	} else {
		ls := c.setLines(set)
		ls[way] = Line{Addr: addr, Class: opt.Class, Valid: true, Dirty: write, ValidMask: mask}
		c.policy.OnInsert(set, way, &ls[way])
	}
	if !evicted {
		return Result{Inserted: true}
	}
	// The Result is assembled in the return itself so the evicted
	// line's fields stay in registers instead of bouncing through a
	// stack slot (this store dominated the miss path in profiles).
	return Result{Inserted: true, Evicted: Line{
		Addr:      evAddr,
		Class:     uint8(evf >> 16),
		Valid:     true,
		Dirty:     evf&flagDirty != 0,
		ValidMask: uint8(evf >> 8),
	}}
}

// FastAccess is Access(addr, write, WholeBlock) narrowed to what a
// write-back hierarchy consumes: the hit flag and the displaced dirty
// block, if any (evDirty implies an eviction happened; clean
// evictions are not reported). The three scalar results and two
// scalar arguments stay in registers, where the Options/Result
// structs of the general entry point bounce through the stack at
// every call site — measurable at L1 access rates. Generic
// (non-inlined) policies divert to Access so behaviour is identical
// for every policy.
func (c *Cache) FastAccess(addr uint64, write bool) (hit bool, evAddr uint64, evDirty bool) {
	if c.inline == InlineNone {
		r := c.Access(addr, write, WholeBlock)
		return r.Hit, r.Evicted.Addr, r.Evicted.Valid && r.Evicted.Dirty
	}
	addr = align(addr)
	if c.observer != nil {
		c.observer.OnAccess(addr, write)
	}
	set := c.SetOf(addr)
	mbase := set * 3 * c.ways
	tags := c.meta[mbase : mbase+c.ways]
	key := addr | 1
	for w := range tags {
		if tags[w] == key {
			c.stats.Hits++
			if write {
				c.meta[mbase+2*c.ways+w] |= flagDirty
			}
			if c.inline == InlineLRU {
				c.lruClock++
				c.meta[mbase+c.ways+w] = c.lruClock
			} else {
				c.touch(set, w)
			}
			return true, 0, false
		}
	}
	c.stats.Misses++
	var way int
	if free := c.fullWays &^ c.valid[set]; free != 0 {
		way = bits.TrailingZeros64(free)
	} else {
		way = c.victim(set, c.fullWays)
		evAddr = c.meta[mbase+way] &^ 1
		evDirty = c.meta[mbase+2*c.ways+way]&flagDirty != 0
		c.stats.Evictions++
		if evDirty {
			c.stats.DirtyEvicts++
		}
	}
	c.meta[mbase+way] = key
	c.meta[mbase+2*c.ways+way] = packFlags(0, write, FullMask)
	c.valid[set] |= 1 << uint(way)
	c.stats.Inserts++
	c.touch(set, way)
	return false, evAddr, evDirty
}

// FastAccessClassed is the whole-block entry point used by the
// metadata cache: Access(addr, write, Options{Class: class, Slot: -1,
// Allowed: allowed}) narrowed to registers. evFlags is the displaced
// dirty line's packed flags word (Class<<16 | ValidMask<<8 | Dirty),
// or zero when nothing dirty was displaced — a valid line always has
// a nonzero ValidMask, so zero is unambiguous. Clean evictions are
// counted in the stats but not reported, matching what the metadata
// cache consumes. Generic (non-inlined) policies divert to Access so
// behaviour is identical for every policy.
func (c *Cache) FastAccessClassed(addr uint64, write bool, class uint8, allowed uint64) (hit bool, evAddr, evFlags uint64) {
	if c.inline == InlineNone {
		r := c.Access(addr, write, Options{Class: class, Slot: -1, Allowed: allowed})
		if r.Evicted.Valid && r.Evicted.Dirty {
			return r.Hit, r.Evicted.Addr, packFlags(r.Evicted.Class, true, r.Evicted.ValidMask)
		}
		return r.Hit, 0, 0
	}
	addr = align(addr)
	if c.observer != nil {
		c.observer.OnAccess(addr, write)
	}
	set := c.SetOf(addr)
	mbase := set * 3 * c.ways
	tags := c.meta[mbase : mbase+c.ways]
	key := addr | 1
	for w := range tags {
		if tags[w] == key {
			c.stats.Hits++
			if write {
				c.meta[mbase+2*c.ways+w] |= flagDirty
			}
			if c.inline == InlineLRU {
				c.lruClock++
				c.meta[mbase+c.ways+w] = c.lruClock
			} else {
				c.touch(set, w)
			}
			return true, 0, 0
		}
	}
	c.stats.Misses++
	if allowed == 0 {
		allowed = c.fullWays
	} else {
		allowed &= c.fullWays
	}
	if allowed == 0 {
		panic("cache: empty allowed-way mask")
	}
	var way int
	if free := allowed &^ c.valid[set]; free != 0 {
		way = bits.TrailingZeros64(free)
	} else {
		way = c.victim(set, allowed&c.valid[set])
		f := c.meta[mbase+2*c.ways+way]
		c.stats.Evictions++
		if f&flagDirty != 0 {
			c.stats.DirtyEvicts++
			evAddr = c.meta[mbase+way] &^ 1
			evFlags = f
		}
	}
	c.meta[mbase+way] = key
	c.meta[mbase+2*c.ways+way] = packFlags(class, write, FullMask)
	c.valid[set] |= 1 << uint(way)
	c.stats.Inserts++
	c.touch(set, way)
	return false, evAddr, evFlags
}

// touch is the inlined LRU/PLRU use-marking, bit-identical to
// policy.LRU.OnHit/OnInsert and policy.PLRU.OnHit/OnInsert. Callers
// guarantee c.inline != InlineNone.
func (c *Cache) touch(set, way int) {
	if c.inline == InlineLRU {
		c.lruClock++
		c.meta[set*3*c.ways+c.ways+way] = c.lruClock
		return
	}
	// PLRU: set the MRU bit; when the set saturates, keep only it.
	full := uint64(1)<<uint(c.ways) - 1
	m := c.plruMRU[set] | 1<<uint(way)
	if m == full {
		m = 1 << uint(way)
	}
	c.plruMRU[set] = m
}

// victim is the inlined LRU/PLRU victim choice, bit-identical to the
// corresponding Policy implementations. Callers guarantee c.inline
// != InlineNone and allowed != 0.
func (c *Cache) victim(set int, allowed uint64) int {
	if c.inline == InlineLRU {
		lru := set*3*c.ways + c.ways
		if allowed == c.fullWays {
			// Unrestricted victim choice (the hierarchy's case): a
			// straight scan of the stamp stripe, no mask iteration.
			// Stamps are distinct (each is a unique clock value), so
			// the first minimum is the minimum.
			stamps := c.meta[lru : lru+c.ways]
			best, bestT := 0, stamps[0]
			for w := 1; w < len(stamps); w++ {
				if stamps[w] < bestT {
					best, bestT = w, stamps[w]
				}
			}
			return best
		}
		best, bestT := -1, ^uint64(0)
		for m := allowed; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			if t := c.meta[lru+w]; best < 0 || t < bestT {
				best, bestT = w, t
			}
		}
		return best
	}
	// PLRU: first allowed way without its MRU bit; if every allowed
	// way is MRU-marked, the lowest allowed way.
	if cold := allowed &^ c.plruMRU[set]; cold != 0 {
		return bits.TrailingZeros64(cold)
	}
	return bits.TrailingZeros64(allowed)
}

// hit handles slot-addressed (partial-write) hits; whole-block hits
// are inlined in Access. The flags stripe is authoritative.
func (c *Cache) hit(set, way int, write bool, opt Options) Result {
	if opt.Slot >= SlotsPerLine {
		panic(fmt.Sprintf("cache: slot %d out of range", opt.Slot))
	}
	fi := set*3*c.ways + 2*c.ways + way
	f := c.meta[fi]
	c.stats.Hits++
	res := Result{Hit: true, SlotValid: true}
	slotBit := uint64(1) << (8 + uint(opt.Slot))
	if f&slotBit == 0 {
		if !write {
			// A read of an unfilled slot must fetch it from memory;
			// a write supplies the data itself (the partial-write
			// benefit), so only reads count as partial misses.
			res.SlotValid = false
			c.stats.PartialMiss++
		}
		f |= slotBit
	}
	if write {
		f |= flagDirty
	}
	c.meta[fi] = f
	if c.inline != InlineNone {
		c.touch(set, way)
	} else {
		line := &c.setLines(set)[way]
		line.Dirty = f&flagDirty != 0
		line.ValidMask = uint8(f >> 8)
		c.policy.OnHit(set, way, line, write)
	}
	return res
}

// Invalidate removes addr if present, returning the dropped line.
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	addr = align(addr)
	set := c.SetOf(addr)
	mbase := set * 3 * c.ways
	for w := 0; w < c.ways; w++ {
		if c.meta[mbase+w] == addr|1 {
			line := c.lineAt(set, w)
			if c.inline == InlineNone {
				// LRU/PLRU's OnEvict is the embedded no-op, and the
				// fast path never reads lines (Probe refreshes before
				// use), so only the generic path clears its entry.
				c.policy.OnEvict(set, w, &c.setLines(set)[w])
				c.setLines(set)[w] = Line{}
			}
			c.meta[mbase+w] = 0
			c.meta[mbase+2*c.ways+w] = 0
			c.valid[set] &^= 1 << uint(w)
			return line, true
		}
	}
	return Line{}, false
}

// Flush invalidates every line, returning the dirty ones in set/way
// order (for end-of-simulation writeback accounting).
func (c *Cache) Flush() []Line {
	var dirty []Line
	for set := 0; set < c.sets; set++ {
		mbase := set * 3 * c.ways
		for w := 0; w < c.ways; w++ {
			if c.meta[mbase+w] != 0 {
				line := c.lineAt(set, w)
				if line.Dirty {
					dirty = append(dirty, line)
				}
				if c.inline == InlineNone {
					ls := c.setLines(set)
					c.policy.OnEvict(set, w, &ls[w])
					ls[w] = Line{}
				}
				c.meta[mbase+w] = 0
				c.meta[mbase+2*c.ways+w] = 0
			}
		}
		c.valid[set] = 0
	}
	return dirty
}

// Occupancy counts valid lines, optionally filtered by class.
func (c *Cache) Occupancy(class int) int {
	n := 0
	for set := 0; set < c.sets; set++ {
		mbase := set * 3 * c.ways
		for w := 0; w < c.ways; w++ {
			if c.meta[mbase+w] == 0 {
				continue
			}
			if class < 0 || int(uint8(c.meta[mbase+2*c.ways+w]>>16)) == class {
				n++
			}
		}
	}
	return n
}

func align(addr uint64) uint64 { return addr &^ (BlockSize - 1) }
