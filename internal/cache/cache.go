// Package cache provides the set-associative cache simulator used for
// both the processor cache hierarchy and the metadata cache. It
// supports pluggable replacement policies, write-back dirty tracking,
// per-8B-slot valid bits (for the partial-write optimization studied
// in MAPS §IV-E), victim-candidate masks (for way partitioning), and
// caller-defined block classes (metadata types).
package cache

import (
	"fmt"
	"math/bits"
)

// BlockSize is the line size in bytes; 64 B throughout the paper.
const BlockSize = 64

// SlotsPerLine is the number of independently-valid 8 B slots per
// line, used by partial writes.
const SlotsPerLine = 8

// FullMask marks every slot of a line valid.
const FullMask uint8 = 0xFF

// MaxWays bounds associativity so victim-candidate masks fit in a
// uint64.
const MaxWays = 64

// Line is one cache frame.
type Line struct {
	// Addr is the block-aligned address held by the frame.
	Addr uint64
	// Class is a caller-defined block classification (the metadata
	// cache stores the metadata kind and tree level here).
	Class uint8
	// Valid reports whether the frame holds a block.
	Valid bool
	// Dirty reports whether the block must be written back.
	Dirty bool
	// ValidMask tracks which 8 B slots hold real data. FullMask for
	// ordinary lines; sparse for partial-write placeholders.
	ValidMask uint8
}

// Policy is a replacement policy. Implementations keep per-set state
// sized by Reset and choose victims among an allowed-way mask so the
// same policy composes with way partitioning.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reset (re)initializes state for a cache geometry.
	Reset(sets, ways int)
	// OnAccess observes every access before lookup, hit or miss.
	// Offline policies (MIN) use it to advance future knowledge.
	OnAccess(addr uint64, write bool)
	// OnHit observes a hit in set/way.
	OnHit(set, way int, line *Line, write bool)
	// OnInsert observes a fill into set/way.
	OnInsert(set, way int, line *Line)
	// OnEvict observes an eviction from set/way.
	OnEvict(set, way int, line *Line)
	// Victim picks the way to evict. Every set bit of allowed is a
	// candidate way holding a valid line; allowed is never zero.
	Victim(set int, lines []Line, allowed uint64) int
}

// Options modifies a single Access.
type Options struct {
	// Class is recorded on the line at insertion.
	Class uint8
	// Slot, when >= 0, addresses one 8 B slot of the line for
	// ValidMask bookkeeping. Use -1 for whole-block accesses.
	Slot int
	// Partial inserts a write-miss placeholder whose ValidMask covers
	// only Slot, instead of fetching the whole block.
	Partial bool
	// NoAlloc bypasses the cache on a miss (no insertion).
	NoAlloc bool
	// Allowed restricts victim selection (and invalid-frame choice)
	// to the set bits; zero means every way.
	Allowed uint64
}

// WholeBlock is the Options zero-value helper for plain accesses.
var WholeBlock = Options{Slot: -1}

// Result reports what one Access did.
type Result struct {
	// Hit reports a tag match on a valid line.
	Hit bool
	// SlotValid reports whether the requested slot held data at hit
	// time. Always true for whole-block hits. A hit with
	// SlotValid=false still costs a memory access.
	SlotValid bool
	// Inserted reports that the block was filled on a miss.
	Inserted bool
	// Evicted is the displaced line; Evicted.Valid reports whether an
	// eviction happened.
	Evicted Line
}

// Stats aggregates cache activity.
type Stats struct {
	Accesses    uint64
	Hits        uint64
	Misses      uint64
	PartialMiss uint64 // hits whose requested slot was invalid
	Inserts     uint64
	Evictions   uint64
	DirtyEvicts uint64
}

// MissRate returns misses/accesses, 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative, write-back, write-allocate cache model.
// It tracks tags and per-line state only; data movement is the
// caller's concern.
type Cache struct {
	sets   int
	ways   int
	shift  uint
	policy Policy
	lines  []Line
	stats  Stats
}

// New creates a cache of size bytes with the given associativity.
// size must yield a power-of-two number of sets of 64 B lines.
func New(size, ways int, policy Policy) (*Cache, error) {
	if ways <= 0 || ways > MaxWays {
		return nil, fmt.Errorf("cache: ways %d out of range [1,%d]", ways, MaxWays)
	}
	if size <= 0 || size%(BlockSize*ways) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d-way sets of %d B lines", size, ways, BlockSize)
	}
	sets := size / (BlockSize * ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	c := &Cache{sets: sets, ways: ways, shift: uint(bits.TrailingZeros(uint(BlockSize))), policy: policy, lines: make([]Line, sets*ways)}
	policy.Reset(sets, ways)
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(size, ways int, policy Policy) *Cache {
	c, err := New(size, ways, policy)
	if err != nil {
		panic(err)
	}
	return c
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways reports the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes reports the capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * BlockSize }

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters, e.g. after warmup.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// SetOf returns the set index for addr.
func (c *Cache) SetOf(addr uint64) int {
	return int((addr >> c.shift) % uint64(c.sets))
}

// setLines returns the ways of one set.
func (c *Cache) setLines(set int) []Line {
	return c.lines[set*c.ways : (set+1)*c.ways]
}

// Probe reports whether addr is present, without touching policy
// state or statistics. It returns the line for inspection (nil on
// absence).
func (c *Cache) Probe(addr uint64) *Line {
	addr = align(addr)
	ls := c.setLines(c.SetOf(addr))
	for i := range ls {
		if ls[i].Valid && ls[i].Addr == addr {
			return &ls[i]
		}
	}
	return nil
}

// Access performs one cache access. addr is block-aligned by the
// cache. On a miss with allocation, the returned Result.Evicted holds
// any displaced line.
func (c *Cache) Access(addr uint64, write bool, opt Options) Result {
	addr = align(addr)
	if opt.Slot >= SlotsPerLine {
		panic(fmt.Sprintf("cache: slot %d out of range", opt.Slot))
	}
	c.stats.Accesses++
	c.policy.OnAccess(addr, write)

	set := c.SetOf(addr)
	ls := c.setLines(set)
	for w := range ls {
		if ls[w].Valid && ls[w].Addr == addr {
			return c.hit(set, w, write, opt)
		}
	}
	return c.miss(set, addr, write, opt)
}

func (c *Cache) hit(set, way int, write bool, opt Options) Result {
	line := &c.setLines(set)[way]
	c.stats.Hits++
	res := Result{Hit: true, SlotValid: true}
	if opt.Slot >= 0 && line.ValidMask&(1<<uint(opt.Slot)) == 0 {
		if !write {
			// A read of an unfilled slot must fetch it from memory;
			// a write supplies the data itself (the partial-write
			// benefit), so only reads count as partial misses.
			res.SlotValid = false
			c.stats.PartialMiss++
		}
		line.ValidMask |= 1 << uint(opt.Slot)
	}
	if write {
		line.Dirty = true
		if opt.Slot >= 0 {
			line.ValidMask |= 1 << uint(opt.Slot)
		}
	}
	c.policy.OnHit(set, way, line, write)
	return res
}

func (c *Cache) miss(set int, addr uint64, write bool, opt Options) Result {
	c.stats.Misses++
	if opt.NoAlloc {
		return Result{}
	}
	allowed := opt.Allowed
	if allowed == 0 {
		allowed = ^uint64(0)
	}
	if c.ways < 64 {
		allowed &= (1 << uint(c.ways)) - 1
	}
	if allowed == 0 {
		panic("cache: empty allowed-way mask")
	}

	ls := c.setLines(set)
	way := -1
	validAllowed := uint64(0)
	for w := range ls {
		if allowed&(1<<uint(w)) == 0 {
			continue
		}
		if !ls[w].Valid {
			way = w
			break
		}
		validAllowed |= 1 << uint(w)
	}
	res := Result{Inserted: true}
	if way < 0 {
		way = c.policy.Victim(set, ls, validAllowed)
		if way < 0 || way >= c.ways || validAllowed&(1<<uint(way)) == 0 {
			panic(fmt.Sprintf("cache: policy %s chose disallowed victim way %d (mask %#x)", c.policy.Name(), way, validAllowed))
		}
		victim := ls[way]
		c.policy.OnEvict(set, way, &ls[way])
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.DirtyEvicts++
		}
		res.Evicted = victim
	}

	mask := FullMask
	if opt.Partial && write && opt.Slot >= 0 {
		mask = 1 << uint(opt.Slot)
	}
	ls[way] = Line{Addr: addr, Class: opt.Class, Valid: true, Dirty: write, ValidMask: mask}
	c.stats.Inserts++
	c.policy.OnInsert(set, way, &ls[way])
	return res
}

// Invalidate removes addr if present, returning the dropped line.
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	addr = align(addr)
	set := c.SetOf(addr)
	ls := c.setLines(set)
	for w := range ls {
		if ls[w].Valid && ls[w].Addr == addr {
			line := ls[w]
			c.policy.OnEvict(set, w, &ls[w])
			ls[w] = Line{}
			return line, true
		}
	}
	return Line{}, false
}

// Flush invalidates every line, returning the dirty ones in set/way
// order (for end-of-simulation writeback accounting).
func (c *Cache) Flush() []Line {
	var dirty []Line
	for set := 0; set < c.sets; set++ {
		ls := c.setLines(set)
		for w := range ls {
			if ls[w].Valid {
				if ls[w].Dirty {
					dirty = append(dirty, ls[w])
				}
				c.policy.OnEvict(set, w, &ls[w])
				ls[w] = Line{}
			}
		}
	}
	return dirty
}

// Occupancy counts valid lines, optionally filtered by class.
func (c *Cache) Occupancy(class int) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid && (class < 0 || int(c.lines[i].Class) == class) {
			n++
		}
	}
	return n
}

func align(addr uint64) uint64 { return addr &^ (BlockSize - 1) }
