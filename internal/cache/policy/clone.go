package policy

import "github.com/maps-sim/mapsim/internal/cache"

// ClonePolicy implements cache.PolicyCloner: the clone carries the
// clock and per-frame stamps so it victimizes identically from the
// snapshot point on.
func (p *LRU) ClonePolicy() cache.Policy {
	c := *p
	c.last = append([]uint64(nil), p.last...)
	return &c
}

// ClonePolicy implements cache.PolicyCloner.
func (p *PLRU) ClonePolicy() cache.Policy {
	c := *p
	c.mru = append([]uint64(nil), p.mru...)
	return &c
}

// ClonePolicy implements cache.PolicyCloner: the wrapper clones its
// wrapped policy and re-wraps, so the clone stays on the fully
// virtual path.
func (g generic) ClonePolicy() cache.Policy {
	pc, ok := g.Policy.(cache.PolicyCloner)
	if !ok {
		return nil
	}
	inner := pc.ClonePolicy()
	if inner == nil {
		return nil
	}
	return Generic(inner)
}

// ClonePolicy implements cache.PolicyCloner for observer-forwarding
// wrappers (delegates to the embedded generic wrapper).
func (g genericObserver) ClonePolicy() cache.Policy { return g.generic.ClonePolicy() }

// Interface checks.
var (
	_ cache.PolicyCloner = (*LRU)(nil)
	_ cache.PolicyCloner = (*PLRU)(nil)
	_ cache.PolicyCloner = generic{}
	_ cache.PolicyCloner = genericObserver{}
)
