// Package policy provides the online replacement policies studied or
// referenced by MAPS: true LRU, bit pseudo-LRU, FIFO, random, and the
// RRIP family. All of them honor victim-candidate masks so they
// compose with way partitioning.
package policy

import (
	"math/bits"

	"github.com/maps-sim/mapsim/internal/cache"
)

// Base provides no-op hooks for policies that don't need them.
// It deliberately has no OnAccess: per-access observation is the
// optional cache.AccessObserver interface, and only policies that
// implement it themselves (MIN and friends) pay for the call.
type Base struct{}

// OnHit implements cache.Policy.
func (Base) OnHit(set, way int, line *cache.Line, write bool) {}

// OnInsert implements cache.Policy.
func (Base) OnInsert(set, way int, line *cache.Line) {}

// OnEvict implements cache.Policy.
func (Base) OnEvict(set, way int, line *cache.Line) {}

// LRU is exact least-recently-used replacement, tracked with a global
// access clock per frame.
type LRU struct {
	Base
	ways  int
	clock uint64
	last  []uint64
}

// NewLRU returns a true-LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (*LRU) Name() string { return "lru" }

// InlineKind implements cache.Inlinable: the cache devirtualizes LRU
// into its hot path. Wrap with Generic to force the interface path.
func (*LRU) InlineKind() cache.InlineKind { return cache.InlineLRU }

// Reset implements cache.Policy.
func (p *LRU) Reset(sets, ways int) {
	p.ways = ways
	p.clock = 0
	p.last = make([]uint64, sets*ways)
}

func (p *LRU) touch(set, way int) {
	p.clock++
	p.last[set*p.ways+way] = p.clock
}

// OnHit implements cache.Policy.
func (p *LRU) OnHit(set, way int, line *cache.Line, write bool) { p.touch(set, way) }

// OnInsert implements cache.Policy.
func (p *LRU) OnInsert(set, way int, line *cache.Line) { p.touch(set, way) }

// Victim implements cache.Policy: the allowed way with the oldest
// last use.
func (p *LRU) Victim(set int, lines []cache.Line, allowed uint64) int {
	best, bestT := -1, ^uint64(0)
	for w := 0; w < p.ways; w++ {
		if allowed&(1<<uint(w)) == 0 {
			continue
		}
		if t := p.last[set*p.ways+w]; best < 0 || t < bestT {
			best, bestT = w, t
		}
	}
	return best
}

// PLRU is bit pseudo-LRU (MRU-bit approximation): each access sets
// the frame's MRU bit; when a set's bits would all be set, the others
// clear. The victim is the first allowed frame without its bit set.
// This is the cheap hardware policy MAPS refers to as pseudo-LRU.
type PLRU struct {
	Base
	ways int
	mru  []uint64 // one bitmask per set
}

// NewPLRU returns a bit pseudo-LRU policy.
func NewPLRU() *PLRU { return &PLRU{} }

// Name implements cache.Policy.
func (*PLRU) Name() string { return "plru" }

// InlineKind implements cache.Inlinable: the cache devirtualizes
// PLRU into its hot path. Wrap with Generic to force the interface
// path.
func (*PLRU) InlineKind() cache.InlineKind { return cache.InlinePLRU }

// Reset implements cache.Policy.
func (p *PLRU) Reset(sets, ways int) {
	p.ways = ways
	p.mru = make([]uint64, sets)
}

func (p *PLRU) touch(set, way int) {
	full := uint64(1)<<uint(p.ways) - 1
	p.mru[set] |= 1 << uint(way)
	if p.mru[set] == full {
		p.mru[set] = 1 << uint(way)
	}
}

// OnHit implements cache.Policy.
func (p *PLRU) OnHit(set, way int, line *cache.Line, write bool) { p.touch(set, way) }

// OnInsert implements cache.Policy.
func (p *PLRU) OnInsert(set, way int, line *cache.Line) { p.touch(set, way) }

// Victim implements cache.Policy: first allowed way without its MRU
// bit; if every allowed way is MRU-marked, the lowest allowed way.
func (p *PLRU) Victim(set int, lines []cache.Line, allowed uint64) int {
	cold := allowed &^ p.mru[set]
	if cold != 0 {
		return bits.TrailingZeros64(cold)
	}
	return bits.TrailingZeros64(allowed)
}

// FIFO evicts the oldest-inserted allowed frame.
type FIFO struct {
	Base
	ways  int
	clock uint64
	born  []uint64
}

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements cache.Policy.
func (*FIFO) Name() string { return "fifo" }

// Reset implements cache.Policy.
func (p *FIFO) Reset(sets, ways int) {
	p.ways = ways
	p.clock = 0
	p.born = make([]uint64, sets*ways)
}

// OnInsert implements cache.Policy.
func (p *FIFO) OnInsert(set, way int, line *cache.Line) {
	p.clock++
	p.born[set*p.ways+way] = p.clock
}

// Victim implements cache.Policy.
func (p *FIFO) Victim(set int, lines []cache.Line, allowed uint64) int {
	best, bestT := -1, ^uint64(0)
	for w := 0; w < p.ways; w++ {
		if allowed&(1<<uint(w)) == 0 {
			continue
		}
		if t := p.born[set*p.ways+w]; best < 0 || t < bestT {
			best, bestT = w, t
		}
	}
	return best
}

// Random evicts a uniformly random allowed frame, using a
// deterministic xorshift generator so runs reproduce.
type Random struct {
	Base
	state uint64
}

// NewRandom returns a random-replacement policy seeded for
// reproducibility.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Random{state: seed}
}

// Name implements cache.Policy.
func (*Random) Name() string { return "random" }

// Reset implements cache.Policy.
func (p *Random) Reset(sets, ways int) {}

func (p *Random) next() uint64 {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return p.state
}

// Victim implements cache.Policy.
func (p *Random) Victim(set int, lines []cache.Line, allowed uint64) int {
	n := bits.OnesCount64(allowed)
	k := int(p.next() % uint64(n))
	for w := 0; ; w++ {
		if allowed&(1<<uint(w)) != 0 {
			if k == 0 {
				return w
			}
			k--
		}
	}
}

// RRIP implements SRRIP/BRRIP re-reference interval prediction
// (Jaleel et al., ISCA 2010) with 2-bit RRPVs.
type RRIP struct {
	Base
	ways    int
	rrpv    []uint8
	brip    bool
	counter uint32
}

const rripMax = 3

// NewSRRIP returns static RRIP: insertions predict a long
// re-reference interval (RRPV max-1).
func NewSRRIP() *RRIP { return &RRIP{} }

// NewBRRIP returns bimodal RRIP: most insertions predict a distant
// interval (RRPV max), occasionally long.
func NewBRRIP() *RRIP { return &RRIP{brip: true} }

// Name implements cache.Policy.
func (p *RRIP) Name() string {
	if p.brip {
		return "brrip"
	}
	return "srrip"
}

// Reset implements cache.Policy.
func (p *RRIP) Reset(sets, ways int) {
	p.ways = ways
	p.rrpv = make([]uint8, sets*ways)
	p.counter = 0
}

// OnHit implements cache.Policy: hits predict near-immediate reuse.
func (p *RRIP) OnHit(set, way int, line *cache.Line, write bool) {
	p.rrpv[set*p.ways+way] = 0
}

// OnInsert implements cache.Policy.
func (p *RRIP) OnInsert(set, way int, line *cache.Line) {
	v := uint8(rripMax - 1)
	if p.brip {
		p.counter++
		if p.counter%32 != 0 { // mostly distant
			v = rripMax
		}
	}
	p.rrpv[set*p.ways+way] = v
}

// Victim implements cache.Policy: the first allowed frame at max
// RRPV, aging allowed frames until one appears.
func (p *RRIP) Victim(set int, lines []cache.Line, allowed uint64) int {
	for {
		for w := 0; w < p.ways; w++ {
			if allowed&(1<<uint(w)) != 0 && p.rrpv[set*p.ways+w] == rripMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			if allowed&(1<<uint(w)) != 0 && p.rrpv[set*p.ways+w] < rripMax {
				p.rrpv[set*p.ways+w]++
			}
		}
	}
}

// generic forwards exactly the cache.Policy methods of the wrapped
// policy, hiding marker interfaces like cache.Inlinable so the cache
// takes the fully virtual path.
type generic struct{ cache.Policy }

// genericObserver additionally forwards OnAccess for wrapped
// policies that implement cache.AccessObserver.
type genericObserver struct {
	generic
	obs cache.AccessObserver
}

// OnAccess implements cache.AccessObserver.
func (g genericObserver) OnAccess(addr uint64, write bool) { g.obs.OnAccess(addr, write) }

// Generic wraps a policy so the cache cannot devirtualize it: every
// hook goes through the Policy interface. Behaviour is identical,
// only slower — the cross-check tests use it to validate the inlined
// LRU/PLRU fast paths against the generic implementation.
func Generic(p cache.Policy) cache.Policy {
	if obs, ok := p.(cache.AccessObserver); ok {
		return genericObserver{generic{p}, obs}
	}
	return generic{p}
}

// Interface checks.
var (
	_ cache.Policy    = (*LRU)(nil)
	_ cache.Policy    = (*PLRU)(nil)
	_ cache.Policy    = (*FIFO)(nil)
	_ cache.Policy    = (*Random)(nil)
	_ cache.Policy    = (*RRIP)(nil)
	_ cache.Inlinable = (*LRU)(nil)
	_ cache.Inlinable = (*PLRU)(nil)
)
