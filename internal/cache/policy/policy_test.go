package policy

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/cache"
)

func TestNames(t *testing.T) {
	want := map[string]cache.Policy{
		"lru": NewLRU(), "plru": NewPLRU(), "fifo": NewFIFO(),
		"random": NewRandom(0), "srrip": NewSRRIP(), "brrip": NewBRRIP(),
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("Name() = %q, want %q", p.Name(), name)
		}
	}
}

func TestLRUVictimRespectsMask(t *testing.T) {
	p := NewLRU()
	p.Reset(1, 4)
	lines := make([]cache.Line, 4)
	for w := 0; w < 4; w++ {
		p.OnInsert(0, w, &lines[w]) // insertion order: 0 oldest
	}
	if got := p.Victim(0, lines, 0b1111); got != 0 {
		t.Errorf("victim = %d, want 0", got)
	}
	if got := p.Victim(0, lines, 0b1100); got != 2 {
		t.Errorf("masked victim = %d, want 2", got)
	}
	p.OnHit(0, 2, &lines[2], false)
	if got := p.Victim(0, lines, 0b1100); got != 3 {
		t.Errorf("victim after touch = %d, want 3", got)
	}
}

func TestPLRUBehaviour(t *testing.T) {
	p := NewPLRU()
	p.Reset(1, 4)
	lines := make([]cache.Line, 4)
	for w := 0; w < 3; w++ {
		p.OnInsert(0, w, &lines[w])
	}
	// Ways 0..2 are MRU-marked; way 3 cold.
	if got := p.Victim(0, lines, 0b1111); got != 3 {
		t.Errorf("victim = %d, want cold way 3", got)
	}
	// Marking the 4th way clears the others and keeps only it.
	p.OnInsert(0, 3, &lines[3])
	got := p.Victim(0, lines, 0b1111)
	if got == 3 {
		t.Errorf("victim = just-inserted way 3")
	}
	// With a mask covering only MRU ways, it still answers.
	p.OnHit(0, 0, &lines[0], false)
	if got := p.Victim(0, lines, 0b0001); got != 0 {
		t.Errorf("fully-hot masked victim = %d, want 0", got)
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	p := NewFIFO()
	p.Reset(1, 3)
	lines := make([]cache.Line, 3)
	for w := 0; w < 3; w++ {
		p.OnInsert(0, w, &lines[w])
	}
	// Touch way 0 repeatedly; FIFO must still evict it first.
	for i := 0; i < 5; i++ {
		p.OnHit(0, 0, &lines[0], false)
	}
	if got := p.Victim(0, lines, 0b111); got != 0 {
		t.Errorf("victim = %d, want oldest way 0", got)
	}
}

func TestRandomStaysInMask(t *testing.T) {
	p := NewRandom(42)
	p.Reset(1, 8)
	lines := make([]cache.Line, 8)
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		w := p.Victim(0, lines, 0b10100000)
		if w != 5 && w != 7 {
			t.Fatalf("victim %d outside mask", w)
		}
		counts[w]++
	}
	if counts[5] == 0 || counts[7] == 0 {
		t.Errorf("random victim not distributed: %v", counts)
	}
}

func TestRandomZeroSeed(t *testing.T) {
	p := NewRandom(0)
	p.Reset(1, 2)
	if w := p.Victim(0, make([]cache.Line, 2), 0b11); w != 0 && w != 1 {
		t.Errorf("victim = %d", w)
	}
}

func TestSRRIPAgesUntilVictim(t *testing.T) {
	p := NewSRRIP()
	p.Reset(1, 2)
	lines := make([]cache.Line, 2)
	p.OnInsert(0, 0, &lines[0]) // rrpv 2
	p.OnInsert(0, 1, &lines[1]) // rrpv 2
	p.OnHit(0, 1, &lines[1], false)
	// way0 at 2, way1 at 0: aging promotes way0 to 3 first.
	if got := p.Victim(0, lines, 0b11); got != 0 {
		t.Errorf("victim = %d, want 0", got)
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	p := NewBRRIP()
	p.Reset(1, 8)
	lines := make([]cache.Line, 8)
	distant := 0
	for i := 0; i < 320; i++ {
		p.OnInsert(0, i%8, &lines[i%8])
		if p.rrpv[i%8] == rripMax {
			distant++
		}
	}
	if distant < 280 {
		t.Errorf("only %d/320 insertions distant", distant)
	}
	if distant == 320 {
		t.Error("no long-interval insertions at all")
	}
}

func TestPoliciesUnderRealCache(t *testing.T) {
	// Smoke: each policy runs a working-set loop and gets hits once
	// the set fits.
	mk := []func() cache.Policy{
		func() cache.Policy { return NewLRU() },
		func() cache.Policy { return NewPLRU() },
		func() cache.Policy { return NewFIFO() },
		func() cache.Policy { return NewSRRIP() },
	}
	for _, m := range mk {
		p := m()
		c := cache.MustNew(8*64, 8, p)
		for pass := 0; pass < 4; pass++ {
			for b := uint64(0); b < 8; b++ {
				c.Access(b*64, false, cache.WholeBlock)
			}
		}
		s := c.Stats()
		if s.Hits != 24 || s.Misses != 8 {
			t.Errorf("%s: fitting working set stats %+v", p.Name(), s)
		}
	}
}
