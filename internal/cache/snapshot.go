package cache

import "sync/atomic"

// PolicyCloner is implemented by replacement policies whose state can
// be snapshotted: ClonePolicy returns an independent policy that will
// make the same decisions as the original from this point on, or nil
// when the policy cannot guarantee that. The epoch-parallel simulation
// driver clones caches at epoch boundaries; a stateful policy without
// PolicyCloner makes its cache non-cloneable and forces the sequential
// path.
type PolicyCloner interface {
	// ClonePolicy returns an independent copy of the policy's state,
	// or nil if the policy cannot be cloned.
	ClonePolicy() Policy
}

// Clone returns an independent copy of the cache's behavioral state —
// contents, recency, dirty bits — with statistics zeroed, so an epoch
// simulation can run forward from a snapshot and report its own stat
// deltas. The second return is false when the cache cannot be cloned
// safely: a generic-path (non-devirtualized) policy, or a policy with
// a per-access observer, must implement PolicyCloner, because its
// state would otherwise be shared (and raced on) between the original
// and the copy.
func (c *Cache) Clone() (*Cache, bool) {
	n := &Cache{
		sets:     c.sets,
		ways:     c.ways,
		shift:    c.shift,
		setMask:  c.setMask,
		policy:   c.policy,
		meta:     append([]uint64(nil), c.meta...),
		valid:    append([]uint64(nil), c.valid...),
		fullWays: c.fullWays,
		inline:   c.inline,
		lruClock: c.lruClock,
	}
	if c.plruMRU != nil {
		n.plruMRU = append([]uint64(nil), c.plruMRU...)
	}
	if c.inline == InlineNone || c.observer != nil {
		// The policy object holds live state (or is consulted per
		// access); the clone needs its own copy.
		pc, ok := c.policy.(PolicyCloner)
		if !ok {
			return nil, false
		}
		p := pc.ClonePolicy()
		if p == nil {
			return nil, false
		}
		n.policy = p
		n.observer, _ = p.(AccessObserver)
	}
	if c.inline == InlineNone {
		n.lines = append([]Line(nil), c.lines...)
	}
	return n, true
}

// fpNonce distinguishes fingerprints of states that must never compare
// equal (see Fingerprint's generic-policy case).
var fpNonce atomic.Uint64

// Fingerprint returns a 64-bit digest of the cache's behavioral state:
// two caches whose fingerprints match will (barring a ~2^-64 hash
// collision) produce identical hit/miss/eviction streams for every
// future access sequence. The epoch-parallel driver compares a
// speculative epoch's fingerprint against an exact replay's at
// checkpoints to decide where the two have converged.
//
// The digest is policy-aware:
//
//   - Inlined LRU hashes each set's resident (tag, flags) pairs with
//     their recency *ranks*, combined commutatively within the set, so
//     the digest is invariant under way permutation. LRU behavior is
//     permutation-invariant — the victim is the unique minimum-stamp
//     block regardless of which frame holds it — and a cold-started
//     speculative epoch converges to the true state's *contents* long
//     before (in fact, instead of) its exact frame placement.
//   - Inlined PLRU hashes way placement exactly, MRU bits included:
//     PLRU's victim choice is frame-indexed, so placement is
//     behavioral state.
//   - Generic (interface-path) policies have state the cache cannot
//     inspect; their fingerprint is unique per call so it never
//     matches and the driver falls back to a full exact replay, which
//     is always correct.
func (c *Cache) Fingerprint() uint64 {
	if c.inline == InlineNone {
		return fpMix(fpNonce.Add(1))
	}
	var h uint64
	for set := 0; set < c.sets; set++ {
		base := set * 3 * c.ways
		var setH uint64
		if c.inline == InlineLRU {
			stamps := c.meta[base+c.ways : base+2*c.ways]
			for w := 0; w < c.ways; w++ {
				tag := c.meta[base+w]
				if tag == 0 {
					continue
				}
				// Recency rank among this set's valid frames; stamps
				// are distinct clock values, so ranks are well defined.
				rank := uint64(0)
				for v := 0; v < c.ways; v++ {
					if v != w && c.meta[base+v] != 0 && stamps[v] < stamps[w] {
						rank++
					}
				}
				setH += fpMix(tag ^ fpMix(c.meta[base+2*c.ways+w]^fpMix(rank)))
			}
		} else {
			for w := 0; w < c.ways; w++ {
				setH += fpMix(uint64(w) ^ fpMix(c.meta[base+w]^fpMix(c.meta[base+2*c.ways+w])))
			}
			setH += fpMix(c.plruMRU[set] ^ 0xA24BAED4963EE407)
		}
		h += fpMix(uint64(set) ^ fpMix(setH))
	}
	return fpMix(h)
}

// fpMix is the SplitMix64 output finalizer, used as a cheap 64-bit
// mixing function for state fingerprints.
func fpMix(z uint64) uint64 {
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}
