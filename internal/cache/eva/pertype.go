package eva

import (
	"github.com/maps-sim/mapsim/internal/cache"
)

// PerType is EVA with one age-histogram per block class instead of
// the single histogram MAPS shows failing ("EVA uses one histogram
// ... the bimodal characteristic of metadata reuse distances makes
// the one histogram approach ineffective"). Separating counters,
// hashes, and tree levels into their own histograms lets each
// population's bimodality resolve independently — the fix the paper's
// analysis implies.
//
// Classes are the cache framework's class byte (the metadata cache
// stores kind + tree level there), folded into a small table.
type PerType struct {
	cfg  Config
	ways int

	setClock []uint64
	born     []uint64
	class    []uint8 // class of each resident frame

	// Per-class histograms and rank tables, allocated lazily.
	classes map[uint8]*classState
	events  int
}

type classState struct {
	hits   []float64
	evicts []float64
	rank   []float64
}

// NewPerType creates the per-type EVA variant.
func NewPerType(cfg Config) *PerType {
	cfg.fill()
	return &PerType{cfg: cfg}
}

// Name implements cache.Policy.
func (*PerType) Name() string { return "eva-pertype" }

// Reset implements cache.Policy.
func (p *PerType) Reset(sets, ways int) {
	p.ways = ways
	p.setClock = make([]uint64, sets)
	p.born = make([]uint64, sets*ways)
	p.class = make([]uint8, sets*ways)
	p.classes = make(map[uint8]*classState)
	p.events = 0
}

func (p *PerType) state(class uint8) *classState {
	cs := p.classes[class]
	if cs == nil {
		cs = &classState{
			hits:   make([]float64, p.cfg.AgeBuckets),
			evicts: make([]float64, p.cfg.AgeBuckets),
			rank:   make([]float64, p.cfg.AgeBuckets),
		}
		for a := range cs.rank {
			cs.rank[a] = -float64(a)
		}
		p.classes[class] = cs
	}
	return cs
}

func (p *PerType) age(set, way int) int {
	a := int((p.setClock[set] - p.born[set*p.ways+way]) / uint64(p.cfg.Granularity))
	if a >= p.cfg.AgeBuckets {
		a = p.cfg.AgeBuckets - 1
	}
	return a
}

// OnHit implements cache.Policy.
func (p *PerType) OnHit(set, way int, line *cache.Line, write bool) {
	p.setClock[set]++
	i := set*p.ways + way
	p.state(p.class[i]).hits[p.age(set, way)]++
	p.born[i] = p.setClock[set]
	p.event()
}

// OnInsert implements cache.Policy.
func (p *PerType) OnInsert(set, way int, line *cache.Line) {
	p.setClock[set]++
	i := set*p.ways + way
	p.born[i] = p.setClock[set]
	p.class[i] = line.Class
}

// OnEvict implements cache.Policy.
func (p *PerType) OnEvict(set, way int, line *cache.Line) {
	i := set*p.ways + way
	p.state(p.class[i]).evicts[p.age(set, way)]++
	p.event()
}

func (p *PerType) event() {
	p.events++
	if p.events >= p.cfg.UpdatePeriod {
		for _, cs := range p.classes {
			recomputeRank(p.cfg.AgeBuckets, cs.hits, cs.evicts, cs.rank)
		}
		p.events = 0
	}
}

// Victim implements cache.Policy: lowest EVA under the frame's own
// class ranking.
func (p *PerType) Victim(set int, lines []cache.Line, allowed uint64) int {
	best := -1
	bestEVA := 0.0
	bestAge := -1
	for w := 0; w < p.ways; w++ {
		if allowed&(1<<uint(w)) == 0 {
			continue
		}
		i := set*p.ways + w
		a := p.age(set, w)
		e := p.state(p.class[i]).rank[a]
		if best < 0 || e < bestEVA || (e == bestEVA && a > bestAge) {
			best, bestEVA, bestAge = w, e, a
		}
	}
	return best
}

var _ cache.Policy = (*PerType)(nil)
