package eva

import (
	"math/rand"
	"testing"

	"github.com/maps-sim/mapsim/internal/cache"
)

func TestConfigDefaults(t *testing.T) {
	p := New(Config{})
	if p.cfg.AgeBuckets != 128 || p.cfg.Granularity != 8 || p.cfg.UpdatePeriod != 16384 {
		t.Errorf("defaults not applied: %+v", p.cfg)
	}
}

func TestRunsUnderCache(t *testing.T) {
	c := cache.MustNew(8*1024, 8, New(Config{UpdatePeriod: 512}))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(512)) * 64
		c.Access(addr, rng.Intn(5) == 0, cache.WholeBlock)
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses || s.Hits == 0 {
		t.Errorf("inconsistent stats: %+v", s)
	}
}

func TestFittingWorkingSetAllHits(t *testing.T) {
	c := cache.MustNew(16*64, 16, New(Config{UpdatePeriod: 64, Granularity: 1}))
	for pass := 0; pass < 50; pass++ {
		for b := uint64(0); b < 16; b++ {
			c.Access(b*64, false, cache.WholeBlock)
		}
	}
	s := c.Stats()
	if s.Misses != 16 {
		t.Errorf("fitting working set missed %d times, want 16 cold misses", s.Misses)
	}
}

func TestLearnsToKeepHotLines(t *testing.T) {
	// Mixed traffic: 8 hot blocks re-referenced constantly plus a
	// stream of cold blocks touched once. After training, EVA should
	// hold the hot blocks and a hot pass should hit (mostly).
	p := New(Config{UpdatePeriod: 256, Granularity: 2, AgeBuckets: 64})
	c := cache.MustNew(16*64, 16, p)
	cold := uint64(1 << 20)
	for i := 0; i < 30000; i++ {
		c.Access(uint64(i%8)*64, false, cache.WholeBlock)
		if i%2 == 0 {
			c.Access(cold, false, cache.WholeBlock)
			cold += 64
		}
	}
	c.ResetStats()
	hot := 0
	for b := uint64(0); b < 8; b++ {
		if c.Access(b*64, false, cache.WholeBlock).Hit {
			hot++
		}
	}
	if hot < 6 {
		t.Errorf("only %d/8 hot blocks retained", hot)
	}
}

func TestVictimRespectsMask(t *testing.T) {
	p := New(Config{})
	p.Reset(1, 4)
	lines := make([]cache.Line, 4)
	for w := 0; w < 4; w++ {
		p.OnInsert(0, w, &lines[w])
	}
	for i := 0; i < 100; i++ {
		if w := p.Victim(0, lines, 0b0110); w != 1 && w != 2 {
			t.Fatalf("victim %d outside mask", w)
		}
		p.OnHit(0, 1, &lines[1], false)
	}
}

func TestRecomputeHandlesEmptyHistogram(t *testing.T) {
	p := New(Config{UpdatePeriod: 1})
	p.Reset(1, 2)
	// Force recompute with no recorded events: must not panic and
	// must keep a usable rank table.
	p.recompute()
	lines := make([]cache.Line, 2)
	p.OnInsert(0, 0, &lines[0])
	p.OnInsert(0, 1, &lines[1])
	if w := p.Victim(0, lines, 0b11); w != 0 && w != 1 {
		t.Fatalf("victim = %d", w)
	}
}

func TestRankPrefersRecentlyHittingAges(t *testing.T) {
	p := New(Config{AgeBuckets: 16, Granularity: 1, UpdatePeriod: 1 << 30})
	p.Reset(1, 2)
	// Hand-populate: age 2 always hits, age 10 always evicts.
	p.hits[2] = 1000
	p.evicts[10] = 1000
	p.recompute()
	if p.rank[2] <= p.rank[10] {
		t.Errorf("rank[2]=%v should exceed rank[10]=%v", p.rank[2], p.rank[10])
	}
}

func TestPerTypeSeparatesClasses(t *testing.T) {
	// Two classes with opposite behaviour: class 1 blocks die young,
	// class 2 blocks are re-referenced. The per-type variant must
	// keep learning them independently; the single-histogram policy
	// blurs them (the paper's complaint).
	p := NewPerType(Config{UpdatePeriod: 128, Granularity: 1, AgeBuckets: 32})
	c := cache.MustNew(8*64, 8, p)
	hot := cache.Options{Slot: -1, Class: 2}
	cold := cache.Options{Slot: -1, Class: 1}
	coldAddr := uint64(1 << 30)
	for i := 0; i < 20000; i++ {
		for b := uint64(0); b < 4; b++ {
			c.Access(b*64, false, hot)
		}
		c.Access(coldAddr, false, cold)
		coldAddr += 64
	}
	c.ResetStats()
	for b := uint64(0); b < 4; b++ {
		if !c.Access(b*64, false, hot).Hit {
			t.Errorf("hot block %d not retained by per-type EVA", b)
		}
	}
	if len(p.classes) != 2 {
		t.Errorf("expected 2 class states, have %d", len(p.classes))
	}
	if p.Name() != "eva-pertype" {
		t.Error("name")
	}
}

func TestPerTypeRunsUnderRandomTraffic(t *testing.T) {
	c := cache.MustNew(8*1024, 8, NewPerType(Config{UpdatePeriod: 512}))
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40000; i++ {
		c.Access(uint64(rng.Intn(512))*64, rng.Intn(4) == 0,
			cache.Options{Slot: -1, Class: uint8(rng.Intn(5))})
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses || s.Hits == 0 {
		t.Errorf("stats: %+v", s)
	}
}
