// Package eva implements the EVA (economic value added) replacement
// policy of Beckmann & Sanchez (HPCA 2017), in the single-histogram
// form analyzed by MAPS §V-A. Each frame's age — set-local accesses
// since insertion, coarsened into buckets — indexes a periodically
// recomputed table of
//
//	EVA(age) = P(age) - C * L(age)
//
// where P is the forward hit probability at that age, L the expected
// remaining lifetime, and C the per-frame opportunity cost derived
// from the overall hit rate. The victim is the frame with the lowest
// EVA.
//
// MAPS's finding — that bimodal metadata reuse defeats a single age
// histogram — falls out of this implementation naturally: short and
// long reuse populate the same histogram and the ranking blurs.
package eva

import (
	"github.com/maps-sim/mapsim/internal/cache"
)

// Config tunes the policy. The zero value selects usable defaults.
type Config struct {
	// AgeBuckets is the number of coarsened age classes.
	AgeBuckets int
	// Granularity is the number of set accesses per age bucket.
	Granularity int
	// UpdatePeriod is the number of events (hits+evictions) between
	// rank-table recomputations.
	UpdatePeriod int
}

func (c *Config) fill() {
	if c.AgeBuckets <= 0 {
		c.AgeBuckets = 128
	}
	if c.Granularity <= 0 {
		c.Granularity = 8
	}
	if c.UpdatePeriod <= 0 {
		c.UpdatePeriod = 16384
	}
}

// Policy is the EVA replacement policy. Create with New.
type Policy struct {
	cfg  Config
	ways int

	setClock []uint64 // per-set access counter
	born     []uint64 // per-frame insertion time (set-local clock)

	hits   []float64 // events by age bucket
	evicts []float64
	rank   []float64 // EVA by age bucket
	events int
}

// New creates an EVA policy.
func New(cfg Config) *Policy {
	cfg.fill()
	return &Policy{cfg: cfg}
}

// Name implements cache.Policy.
func (*Policy) Name() string { return "eva" }

// Reset implements cache.Policy.
func (p *Policy) Reset(sets, ways int) {
	p.ways = ways
	p.setClock = make([]uint64, sets)
	p.born = make([]uint64, sets*ways)
	p.hits = make([]float64, p.cfg.AgeBuckets)
	p.evicts = make([]float64, p.cfg.AgeBuckets)
	p.rank = make([]float64, p.cfg.AgeBuckets)
	p.events = 0
	// Without data, prefer evicting older frames, like LRU.
	for a := range p.rank {
		p.rank[a] = -float64(a)
	}
}

func (p *Policy) age(set, way int) int {
	a := int((p.setClock[set] - p.born[set*p.ways+way]) / uint64(p.cfg.Granularity))
	if a >= p.cfg.AgeBuckets {
		a = p.cfg.AgeBuckets - 1
	}
	return a
}

// OnHit implements cache.Policy: record the hit age and start a new
// generation for the frame.
func (p *Policy) OnHit(set, way int, line *cache.Line, write bool) {
	p.setClock[set]++
	p.hits[p.age(set, way)]++
	p.born[set*p.ways+way] = p.setClock[set]
	p.event()
}

// OnInsert implements cache.Policy.
func (p *Policy) OnInsert(set, way int, line *cache.Line) {
	p.setClock[set]++
	p.born[set*p.ways+way] = p.setClock[set]
}

// OnEvict implements cache.Policy.
func (p *Policy) OnEvict(set, way int, line *cache.Line) {
	p.evicts[p.age(set, way)]++
	p.event()
}

func (p *Policy) event() {
	p.events++
	if p.events >= p.cfg.UpdatePeriod {
		p.recompute()
		p.events = 0
	}
}

// Victim implements cache.Policy: the allowed frame with the lowest
// EVA; ties break toward the older frame.
func (p *Policy) Victim(set int, lines []cache.Line, allowed uint64) int {
	best := -1
	bestEVA := 0.0
	bestAge := -1
	for w := 0; w < p.ways; w++ {
		if allowed&(1<<uint(w)) == 0 {
			continue
		}
		a := p.age(set, w)
		e := p.rank[a]
		if best < 0 || e < bestEVA || (e == bestEVA && a > bestAge) {
			best, bestEVA, bestAge = w, e, a
		}
	}
	return best
}

// recompute rebuilds the EVA rank table from the age histograms and
// then decays the histograms so the policy adapts to phase changes.
//
// Following Beckmann & Sanchez, a frame's value spans generations: a
// generation ending in a hit restarts the line at age zero, accruing
// the age-zero value again, while the per-frame opportunity cost is
// the overall hit yield per unit of frame occupancy. With
// per-generation hit probability pGen(a) and expected remaining
// generation time lGen(a),
//
//	EVA(a) = pGen(a)·(1 + r0) - C·(lGen(a) + pGen(a)·T0)
//
// where r0 and T0 are the fixed points of the age-zero recurrences
// r0 = pGen(0)(1+r0) and T0 = lGen(0) + pGen(0)·T0.
func (p *Policy) recompute() {
	recomputeRank(p.cfg.AgeBuckets, p.hits, p.evicts, p.rank)
}

// recomputeRank rebuilds one rank table from one pair of age
// histograms and then decays them; shared by the single-histogram
// policy and the per-type variant.
func recomputeRank(n int, hits, evicts, rank []float64) {
	// Backward cumulative sums over the age histograms.
	cumEvents := make([]float64, n+1)
	cumHits := make([]float64, n+1)
	remLife := make([]float64, n+1) // Σ_{x>=a} (x-a)·events(x)
	for a := n - 1; a >= 0; a-- {
		ev := hits[a] + evicts[a]
		cumEvents[a] = cumEvents[a+1] + ev
		cumHits[a] = cumHits[a+1] + hits[a]
		remLife[a] = remLife[a+1] + cumEvents[a+1]
	}
	totalFrameTime := remLife[0] // Σ x·events(x)
	if cumEvents[0] == 0 || totalFrameTime == 0 {
		return
	}
	c := cumHits[0] / totalFrameTime // hits per unit frame occupancy

	p0 := cumHits[0] / cumEvents[0]
	if p0 > 0.999 {
		p0 = 0.999
	}
	l0 := remLife[0] / cumEvents[0]
	r0 := p0 / (1 - p0)
	t0 := l0 / (1 - p0)

	for a := 0; a < n; a++ {
		if cumEvents[a] == 0 {
			// No observed events at or past this age: the frame is
			// probably dead; rank it for eviction.
			rank[a] = -1e9 - float64(a)
			continue
		}
		pGen := cumHits[a] / cumEvents[a]
		lGen := remLife[a] / cumEvents[a]
		rank[a] = pGen*(1+r0) - c*(lGen+pGen*t0)
	}
	// Exponential decay keeps the histograms responsive.
	for a := 0; a < n; a++ {
		hits[a] /= 2
		evicts[a] /= 2
	}
}

var _ cache.Policy = (*Policy)(nil)
