package opt

import (
	"math/rand"
	"testing"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/trace"
)

func TestCSOPTScheduleMatchesCSOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tr := &trace.Trace{}
	for i := 0; i < 300; i++ {
		tr.Append(trace.Access{Addr: uint64(rng.Intn(10)) * 64, Cost: uint8(1 + rng.Intn(4))})
	}
	plain, err := CSOPT(tr, 2*64*2, 2, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	sched, res, err := CSOPTSchedule(tr, 2*64*2, 2, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != plain.Cost || res.Misses != plain.Misses {
		t.Errorf("schedule solve (cost %d, misses %d) != plain (%d, %d)",
			res.Cost, res.Misses, plain.Cost, plain.Misses)
	}
	if sched.Misses() != int(res.Misses) {
		t.Errorf("schedule has %d miss entries, want %d", sched.Misses(), res.Misses)
	}
	if sched.Sets() != 2 {
		t.Errorf("sets = %d", sched.Sets())
	}
}

// Replaying the schedule on the exact trace must reproduce the
// optimal cost: the scripted policy follows every prescription.
func TestScriptedReplayAchievesOptimalCost(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := &trace.Trace{}
	costs := map[uint64]uint8{}
	for i := 0; i < 400; i++ {
		addr := uint64(rng.Intn(8)) * 64
		if _, ok := costs[addr]; !ok {
			costs[addr] = uint8(1 + rng.Intn(5))
		}
		tr.Append(trace.Access{Addr: addr, Cost: costs[addr]})
	}
	sched, res, err := CSOPTSchedule(tr, 2*64, 2, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	scripted := NewScripted(sched)
	c := cache.MustNew(2*64, 2, scripted)
	var replayCost uint64
	var misses uint64
	for _, a := range tr.Accesses {
		if !c.Access(a.Addr, a.Write, cache.WholeBlock).Hit {
			replayCost += uint64(a.Cost)
			misses++
		}
	}
	if replayCost != res.Cost || misses != res.Misses {
		t.Errorf("replay (cost %d, misses %d) != optimal (%d, %d); diverged %d times",
			replayCost, misses, res.Cost, res.Misses, scripted.Diverged)
	}
	if scripted.Diverged != 0 {
		t.Errorf("faithful replay diverged %d times", scripted.Diverged)
	}
}

// Replaying against a different stream diverges and falls back — the
// iterate-CSOPT pathology of §V-B in miniature.
func TestScriptedDivergesOnDifferentStream(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Append(trace.Access{Addr: uint64(i%4) * 64, Cost: 1})
	}
	sched, _, err := CSOPTSchedule(tr, 2*64, 2, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	scripted := NewScripted(sched)
	c := cache.MustNew(2*64, 2, scripted)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		c.Access(uint64(rng.Intn(16))*64, false, cache.WholeBlock)
	}
	if scripted.Diverged == 0 {
		t.Error("divergent stream never fell back")
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses {
		t.Errorf("inconsistent stats: %+v", s)
	}
}

func TestCSOPTScheduleGeometryValidation(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(trace.Access{Addr: 0, Cost: 1})
	if _, _, err := CSOPTSchedule(tr, 100, 3, 0); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, _, err := CSOPTSchedule(tr, 3*64*2, 2, 0); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestScriptedName(t *testing.T) {
	s := NewScripted(&Schedule{perSet: map[int][]uint64{}})
	if s.Name() != "csopt-scripted" {
		t.Error("name")
	}
}
