package opt

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/maps-sim/mapsim/internal/trace"
)

// ErrStateExplosion reports that CSOPT exceeded its state budget —
// the tractability wall MAPS hits when running CSOPT on
// memory-intensive benchmarks ("more than 6 days ... the simulator
// does not finish").
var ErrStateExplosion = fmt.Errorf("opt: CSOPT state budget exceeded")

// CSOPTResult summarizes a cost-sensitive optimal solve.
type CSOPTResult struct {
	// Cost is the minimum total miss cost achievable on the fixed
	// trace, in memory accesses.
	Cost uint64
	// Misses is the miss count along the cheapest path.
	Misses uint64
	// PeakStates is the largest number of simultaneous cache states
	// explored in any set, evidence of the algorithm's expense.
	PeakStates int
}

type costMiss struct {
	cost   uint64
	misses uint64
}

func better(a, b costMiss) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.misses < b.misses
}

// CSOPT computes the minimum total miss cost of a fixed access trace
// on a size/ways cache, considering every eviction choice
// (breadth-first over cache states with dominance pruning, after
// Jeong & Dubois). Per-access miss costs come from the trace. Each
// cache set is independent for a fixed trace, so sets are solved
// separately and summed.
//
// maxStates bounds the per-set frontier; exceeding it returns
// ErrStateExplosion. Zero means a conservative default of 1<<16.
//
// CSOPT assumes the trace is fixed — it cannot model the
// trace-changing feedback of metadata caches; MAPS §V-B explains why
// that assumption breaks and how iterating to a fixed point still
// fails to finish. This implementation exists to reproduce both the
// method and its cost.
func CSOPT(tr *trace.Trace, sizeBytes, ways int, maxStates int) (CSOPTResult, error) {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	if ways <= 0 || sizeBytes <= 0 || sizeBytes%(64*ways) != 0 {
		return CSOPTResult{}, fmt.Errorf("opt: bad geometry size=%d ways=%d", sizeBytes, ways)
	}
	sets := sizeBytes / (64 * ways)
	if sets&(sets-1) != 0 {
		return CSOPTResult{}, fmt.Errorf("opt: set count %d not a power of two", sets)
	}

	bySet := make(map[int][]trace.Access)
	for _, a := range tr.Accesses {
		s := int(a.Addr / 64 % uint64(sets))
		bySet[s] = append(bySet[s], a)
	}

	var total CSOPTResult
	for _, sub := range bySet {
		res, err := csoptSet(sub, ways, maxStates)
		if err != nil {
			return CSOPTResult{}, err
		}
		total.Cost += res.Cost
		total.Misses += res.Misses
		if res.PeakStates > total.PeakStates {
			total.PeakStates = res.PeakStates
		}
	}
	return total, nil
}

// csoptSet solves one cache set's subtrace exactly.
func csoptSet(sub []trace.Access, ways, maxStates int) (CSOPTResult, error) {
	// A state is the sorted multiset-free content of the set, encoded
	// as a byte string of addresses.
	states := map[string]costMiss{"": {}}
	peak := 1
	buf := make([]uint64, 0, ways+1)

	for _, acc := range sub {
		next := make(map[string]costMiss, len(states))
		relax := func(key string, v costMiss) {
			if old, ok := next[key]; !ok || better(v, old) {
				next[key] = v
			}
		}
		cost := uint64(acc.Cost)
		if cost == 0 {
			cost = 1
		}
		for key, v := range states {
			content := decodeState(key, buf)
			if containsAddr(content, acc.Addr) {
				relax(key, v) // hit: free, state unchanged
				continue
			}
			miss := costMiss{cost: v.cost + cost, misses: v.misses + 1}
			if len(content) < ways {
				relax(encodeState(append(content, acc.Addr)), miss)
				continue
			}
			// Branch over every eviction candidate.
			for i := range content {
				candidate := make([]uint64, 0, ways)
				candidate = append(candidate, content[:i]...)
				candidate = append(candidate, content[i+1:]...)
				candidate = append(candidate, acc.Addr)
				relax(encodeState(candidate), miss)
			}
		}
		states = next
		if len(states) > peak {
			peak = len(states)
		}
		if len(states) > maxStates {
			return CSOPTResult{}, fmt.Errorf("%w: %d states in one set", ErrStateExplosion, len(states))
		}
	}

	best := costMiss{cost: ^uint64(0)}
	for _, v := range states {
		if better(v, best) {
			best = v
		}
	}
	return CSOPTResult{Cost: best.cost, Misses: best.misses, PeakStates: peak}, nil
}

func encodeState(content []uint64) string {
	sort.Slice(content, func(i, j int) bool { return content[i] < content[j] })
	b := make([]byte, 8*len(content))
	for i, a := range content {
		binary.LittleEndian.PutUint64(b[i*8:], a)
	}
	return string(b)
}

func decodeState(key string, buf []uint64) []uint64 {
	buf = buf[:0]
	for i := 0; i+8 <= len(key); i += 8 {
		buf = append(buf, binary.LittleEndian.Uint64([]byte(key[i:i+8])))
	}
	return buf
}

func containsAddr(content []uint64, addr uint64) bool {
	for _, a := range content {
		if a == addr {
			return true
		}
	}
	return false
}

// OfflineMIN computes the exact Belady miss count for a fixed trace
// on a size/ways cache with uniform miss costs. Unlike the live MIN
// policy, the trace here really is the access stream, so this is the
// true optimum for uniform costs — the baseline CSOPT must match when
// every cost is one.
func OfflineMIN(tr *trace.Trace, sizeBytes, ways int) (misses uint64, err error) {
	if ways <= 0 || sizeBytes <= 0 || sizeBytes%(64*ways) != 0 {
		return 0, fmt.Errorf("opt: bad geometry size=%d ways=%d", sizeBytes, ways)
	}
	sets := sizeBytes / (64 * ways)
	if sets&(sets-1) != 0 {
		return 0, fmt.Errorf("opt: set count %d not a power of two", sets)
	}

	// Next-use chain: for access i, nextUse[i] is the position of the
	// next access to the same address, or infinity.
	const inf = int64(1) << 62
	n := len(tr.Accesses)
	nextUse := make([]int64, n)
	last := make(map[uint64]int)
	for i := n - 1; i >= 0; i-- {
		a := tr.Accesses[i].Addr
		if j, ok := last[a]; ok {
			nextUse[i] = int64(j)
		} else {
			nextUse[i] = inf
		}
		last[a] = i
	}

	type entry struct {
		addr uint64
		next int64
	}
	content := make(map[int][]entry, sets)
	for i, acc := range tr.Accesses {
		s := int(acc.Addr / 64 % uint64(sets))
		set := content[s]
		hit := false
		for j := range set {
			if set[j].addr == acc.Addr {
				set[j].next = nextUse[i]
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		misses++
		if len(set) < ways {
			content[s] = append(set, entry{acc.Addr, nextUse[i]})
			continue
		}
		victim, far := 0, int64(-1)
		for j := range set {
			if set[j].next > far {
				victim, far = j, set[j].next
			}
		}
		set[victim] = entry{acc.Addr, nextUse[i]}
	}
	return misses, nil
}
