package opt

import (
	"fmt"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/trace"
)

// Schedule is the eviction plan extracted from a CSOPT solve: for
// each cache set, the victim chosen at each miss, in miss order. The
// NoVictim sentinel means the miss filled an empty way.
//
// Replaying a Schedule against a *different* access stream — which is
// exactly what happens when eviction decisions change the metadata
// accesses — exercises the paper's §V-B iteration: the script runs
// out of alignment and the replay must fall back to an online policy.
type Schedule struct {
	sets   int
	ways   int
	perSet map[int][]uint64
}

// Sets reports the geometry the schedule was computed for.
func (s *Schedule) Sets() int { return s.sets }

// Misses reports the total number of scheduled misses.
func (s *Schedule) Misses() int {
	n := 0
	for _, v := range s.perSet {
		n += len(v)
	}
	return n
}

// CSOPTSchedule solves the cost-sensitive optimal replacement problem
// and additionally reconstructs the eviction schedule along the
// cheapest path. Costs and geometry follow CSOPT.
func CSOPTSchedule(tr *trace.Trace, sizeBytes, ways, maxStates int) (*Schedule, CSOPTResult, error) {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	if ways <= 0 || sizeBytes <= 0 || sizeBytes%(64*ways) != 0 {
		return nil, CSOPTResult{}, fmt.Errorf("opt: bad geometry size=%d ways=%d", sizeBytes, ways)
	}
	sets := sizeBytes / (64 * ways)
	if sets&(sets-1) != 0 {
		return nil, CSOPTResult{}, fmt.Errorf("opt: set count %d not a power of two", sets)
	}

	bySet := make(map[int][]trace.Access)
	for _, a := range tr.Accesses {
		s := int(a.Addr / 64 % uint64(sets))
		bySet[s] = append(bySet[s], a)
	}

	sched := &Schedule{sets: sets, ways: ways, perSet: map[int][]uint64{}}
	var total CSOPTResult
	for set, sub := range bySet {
		victims, res, err := csoptSetSchedule(sub, ways, maxStates)
		if err != nil {
			return nil, CSOPTResult{}, err
		}
		sched.perSet[set] = victims
		total.Cost += res.Cost
		total.Misses += res.Misses
		if res.PeakStates > total.PeakStates {
			total.PeakStates = res.PeakStates
		}
	}
	return sched, total, nil
}

// NoVictim marks a scheduled miss that filled an empty way.
const NoVictim = ^uint64(0)

// step records how a state was reached at one access.
type step struct {
	parent string
	victim uint64 // NoVictim = no eviction
	miss   bool
}

// csoptSetSchedule is csoptSet with backpointers, reconstructing the
// victim sequence of the cheapest path.
func csoptSetSchedule(sub []trace.Access, ways, maxStates int) ([]uint64, CSOPTResult, error) {
	states := map[string]costMiss{"": {}}
	history := make([]map[string]step, len(sub))
	peak := 1
	buf := make([]uint64, 0, ways+1)

	for i, acc := range sub {
		next := make(map[string]costMiss, len(states))
		steps := make(map[string]step, len(states))
		relax := func(key string, v costMiss, st step) {
			// Ties break toward the lexicographically smallest parent
			// so the reconstructed schedule is deterministic: map
			// iteration order must not pick among equal-cost paths.
			if old, ok := next[key]; !ok || better(v, old) ||
				(!better(old, v) && st.parent < steps[key].parent) {
				next[key] = v
				steps[key] = st
			}
		}
		cost := uint64(acc.Cost)
		if cost == 0 {
			cost = 1
		}
		for key, v := range states {
			content := decodeState(key, buf)
			if containsAddr(content, acc.Addr) {
				relax(key, v, step{parent: key})
				continue
			}
			miss := costMiss{cost: v.cost + cost, misses: v.misses + 1}
			if len(content) < ways {
				relax(encodeState(append(content, acc.Addr)), miss, step{parent: key, victim: NoVictim, miss: true})
				continue
			}
			for j := range content {
				victim := content[j]
				candidate := make([]uint64, 0, ways)
				candidate = append(candidate, content[:j]...)
				candidate = append(candidate, content[j+1:]...)
				candidate = append(candidate, acc.Addr)
				relax(encodeState(candidate), miss, step{parent: key, victim: victim, miss: true})
			}
		}
		states = next
		history[i] = steps
		if len(states) > peak {
			peak = len(states)
		}
		if len(states) > maxStates {
			return nil, CSOPTResult{}, fmt.Errorf("%w: %d states in one set", ErrStateExplosion, len(states))
		}
	}

	bestKey, best, haveBest := "", costMiss{cost: ^uint64(0)}, false
	for key, v := range states {
		if !haveBest || better(v, best) || (!better(best, v) && key < bestKey) {
			bestKey, best, haveBest = key, v, true
		}
	}

	// Walk backpointers to the start, collecting victims at misses.
	victims := make([]uint64, 0, best.misses)
	key := bestKey
	for i := len(sub) - 1; i >= 0; i-- {
		st := history[i][key]
		if st.miss {
			victims = append(victims, st.victim)
		}
		key = st.parent
	}
	// Reverse into miss order.
	for l, r := 0, len(victims)-1; l < r; l, r = l+1, r-1 {
		victims[l], victims[r] = victims[r], victims[l]
	}
	return victims, CSOPTResult{Cost: best.cost, Misses: best.misses, PeakStates: peak}, nil
}

// Scripted replays a Schedule as a cache.Policy. While the live
// stream matches the one the schedule was solved for, every eviction
// is the optimal one. When the script prescribes a block that is not
// resident, or runs out of prescriptions, the policy falls back to
// true LRU and counts the divergence — the measurable symptom of the
// trace-feedback problem.
type Scripted struct {
	sched    *Schedule
	missIdx  map[int]int
	fallback *policy.LRU
	// Diverged counts misses where the script could not be followed.
	Diverged uint64
	// Followed counts misses evicted exactly as prescribed.
	Followed uint64
}

// NewScripted wraps a schedule for replay.
func NewScripted(sched *Schedule) *Scripted {
	return &Scripted{sched: sched, missIdx: map[int]int{}, fallback: policy.NewLRU()}
}

// Name implements cache.Policy.
func (*Scripted) Name() string { return "csopt-scripted" }

// Reset implements cache.Policy.
func (p *Scripted) Reset(sets, ways int) {
	p.missIdx = map[int]int{}
	p.fallback.Reset(sets, ways)
}

// OnHit implements cache.Policy.
func (p *Scripted) OnHit(set, way int, line *cache.Line, write bool) {
	p.fallback.OnHit(set, way, line, write)
}

// OnInsert implements cache.Policy. Insertions advance the set's
// script position: every insertion corresponds to one scheduled miss.
func (p *Scripted) OnInsert(set, way int, line *cache.Line) {
	p.fallback.OnInsert(set, way, line)
	p.missIdx[set]++
}

// OnEvict implements cache.Policy.
func (p *Scripted) OnEvict(set, way int, line *cache.Line) {
	p.fallback.OnEvict(set, way, line)
}

// Victim implements cache.Policy: follow the script when possible.
func (p *Scripted) Victim(set int, lines []cache.Line, allowed uint64) int {
	script := p.sched.perSet[set]
	idx := p.missIdx[set]
	if idx < len(script) && script[idx] != NoVictim {
		want := script[idx]
		for w := range lines {
			if allowed&(1<<uint(w)) != 0 && lines[w].Addr == want {
				p.Followed++
				return w
			}
		}
	}
	p.Diverged++
	return p.fallback.Victim(set, lines, allowed)
}

var _ cache.Policy = (*Scripted)(nil)
