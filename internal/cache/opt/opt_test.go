package opt

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/trace"
)

func uniformTrace(addrs []uint64) *trace.Trace {
	tr := &trace.Trace{}
	for _, a := range addrs {
		tr.Append(trace.Access{Addr: a * 64, Cost: 1})
	}
	return tr
}

func replayMisses(tr *trace.Trace, size, ways int, p cache.Policy) uint64 {
	c := cache.MustNew(size, ways, p)
	for _, a := range tr.Accesses {
		c.Access(a.Addr, a.Write, cache.WholeBlock)
	}
	return c.Stats().Misses
}

func TestMINBeatsLRUOnItsOwnTrace(t *testing.T) {
	// Cyclic pattern over ways+1 blocks in one set: LRU thrashes
	// (misses everything), MIN with faithful future knowledge keeps
	// most of the set.
	var seq []uint64
	for i := 0; i < 60; i++ {
		seq = append(seq, uint64(i%3))
	}
	tr := uniformTrace(seq)
	lru := replayMisses(tr, 2*64, 2, policy.NewLRU())
	min := replayMisses(tr, 2*64, 2, NewMIN(tr))
	if lru != 60 {
		t.Fatalf("LRU misses = %d, want full thrash 60", lru)
	}
	// Belady on a cyclic 3-block stream with 2 ways misses every
	// other access plus a cold miss: 31.
	if min > 31 {
		t.Errorf("MIN misses = %d, want <= 31 (LRU thrashes at %d)", min, lru)
	}
}

func TestMINMatchesOfflineMINWhenTraceIsFaithful(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var seq []uint64
	for i := 0; i < 3000; i++ {
		seq = append(seq, uint64(rng.Intn(32)))
	}
	tr := uniformTrace(seq)
	live := replayMisses(tr, 4*64*4, 4, NewMIN(tr))
	offline, err := OfflineMIN(tr, 4*64*4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if live != offline {
		t.Errorf("live MIN on faithful trace = %d misses, offline = %d", live, offline)
	}
}

func TestMINStaleKnowledge(t *testing.T) {
	// Feed MIN a trace for a DIFFERENT access stream. The oracle
	// misleads; the policy must still terminate and produce sane
	// stats (this is the paper's deviation pathology in miniature).
	oracle := uniformTrace([]uint64{0, 1, 2, 3, 0, 1, 2, 3})
	min := NewMIN(oracle)
	c := cache.MustNew(2*64, 2, min)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		c.Access(uint64(rng.Intn(8))*64, false, cache.WholeBlock)
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses {
		t.Errorf("inconsistent stats: %+v", s)
	}
	// All future queues exhausted: every block looks dead.
	if min.NextUse(0) != -1 {
		t.Error("queue for block 0 should be exhausted")
	}
}

func TestMINNextUse(t *testing.T) {
	tr := uniformTrace([]uint64{5, 6, 5})
	min := NewMIN(tr)
	if got := min.NextUse(5 * 64); got != 0 {
		t.Errorf("initial next use = %d, want 0", got)
	}
	// Replay aligned with the trace: 5, 6, 5.
	min.OnAccess(5*64, false) // cursor 1: position 0 consumed
	if got := min.NextUse(5 * 64); got != 2 {
		t.Errorf("after first access, next = %d, want 2", got)
	}
	min.OnAccess(6*64, false)
	min.OnAccess(5*64, false) // cursor 3: beyond the last position
	if got := min.NextUse(5 * 64); got != -1 {
		t.Errorf("exhausted next = %d, want -1", got)
	}
	if got := min.NextUse(999 * 64); got != -1 {
		t.Errorf("unknown block next = %d, want -1", got)
	}
}

func TestMINCursorDrift(t *testing.T) {
	// Divergent replay: extra live accesses push the cursor past
	// recorded positions, so a block the trace says is reused soon
	// looks dead — the staleness MAPS §V-B describes.
	tr := uniformTrace([]uint64{1, 2, 3, 1})
	min := NewMIN(tr)
	for i := 0; i < 4; i++ {
		min.OnAccess(99*64, false) // accesses the trace never saw
	}
	if got := min.NextUse(1 * 64); got != -1 {
		t.Errorf("after drift, next use = %d, want -1 (stale oracle)", got)
	}
}

func TestOfflineMINGeometryValidation(t *testing.T) {
	tr := uniformTrace([]uint64{0})
	if _, err := OfflineMIN(tr, 0, 4); err == nil {
		t.Error("bad size accepted")
	}
	if _, err := OfflineMIN(tr, 3*64*4, 4); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestCSOPTUniformCostMatchesOfflineMIN(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var seq []uint64
	for i := 0; i < 400; i++ {
		seq = append(seq, uint64(rng.Intn(10)))
	}
	tr := uniformTrace(seq)
	offline, err := OfflineMIN(tr, 2*64*2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := CSOPT(tr, 2*64*2, 2, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Misses != offline || cs.Cost != offline {
		t.Errorf("CSOPT (misses=%d cost=%d) != offline MIN (%d) under uniform cost", cs.Misses, cs.Cost, offline)
	}
	if cs.PeakStates < 1 {
		t.Error("peak states not tracked")
	}
}

func TestCSOPTSingleWayAlternatingFullyMisses(t *testing.T) {
	// One set, 1 way, alternating A/B with mandatory write-allocate:
	// every access misses regardless of policy, so the optimum is the
	// full cost sum. Pins down the insertion model.
	tr := &trace.Trace{}
	app := func(addr uint64, cost uint8) { tr.Append(trace.Access{Addr: addr * 64, Cost: cost}) }
	app(0, 10)
	app(1, 1)
	app(0, 10)
	app(1, 1)
	app(0, 10)
	cs, err := CSOPT(tr, 64, 1, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Cost != 32 || cs.Misses != 5 {
		t.Errorf("CSOPT = {cost %d, misses %d}, want {32, 5}", cs.Cost, cs.Misses)
	}
}

func TestCSOPTCostSensitiveBeatsDistanceOnly(t *testing.T) {
	// Two-way set, X expensive (8), Y/Z cheap (1):
	//   X Y Z Y X
	// At Z's miss the set holds {X, Y}. Distance-only Belady evicts X
	// (reused furthest) and pays for it again: 8+1+1+0+8 = 18.
	// Cost-aware evicts Y, re-misses Y cheaply, and hits X:
	// 8+1+1+1+0 = 11.
	tr := &trace.Trace{}
	app := func(addr uint64, cost uint8) { tr.Append(trace.Access{Addr: addr * 64, Cost: cost}) }
	app(0, 8) // X
	app(1, 1) // Y
	app(2, 1) // Z
	app(1, 1) // Y
	app(0, 8) // X

	cs, err := CSOPT(tr, 2*64, 2, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Cost != 11 {
		t.Errorf("CSOPT cost = %d, want 11 (cost-aware keeps the expensive block)", cs.Cost)
	}

	// The distance-only plan really does pay 18: replay live MIN on
	// its faithful trace accumulating costs.
	c := cache.MustNew(2*64, 2, NewMIN(tr))
	var minCost uint64
	for _, a := range tr.Accesses {
		if !c.Access(a.Addr, a.Write, cache.WholeBlock).Hit {
			minCost += uint64(a.Cost)
		}
	}
	if minCost != 18 {
		t.Errorf("distance-only MIN cost = %d, want 18", minCost)
	}
	if cs.Cost >= minCost {
		t.Errorf("CSOPT (%d) should beat distance-only MIN (%d)", cs.Cost, minCost)
	}
}

func TestCSOPTStateExplosion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := &trace.Trace{}
	for i := 0; i < 2000; i++ {
		tr.Append(trace.Access{Addr: uint64(rng.Intn(64)) * 64, Cost: uint8(1 + rng.Intn(8))})
	}
	_, err := CSOPT(tr, 64*8, 8, 64) // tiny state budget
	if !errors.Is(err, ErrStateExplosion) {
		t.Errorf("expected state explosion, got %v", err)
	}
}

func TestCSOPTGeometryValidation(t *testing.T) {
	tr := uniformTrace([]uint64{0})
	if _, err := CSOPT(tr, 100, 3, 0); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := CSOPT(tr, 3*64*2, 2, 0); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestCSOPTDefaultBudget(t *testing.T) {
	tr := uniformTrace([]uint64{0, 1, 0})
	if _, err := CSOPT(tr, 64, 1, 0); err != nil {
		t.Errorf("default budget failed: %v", err)
	}
}

// Property: CSOPT cost never exceeds the cost of replaying the trace
// under LRU (optimal is at least as good as any online policy).
func TestPropertyCSOPTLowerBoundsLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for round := 0; round < 10; round++ {
		tr := &trace.Trace{}
		costs := make(map[uint64]uint8)
		for i := 0; i < 200; i++ {
			addr := uint64(rng.Intn(12)) * 64
			if _, ok := costs[addr]; !ok {
				costs[addr] = uint8(1 + rng.Intn(6))
			}
			tr.Append(trace.Access{Addr: addr, Cost: costs[addr]})
		}
		cs, err := CSOPT(tr, 2*64*2, 2, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		// Replay under LRU, accumulating the same costs.
		c := cache.MustNew(2*64*2, 2, policy.NewLRU())
		var lruCost uint64
		for _, a := range tr.Accesses {
			if !c.Access(a.Addr, false, cache.WholeBlock).Hit {
				lruCost += uint64(a.Cost)
			}
		}
		if cs.Cost > lruCost {
			t.Errorf("round %d: CSOPT cost %d exceeds LRU cost %d", round, cs.Cost, lruCost)
		}
	}
}
