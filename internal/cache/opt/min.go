// Package opt implements the offline "optimal" replacement policies
// MAPS evaluates and critiques: Belady's MIN driven by a recorded
// trace, and CSOPT, the cost-sensitive optimal search of Jeong &
// Dubois. Neither is actually optimal for metadata caches — showing
// why is the point of the paper's §V.
package opt

import (
	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/trace"
)

// MIN is Belady's algorithm with future knowledge taken from a
// recorded trace (MAPS records it under true LRU). The policy keeps a
// global cursor that advances once per live access, and a block's
// "next use" is its first recorded trace position beyond the cursor —
// exactly what "feeding the trace back as future knowledge" means.
//
// When the live stream tracks the trace one-for-one, this is classic
// MIN and provably optimal for uniform costs. But metadata accesses
// depend on cache contents: different evictions change which tree
// nodes are requested, the live stream diverges from the recording,
// and the cursor drifts out of alignment. From then on the future
// knowledge is silently wrong — the paper's observation that MIN
// "starts using incorrect future knowledge once it makes a
// replacement decision that deviates from true-LRU."
type MIN struct {
	positions map[uint64][]int64
	ptr       map[uint64]int
	cursor    int64
}

// NewMIN builds the policy from a recorded trace.
func NewMIN(tr *trace.Trace) *MIN {
	return &MIN{positions: tr.FutureQueues(), ptr: make(map[uint64]int)}
}

// Name implements cache.Policy.
func (*MIN) Name() string { return "min" }

// Reset implements cache.Policy. Future knowledge persists across
// geometry resets; the cursor restarts.
func (p *MIN) Reset(sets, ways int) {
	p.ptr = make(map[uint64]int)
	p.cursor = 0
}

// OnAccess implements cache.Policy: every live access advances the
// trace cursor, aligned or not.
func (p *MIN) OnAccess(addr uint64, write bool) {
	p.cursor++
}

// NextUse returns the first recorded position of addr at or beyond
// the cursor, or -1 when the oracle believes the block is never used
// again. Per-address pointers advance lazily and monotonically, so
// the amortized cost is O(1).
func (p *MIN) NextUse(addr uint64) int64 {
	list := p.positions[addr]
	i := p.ptr[addr]
	for i < len(list) && list[i] < p.cursor {
		i++
	}
	p.ptr[addr] = i
	if i >= len(list) {
		return -1
	}
	return list[i]
}

// OnHit implements cache.Policy.
func (*MIN) OnHit(set, way int, line *cache.Line, write bool) {}

// OnInsert implements cache.Policy.
func (*MIN) OnInsert(set, way int, line *cache.Line) {}

// OnEvict implements cache.Policy.
func (*MIN) OnEvict(set, way int, line *cache.Line) {}

// Victim implements cache.Policy: evict the allowed block reused
// furthest in the future; blocks with no known reuse win outright.
func (p *MIN) Victim(set int, lines []cache.Line, allowed uint64) int {
	best := -1
	var bestNext int64
	for w := range lines {
		if allowed&(1<<uint(w)) == 0 {
			continue
		}
		next := p.NextUse(lines[w].Addr)
		if next < 0 {
			return w
		}
		if best < 0 || next > bestNext {
			best, bestNext = w, next
		}
	}
	return best
}

var _ cache.Policy = (*MIN)(nil)
