// Package typepred implements the replacement policy MAPS's
// conclusions call for but leave as future work: an RRIP-style
// reuse predictor whose prediction signature is the *metadata type*
// (kind + tree level + request type) rather than a PC or address
// hash. Section VI: "metadata type and access type should figure
// into those replacement policies".
//
// Mechanism (SHiP-style, signature = class byte):
//
//   - Per-signature saturating counters learn whether blocks of that
//     signature are typically reused before eviction.
//   - Insertions consult the counter: reused signatures insert with a
//     near prediction (RRPV 0/long), dead signatures insert distant
//     (RRPV max), so streams of hopeless hash blocks flow through one
//     way instead of flushing the counters and tree nodes that do
//     cache well.
//   - Hits promote to RRPV 0 and train the signature up; evictions of
//     never-reused blocks train it down.
package typepred

import (
	"github.com/maps-sim/mapsim/internal/cache"
)

const (
	rrpvMax    = 3
	ctrMax     = 7
	ctrInit    = 4
	signatures = 256
)

// Policy is the type-aware reuse predictor.
type Policy struct {
	ways int
	rrpv []uint8
	// reused marks whether a resident line has hit since insertion.
	reused []bool
	// sig is the signature each resident line was inserted under.
	sig []uint8
	// ctr holds the per-signature reuse confidence.
	ctr [signatures]uint8

	// pending is the signature of the access currently being
	// processed (OnAccess runs before insertion).
	pending uint8
}

// New creates a type-aware predictor.
func New() *Policy { return &Policy{} }

// Name implements cache.Policy.
func (*Policy) Name() string { return "typepred" }

// Reset implements cache.Policy.
func (p *Policy) Reset(sets, ways int) {
	p.ways = ways
	p.rrpv = make([]uint8, sets*ways)
	p.reused = make([]bool, sets*ways)
	p.sig = make([]uint8, sets*ways)
	for i := range p.ctr {
		p.ctr[i] = ctrInit
	}
}

// Observe tells the policy the classification of the next access.
// The metadata cache calls it with the class byte (kind + level); the
// request type is folded in by the write bit.
func (p *Policy) Observe(class uint8, write bool) {
	s := class
	if write {
		s |= 0x80
	}
	p.pending = s
}

// OnHit implements cache.Policy: promote and train up.
func (p *Policy) OnHit(set, way int, line *cache.Line, write bool) {
	i := set*p.ways + way
	p.rrpv[i] = 0
	if !p.reused[i] {
		p.reused[i] = true
		if p.ctr[p.sig[i]] < ctrMax {
			p.ctr[p.sig[i]]++
		}
	}
}

// OnInsert implements cache.Policy: prediction by signature.
func (p *Policy) OnInsert(set, way int, line *cache.Line) {
	// Prefer the line's own class over the pending hint: the cache
	// stores it at insertion, making this robust to interleaving.
	s := line.Class
	if p.pending != 0 {
		s = p.pending
	}
	i := set*p.ways + way
	p.sig[i] = s
	p.reused[i] = false
	switch {
	case p.ctr[s] >= 6: // strongly reused: near
		p.rrpv[i] = 0
	case p.ctr[s] <= 1: // dead on arrival: distant
		p.rrpv[i] = rrpvMax
	default:
		p.rrpv[i] = rrpvMax - 1
	}
	p.pending = 0
}

// OnEvict implements cache.Policy: dead blocks train their signature
// down.
func (p *Policy) OnEvict(set, way int, line *cache.Line) {
	i := set*p.ways + way
	if !p.reused[i] && p.ctr[p.sig[i]] > 0 {
		p.ctr[p.sig[i]]--
	}
}

// Victim implements cache.Policy: standard RRIP aging over the
// allowed ways.
func (p *Policy) Victim(set int, lines []cache.Line, allowed uint64) int {
	for {
		for w := 0; w < p.ways; w++ {
			if allowed&(1<<uint(w)) != 0 && p.rrpv[set*p.ways+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			if allowed&(1<<uint(w)) != 0 && p.rrpv[set*p.ways+w] < rrpvMax {
				p.rrpv[set*p.ways+w]++
			}
		}
	}
}

// Confidence reports the learned reuse counter for a signature, for
// tests and diagnostics.
func (p *Policy) Confidence(class uint8, write bool) uint8 {
	s := class
	if write {
		s |= 0x80
	}
	return p.ctr[s]
}

var _ cache.Policy = (*Policy)(nil)
