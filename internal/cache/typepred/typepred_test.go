package typepred

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/cache"
)

func TestName(t *testing.T) {
	if New().Name() != "typepred" {
		t.Error("name")
	}
}

func TestLearnsDeadSignature(t *testing.T) {
	p := New()
	c := cache.MustNew(8*64, 8, p)
	// Class 1 blocks stream through without reuse; class 2 blocks are
	// hot.
	hot := cache.Options{Slot: -1, Class: 2}
	cold := cache.Options{Slot: -1, Class: 1}
	coldAddr := uint64(1 << 30)
	for i := 0; i < 4000; i++ {
		c.Access(uint64(i%4)*64, false, hot)
		c.Access(coldAddr, false, cold)
		coldAddr += 64
	}
	if conf := p.Confidence(1, false); conf > 2 {
		t.Errorf("streaming class confidence = %d, want low", conf)
	}
	if conf := p.Confidence(2, false); conf < 5 {
		t.Errorf("hot class confidence = %d, want high", conf)
	}
	// The hot blocks must remain resident despite the stream.
	c.ResetStats()
	for b := uint64(0); b < 4; b++ {
		if !c.Access(b*64, false, hot).Hit {
			t.Errorf("hot block %d evicted by dead stream", b)
		}
	}
}

func TestBeatsPLRUOnMixedDeadTraffic(t *testing.T) {
	// Hot working set + heavy one-shot stream: the predictor should
	// out-hit an oblivious policy. (This is the paper's SVI argument
	// for type-aware replacement.)
	// Single 8-way set. Hot blocks show within-burst reuse (like tree
	// nodes and counters under spatial locality: touched twice in
	// quick succession), the dead stream is touched once (like
	// streaming hash blocks). A 6-block hot set + 10 dead blocks per
	// round oversubscribe the set, so cross-round survival depends on
	// telling the classes apart.
	run := func(hotClass uint8) uint64 {
		c := cache.MustNew(8*64, 8, New())
		hot := cache.Options{Slot: -1, Class: hotClass}
		cold := cache.Options{Slot: -1, Class: 1}
		coldAddr := uint64(1 << 30)
		var crossRoundHits uint64
		for i := 0; i < 5000; i++ {
			for b := uint64(0); b < 6; b++ {
				if c.Access(b*64, false, hot).Hit {
					crossRoundHits++
				}
				c.Access(b*64, false, hot) // within-burst reuse
			}
			for j := 0; j < 10; j++ {
				c.Access(coldAddr, false, cold)
				coldAddr += 64
			}
		}
		return crossRoundHits
	}
	pred := run(2)    // distinct signatures: predictor separates them
	uniform := run(1) // same signature for hot and dead traffic
	if pred <= uniform {
		t.Errorf("type signatures (%d cross-round hits) should beat uniform classes (%d)", pred, uniform)
	}
}

func TestObservePendingSignature(t *testing.T) {
	p := New()
	p.Reset(1, 2)
	var line cache.Line
	p.Observe(3, true)
	p.OnInsert(0, 0, &line)
	if p.sig[0] != 3|0x80 {
		t.Errorf("pending signature not applied: %#x", p.sig[0])
	}
	// Pending consumed: next insert uses the line's class.
	line.Class = 5
	p.OnInsert(0, 1, &line)
	if p.sig[1] != 5 {
		t.Errorf("line class not used: %#x", p.sig[1])
	}
}

func TestVictimRespectsMask(t *testing.T) {
	p := New()
	p.Reset(1, 4)
	lines := make([]cache.Line, 4)
	for w := 0; w < 4; w++ {
		p.OnInsert(0, w, &lines[w])
	}
	for i := 0; i < 50; i++ {
		if w := p.Victim(0, lines, 0b1010); w != 1 && w != 3 {
			t.Fatalf("victim %d outside mask", w)
		}
	}
}
