package cache_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/policy"
)

func newLRU(t testing.TB, size, ways int) *cache.Cache {
	t.Helper()
	return cache.MustNew(size, ways, policy.NewLRU())
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ size, ways int }{
		{0, 8}, {4096, 0}, {4096, 65}, {100, 1},
		{3 * 64 * 8, 8}, // 3 sets: not a power of two
	} {
		if _, err := cache.New(tc.size, tc.ways, policy.NewLRU()); err == nil {
			t.Errorf("New(%d,%d) accepted", tc.size, tc.ways)
		}
	}
	c := newLRU(t, 64*1024, 8)
	if c.Sets() != 128 || c.Ways() != 8 || c.SizeBytes() != 64*1024 {
		t.Errorf("geometry: sets=%d ways=%d size=%d", c.Sets(), c.Ways(), c.SizeBytes())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cache.MustNew(1, 1, policy.NewLRU())
}

func TestHitMissBasics(t *testing.T) {
	c := newLRU(t, 4096, 4) // 16 sets
	r := c.Access(0, false, cache.WholeBlock)
	if r.Hit || !r.Inserted {
		t.Fatalf("first access: %+v", r)
	}
	r = c.Access(63, false, cache.WholeBlock) // same block
	if !r.Hit {
		t.Fatal("same-block access missed")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
	if (cache.Stats{}).MissRate() != 0 {
		t.Error("empty miss rate should be 0")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Single-set cache, 4 ways.
	c := newLRU(t, 4*64, 4)
	stride := uint64(64) // everything maps to set 0
	for i := uint64(0); i < 4; i++ {
		c.Access(i*stride, false, cache.WholeBlock)
	}
	// Touch block 0 so block 1 is LRU.
	c.Access(0, false, cache.WholeBlock)
	r := c.Access(4*stride, false, cache.WholeBlock)
	if !r.Evicted.Valid || r.Evicted.Addr != 1*stride {
		t.Fatalf("evicted %+v, want addr %#x", r.Evicted, stride)
	}
}

func TestDirtyEviction(t *testing.T) {
	c := newLRU(t, 2*64, 2)
	c.Access(0, true, cache.WholeBlock)
	c.Access(64, false, cache.WholeBlock)
	r := c.Access(128, false, cache.WholeBlock)
	if !r.Evicted.Valid || !r.Evicted.Dirty || r.Evicted.Addr != 0 {
		t.Fatalf("expected dirty eviction of block 0, got %+v", r.Evicted)
	}
	if c.Stats().DirtyEvicts != 1 {
		t.Errorf("dirty evictions = %d", c.Stats().DirtyEvicts)
	}
}

func TestNoAlloc(t *testing.T) {
	c := newLRU(t, 2*64, 2)
	r := c.Access(0, false, cache.Options{Slot: -1, NoAlloc: true})
	if r.Hit || r.Inserted {
		t.Fatalf("NoAlloc inserted: %+v", r)
	}
	if c.Probe(0) != nil {
		t.Error("block present after NoAlloc miss")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := newLRU(t, 2*64, 2)
	c.Access(0, false, cache.WholeBlock)
	before := c.Stats()
	if c.Probe(0) == nil || c.Probe(64) != nil {
		t.Error("probe results wrong")
	}
	if c.Stats() != before {
		t.Error("probe changed stats")
	}
}

func TestClassRecorded(t *testing.T) {
	c := newLRU(t, 2*64, 2)
	c.Access(0, false, cache.Options{Slot: -1, Class: 3})
	if l := c.Probe(0); l == nil || l.Class != 3 {
		t.Fatalf("class not recorded: %+v", l)
	}
	if c.Occupancy(3) != 1 || c.Occupancy(2) != 0 || c.Occupancy(-1) != 1 {
		t.Error("occupancy by class wrong")
	}
}

func TestPartialWriteInsert(t *testing.T) {
	c := newLRU(t, 2*64, 2)
	// Partial write-miss: placeholder with only slot 2 valid.
	r := c.Access(0, true, cache.Options{Slot: 2, Partial: true})
	if r.Hit || !r.Inserted {
		t.Fatalf("partial insert: %+v", r)
	}
	l := c.Probe(0)
	if l.ValidMask != 1<<2 || !l.Dirty {
		t.Fatalf("placeholder line: %+v", l)
	}
	// Write to another slot fills it.
	r = c.Access(0, true, cache.Options{Slot: 5})
	if !r.Hit || !r.SlotValid == false && false {
		t.Fatalf("slot write: %+v", r)
	}
	if l := c.Probe(0); l.ValidMask != (1<<2 | 1<<5) {
		t.Fatalf("mask = %#x", l.ValidMask)
	}
	// Read of an invalid slot is a partial miss and then fills.
	r = c.Access(0, false, cache.Options{Slot: 0})
	if !r.Hit || r.SlotValid {
		t.Fatalf("expected partial miss: %+v", r)
	}
	if c.Stats().PartialMiss != 1 {
		t.Errorf("partial misses = %d", c.Stats().PartialMiss)
	}
	r = c.Access(0, false, cache.Options{Slot: 0})
	if !r.Hit || !r.SlotValid {
		t.Fatalf("slot should now be valid: %+v", r)
	}
	// Eviction carries the mask out.
	c.Access(64, false, cache.WholeBlock)
	r = c.Access(128, false, cache.WholeBlock)
	if !r.Evicted.Valid || r.Evicted.ValidMask == cache.FullMask {
		t.Fatalf("evicted mask: %+v", r.Evicted)
	}
}

func TestSlotOutOfRangePanics(t *testing.T) {
	c := newLRU(t, 2*64, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Access(0, false, cache.Options{Slot: 8})
}

func TestAllowedMaskPartition(t *testing.T) {
	// 4-way single set; class A restricted to ways {0,1}, class B to
	// ways {2,3}.
	c := newLRU(t, 4*64, 4)
	a := cache.Options{Slot: -1, Class: 0, Allowed: 0b0011}
	b := cache.Options{Slot: -1, Class: 1, Allowed: 0b1100}
	for i := uint64(0); i < 3; i++ {
		c.Access(i*64, false, a)
	}
	for i := uint64(10); i < 13; i++ {
		c.Access(i*64, false, b)
	}
	// Partition respected: exactly 2 of each class resident.
	if got := c.Occupancy(0); got != 2 {
		t.Errorf("class A occupancy = %d, want 2", got)
	}
	if got := c.Occupancy(1); got != 2 {
		t.Errorf("class B occupancy = %d, want 2", got)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := newLRU(t, 4*64, 4)
	c.Access(0, true, cache.WholeBlock)
	c.Access(64, false, cache.WholeBlock)
	if _, ok := c.Invalidate(64); !ok {
		t.Fatal("invalidate existing failed")
	}
	if _, ok := c.Invalidate(64); ok {
		t.Fatal("invalidate missing succeeded")
	}
	dirty := c.Flush()
	if len(dirty) != 1 || dirty[0].Addr != 0 {
		t.Fatalf("flush dirty = %+v", dirty)
	}
	if c.Occupancy(-1) != 0 {
		t.Error("cache not empty after flush")
	}
}

// Oracle model: plain map-based fully-indexed LRU simulation, checked
// against the cache for single-set configurations.
func TestPropertyLRUMatchesOracle(t *testing.T) {
	const ways = 4
	f := func(seq []uint8) bool {
		c := newLRU(t, ways*64, ways)
		var oracle []uint64 // recency stack, most recent last
		for _, s := range seq {
			addr := uint64(s%16) * 64
			hit := false
			for i, a := range oracle {
				if a == addr {
					oracle = append(append(oracle[:i], oracle[i+1:]...), addr)
					hit = true
					break
				}
			}
			if !hit {
				if len(oracle) == ways {
					oracle = oracle[1:]
				}
				oracle = append(oracle, addr)
			}
			r := c.Access(addr, false, cache.WholeBlock)
			if r.Hit != hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: occupancy never exceeds capacity and hits+misses ==
// accesses under random traffic for every policy.
func TestPropertyPolicyInvariants(t *testing.T) {
	policies := map[string]func() cache.Policy{
		"lru":    func() cache.Policy { return policy.NewLRU() },
		"plru":   func() cache.Policy { return policy.NewPLRU() },
		"fifo":   func() cache.Policy { return policy.NewFIFO() },
		"random": func() cache.Policy { return policy.NewRandom(1) },
		"srrip":  func() cache.Policy { return policy.NewSRRIP() },
		"brrip":  func() cache.Policy { return policy.NewBRRIP() },
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			c := cache.MustNew(8*1024, 8, mk())
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 20000; i++ {
				addr := uint64(rng.Intn(1024)) * 64
				c.Access(addr, rng.Intn(4) == 0, cache.WholeBlock)
			}
			s := c.Stats()
			if s.Hits+s.Misses != s.Accesses {
				t.Errorf("hits+misses != accesses: %+v", s)
			}
			if occ := c.Occupancy(-1); occ > c.Sets()*c.Ways() {
				t.Errorf("occupancy %d exceeds capacity", occ)
			}
			if s.Hits == 0 || s.Misses == 0 {
				t.Errorf("degenerate traffic: %+v", s)
			}
		})
	}
}
