package cache_test

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/policy"
)

// fastSlowPair builds two caches with identical geometry: one whose
// policy the cache devirtualizes, and one forced through the generic
// Policy interface with policy.Generic.
func fastSlowPair(t *testing.T, name string) (fast, slow *cache.Cache) {
	t.Helper()
	const size, ways = 8 << 10, 4
	switch name {
	case "lru":
		return cache.MustNew(size, ways, policy.NewLRU()),
			cache.MustNew(size, ways, policy.Generic(policy.NewLRU()))
	case "plru":
		return cache.MustNew(size, ways, policy.NewPLRU()),
			cache.MustNew(size, ways, policy.Generic(policy.NewPLRU()))
	default:
		t.Fatalf("unknown pair %q", name)
		return nil, nil
	}
}

// TestFastAccessMatchesGeneric drives the same random reference stream
// through the devirtualized FastAccess path and through a cache whose
// policy.Generic wrapper forces the interface path, requiring
// identical per-access outcomes, counters, and final contents.
func TestFastAccessMatchesGeneric(t *testing.T) {
	for _, name := range []string{"lru", "plru"} {
		t.Run(name, func(t *testing.T) {
			fast, slow := fastSlowPair(t, name)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 50_000; i++ {
				addr := uint64(rng.Intn(1<<15)) * 64 // 32K blocks over an 8K cache: heavy eviction
				write := rng.Intn(4) == 0
				fh, fa, fd := fast.FastAccess(addr, write)
				sh, sa, sd := slow.FastAccess(addr, write)
				if fh != sh || fa != sa || fd != sd {
					t.Fatalf("access %d (addr %#x write %v): fast (%v,%#x,%v) vs generic (%v,%#x,%v)",
						i, addr, write, fh, fa, fd, sh, sa, sd)
				}
			}
			if fs, ss := fast.Stats(), slow.Stats(); fs != ss {
				t.Errorf("stats diverge: fast %+v generic %+v", fs, ss)
			}
			if ff, sf := fast.Flush(), slow.Flush(); !reflect.DeepEqual(ff, sf) {
				t.Errorf("flush contents diverge: fast %d lines, generic %d lines", len(ff), len(sf))
			}
		})
	}
}

// TestFastAccessClassedMatchesGeneric is the classed/masked variant:
// random classes and allowed-way masks (including the unrestricted
// zero mask) must behave identically on both paths.
func TestFastAccessClassedMatchesGeneric(t *testing.T) {
	for _, name := range []string{"lru", "plru"} {
		t.Run(name, func(t *testing.T) {
			fast, slow := fastSlowPair(t, name)
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 50_000; i++ {
				addr := uint64(rng.Intn(1<<15)) * 64
				write := rng.Intn(4) == 0
				class := uint8(rng.Intn(6))
				var allowed uint64
				if rng.Intn(2) == 0 {
					allowed = uint64(1 + rng.Intn(15)) // non-empty subset of 4 ways
				}
				fh, fa, ff := fast.FastAccessClassed(addr, write, class, allowed)
				sh, sa, sf := slow.FastAccessClassed(addr, write, class, allowed)
				if fh != sh || fa != sa || ff != sf {
					t.Fatalf("access %d (addr %#x write %v class %d allowed %#x): fast (%v,%#x,%#x) vs generic (%v,%#x,%#x)",
						i, addr, write, class, allowed, fh, fa, ff, sh, sa, sf)
				}
			}
			if fs, ss := fast.Stats(), slow.Stats(); fs != ss {
				t.Errorf("stats diverge: fast %+v generic %+v", fs, ss)
			}
			if ff, sf := fast.Flush(), slow.Flush(); !reflect.DeepEqual(ff, sf) {
				t.Errorf("flush contents diverge: fast %d lines, generic %d lines", len(ff), len(sf))
			}
		})
	}
}
