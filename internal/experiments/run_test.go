package experiments

import (
	"strings"
	"testing"
)

// Every name in Names must dispatch, and the registry must not grow
// entries Names doesn't advertise.
func TestRegistryCoversNames(t *testing.T) {
	names := Names()
	for _, name := range names {
		if _, ok := registry[name]; !ok {
			t.Errorf("Names lists %q but registry has no harness for it", name)
		}
	}
	if len(registry) != len(names) {
		t.Errorf("registry has %d entries, Names lists %d", len(registry), len(names))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", Options{}, false); err == nil {
		t.Fatal("Run(fig99) succeeded, want error")
	}
}

// The static tables are free to run; check Report plumbing end to end.
func TestRunStaticTables(t *testing.T) {
	for _, name := range []string{"table1", "table2"} {
		rep, err := Run(name, Options{}, false)
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if rep.Name != name {
			t.Errorf("Run(%s) Name = %q", name, rep.Name)
		}
		if rep.Table == "" || rep.Result == nil {
			t.Errorf("Run(%s) returned empty table or nil result", name)
		}
		if rep.Elapsed < 0 {
			t.Errorf("Run(%s) Elapsed = %v", name, rep.Elapsed)
		}
	}
}

// Charts render only when requested and only where supported (fig5
// has none).
func TestRunChartGating(t *testing.T) {
	opt := Options{Instructions: 50_000, Benchmarks: []string{"fft"}}
	rep, err := Run("fig1", opt, true)
	if err != nil {
		t.Fatalf("Run(fig1): %v", err)
	}
	if rep.Chart == "" || !strings.Contains(rep.Chart, "MPKI") {
		t.Errorf("fig1 with charts: chart missing or unlabeled: %q", rep.Chart)
	}
	rep, err = Run("fig1", opt, false)
	if err != nil {
		t.Fatalf("Run(fig1): %v", err)
	}
	if rep.Chart != "" {
		t.Error("fig1 without charts still rendered one")
	}
}

// Options.validate must reject values the defaults would otherwise
// silently swallow: a negative instruction count forced through the
// CLI's int64→uint64 conversion, and empty or unknown benchmark
// overrides (which used to fall back to the default suite).
func TestRunValidatesOptions(t *testing.T) {
	cases := map[string]Options{
		"negative instructions": {Instructions: ^uint64(0)}, // -1 as int64
		"empty benchmark":       {Instructions: 50_000, Benchmarks: []string{""}},
		"unknown benchmark":     {Instructions: 50_000, Benchmarks: []string{"quake4"}},
	}
	for name, opt := range cases {
		if _, err := Run("fig1", opt, false); err == nil {
			t.Errorf("%s: Run accepted invalid options", name)
		}
	}
}

// Report.Elapsed must cover rendering exactly once: rendering is part
// of the report, but the old code stamped Elapsed both before and
// after the render depending on the path.
func TestRunElapsedCoversRender(t *testing.T) {
	rep, err := Run("fig1", Options{Instructions: 50_000, Benchmarks: []string{"fft"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 {
		t.Fatalf("Elapsed = %v, want > 0", rep.Elapsed)
	}
}
