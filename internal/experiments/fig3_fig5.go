package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/reuse"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
)

// ReuseThresholds are the byte distances at which the Figure 3/5 CDFs
// are sampled.
var ReuseThresholds = []uint64{
	512, 4 << 10, 32 << 10, 288 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// WorkingSetMarker is the paper's 288 KB vertical line: nine metadata
// blocks per 4 KB page covering a 2 MB LLC.
const WorkingSetMarker = 288 << 10

// reuseRun runs one benchmark with no metadata cache and feeds every
// metadata access into a fresh analyzer.
func reuseRun(ctx context.Context, bench string, instructions uint64) (*reuse.Analyzer, error) {
	an := reuse.NewAnalyzer(int(instructions / 2))
	_, err := sim.RunContext(ctx, sim.Config{
		Benchmark:    bench,
		Instructions: instructions,
		Secure:       true,
		Speculation:  true,
		Tap: func(a trace.Access) {
			an.Record(a.Addr, memlayout.Kind(a.Class), a.Write)
		},
	})
	if err != nil {
		return nil, err
	}
	return an, nil
}

// reuseSweep runs reuseRun for each benchmark on the shared runTasks
// fan-out: bounded parallelism and fail-fast first-error semantics,
// like every other experiment.
func reuseSweep(benches []string, opt Options) (map[string]*reuse.Analyzer, error) {
	analyzers := make(map[string]*reuse.Analyzer, len(benches))
	var mu sync.Mutex
	err := runTasks(context.Background(), len(benches), opt.Parallelism, func(ctx context.Context, i int) error {
		an, err := reuseRun(ctx, benches[i], opt.Instructions)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", benches[i], err)
		}
		mu.Lock()
		analyzers[benches[i]] = an
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return analyzers, nil
}

// Fig3Result holds per-benchmark, per-kind reuse CDFs.
type Fig3Result struct {
	Benchmarks []string
	Thresholds []uint64
	// CDF[benchmark][kind][i] corresponds to Thresholds[i].
	CDF map[string]map[memlayout.Kind][]float64
}

// Fig3 reproduces Figure 3: the reuse-distance CDF of each metadata
// type under a 2 MB LLC with no metadata cache, for the six
// representative benchmarks.
func Fig3(opt Options) (*Fig3Result, error) {
	opt.fill()
	benches := opt.benchmarks(workload.Representative())
	analyzers, err := reuseSweep(benches, opt)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Benchmarks: benches, Thresholds: ReuseThresholds, CDF: map[string]map[memlayout.Kind][]float64{}}
	for b, an := range analyzers {
		m := map[memlayout.Kind][]float64{}
		for _, k := range memlayout.MetaKinds {
			m[k] = an.CDF(k, ReuseThresholds)
		}
		res.CDF[b] = m
	}
	return res, nil
}

// Render prints one CDF table per benchmark with the 288 KB marker
// column flagged.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: reuse-distance CDF by metadata type (2MB LLC, no metadata cache)\n\n")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(&sb, "%s:\n", b)
		var t stats.Table
		header := []string{"type"}
		for _, th := range r.Thresholds {
			l := sizeLabel(int(th))
			if th == WorkingSetMarker {
				l += "*"
			}
			header = append(header, l)
		}
		t.AddRow(header...)
		for _, k := range memlayout.MetaKinds {
			row := []string{k.String()}
			cdf := r.CDF[b][k]
			for i := range r.Thresholds {
				if i >= len(cdf) {
					// A partial result (e.g. JSON-decoded with a missing
					// benchmark) renders placeholders, not a panic.
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.2f", cdf[i]))
			}
			t.AddRow(row...)
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("(* = 288KB: 9 metadata blocks per page x 2MB LLC working set)\n")
	return sb.String()
}

// Fig4Result holds the four-class reuse breakdown per benchmark.
type Fig4Result struct {
	Benchmarks []string
	// Classes[benchmark] are fractions of all metadata accesses in
	// {<=8KB, 8-16KB, 16-32KB, >32KB}.
	Classes map[string][4]float64
	// Bimodality[benchmark] = mass in the two extreme classes.
	Bimodality map[string]float64
}

// Fig4 reproduces Figure 4: classification of metadata accesses into
// the paper's four reuse-distance classes, showing the bimodal shape.
func Fig4(opt Options) (*Fig4Result, error) {
	opt.fill()
	benches := opt.benchmarks(workload.Names())
	analyzers, err := reuseSweep(benches, opt)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Benchmarks: benches, Classes: map[string][4]float64{}, Bimodality: map[string]float64{}}
	for b, an := range analyzers {
		var combined [4]float64
		var total float64
		for _, k := range memlayout.MetaKinds {
			classes := an.Classes(k)
			w := float64(an.Accesses(k))
			for i := range combined {
				combined[i] += classes[i] * w
			}
			total += w
		}
		if total > 0 {
			for i := range combined {
				combined[i] /= total
			}
		}
		res.Classes[b] = combined
		res.Bimodality[b] = combined[0] + combined[3]
	}
	return res, nil
}

// Render prints the class breakdown per benchmark.
func (r *Fig4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4: metadata accesses by reuse-distance class\n\n")
	var t stats.Table
	t.AddRow("benchmark", reuse.ClassLabels[0], reuse.ClassLabels[1], reuse.ClassLabels[2], reuse.ClassLabels[3], "bimodality")
	for _, b := range r.Benchmarks {
		c := r.Classes[b]
		t.AddRow(b,
			fmt.Sprintf("%.2f", c[0]), fmt.Sprintf("%.2f", c[1]),
			fmt.Sprintf("%.2f", c[2]), fmt.Sprintf("%.2f", c[3]),
			fmt.Sprintf("%.2f", r.Bimodality[b]))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// Fig5Result holds reuse CDFs split by request-type transition and
// metadata type.
type Fig5Result struct {
	Benchmarks []string
	Thresholds []uint64
	// CDF[benchmark][kind][transition][i]
	CDF map[string]map[memlayout.Kind]map[reuse.Transition][]float64
	// Counts[benchmark][kind][transition]
	Counts map[string]map[memlayout.Kind]map[reuse.Transition]uint64
}

// Fig5 reproduces Figure 5: reuse-distance CDFs split by request and
// metadata type for the two most write-heavy memory-intensive
// benchmarks (fft at 20% writes, leslie3d at 5%).
func Fig5(opt Options) (*Fig5Result, error) {
	opt.fill()
	benches := opt.benchmarks([]string{"fft", "leslie3d"})
	analyzers, err := reuseSweep(benches, opt)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		Benchmarks: benches,
		Thresholds: ReuseThresholds,
		CDF:        map[string]map[memlayout.Kind]map[reuse.Transition][]float64{},
		Counts:     map[string]map[memlayout.Kind]map[reuse.Transition]uint64{},
	}
	for b, an := range analyzers {
		kinds := map[memlayout.Kind]map[reuse.Transition][]float64{}
		counts := map[memlayout.Kind]map[reuse.Transition]uint64{}
		for _, k := range memlayout.MetaKinds {
			kinds[k] = map[reuse.Transition][]float64{}
			counts[k] = map[reuse.Transition]uint64{}
			for _, tr := range reuse.Transitions {
				kinds[k][tr] = an.TransitionCDF(k, tr, ReuseThresholds)
				counts[k][tr] = an.TransitionCount(k, tr)
			}
		}
		res.CDF[b] = kinds
		res.Counts[b] = counts
	}
	return res, nil
}

// Render prints per-benchmark tables of transition CDFs.
func (r *Fig5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: reuse-distance CDF by request and metadata type\n\n")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(&sb, "%s:\n", b)
		var t stats.Table
		header := []string{"type", "transition", "n"}
		for _, th := range r.Thresholds {
			header = append(header, sizeLabel(int(th)))
		}
		t.AddRow(header...)
		for _, k := range memlayout.MetaKinds {
			for _, tr := range reuse.Transitions {
				n := r.Counts[b][k][tr]
				if n == 0 {
					continue
				}
				row := []string{k.String(), tr.String(), fmt.Sprintf("%d", n)}
				cdf := r.CDF[b][k][tr]
				for i := range r.Thresholds {
					if i >= len(cdf) {
						// Placeholder for partial results, as in Fig3.
						row = append(row, "-")
						continue
					}
					row = append(row, fmt.Sprintf("%.2f", cdf[i]))
				}
				t.AddRow(row...)
			}
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
