// Package experiments reproduces every table and figure of MAPS
// (ISPASS 2018). Each ExperimentN function runs the required
// simulation sweep and returns a structured result with a Render
// method that prints the same rows/series the paper plots.
// DESIGN.md §4 maps experiments to modules and expected shapes.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/sweep"
	"github.com/maps-sim/mapsim/internal/workload"
)

// Names lists every experiment, paper order first then extensions —
// the registry behind `maps all` and mapsd's GET /v1/experiments.
func Names() []string {
	return []string{
		"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"ablate-partial", "content-matrix", "org-compare", "csopt", "spec-window", "tree-stretch",
	}
}

// Options tunes an experiment sweep.
type Options struct {
	// Instructions per simulation (default 2M; tests use far less).
	Instructions uint64
	// Benchmarks overrides the experiment's default benchmark list.
	Benchmarks []string
	// Parallelism bounds concurrent simulations (default NumCPU).
	Parallelism int
	// Shards is copied into every run's sim.Config.Shards: 0 keeps
	// runs sequential, N > 1 forces N epochs, sim.AutoShards sizes
	// each run to the CPU budget left over after Parallelism (the
	// fan-outs stamp their width via sim.WithConcurrency).
	Shards int
}

// validate rejects option values that would otherwise be silently
// replaced by defaults: an Instructions count that is a negative
// number forced into the uint64 (the CLI parses int64), and benchmark
// overrides that are empty strings or unknown names — simulating the
// default suite against the caller's intent.
func (o *Options) validate() error {
	if o.Instructions > math.MaxInt64 {
		return fmt.Errorf("experiments: negative instruction count (%d after uint64 conversion)", o.Instructions)
	}
	for _, b := range o.Benchmarks {
		if b == "" {
			return fmt.Errorf("experiments: empty benchmark name in override list")
		}
		if _, err := workload.New(b); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	return nil
}

func (o *Options) fill() {
	if o.Instructions == 0 {
		o.Instructions = 2_000_000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
}

func (o *Options) benchmarks(def []string) []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return def
}

// job is one simulation plus a slot to deliver its result.
type job struct {
	cfg sim.Config
	out **sim.Result
}

// runTasks runs fn(ctx, i) for every i in [0, n) with bounded
// parallelism and fail-fast cancellation: the first error cancels the
// shared context, tasks not yet started never start, and in-flight
// ones stop at their next cancellation check. Only the first error is
// kept, so runs cancelled as victims of an earlier failure never mask
// the root cause. Every experiment fan-out builds on this — the
// hand-rolled semaphores fig3/fig6/fig7 used to carry lacked both the
// cancellation and the never-start guarantee.
func runTasks(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) error) error {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	// Let AutoShards runs see how much CPU this fan-out already claims.
	ctx = sim.WithConcurrency(ctx, parallelism)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel() // abandon the rest of the fan-out
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return // a sibling already failed; don't start
			}
			if err := fn(ctx, i); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runAll executes jobs with bounded parallelism, failing fast on the
// first error. Configs must not share mutable state (pass benchmarks
// by name so each run builds private generators; taps must be
// per-job). Options.Shards is stamped onto every config that does not
// already pick its own sharding.
func runAll(jobList []job, opt Options) error {
	return runTasks(context.Background(), len(jobList), opt.Parallelism, func(ctx context.Context, i int) error {
		j := &jobList[i]
		if j.cfg.Shards == 0 {
			j.cfg.Shards = opt.Shards
		}
		res, err := sim.RunContext(ctx, j.cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", j.cfg.Benchmark, err)
		}
		*j.out = res
		return nil
	})
}

// runSweep executes a sweep spec on a transient worker pool sized to
// the experiment's parallelism — the shared grid fan-out behind fig1,
// fig2, and ablate-partial since the sweep-engine refactor. Local
// experiment runs carry no result cache: every point simulates.
func runSweep(spec sweep.Spec, opt Options) (*sweep.Result, error) {
	if spec.Base.Shards == 0 {
		spec.Base.Shards = opt.Shards
	}
	pool := jobs.New(opt.Parallelism, opt.Parallelism, jobs.WithContextWrap(func(ctx context.Context) context.Context {
		return sim.WithConcurrency(ctx, opt.Parallelism)
	}))
	defer pool.Shutdown(context.Background())
	eng := &sweep.Engine{Pool: pool}
	return eng.Run(context.Background(), spec)
}

// sizeLabel prints capacities the way the paper's axes do.
func sizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dMB", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%dKB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}

// MetaSizes are the metadata-cache capacities swept in Figures 1-2.
var MetaSizes = []int{16 << 10, 64 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20}

// LLCSizes are the last-level cache capacities swept in Figure 2.
var LLCSizes = []int{512 << 10, 1 << 20, 2 << 20, 4 << 20}
