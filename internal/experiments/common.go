// Package experiments reproduces every table and figure of MAPS
// (ISPASS 2018). Each ExperimentN function runs the required
// simulation sweep and returns a structured result with a Render
// method that prints the same rows/series the paper plots.
// DESIGN.md §4 maps experiments to modules and expected shapes.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/maps-sim/mapsim/internal/sim"
)

// Names lists every experiment, paper order first then extensions —
// the registry behind `maps all` and mapsd's GET /v1/experiments.
func Names() []string {
	return []string{
		"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"ablate-partial", "content-matrix", "org-compare", "csopt", "spec-window", "tree-stretch",
	}
}

// Options tunes an experiment sweep.
type Options struct {
	// Instructions per simulation (default 2M; tests use far less).
	Instructions uint64
	// Benchmarks overrides the experiment's default benchmark list.
	Benchmarks []string
	// Parallelism bounds concurrent simulations (default NumCPU).
	Parallelism int
}

func (o *Options) fill() {
	if o.Instructions == 0 {
		o.Instructions = 2_000_000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
}

func (o *Options) benchmarks(def []string) []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return def
}

// job is one simulation plus a slot to deliver its result.
type job struct {
	cfg sim.Config
	out **sim.Result
}

// runAll executes jobs with bounded parallelism, failing fast on the
// first error. Configs must not share mutable state (pass benchmarks
// by name so each run builds private generators; taps must be
// per-job).
func runAll(jobs []job, parallelism int) error {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j *job) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := sim.Run(j.cfg)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("experiments: %s: %w", j.cfg.Benchmark, err)
				}
				mu.Unlock()
				return
			}
			*j.out = res
		}(&jobs[i])
	}
	wg.Wait()
	return firstErr
}

// sizeLabel prints capacities the way the paper's axes do.
func sizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dMB", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%dKB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}

// MetaSizes are the metadata-cache capacities swept in Figures 1-2.
var MetaSizes = []int{16 << 10, 64 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20}

// LLCSizes are the last-level cache capacities swept in Figure 2.
var LLCSizes = []int{512 << 10, 1 << 20, 2 << 20, 4 << 20}
