package experiments

import (
	"fmt"
	"strings"

	"github.com/maps-sim/mapsim/internal/energy"
	"github.com/maps-sim/mapsim/internal/hierarchy"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// Fig1Contents are the content policies compared in Figure 1.
var Fig1Contents = []metacache.ContentPolicy{
	metacache.CountersOnly,
	metacache.CountersHashes,
	metacache.AllTypes,
}

// Fig1Result holds metadata MPKI per benchmark, content policy, and
// metadata cache size.
type Fig1Result struct {
	Benchmarks []string
	Sizes      []int
	Contents   []metacache.ContentPolicy
	// MPKI[benchmark][content][size] counts metadata-cache misses
	// among the types the cache holds — the paper's Figure 1 metric
	// (bypassed types are not misses).
	MPKI map[string]map[metacache.ContentPolicy]map[int]float64
	// MemPKI[benchmark][content][size] counts metadata *memory
	// accesses* per kilo-instruction — the traffic a bypassed type
	// still generates, which drives the energy argument.
	MemPKI map[string]map[metacache.ContentPolicy]map[int]float64
}

// Fig1 reproduces Figure 1: metadata MPKI as a function of metadata
// cache size when caching (i) only counters, (ii) counters+hashes,
// (iii) all metadata types, for canneal and libquantum.
func Fig1(opt Options) (*Fig1Result, error) {
	opt.fill()
	res := &Fig1Result{
		Benchmarks: opt.benchmarks([]string{"canneal", "libquantum"}),
		Sizes:      MetaSizes,
		Contents:   Fig1Contents,
		MPKI:       map[string]map[metacache.ContentPolicy]map[int]float64{},
		MemPKI:     map[string]map[metacache.ContentPolicy]map[int]float64{},
	}
	contents := make([]string, len(res.Contents))
	for i, c := range res.Contents {
		contents[i] = c.String()
	}
	sr, err := runSweep(sweep.Spec{
		Base: sim.Config{Instructions: opt.Instructions, Secure: true, Speculation: true},
		Axes: sweep.Axes{
			Benchmarks: res.Benchmarks,
			Meta:       sweep.IntAxis{Points: res.Sizes},
			Contents:   contents,
		},
	}, opt)
	if err != nil {
		return nil, err
	}
	put := func(dst map[string]map[metacache.ContentPolicy]map[int]float64, bench string, content metacache.ContentPolicy, size int, v float64) {
		m := dst[bench]
		if m == nil {
			m = map[metacache.ContentPolicy]map[int]float64{}
			dst[bench] = m
		}
		mm := m[content]
		if mm == nil {
			mm = map[int]float64{}
			m[content] = mm
		}
		mm[size] = v
	}
	for i := range sr.Points {
		p := &sr.Points[i]
		content, err := metacache.ParseContent(p.Content)
		if err != nil {
			return nil, err
		}
		put(res.MPKI, p.Benchmark, content, p.MetaBytes, p.Result.MetaMPKI)
		put(res.MemPKI, p.Benchmark, content, p.MetaBytes, p.Result.MetaMemPKI)
	}
	return res, nil
}

// Render prints, per benchmark, the cache-miss MPKI table (the
// paper's metric) and the metadata memory-traffic table that exposes
// what bypassed types still cost.
func (r *Fig1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: metadata MPKI by cache contents and size\n")
	sb.WriteString("(MPKI counts misses among cached types; mem/KI counts all metadata memory accesses)\n\n")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(&sb, "%s:\n", b)
		var t stats.Table
		header := []string{"contents", "metric"}
		for _, s := range r.Sizes {
			header = append(header, sizeLabel(s))
		}
		t.AddRow(header...)
		for _, c := range r.Contents {
			row := []string{c.String(), "MPKI"}
			for _, s := range r.Sizes {
				row = append(row, fmt.Sprintf("%.1f", r.MPKI[b][c][s]))
			}
			t.AddRow(row...)
			row = []string{"", "mem/KI"}
			for _, s := range r.Sizes {
				row = append(row, fmt.Sprintf("%.1f", r.MemPKI[b][c][s]))
			}
			t.AddRow(row...)
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig2Result holds normalized ED^2 per (LLC size, metadata cache
// size) for the suite average and for canneal.
type Fig2Result struct {
	LLCs  []int
	Metas []int
	// Norm[series][llc][meta] = ED^2 normalized to a 2MB-LLC insecure
	// system; series is "average" or a benchmark name.
	Norm map[string]map[int]map[int]float64
}

// Fig2 reproduces Figure 2: efficiency (normalized ED^2) across LLC
// and metadata cache size combinations, for the suite average and for
// canneal, normalized per benchmark to a 2 MB LLC without secure
// memory.
func Fig2(opt Options) (*Fig2Result, error) {
	opt.fill()
	// A balanced suite: the cache-friendly members (perlbench, gcc,
	// barnes) matter, because the paper's average-vs-canneal contrast
	// is about the common case preferring LLC capacity over metadata
	// cache capacity.
	benches := opt.benchmarks([]string{"perlbench", "gcc", "barnes", "libquantum", "fft", "leslie3d", "streamcluster", "canneal"})

	hier := func(llc int) hierarchy.Config {
		h := hierarchy.Default()
		h.L3Size = llc
		return h
	}
	// Two sweeps: the per-benchmark insecure 2MB-LLC baseline that ED^2
	// normalizes against, and the secure LLC × metadata grid.
	baseSweep, err := runSweep(sweep.Spec{
		Base: sim.Config{Instructions: opt.Instructions, Hierarchy: hier(2 << 20)},
		Axes: sweep.Axes{Benchmarks: benches},
	}, opt)
	if err != nil {
		return nil, err
	}
	gridSweep, err := runSweep(sweep.Spec{
		Base: sim.Config{Instructions: opt.Instructions, Secure: true, Speculation: true},
		Axes: sweep.Axes{
			Benchmarks: benches,
			LLC:        sweep.IntAxis{Points: LLCSizes},
			Meta:       sweep.IntAxis{Points: MetaSizes},
		},
	}, opt)
	if err != nil {
		return nil, err
	}
	type key struct {
		bench     string
		llc, meta int // meta<0 marks the insecure baseline
	}
	results := map[key]*sim.Result{}
	for i := range baseSweep.Points {
		p := &baseSweep.Points[i]
		results[key{p.Benchmark, 2 << 20, -1}] = p.Result
	}
	for i := range gridSweep.Points {
		p := &gridSweep.Points[i]
		results[key{p.Benchmark, p.LLCBytes, p.MetaBytes}] = p.Result
	}

	res := &Fig2Result{LLCs: LLCSizes, Metas: MetaSizes, Norm: map[string]map[int]map[int]float64{}}
	put := func(series string, llc, meta int, v float64) {
		m := res.Norm[series]
		if m == nil {
			m = map[int]map[int]float64{}
			res.Norm[series] = m
		}
		mm := m[llc]
		if mm == nil {
			mm = map[int]float64{}
			m[llc] = mm
		}
		mm[meta] = v
	}
	for _, llc := range LLCSizes {
		for _, meta := range MetaSizes {
			var norms []float64
			for _, b := range benches {
				baseline := results[key{b, 2 << 20, -1}].ED2
				v := energy.Normalized(results[key{b, llc, meta}].ED2, baseline)
				norms = append(norms, v)
				if b == "canneal" {
					put("canneal", llc, meta, v)
				}
			}
			put("average", llc, meta, stats.Geomean(norms))
		}
	}
	return res, nil
}

// Render prints normalized ED^2 tables for the average and canneal,
// with the total SRAM budget (LLC + metadata cache) alongside.
func (r *Fig2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: normalized ED^2 vs cache budget (baseline: 2MB LLC, no secure memory)\n\n")
	for _, series := range []string{"average", "canneal"} {
		if r.Norm[series] == nil {
			continue
		}
		fmt.Fprintf(&sb, "%s:\n", series)
		var t stats.Table
		header := []string{"LLC \\ meta"}
		for _, m := range r.Metas {
			header = append(header, sizeLabel(m))
		}
		t.AddRow(header...)
		for _, llc := range r.LLCs {
			row := []string{sizeLabel(llc)}
			for _, m := range r.Metas {
				row = append(row, fmt.Sprintf("%.2f", r.Norm[series][llc][m]))
			}
			t.AddRow(row...)
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
