package experiments

import (
	"fmt"
	"strings"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/stats"
)

// Table1 renders the simulation configuration (the paper's Table I),
// reflecting this reproduction's defaults.
func Table1() string {
	var t stats.Table
	t.AddRow("Parameter", "Value")
	t.AddRow("Processor", "in-order timing model (LLC-stream driven)")
	t.AddRow("Clock Frequency", "3GHz")
	t.AddRow("L1 I & D Cache", "32KB 8-way")
	t.AddRow("L2 Cache", "256KB 8-way")
	t.AddRow("L3 Cache", "2MB 8-way")
	t.AddRow("Memory Size", "4GB (layout); footprint-sized per workload")
	t.AddRow("Memory Latency", "banked row-buffer DRAM model")
	t.AddRow("Hash Latency", "40 processor cycles")
	t.AddRow("Hash Throughput", "1 per DRAM cycle")
	return "Table I: Simulation Configuration\n\n" + t.String()
}

// Table2Result carries the computed metadata-organization table.
type Table2Result struct {
	// Rows are [metadata type, PI organization, SGX organization,
	// PI data protected, SGX data protected].
	Rows [][5]string
}

// Table2 computes the paper's Table II — metadata organization and
// data protected per 64 B block — from the layout math rather than
// hard-coded strings, so it doubles as a check on the address-map
// implementation.
func Table2() *Table2Result {
	pi := memlayout.MustNew(memlayout.PoisonIvy, 4<<30)
	sgx := memlayout.MustNew(memlayout.SGX, 4<<30)

	human := func(b uint64) string {
		switch {
		case b >= 1<<20 && b%(1<<20) == 0:
			return fmt.Sprintf("%dMB", b>>20)
		case b >= 1<<10 && b%(1<<10) == 0:
			return fmt.Sprintf("%dKB", b>>10)
		default:
			return fmt.Sprintf("%dB", b)
		}
	}

	res := &Table2Result{}
	res.Rows = append(res.Rows, [5]string{
		"Counters",
		"1x8B/page + 64x7b/blk",
		"8x8B/blk",
		human(pi.DataProtected(memlayout.KindCounter, 0)),
		human(sgx.DataProtected(memlayout.KindCounter, 0)),
	})
	res.Rows = append(res.Rows, [5]string{
		"Integrity Tree (leaf)",
		"8x8B hashes",
		"8x8B hashes",
		human(pi.DataProtected(memlayout.KindTree, 0)),
		human(sgx.DataProtected(memlayout.KindTree, 0)),
	})
	res.Rows = append(res.Rows, [5]string{
		"Integrity Tree (level L)",
		"8x8B hashes",
		"8x8B hashes",
		fmt.Sprintf("%s * 8^L", human(pi.DataProtected(memlayout.KindTree, 0))),
		fmt.Sprintf("%s * 8^L", human(sgx.DataProtected(memlayout.KindTree, 0))),
	})
	res.Rows = append(res.Rows, [5]string{
		"Hashes",
		"8x8B hashes",
		"8x8B hashes",
		human(pi.DataProtected(memlayout.KindHash, 0)),
		human(sgx.DataProtected(memlayout.KindHash, 0)),
	})
	return res
}

// Render prints Table II.
func (r *Table2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table II: Metadata organization and data protected per 64B block\n\n")
	var t stats.Table
	t.AddRow("Type", "PI organization", "SGX organization", "PI protects", "SGX protects")
	for _, row := range r.Rows {
		t.AddRow(row[0], row[1], row[2], row[3], row[4])
	}
	sb.WriteString(t.String())
	return sb.String()
}
