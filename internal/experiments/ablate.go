package experiments

import (
	"fmt"
	"strings"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/sweep"
	"github.com/maps-sim/mapsim/internal/workload"
)

// This file holds the ablations DESIGN.md §5 promises beyond the
// paper's figures: the partial-write optimization (§IV-E), the full
// content-policy matrix ("experiments with other metadata cache
// configurations produce trends similar to those in Figure 1"), and
// the PI-vs-SGX counter-organization comparison the paper only
// discusses in prose.

// AblatePartialResult compares runs with and without partial writes.
type AblatePartialResult struct {
	Benchmarks []string
	// With/Without[benchmark] hold (hash memory reads per kilo
	// instruction, metadata MPKI) pairs.
	HashReadsPKI map[string][2]float64 // [without, with]
	MetaMPKI     map[string][2]float64
	PartialFills map[string]uint64 // fill reads paid at eviction (with)
}

// AblatePartial measures §IV-E's partial-write mechanism: write
// misses on hash/tree blocks insert placeholders instead of fetching
// the block, saving a memory read whenever the block fills before
// eviction. The paper predicts modest benefits concentrated in
// write-heavy workloads.
func AblatePartial(opt Options) (*AblatePartialResult, error) {
	opt.fill()
	benches := opt.benchmarks([]string{"fft", "lbm", "leslie3d", "canneal"})

	sr, err := runSweep(sweep.Spec{
		Base: sim.Config{
			Instructions: opt.Instructions,
			Secure:       true,
			Speculation:  true,
			Meta:         &metacache.Config{Size: 64 << 10, Ways: 8},
		},
		Axes: sweep.Axes{
			Benchmarks:    benches,
			PartialWrites: []bool{false, true},
		},
	}, opt)
	if err != nil {
		return nil, err
	}
	type key struct {
		bench   string
		partial bool
	}
	results := map[key]*sim.Result{}
	for i := range sr.Points {
		p := &sr.Points[i]
		results[key{p.Benchmark, p.PartialWrites}] = p.Result
	}

	res := &AblatePartialResult{
		Benchmarks:   benches,
		HashReadsPKI: map[string][2]float64{},
		MetaMPKI:     map[string][2]float64{},
		PartialFills: map[string]uint64{},
	}
	for _, b := range benches {
		without := results[key{b, false}]
		with := results[key{b, true}]
		kiloW := float64(without.Instructions) / 1000
		kiloP := float64(with.Instructions) / 1000
		res.HashReadsPKI[b] = [2]float64{
			float64(without.Mem.HashReads) / kiloW,
			float64(with.Mem.HashReads) / kiloP,
		}
		res.MetaMPKI[b] = [2]float64{without.MetaMPKI, with.MetaMPKI}
	}
	return res, nil
}

// Render prints the ablation.
func (r *AblatePartialResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: partial writes for hash/tree blocks (64KB metadata cache)\n\n")
	var t stats.Table
	t.AddRow("benchmark", "hash reads/KI (off)", "hash reads/KI (on)", "saved", "MPKI off", "MPKI on")
	for _, b := range r.Benchmarks {
		h := r.HashReadsPKI[b]
		m := r.MetaMPKI[b]
		saved := "-"
		if h[0] > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*(h[0]-h[1])/h[0])
		}
		t.AddRow(b,
			fmt.Sprintf("%.2f", h[0]), fmt.Sprintf("%.2f", h[1]), saved,
			fmt.Sprintf("%.1f", m[0]), fmt.Sprintf("%.1f", m[1]))
	}
	sb.WriteString(t.String())
	sb.WriteString("\n(the benefit is one saved memory read per hash block that fills before eviction — modest, as the paper predicts)\n")
	return sb.String()
}

// ContentMatrixResult holds metadata memory traffic for all seven
// content-policy combinations.
type ContentMatrixResult struct {
	Benchmarks []string
	Contents   []metacache.ContentPolicy
	// MemPKI[benchmark][content] is metadata memory accesses per
	// kilo-instruction; MPKI[benchmark][content] is cache-miss MPKI.
	MemPKI map[string]map[metacache.ContentPolicy]float64
	MPKI   map[string]map[metacache.ContentPolicy]float64
}

// ContentMatrixContents lists every non-empty content combination.
var ContentMatrixContents = []metacache.ContentPolicy{
	metacache.CountersOnly,
	metacache.HashesOnly,
	metacache.TreeOnly,
	metacache.CountersHashes,
	metacache.CountersTree,
	metacache.HashesTree,
	metacache.AllTypes,
}

// ContentMatrix extends Figure 1 to the full set of content policies
// the paper says it also evaluated, at one cache size.
func ContentMatrix(opt Options) (*ContentMatrixResult, error) {
	opt.fill()
	benches := opt.benchmarks([]string{"canneal", "libquantum", "fft"})
	res := &ContentMatrixResult{
		Benchmarks: benches,
		Contents:   ContentMatrixContents,
		MemPKI:     map[string]map[metacache.ContentPolicy]float64{},
		MPKI:       map[string]map[metacache.ContentPolicy]float64{},
	}
	type key struct {
		bench   string
		content metacache.ContentPolicy
	}
	results := map[key]**sim.Result{}
	var jobs []job
	for _, b := range benches {
		for _, c := range ContentMatrixContents {
			slot := new(*sim.Result)
			results[key{b, c}] = slot
			jobs = append(jobs, job{
				cfg: sim.Config{
					Benchmark:    b,
					Instructions: opt.Instructions,
					Secure:       true,
					Speculation:  true,
					Meta:         &metacache.Config{Size: 128 << 10, Ways: 8, Content: c},
				},
				out: slot,
			})
		}
	}
	if err := runAll(jobs, opt); err != nil {
		return nil, err
	}
	for _, b := range benches {
		res.MemPKI[b] = map[metacache.ContentPolicy]float64{}
		res.MPKI[b] = map[metacache.ContentPolicy]float64{}
		for _, c := range ContentMatrixContents {
			r := *results[key{b, c}]
			res.MemPKI[b][c] = r.MetaMemPKI
			res.MPKI[b][c] = r.MetaMPKI
		}
	}
	return res, nil
}

// Render prints the matrix.
func (r *ContentMatrixResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: full content-policy matrix (128KB metadata cache, metadata mem accesses/KI)\n\n")
	var t stats.Table
	header := []string{"contents"}
	header = append(header, r.Benchmarks...)
	t.AddRow(header...)
	for _, c := range r.Contents {
		row := []string{c.String()}
		for _, b := range r.Benchmarks {
			row = append(row, fmt.Sprintf("%.1f", r.MemPKI[b][c]))
		}
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	sb.WriteString("\n(all-types wins or sits near the winner everywhere; when counters and hashes\n" +
		" are uncacheable — canneal — the tree acts as the safety net the paper describes)\n")
	return sb.String()
}

// OrgCompareResult contrasts the PoisonIvy split-counter organization
// with SGX monolithic counters.
type OrgCompareResult struct {
	Benchmarks []string
	// Per benchmark: [PI, SGX] values.
	CounterMPKI map[string][2]float64
	MetaMemPKI  map[string][2]float64
	TreeLevels  [2]int
}

// OrgCompare quantifies the prose claim of §IV: SGX's 8 B per-block
// counters make counter blocks behave like hash blocks (8x less
// coverage), increasing counter traffic and deepening the tree.
func OrgCompare(opt Options) (*OrgCompareResult, error) {
	opt.fill()
	benches := opt.benchmarks([]string{"libquantum", "canneal", "leslie3d"})
	type key struct {
		bench string
		org   memlayout.Organization
	}
	results := map[key]**sim.Result{}
	var jobs []job
	for _, b := range benches {
		for _, org := range []memlayout.Organization{memlayout.PoisonIvy, memlayout.SGX} {
			slot := new(*sim.Result)
			results[key{b, org}] = slot
			jobs = append(jobs, job{
				cfg: sim.Config{
					Benchmark:    b,
					Instructions: opt.Instructions,
					Secure:       true,
					Speculation:  true,
					Org:          org,
					Meta:         &metacache.Config{Size: 64 << 10, Ways: 8},
				},
				out: slot,
			})
		}
	}
	if err := runAll(jobs, opt); err != nil {
		return nil, err
	}
	res := &OrgCompareResult{
		Benchmarks:  benches,
		CounterMPKI: map[string][2]float64{},
		MetaMemPKI:  map[string][2]float64{},
	}
	for _, b := range benches {
		pi := *results[key{b, memlayout.PoisonIvy}]
		sgx := *results[key{b, memlayout.SGX}]
		res.CounterMPKI[b] = [2]float64{
			pi.Meta[memlayout.KindCounter].MPKI,
			sgx.Meta[memlayout.KindCounter].MPKI,
		}
		res.MetaMemPKI[b] = [2]float64{pi.MetaMemPKI, sgx.MetaMemPKI}
	}
	// Tree depth for a representative footprint.
	g, err := workload.New(benches[0])
	if err != nil {
		return nil, err
	}
	fp := g.Footprint()
	res.TreeLevels[0] = memlayout.MustNew(memlayout.PoisonIvy, fp).TreeLevels()
	res.TreeLevels[1] = memlayout.MustNew(memlayout.SGX, fp).TreeLevels()
	return res, nil
}

// Render prints the organization comparison.
func (r *OrgCompareResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: PoisonIvy split counters vs SGX monolithic counters (64KB metadata cache)\n\n")
	var t stats.Table
	t.AddRow("benchmark", "ctr MPKI (PI)", "ctr MPKI (SGX)", "meta mem/KI (PI)", "meta mem/KI (SGX)")
	for _, b := range r.Benchmarks {
		c := r.CounterMPKI[b]
		m := r.MetaMemPKI[b]
		t.AddRow(b,
			fmt.Sprintf("%.2f", c[0]), fmt.Sprintf("%.2f", c[1]),
			fmt.Sprintf("%.1f", m[0]), fmt.Sprintf("%.1f", m[1]))
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "\n(tree levels for %s-sized footprint: PI %d, SGX %d — split counters cover 8x more data per block)\n",
		r.Benchmarks[0], r.TreeLevels[0], r.TreeLevels[1])
	return sb.String()
}
