package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/reuse"
	"github.com/maps-sim/mapsim/internal/sim"
)

// testOpt keeps experiment tests quick; the CLI uses the real default.
var testOpt = Options{Instructions: 150_000, Parallelism: 4}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{64: "64B", 16 << 10: "16KB", 2 << 20: "2MB", 288 << 10: "288KB"}
	for in, want := range cases {
		if got := sizeLabel(in); got != want {
			t.Errorf("sizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFig1ShapeAndRender(t *testing.T) {
	r, err := Fig1(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Shape check 1: for canneal (metadata-hungry), caching all types
	// must reduce metadata *memory traffic* versus counters-only at
	// the same size — the paper's efficiency argument.
	small := MetaSizes[0]
	allMem := r.MemPKI["canneal"][metacache.AllTypes][small]
	countersMem := r.MemPKI["canneal"][metacache.CountersOnly][small]
	if allMem >= countersMem {
		t.Errorf("canneal @%s: all-types mem/KI %.1f should beat counters-only %.1f", sizeLabel(small), allMem, countersMem)
	}
	// Shape check 2: the libquantum crossover — at some size,
	// admitting hashes alongside counters *raises* miss MPKI above
	// counters-only (hash pollution evicts counters; the paper's
	// "six to ten" observation).
	crossover := false
	for _, s := range r.Sizes {
		if r.MPKI["libquantum"][metacache.CountersHashes][s] > r.MPKI["libquantum"][metacache.CountersOnly][s] {
			crossover = true
			break
		}
	}
	if !crossover {
		t.Error("libquantum: counters+hashes never exceeds counters-only MPKI — crossover missing")
	}
	// Shape check 3: MPKI decreases (weakly) with size for all-types.
	for _, b := range r.Benchmarks {
		prev := -1.0
		for _, s := range r.Sizes {
			v := r.MPKI[b][metacache.AllTypes][s]
			if prev >= 0 && v > prev*1.10 {
				t.Errorf("%s all-types MPKI rises with size: %v -> %v at %s", b, prev, v, sizeLabel(s))
			}
			prev = v
		}
	}
	out := r.Render()
	if !strings.Contains(out, "canneal") || !strings.Contains(out, "counters+hashes") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestFig2ShapeAndRender(t *testing.T) {
	opt := testOpt
	opt.Benchmarks = []string{"canneal", "libquantum", "fft"}
	r, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Norm["average"] == nil || r.Norm["canneal"] == nil {
		t.Fatal("series missing")
	}
	// All overheads exceed 1 (secure memory costs something).
	for _, llc := range r.LLCs {
		for _, m := range r.Metas {
			if v := r.Norm["average"][llc][m]; v <= 1.0 {
				t.Errorf("average overhead at %s/%s = %v, want > 1", sizeLabel(llc), sizeLabel(m), v)
			}
		}
	}
	// Bigger LLC helps the average at fixed metadata size.
	small := r.Norm["average"][512<<10][64<<10]
	big := r.Norm["average"][4<<20][64<<10]
	if big >= small {
		t.Errorf("4MB LLC (%.2f) should beat 512KB (%.2f) on average", big, small)
	}
	// The paper's canneal flip: at a ~1MB budget, canneal prefers
	// 512KB LLC + 512KB metadata cache over 1MB LLC + 16KB.
	canBig := r.Norm["canneal"][1<<20][16<<10]
	canSplit := r.Norm["canneal"][512<<10][512<<10]
	if canSplit >= canBig {
		t.Errorf("canneal: 512K+512K (%.2f) should beat 1MB+16KB (%.2f)", canSplit, canBig)
	}
	if !strings.Contains(r.Render(), "LLC \\ meta") {
		t.Error("render incomplete")
	}
}

func TestFig2AverageBudgetTradeoff(t *testing.T) {
	// The common-case claim needs the full (balanced) default suite;
	// run at moderate scale.
	if testing.Short() {
		t.Skip("full-suite fig2 in -short mode")
	}
	opt := Options{Instructions: 400_000}
	r, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	avgBig := r.Norm["average"][1<<20][16<<10]
	avgSplit := r.Norm["average"][512<<10][512<<10]
	if avgBig >= avgSplit {
		t.Errorf("average: 1MB+16KB (%.2f) should beat 512K+512K (%.2f)", avgBig, avgSplit)
	}
}

func TestFig3ShapeAndRender(t *testing.T) {
	opt := testOpt
	opt.Benchmarks = []string{"libquantum", "canneal"}
	r, err := Fig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	thIdx := func(want uint64) int {
		for i, th := range r.Thresholds {
			if th == want {
				return i
			}
		}
		t.Fatalf("threshold %d missing", want)
		return -1
	}
	i4k := thIdx(4 << 10)
	// Tree nodes have the shortest reuse distances: ~90% under 4KB
	// for most benchmarks (libquantum here).
	lq := r.CDF["libquantum"]
	if lq[memlayout.KindTree][i4k] < 0.7 {
		t.Errorf("libquantum tree CDF@4KB = %v, want high", lq[memlayout.KindTree][i4k])
	}
	// libquantum counters are tight (paper: >90% under 4KB).
	if lq[memlayout.KindCounter][i4k] < 0.5 {
		t.Errorf("libquantum counter CDF@4KB = %v, want high", lq[memlayout.KindCounter][i4k])
	}
	// canneal counters have long reuse: far less mass below 4KB than
	// libquantum's.
	cn := r.CDF["canneal"]
	if cn[memlayout.KindCounter][i4k] >= lq[memlayout.KindCounter][i4k] {
		t.Errorf("canneal counter CDF@4KB (%v) should trail libquantum (%v)",
			cn[memlayout.KindCounter][i4k], lq[memlayout.KindCounter][i4k])
	}
	// Tree <= counter is the coverage-ordering sanity check: more
	// data per block means shorter distances (CDF higher).
	if lq[memlayout.KindTree][i4k] < lq[memlayout.KindHash][i4k] {
		t.Errorf("tree CDF (%v) should dominate hash CDF (%v)",
			lq[memlayout.KindTree][i4k], lq[memlayout.KindHash][i4k])
	}
	if !strings.Contains(r.Render(), "288KB*") {
		t.Error("working-set marker missing from render")
	}
}

func TestFig4ShapeAndRender(t *testing.T) {
	opt := testOpt
	opt.Benchmarks = []string{"libquantum", "fft", "canneal"}
	r, err := Fig4(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.Benchmarks {
		c := r.Classes[b]
		sum := c[0] + c[1] + c[2] + c[3]
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s classes sum to %v", b, sum)
		}
	}
	// Bimodality: libquantum's extremes dominate (paper: all but
	// canneal/cactusADM have >=50% in the smallest class and most of
	// the rest in the largest).
	if r.Bimodality["libquantum"] < 0.8 {
		t.Errorf("libquantum bimodality = %v", r.Bimodality["libquantum"])
	}
	if !strings.Contains(r.Render(), reuse.ClassLabels[0]) {
		t.Error("render incomplete")
	}
}

func TestFig5ShapeAndRender(t *testing.T) {
	// Write-after-write hash traffic needs dirty LLC evictions, which
	// only start once the 2MB LLC fills; use a longer run.
	opt := testOpt
	opt.Instructions = 1_500_000
	r, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	// fft (20% writes) must exhibit write-after-write hash traffic.
	if r.Counts["fft"][memlayout.KindHash][reuse.WtoW] == 0 {
		t.Error("fft has no write-after-write hash accesses")
	}
	out := r.Render()
	if !strings.Contains(out, "write-after-write") || !strings.Contains(out, "leslie3d") {
		t.Error("render incomplete")
	}
}

func TestFig6ShapeAndRender(t *testing.T) {
	opt := testOpt
	opt.Benchmarks = []string{"libquantum", "fft"}
	r, err := Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.Benchmarks {
		for _, p := range r.Policies {
			if r.MPKI[b][p] <= 0 {
				t.Errorf("%s/%s MPKI = %v", b, p, r.MPKI[b][p])
			}
		}
		if r.IterMINRounds[b] < 1 || r.IterMINRounds[b] > iterMINCap {
			t.Errorf("%s iterMIN rounds = %d", b, r.IterMINRounds[b])
		}
	}
	out := r.Render()
	if !strings.Contains(out, "itermin") || !strings.Contains(out, "plru") {
		t.Error("render incomplete")
	}
}

func TestFig7ShapeAndRender(t *testing.T) {
	opt := testOpt
	opt.Benchmarks = []string{"libquantum", "canneal"}
	r, err := Fig7(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.Benchmarks {
		for _, s := range Fig7Schemes {
			if r.Overhead[b][s] <= 1.0 {
				t.Errorf("%s/%s overhead = %v, want > 1", b, s, r.Overhead[b][s])
			}
		}
		// Best static can't be worse than the suite-average static by
		// construction.
		if r.Overhead[b]["best-static"] > r.Overhead[b]["avg-static"]+1e-9 {
			t.Errorf("%s best-static (%v) worse than avg-static (%v)",
				b, r.Overhead[b]["best-static"], r.Overhead[b]["avg-static"])
		}
		if r.BestSplit[b] < 1 || r.BestSplit[b] > Fig7Ways-1 {
			t.Errorf("%s best split = %d", b, r.BestSplit[b])
		}
	}
	if r.AvgSplit < 1 || r.AvgSplit > Fig7Ways-1 {
		t.Errorf("avg split = %d", r.AvgSplit)
	}
	if !strings.Contains(r.Render(), "best split") {
		t.Error("render incomplete")
	}
}

func TestTables(t *testing.T) {
	t1 := Table1()
	if !strings.Contains(t1, "3GHz") || !strings.Contains(t1, "2MB 8-way") {
		t.Errorf("Table I incomplete:\n%s", t1)
	}
	t2 := Table2()
	out := t2.Render()
	for _, want := range []string{"4KB", "512B", "32KB", "Counters", "Hashes"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
}

// runTasks is the fail-fast primitive every experiment fan-out now
// shares (the hand-rolled semaphores in fig3/fig6/fig7 lacked both
// guarantees): the first error cancels the shared context, tasks not
// yet started never start, and the root cause is returned unmasked.
func TestRunTasksFailFast(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	err := runTasks(context.Background(), 64, 1, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the root cause", err)
	}
	// Parallelism 1 serializes the tasks, so the failure at i=0 must
	// stop the fan-out long before all 64 run.
	if n := started.Load(); n >= 64 {
		t.Fatalf("all %d tasks started despite an early failure", n)
	}
}

func TestRunTasksPropagatesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runTasks(ctx, 8, 4, func(ctx context.Context, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// A failing simulation inside a fan-out must surface its own error
// (here: a 100-byte metadata cache that cannot be built), tagged with
// the benchmark, not a cancellation victim's context error.
func TestRunAllPropagatesRootCause(t *testing.T) {
	jobList := []job{
		{cfg: sim.Config{Instructions: 10_000, Benchmark: "fft", Secure: true,
			Meta: &metacache.Config{Size: 100, Ways: 8}}, out: new(*sim.Result)},
		{cfg: sim.Config{Instructions: 10_000, Benchmark: "libquantum", Secure: true,
			Meta: &metacache.Config{Size: 64 << 10, Ways: 8}}, out: new(*sim.Result)},
	}
	err := runAll(jobList, Options{Parallelism: 2})
	if err == nil || !strings.Contains(err.Error(), "fft") {
		t.Fatalf("runAll error %v does not carry the failing benchmark", err)
	}
}
