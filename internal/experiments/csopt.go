package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/opt"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
)

// CSOPTResult reproduces the §V-B narrative: CSOPT is solvable for
// small-footprint workloads, its schedule stops being followable once
// the live stream diverges, and memory-intensive traces blow the
// state space.
type CSOPTResult struct {
	// Small-workload pipeline (perlbench in the paper; configurable).
	Benchmark   string
	TraceLen    int
	SolveTime   time.Duration
	OptimalCost uint64
	OptimalMiss uint64
	PeakStates  int

	// Live replay of the schedule in the engine.
	ReplayMPKI    float64
	LRUMPKI       float64
	PLRUMPKI      float64
	Diverged      uint64
	Followed      uint64
	DivergedShare float64

	// State-explosion probe on a memory-intensive benchmark.
	ExplodedBenchmark string
	Exploded          bool
}

// csoptCacheSize keeps the CSOPT solve tractable: the paper used
// 4-way caches and still hit multi-day runtimes; we use a small cache
// and short traces so the experiment finishes while the blow-up
// remains demonstrable.
const csoptCacheSize = 4 << 10

// csoptWorkload builds the deliberately tiny workload the solvable
// half of the study uses. The paper's smallest benchmark (perl) took
// 32 minutes *per CSOPT run*; tractability requires few distinct
// metadata blocks per cache set, which means a small footprint.
func csoptWorkload() (workloadGen, error) {
	// 128 KB of data implies ~293 metadata blocks (32 counters, 256
	// hashes, 5 tree nodes) — about 4.5x the 4 KB cache, so real
	// eviction decisions exist, while ~18 distinct blocks per set
	// keeps the state space enumerable.
	return workload.NewSynthetic(workload.SyntheticConfig{
		Name:           "csopt-micro",
		FootprintBytes: 128 << 10,
		MeanGap:        3,
		WriteFraction:  0.30,
		HotBytes:       16 << 10,
		HotFraction:    0.5,
		SequentialRun:  2,
	})
}

type workloadGen = workload.Generator

// CSOPT runs the cost-sensitive-optimal study.
func CSOPT(opt_ Options) (*CSOPTResult, error) {
	opt_.fill()
	big := "canneal"
	if len(opt_.Benchmarks) > 0 {
		big = opt_.Benchmarks[0]
	}

	// Short runs everywhere: even with a micro workload the solver's
	// cost is states x ways per access.
	instructions := opt_.Instructions
	if instructions > 30_000 {
		instructions = 30_000
	}

	res := &CSOPTResult{Benchmark: "csopt-micro", ExplodedBenchmark: big}
	metaCfg := func(p policyIface) *metacache.Config {
		return &metacache.Config{Size: csoptCacheSize, Ways: 4, Policy: p}
	}

	// 1. Record the trace under true LRU.
	gen, err := csoptWorkload()
	if err != nil {
		return nil, err
	}
	lruTrace := &trace.Trace{}
	lruRun, err := sim.Run(sim.Config{
		Workload:     gen,
		Instructions: instructions,
		Secure:       true,
		Speculation:  true,
		Meta:         metaCfg(policy.NewLRU()),
		Tap:          lruTrace.Append,
	})
	if err != nil {
		return nil, err
	}
	res.LRUMPKI = lruRun.MetaMPKI
	res.TraceLen = lruTrace.Len()

	// 2. Solve CSOPT over the fixed trace.
	start := time.Now()
	sched, solved, err := opt.CSOPTSchedule(lruTrace, csoptCacheSize, 4, 1<<17)
	if err != nil {
		return nil, fmt.Errorf("experiments: csopt solve: %w", err)
	}
	res.SolveTime = time.Since(start)
	res.OptimalCost = solved.Cost
	res.OptimalMiss = solved.Misses
	res.PeakStates = solved.PeakStates

	// 3. Replay the schedule live: the engine regenerates tree
	// accesses from actual cache state, so the stream drifts and the
	// script falls back — §V-B's "varying access stream".
	gen2, err := csoptWorkload()
	if err != nil {
		return nil, err
	}
	scripted := opt.NewScripted(sched)
	replay, err := sim.Run(sim.Config{
		Workload:     gen2,
		Instructions: instructions,
		Secure:       true,
		Speculation:  true,
		Meta:         metaCfg(scripted),
	})
	if err != nil {
		return nil, err
	}
	res.ReplayMPKI = replay.MetaMPKI
	res.Diverged = scripted.Diverged
	res.Followed = scripted.Followed
	if total := scripted.Diverged + scripted.Followed; total > 0 {
		res.DivergedShare = float64(scripted.Diverged) / float64(total)
	}

	// 4. Baseline pseudo-LRU for comparison.
	gen3, err := csoptWorkload()
	if err != nil {
		return nil, err
	}
	plruRun, err := sim.Run(sim.Config{
		Workload:     gen3,
		Instructions: instructions,
		Secure:       true,
		Speculation:  true,
		Meta:         metaCfg(policy.NewPLRU()),
	})
	if err != nil {
		return nil, err
	}
	res.PLRUMPKI = plruRun.MetaMPKI

	// 5. State explosion on the memory-intensive benchmark: a modest
	// state budget must overflow (in the paper, canneal "does not
	// finish" after six days).
	bigTrace := &trace.Trace{}
	if _, err := sim.Run(sim.Config{
		Benchmark:    big,
		Instructions: instructions,
		Secure:       true,
		Speculation:  true,
		Meta:         metaCfg(policy.NewLRU()),
		Tap:          bigTrace.Append,
	}); err != nil {
		return nil, err
	}
	_, _, err = opt.CSOPTSchedule(bigTrace, csoptCacheSize, 4, 1<<14)
	res.Exploded = errors.Is(err, opt.ErrStateExplosion)
	if err != nil && !res.Exploded {
		return nil, err
	}
	return res, nil
}

// policyIface is the cache.Policy dependency in a local name to keep
// the config helper tidy.
type policyIface = cache.Policy

// Render prints the study.
func (r *CSOPTResult) Render() string {
	var sb strings.Builder
	sb.WriteString("CSOPT study (paper SV-B): cost-sensitive optimal replacement\n\n")
	var t stats.Table
	t.AddRow("quantity", "value")
	t.AddRow("benchmark", r.Benchmark)
	t.AddRow("trace length", fmt.Sprintf("%d metadata accesses", r.TraceLen))
	t.AddRow("solve time", r.SolveTime.Round(time.Millisecond).String())
	t.AddRow("peak states (one set)", fmt.Sprintf("%d", r.PeakStates))
	t.AddRow("optimal cost", fmt.Sprintf("%d memory accesses", r.OptimalCost))
	t.AddRow("optimal misses", fmt.Sprintf("%d", r.OptimalMiss))
	t.AddRow("MPKI: true LRU", fmt.Sprintf("%.2f", r.LRUMPKI))
	t.AddRow("MPKI: pseudo-LRU", fmt.Sprintf("%.2f", r.PLRUMPKI))
	t.AddRow("MPKI: CSOPT schedule replayed live", fmt.Sprintf("%.2f", r.ReplayMPKI))
	t.AddRow("script followed / diverged", fmt.Sprintf("%d / %d (%.1f%% diverged)", r.Followed, r.Diverged, 100*r.DivergedShare))
	t.AddRow(fmt.Sprintf("state explosion on %s", r.ExplodedBenchmark), fmt.Sprintf("%v", r.Exploded))
	sb.WriteString(t.String())
	sb.WriteString("\n(the live stream regenerates tree accesses from actual cache state, so the\n optimal schedule cannot be followed exactly — and scaling the solve to\n memory-intensive traces overflows any practical state budget)\n")
	return sb.String()
}
