package experiments

import (
	"fmt"
	"strings"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/reuse"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/trace"
)

// TreeStretchResult quantifies §IV-C's caveat: "because of the
// interdependencies between counters and tree nodes, reuse distances
// for tree nodes might increase when a metadata cache is present" —
// cached counters absorb requests that would otherwise walk the tree,
// so the surviving tree requests are sparser and farther apart.
type TreeStretchResult struct {
	Benchmarks []string
	Thresholds []uint64
	// CDF[benchmark][config][i]: config is "nocache" or "cached".
	CDF map[string]map[string][]float64
	// TreeAccessesPKI[benchmark][config]: tree request rate.
	TreeAccessesPKI map[string]map[string]float64
}

// TreeStretch compares tree-node reuse distances with no metadata
// cache (Figure 3's methodology) against a 64 KB metadata cache.
func TreeStretch(opt Options) (*TreeStretchResult, error) {
	opt.fill()
	benches := opt.benchmarks([]string{"canneal", "libquantum"})
	res := &TreeStretchResult{
		Benchmarks:      benches,
		Thresholds:      ReuseThresholds,
		CDF:             map[string]map[string][]float64{},
		TreeAccessesPKI: map[string]map[string]float64{},
	}
	for _, b := range benches {
		res.CDF[b] = map[string][]float64{}
		res.TreeAccessesPKI[b] = map[string]float64{}
		for _, cached := range []bool{false, true} {
			an := reuse.NewAnalyzer(int(opt.Instructions / 2))
			cfg := sim.Config{
				Benchmark:    b,
				Instructions: opt.Instructions,
				Secure:       true,
				Speculation:  true,
				Tap: func(a trace.Access) {
					an.Record(a.Addr, memlayout.Kind(a.Class), a.Write)
				},
			}
			if cached {
				cfg.Meta = &metacache.Config{Size: 64 << 10, Ways: 8}
			}
			r, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			name := "nocache"
			if cached {
				name = "cached"
			}
			res.CDF[b][name] = an.CDF(memlayout.KindTree, ReuseThresholds)
			res.TreeAccessesPKI[b][name] = float64(an.Accesses(memlayout.KindTree)) /
				(float64(r.Instructions) / 1000)
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r *TreeStretchResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: tree-node reuse distances with and without a metadata cache\n\n")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(&sb, "%s:\n", b)
		var t stats.Table
		header := []string{"config", "tree req/KI"}
		for _, th := range r.Thresholds {
			header = append(header, sizeLabel(int(th)))
		}
		t.AddRow(header...)
		for _, cfg := range []string{"nocache", "cached"} {
			row := []string{cfg, fmt.Sprintf("%.1f", r.TreeAccessesPKI[b][cfg])}
			for _, v := range r.CDF[b][cfg] {
				row = append(row, fmt.Sprintf("%.2f", v))
			}
			t.AddRow(row...)
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("(the cache filters tree requests: fewer per kilo-instruction, and the\n survivors have longer reuse distances — the paper's SIV-C caveat)\n")
	return sb.String()
}
