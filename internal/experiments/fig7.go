package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"github.com/maps-sim/mapsim/internal/energy"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/partition"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/workload"
)

// Fig7CacheSize is the metadata cache size used in the partitioning
// study.
const Fig7CacheSize = 64 << 10

// Fig7Ways is its associativity; static splits sweep 1..Fig7Ways-1
// counter ways.
const Fig7Ways = 8

// Fig7Schemes are the cache organizations compared, in display order.
var Fig7Schemes = []string{"none", "best-static", "avg-static", "dynamic"}

// Fig7Result holds normalized ED^2 overheads per benchmark and
// partitioning scheme.
type Fig7Result struct {
	Benchmarks []string
	// Overhead[benchmark][scheme] = ED^2 / insecure ED^2.
	Overhead map[string]map[string]float64
	// BestSplit[benchmark] is the counter-way allocation that
	// minimized ED^2 (shown below the x-axis in the paper).
	BestSplit map[string]int
	// AvgSplit is the across-suite best split applied uniformly.
	AvgSplit int
}

// Fig7 reproduces Figure 7: ED^2 overhead of secure memory with (i)
// no metadata-cache partition, (ii) the best static counter/hash
// split per application, (iii) the suite-average best split, and (iv)
// set-dueling dynamic partitioning.
func Fig7(opt Options) (*Fig7Result, error) {
	opt.fill()
	benches := opt.benchmarks([]string{"barnes", "canneal", "libquantum", "mcf", "fft", "leslie3d", "streamcluster", "gcc"})
	for _, b := range benches {
		if _, err := workload.New(b); err != nil {
			return nil, err
		}
	}

	data := map[string]*benchData{}
	var mu sync.Mutex
	err := runTasks(context.Background(), len(benches), opt.Parallelism, func(ctx context.Context, i int) error {
		b := benches[i]
		d, err := fig7Bench(ctx, b, opt.Instructions)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", b, err)
		}
		mu.Lock()
		data[b] = d
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig7Result{
		Benchmarks: benches,
		Overhead:   map[string]map[string]float64{},
		BestSplit:  map[string]int{},
	}
	// Best split per benchmark, then the suite-average split.
	splitSum := 0
	for _, b := range benches {
		best, bestED2 := 0, 0.0
		for w, e := range data[b].static {
			if best == 0 || e < bestED2 {
				best, bestED2 = w, e
			}
		}
		res.BestSplit[b] = best
		splitSum += best
	}
	res.AvgSplit = (splitSum + len(benches)/2) / len(benches)
	if res.AvgSplit < 1 {
		res.AvgSplit = 1
	}
	if res.AvgSplit > Fig7Ways-1 {
		res.AvgSplit = Fig7Ways - 1
	}

	for _, b := range benches {
		d := data[b]
		res.Overhead[b] = map[string]float64{
			"none":        energy.Normalized(d.none, d.baseline),
			"best-static": energy.Normalized(d.static[res.BestSplit[b]], d.baseline),
			"avg-static":  energy.Normalized(d.static[res.AvgSplit], d.baseline),
			"dynamic":     energy.Normalized(d.dynamic, d.baseline),
		}
	}
	return res, nil
}

// benchData collects one benchmark's ED^2 under every scheme.
type benchData struct {
	baseline float64
	none     float64
	dynamic  float64
	static   map[int]float64 // counter ways -> ED^2
}

func fig7Bench(ctx context.Context, bench string, instructions uint64) (*benchData, error) {
	d := &benchData{static: map[int]float64{}}

	run := func(secure bool, scheme partition.Scheme) (float64, error) {
		cfg := sim.Config{Benchmark: bench, Instructions: instructions}
		if secure {
			cfg.Secure = true
			cfg.Speculation = true
			cfg.Meta = &metacache.Config{Size: Fig7CacheSize, Ways: Fig7Ways, Partition: scheme}
		}
		r, err := sim.RunContext(ctx, cfg)
		if err != nil {
			return 0, err
		}
		return r.ED2, nil
	}

	var err error
	if d.baseline, err = run(false, nil); err != nil {
		return nil, err
	}
	if d.none, err = run(true, nil); err != nil {
		return nil, err
	}
	if d.dynamic, err = run(true, partition.NewDynamic(2, 6)); err != nil {
		return nil, err
	}
	for w := 1; w < Fig7Ways; w++ {
		if d.static[w], err = run(true, partition.NewStatic(w)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Render prints the overhead table with each benchmark's best split.
func (r *Fig7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 7: ED^2 overhead by partitioning scheme (64KB metadata cache)\n\n")
	var t stats.Table
	header := append([]string{"benchmark"}, Fig7Schemes...)
	header = append(header, "best split")
	t.AddRow(header...)
	for _, b := range r.Benchmarks {
		row := []string{b}
		for _, s := range Fig7Schemes {
			row = append(row, fmt.Sprintf("%.2f", r.Overhead[b][s]))
		}
		row = append(row, fmt.Sprintf("%d/%d", r.BestSplit[b], Fig7Ways-r.BestSplit[b]))
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "\n(avg-static uses %d counter ways across the suite; splits are counter/hash ways; tree nodes are never constrained)\n", r.AvgSplit)
	return sb.String()
}
