package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/eva"
	"github.com/maps-sim/mapsim/internal/cache/opt"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/cache/typepred"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
)

// Fig6CacheSize is the metadata cache size of Figure 6, chosen by the
// paper to align with the reuse-distance analysis.
const Fig6CacheSize = 64 << 10

// Fig6Policies are the policies compared, in display order.
var Fig6Policies = []string{"plru", "eva", "min", "itermin"}

// Fig6ExtraPolicies extend the comparison beyond the paper (Extension
// in DESIGN.md §5).
var Fig6ExtraPolicies = []string{"lru", "srrip", "typepred", "eva-pertype"}

// Fig6Result holds metadata MPKI per benchmark and eviction policy.
type Fig6Result struct {
	Benchmarks []string
	Policies   []string
	// MPKI[benchmark][policy]
	MPKI map[string]map[string]float64
	// IterMINRounds[benchmark] reports how many trace iterations
	// iterMIN needed to converge (or the cap).
	IterMINRounds map[string]int
}

// iterMINCap bounds the fixed-point iteration.
const iterMINCap = 4

// Fig6 reproduces Figure 6: metadata misses under pseudo-LRU, EVA,
// Belady's MIN (with future knowledge from a true-LRU trace), and
// iterMIN (MIN iterated to a trace fixed point) on a 64 KB metadata
// cache. The paper's point — that MIN and iterMIN are frequently
// *worse* than pseudo-LRU because metadata miss costs are non-uniform
// and the access trace depends on cache contents — emerges from the
// same mechanism here.
func Fig6(opt_ Options) (*Fig6Result, error) {
	opt_.fill()
	benches := opt_.benchmarks(workload.MemoryIntensive())
	res := &Fig6Result{
		Benchmarks:    benches,
		Policies:      append(append([]string{}, Fig6Policies...), Fig6ExtraPolicies...),
		MPKI:          map[string]map[string]float64{},
		IterMINRounds: map[string]int{},
	}

	var mu sync.Mutex
	err := runTasks(context.Background(), len(benches), opt_.Parallelism, func(ctx context.Context, i int) error {
		b := benches[i]
		mpki, rounds, err := fig6Bench(ctx, b, opt_.Instructions)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", b, err)
		}
		mu.Lock()
		res.MPKI[b] = mpki
		res.IterMINRounds[b] = rounds
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// fig6Bench runs the whole policy comparison for one benchmark.
func fig6Bench(ctx context.Context, bench string, instructions uint64) (map[string]float64, int, error) {
	mpki := map[string]float64{}

	run := func(p cache.Policy, tap func(trace.Access)) (*sim.Result, error) {
		return sim.RunContext(ctx, sim.Config{
			Benchmark:    bench,
			Instructions: instructions,
			Secure:       true,
			Speculation:  true,
			Meta:         &metacache.Config{Size: Fig6CacheSize, Ways: 8, Policy: p},
			Tap:          tap,
		})
	}

	// True-LRU run gathers the trace MIN will use as future
	// knowledge (§V-B: "simulate the benchmark once using true-LRU,
	// gather the cache access trace").
	lruTrace := &trace.Trace{}
	r, err := run(policy.NewLRU(), lruTrace.Append)
	if err != nil {
		return nil, 0, err
	}
	mpki["lru"] = r.MetaMPKI

	if r, err = run(policy.NewPLRU(), nil); err != nil {
		return nil, 0, err
	}
	mpki["plru"] = r.MetaMPKI

	if r, err = run(eva.New(eva.Config{}), nil); err != nil {
		return nil, 0, err
	}
	mpki["eva"] = r.MetaMPKI

	if r, err = run(policy.NewSRRIP(), nil); err != nil {
		return nil, 0, err
	}
	mpki["srrip"] = r.MetaMPKI

	// The paper's SVI future-work suggestion: reuse prediction keyed
	// on metadata type.
	if r, err = run(typepred.New(), nil); err != nil {
		return nil, 0, err
	}
	mpki["typepred"] = r.MetaMPKI

	// EVA with per-type histograms: the fix implied by the paper's
	// diagnosis of why single-histogram EVA fails.
	if r, err = run(eva.NewPerType(eva.Config{}), nil); err != nil {
		return nil, 0, err
	}
	mpki["eva-pertype"] = r.MetaMPKI

	// MIN with (stale-able) future knowledge from the LRU trace.
	minTrace := &trace.Trace{}
	if r, err = run(opt.NewMIN(lruTrace), minTrace.Append); err != nil {
		return nil, 0, err
	}
	mpki["min"] = r.MetaMPKI

	// iterMIN: feed each run's trace into the next until the miss
	// count stops moving.
	prevTrace := minTrace
	prevMPKI := r.MetaMPKI
	rounds := 1
	for ; rounds < iterMINCap; rounds++ {
		nextTrace := &trace.Trace{}
		r, err = run(opt.NewMIN(prevTrace), nextTrace.Append)
		if err != nil {
			return nil, 0, err
		}
		converged := math.Abs(r.MetaMPKI-prevMPKI) <= 0.005*prevMPKI ||
			nextTrace.Equal(prevTrace)
		prevTrace, prevMPKI = nextTrace, r.MetaMPKI
		if converged {
			break
		}
	}
	mpki["itermin"] = prevMPKI
	return mpki, rounds, nil
}

// Render prints the per-benchmark policy comparison.
func (r *Fig6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: metadata MPKI by eviction policy (64KB metadata cache)\n\n")
	var t stats.Table
	header := append([]string{"benchmark"}, r.Policies...)
	header = append(header, "iterMIN rounds")
	t.AddRow(header...)
	for _, b := range r.Benchmarks {
		row := []string{b}
		for _, p := range r.Policies {
			row = append(row, fmt.Sprintf("%.1f", r.MPKI[b][p]))
		}
		row = append(row, fmt.Sprintf("%d", r.IterMINRounds[b]))
		t.AddRow(row...)
	}
	sb.WriteString(t.String())
	sb.WriteString("\n(min/itermin use trace-based future knowledge that goes stale as\n decisions deviate — the paper's central negative result)\n")
	return sb.String()
}
