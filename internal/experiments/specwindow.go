package experiments

import (
	"fmt"
	"strings"

	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
)

// SpecWindowResult quantifies the paper's §I caveat: "speculation is
// effective only if the verification latency is not too long.
// Verification may become a bottleneck if neither hashes nor tree
// nodes are cached."
type SpecWindowResult struct {
	Benchmarks []string
	Windows    []uint64 // cycles; 0 = unbounded
	MetaSizes  []int    // 0 = no metadata cache
	// Slowdown[benchmark][window][metaSize] = cycles / unbounded-
	// speculation cycles with the same metadata cache.
	Slowdown map[string]map[uint64]map[int]float64
	// StallShare[benchmark][window][metaSize] = fraction of reads
	// whose verification outran the window.
	StallShare map[string]map[uint64]map[int]float64
}

// SpecWindows are the window depths swept (cycles of verification the
// hardware can buffer).
var SpecWindows = []uint64{0, 400, 200, 100}

// SpecWindowMetaSizes are the metadata cache sizes swept; 0 means no
// metadata cache, the configuration where verification is longest.
var SpecWindowMetaSizes = []int{0, 16 << 10, 64 << 10}

// SpecWindow sweeps speculation window depth against metadata cache
// size. With a metadata cache, verification walks are short and any
// window hides them; with no cache, verification outruns small
// windows and speculation stops helping.
func SpecWindow(opt Options) (*SpecWindowResult, error) {
	opt.fill()
	benches := opt.benchmarks([]string{"canneal", "libquantum"})
	res := &SpecWindowResult{
		Benchmarks: benches,
		Windows:    SpecWindows,
		MetaSizes:  SpecWindowMetaSizes,
		Slowdown:   map[string]map[uint64]map[int]float64{},
		StallShare: map[string]map[uint64]map[int]float64{},
	}
	type key struct {
		bench  string
		window uint64
		meta   int
	}
	results := map[key]**sim.Result{}
	var jobs []job
	for _, b := range benches {
		for _, w := range SpecWindows {
			for _, m := range SpecWindowMetaSizes {
				cfg := sim.Config{
					Benchmark:         b,
					Instructions:      opt.Instructions,
					Secure:            true,
					Speculation:       true,
					SpeculationWindow: w,
				}
				if m > 0 {
					cfg.Meta = &metacache.Config{Size: m, Ways: 8}
				}
				slot := new(*sim.Result)
				results[key{b, w, m}] = slot
				jobs = append(jobs, job{cfg: cfg, out: slot})
			}
		}
	}
	if err := runAll(jobs, opt); err != nil {
		return nil, err
	}
	for _, b := range benches {
		res.Slowdown[b] = map[uint64]map[int]float64{}
		res.StallShare[b] = map[uint64]map[int]float64{}
		for _, w := range SpecWindows {
			res.Slowdown[b][w] = map[int]float64{}
			res.StallShare[b][w] = map[int]float64{}
			for _, m := range SpecWindowMetaSizes {
				r := *results[key{b, w, m}]
				base := *results[key{b, 0, m}]
				res.Slowdown[b][w][m] = float64(r.Cycles) / float64(base.Cycles)
				if reads := r.Mem.DataReads; reads > 0 {
					res.StallShare[b][w][m] = float64(r.SpecWindowStalls) / float64(reads)
				}
			}
		}
	}
	return res, nil
}

// Render prints the sweep.
func (r *SpecWindowResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Extension: finite speculation windows (slowdown vs unbounded speculation)\n\n")
	for _, b := range r.Benchmarks {
		fmt.Fprintf(&sb, "%s:\n", b)
		var t stats.Table
		header := []string{"window \\ metacache"}
		for _, m := range r.MetaSizes {
			label := "none"
			if m > 0 {
				label = sizeLabel(m)
			}
			header = append(header, label)
		}
		t.AddRow(header...)
		for _, w := range r.Windows {
			label := "unbounded"
			if w > 0 {
				label = fmt.Sprintf("%d cycles", w)
			}
			row := []string{label}
			for _, m := range r.MetaSizes {
				row = append(row, fmt.Sprintf("%.3f (%.0f%% stall)",
					r.Slowdown[b][w][m], 100*r.StallShare[b][w][m]))
			}
			t.AddRow(row...)
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("(with a metadata cache, verification is short and even shallow windows hide it;\n with no cache, verification outruns the window and speculation stops paying)\n")
	return sb.String()
}
