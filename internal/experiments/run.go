package experiments

import (
	"fmt"
	"time"
)

// Report is one experiment's execution record: the structured result
// (what `maps -json` and mapsd serialize), its rendered table, an
// optional ASCII chart, and how long the sweep took on the host.
type Report struct {
	// Name is the experiment's registry name ("fig1", "csopt", ...).
	Name string `json:"experiment"`
	// Result is the experiment-specific result struct (or the rendered
	// string for the static tables).
	Result any `json:"result"`
	// Table is the human-readable rendering.
	Table string `json:"-"`
	// Chart is the ASCII chart when requested and supported.
	Chart string `json:"-"`
	// Elapsed is the sweep's wall-clock time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// renderer is implemented by every experiment result that renders a
// table.
type renderer interface{ Render() string }

// chartRenderer is implemented by the results that can also draw an
// ASCII chart.
type chartRenderer interface{ RenderChart() string }

// wrap adapts a typed experiment harness to the registry signature
// without letting a typed nil pointer leak into a non-nil any.
func wrap[T any](f func(Options) (T, error)) func(Options) (any, error) {
	return func(o Options) (any, error) {
		r, err := f(o)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// registry maps every experiment name to its harness. Keep it in
// lockstep with Names (enforced by TestRegistryCoversNames).
var registry = map[string]func(Options) (any, error){
	"table1":         func(Options) (any, error) { return Table1(), nil },
	"table2":         func(Options) (any, error) { return Table2(), nil },
	"fig1":           wrap(Fig1),
	"fig2":           wrap(Fig2),
	"fig3":           wrap(Fig3),
	"fig4":           wrap(Fig4),
	"fig5":           wrap(Fig5),
	"fig6":           wrap(Fig6),
	"fig7":           wrap(Fig7),
	"ablate-partial": wrap(AblatePartial),
	"content-matrix": wrap(ContentMatrix),
	"org-compare":    wrap(OrgCompare),
	"csopt":          wrap(CSOPT),
	"spec-window":    wrap(SpecWindow),
	"tree-stretch":   wrap(TreeStretch),
}

// Run executes one named experiment and reports its result, rendered
// output, and wall-clock time. withChart additionally renders the
// ASCII chart for the experiments that support one.
func Run(name string, opt Options, withChart bool) (*Report, error) {
	fn, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (want one of %v, or all)", name, Names())
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := fn(opt)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: name, Result: res}
	switch v := res.(type) {
	case string:
		rep.Table = v
	case renderer:
		rep.Table = v.Render()
	}
	if withChart {
		if c, ok := res.(chartRenderer); ok {
			rep.Chart = c.RenderChart()
		}
	}
	// Stamp after rendering, so Elapsed covers the sweep plus the one
	// table/chart render — and rendering is never timed twice into it.
	rep.Elapsed = time.Since(start)
	return rep, nil
}
