package experiments

import (
	"fmt"
	"strings"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/plot"
	"github.com/maps-sim/mapsim/internal/reuse"
)

// This file gives each figure result an ASCII-chart rendering so
// `cmd/maps -plot` can show figure-shaped output, not just tables.

// RenderChart draws Figure 1 as one MPKI-vs-size line chart per
// benchmark.
func (r *Fig1Result) RenderChart() string {
	var sb strings.Builder
	ticks := make([]string, len(r.Sizes))
	for i, s := range r.Sizes {
		ticks[i] = sizeLabel(s)
	}
	for _, b := range r.Benchmarks {
		c := plot.LineChart{
			Title:  fmt.Sprintf("Figure 1 (%s): metadata MPKI vs cache size", b),
			XTicks: ticks,
		}
		for _, content := range r.Contents {
			ys := make([]float64, len(r.Sizes))
			for i, s := range r.Sizes {
				ys[i] = r.MPKI[b][content][s]
			}
			c.Series = append(c.Series, plot.Series{Name: content.String(), Y: ys})
		}
		sb.WriteString(c.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderChart draws Figure 2 as one normalized-ED² chart per series,
// one line per LLC size.
func (r *Fig2Result) RenderChart() string {
	var sb strings.Builder
	ticks := make([]string, len(r.Metas))
	for i, m := range r.Metas {
		ticks[i] = sizeLabel(m)
	}
	for _, series := range []string{"average", "canneal"} {
		data := r.Norm[series]
		if data == nil {
			continue
		}
		c := plot.LineChart{
			Title:  fmt.Sprintf("Figure 2 (%s): normalized ED^2 vs metadata cache size", series),
			XTicks: ticks,
		}
		for _, llc := range r.LLCs {
			ys := make([]float64, len(r.Metas))
			for i, m := range r.Metas {
				ys[i] = data[llc][m]
			}
			c.Series = append(c.Series, plot.Series{Name: "LLC " + sizeLabel(llc), Y: ys})
		}
		sb.WriteString(c.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderChart draws Figure 3 as a CDF line chart per benchmark.
func (r *Fig3Result) RenderChart() string {
	var sb strings.Builder
	ticks := make([]string, len(r.Thresholds))
	for i, th := range r.Thresholds {
		ticks[i] = sizeLabel(int(th))
	}
	for _, b := range r.Benchmarks {
		c := plot.LineChart{
			Title:  fmt.Sprintf("Figure 3 (%s): reuse-distance CDF", b),
			XTicks: ticks,
			YMax:   1,
		}
		for _, k := range memlayout.MetaKinds {
			c.Series = append(c.Series, plot.Series{Name: k.String(), Y: r.CDF[b][k]})
		}
		sb.WriteString(c.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderChart draws Figure 4 as normalized stacked bars.
func (r *Fig4Result) RenderChart() string {
	c := plot.StackedChart{
		Title:  "Figure 4: metadata accesses by reuse-distance class",
		Width:  48,
		Legend: reuse.ClassLabels[:],
	}
	for _, b := range r.Benchmarks {
		cl := r.Classes[b]
		c.Bars = append(c.Bars, plot.StackedBar{Label: b, Segments: cl[:]})
	}
	return c.Render()
}

// RenderChart draws Figure 6 as one policy bar chart per benchmark.
func (r *Fig6Result) RenderChart() string {
	var sb strings.Builder
	for _, b := range r.Benchmarks {
		c := plot.BarChart{
			Title: fmt.Sprintf("Figure 6 (%s): metadata MPKI by policy", b),
			Width: 40,
		}
		for _, p := range r.Policies {
			c.Bars = append(c.Bars, plot.Bar{Label: p, Value: r.MPKI[b][p]})
		}
		sb.WriteString(c.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderChart draws Figure 7 as one scheme bar chart per benchmark.
func (r *Fig7Result) RenderChart() string {
	var sb strings.Builder
	for _, b := range r.Benchmarks {
		c := plot.BarChart{
			Title: fmt.Sprintf("Figure 7 (%s): ED^2 overhead by partitioning scheme", b),
			Width: 40,
		}
		for _, s := range Fig7Schemes {
			c.Bars = append(c.Bars, plot.Bar{Label: s, Value: r.Overhead[b][s]})
		}
		sb.WriteString(c.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}
