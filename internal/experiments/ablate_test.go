package experiments

import (
	"strings"
	"testing"

	"github.com/maps-sim/mapsim/internal/metacache"
)

func TestAblatePartial(t *testing.T) {
	opt := Options{Instructions: 1_500_000, Benchmarks: []string{"lbm", "fft"}, Parallelism: 4}
	r, err := AblatePartial(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.Benchmarks {
		h := r.HashReadsPKI[b]
		// Partial writes can only reduce (or match) hash fetch
		// traffic: write misses stop fetching, and the fill read at
		// eviction costs at most what the fetch would have.
		if h[1] > h[0]*1.02 {
			t.Errorf("%s: partial writes increased hash reads: %.2f -> %.2f", b, h[0], h[1])
		}
	}
	// Write-heavy lbm must show actual savings.
	lbm := r.HashReadsPKI["lbm"]
	if lbm[1] >= lbm[0] {
		t.Errorf("lbm: expected hash-read savings, got %.2f -> %.2f", lbm[0], lbm[1])
	}
	out := r.Render()
	if !strings.Contains(out, "hash reads/KI") {
		t.Error("render incomplete")
	}
}

func TestContentMatrix(t *testing.T) {
	opt := Options{Instructions: 200_000, Benchmarks: []string{"libquantum", "canneal"}, Parallelism: 4}
	r, err := ContentMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Contents) != 7 {
		t.Fatalf("expected 7 content combinations, have %d", len(r.Contents))
	}
	// The paper's trend: caching all types is at or near the traffic
	// minimum everywhere (within 25% of the best single policy — the
	// adaptivity argument), and strictly best for cache-friendly
	// metadata footprints like libquantum's.
	for _, b := range r.Benchmarks {
		all := r.MemPKI[b][metacache.AllTypes]
		best := all
		for _, c := range r.Contents {
			if v := r.MemPKI[b][c]; v < best {
				best = v
			}
		}
		if all > best*1.25 {
			t.Errorf("%s: all-types traffic %.1f far from best %.1f", b, all, best)
		}
	}
	lq := r.MemPKI["libquantum"]
	for _, c := range r.Contents {
		if lq[metacache.AllTypes] > lq[c]*1.02 {
			t.Errorf("libquantum: all-types %.1f exceeds %s's %.1f", lq[metacache.AllTypes], c, lq[c])
		}
	}
	if !strings.Contains(r.Render(), "counters+tree") {
		t.Error("render incomplete")
	}
}

func TestOrgCompare(t *testing.T) {
	opt := Options{Instructions: 200_000, Benchmarks: []string{"libquantum", "leslie3d"}, Parallelism: 4}
	r, err := OrgCompare(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.Benchmarks {
		c := r.CounterMPKI[b]
		if c[1] < c[0] {
			t.Errorf("%s: SGX counter MPKI %.2f should be >= PI's %.2f (8x less coverage)", b, c[1], c[0])
		}
	}
	if r.TreeLevels[1] <= r.TreeLevels[0] {
		t.Errorf("SGX tree (%d levels) should be deeper than PI (%d)", r.TreeLevels[1], r.TreeLevels[0])
	}
	if !strings.Contains(r.Render(), "SGX") {
		t.Error("render incomplete")
	}
}

func TestCSOPTStudy(t *testing.T) {
	opt := Options{Instructions: 60_000, Benchmarks: []string{"perlbench", "canneal"}, Parallelism: 2}
	r, err := CSOPT(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.TraceLen == 0 || r.OptimalMiss == 0 {
		t.Errorf("degenerate solve: %+v", r)
	}
	// The optimal solve can't miss more often than the trace has
	// accesses, and the schedule must be nontrivial.
	if r.OptimalMiss > uint64(r.TraceLen) {
		t.Errorf("optimal misses %d exceed trace length %d", r.OptimalMiss, r.TraceLen)
	}
	if r.OptimalCost < r.OptimalMiss {
		t.Errorf("cost %d below miss count %d", r.OptimalCost, r.OptimalMiss)
	}
	if r.PeakStates < 2 {
		t.Errorf("peak states = %d, solver never branched", r.PeakStates)
	}
	// The live replay must have diverged: tree accesses depend on
	// cache state.
	if r.Diverged == 0 {
		t.Error("live replay never diverged from the schedule")
	}
	if !r.Exploded {
		t.Error("memory-intensive benchmark did not overflow the state budget")
	}
	out := r.Render()
	if !strings.Contains(out, "state explosion") || !strings.Contains(out, "diverged") {
		t.Error("render incomplete")
	}
}

func TestSpecWindow(t *testing.T) {
	opt := Options{Instructions: 250_000, Benchmarks: []string{"canneal"}, Parallelism: 4}
	r, err := SpecWindow(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded window is the baseline: slowdown exactly 1.
	if got := r.Slowdown["canneal"][0][0]; got != 1 {
		t.Errorf("unbounded slowdown = %v", got)
	}
	// With no metadata cache, a tight window must cost cycles and
	// stall a large share of reads.
	tight := r.Slowdown["canneal"][100][0]
	if tight <= 1.0 {
		t.Errorf("tight window with no cache: slowdown = %v, want > 1", tight)
	}
	if r.StallShare["canneal"][100][0] < 0.5 {
		t.Errorf("stall share = %v, want most reads stalled", r.StallShare["canneal"][100][0])
	}
	// A metadata cache shortens verification: the same window hurts
	// less.
	cached := r.Slowdown["canneal"][100][64<<10]
	if cached >= tight {
		t.Errorf("64KB cache under tight window (%v) should beat no cache (%v)", cached, tight)
	}
	if !strings.Contains(r.Render(), "unbounded") {
		t.Error("render incomplete")
	}
}

func TestTreeStretch(t *testing.T) {
	opt := Options{Instructions: 300_000, Benchmarks: []string{"canneal"}, Parallelism: 2}
	r, err := TreeStretch(opt)
	if err != nil {
		t.Fatal(err)
	}
	// The metadata cache filters tree requests: fewer per KI.
	no := r.TreeAccessesPKI["canneal"]["nocache"]
	yes := r.TreeAccessesPKI["canneal"]["cached"]
	if yes >= no {
		t.Errorf("cached tree req/KI %v should be below nocache %v", yes, no)
	}
	// Surviving requests have longer reuse distances: the cached CDF
	// sits at or below the nocache CDF at short thresholds.
	i4k := 1 // ReuseThresholds[1] == 4KB
	if r.CDF["canneal"]["cached"][i4k] > r.CDF["canneal"]["nocache"][i4k]+0.02 {
		t.Errorf("cached tree CDF@4KB %v exceeds nocache %v — distances should stretch",
			r.CDF["canneal"]["cached"][i4k], r.CDF["canneal"]["nocache"][i4k])
	}
	if !strings.Contains(r.Render(), "nocache") {
		t.Error("render incomplete")
	}
}
