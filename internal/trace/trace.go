// Package trace records metadata-access traces so that offline
// replacement policies (Belady's MIN, iterMIN, CSOPT) can replay them
// as "future knowledge", exactly as MAPS §V-B does: the trace is
// gathered under true LRU and fed back into the simulator.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Access is one recorded cache access.
type Access struct {
	// Addr is the block-aligned address.
	Addr uint64
	// Write distinguishes updates from fetches.
	Write bool
	// Class carries the caller's block classification (metadata kind).
	Class uint8
	// Cost is the observed miss cost in memory accesses: 1 for a
	// hash, 1 + tree nodes fetched for a counter, as seen when the
	// trace was recorded. CSOPT weighs misses with it.
	Cost uint8
}

// Trace is an append-only access sequence.
type Trace struct {
	Accesses []Access
}

// Append records one access.
func (t *Trace) Append(a Access) { t.Accesses = append(t.Accesses, a) }

// Len reports the number of recorded accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// FutureQueues builds, for every address, the ascending list of
// positions at which it is accessed. MIN consumes these queues as its
// oracle.
func (t *Trace) FutureQueues() map[uint64][]int64 {
	q := make(map[uint64][]int64)
	for i, a := range t.Accesses {
		q[a.Addr] = append(q[a.Addr], int64(i))
	}
	return q
}

// Equal reports whether two traces are identical; iterMIN uses it to
// detect a fixed point.
func (t *Trace) Equal(o *Trace) bool {
	if len(t.Accesses) != len(o.Accesses) {
		return false
	}
	for i := range t.Accesses {
		if t.Accesses[i] != o.Accesses[i] {
			return false
		}
	}
	return true
}

const magic = uint32(0x4D545243) // "MTRC"

// WriteTo serializes the trace in a compact binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(magic); err != nil {
		return n, err
	}
	if err := write(uint64(len(t.Accesses))); err != nil {
		return n, err
	}
	for _, a := range t.Accesses {
		flags := a.Class << 1
		if a.Write {
			flags |= 1
		}
		if err := write(a.Addr); err != nil {
			return n, err
		}
		if err := write(flags); err != nil {
			return n, err
		}
		if err := write(a.Cost); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a trace written by WriteTo, replacing the
// receiver's contents.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var n int64
	read := func(v any) error {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	var m uint32
	if err := read(&m); err != nil {
		return n, err
	}
	if m != magic {
		return n, fmt.Errorf("trace: bad magic %#x", m)
	}
	var count uint64
	if err := read(&count); err != nil {
		// The magic decoded, so this is a trace header cut short — not
		// a clean end of anything.
		return n, fmt.Errorf("trace: truncated header: %w", noEOF(err))
	}
	// Never trust the declared count for allocation: a corrupt or
	// malicious header could demand terabytes. Pre-size within reason
	// and let append grow if the data really is that long.
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t.Accesses = make([]Access, 0, capHint)
	for i := uint64(0); i < count; i++ {
		var a Access
		var flags uint8
		if err := read(&a.Addr); err != nil {
			return n, recordErr(err, i, count)
		}
		if err := read(&flags); err != nil {
			return n, recordErr(err, i, count)
		}
		if err := read(&a.Cost); err != nil {
			return n, recordErr(err, i, count)
		}
		a.Write = flags&1 != 0
		a.Class = flags >> 1
		t.Accesses = append(t.Accesses, a)
	}
	return n, nil
}

// recordErr maps a failure while decoding record i of a declared count
// to an explicit error. The header promised count records, so running
// out of bytes here — whether at a record boundary (binary.Read's bare
// io.EOF) or mid-record — is a truncated stream or a corrupt count,
// never a clean end; callers must not mistake it for one, and must not
// silently keep a short prefix.
func recordErr(err error, i, count uint64) error {
	return fmt.Errorf("trace: truncated: %d of %d declared records decoded: %w", i, count, noEOF(err))
}

// noEOF upgrades a clean-looking io.EOF to io.ErrUnexpectedEOF so that
// errors.Is reports truncation, not end-of-stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
