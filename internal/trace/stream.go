package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The streaming format ("MTS1") exists so traces far larger than
// memory can be recorded and replayed in O(chunk) space: a small
// uncompressed header (workload name + footprint, so replay can size
// the simulated address space without scanning the file), then a
// chunked record payload, optionally gzip-compressed. Each chunk is a
// uint32 record count followed by that many fixed-width records; a
// zero-count chunk is the explicit end-of-stream marker, so silent
// truncation is always detectable — a stream that just stops is an
// error, never a short trace.

// streamMagic opens every streaming trace file. Distinct from the
// in-memory format's little-endian uint32 magic ("CRTM" on disk), so
// Reader can accept both.
var streamMagic = [4]byte{'M', 'T', 'S', '1'}

// legacyMagic is the in-memory Trace format's magic as it appears on
// disk (uint32 0x4D545243 little-endian).
var legacyMagic = [4]byte{0x43, 0x52, 0x54, 0x4D}

const (
	flagGzip = 1 << 0

	// recordSize is the fixed on-disk size of one streaming record:
	// addr u64, flags u8, cost u8, gap u32.
	recordSize = 14

	// chunkRecords is the Writer's records-per-chunk, sized so a chunk
	// buffer stays tens of kilobytes regardless of trace length.
	chunkRecords = 4096

	// maxNameLen bounds the header's workload-name field.
	maxNameLen = 1 << 10
)

// Record is one access in a streaming trace: the workload-level
// fields replay needs (address, direction, instruction gap) plus the
// metadata classification the in-memory format records, so either
// kind of trace can flow through the streaming reader.
type Record struct {
	// Addr is the accessed address.
	Addr uint64
	// Write distinguishes updates from fetches.
	Write bool
	// Class carries the block classification (0 for workload traces).
	Class uint8
	// Cost is the observed miss cost (0 for workload traces).
	Cost uint8
	// Gap is the instruction distance to the previous access; replay
	// clamps it to at least 1.
	Gap uint32
}

// StreamHeader describes a streaming trace: which workload produced
// it and how much address space it spans. Replay uses Footprint to
// size the simulated memory layout without scanning the records.
type StreamHeader struct {
	// Name labels the recorded workload.
	Name string
	// Footprint is the workload's address-space span in bytes.
	Footprint uint64
}

// Writer emits a streaming trace. Records accumulate into fixed-size
// chunks, so writing a multi-gigabyte trace holds only one chunk in
// memory. Close writes the end-of-stream marker — a trace without one
// reads back as truncated.
type Writer struct {
	dst    *bufio.Writer
	gz     *gzip.Writer
	body   io.Writer // dst, or gz over dst
	buf    []byte
	n      int // records buffered in buf
	count  uint64
	closed bool
	err    error
}

// NewWriter writes a streaming-trace header to w and returns a Writer
// for its records. With compress set, the record payload (not the
// header) is gzip-compressed.
func NewWriter(w io.Writer, h StreamHeader, compress bool) (*Writer, error) {
	if len(h.Name) > maxNameLen {
		return nil, fmt.Errorf("trace: workload name %d bytes long, max %d", len(h.Name), maxNameLen)
	}
	dst := bufio.NewWriter(w)
	var flags byte
	if compress {
		flags |= flagGzip
	}
	hdr := make([]byte, 0, 4+1+2+len(h.Name)+8)
	hdr = append(hdr, streamMagic[:]...)
	hdr = append(hdr, flags)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(h.Name)))
	hdr = append(hdr, h.Name...)
	hdr = binary.LittleEndian.AppendUint64(hdr, h.Footprint)
	if _, err := dst.Write(hdr); err != nil {
		return nil, err
	}
	sw := &Writer{dst: dst, body: dst, buf: make([]byte, 0, chunkRecords*recordSize)}
	if compress {
		sw.gz = gzip.NewWriter(dst)
		sw.body = sw.gz
	}
	return sw, nil
}

// Write appends one record, flushing a chunk when full.
func (w *Writer) Write(rec Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	var flags byte = rec.Class << 1
	if rec.Write {
		flags |= 1
	}
	w.buf = binary.LittleEndian.AppendUint64(w.buf, rec.Addr)
	w.buf = append(w.buf, flags, rec.Cost)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, rec.Gap)
	w.n++
	w.count++
	if w.n >= chunkRecords {
		w.err = w.flushChunk()
	}
	return w.err
}

// Count reports the records written so far.
func (w *Writer) Count() uint64 { return w.count }

// flushChunk writes the buffered records as one chunk.
func (w *Writer) flushChunk() error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(w.n))
	if _, err := w.body.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.body.Write(w.buf); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	w.n = 0
	return nil
}

// Close flushes the final partial chunk, writes the end-of-stream
// marker, and finishes any compression stream. It does not close the
// underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if w.n > 0 {
		if err := w.flushChunk(); err != nil {
			w.err = err
			return err
		}
	}
	var marker [4]byte // zero-count chunk: explicit clean end
	if _, err := w.body.Write(marker[:]); err != nil {
		w.err = err
		return err
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			w.err = err
			return err
		}
	}
	if err := w.dst.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Reader iterates a streaming trace record by record in O(chunk)
// memory. It also reads the in-memory Trace format ("MTRC") as a
// stream, so tooling can process either kind without loading it whole.
type Reader struct {
	br  *bufio.Reader // record payload (past optional gzip)
	hdr StreamHeader

	legacy    bool
	remaining uint64 // legacy: records the header still owes

	chunkLeft uint32 // stream: records left in the current chunk
	done      bool

	idx uint64 // records decoded, for error context
	buf [recordSize]byte
}

// NewReader decodes a streaming-trace header from r (accepting the
// in-memory "MTRC" format too) and returns a Reader over its records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", noEOF(err))
	}
	switch magic {
	case legacyMagic:
		var cnt [8]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated header: %w", noEOF(err))
		}
		return &Reader{br: br, legacy: true, remaining: binary.LittleEndian.Uint64(cnt[:])}, nil
	case streamMagic:
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var fixed [3]byte // flags + name length
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return nil, fmt.Errorf("trace: truncated header: %w", noEOF(err))
	}
	flags := fixed[0]
	nameLen := binary.LittleEndian.Uint16(fixed[1:])
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: header name %d bytes long, max %d", nameLen, maxNameLen)
	}
	rest := make([]byte, int(nameLen)+8)
	if _, err := io.ReadFull(br, rest); err != nil {
		return nil, fmt.Errorf("trace: truncated header: %w", noEOF(err))
	}
	sr := &Reader{hdr: StreamHeader{
		Name:      string(rest[:nameLen]),
		Footprint: binary.LittleEndian.Uint64(rest[nameLen:]),
	}}
	if flags&flagGzip != 0 {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip payload: %w", noEOF(err))
		}
		sr.br = bufio.NewReaderSize(gz, 1<<16)
	} else {
		sr.br = br
	}
	return sr, nil
}

// Header returns the trace's header. Legacy in-memory traces carry no
// header metadata, so theirs is zero.
func (r *Reader) Header() StreamHeader { return r.hdr }

// Next decodes the next record into rec. It returns io.EOF at a clean
// end of stream; a stream that stops early returns an error wrapping
// io.ErrUnexpectedEOF with the index of the record that failed.
func (r *Reader) Next(rec *Record) error {
	if r.done {
		return io.EOF
	}
	if r.legacy {
		return r.nextLegacy(rec)
	}
	for r.chunkLeft == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
			return r.truncated(err)
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 { // explicit end-of-stream marker
			r.done = true
			return io.EOF
		}
		r.chunkLeft = n
	}
	if _, err := io.ReadFull(r.br, r.buf[:]); err != nil {
		return r.truncated(err)
	}
	r.chunkLeft--
	rec.Addr = binary.LittleEndian.Uint64(r.buf[0:8])
	flags := r.buf[8]
	rec.Write = flags&1 != 0
	rec.Class = flags >> 1
	rec.Cost = r.buf[9]
	rec.Gap = binary.LittleEndian.Uint32(r.buf[10:14])
	r.idx++
	return nil
}

// nextLegacy decodes one in-memory-format record; the declared count
// is the only end-of-stream signal, so it must match the payload.
func (r *Reader) nextLegacy(rec *Record) error {
	if r.remaining == 0 {
		r.done = true
		return io.EOF
	}
	if _, err := io.ReadFull(r.br, r.buf[:10]); err != nil {
		return r.truncated(err)
	}
	r.remaining--
	rec.Addr = binary.LittleEndian.Uint64(r.buf[0:8])
	flags := r.buf[8]
	rec.Write = flags&1 != 0
	rec.Class = flags >> 1
	rec.Cost = r.buf[9]
	rec.Gap = 1
	r.idx++
	return nil
}

// truncated wraps a payload read failure with record-position context,
// upgrading EOFs so the result never looks like a clean end.
func (r *Reader) truncated(err error) error {
	r.done = true
	return fmt.Errorf("trace: truncated stream after record %d: %w", r.idx, noEOF(err))
}

// ReadStream drains a Reader into an in-memory Trace, preserving the
// classification fields and dropping the gaps (the in-memory format
// has none). Tooling that needs random access over a streaming trace
// uses this; anything that can iterate should.
func ReadStream(r *Reader) (*Trace, error) {
	t := &Trace{}
	var rec Record
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		if len(t.Accesses) >= math.MaxInt32 {
			return nil, fmt.Errorf("trace: stream too large to hold in memory")
		}
		t.Append(Access{Addr: rec.Addr, Write: rec.Write, Class: rec.Class, Cost: rec.Cost})
	}
}
