package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFrom ensures arbitrary bytes never panic the decoder and
// that valid encodings round-trip.
func FuzzReadFrom(f *testing.F) {
	// Seed with a real encoding.
	tr := &Trace{}
	tr.Append(Access{Addr: 64, Write: true, Class: 2, Cost: 3})
	tr.Append(Access{Addr: 128, Class: 1, Cost: 1})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x52, 0x54, 0x4D, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Trace
		if _, err := got.ReadFrom(bytes.NewReader(data)); err != nil {
			return // rejected: fine
		}
		// Anything accepted must re-encode to an equal trace.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var again Trace
		if _, err := again.ReadFrom(&out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !got.Equal(&again) {
			t.Fatal("decode/encode/decode not idempotent")
		}
	})
}
