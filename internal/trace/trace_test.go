package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomTrace(n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{}
	for i := 0; i < n; i++ {
		t.Append(Access{
			Addr:  uint64(rng.Intn(256)) * 64,
			Write: rng.Intn(3) == 0,
			Class: uint8(rng.Intn(6)),
			Cost:  uint8(1 + rng.Intn(5)),
		})
	}
	return t
}

func TestAppendAndLen(t *testing.T) {
	tr := &Trace{}
	if tr.Len() != 0 {
		t.Error("empty trace has nonzero length")
	}
	tr.Append(Access{Addr: 64})
	tr.Append(Access{Addr: 128, Write: true})
	if tr.Len() != 2 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestFutureQueues(t *testing.T) {
	tr := &Trace{}
	for _, a := range []uint64{0, 64, 0, 128, 0, 64} {
		tr.Append(Access{Addr: a})
	}
	q := tr.FutureQueues()
	want := map[uint64][]int64{0: {0, 2, 4}, 64: {1, 5}, 128: {3}}
	for addr, positions := range want {
		got := q[addr]
		if len(got) != len(positions) {
			t.Fatalf("addr %d: %v, want %v", addr, got, positions)
		}
		for i := range positions {
			if got[i] != positions[i] {
				t.Fatalf("addr %d: %v, want %v", addr, got, positions)
			}
		}
	}
}

func TestEqual(t *testing.T) {
	a := randomTrace(100, 1)
	b := randomTrace(100, 1)
	if !a.Equal(b) {
		t.Error("identical traces not equal")
	}
	b.Accesses[50].Addr ^= 64
	if a.Equal(b) {
		t.Error("differing traces equal")
	}
	c := randomTrace(99, 1)
	if a.Equal(c) {
		t.Error("different lengths equal")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	orig := randomTrace(1000, 7)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	var got Trace
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !orig.Equal(&got) {
		t.Fatal("round trip changed the trace")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	var got Trace
	if _, err := got.ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	orig := randomTrace(10, 3)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	var got Trace
	if _, err := got.ReadFrom(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var orig, got Trace
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Error("empty round trip produced accesses")
	}
}
