package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
)

// --- ReadFrom truncation/count regression tests (the two bugfixes) ---

// Every cut point inside the record payload — record boundaries and
// mid-record alike — must surface as io.ErrUnexpectedEOF with record
// context, never as a bare io.EOF a caller could mistake for a clean
// end. The old decoder returned binary.Read's error verbatim, which
// is bare io.EOF exactly at record boundaries.
func TestReadFromTruncationTable(t *testing.T) {
	orig := randomTrace(5, 11)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	const header = 4 + 8 // magic + count
	const recBytes = 10  // addr + flags + cost
	cuts := []struct {
		name string
		n    int
	}{
		{"mid count", 4 + 3},
		{"before first record", header},
		{"after addr", header + 8},
		{"after flags", header + 9},
		{"record boundary", header + recBytes},
		{"mid third record", header + 2*recBytes + 5},
		{"before last record", header + 4*recBytes},
		{"one byte short", len(raw) - 1},
	}
	for _, c := range cuts {
		t.Run(c.name, func(t *testing.T) {
			var got Trace
			_, err := got.ReadFrom(bytes.NewReader(raw[:c.n]))
			if err == nil {
				t.Fatal("truncated trace accepted")
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("bare io.EOF for a truncated stream: %v", err)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
			}
			if c.n >= header {
				rec := (c.n - header) / recBytes
				if want := fmt.Sprintf("%d of %d", rec, orig.Len()); !strings.Contains(err.Error(), want) {
					t.Fatalf("err %q does not carry record position %q", err, want)
				}
			}
		})
	}
}

// A header declaring more records than the payload holds must be an
// explicit error: the old decoder silently returned the short prefix,
// letting a corrupt count masquerade as a short trace.
func TestReadFromCountLargerThanPayload(t *testing.T) {
	orig := randomTrace(3, 5)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Forge the count up to 10; the payload still holds 3 records.
	raw[4] = 10
	var got Trace
	_, err := got.ReadFrom(bytes.NewReader(raw))
	if err == nil {
		t.Fatalf("corrupt count accepted; decoded %d records", got.Len())
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	if !strings.Contains(err.Error(), "3 of 10") {
		t.Fatalf("err %q does not report decoded-vs-declared counts", err)
	}
}

// --- streaming format ---

func randomRecords(n int, seed uint64) []Record {
	s := seed
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	recs := make([]Record, n)
	for i := range recs {
		v := next()
		recs[i] = Record{
			Addr:  (v % (1 << 20)) * 64,
			Write: v&(1<<40) != 0,
			Class: uint8(v>>41) % 6,
			Cost:  uint8(v>>50)%5 + 1,
			Gap:   uint32(v>>32)%16 + 1,
		}
	}
	return recs
}

func writeStream(t *testing.T, recs []Record, h StreamHeader, gz bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h, gz)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	return buf.Bytes()
}

func drainStream(t *testing.T, data []byte) (StreamHeader, []Record) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	var rec Record
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			return r.Header(), recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	hdr := StreamHeader{Name: "canneal", Footprint: 64 << 20}
	for _, gz := range []bool{false, true} {
		for _, n := range []int{0, 1, chunkRecords - 1, chunkRecords, chunkRecords + 1, 3*chunkRecords + 17} {
			t.Run(fmt.Sprintf("gz=%v/n=%d", gz, n), func(t *testing.T) {
				want := randomRecords(n, uint64(n)+1)
				data := writeStream(t, want, hdr, gz)
				got, recs := drainStream(t, data)
				if got != hdr {
					t.Fatalf("header %+v, want %+v", got, hdr)
				}
				if len(recs) != len(want) {
					t.Fatalf("decoded %d records, want %d", len(recs), len(want))
				}
				for i := range want {
					if recs[i] != want[i] {
						t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
					}
				}
			})
		}
	}
}

// A stream cut anywhere before its end marker must read back as
// truncation (wrapped io.ErrUnexpectedEOF), never a clean io.EOF:
// the zero-count marker is the only legitimate end.
func TestStreamTruncation(t *testing.T) {
	recs := randomRecords(100, 3)
	data := writeStream(t, recs, StreamHeader{Name: "w", Footprint: 4096}, false)
	headerLen := 4 + 1 + 2 + 1 + 8
	for _, cut := range []int{
		headerLen,                         // before the first chunk header
		headerLen + 2,                     // mid chunk header
		headerLen + 4 + 30*recordSize,     // record boundary
		headerLen + 4 + 30*recordSize + 7, // mid-record
		len(data) - 2,                     // inside the end marker
	} {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		var rec Record
		var last error
		for last == nil {
			last = r.Next(&rec)
		}
		if !errors.Is(last, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err = %v, want io.ErrUnexpectedEOF", cut, last)
		}
		// The error state must be sticky-done, not resurrect records.
		if err := r.Next(&rec); err == nil {
			t.Fatalf("cut %d: Next succeeded after truncation error", cut)
		}
	}
}

func TestStreamTruncatedHeader(t *testing.T) {
	data := writeStream(t, nil, StreamHeader{Name: "abc", Footprint: 8192}, false)
	for cut := 1; cut < 4+1+2+3+8; cut++ {
		if _, err := NewReader(bytes.NewReader(data[:cut])); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	if _, err := NewReader(bytes.NewReader(nil)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("empty input: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// The reader accepts the in-memory format, streaming its records with
// Gap pinned to 1 — and applies the same truncation discipline.
func TestStreamReadsLegacyFormat(t *testing.T) {
	orig := randomTrace(2500, 9)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, recs := drainStream(t, buf.Bytes())
	if hdr != (StreamHeader{}) {
		t.Fatalf("legacy header %+v, want zero", hdr)
	}
	if len(recs) != orig.Len() {
		t.Fatalf("decoded %d records, want %d", len(recs), orig.Len())
	}
	for i, a := range orig.Accesses {
		want := Record{Addr: a.Addr, Write: a.Write, Class: a.Class, Cost: a.Cost, Gap: 1}
		if recs[i] != want {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want)
		}
	}

	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	var last error
	for last == nil {
		last = r.Next(&rec)
	}
	if !errors.Is(last, io.ErrUnexpectedEOF) {
		t.Fatalf("legacy truncation err = %v, want io.ErrUnexpectedEOF", last)
	}
}

func TestReadStream(t *testing.T) {
	recs := randomRecords(500, 21)
	data := writeStream(t, recs, StreamHeader{Name: "x", Footprint: 4096}, true)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ReadStream(r)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(recs) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(recs))
	}
	for i, a := range tr.Accesses {
		want := Access{Addr: recs[i].Addr, Write: recs[i].Write, Class: recs[i].Class, Cost: recs[i].Cost}
		if a != want {
			t.Fatalf("access %d = %+v, want %+v", i, a, want)
		}
	}
}

func TestWriterRejectsWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, StreamHeader{Name: "w", Footprint: 4096}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{}); err == nil {
		t.Fatal("Write after Close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// --- O(chunk) memory: the acceptance criterion for constant-memory
// replay. Steady-state iteration allocates nothing per record, and a
// stream far larger than any plausible chunk budget reads under a
// fixed heap bound. ---

func TestStreamNextIsAllocationFree(t *testing.T) {
	recs := randomRecords(4*chunkRecords, 5)
	data := writeStream(t, recs, StreamHeader{Name: "w", Footprint: 4096}, false)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := r.Next(&rec); err != nil { // warm up past any lazy init
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2*chunkRecords, func() {
		if err := r.Next(&rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Next allocates %.1f objects per record, want 0", allocs)
	}
}

// A synthesized stream of 30M records (~420 MB encoded) flows through
// writer and reader via an in-process pipe while total heap stays
// bounded: proof the path is O(chunk), independent of trace length.
func TestStreamConstantMemoryLargeTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("large-stream memory test skipped in -short mode")
	}
	const n = 30_000_000
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		w, err := NewWriter(pw, StreamHeader{Name: "big", Footprint: 1 << 30}, false)
		if err != nil {
			errc <- err
			pw.CloseWithError(err)
			return
		}
		var rec Record
		for i := 0; i < n; i++ {
			rec.Addr = uint64(i%(1<<24)) * 64
			rec.Write = i%3 == 0
			rec.Gap = uint32(i%7) + 1
			if err := w.Write(rec); err != nil {
				errc <- err
				pw.CloseWithError(err)
				return
			}
		}
		err = w.Close()
		errc <- err
		pw.CloseWithError(err)
	}()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	r, err := NewReader(pr)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	var count uint64
	for {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("decoded %d records, want %d", count, n)
	}

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	// Heap growth across a 420 MB stream must stay in single-digit
	// megabytes: both ends together hold only chunk-sized buffers.
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 16<<20 {
		t.Fatalf("heap grew %d bytes across a %d-record stream; replay is not O(chunk)", grew, n)
	}
}

// FuzzReadStream ensures arbitrary bytes never panic the streaming
// decoder and that anything it accepts round-trips bit-identically
// through the writer.
func FuzzReadStream(f *testing.F) {
	recs := randomRecords(10, 1)
	var plain, gz bytes.Buffer
	for dst, compress := range map[*bytes.Buffer]bool{&plain: false, &gz: true} {
		w, err := NewWriter(dst, StreamHeader{Name: "seed", Footprint: 8192}, compress)
		if err != nil {
			f.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(plain.Bytes())
	f.Add(gz.Bytes())
	var legacy bytes.Buffer
	if _, err := randomTrace(5, 2).WriteTo(&legacy); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())
	f.Add([]byte{})
	f.Add([]byte("MTS1garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		var got []Record
		var rec Record
		for {
			err := r.Next(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				return // rejected payload: fine
			}
			got = append(got, rec)
			if len(got) > 1<<20 {
				return // cap fuzz memory; long valid streams are covered elsewhere
			}
		}
		// Accepted: re-encode and re-decode must reproduce the records.
		var out bytes.Buffer
		w, err := NewWriter(&out, r.Header(), false)
		if err != nil {
			t.Fatalf("re-encode header: %v", err)
		}
		for _, rc := range got {
			if err := w.Write(rc); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("re-encode close: %v", err)
		}
		r2, err := NewReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode header: %v", err)
		}
		var i int
		for {
			err := r2.Next(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("re-decode record %d: %v", i, err)
			}
			if i >= len(got) || rec != got[i] {
				t.Fatalf("record %d changed across re-encode", i)
			}
			i++
		}
		if i != len(got) {
			t.Fatalf("re-decode yielded %d records, want %d", i, len(got))
		}
	})
}
