// Package sweep is the parameter-sweep engine behind every MAPS
// figure: a declarative Spec of axes over sim.Config fields —
// metadata-cache size, content policy, replacement policy, partition
// scheme, LLC size, benchmark, secure/insecure, partial writes — is
// expanded into a deterministic config grid, sharded across an
// internal/jobs worker pool with bounded parallelism and fail-fast
// cancellation, deduplicated against the internal/results
// content-addressed cache, and aggregated into a Result with stable
// point ordering, per-axis geomeans, and a rendered pivot table.
//
// The grid order is fixed (benchmark outermost, then secure, LLC
// size, metadata size, content, policy, partition, partial writes
// innermost), so the same Spec always yields the same point indices —
// the property the dedupe keys, the progress counters, and the
// regression tests all rely on.
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/eva"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/cache/typepred"
	"github.com/maps-sim/mapsim/internal/hierarchy"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/partition"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/workload"
	"github.com/maps-sim/mapsim/internal/workload/spec"
)

// IntAxis selects integer axis points (byte sizes) either explicitly
// (Points) or as a geometric range: Min, Min*Factor, ... up to Max
// inclusive (Factor defaults to 2). An axis with neither is absent —
// the point inherits the base config's value.
type IntAxis struct {
	// Points lists the values explicitly, in sweep order.
	Points []int `json:"points,omitempty"`
	// Min and Max bound a geometric range (both required together).
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// Factor is the range's multiplicative step (default 2).
	Factor int `json:"factor,omitempty"`
}

// expand resolves the axis to its point list (nil when absent).
func (a IntAxis) expand() ([]int, error) {
	if len(a.Points) > 0 {
		if a.Min != 0 || a.Max != 0 {
			return nil, fmt.Errorf("sweep: axis gives both points and a min/max range")
		}
		for _, p := range a.Points {
			if p < 0 {
				return nil, fmt.Errorf("sweep: negative axis point %d", p)
			}
		}
		return a.Points, nil
	}
	if a.Min == 0 && a.Max == 0 {
		return nil, nil
	}
	if a.Min <= 0 || a.Max < a.Min {
		return nil, fmt.Errorf("sweep: bad axis range [%d, %d]", a.Min, a.Max)
	}
	factor := a.Factor
	if factor == 0 {
		factor = 2
	}
	if factor < 2 {
		return nil, fmt.Errorf("sweep: axis range factor %d must be >= 2", factor)
	}
	var pts []int
	for v := a.Min; v <= a.Max; v *= factor {
		pts = append(pts, v)
	}
	return pts, nil
}

// Axes declares the sweep dimensions. Every empty axis contributes a
// single implicit point that inherits the base config, so a Spec with
// no axes at all is a one-point sweep of its base.
type Axes struct {
	// Benchmarks is the workload axis. Empty uses Base.Benchmark.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Secure sweeps the secure-memory engine on/off.
	Secure []bool `json:"secure,omitempty"`
	// LLC sweeps the L3 capacity in bytes.
	LLC IntAxis `json:"llc,omitempty"`
	// Meta sweeps the metadata-cache capacity in bytes. The value 0 is
	// a legal point meaning "no metadata cache".
	Meta IntAxis `json:"meta,omitempty"`
	// Contents sweeps the content policy by name ("counters",
	// "counters+hashes", "all", ...).
	Contents []string `json:"contents,omitempty"`
	// Policies sweeps the replacement policy by name (see
	// PolicyNames); a fresh instance is built per run, so points never
	// share policy state.
	Policies []string `json:"policies,omitempty"`
	// Partitions sweeps the way-partition scheme by name (see
	// ParsePartition): "none", "static:N", or "dynamic".
	Partitions []string `json:"partitions,omitempty"`
	// PartialWrites sweeps the partial-write optimization on/off.
	PartialWrites []bool `json:"partial_writes,omitempty"`
	// WorkloadSpecs extends the workload axis with declarative
	// multi-client specs (internal/workload/spec), swept after the
	// named Benchmarks on the same (outermost) axis. Each spec's name
	// labels its points exactly as a benchmark name would.
	WorkloadSpecs []*spec.Spec `json:"workload_specs,omitempty"`
}

// Spec is one declarative sweep: a shared base configuration plus the
// axes that vary across the grid.
type Spec struct {
	// Base is the configuration shared by every point; axis values
	// override its fields. It must be canonicalizable: no Workload,
	// Tap, Progress, or stateful Meta.Policy/Meta.Partition instances
	// (policies and partitions sweep by name instead).
	Base sim.Config `json:"-"`
	// Axes declares what varies.
	Axes Axes `json:"axes"`
	// NoCache skips result-cache lookups; computed points are still
	// stored for later sweeps.
	NoCache bool `json:"no_cache,omitempty"`
}

// Axis names, in canonical grid order (outermost first). Pivot and
// geomean output follows this order.
const (
	AxisBenchmark = "benchmark"
	AxisSecure    = "secure"
	AxisLLC       = "llc"
	AxisMeta      = "meta"
	AxisContent   = "content"
	AxisPolicy    = "policy"
	AxisPartition = "partition"
	AxisPartial   = "partial_writes"
)

// AxisNames lists every axis in canonical grid order.
func AxisNames() []string {
	return []string{AxisBenchmark, AxisSecure, AxisLLC, AxisMeta,
		AxisContent, AxisPolicy, AxisPartition, AxisPartial}
}

// Point is one grid coordinate with its materialized configuration.
// The Config is canonicalizable (policies and partitions stay names);
// the engine instantiates fresh policy/partition state per run.
type Point struct {
	// Index is the point's position in grid order.
	Index int `json:"index"`
	// Benchmark, Secure, LLCBytes, MetaBytes, Content, Policy,
	// Partition, and PartialWrites are the resolved coordinates.
	// LLCBytes and MetaBytes are 0 when the axis is absent and the
	// base leaves them defaulted; MetaBytes 0 under a present axis
	// means "no metadata cache".
	Benchmark     string `json:"benchmark"`
	Secure        bool   `json:"secure"`
	LLCBytes      int    `json:"llc_bytes,omitempty"`
	MetaBytes     int    `json:"meta_bytes,omitempty"`
	Content       string `json:"content,omitempty"`
	Policy        string `json:"policy,omitempty"`
	Partition     string `json:"partition,omitempty"`
	PartialWrites bool   `json:"partial_writes,omitempty"`

	// Config is the fully materialized simulation config (policy and
	// partition NOT instantiated — see the engine).
	Config sim.Config `json:"-"`
}

// Label renders the point's coordinate on the named axis, for tables
// and error messages.
func (p Point) Label(axis string) string {
	switch axis {
	case AxisBenchmark:
		return p.Benchmark
	case AxisSecure:
		if p.Secure {
			return "secure"
		}
		return "insecure"
	case AxisLLC:
		return SizeLabel(p.LLCBytes)
	case AxisMeta:
		if p.MetaBytes == 0 {
			return "no-meta"
		}
		return SizeLabel(p.MetaBytes)
	case AxisContent:
		return p.Content
	case AxisPolicy:
		return p.Policy
	case AxisPartition:
		return p.Partition
	case AxisPartial:
		if p.PartialWrites {
			return "partial"
		}
		return "full"
	}
	return "?"
}

// String names the point compactly for logs and errors.
func (p Point) String() string {
	parts := []string{p.Benchmark}
	if !p.Secure {
		parts = append(parts, "insecure")
	}
	if p.LLCBytes > 0 {
		parts = append(parts, "llc="+SizeLabel(p.LLCBytes))
	}
	if p.MetaBytes > 0 {
		parts = append(parts, "meta="+SizeLabel(p.MetaBytes))
	}
	if p.Content != "" {
		parts = append(parts, p.Content)
	}
	if p.Policy != "" && p.Policy != DefaultPolicy {
		parts = append(parts, p.Policy)
	}
	if p.Partition != "" && p.Partition != DefaultPartition {
		parts = append(parts, p.Partition)
	}
	if p.PartialWrites {
		parts = append(parts, "partial")
	}
	return strings.Join(parts, "/")
}

// SizeLabel prints a byte capacity the way the paper's axes do
// ("64KB", "2MB").
func SizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dMB", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%dKB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}

// Default policy and partition names: what an empty axis value
// normalizes to, and what keeps a point on the plain run-job cache
// key (see results.PointKeyFor).
const (
	DefaultPolicy    = "plru"
	DefaultPartition = "none"
)

// PolicyNames lists the replacement policies a sweep can name, the
// default first.
func PolicyNames() []string {
	return []string{"plru", "lru", "srrip", "eva", "eva-pertype", "typepred"}
}

// NewPolicy builds a fresh replacement-policy instance for the given
// name ("" means the plru default, which returns nil — the metadata
// cache's own default). Policies are stateful, so every run must get
// its own instance; this is the only constructor the engine uses.
func NewPolicy(name string) (cache.Policy, error) {
	switch name {
	case "", DefaultPolicy:
		return nil, nil
	case "lru":
		return policy.NewLRU(), nil
	case "srrip":
		return policy.NewSRRIP(), nil
	case "eva":
		return eva.New(eva.Config{}), nil
	case "eva-pertype":
		return eva.NewPerType(eva.Config{}), nil
	case "typepred":
		return typepred.New(), nil
	}
	return nil, fmt.Errorf("sweep: unknown policy %q (want one of %v)", name, PolicyNames())
}

// NewPartition builds a fresh partition-scheme instance for the given
// name: "" or "none" (nil — unpartitioned), "static:N" (N counter
// ways), or "dynamic" (set-dueling with the fig7 2/6 duel splits).
func NewPartition(name string) (partition.Scheme, error) {
	switch {
	case name == "" || name == DefaultPartition:
		return nil, nil
	case name == "dynamic":
		return partition.NewDynamic(2, 6), nil
	case strings.HasPrefix(name, "static:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "static:"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sweep: bad static partition %q (want static:N with N >= 1)", name)
		}
		return partition.NewStatic(n), nil
	}
	return nil, fmt.Errorf("sweep: unknown partition %q (want none, static:N, or dynamic)", name)
}

// normalizePolicy maps "" to the default name, validating the rest.
func normalizePolicy(name string) (string, error) {
	if name == "" {
		return DefaultPolicy, nil
	}
	if _, err := NewPolicy(name); err != nil {
		return "", err
	}
	return name, nil
}

// normalizePartition maps "" to "none", validating the rest.
func normalizePartition(name string) (string, error) {
	if name == "" {
		return DefaultPartition, nil
	}
	if _, err := NewPartition(name); err != nil {
		return "", err
	}
	return name, nil
}

// orDefault substitutes the single implicit point for an absent axis.
func orDefault[T any](axis []T, def T) []T {
	if len(axis) > 0 {
		return axis
	}
	return []T{def}
}

// Expand validates the spec and materializes the deterministic config
// grid. Two calls on the same Spec yield identical points in
// identical order.
func (s Spec) Expand() ([]Point, error) {
	base := s.Base
	switch {
	case base.Workload != nil:
		return nil, fmt.Errorf("sweep: base config must name a Benchmark, not carry a Workload")
	case base.WorkloadSpec != nil:
		return nil, fmt.Errorf("sweep: sweep workload specs via Axes.WorkloadSpecs, not Base")
	case base.TracePath != "":
		return nil, fmt.Errorf("sweep: base config must not set a TracePath (trace files are machine-local)")
	case base.Tap != nil || base.Progress != nil:
		return nil, fmt.Errorf("sweep: base config must not carry a Tap or Progress")
	case base.Meta != nil && (base.Meta.Policy != nil || base.Meta.Partition != nil):
		return nil, fmt.Errorf("sweep: sweep policies and partitions by name (Axes), not by instance")
	}

	// The workload axis: named benchmarks first, then spec-driven
	// entries, all on one outermost dimension.
	benches := s.Axes.Benchmarks
	if len(benches) == 0 && len(s.Axes.WorkloadSpecs) == 0 {
		if base.Benchmark == "" {
			return nil, fmt.Errorf("sweep: no benchmark axis and no base benchmark")
		}
		benches = []string{base.Benchmark}
	}
	for _, b := range benches {
		if _, err := workload.New(b); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	type workloadEntry struct {
		bench string
		ws    *spec.Spec
	}
	entries := make([]workloadEntry, 0, len(benches)+len(s.Axes.WorkloadSpecs))
	seen := make(map[string]bool, cap(entries))
	for _, b := range benches {
		if seen[b] {
			return nil, fmt.Errorf("sweep: duplicate workload %q on the benchmark axis", b)
		}
		seen[b] = true
		entries = append(entries, workloadEntry{bench: b})
	}
	for _, ws := range s.Axes.WorkloadSpecs {
		if ws == nil {
			return nil, fmt.Errorf("sweep: nil workload spec on the workload axis")
		}
		if err := ws.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		if seen[ws.Name] {
			return nil, fmt.Errorf("sweep: duplicate workload %q on the benchmark axis", ws.Name)
		}
		seen[ws.Name] = true
		entries = append(entries, workloadEntry{bench: ws.Name, ws: ws.Canonicalize()})
	}

	llcs, err := s.Axes.LLC.expand()
	if err != nil {
		return nil, fmt.Errorf("sweep: llc axis: %w", err)
	}
	metas, err := s.Axes.Meta.expand()
	if err != nil {
		return nil, fmt.Errorf("sweep: meta axis: %w", err)
	}
	for _, m := range llcs {
		if m <= 0 {
			return nil, fmt.Errorf("sweep: llc axis point %d must be positive", m)
		}
	}

	contents := s.Axes.Contents
	for _, c := range contents {
		if _, err := metacache.ParseContent(c); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	policies := make([]string, 0, len(s.Axes.Policies))
	for _, p := range s.Axes.Policies {
		name, err := normalizePolicy(p)
		if err != nil {
			return nil, err
		}
		policies = append(policies, name)
	}
	partitions := make([]string, 0, len(s.Axes.Partitions))
	for _, p := range s.Axes.Partitions {
		name, err := normalizePartition(p)
		if err != nil {
			return nil, err
		}
		partitions = append(partitions, name)
	}

	// Axes that tune the metadata cache need one to exist somewhere.
	hasMeta := base.Meta != nil || len(metas) > 0
	if !hasMeta {
		for axis, present := range map[string]bool{
			AxisContent:   len(contents) > 0,
			AxisPolicy:    len(policies) > 0,
			AxisPartition: len(partitions) > 0,
			AxisPartial:   len(s.Axes.PartialWrites) > 0,
		} {
			if present {
				return nil, fmt.Errorf("sweep: %s axis requires a metadata cache (set a meta axis or Base.Meta)", axis)
			}
		}
	}
	if base.Meta != nil && base.Meta.Size <= 0 && len(metas) == 0 {
		return nil, fmt.Errorf("sweep: Base.Meta.Size must be positive without a meta axis")
	}

	secures := orDefault(s.Axes.Secure, base.Secure)
	llcPts := orDefault(llcs, 0)
	metaPts := orDefault(metas, -1) // -1 = inherit base.Meta
	contentPts := orDefault(contents, "")
	policyPts := orDefault(policies, "")
	partitionPts := orDefault(partitions, "")
	partialPts := orDefault(s.Axes.PartialWrites, base.Meta != nil && base.Meta.PartialWrites)

	var points []Point
	for _, entry := range entries {
		for _, secure := range secures {
			for _, llc := range llcPts {
				for _, meta := range metaPts {
					for _, content := range contentPts {
						for _, pol := range policyPts {
							for _, part := range partitionPts {
								for _, partial := range partialPts {
									p, err := s.materialize(entry.bench, entry.ws, secure, llc, meta, content, pol, part, partial)
									if err != nil {
										return nil, err
									}
									p.Index = len(points)
									points = append(points, p)
								}
							}
						}
					}
				}
			}
		}
	}
	return points, nil
}

// materialize builds one point's coordinates and simulation config
// from the base plus axis values.
func (s Spec) materialize(bench string, ws *spec.Spec, secure bool, llc, meta int, content, pol, part string, partial bool) (Point, error) {
	cfg := s.Base
	cfg.Benchmark = bench
	cfg.WorkloadSpec = ws
	cfg.Secure = secure
	if llc > 0 {
		if cfg.Hierarchy == (hierarchy.Config{}) {
			cfg.Hierarchy = hierarchy.Default()
		}
		cfg.Hierarchy.L3Size = llc
	}
	switch {
	case meta == 0:
		cfg.Meta = nil
	case meta > 0:
		mc := metacache.Config{Ways: 8}
		if s.Base.Meta != nil {
			mc = *s.Base.Meta
		}
		mc.Size = meta
		cfg.Meta = &mc
	case cfg.Meta != nil:
		mc := *cfg.Meta
		cfg.Meta = &mc
	}
	if cfg.Meta != nil {
		if content != "" {
			cp, err := metacache.ParseContent(content)
			if err != nil {
				return Point{}, fmt.Errorf("sweep: %w", err)
			}
			cfg.Meta.Content = cp
		}
		if len(s.Axes.PartialWrites) > 0 {
			cfg.Meta.PartialWrites = partial
		}
	}

	p := Point{
		Benchmark:     bench,
		Secure:        secure,
		LLCBytes:      cfg.Hierarchy.L3Size,
		Content:       content,
		Policy:        pol,
		Partition:     part,
		PartialWrites: cfg.Meta != nil && cfg.Meta.PartialWrites,
		Config:        cfg,
	}
	if cfg.Meta != nil {
		p.MetaBytes = cfg.Meta.Size
	}
	return p, nil
}
