package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
)

// PointResult pairs a grid point with its simulation result.
type PointResult struct {
	Point
	// Result is the point's simulation output; treat it as shared and
	// immutable when Cached.
	Result *sim.Result `json:"result"`
	// Cached marks a point served from the results cache without
	// re-simulating.
	Cached bool `json:"cached,omitempty"`
	// Worker names the fleet worker that executed the point; empty for
	// cached points and for single-node sweeps run through Engine.
	Worker string `json:"worker,omitempty"`
}

// Cache is the result-store surface the engine dedupes through:
// tier-agnostic Get/Put keyed by content address. The persistent
// tiered store (internal/store, whose Get may consult disk and peers
// under ctx) and the MemCache adapter over a bare results.Cache both
// satisfy it.
type Cache interface {
	// Get returns the stored value for key; ctx bounds any remote
	// tier lookups.
	Get(ctx context.Context, key results.Key) (any, bool)
	// Put stores value under key.
	Put(key results.Key, value any)
}

// MemCache adapts a bare in-memory results.Cache to the Cache
// interface for callers with no persistent store.
type MemCache struct {
	// C is the wrapped cache.
	C *results.Cache
}

// Get looks key up in the wrapped cache; ctx is ignored (memory
// lookups never block).
func (m MemCache) Get(_ context.Context, key results.Key) (any, bool) { return m.C.Get(key) }

// Put stores value in the wrapped cache.
func (m MemCache) Put(key results.Key, value any) { m.C.Put(key, value) }

// Engine shards a sweep across a worker pool. Pool is required; the
// rest is optional.
type Engine struct {
	// Pool executes the points. The engine coordinates from its own
	// goroutines — never from inside a pool job, which could deadlock a
	// full pool against itself.
	Pool *jobs.Pool
	// Cache, when set, dedupes points against previously computed
	// results (by results.PointKeyFor) and stores fresh ones.
	Cache Cache
	// OnPoint, when set, observes every completed point — cached or
	// simulated — in completion order, from multiple goroutines (the
	// engine serializes the calls). Server progress streaming hangs off
	// this.
	OnPoint func(PointResult)
	// Parallelism bounds in-flight submissions (default: the pool's
	// worker count).
	Parallelism int
	// Timeout is the per-point job deadline (0 = none).
	Timeout time.Duration
}

// Run expands the spec and executes the grid, failing fast: the first
// point error cancels every queued and in-flight sibling and is
// returned alone — victims of the cancellation never mask it. The
// returned Result orders points exactly as Expand did, whatever order
// they completed in.
func (e *Engine) Run(ctx context.Context, spec Spec) (*Result, error) {
	points, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{
		Points: make([]PointResult, len(points)),
		Total:  len(points),
	}

	parallelism := e.Parallelism
	if parallelism <= 0 {
		parallelism = e.Pool.Stats().Workers
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel() // abandon the rest of the grid
	}
	deliver := func(pr PointResult) {
		mu.Lock()
		res.Points[pr.Index] = pr
		res.Done++
		if pr.Cached {
			res.Deduped++
		}
		cb := e.OnPoint
		if cb != nil {
			// Serialized under mu so observers see a consistent stream.
			cb(pr)
		}
		mu.Unlock()
	}

	for _, p := range points {
		key, hit := e.lookup(ctx, spec, p)
		if hit != nil {
			deliver(PointResult{Point: p, Result: hit, Cached: true})
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(p Point, key results.Key) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return // a sibling already failed; don't start
			}
			r, err := e.runPoint(ctx, p)
			if err != nil {
				if ctx.Err() == nil {
					fail(fmt.Errorf("sweep: point %d (%s): %w", p.Index, p, err))
				}
				return
			}
			if e.Cache != nil && key != "" {
				e.Cache.Put(key, r)
			}
			deliver(PointResult{Point: p, Result: r})
		}(p, key)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Wall = time.Since(start)
	res.Aggregate()
	return res, nil
}

// CacheNames maps a point's normalized policy/partition names to the
// form results.PointKeyFor wants: empty for the defaults, so default
// points share cache entries with plain run jobs. The fleet
// coordinator and the remote-worker adapter use the same mapping, so
// one grid point has one content address everywhere in the fleet.
func CacheNames(p Point) (string, string) {
	pol, part := p.Policy, p.Partition
	if pol == DefaultPolicy {
		pol = ""
	}
	if part == DefaultPartition {
		part = ""
	}
	return pol, part
}

// lookup computes the point's content address and consults the cache.
// It returns the key (for the post-run Put) and a non-nil result on a
// dedupe hit. A point whose config cannot be canonicalized sweeps
// uncached rather than failing — Expand already rejected the
// uncacheable base shapes, so this is belt and braces.
func (e *Engine) lookup(ctx context.Context, spec Spec, p Point) (results.Key, *sim.Result) {
	if e.Cache == nil {
		return "", nil
	}
	pol, part := CacheNames(p)
	key, err := results.PointKeyFor(p.Config, pol, part)
	if err != nil {
		return "", nil
	}
	if spec.NoCache {
		return key, nil
	}
	if v, ok := e.Cache.Get(ctx, key); ok {
		if r, ok := v.(*sim.Result); ok {
			return key, r
		}
	}
	return key, nil
}

// Instantiate materializes a point's runnable sim.Config: fresh
// replacement-policy and partition-scheme instances (they are
// stateful, so concurrent points must never share them) over a copied
// Meta the simulator can't alias back into the spec. Every executor —
// the local engine, the fleet's pool runner, and a worker daemon
// running a dispatched point — builds its config through this one
// path, which is what keeps fleet results bit-identical to local ones.
func Instantiate(p Point) (sim.Config, error) {
	cfg := p.Config
	if cfg.Meta != nil && (p.Policy != "" && p.Policy != DefaultPolicy ||
		p.Partition != "" && p.Partition != DefaultPartition) {
		mc := *cfg.Meta
		pol, err := NewPolicy(p.Policy)
		if err != nil {
			return sim.Config{}, err
		}
		part, err := NewPartition(p.Partition)
		if err != nil {
			return sim.Config{}, err
		}
		mc.Policy = pol
		mc.Partition = part
		cfg.Meta = &mc
	} else if cfg.Meta != nil {
		mc := *cfg.Meta // never let the simulator share the spec's Meta
		cfg.Meta = &mc
	}
	return cfg, nil
}

// runPoint executes one point as a pool job via Instantiate.
func (e *Engine) runPoint(ctx context.Context, p Point) (*sim.Result, error) {
	out, err := e.Pool.Run(ctx, func(jctx context.Context) (any, error) {
		cfg, err := Instantiate(p)
		if err != nil {
			return nil, err
		}
		return sim.RunContext(jctx, cfg)
	}, e.Timeout)
	if err != nil {
		return nil, err
	}
	r, ok := out.(*sim.Result)
	if !ok {
		return nil, fmt.Errorf("sweep: point job returned %T, want *sim.Result", out)
	}
	return r, nil
}

// Run is the one-shot convenience: a transient pool sized to
// parallelism (default NumCPU), no cache, no observer.
func Run(ctx context.Context, spec Spec, parallelism int) (*Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	pool := jobs.New(parallelism, parallelism, jobs.WithContextWrap(func(ctx context.Context) context.Context {
		// AutoShards points size their epoch parallelism to whatever
		// CPU budget the pool's own fan-out leaves unclaimed.
		return sim.WithConcurrency(ctx, parallelism)
	}))
	defer pool.Shutdown(context.Background())
	eng := &Engine{Pool: pool}
	return eng.Run(ctx, spec)
}

// contentLabel names a point's effective content policy even when the
// axis was absent (falling back to the materialized config).
func contentLabel(p Point) string {
	if p.Content != "" {
		return p.Content
	}
	if p.Config.Meta != nil {
		return p.Config.Meta.Content.String()
	}
	return metacache.AllTypes.String()
}
