package sweep

import (
	"fmt"
	"strings"
	"time"

	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/stats"
)

// Metrics names a sweep can aggregate and pivot on; see Metric.
func Metrics() []string {
	return []string{"llc_mpki", "meta_mpki", "ipc", "ed2", "meta_hit_rate", "mem_accesses", "energy_pj"}
}

// Metric extracts a named scalar from a simulation result. Unknown
// names return an error so misspelled pivots fail loudly.
func Metric(name string, r *sim.Result) (float64, error) {
	switch name {
	case "llc_mpki":
		return r.LLCMPKI, nil
	case "meta_mpki":
		return r.MetaMPKI, nil
	case "ipc":
		return r.IPC, nil
	case "ed2":
		return r.ED2, nil
	case "meta_hit_rate":
		return r.MetaHitRate, nil
	case "mem_accesses":
		return float64(r.DRAM.Accesses()), nil
	case "energy_pj":
		return r.EnergyPJ, nil
	}
	return 0, fmt.Errorf("sweep: unknown metric %q (want one of %v)", name, Metrics())
}

// AxisGeomean is one axis label's aggregate across every point that
// carries it: geometric means over the strictly positive entries
// (sim.GeomeanPositive semantics — zeros, like MetaMPKI on insecure
// points, are excluded rather than flooring the mean).
type AxisGeomean struct {
	// Axis and Label locate the group (e.g. axis "meta", label "64KB").
	Axis  string `json:"axis"`
	Label string `json:"label"`
	// Points counts the group's members.
	Points int `json:"points"`
	// LLCMPKI, MetaMPKI, IPC, and ED2 are the group geomeans.
	LLCMPKI  float64 `json:"llc_mpki"`
	MetaMPKI float64 `json:"meta_mpki"`
	IPC      float64 `json:"ipc"`
	ED2      float64 `json:"ed2"`
}

// Result is a completed sweep: every point in grid order plus the
// aggregates.
type Result struct {
	// Points holds one entry per grid point, in Expand order
	// regardless of completion order.
	Points []PointResult `json:"points"`
	// Total, Done, and Deduped count grid size, completed points, and
	// points served from the results cache without simulating.
	Total   int `json:"total"`
	Done    int `json:"done"`
	Deduped int `json:"deduped"`
	// Geomeans aggregates every swept axis (axes with a single label
	// are skipped — their geomean is the whole sweep's).
	Geomeans []AxisGeomean `json:"geomeans,omitempty"`
	// Wall is the sweep's host wall-clock time.
	Wall time.Duration `json:"wall_ns"`
}

// axisLabels returns the distinct labels of an axis in grid order.
func (r *Result) axisLabels(axis string) []string {
	var labels []string
	seen := make(map[string]bool)
	for i := range r.Points {
		l := r.Points[i].Label(axis)
		if !seen[l] {
			seen[l] = true
			labels = append(labels, l)
		}
	}
	return labels
}

// Aggregate fills Geomeans for every axis that actually varies. The
// engine and the fleet coordinator call it once, after the last point
// lands; the computation is deterministic in the grid order, so two
// sweeps of the same spec aggregate byte-identically no matter which
// worker ran which point.
func (r *Result) Aggregate() {
	for _, axis := range AxisNames() {
		labels := r.axisLabels(axis)
		if len(labels) < 2 {
			continue
		}
		for _, label := range labels {
			var llc, meta, ipc, ed2 []float64
			n := 0
			for i := range r.Points {
				p := &r.Points[i]
				if p.Result == nil || p.Label(axis) != label {
					continue
				}
				n++
				llc = append(llc, p.Result.LLCMPKI)
				meta = append(meta, p.Result.MetaMPKI)
				ipc = append(ipc, p.Result.IPC)
				ed2 = append(ed2, p.Result.ED2)
			}
			r.Geomeans = append(r.Geomeans, AxisGeomean{
				Axis: axis, Label: label, Points: n,
				LLCMPKI:  sim.GeomeanPositive(llc),
				MetaMPKI: sim.GeomeanPositive(meta),
				IPC:      sim.GeomeanPositive(ipc),
				ED2:      sim.GeomeanPositive(ed2),
			})
		}
	}
}

// Pivot renders metric as a rowAxis × colAxis table: each cell is the
// geometric mean (GeomeanPositive) of the metric over the points at
// that coordinate, "-" where no point has a result. Label order
// follows the grid.
func (r *Result) Pivot(rowAxis, colAxis, metric string) (string, error) {
	if _, err := Metric(metric, &sim.Result{}); err != nil {
		return "", err
	}
	rows := r.axisLabels(rowAxis)
	cols := r.axisLabels(colAxis)
	if len(rows) == 0 || len(cols) == 0 {
		return "", fmt.Errorf("sweep: empty pivot (%s × %s)", rowAxis, colAxis)
	}
	var t stats.Table
	header := append([]string{rowAxis + `\` + colAxis}, cols...)
	t.AddRow(header...)
	for _, row := range rows {
		cells := []string{row}
		for _, col := range cols {
			var vals []float64
			for i := range r.Points {
				p := &r.Points[i]
				if p.Result == nil || p.Label(rowAxis) != row || p.Label(colAxis) != col {
					continue
				}
				v, _ := Metric(metric, p.Result)
				vals = append(vals, v)
			}
			if len(vals) == 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.3f", sim.GeomeanPositive(vals)))
			}
		}
		t.AddRow(cells...)
	}
	return fmt.Sprintf("%s geomeans, %s × %s:\n%s", metric, rowAxis, colAxis, t.String()), nil
}

// variedAxes lists the axes with more than one label, in grid order.
func (r *Result) variedAxes() []string {
	var varied []string
	for _, axis := range AxisNames() {
		if len(r.axisLabels(axis)) > 1 {
			varied = append(varied, axis)
		}
	}
	return varied
}

// Render prints the sweep summary: the run counters, a pivot of the
// first two varied axes (benchmark rows when present), and the
// per-axis geomean table. A sweep that varies fewer than two axes
// falls back to a flat per-point listing.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d points (%d deduped) in %s\n",
		r.Total, r.Deduped, r.Wall.Round(time.Millisecond))
	varied := r.variedAxes()
	if len(varied) >= 2 {
		for _, metric := range []string{"meta_mpki", "ipc"} {
			if pv, err := r.Pivot(varied[0], varied[1], metric); err == nil {
				b.WriteString("\n" + pv)
			}
		}
	} else {
		var t stats.Table
		t.AddRow("point", "LLC MPKI", "meta MPKI", "IPC", "ED2")
		for i := range r.Points {
			p := &r.Points[i]
			if p.Result == nil {
				t.AddRow(p.String(), "-", "-", "-", "-")
				continue
			}
			t.AddRow(p.String(),
				fmt.Sprintf("%.2f", p.Result.LLCMPKI),
				fmt.Sprintf("%.2f", p.Result.MetaMPKI),
				fmt.Sprintf("%.3f", p.Result.IPC),
				fmt.Sprintf("%.3g", p.Result.ED2))
		}
		b.WriteString("\n" + t.String())
	}
	if len(r.Geomeans) > 0 {
		var t stats.Table
		t.AddRow("axis", "label", "points", "LLC MPKI", "meta MPKI", "IPC", "ED2")
		for _, g := range r.Geomeans {
			t.AddRow(g.Axis, g.Label, fmt.Sprintf("%d", g.Points),
				fmt.Sprintf("%.2f", g.LLCMPKI),
				fmt.Sprintf("%.2f", g.MetaMPKI),
				fmt.Sprintf("%.3f", g.IPC),
				fmt.Sprintf("%.3g", g.ED2))
		}
		b.WriteString("\nper-axis geomeans:\n" + t.String())
	}
	return b.String()
}
