package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
)

const testInstructions = 20_000

// fig1Spec is the miniature Figure 1 grid the tests sweep: two
// benchmarks × two metadata sizes × two content policies, secure.
func fig1Spec() Spec {
	return Spec{
		Base: sim.Config{
			Instructions: testInstructions,
			Secure:       true,
			Speculation:  true,
		},
		Axes: Axes{
			Benchmarks: []string{"canneal", "libquantum"},
			Meta:       IntAxis{Points: []int{16 << 10, 64 << 10}},
			Contents:   []string{"counters", "all"},
		},
	}
}

func TestExpandDeterministic(t *testing.T) {
	spec := fig1Spec()
	a, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 {
		t.Fatalf("got %d points, want 8", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Expand calls disagree")
	}
	// Grid order: benchmark outermost, then meta, then content.
	want := []struct {
		bench   string
		meta    int
		content string
	}{
		{"canneal", 16 << 10, "counters"},
		{"canneal", 16 << 10, "all"},
		{"canneal", 64 << 10, "counters"},
		{"canneal", 64 << 10, "all"},
		{"libquantum", 16 << 10, "counters"},
		{"libquantum", 16 << 10, "all"},
		{"libquantum", 64 << 10, "counters"},
		{"libquantum", 64 << 10, "all"},
	}
	for i, w := range want {
		p := a[i]
		if p.Index != i || p.Benchmark != w.bench || p.MetaBytes != w.meta || p.Content != w.content {
			t.Errorf("point %d: got {%d %s %d %s}, want {%d %s %d %s}",
				i, p.Index, p.Benchmark, p.MetaBytes, p.Content, i, w.bench, w.meta, w.content)
		}
		if p.Config.Benchmark != w.bench || p.Config.Meta == nil || p.Config.Meta.Size != w.meta {
			t.Errorf("point %d: config not materialized from coordinates", i)
		}
	}
}

func TestIntAxisExpand(t *testing.T) {
	pts, err := IntAxis{Min: 16 << 10, Max: 2 << 20}.expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("doubling range: got %v, want %v", pts, want)
	}
	pts, err = IntAxis{Min: 1 << 10, Max: 64 << 10, Factor: 4}.expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}) {
		t.Fatalf("factor-4 range: got %v", pts)
	}
	for name, axis := range map[string]IntAxis{
		"points+range":   {Points: []int{1024}, Min: 1024, Max: 2048},
		"negative point": {Points: []int{-1}},
		"inverted range": {Min: 2048, Max: 1024},
		"factor 1":       {Min: 1024, Max: 2048, Factor: 1},
	} {
		if _, err := axis.expand(); err == nil {
			t.Errorf("%s: expand accepted invalid axis", name)
		}
	}
}

func TestExpandRejects(t *testing.T) {
	base := sim.Config{Instructions: testInstructions, Secure: true}
	cases := map[string]Spec{
		"no benchmark":     {Base: base},
		"unknown bench":    {Base: base, Axes: Axes{Benchmarks: []string{"nope"}}},
		"content w/o meta": {Base: base, Axes: Axes{Benchmarks: []string{"canneal"}, Contents: []string{"all"}}},
		"policy w/o meta":  {Base: base, Axes: Axes{Benchmarks: []string{"canneal"}, Policies: []string{"lru"}}},
		"unknown policy": {Base: base, Axes: Axes{Benchmarks: []string{"canneal"},
			Meta: IntAxis{Points: []int{64 << 10}}, Policies: []string{"mru"}}},
		"bad partition": {Base: base, Axes: Axes{Benchmarks: []string{"canneal"},
			Meta: IntAxis{Points: []int{64 << 10}}, Partitions: []string{"static:0"}}},
		"bad content": {Base: base, Axes: Axes{Benchmarks: []string{"canneal"},
			Meta: IntAxis{Points: []int{64 << 10}}, Contents: []string{"everything"}}},
		"zero llc": {Base: base, Axes: Axes{Benchmarks: []string{"canneal"},
			LLC: IntAxis{Points: []int{0}}}},
		"stateful base": {Base: sim.Config{Instructions: testInstructions, Benchmark: "canneal",
			Meta: &metacache.Config{Size: 64 << 10, Ways: 8, Policy: policy.NewLRU()}}},
	}
	for name, spec := range cases {
		if _, err := spec.Expand(); err == nil {
			t.Errorf("%s: Expand accepted invalid spec", name)
		}
	}
}

func TestEngineDedupe(t *testing.T) {
	pool := jobs.New(4, 16)
	defer pool.Shutdown(context.Background())
	cache := results.New(64)

	spec := fig1Spec()
	eng := &Engine{Pool: pool, Cache: MemCache{C: cache}}
	first, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Done != first.Total || first.Deduped != 0 {
		t.Fatalf("first run: done %d/%d, deduped %d", first.Done, first.Total, first.Deduped)
	}

	second, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Deduped != second.Total {
		t.Fatalf("second run deduped %d of %d points, want all", second.Deduped, second.Total)
	}
	for i := range second.Points {
		if !second.Points[i].Cached {
			t.Fatalf("point %d not marked cached on second run", i)
		}
		if second.Points[i].Result != first.Points[i].Result {
			t.Fatalf("point %d: cache returned a different result instance", i)
		}
	}

	// NoCache skips lookups but still counts and stores.
	spec.NoCache = true
	third, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if third.Deduped != 0 {
		t.Fatalf("NoCache run deduped %d points, want 0", third.Deduped)
	}
}

func TestEngineFailFast(t *testing.T) {
	pool := jobs.New(2, 8)
	defer pool.Shutdown(context.Background())

	// A 100-byte metadata cache fails construction inside the
	// simulator (not divisible into 8-way 64B sets), deterministically.
	spec := fig1Spec()
	spec.Axes.Meta = IntAxis{Points: []int{16 << 10, 100}}
	eng := &Engine{Pool: pool}
	_, err := eng.Run(context.Background(), spec)
	if err == nil {
		t.Fatal("sweep with an unbuildable point succeeded")
	}
	if !strings.Contains(err.Error(), "sweep: point") {
		t.Fatalf("error %q does not name the failing point", err)
	}
	if strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancellation victim masked the root cause: %v", err)
	}
}

func TestEngineCancelMidSweep(t *testing.T) {
	pool := jobs.New(2, 8)
	defer pool.Shutdown(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := &Engine{
		Pool:    pool,
		OnPoint: func(PointResult) { cancel() }, // cancel after the first completion
	}
	_, err := eng.Run(ctx, fig1Spec())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestSweepMatchesDirectRun checks the acceptance criterion behind the
// fig1 refactor: a sweep-produced point is byte-identical (host timing
// zeroed) to running its materialized config directly.
func TestSweepMatchesDirectRun(t *testing.T) {
	spec := fig1Spec()
	res, err := Run(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	points, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 5} { // one point per benchmark
		direct, err := sim.Run(points[i].Config)
		if err != nil {
			t.Fatal(err)
		}
		a, b := *res.Points[i].Result, *direct
		a.Timing, b.Timing = sim.PhaseTiming{}, sim.PhaseTiming{}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("point %d (%s): sweep result differs from direct run\nsweep:  %s\ndirect: %s",
				i, points[i], aj, bj)
		}
	}
}

func TestResultRenderAndPivot(t *testing.T) {
	res, err := Run(context.Background(), fig1Spec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"sweep: 8 points", "meta_mpki geomeans", "per-axis geomeans", "libquantum"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	if _, err := res.Pivot(AxisBenchmark, AxisMeta, "ipc"); err != nil {
		t.Errorf("Pivot(benchmark, meta, ipc): %v", err)
	}
	if _, err := res.Pivot(AxisBenchmark, AxisMeta, "bogus"); err == nil {
		t.Error("Pivot accepted an unknown metric")
	}
	if len(res.Geomeans) == 0 {
		t.Error("no per-axis geomeans aggregated")
	}
}

func TestPolicyPartitionConstructors(t *testing.T) {
	for _, name := range PolicyNames() {
		if _, err := NewPolicy(name); err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
		}
	}
	if p, err := NewPolicy(""); err != nil || p != nil {
		t.Errorf("NewPolicy(\"\") = %v, %v; want nil, nil", p, err)
	}
	for _, name := range []string{"none", "static:2", "dynamic", ""} {
		if _, err := NewPartition(name); err != nil {
			t.Errorf("NewPartition(%q): %v", name, err)
		}
	}
	for _, name := range []string{"static:x", "static:-1", "banana"} {
		if _, err := NewPartition(name); err == nil {
			t.Errorf("NewPartition(%q) accepted", name)
		}
	}
}
