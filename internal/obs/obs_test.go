package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, FormatJSON, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", "v")
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("json format did not emit JSON: %v\n%s", err, buf.String())
	}
	if obj["msg"] != "hello" || obj["k"] != "v" {
		t.Errorf("bad json record: %v", obj)
	}

	buf.Reset()
	l, err = NewLogger(&buf, FormatText, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Errorf("bad text record: %s", buf.String())
	}

	if _, err := NewLogger(&buf, "yaml", false); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestVerboseEnablesDebug(t *testing.T) {
	var buf bytes.Buffer
	quiet, _ := NewLogger(&buf, FormatText, false)
	if quiet.Enabled(context.Background(), slog.LevelDebug) {
		t.Error("non-verbose logger has debug enabled")
	}
	loud, _ := NewLogger(&buf, FormatText, true)
	if !loud.Enabled(context.Background(), slog.LevelDebug) {
		t.Error("verbose logger has debug disabled")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nop {
		t.Error("empty context should yield the nop logger")
	}
	if Into(ctx, nil) != ctx {
		t.Error("Into(nil) should return ctx unchanged")
	}
	if With(ctx, "k", "v") != ctx {
		t.Error("With on a logger-less context should be a no-op")
	}

	var buf bytes.Buffer
	l, _ := NewLogger(&buf, FormatJSON, false)
	ctx = Into(ctx, l)
	ctx = With(ctx, "run_id", "r-1")
	From(ctx).Info("scoped")
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["run_id"] != "r-1" {
		t.Errorf("scoped attr lost: %v", obj)
	}
}

func TestSpanLogsAtDebug(t *testing.T) {
	var buf bytes.Buffer
	l, _ := NewLogger(&buf, FormatJSON, true)
	ctx := Into(context.Background(), l)
	done := Span(ctx, "warmup", "benchmark", "fft")
	time.Sleep(time.Millisecond)
	if d := done(); d <= 0 {
		t.Errorf("span elapsed %v", d)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("no span event: %v\n%s", err, buf.String())
	}
	if obj["span"] != "warmup" || obj["benchmark"] != "fft" {
		t.Errorf("span attrs wrong: %v", obj)
	}

	// Below Debug, the span still measures but emits nothing.
	buf.Reset()
	quiet, _ := NewLogger(&buf, FormatJSON, false)
	done = Span(Into(context.Background(), quiet), "measure")
	if d := done(); d < 0 {
		t.Errorf("span elapsed %v", d)
	}
	if buf.Len() != 0 {
		t.Errorf("span logged below its level: %s", buf.String())
	}
}

func TestProgressSnapshot(t *testing.T) {
	var p Progress
	s := p.Snapshot()
	if s.Done != 0 || s.Total != 0 || s.Fraction != 0 || s.Elapsed != 0 || s.Remaining != 0 {
		t.Errorf("zero-value snapshot not zero: %+v", s)
	}

	p.Start(1000)
	p.Add(250)
	s = p.Snapshot()
	if s.Done != 250 || s.Total != 1000 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Fraction != 0.25 {
		t.Errorf("fraction %v", s.Fraction)
	}
	if s.Elapsed <= 0 {
		t.Errorf("elapsed %v", s.Elapsed)
	}
	if s.Remaining <= 0 {
		t.Errorf("remaining %v", s.Remaining)
	}

	// Overshoot clamps the fraction.
	p.Add(2000)
	if f := p.Snapshot().Fraction; f != 1 {
		t.Errorf("overshoot fraction %v", f)
	}
}

func TestEnsureTotalDoesNotOverwrite(t *testing.T) {
	var p Progress
	p.Start(5000) // coordinator publishes the batch total first
	p.EnsureTotal(100)
	if got := p.Snapshot().Total; got != 5000 {
		t.Errorf("EnsureTotal overwrote coordinator total: %d", got)
	}

	var q Progress
	q.EnsureTotal(100) // lone worker owns the total
	if got := q.Snapshot().Total; got != 100 {
		t.Errorf("EnsureTotal on fresh progress: %d", got)
	}
}

// The producer-side API must be allocation-free: the simulator ticks
// it from its hot loop.
func TestProgressProducerZeroAlloc(t *testing.T) {
	var p Progress
	p.Start(1 << 30)
	if n := testing.AllocsPerRun(1000, func() { p.Add(1 << 16) }); n != 0 {
		t.Errorf("Progress.Add allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { p.EnsureTotal(1 << 20) }); n != 0 {
		t.Errorf("Progress.EnsureTotal allocates %v per call", n)
	}
}

// Spans on a logger-less context must not allocate either — sim wraps
// every phase in one unconditionally.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() { Span(ctx, "phase")() }); n > 1 {
		// One alloc for the closure itself is tolerated; attribute
		// assembly and logging must not add more.
		t.Errorf("disabled Span allocates %v per call", n)
	}
}
