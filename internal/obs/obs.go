// Package obs is the cross-cutting observability layer: run-scoped
// structured logging (log/slog), cheap phase-timing spans, and a
// lock-free progress tracker the simulation loop can tick from its
// cancellation checkpoints.
//
// Everything is stdlib-only and designed around one invariant: when
// observability is disabled (no logger in the context, nil Progress),
// the instrumented hot paths cost a nil check and nothing else — no
// allocation, no time syscall, no atomic (docs/OBSERVABILITY.md).
//
// The package deliberately has no dependencies on the rest of the
// module, so any layer — sim, jobs, server, the binaries — can import
// it without cycles.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"
)

// ctxKey is the private context key carrying the run-scoped logger.
type ctxKey struct{}

// discard is a slog.Handler that drops everything and reports every
// level disabled, so logging through it short-circuits before
// argument processing. (slog.DiscardHandler exists from Go 1.24; this
// keeps the module buildable at its declared go 1.23.)
type discard struct{}

// Enabled always reports false, so slog skips record assembly.
func (discard) Enabled(context.Context, slog.Level) bool { return false }

// Handle drops the record.
func (discard) Handle(context.Context, slog.Record) error { return nil }

// WithAttrs returns the handler unchanged.
func (d discard) WithAttrs([]slog.Attr) slog.Handler { return d }

// WithGroup returns the handler unchanged.
func (d discard) WithGroup(string) slog.Handler { return d }

// nop is the shared disabled logger returned when a context carries
// none. One instance: From must not allocate on the disabled path.
var nop = slog.New(discard{})

// Nop returns a logger that discards everything. Its handler reports
// all levels disabled, so even Debug calls through it cost only the
// Enabled check.
func Nop() *slog.Logger { return nop }

// Log formats accepted by NewLogger (the -log-format flag values).
const (
	// FormatText selects human-readable logfmt-style output.
	FormatText = "text"
	// FormatJSON selects one JSON object per line.
	FormatJSON = "json"
)

// NewLogger builds a logger writing to w in the given format ("text"
// or "json"; empty means text). verbose lowers the level from Info to
// Debug, which is where spans and per-checkpoint detail live.
func NewLogger(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case FormatText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case FormatJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s or %s)", format, FormatText, FormatJSON)
	}
}

// Into returns a context carrying l; From recovers it downstream.
// A nil l leaves the context unchanged.
func Into(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, l)
}

// From returns the logger carried by ctx, or the shared Nop logger
// when there is none — callers never need a nil check.
func From(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxKey{}).(*slog.Logger); ok {
		return l
	}
	return nop
}

// With re-scopes the context's logger with extra attributes (run ID,
// benchmark, job ID, ...) and stores it back, so every log line below
// this point carries them. On a context with no logger it is a no-op
// returning ctx unchanged — attribute formatting is never paid for
// logs nobody will see.
func With(ctx context.Context, args ...any) context.Context {
	l, ok := ctx.Value(ctxKey{}).(*slog.Logger)
	if !ok {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, l.With(args...))
}

// Span starts a named phase and returns its closer. Call the closer
// when the phase ends: it returns the elapsed wall-clock time and, if
// the context's logger has Debug enabled, emits one "span" event with
// the duration and any extra attributes.
//
//	done := obs.Span(ctx, "warmup")
//	... phase work ...
//	elapsed := done()
//
// On a context without a logger the cost is two monotonic clock reads
// and zero allocations, so spans are safe around phases of any size.
func Span(ctx context.Context, name string, args ...any) func() time.Duration {
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		if l := From(ctx); l.Enabled(ctx, slog.LevelDebug) {
			attrs := make([]any, 0, len(args)+4)
			attrs = append(attrs, "span", name, "duration", d)
			attrs = append(attrs, args...)
			l.Log(ctx, slog.LevelDebug, "span end", attrs...)
		}
		return d
	}
}
