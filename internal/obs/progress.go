package obs

import (
	"sync/atomic"
	"time"
)

// Progress is a lock-free tracker of how far a long computation has
// come, in whatever unit the producer ticks it with (the simulator
// uses retired instructions). One goroutine — or several, as in a
// suite fan-out — calls Add from its hot loop; any number of readers
// call Snapshot concurrently.
//
// The producer-side operations are a single atomic each, and the
// tracker is meant to be ticked coarsely (the simulator ticks every
// 64Ki instructions from the checkpoints it already takes for
// cancellation), so enabling progress costs one uncontended atomic
// add per ~100µs of simulated work and disabling it costs a nil
// pointer check. Neither path allocates.
//
// The zero value is ready to use.
type Progress struct {
	done  atomic.Uint64
	total atomic.Uint64
	start atomic.Int64 // unix nanos of the first Add/Start; 0 = not started
}

// Start marks the work as begun and publishes its expected total.
// Calling it again replaces the total (a caller that refines its
// estimate) but keeps the original start time.
func (p *Progress) Start(total uint64) {
	p.total.Store(total)
	p.markStarted()
}

// EnsureTotal publishes total only if none is set yet. Workers that
// share one Progress use it so the coordinator's whole-batch total
// (set first, via Start) is not overwritten by each worker's
// per-item total.
func (p *Progress) EnsureTotal(total uint64) {
	p.total.CompareAndSwap(0, total)
	p.markStarted()
}

func (p *Progress) markStarted() {
	if p.start.Load() == 0 {
		p.start.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// Add ticks n more units done. It is the hot-path operation: one
// atomic add, no allocation, safe from many goroutines.
func (p *Progress) Add(n uint64) { p.done.Add(n) }

// Done returns the units completed so far.
func (p *Progress) Done() uint64 { return p.done.Load() }

// Snapshot is a consistent-enough point-in-time view of a Progress.
// Done can exceed Total when the producer's estimate was low; Fraction
// is clamped to 1.
type Snapshot struct {
	// Done is the units completed so far.
	Done uint64 `json:"done"`
	// Total is the expected amount of work; 0 means unknown.
	Total uint64 `json:"total"`
	// Fraction is Done/Total in [0,1]; 0 when Total is unknown.
	Fraction float64 `json:"fraction"`
	// Elapsed is the time since the first tick; 0 before work starts.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Remaining linearly extrapolates time left from Done, Total, and
	// Elapsed; 0 when any of them is unknown or the work is complete.
	Remaining time.Duration `json:"remaining_ns"`
}

// Snapshot reads the current state. Reads are independent atomics —
// a snapshot taken mid-tick can be one tick stale, never torn in a
// way that makes Done regress.
func (p *Progress) Snapshot() Snapshot {
	s := Snapshot{
		Done:  p.done.Load(),
		Total: p.total.Load(),
	}
	if start := p.start.Load(); start != 0 {
		s.Elapsed = time.Duration(time.Now().UnixNano() - start)
	}
	if s.Total > 0 {
		s.Fraction = float64(s.Done) / float64(s.Total)
		if s.Fraction > 1 {
			s.Fraction = 1
		}
		if s.Done > 0 && s.Done < s.Total && s.Elapsed > 0 {
			perUnit := float64(s.Elapsed) / float64(s.Done)
			s.Remaining = time.Duration(perUnit * float64(s.Total-s.Done))
		}
	}
	return s
}
