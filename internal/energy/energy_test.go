package energy

import (
	"math"
	"testing"
)

func TestSRAMScalesWithSize(t *testing.T) {
	small := SRAMAccessPJ(16 << 10)
	if small != SRAMPJPerBit*64*8 {
		t.Errorf("16KB access = %v", small)
	}
	if SRAMAccessPJ(8<<10) != small {
		t.Error("below-reference sizes should clamp to base")
	}
	big := SRAMAccessPJ(2 << 20)
	if big <= small {
		t.Error("2MB access should cost more than 16KB")
	}
	// sqrt scaling: 128x capacity -> ~11.3x energy.
	if ratio := big / small; math.Abs(ratio-math.Sqrt(128)) > 0.01 {
		t.Errorf("scaling ratio = %v, want ~%v", ratio, math.Sqrt(128))
	}
}

func TestDRAMFarExceedsSRAM(t *testing.T) {
	// The paper's motivation: DRAM transfers cost several hundred
	// times an SRAM access.
	if ratio := DRAMAccessPJ() / SRAMAccessPJ(16<<10); ratio < 100 {
		t.Errorf("DRAM/SRAM ratio = %v, want >> 100", ratio)
	}
}

func TestAccount(t *testing.T) {
	var a Account
	a.AddInstructions(1000)
	a.AddSRAM(16<<10, 10)
	a.AddDRAMPJ(5000)
	wantCore := float64(CorePJPerInstr * 1000)
	wantSRAM := SRAMAccessPJ(16<<10) * 10
	if a.CorePJ != wantCore || a.SRAMPJ != wantSRAM || a.DRAMPJ != 5000 {
		t.Errorf("account: %+v", a)
	}
	if a.TotalPJ() != wantCore+wantSRAM+5000 {
		t.Errorf("total = %v", a.TotalPJ())
	}
}

func TestED2(t *testing.T) {
	if got := ED2(2, 10); got != 200 {
		t.Errorf("ED2 = %v, want 200", got)
	}
	// Doubling delay quadruples ED2.
	if ED2(1, 20) != 4*ED2(1, 10) {
		t.Error("ED2 not quadratic in delay")
	}
}

func TestNormalized(t *testing.T) {
	if Normalized(10, 5) != 2 {
		t.Error("normalization wrong")
	}
	if Normalized(10, 0) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestLeakage(t *testing.T) {
	var a Account
	a.AddSRAMLeakage(1024, 1000) // 1KB for 1000 cycles
	if a.SRAMPJ != SRAMLeakagePJPerKBPerKCycle {
		t.Errorf("leakage = %v, want %v", a.SRAMPJ, SRAMLeakagePJPerKBPerKCycle)
	}
	// Leakage scales linearly in both size and time.
	var b Account
	b.AddSRAMLeakage(2048, 2000)
	if b.SRAMPJ != 4*a.SRAMPJ {
		t.Errorf("leakage scaling: %v vs %v", b.SRAMPJ, a.SRAMPJ)
	}
}
