// Package energy implements the energy and efficiency accounting MAPS
// uses for Figures 2 and 7: DRAM transfers at 150 pJ/bit, SRAM
// accesses at 0.3 pJ/bit with a CACTI-style capacity scaling term, a
// fixed per-instruction core energy, and the ED² efficiency metric
// normalized against an insecure baseline.
package energy

import "math"

// Calibration constants from the paper's sources: Malladi et al. for
// DRAM, CACTI for SRAM.
const (
	// DRAMPJPerBit is the off-chip transfer energy.
	DRAMPJPerBit = 150
	// SRAMPJPerBit is the on-chip array access energy for a small
	// (16 KB) array.
	SRAMPJPerBit = 0.3
	// CorePJPerInstr approximates non-memory core energy per
	// instruction; it only shifts both sides of normalized
	// comparisons.
	CorePJPerInstr = 100
	// SRAMLeakagePJPerKBPerKCycle is static power: picojoules leaked
	// per KB of SRAM per thousand cycles at 3 GHz, in the range CACTI
	// reports for 32 nm arrays. Leakage is what makes oversized
	// caches lose ED² even when extra capacity is harmless.
	SRAMLeakagePJPerKBPerKCycle = 0.5
	// refSRAMBytes anchors the capacity scaling of SRAM energy.
	refSRAMBytes = 16 << 10
)

// SRAMAccessPJ returns the energy of one 64 B access to an SRAM array
// of the given capacity. Energy grows roughly with the square root of
// capacity (longer word/bit lines), matching CACTI's trend.
func SRAMAccessPJ(sizeBytes int) float64 {
	base := SRAMPJPerBit * 64 * 8
	if sizeBytes <= refSRAMBytes {
		return base
	}
	return base * math.Sqrt(float64(sizeBytes)/float64(refSRAMBytes))
}

// DRAMAccessPJ returns the transfer energy of one 64 B block.
func DRAMAccessPJ() float64 { return DRAMPJPerBit * 64 * 8 }

// Account accumulates the energy of one simulation.
type Account struct {
	CorePJ float64
	SRAMPJ float64
	DRAMPJ float64
}

// AddInstructions charges core energy.
func (a *Account) AddInstructions(n uint64) {
	a.CorePJ += CorePJPerInstr * float64(n)
}

// AddSRAM charges n accesses to an SRAM array of the given size.
func (a *Account) AddSRAM(sizeBytes int, n uint64) {
	a.SRAMPJ += SRAMAccessPJ(sizeBytes) * float64(n)
}

// AddSRAMLeakage charges static power for an SRAM array held powered
// for the given number of cycles.
func (a *Account) AddSRAMLeakage(sizeBytes int, cycles uint64) {
	a.SRAMPJ += SRAMLeakagePJPerKBPerKCycle * float64(sizeBytes) / 1024 * float64(cycles) / 1000
}

// AddDRAMPJ charges energy already computed by the DRAM model.
func (a *Account) AddDRAMPJ(pj float64) { a.DRAMPJ += pj }

// TotalPJ is the summed energy.
func (a *Account) TotalPJ() float64 { return a.CorePJ + a.SRAMPJ + a.DRAMPJ }

// ED2 computes the energy-delay-squared product for an energy in pJ
// and a delay in cycles. Units are arbitrary but consistent, which is
// all the normalized comparisons need.
func ED2(energyPJ float64, delayCycles uint64) float64 {
	d := float64(delayCycles)
	return energyPJ * d * d
}

// Normalized returns value/baseline, guarding the degenerate zero
// baseline.
func Normalized(value, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return value / baseline
}
