package workload

import (
	"strings"
	"testing"
)

// A stream with a hot region but no sampling interval used to divide
// by zero on the first hot reference in Next; newStream now rejects
// the combination at construction.
func TestNewStreamRejectsHotRegionWithoutInterval(t *testing.T) {
	for _, hotEvery := range []int{0, -1} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("hotEvery=%d: newStream accepted a hot region without an interval", hotEvery)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "hotEvery") {
					t.Errorf("hotEvery=%d: unexpected panic %v", hotEvery, r)
				}
			}()
			newStream(base{name: "bad", footprint: 1 << 20, meanGap: 2}, 64<<10, hotEvery)
		}()
	}
}

// The valid corners keep working: no hot region at all (hotEvery
// irrelevant) and a hot region with a positive interval, which must
// emit hot references without faulting.
func TestNewStreamValidCorners(t *testing.T) {
	plain := newStream(base{name: "plain", footprint: 1 << 20, meanGap: 2}, 0, 0)
	plain.Reset(1)
	hot := newStream(base{name: "hot", footprint: 1 << 20, meanGap: 2}, 64<<10, 3)
	hot.Reset(1)
	var a Access
	for i := 0; i < 1000; i++ {
		plain.Next(&a)
		hot.Next(&a)
		if a.Addr >= hot.footprint {
			t.Fatalf("access %d escapes the footprint: %#x", i, a.Addr)
		}
	}
}
