package workload

import (
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Errorf("expected 16 benchmarks, have %d: %v", len(names), names)
	}
	for _, n := range names {
		g, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if g.Name() != n {
			t.Errorf("generator %q reports name %q", n, g.Name())
		}
		if g.Footprint() == 0 || g.Footprint()%4096 != 0 {
			t.Errorf("%s footprint %d not page aligned", n, g.Footprint())
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := New("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew("nonesuch")
}

func TestSubsetsAreRegistered(t *testing.T) {
	for _, n := range append(MemoryIntensive(), Representative()...) {
		if _, err := New(n); err != nil {
			t.Errorf("subset names unknown benchmark %q", n)
		}
	}
}

func TestAccessesStayInFootprint(t *testing.T) {
	for _, n := range Names() {
		g := MustNew(n)
		var a Access
		for i := 0; i < 200000; i++ {
			g.Next(&a)
			if a.Addr >= g.Footprint() {
				t.Fatalf("%s: access %#x beyond footprint %#x", n, a.Addr, g.Footprint())
			}
			if a.Gap < 1 {
				t.Fatalf("%s: gap %d < 1", n, a.Gap)
			}
		}
	}
}

func TestDeterministicAfterReset(t *testing.T) {
	for _, n := range Names() {
		g := MustNew(n)
		first := make([]Access, 1000)
		for i := range first {
			g.Next(&first[i])
		}
		g.Reset(1)
		var a Access
		for i := range first {
			g.Next(&a)
			if a != first[i] {
				t.Fatalf("%s: access %d differs after reset: %+v vs %+v", n, i, a, first[i])
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	g := MustNew("canneal")
	g.Reset(1)
	var a1, a2 Access
	seq1 := make([]uint64, 100)
	for i := range seq1 {
		g.Next(&a1)
		seq1[i] = a1.Addr
	}
	g.Reset(2)
	same := 0
	for i := range seq1 {
		g.Next(&a2)
		if a2.Addr == seq1[i] {
			same++
		}
	}
	if same > 50 {
		t.Errorf("seeds 1 and 2 share %d/100 addresses", same)
	}
}

func TestWriteFractions(t *testing.T) {
	// Benchmarks must roughly honor their configured write mix; fft
	// writes much more than streamcluster.
	frac := func(name string, n int) float64 {
		g := MustNew(name)
		var a Access
		w := 0
		for i := 0; i < n; i++ {
			g.Next(&a)
			if a.Write {
				w++
			}
		}
		return float64(w) / float64(n)
	}
	if f := frac("fft", 100000); f < 0.15 || f > 0.25 {
		t.Errorf("fft write fraction = %v, want ~0.20", f)
	}
	if f := frac("streamcluster", 100000); f > 0.05 {
		t.Errorf("streamcluster write fraction = %v, want ~0.02", f)
	}
	if f := frac("lbm", 100000); f < 0.35 {
		t.Errorf("lbm write fraction = %v, want ~0.45", f)
	}
}

func TestLibquantumStreams(t *testing.T) {
	g := MustNew("libquantum")
	var a Access
	g.Next(&a)
	prev := a.Addr
	sequential := 0
	const n = 10000
	for i := 0; i < n; i++ {
		g.Next(&a)
		if a.Addr == prev+8 || a.Addr == 0 {
			sequential++
		}
		prev = a.Addr
	}
	if sequential < n*99/100 {
		t.Errorf("libquantum only %d/%d sequential", sequential, n)
	}
}

func TestCannealIsScattered(t *testing.T) {
	g := MustNew("canneal")
	var a Access
	pages := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		g.Next(&a)
		pages[a.Addr/4096] = true
	}
	// Low spatial locality: thousands of distinct pages (short runs
	// of a few words between random jumps).
	if len(pages) < 2000 {
		t.Errorf("canneal touched only %d pages in 10k accesses", len(pages))
	}
}

func TestPerlbenchIsCompact(t *testing.T) {
	g := MustNew("perlbench")
	var a Access
	hot := 0
	for i := 0; i < 10000; i++ {
		g.Next(&a)
		if a.Addr < 1<<20 {
			hot++
		}
	}
	if hot < 9000 {
		t.Errorf("perlbench only %d/10000 accesses in hot region", hot)
	}
}

func TestBarnesSkewedReuse(t *testing.T) {
	// Tree walks touch low-level (small-address) nodes far more
	// often than leaves.
	g := MustNew("barnes")
	var a Access
	counts := make(map[uint64]int)
	for i := 0; i < 50000; i++ {
		g.Next(&a)
		counts[a.Addr]++
	}
	// The most frequent block must be touched far more than the
	// median.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50 {
		t.Errorf("barnes hottest node touched only %d times", max)
	}
}

func TestStencilSpatialLocality(t *testing.T) {
	g := MustNew("leslie3d")
	var a Access
	g.Next(&a)
	prev := a.Addr
	near := 0
	const n = 30000
	for i := 0; i < n; i++ {
		g.Next(&a)
		d := int64(a.Addr) - int64(prev)
		if d < 0 {
			d = -d
		}
		if d <= 256*8*2 { // within a couple of grid rows
			near++
		}
		prev = a.Addr
	}
	// The centre/+y/+z triplet makes one of every three transitions
	// near (centre -> +y); the plane jumps are far by design.
	if near < n/4 {
		t.Errorf("leslie3d only %d/%d near-neighbour accesses", near, n)
	}
}

func TestGapMeansDiffer(t *testing.T) {
	mean := func(name string) float64 {
		g := MustNew(name)
		var a Access
		var sum uint64
		const n = 50000
		for i := 0; i < n; i++ {
			g.Next(&a)
			sum += uint64(a.Gap)
		}
		return float64(sum) / n
	}
	if m := mean("mcf"); m < 1.5 || m > 2.5 {
		t.Errorf("mcf mean gap = %v, want ~2", m)
	}
	if m := mean("perlbench"); m < 4 || m > 6 {
		t.Errorf("perlbench mean gap = %v, want ~5", m)
	}
}
