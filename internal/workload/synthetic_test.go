package workload

import (
	"testing"
)

func validSynth() SyntheticConfig {
	return SyntheticConfig{
		Name:           "custom",
		FootprintBytes: 8 << 20,
		MeanGap:        3,
		WriteFraction:  0.2,
		SequentialRun:  4,
	}
}

func TestSyntheticValidation(t *testing.T) {
	mutations := map[string]func(*SyntheticConfig){
		"no name":       func(c *SyntheticConfig) { c.Name = "" },
		"zero fp":       func(c *SyntheticConfig) { c.FootprintBytes = 0 },
		"unaligned fp":  func(c *SyntheticConfig) { c.FootprintBytes = 100 },
		"bad gap":       func(c *SyntheticConfig) { c.MeanGap = 0 },
		"bad writes":    func(c *SyntheticConfig) { c.WriteFraction = 1.5 },
		"bad hot frac":  func(c *SyntheticConfig) { c.HotFraction = -1 },
		"hot too big":   func(c *SyntheticConfig) { c.HotBytes = 16 << 20 },
		"hot unaligned": func(c *SyntheticConfig) { c.HotBytes = 100 },
		"bad run":       func(c *SyntheticConfig) { c.SequentialRun = 0 },
	}
	for name, mutate := range mutations {
		cfg := validSynth()
		mutate(&cfg)
		if _, err := NewSynthetic(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewSynthetic(validSynth()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestSyntheticBoundsAndDeterminism(t *testing.T) {
	g, err := NewSynthetic(validSynth())
	if err != nil {
		t.Fatal(err)
	}
	var a Access
	first := make([]Access, 500)
	for i := range first {
		g.Next(&first[i])
		if first[i].Addr >= g.Footprint() {
			t.Fatalf("access %#x out of bounds", first[i].Addr)
		}
	}
	g.Reset(1)
	for i := range first {
		g.Next(&a)
		if a != first[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestSyntheticHotRegion(t *testing.T) {
	cfg := validSynth()
	cfg.HotBytes = 1 << 20
	cfg.HotFraction = 0.9
	cfg.SequentialRun = 1
	g, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a Access
	hot := 0
	for i := 0; i < 10000; i++ {
		g.Next(&a)
		if a.Addr < cfg.HotBytes {
			hot++
		}
	}
	if hot < 8000 {
		t.Errorf("only %d/10000 accesses hot, want ~9000", hot)
	}
}

func TestSyntheticStream(t *testing.T) {
	cfg := validSynth()
	cfg.Stream = true
	cfg.SequentialRun = 1 << 20 // effectively endless runs
	g, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a Access
	g.Next(&a)
	prev := a.Addr
	for i := 0; i < 1000; i++ {
		g.Next(&a)
		if a.Addr != prev+8 && a.Addr != 0 {
			t.Fatalf("stream broke sequence at %d: %#x after %#x", i, a.Addr, prev)
		}
		prev = a.Addr
	}
}
