package workload_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
)

// writeReplayFile records n synthetic records into a streaming trace.
func writeReplayFile(t *testing.T, n int, gz bool) (string, []trace.Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "w.mtrace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, trace.StreamHeader{Name: "recorded", Footprint: 1 << 16}, gz)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			Addr:  uint64(i%1024) * 64,
			Write: i%4 == 0,
			Gap:   uint32(i%9) + 1,
		}
		if err := w.Write(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, recs
}

// Replay must surface the recorded stream verbatim, wrap around at
// end-of-trace, and replay identically across Resets (the seed is
// irrelevant by design).
func TestTraceReplayRoundTripAndWrap(t *testing.T) {
	for _, gz := range []bool{false, true} {
		path, recs := writeReplayFile(t, 10, gz)
		g, err := workload.NewTraceReplay(path)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != "recorded" || g.Footprint() != 1<<16 {
			t.Fatalf("header lost: name=%q footprint=%d", g.Name(), g.Footprint())
		}
		var a workload.Access
		for i := 0; i < 25; i++ { // wraps twice
			g.Next(&a)
			want := recs[i%len(recs)]
			if a.Addr != want.Addr || a.Write != want.Write || a.Gap != want.Gap {
				t.Fatalf("gz=%v access %d = %+v, want %+v", gz, i, a, want)
			}
		}
		g.Reset(99)
		g.Next(&a)
		if a.Addr != recs[0].Addr || a.Write != recs[0].Write || a.Gap != recs[0].Gap {
			t.Fatalf("gz=%v Reset did not rewind to record 0: %+v", gz, a)
		}
	}
}

func TestTraceReplayRejectsBadInputs(t *testing.T) {
	if _, err := workload.NewTraceReplay(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}

	// A headerless (legacy-format) trace can't size the address space.
	legacy := filepath.Join(t.TempDir(), "legacy.trace")
	tr := &trace.Trace{}
	tr.Append(trace.Access{Addr: 64})
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := workload.NewTraceReplay(legacy); err == nil {
		t.Error("headerless trace accepted for replay")
	}

	// An empty (zero-record) trace has nothing to replay.
	empty, _ := writeReplayFile(t, 0, false)
	if _, err := workload.NewTraceReplay(empty); err == nil {
		t.Error("empty trace accepted for replay")
	}
}
