package workload

import (
	"fmt"
	"io"
	"os"

	"github.com/maps-sim/mapsim/internal/trace"
)

// traceReplay streams a recorded trace file back through the
// Generator interface, reopening the file on Reset and wrapping
// around at end-of-stream so the simulator can draw more accesses
// than the trace holds. It reads through the chunked trace.Reader,
// so replay memory stays O(chunk) however large the file is.
type traceReplay struct {
	path      string
	name      string
	footprint uint64
	f         *os.File
	r         *trace.Reader
	emitted   uint64 // records emitted since the last (re)open
}

// NewTraceReplay opens a streaming trace (recorded with `mapstrace
// record-workload`) for replay as a workload generator. The file must
// carry a workload header — name, footprint — and at least one
// record. The generator ignores the Reset seed (a trace is already a
// fixed sequence) and wraps around at end-of-trace. I/O failure after
// open (a truncated or vanished file mid-run) panics with the file
// position, since Generator.Next has no error path; the daemon's job
// pool isolates such panics to the submitting job.
func NewTraceReplay(path string) (Generator, error) {
	g := &traceReplay{path: path}
	if err := g.open(); err != nil {
		return nil, err
	}
	hdr := g.r.Header()
	if hdr.Name == "" || hdr.Footprint == 0 {
		g.f.Close()
		return nil, fmt.Errorf("workload: %s is not a workload trace (no name/footprint header; record one with `mapstrace record-workload`)", path)
	}
	var rec trace.Record
	if err := g.r.Next(&rec); err != nil {
		g.f.Close()
		if err == io.EOF {
			return nil, fmt.Errorf("workload: trace %s holds no records", path)
		}
		return nil, fmt.Errorf("workload: reading %s: %w", path, err)
	}
	g.name = hdr.Name
	g.footprint = hdr.Footprint
	// Rewind so the first Next sees the first record.
	if err := g.open(); err != nil {
		return nil, err
	}
	return g, nil
}

// open (re)opens the file and positions a fresh reader at record 0.
func (g *traceReplay) open() error {
	if g.f != nil {
		g.f.Close()
		g.f, g.r = nil, nil
	}
	f, err := os.Open(g.path)
	if err != nil {
		return fmt.Errorf("workload: opening trace: %w", err)
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("workload: reading trace %s: %w", g.path, err)
	}
	g.f, g.r, g.emitted = f, r, 0
	return nil
}

// Name implements Generator.
func (g *traceReplay) Name() string { return g.name }

// Footprint implements Generator.
func (g *traceReplay) Footprint() uint64 { return g.footprint }

// Reset implements Generator. The seed is ignored: the trace is the
// stream.
func (g *traceReplay) Reset(int64) {
	if err := g.open(); err != nil {
		panic(fmt.Sprintf("workload: trace replay reset: %v", err))
	}
}

// Next implements Generator, wrapping to record 0 at end-of-trace.
func (g *traceReplay) Next(a *Access) {
	var rec trace.Record
	err := g.r.Next(&rec)
	if err == io.EOF {
		if err := g.open(); err != nil {
			panic(fmt.Sprintf("workload: trace replay rewind: %v", err))
		}
		err = g.r.Next(&rec)
	}
	if err != nil {
		panic(fmt.Sprintf("workload: trace replay %s after %d records: %v", g.path, g.emitted, err))
	}
	g.emitted++
	a.Addr = rec.Addr
	a.Write = rec.Write
	a.Gap = rec.Gap
	if a.Gap < 1 {
		a.Gap = 1
	}
}
