package workload

import (
	"math"
	"testing"
)

// TestUmodExact verifies the magic-multiplier reduction agrees with
// the hardware remainder for every divisor shape the generators use:
// powers of two, small odd values, block counts, and worst-case
// divisors near the top of the magic range. Exactness is what keeps
// the random streams (and the golden numbers) bit-identical after the
// divide removal.
func TestUmodExact(t *testing.T) {
	divisors := []uint64{
		1, 2, 3, 4, 5, 6, 7, 9, 11, 15, 16, 31, 63, 64, 100, 127,
		1 << 10, (4 << 20) / 64, (96 << 20) / 64, (96 << 20) - (2 << 20),
		(1 << 32) - 1, (1 << 32) + 1, (1 << 45) + 12345, math.MaxUint64 / 3,
	}
	xs := []uint64{
		0, 1, 2, 3, 63, 64, 65, 1<<32 - 1, 1 << 32, 1<<63 - 1, 1 << 63,
		math.MaxUint64, math.MaxUint64 - 1,
	}
	var r rng
	r.seed(12345)
	for i := 0; i < 1000; i++ {
		xs = append(xs, r.next())
	}
	for _, d := range divisors {
		u := newUmod(d)
		for _, x := range xs {
			if got, want := u.rem(x), x%d; got != want {
				t.Fatalf("umod(%d).rem(%d) = %d, want %d", d, x, got, want)
			}
		}
		// The divisor's own neighbourhood exercises the q rounding.
		for _, x := range []uint64{d - 1, d, d + 1, 2*d - 1, 2 * d, 3*d + 1} {
			if got, want := u.rem(x), x%d; got != want {
				t.Fatalf("umod(%d).rem(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
}

func TestUmodZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newUmod(0) did not panic")
		}
	}()
	newUmod(0)
}
