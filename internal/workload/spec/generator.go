package spec

import (
	"fmt"
	"math"

	"github.com/maps-sim/mapsim/internal/workload"
)

// The generator composes one synthetic sub-generator per client and
// merges their streams on a shared instruction-time axis: each client
// keeps a "next arrival" clock advanced by draws from its arrival
// process, and every Next emits the earliest client's access (ties
// break on declaration order), stamping the instruction gap since the
// previous emission. Everything is integer clocks plus a per-client
// SplitMix64 stream, so the merged sequence is a pure function of
// (spec, seed): bit-identical across runs, machines, and — because
// the whole composite implements workload.Cloner — across epoch-
// parallel shard settings.

// srng is a SplitMix64 stream, the same generator family the workload
// package uses, duplicated here because that one is unexported.
type srng struct{ s uint64 }

func (r *srng) seed(s uint64) { r.s = s }

func (r *srng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// f64 returns a uniform float in (0, 1]: never 0, so log(u) is finite.
func (r *srng) f64() float64 {
	return (float64(r.next()>>11) + 1) / (1 << 53)
}

// hashLabel is FNV-1a, mixing a client's identity into its seed so
// every client draws an independent stream from one run seed.
func hashLabel(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// arrival process kinds, resolved from Arrival.Process at build time.
const (
	procPoisson = iota
	procGamma
	procFixed
)

// arrival draws a client's integer inter-arrival gaps.
type arrival struct {
	proc    int
	mean    float64 // mean inter-arrival gap in instructions
	k       float64 // gamma shape
	theta   float64 // gamma scale
	seedMix uint64
	rng     srng
}

func newArrival(a Arrival, mean float64, seedMix uint64) arrival {
	ar := arrival{mean: mean, seedMix: seedMix}
	switch a.Process {
	case ProcessGamma:
		ar.proc = procGamma
		// CV fixes the shape: k = 1/cv², θ = mean·cv².
		ar.k = 1 / (a.CV * a.CV)
		ar.theta = mean * a.CV * a.CV
	case ProcessFixed:
		ar.proc = procFixed
	default:
		ar.proc = procPoisson
	}
	return ar
}

func (ar *arrival) reset(seed int64) { ar.rng.seed(uint64(seed) ^ ar.seedMix) }

// draw samples the next inter-arrival gap, clamped to at least one
// instruction so client clocks always advance.
func (ar *arrival) draw() uint64 {
	var g float64
	switch ar.proc {
	case procFixed:
		g = ar.mean
	case procGamma:
		g = ar.gamma()
	default:
		g = -ar.mean * math.Log(ar.rng.f64())
	}
	if g < 1 {
		return 1
	}
	if g > 1e12 {
		return 1 << 40
	}
	return uint64(g + 0.5)
}

// gamma samples Gamma(k, θ) via Marsaglia–Tsang squeeze, boosting
// k < 1 through the Gamma(k+1) identity.
func (ar *arrival) gamma() float64 {
	k := ar.k
	boost := 1.0
	if k < 1 {
		boost = math.Pow(ar.rng.f64(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := ar.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := ar.rng.f64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * ar.theta * boost
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * ar.theta * boost
		}
	}
}

// normal samples a standard normal via Marsaglia's polar method.
func (ar *arrival) normal() float64 {
	for {
		u := 2*ar.rng.f64() - 1
		v := 2*ar.rng.f64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// clientState is one composed client at runtime.
type clientState struct {
	gen    workload.Generator
	offset uint64 // base of the client's address region
	arr    arrival
	next   uint64 // instruction time of the client's next access
}

// multiClient is the composed generator.
type multiClient struct {
	name      string
	footprint uint64
	clients   []clientState
	last      uint64 // instruction time of the previous emission
}

// Generator builds the spec's composed workload generator. The result
// is deterministic for a given seed (it arrives pre-Reset(1), like
// the built-ins), implements workload.Cloner so epoch-parallel runs
// can shard it, and spans the concatenation of the clients' disjoint
// address regions.
func (s *Spec) Generator() (workload.Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := s.Canonicalize()
	g := &multiClient{name: c.Name}
	var off uint64
	for _, cl := range c.Clients {
		label := c.Name + "/" + cl.Name
		// MeanGap 1 keeps the sub-generator's own gap machinery out of
		// the stream: spacing belongs to the arrival process.
		sub, err := workload.NewSynthetic(workload.SyntheticConfig{
			Name:           label,
			FootprintBytes: uint64(cl.Footprint),
			MeanGap:        1,
			WriteFraction:  cl.WriteFraction,
			HotBytes:       uint64(cl.HotBytes),
			HotFraction:    cl.HotFraction,
			SequentialRun:  cl.SequentialRun,
			Stream:         cl.Stream,
		})
		if err != nil {
			return nil, fmt.Errorf("spec: client %q: %w", cl.Name, err)
		}
		g.clients = append(g.clients, clientState{
			gen:    sub,
			offset: off,
			arr:    newArrival(cl.Arrival, float64(c.MeanGap)/cl.RateFraction, hashLabel(label)),
		})
		off += uint64(cl.Footprint)
	}
	g.footprint = off
	g.Reset(1)
	return g, nil
}

// Name implements workload.Generator.
func (g *multiClient) Name() string { return g.name }

// Footprint implements workload.Generator.
func (g *multiClient) Footprint() uint64 { return g.footprint }

// Reset implements workload.Generator: every client's sub-generator,
// arrival stream, and clock re-derives from the seed alone, so equal
// seeds replay byte-identical merged streams.
func (g *multiClient) Reset(seed int64) {
	g.last = 0
	for i := range g.clients {
		c := &g.clients[i]
		c.gen.Reset(seed)
		c.arr.reset(seed)
		c.next = c.arr.draw()
	}
}

// Next implements workload.Generator: emit the earliest-clocked
// client's access, offset into its region, with the instruction gap
// since the previous emission.
func (g *multiClient) Next(a *workload.Access) {
	cs := g.clients
	best := 0
	bt := cs[0].next
	for i := 1; i < len(cs); i++ {
		if cs[i].next < bt {
			best, bt = i, cs[i].next
		}
	}
	c := &cs[best]
	c.gen.Next(a)
	a.Addr += c.offset
	gap := bt - g.last
	if gap < 1 {
		gap = 1 // two clients can share an arrival tick
	}
	if gap > math.MaxUint32 {
		gap = math.MaxUint32
	}
	a.Gap = uint32(gap)
	g.last = bt
	c.next = bt + c.arr.draw()
}

// Clone implements workload.Cloner: a deep copy of every client's
// sub-generator and arrival state, continuing the merged stream from
// exactly the current position.
func (g *multiClient) Clone() workload.Generator {
	c := *g
	c.clients = make([]clientState, len(g.clients))
	copy(c.clients, g.clients)
	for i := range c.clients {
		c.clients[i].gen = c.clients[i].gen.(workload.Cloner).Clone()
	}
	return &c
}

var _ workload.Cloner = (*multiClient)(nil)
