// Package spec turns declarative workload specifications — YAML or
// JSON documents composing named clients with rate fractions, arrival
// processes, and per-client footprint/locality/write-ratio knobs —
// into deterministic, seedable workload generators. One spec is one
// scenario: the simulator sees a single interleaved access stream,
// merged across clients by arrival time, that replays bit-identically
// for a given seed on every machine in a fleet. The canonical JSON
// form feeds the content-addressed result cache, so spec-driven runs
// dedupe exactly like named-benchmark runs.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"github.com/maps-sim/mapsim/internal/cliutil"
	"github.com/maps-sim/mapsim/internal/workload"
)

// Process names for Arrival.Process.
const (
	// ProcessPoisson spaces a client's accesses with exponential
	// inter-arrival gaps (memoryless; CV fixed at 1).
	ProcessPoisson = "poisson"
	// ProcessGamma spaces accesses with gamma-distributed gaps whose
	// burstiness is set by Arrival.CV: CV > 1 clumps accesses into
	// bursts, CV < 1 regularizes them.
	ProcessGamma = "gamma"
	// ProcessFixed spaces accesses with a constant gap.
	ProcessFixed = "fixed"
)

// pageSize is the client footprint granularity, matching the
// simulator's memory-layout page size.
const pageSize = 4096

// maxTotalFootprint caps the summed client footprints; far above any
// built-in benchmark (128 MB) but low enough that a typo'd spec can't
// demand a terabyte of simulated layout.
const maxTotalFootprint = 1 << 30

// fracTol is the tolerance on the rate-fraction sum: wide enough for
// decimal thirds written to a few places, tight enough to catch a
// forgotten client.
const fracTol = 1e-6

// Bytes is a byte count that decodes from either a JSON/YAML number
// or a human-readable size string ("64KB", "2MB").
type Bytes uint64

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bytes) UnmarshalJSON(data []byte) error {
	data = bytes.TrimSpace(data)
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		n, err := cliutil.ParseSize(s)
		if err != nil {
			return fmt.Errorf("spec: %w", err)
		}
		*b = Bytes(n)
		return nil
	}
	var n float64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("spec: bad byte count %s", data)
	}
	if n < 0 || n != math.Trunc(n) || n > math.MaxInt64 {
		return fmt.Errorf("spec: byte count %s must be a non-negative integer", data)
	}
	*b = Bytes(n)
	return nil
}

// Arrival selects how a client's accesses are spaced in simulated
// instruction time.
type Arrival struct {
	// Process is poisson (default), gamma, or fixed.
	Process string `json:"process,omitempty"`
	// CV is the coefficient of variation of the inter-arrival gap,
	// meaningful (and required) only for the gamma process. CV > 1
	// is burstier than poisson, CV < 1 smoother.
	CV float64 `json:"cv,omitempty"`
}

// Client is one workload stream inside a spec: a synthetic access
// pattern plus the share of the aggregate access rate it receives.
// Clients occupy disjoint address regions, stacked in declaration
// order.
type Client struct {
	// Name labels the client; unique within the spec.
	Name string `json:"name"`
	// RateFraction is this client's share of the aggregate access
	// rate; all clients' fractions must sum to 1.
	RateFraction float64 `json:"rate_fraction"`
	// Arrival spaces the client's accesses in instruction time.
	Arrival Arrival `json:"arrival,omitempty"`
	// Footprint is the client's touched address extent: a positive
	// multiple of 4 KB, as a number or size string.
	Footprint Bytes `json:"footprint"`
	// WriteFraction is the client's store ratio in [0, 1].
	WriteFraction float64 `json:"write_fraction,omitempty"`
	// HotBytes, when nonzero, carves a hot region at the bottom of
	// the client's footprint receiving HotFraction of its run starts.
	HotBytes Bytes `json:"hot_bytes,omitempty"`
	// HotFraction is the share of run starts landing in the hot
	// region.
	HotFraction float64 `json:"hot_fraction,omitempty"`
	// SequentialRun is the mean sequential 8 B words touched per run
	// before the next jump (default 1 = pure pointer chasing).
	SequentialRun int `json:"sequential_run,omitempty"`
	// Stream replaces random jumps with a sequential sweep.
	Stream bool `json:"stream,omitempty"`
}

// Spec is a declarative multi-client workload. Decode one with Parse,
// then build its generator with Generator.
type Spec struct {
	// Version is the schema version; 0 (unset) and 1 are accepted.
	Version int `json:"version,omitempty"`
	// Name labels the composed workload in results, sweeps, and cache
	// keys; it must not shadow a built-in benchmark.
	Name string `json:"name"`
	// MeanGap is the aggregate mean instruction distance between
	// accesses across all clients (default 4, like the built-in
	// benchmarks' default cadence).
	MeanGap int `json:"mean_gap,omitempty"`
	// Clients are the composed streams; at least one.
	Clients []Client `json:"clients"`
}

// Parse decodes a workload spec from YAML or JSON (detected by a
// leading '{') and validates it. The YAML dialect is the subset the
// schema needs: nested maps, lists, scalars, quotes, and comments.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var payload []byte
	if len(trimmed) > 0 && trimmed[0] == '{' {
		payload = data
	} else {
		doc, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		payload, err = json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("spec: unsupported value in document: %v", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's shape: client set, rate fractions, and
// per-client parameters. It is called by Parse; API callers that
// build a Spec directly get the same errors from Generator.
func (s *Spec) Validate() error {
	if s.Version != 0 && s.Version != 1 {
		return fmt.Errorf("spec: unsupported version %d (want 1)", s.Version)
	}
	if err := checkName("workload", s.Name); err != nil {
		return err
	}
	if _, err := workload.New(s.Name); err == nil {
		return fmt.Errorf("spec: name %q shadows a built-in benchmark", s.Name)
	}
	if s.MeanGap < 0 || s.MeanGap > 1_000_000 {
		return fmt.Errorf("spec: mean_gap %d out of range [0, 1e6]", s.MeanGap)
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("spec: %q declares no clients; at least one is required", s.Name)
	}
	seen := make(map[string]bool, len(s.Clients))
	var sum float64
	var total uint64
	for i := range s.Clients {
		c := &s.Clients[i]
		if err := checkName(fmt.Sprintf("client %d", i), c.Name); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("spec: duplicate client name %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.validate(); err != nil {
			return err
		}
		sum += c.RateFraction
		total += uint64(c.Footprint)
	}
	if math.Abs(sum-1) > fracTol {
		return fmt.Errorf("spec: client rate fractions sum to %v, want 1", sum)
	}
	if total > maxTotalFootprint {
		return fmt.Errorf("spec: total footprint %d exceeds the %d-byte limit", total, uint64(maxTotalFootprint))
	}
	return nil
}

// validate checks one client's parameters.
func (c *Client) validate() error {
	if bad(c.RateFraction) || c.RateFraction <= 0 || c.RateFraction > 1 {
		return fmt.Errorf("spec: client %q rate_fraction %v must be in (0, 1]", c.Name, c.RateFraction)
	}
	switch c.Arrival.Process {
	case "", ProcessPoisson, ProcessFixed:
		if c.Arrival.CV != 0 {
			return fmt.Errorf("spec: client %q: cv applies only to the gamma process", c.Name)
		}
	case ProcessGamma:
		if bad(c.Arrival.CV) || c.Arrival.CV <= 0 || c.Arrival.CV > 100 {
			return fmt.Errorf("spec: client %q gamma cv %v must be in (0, 100]", c.Name, c.Arrival.CV)
		}
	default:
		return fmt.Errorf("spec: client %q: unknown arrival process %q (want %s, %s, or %s)",
			c.Name, c.Arrival.Process, ProcessPoisson, ProcessGamma, ProcessFixed)
	}
	if c.Footprint == 0 || c.Footprint%pageSize != 0 {
		return fmt.Errorf("spec: client %q footprint %d must be a positive multiple of %d", c.Name, c.Footprint, pageSize)
	}
	if bad(c.WriteFraction) || c.WriteFraction < 0 || c.WriteFraction > 1 {
		return fmt.Errorf("spec: client %q write_fraction %v out of [0, 1]", c.Name, c.WriteFraction)
	}
	if bad(c.HotFraction) || c.HotFraction < 0 || c.HotFraction > 1 {
		return fmt.Errorf("spec: client %q hot_fraction %v out of [0, 1]", c.Name, c.HotFraction)
	}
	if c.HotBytes >= c.Footprint {
		return fmt.Errorf("spec: client %q hot region %d must be smaller than its footprint %d", c.Name, c.HotBytes, c.Footprint)
	}
	if c.HotBytes > 0 && c.HotBytes%64 != 0 {
		return fmt.Errorf("spec: client %q hot region %d must be block (64 B) aligned", c.Name, c.HotBytes)
	}
	if c.SequentialRun < 0 || c.SequentialRun > 1_000_000 {
		return fmt.Errorf("spec: client %q sequential_run %d out of range [0, 1e6]", c.Name, c.SequentialRun)
	}
	return nil
}

// Canonicalize returns a copy with every default made explicit —
// version, arrival process, mean gap, sequential run — so specs that
// mean the same thing serialize to the same bytes.
func (s *Spec) Canonicalize() *Spec {
	c := *s
	c.Version = 1
	if c.MeanGap == 0 {
		c.MeanGap = 4
	}
	c.Clients = make([]Client, len(s.Clients))
	copy(c.Clients, s.Clients)
	for i := range c.Clients {
		cl := &c.Clients[i]
		if cl.Arrival.Process == "" {
			cl.Arrival.Process = ProcessPoisson
		}
		if cl.SequentialRun == 0 {
			cl.SequentialRun = 1
		}
	}
	return &c
}

// CanonicalJSON serializes the canonicalized spec with a fixed field
// order; the content-addressed result cache hashes these bytes, so
// equal scenarios share one cache entry however they were spelled. It
// panics on a spec whose floats are not finite — Validate rejects
// those first.
func (s *Spec) CanonicalJSON() []byte {
	b, err := json.Marshal(s.Canonicalize())
	if err != nil {
		panic(fmt.Sprintf("spec: canonical marshal of validated spec failed: %v", err))
	}
	return b
}

// bad reports a float that can't participate in validation arithmetic.
func bad(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }

// checkName enforces the shared label charset: nonempty, at most 64
// runes of letters, digits, dots, dashes, underscores.
func checkName(what, name string) error {
	if name == "" {
		return fmt.Errorf("spec: %s name is required", what)
	}
	if len(name) > 64 {
		return fmt.Errorf("spec: %s name %q longer than 64 bytes", what, name)
	}
	if strings.IndexFunc(name, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
			r == '.' || r == '-' || r == '_')
	}) >= 0 {
		return fmt.Errorf("spec: %s name %q may use only letters, digits, '.', '-', '_'", what, name)
	}
	return nil
}
