package spec

import (
	"bytes"
	"testing"
)

// FuzzDecodeWorkloadSpec ensures arbitrary documents never panic the
// YAML/JSON decoder, and that anything accepted is stable: its
// canonical form re-parses to the same canonical form (the property
// the content-addressed cache hash depends on).
func FuzzDecodeWorkloadSpec(f *testing.F) {
	f.Add([]byte(sampleYAML))
	f.Add([]byte(sampleJSON))
	f.Add([]byte("name: tiny\nclients:\n  - name: a\n    rate_fraction: 1\n    footprint: 4KB\n"))
	f.Add([]byte("key:\n  - 1\n  - 2\n"))
	f.Add([]byte("a: b # comment\n'q': \"v\"\n"))
	f.Add([]byte("\t"))
	f.Add([]byte("{"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejected: fine
		}
		canon := s.CanonicalJSON()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		if !bytes.Equal(canon, again.CanonicalJSON()) {
			t.Fatalf("canonical form not a fixed point:\n%s\n%s", canon, again.CanonicalJSON())
		}
		// An accepted spec must always build a generator.
		if _, err := s.Generator(); err != nil {
			t.Fatalf("validated spec failed to build: %v", err)
		}
	})
}
