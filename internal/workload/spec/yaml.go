package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// The module carries zero dependencies, so specs get a hand-rolled
// parser for the YAML subset the schema needs: nested block maps and
// lists, inline list-item maps ("- name: web"), scalars (strings,
// ints, floats, bools, null), single/double quotes, and '#' comments.
// Flow collections beyond empty "[]"/"{}", anchors, tags, and
// multi-line strings are out of scope and rejected with a line
// number. The parse result is a plain any-tree that round-trips
// through encoding/json into the Spec struct, so YAML and JSON
// documents take one strict decoding path.

// yline is one significant source line: indentation, content with
// comments stripped, and the 1-based source line number for errors.
type yline struct {
	indent int
	text   string
	num    int
}

type yparser struct {
	lines []yline
	pos   int
}

// parseYAML decodes a YAML-subset document into maps, slices, and
// scalars.
func parseYAML(data []byte) (any, error) {
	lines, err := splitLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("spec: empty document")
	}
	p := &yparser{lines: lines}
	v, err := p.parseNode(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("spec: line %d: unexpected content after document (check indentation)", p.lines[p.pos].num)
	}
	return v, nil
}

// splitLines strips comments and blanks and measures indentation,
// rejecting tabs (as YAML does) so mixed indentation can't silently
// change nesting.
func splitLines(src string) ([]yline, error) {
	var out []yline
	for num, raw := range strings.Split(src, "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("spec: line %d: tab in indentation (use spaces)", num+1)
		}
		text := strings.TrimRight(stripComment(line[indent:]), " \t")
		if text == "" || text == "---" {
			continue
		}
		out = append(out, yline{indent: indent, text: text, num: num + 1})
	}
	return out, nil
}

// stripComment removes a trailing '#' comment that is outside quotes
// and either starts the content or follows whitespace.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

// parseNode parses the block starting at the current line, which sits
// at the given indentation: a list if it opens with a dash, else a
// map.
func (p *yparser) parseNode(indent int) (any, error) {
	line := p.lines[p.pos]
	if line.text == "-" || strings.HasPrefix(line.text, "- ") {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

// parseMap consumes "key: value" lines at one indentation level.
func (p *yparser) parseMap(indent int) (any, error) {
	m := make(map[string]any)
	for p.pos < len(p.lines) && p.lines[p.pos].indent == indent {
		line := p.lines[p.pos]
		if line.text == "-" || strings.HasPrefix(line.text, "- ") {
			return nil, fmt.Errorf("spec: line %d: list item where a mapping key was expected", line.num)
		}
		key, rest, err := splitKey(line)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("spec: line %d: duplicate key %q", line.num, key)
		}
		p.pos++
		if rest == "" {
			v, err := p.parseChild(indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			v, err := scalar(rest, line.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
	}
	if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
		return nil, fmt.Errorf("spec: line %d: inconsistent indentation", p.lines[p.pos].num)
	}
	return m, nil
}

// parseList consumes "- item" lines at one indentation level.
func (p *yparser) parseList(indent int) (any, error) {
	out := []any{}
	for p.pos < len(p.lines) && p.lines[p.pos].indent == indent {
		line := p.lines[p.pos]
		if line.text != "-" && !strings.HasPrefix(line.text, "- ") {
			break
		}
		content := strings.TrimLeft(strings.TrimPrefix(line.text, "-"), " ")
		p.pos++
		switch {
		case content == "":
			v, err := p.parseChild(indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		case looksLikeKey(content):
			// Inline first mapping entry: "- name: web". Re-inject the
			// content as a virtual line at its real column so the
			// item's remaining keys (indented to that column) join the
			// same map.
			col := line.indent + (len(line.text) - len(content))
			p.pos--
			p.lines[p.pos] = yline{indent: col, text: content, num: line.num}
			v, err := p.parseMap(col)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			v, err := scalar(content, line.num)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
		return nil, fmt.Errorf("spec: line %d: inconsistent indentation", p.lines[p.pos].num)
	}
	return out, nil
}

// parseChild parses the block nested under a "key:" or bare "-" line,
// or yields null when nothing is nested.
func (p *yparser) parseChild(indent int) (any, error) {
	if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
		return p.parseNode(p.lines[p.pos].indent)
	}
	return nil, nil
}

// splitKey breaks "key: value" (or "key:") into its parts, allowing
// quoted keys.
func splitKey(line yline) (key, rest string, err error) {
	s := line.text
	if len(s) > 0 && (s[0] == '"' || s[0] == '\'') {
		q := s[0]
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return "", "", fmt.Errorf("spec: line %d: unterminated quoted key", line.num)
		}
		key = s[1 : 1+end]
		s = strings.TrimLeft(s[2+end:], " ")
		if !strings.HasPrefix(s, ":") {
			return "", "", fmt.Errorf("spec: line %d: expected ':' after key", line.num)
		}
		return key, strings.TrimLeft(s[1:], " "), nil
	}
	i := strings.Index(s, ":")
	switch {
	case i < 0:
		return "", "", fmt.Errorf("spec: line %d: expected \"key: value\", got %q", line.num, s)
	case i+1 < len(s) && s[i+1] != ' ':
		return "", "", fmt.Errorf("spec: line %d: ':' must be followed by a space or end the line", line.num)
	}
	key = strings.TrimRight(s[:i], " ")
	if key == "" {
		return "", "", fmt.Errorf("spec: line %d: empty key", line.num)
	}
	return key, strings.TrimLeft(s[i+1:], " "), nil
}

// looksLikeKey reports whether a list item's inline content opens a
// mapping ("name: web") rather than being a scalar.
func looksLikeKey(s string) bool {
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ':':
			return i+1 == len(s) || s[i+1] == ' '
		}
	}
	return false
}

// scalar interprets one value: quoted string, bool, null, int,
// float, empty flow collection, or plain string.
func scalar(s string, num int) (any, error) {
	switch s {
	case "[]":
		return []any{}, nil
	case "{}":
		return map[string]any{}, nil
	case "null", "~":
		return nil, nil
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	}
	if s[0] == '"' {
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("spec: line %d: bad quoted string %s", num, s)
		}
		return v, nil
	}
	if s[0] == '\'' {
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("spec: line %d: unterminated string %s", num, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if s[0] == '[' || s[0] == '{' || s[0] == '&' || s[0] == '*' || s[0] == '|' || s[0] == '>' {
		return nil, fmt.Errorf("spec: line %d: unsupported YAML construct %q (flow collections, anchors, and block scalars are not part of the spec dialect)", num, s)
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
