package spec

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/maps-sim/mapsim/internal/workload"
)

const sampleYAML = `
# Two interactive tiers over a batch scanner.
version: 1
name: front-back
mean_gap: 4
clients:
  - name: web
    rate_fraction: 0.6
    arrival:
      process: poisson
    footprint: 256KB
    write_fraction: 0.1
    hot_bytes: 16KB
    hot_fraction: 0.9
  - name: db
    rate_fraction: 0.3
    arrival:
      process: gamma
      cv: 2.0
    footprint: 4MB
    write_fraction: 0.4
    sequential_run: 8
  - name: scan
    rate_fraction: 0.1
    arrival:
      process: fixed
    footprint: 1MB
    stream: true
`

const sampleJSON = `{
  "version": 1,
  "name": "front-back",
  "mean_gap": 4,
  "clients": [
    {"name": "web", "rate_fraction": 0.6, "arrival": {"process": "poisson"},
     "footprint": 262144, "write_fraction": 0.1, "hot_bytes": 16384, "hot_fraction": 0.9},
    {"name": "db", "rate_fraction": 0.3, "arrival": {"process": "gamma", "cv": 2.0},
     "footprint": "4MB", "write_fraction": 0.4, "sequential_run": 8},
    {"name": "scan", "rate_fraction": 0.1, "arrival": {"process": "fixed"},
     "footprint": "1MB", "stream": true}
  ]
}`

func TestParseYAMLAndJSONAgree(t *testing.T) {
	fromYAML, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatalf("yaml: %v", err)
	}
	fromJSON, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	if !bytes.Equal(fromYAML.CanonicalJSON(), fromJSON.CanonicalJSON()) {
		t.Fatalf("same spec, different canonical forms:\n%s\n%s",
			fromYAML.CanonicalJSON(), fromJSON.CanonicalJSON())
	}
	if fromYAML.Clients[0].Footprint != 256<<10 {
		t.Errorf("footprint size string mis-parsed: %d", fromYAML.Clients[0].Footprint)
	}
	if fromYAML.Clients[1].Arrival.CV != 2.0 {
		t.Errorf("cv = %v", fromYAML.Clients[1].Arrival.CV)
	}
}

// Canonicalization makes every default explicit and is idempotent, so
// differently-spelled equal specs share one cache hash.
func TestCanonicalizeIdempotent(t *testing.T) {
	s, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Canonicalize()
	if c.Clients[0].SequentialRun != 1 || c.Clients[0].Arrival.Process != ProcessPoisson {
		t.Fatalf("defaults not explicit: %+v", c.Clients[0])
	}
	if !bytes.Equal(c.CanonicalJSON(), s.CanonicalJSON()) {
		t.Fatal("canonicalize not idempotent")
	}
	// Mutating the canonical copy must not touch the original.
	c.Clients[0].Name = "mutated"
	if s.Clients[0].Name != "web" {
		t.Fatal("Canonicalize aliases the receiver's clients")
	}
}

// The spec-parsing edge-case table: every malformed shape gets a
// clear, specific rejection.
func TestParseRejections(t *testing.T) {
	valid := func(mutate func(*Spec)) []byte {
		s, err := Parse([]byte(sampleJSON))
		if err != nil {
			t.Fatal(err)
		}
		mutate(s)
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		doc  []byte
		want string // substring of the error
	}{
		{"empty document", []byte(""), "empty"},
		{"zero clients", []byte("name: lonely\nclients: []\n"), "no clients"},
		{"missing name", []byte("clients:\n  - name: a\n    rate_fraction: 1\n    footprint: 4KB\n"), "name is required"},
		{"unknown top-level field", []byte("name: x\nburstiness: 3\nclients: []\n"), "unknown field"},
		{"unknown client field", []byte("name: x\nclients:\n  - name: a\n    rate_fraction: 1\n    footprint: 4KB\n    sparkle: 1\n"), "unknown field"},
		{"unknown arrival process", valid(func(s *Spec) { s.Clients[0].Arrival.Process = "pareto" }), "unknown arrival process"},
		{"fractions sum low", valid(func(s *Spec) { s.Clients[0].RateFraction = 0.5 }), "sum to"},
		{"fractions sum high", valid(func(s *Spec) { s.Clients[2].RateFraction = 0.3 }), "sum to"},
		{"negative fraction", valid(func(s *Spec) { s.Clients[0].RateFraction = -0.6 }), "rate_fraction"},
		{"zero fraction", valid(func(s *Spec) { s.Clients[0].RateFraction = 0 }), "rate_fraction"},
		{"negative cv", valid(func(s *Spec) { s.Clients[1].Arrival.CV = -2 }), "cv"},
		{"cv without gamma", valid(func(s *Spec) { s.Clients[0].Arrival.CV = 2 }), "cv applies only"},
		{"negative write fraction", valid(func(s *Spec) { s.Clients[0].WriteFraction = -0.1 }), "write_fraction"},
		{"write fraction above 1", valid(func(s *Spec) { s.Clients[0].WriteFraction = 1.5 }), "write_fraction"},
		{"unaligned footprint", valid(func(s *Spec) { s.Clients[0].Footprint = 1000 }), "multiple of 4096"},
		{"zero footprint", valid(func(s *Spec) { s.Clients[0].Footprint = 0 }), "multiple of 4096"},
		{"hot exceeds footprint", valid(func(s *Spec) { s.Clients[0].HotBytes = s.Clients[0].Footprint }), "hot region"},
		{"duplicate client names", valid(func(s *Spec) { s.Clients[1].Name = "web" }), "duplicate client"},
		{"shadows builtin", valid(func(s *Spec) { s.Name = workload.Names()[0] }), "shadows a built-in"},
		{"bad version", valid(func(s *Spec) { s.Version = 7 }), "version"},
		{"negative sequential run", valid(func(s *Spec) { s.Clients[1].SequentialRun = -3 }), "sequential_run"},
		{"negative footprint", []byte(`{"name":"x","clients":[{"name":"a","rate_fraction":1,"footprint":-4096}]}`), "non-negative"},
		{"tab indentation", []byte("name: x\nclients:\n\t- name: a\n"), "tab"},
		{"flow collection", []byte("name: x\nclients: [a, b]\n"), "unsupported YAML"},
		{"bad yaml shape", []byte("name x\n"), "key: value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.doc)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

// Validate must reject non-finite parameters on directly-constructed
// specs (JSON can't even spell NaN, but the API can).
func TestValidateRejectsNaN(t *testing.T) {
	base, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Spec){
		func(s *Spec) { s.Clients[0].RateFraction = math.NaN() },
		func(s *Spec) { s.Clients[0].WriteFraction = math.NaN() },
		func(s *Spec) { s.Clients[0].HotFraction = math.Inf(1) },
		func(s *Spec) { s.Clients[1].Arrival.CV = math.NaN() },
	} {
		s := *base
		s.Clients = append([]Client(nil), base.Clients...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("NaN/Inf parameter accepted: %+v", s.Clients)
		}
		if _, err := s.Generator(); err == nil {
			t.Fatal("Generator built from NaN/Inf spec")
		}
	}
}

// The merged multi-client stream is a pure function of (spec, seed).
func TestGeneratorDeterministic(t *testing.T) {
	s, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := s.Generator()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Generator()
	if err != nil {
		t.Fatal(err)
	}
	g1.Reset(42)
	g2.Reset(42)
	var a, b workload.Access
	for i := 0; i < 50_000; i++ {
		g1.Next(&a)
		g2.Next(&b)
		if a != b {
			t.Fatalf("access %d: %+v vs %+v", i, a, b)
		}
	}
}

// Rate fractions set the long-run share of accesses each client
// emits, whatever its arrival process; client regions are disjoint so
// shares are observable from addresses.
func TestGeneratorHonorsRateFractions(t *testing.T) {
	s, err := Parse([]byte(sampleYAML))
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Generator()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(256<<10 + 4<<20 + 1<<20); g.Footprint() != want {
		t.Fatalf("footprint = %d, want %d", g.Footprint(), want)
	}
	bounds := []uint64{256 << 10, 256<<10 + 4<<20, g.Footprint()}
	counts := make([]int, 3)
	const n = 300_000
	var a workload.Access
	var instrs uint64
	for i := 0; i < n; i++ {
		g.Next(&a)
		instrs += uint64(a.Gap)
		if a.Addr >= g.Footprint() {
			t.Fatalf("access %d at %#x beyond footprint %#x", i, a.Addr, g.Footprint())
		}
		for c, hi := range bounds {
			if a.Addr < hi {
				counts[c]++
				break
			}
		}
	}
	for c, frac := range []float64{0.6, 0.3, 0.1} {
		got := float64(counts[c]) / n
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("client %d received %.3f of accesses, want %.2f", c, got, frac)
		}
	}
	// Aggregate cadence: mean gap ≈ mean_gap.
	if mean := float64(instrs) / n; mean < 3.2 || mean > 4.8 {
		t.Errorf("aggregate mean gap %.2f, want ≈4", mean)
	}
}

// Gamma burstiness must be visible: with CV >> 1 the inter-arrival
// gaps of a client have a larger coefficient of variation than its
// poisson twin.
func TestGammaBurstier(t *testing.T) {
	cv := func(process string, cvParam float64) float64 {
		doc := `{"name":"one","clients":[{"name":"c","rate_fraction":1,"footprint":65536,
		  "arrival":{"process":"` + process + `"` + func() string {
			if cvParam > 0 {
				return `,"cv":4`
			}
			return ""
		}() + `}}]}`
		s, err := Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		g, err := s.Generator()
		if err != nil {
			t.Fatal(err)
		}
		g.Reset(3)
		var a workload.Access
		var sum, sumsq float64
		const n = 100_000
		for i := 0; i < n; i++ {
			g.Next(&a)
			x := float64(a.Gap)
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		return math.Sqrt(sumsq/n-mean*mean) / mean
	}
	poisson := cv(ProcessPoisson, 0)
	gamma := cv(ProcessGamma, 4)
	fixed := cv(ProcessFixed, 0)
	if gamma < poisson*1.5 {
		t.Errorf("gamma(cv=4) stream CV %.2f not burstier than poisson %.2f", gamma, poisson)
	}
	if fixed > poisson/2 {
		t.Errorf("fixed stream CV %.2f not smoother than poisson %.2f", fixed, poisson)
	}
}

func TestBytesUnmarshalForms(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Bytes
		ok   bool
	}{
		{`65536`, 65536, true},
		{`"64KB"`, 64 << 10, true},
		{`"2MB"`, 2 << 20, true},
		{`" 512B "`, 512, true},
		{`-1`, 0, false},
		{`1.5`, 0, false},
		{`"garbage"`, 0, false},
		{`true`, 0, false},
	} {
		var b Bytes
		err := b.UnmarshalJSON([]byte(c.in))
		if c.ok != (err == nil) {
			t.Errorf("%s: err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && b != c.want {
			t.Errorf("%s = %d, want %d", c.in, b, c.want)
		}
	}
}
