// Package workload provides synthetic memory-access generators that
// stand in for the SPEC 2006 / PARSEC / SPLASH-2 benchmarks MAPS
// simulates. Each generator reproduces the access-pattern *shape*
// that drives the paper's analysis for its benchmark: footprint
// relative to the LLC, spatial locality, streaming vs pointer-chasing
// behaviour, and write fraction. DESIGN.md §1 documents the
// substitution.
package workload

import (
	"fmt"
	"math/bits"
	"sort"
)

// Access is one memory reference emitted by a generator.
type Access struct {
	// Addr is a byte address within [0, Footprint).
	Addr uint64
	// Write distinguishes stores from loads.
	Write bool
	// Gap is the number of instructions executed since the previous
	// access, at least 1 (this access's own instruction).
	Gap uint32
}

// Generator produces a deterministic, endless access stream after
// Reset.
type Generator interface {
	// Name is the benchmark name as used in the paper's figures.
	Name() string
	// Footprint is the extent of the data region the stream touches.
	Footprint() uint64
	// Reset rewinds the stream and reseeds its randomness.
	Reset(seed int64)
	// Next fills in the next access.
	Next(a *Access)
}

const block = 64

// word is the access granularity: generators step through memory in
// 8 B words so that spatial locality within a 64 B block shows up as
// cache hits, keeping LLC MPKI in the ranges the paper reports.
const word = 8

// rng is an inlined SplitMix64 generator (Steele et al., "Fast
// Splittable Pseudorandom Number Generators"). The generators draw
// from it on every access, so it must cost a handful of arithmetic
// ops — math/rand paid two interface dispatches per access (Intn for
// the gap, Float64 for the write coin), which dominated Next in
// profiles. The determinism contract is unchanged: Reset(seed)
// rewinds the stream exactly.
//
// Swapping the source changed every generator's stream once; the
// statistical shape (write mix, gap means, locality) is identical.
// docs/PERFORMANCE.md documents this one-time golden-number bump.
type rng struct{ s uint64 }

func (r *rng) seed(v uint64) { r.s = v }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// n returns a value uniform in [0, n). The modulo bias is O(n/2^64),
// immaterial for block counts far below 2^63.
func (r *rng) n(n uint64) uint64 { return r.next() % n }

// intn is n for int-typed ranges.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// umod reduces modulo a fixed divisor with multiply-shift arithmetic
// (Granlund & Montgomery; Hacker's Delight §10). The generators draw
// a bounded value on nearly every access, and a hardware 64-bit
// divide costs more than the rest of the draw combined; the magic
// multiplier computes exactly x % d, so streams (and golden numbers)
// are unchanged.
type umod struct {
	d    uint64
	m    uint64 // magic multiplier for non-power-of-two d
	mask uint64 // d-1 for power-of-two d
	l    uint   // post-shift: ceil(log2 d) - 1
	pow2 bool
}

func newUmod(d uint64) umod {
	if d == 0 {
		panic("workload: zero modulus")
	}
	if d&(d-1) == 0 {
		return umod{d: d, mask: d - 1, pow2: true}
	}
	// ceil(log2 d); d has at least two bits set, so l >= 2 and the
	// (x-t)>>1 fixup below never shifts by a negative amount.
	l := uint(bits.Len64(d - 1))
	m, _ := bits.Div64(uint64(1)<<l-d, 0, d)
	return umod{d: d, m: m + 1, l: l - 1}
}

func (u umod) rem(x uint64) uint64 {
	if u.pow2 {
		return x & u.mask
	}
	t, _ := bits.Mul64(u.m, x)
	q := (t + (x-t)>>1) >> u.l
	return x - q*u.d
}

// cutoff converts a probability in [0, 1] into a threshold such that
// next() < cutoff(p) holds with probability p, so per-access coin
// flips are a single integer compare instead of a float multiply.
func cutoff(frac float64) uint64 {
	switch {
	case frac <= 0:
		return 0
	case frac >= 1:
		return ^uint64(0)
	}
	return uint64(frac * float64(1<<63) * 2)
}

// base carries the shared knobs: instruction gaps and write ratio.
type base struct {
	name      string
	footprint uint64
	meanGap   int
	writeFrac float64
	rng       rng
	// writeCut and gapMod are precomputed by reset so the per-access
	// draws are pure integer math with no hardware divide.
	writeCut uint64
	gapMod   umod // modulus 2*meanGap-1; zero d means every gap is 1
}

func (b *base) Name() string      { return b.name }
func (b *base) Footprint() uint64 { return b.footprint }

func (b *base) reset(seed int64) {
	b.rng.seed(uint64(seed) ^ hashName(b.name))
	b.writeCut = cutoff(b.writeFrac)
	b.gapMod = umod{}
	if b.meanGap > 1 {
		b.gapMod = newUmod(uint64(2*b.meanGap - 1))
	}
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// gap draws an instruction gap uniform in [1, 2*meanGap-1], mean
// meanGap.
func (b *base) gap() uint32 {
	if b.gapMod.d == 0 {
		return 1
	}
	return uint32(1 + b.gapMod.rem(b.rng.next()))
}

func (b *base) write() bool { return b.rng.next() < b.writeCut }

// stream sweeps its footprint sequentially, forever — the paper's
// description of libquantum: "repeatedly streams through a 4MB
// array".
type stream struct {
	base
	pos uint64
	// hotBytes, when nonzero, interleaves accesses to a small hot
	// region (streamcluster's cluster centers).
	hotBytes uint64
	hotEvery int
	until    int // accesses left before the next hot reference
	hotMod   umod
}

// newStream validates the hot-region knobs at construction: a hot
// region without a sampling interval would divide by zero in Next.
func newStream(b base, hotBytes uint64, hotEvery int) *stream {
	if hotBytes > 0 && hotEvery <= 0 {
		panic(fmt.Sprintf("workload: %s: hot region (%d B) requires hotEvery >= 1, got %d",
			b.name, hotBytes, hotEvery))
	}
	return &stream{base: b, hotBytes: hotBytes, hotEvery: hotEvery}
}

func (g *stream) Reset(seed int64) {
	g.reset(seed)
	g.pos = 0
	g.until = g.hotEvery
	if g.hotBytes > 0 {
		g.hotMod = newUmod(g.hotBytes / block)
	}
}

func (g *stream) Next(a *Access) {
	if g.hotBytes > 0 {
		g.until--
		if g.until == 0 {
			g.until = g.hotEvery
			a.Addr = g.hotMod.rem(g.rng.next()) * block
			a.Write = g.write()
			a.Gap = g.gap()
			return
		}
	}
	a.Addr = g.pos
	g.pos += word
	if g.pos >= g.footprint {
		g.pos = 0
	}
	a.Write = g.write()
	a.Gap = g.gap()
}

// chase issues low-spatial-locality references: uniformly random
// blocks over the footprint, optionally biased toward a hot subset —
// canneal's random element exchanges and mcf's network arcs.
type chase struct {
	base
	hotFrac   float64 // fraction of accesses that go to the hot region
	hotCut    uint64  // precomputed cutoff(hotFrac)
	hotBytes  uint64
	runLen    int // short sequential runs model element records
	remaining int
	cur       uint64
	hotMod    umod
	footMod   umod
	runMod    umod
}

func (g *chase) Reset(seed int64) {
	g.reset(seed)
	g.hotCut = cutoff(g.hotFrac)
	g.remaining = 0
	if g.hotBytes > 0 {
		g.hotMod = newUmod(g.hotBytes / block)
	}
	g.footMod = newUmod(g.footprint / block)
	if g.runLen > 1 {
		g.runMod = newUmod(uint64(g.runLen))
	}
}

func (g *chase) Next(a *Access) {
	if g.remaining <= 0 {
		if g.hotBytes > 0 && g.rng.next() < g.hotCut {
			g.cur = g.hotMod.rem(g.rng.next()) * block
		} else {
			g.cur = g.footMod.rem(g.rng.next()) * block
		}
		g.remaining = 1
		if g.runLen > 1 {
			g.remaining += int(g.runMod.rem(g.rng.next()))
		}
	}
	a.Addr = g.cur
	g.cur += word
	if g.cur >= g.footprint {
		g.cur = 0
	}
	g.remaining--
	a.Write = g.write()
	a.Gap = g.gap()
}

// strided models butterfly-exchange kernels (fft) and strided lattice
// sweeps (milc): each pass walks the array word by word touching
// element pairs (i, i+stride), and the stride doubles between passes.
// Both streams are sequential at word granularity, so spatial
// locality within blocks is realistic while the pair distance creates
// the stage-dependent reuse the paper discusses.
type strided struct {
	base
	minStride uint64
	maxStride uint64
	stride    uint64
	pos       uint64
	phase     int // 0: a[i], 1: a[i+stride]
}

func (g *strided) Reset(seed int64) {
	g.reset(seed)
	g.stride = g.minStride
	g.pos = 0
	g.phase = 0
}

func (g *strided) Next(a *Access) {
	if g.phase == 0 {
		a.Addr = g.pos
		g.phase = 1
	} else {
		a.Addr = g.pos + g.stride
		g.phase = 0
		g.pos += word
		if g.pos+g.stride >= g.footprint {
			g.pos = 0
			g.stride *= 2
			if g.stride > g.maxStride {
				g.stride = g.minStride
			}
		}
	}
	a.Write = g.write()
	a.Gap = g.gap()
}

// stencil sweeps a 3-D grid accessing each point and its neighbours
// in the two outer dimensions — leslie3d's and cactusADM's kernels.
// The inner dimension is sequential (good spatial locality); the
// neighbour planes force reuse at plane distance.
type stencil struct {
	base
	nx, ny, nz uint64 // points per dimension, 8 B per point
	i          uint64 // linear sweep position in points
	phase      int    // which neighbour of the current point
	ptsMod     umod   // modulus nx*ny*nz
}

func (g *stencil) Reset(seed int64) {
	g.reset(seed)
	g.i = 0
	g.phase = 0
	g.ptsMod = newUmod(g.nx * g.ny * g.nz)
}

func (g *stencil) Next(a *Access) {
	const ptBytes = 8
	center := g.ptsMod.rem(g.i)
	var off int64
	switch g.phase {
	case 0:
		off = 0
	case 1:
		off = int64(g.nx) // +y neighbour
	case 2:
		off = int64(g.nx * g.ny) // +z neighbour
	}
	idx := g.ptsMod.rem(center + uint64(off))
	a.Addr = idx * ptBytes
	g.phase++
	if g.phase == 3 {
		g.phase = 0
		g.i++
	}
	a.Write = g.phase == 0 && g.write() // write the centre point last
	a.Gap = g.gap()
}

// treewalk descends a pointer-linked tree from the root each
// iteration, touching the node at every level — barnes' octree force
// walks. Upper levels are reused constantly, leaves rarely.
type treewalk struct {
	base
	levels    int
	nodeBytes uint64
	levelMod  umod
	footMod   umod
}

func (g *treewalk) Reset(seed int64) {
	g.reset(seed)
	g.levelMod = newUmod(uint64(g.levels))
	g.footMod = newUmod(g.footprint)
}

func (g *treewalk) Next(a *Access) {
	// Pick a random leaf, then emit one node along its path per call.
	// Encoding: level offsets laid out level by level.
	level := int(g.levelMod.rem(g.rng.next()))
	nodesAt := uint64(1) << uint(2*level) // 4-ary tree
	first := (pow4(level) - 1) / 3        // Σ 4^i below this level
	idx := g.rng.next() & (nodesAt - 1)   // nodesAt is a power of two
	addr := (first + idx) * g.nodeBytes
	a.Addr = g.footMod.rem(addr)
	a.Write = g.write()
	a.Gap = g.gap()
}

func pow4(n int) uint64 { return uint64(1) << uint(2*n) }

// mixed combines a resident hot region with sparse cold references —
// gcc's and perlbench's heaps.
type mixed struct {
	base
	hotBytes uint64
	hotFrac  float64
	hotCut   uint64 // precomputed cutoff(hotFrac)
	seqRun   int
	rem      int
	cur      uint64
	hotMod   umod
	coldMod  umod
	runMod   umod
}

func (g *mixed) Reset(seed int64) {
	g.reset(seed)
	g.hotCut = cutoff(g.hotFrac)
	g.rem = 0
	g.hotMod = newUmod(g.hotBytes / block)
	g.coldMod = newUmod((g.footprint - g.hotBytes) / block)
	g.runMod = newUmod(uint64(g.seqRun))
}

func (g *mixed) Next(a *Access) {
	if g.rem <= 0 {
		if g.rng.next() < g.hotCut {
			g.cur = g.hotMod.rem(g.rng.next()) * block
		} else {
			g.cur = g.hotBytes + g.coldMod.rem(g.rng.next())*block
		}
		g.rem = 1 + int(g.runMod.rem(g.rng.next()))
	}
	a.Addr = g.cur
	g.cur += word
	if g.cur >= g.footprint {
		g.cur = g.hotBytes
	}
	g.rem--
	a.Write = g.write()
	a.Gap = g.gap()
}

// New returns a fresh, reset generator for the named benchmark.
func New(name string) (Generator, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	g := mk()
	g.Reset(1)
	return g, nil
}

// MustNew is New but panics on error.
func MustNew(name string) Generator {
	g, err := New(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Names lists the available benchmarks in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MemoryIntensive lists the benchmarks the paper focuses on (LLC
// MPKI > 10 under its configuration).
func MemoryIntensive() []string {
	return []string{"canneal", "libquantum", "fft", "leslie3d", "mcf", "cactusADM", "lbm", "milc"}
}

// Representative lists the six benchmarks shown in Figure 3.
func Representative() []string {
	return []string{"canneal", "libquantum", "fft", "leslie3d", "mcf", "barnes"}
}

var registry = map[string]func() Generator{
	// PARSEC canneal: huge footprint, near-random exchanges, little
	// spatial locality. The paper's archetypal metadata-hostile
	// workload.
	"canneal": func() Generator {
		return &chase{base: base{name: "canneal", footprint: 96 << 20, meanGap: 4, writeFrac: 0.15}, runLen: 8}
	},
	// SPEC libquantum: repeatedly streams a 4 MB array.
	"libquantum": func() Generator {
		return newStream(base{name: "libquantum", footprint: 4 << 20, meanGap: 4, writeFrac: 0.20}, 0, 0)
	},
	// SPLASH-2 fft: butterfly exchanges, strides doubling per stage,
	// 20% writes (the paper's most write-heavy pick).
	"fft": func() Generator {
		return &strided{base: base{name: "fft", footprint: 32 << 20, meanGap: 3, writeFrac: 0.20}, minStride: 4 << 10, maxStride: 1 << 20}
	},
	// SPEC leslie3d: 3-D stencil, 5% writes.
	"leslie3d": func() Generator {
		return &stencil{base: base{name: "leslie3d", footprint: 64 << 20, meanGap: 3, writeFrac: 0.15}, nx: 256, ny: 256, nz: 128}
	},
	// SPEC mcf: network simplex, pointer-heavy with a hot arc set.
	"mcf": func() Generator {
		return &chase{base: base{name: "mcf", footprint: 64 << 20, meanGap: 2, writeFrac: 0.10}, hotFrac: 0.3, hotBytes: 2 << 20, runLen: 8}
	},
	// SPLASH-2 barnes: octree walks, skewed reuse toward the root.
	"barnes": func() Generator {
		return &treewalk{base: base{name: "barnes", footprint: 16 << 20, meanGap: 4, writeFrac: 0.05}, levels: 10, nodeBytes: 128}
	},
	// SPEC cactusADM: large-grid stencil with long reuse distances.
	"cactusADM": func() Generator {
		return &stencil{base: base{name: "cactusADM", footprint: 128 << 20, meanGap: 4, writeFrac: 0.20}, nx: 512, ny: 256, nz: 128}
	},
	// SPEC perlbench: small, cache-resident working set (the paper's
	// low-MPKI example whose CSOPT run takes "only" 32 minutes).
	"perlbench": func() Generator {
		return &mixed{base: base{name: "perlbench", footprint: 8 << 20, meanGap: 5, writeFrac: 0.20}, hotBytes: 1 << 20, hotFrac: 0.95, seqRun: 4}
	},
	// PARSEC streamcluster: streaming points + tiny hot centers.
	"streamcluster": func() Generator {
		return newStream(base{name: "streamcluster", footprint: 48 << 20, meanGap: 3, writeFrac: 0.02}, 256<<10, 5)
	},
	// SPEC lbm: lattice-Boltzmann streaming with heavy writes.
	"lbm": func() Generator {
		return newStream(base{name: "lbm", footprint: 64 << 20, meanGap: 2, writeFrac: 0.45}, 0, 0)
	},
	// SPEC milc: strided lattice QCD sweeps.
	"milc": func() Generator {
		return &strided{base: base{name: "milc", footprint: 96 << 20, meanGap: 3, writeFrac: 0.15}, minStride: 16 << 10, maxStride: 1 << 18}
	},
	// SPEC gcc: moderate hot region plus scattered cold heap.
	"gcc": func() Generator {
		return &mixed{base: base{name: "gcc", footprint: 48 << 20, meanGap: 4, writeFrac: 0.20}, hotBytes: 2 << 20, hotFrac: 0.7, seqRun: 6}
	},
	// SPEC astar: pathfinding over a grid — a warm frontier region
	// plus scattered map lookups.
	"astar": func() Generator {
		return &mixed{base: base{name: "astar", footprint: 24 << 20, meanGap: 3, writeFrac: 0.10}, hotBytes: 512 << 10, hotFrac: 0.6, seqRun: 3}
	},
	// SPEC omnetpp: discrete-event simulation — a hot event heap and
	// pointer-chased message objects.
	"omnetpp": func() Generator {
		return &chase{base: base{name: "omnetpp", footprint: 48 << 20, meanGap: 3, writeFrac: 0.25}, hotBytes: 4 << 20, hotFrac: 0.5, runLen: 4}
	},
	// SPEC bwaves: blast-wave solver — several large arrays streamed
	// with heavy writes.
	"bwaves": func() Generator {
		return newStream(base{name: "bwaves", footprint: 96 << 20, meanGap: 2, writeFrac: 0.30}, 0, 0)
	},
	// SPEC soplex: simplex LP — sparse-matrix row sweeps at varied
	// strides.
	"soplex": func() Generator {
		return &strided{base: base{name: "soplex", footprint: 64 << 20, meanGap: 3, writeFrac: 0.10}, minStride: 1 << 10, maxStride: 64 << 10}
	},
}
