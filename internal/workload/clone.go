package workload

// Cloner is implemented by generators whose position can be captured
// mid-stream: Clone returns an independent generator that continues
// from exactly the current state, emitting the same future accesses as
// the original. The epoch-parallel simulation driver snapshots a
// generator at epoch boundaries so each epoch can regenerate its slice
// of the stream deterministically; a caller-supplied Generator that
// does not implement Cloner forces the driver back to the sequential
// path.
type Cloner interface {
	// Clone returns an independent copy continuing from the current
	// stream position.
	Clone() Generator
}

// All built-in generators are plain value structs (the SplitMix64
// state, the magic-modulo tables, and the walk positions are all
// scalars or arrays by value), so a shallow copy is a complete state
// snapshot.

// Clone implements Cloner.
func (g *stream) Clone() Generator { c := *g; return &c }

// Clone implements Cloner.
func (g *chase) Clone() Generator { c := *g; return &c }

// Clone implements Cloner.
func (g *strided) Clone() Generator { c := *g; return &c }

// Clone implements Cloner.
func (g *stencil) Clone() Generator { c := *g; return &c }

// Clone implements Cloner.
func (g *treewalk) Clone() Generator { c := *g; return &c }

// Clone implements Cloner.
func (g *mixed) Clone() Generator { c := *g; return &c }

// Clone implements Cloner. The synthetic generator is the same kind
// of plain value struct as the builtins (SyntheticConfig holds only
// scalars), so a shallow copy snapshots it completely. Without this,
// user-configured synthetics — and every spec-driven multi-client
// workload composed from them — silently fell back to the sequential
// path under Config.Shards.
func (g *synthetic) Clone() Generator { c := *g; return &c }

// Interface checks: every registered benchmark generator supports
// epoch-boundary snapshotting.
var (
	_ Cloner = (*stream)(nil)
	_ Cloner = (*chase)(nil)
	_ Cloner = (*strided)(nil)
	_ Cloner = (*stencil)(nil)
	_ Cloner = (*treewalk)(nil)
	_ Cloner = (*mixed)(nil)
	_ Cloner = (*synthetic)(nil)
)
