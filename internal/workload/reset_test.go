// The bugfix-audit pin for generator state surviving re-seeding:
// every named workload, the configurable synthetic, and spec-driven
// multi-client generators must replay byte-identical streams after
// Reset(seed) — even with a differently-seeded drain in between — and
// their Clones must continue the stream exactly. External test
// package so the spec package (which imports workload) can join the
// table.
package workload_test

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/workload"
	"github.com/maps-sim/mapsim/internal/workload/spec"
)

// auditGenerators returns every generator kind under audit, by label.
func auditGenerators(t *testing.T) map[string]workload.Generator {
	t.Helper()
	gens := make(map[string]workload.Generator)
	for _, name := range workload.Names() {
		gens[name] = workload.MustNew(name)
	}
	syn, err := workload.NewSynthetic(workload.SyntheticConfig{
		Name:           "custom",
		FootprintBytes: 1 << 20,
		MeanGap:        3,
		WriteFraction:  0.25,
		HotBytes:       64 << 10,
		HotFraction:    0.8,
		SequentialRun:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	gens["synthetic/custom"] = syn

	sp, err := spec.Parse([]byte(specYAML))
	if err != nil {
		t.Fatal(err)
	}
	mc, err := sp.Generator()
	if err != nil {
		t.Fatal(err)
	}
	gens["spec/"+mc.Name()] = mc
	return gens
}

const specYAML = `
name: audit-mix
mean_gap: 4
clients:
  - name: web
    rate_fraction: 0.5
    arrival:
      process: poisson
    footprint: 256KB
    write_fraction: 0.1
    hot_bytes: 16KB
    hot_fraction: 0.9
  - name: batch
    rate_fraction: 0.3
    arrival:
      process: gamma
      cv: 2.5
    footprint: 1MB
    write_fraction: 0.5
    sequential_run: 16
  - name: scan
    rate_fraction: 0.2
    arrival:
      process: fixed
    footprint: 512KB
    stream: true
`

func drain(g workload.Generator, n int) []workload.Access {
	out := make([]workload.Access, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

func sameStream(t *testing.T, label string, a, b []workload.Access) {
	t.Helper()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: access %d = %+v vs %+v; stream not reproducible", label, i, a[i], b[i])
		}
	}
}

// Reset(seed); drain; Reset(other); drain; Reset(seed) must replay
// the first stream byte-for-byte: no state may survive re-seeding.
func TestResetReplaysByteIdenticalStreams(t *testing.T) {
	const n = 4096
	for label, g := range auditGenerators(t) {
		t.Run(label, func(t *testing.T) {
			g.Reset(7)
			first := drain(g, n)
			g.Reset(13) // interleave a different seed to flush out sticky state
			drain(g, n/3)
			g.Reset(7)
			sameStream(t, label, first, drain(g, n))
		})
	}
}

// Distinct seeds must produce distinct streams (a generator that
// ignores its seed would trivially pass the replay test).
func TestResetSeedsDiffer(t *testing.T) {
	const n = 4096
	for label, g := range auditGenerators(t) {
		t.Run(label, func(t *testing.T) {
			g.Reset(7)
			a := drain(g, n)
			g.Reset(13)
			b := drain(g, n)
			for i := range a {
				if a[i] != b[i] {
					return
				}
			}
			t.Fatalf("%s: seeds 7 and 13 produced identical %d-access streams", label, n)
		})
	}
}

// Every audited generator must support mid-stream snapshotting, and
// the clone must continue exactly — including the synthetic, whose
// missing Clone used to silently force spec-driven runs down the
// sequential path under Config.Shards.
func TestCloneContinuesStreamEverywhere(t *testing.T) {
	const n = 2048
	for label, g := range auditGenerators(t) {
		t.Run(label, func(t *testing.T) {
			cl, ok := g.(workload.Cloner)
			if !ok {
				t.Fatalf("%s does not implement workload.Cloner", label)
			}
			g.Reset(5)
			drain(g, n) // advance to an arbitrary mid-stream position
			snap := cl.Clone()
			sameStream(t, label, drain(g, n), drain(snap, n))
		})
	}
}
