package workload

import (
	"fmt"
)

// SyntheticConfig parameterizes a custom generator, exposing the
// knobs the built-in benchmarks are tuned with so users can study
// metadata behaviour for their own access-pattern shapes.
type SyntheticConfig struct {
	// Name labels results; required.
	Name string
	// FootprintBytes is the touched data extent; a positive multiple
	// of 4 KB.
	FootprintBytes uint64
	// MeanGap is the average instruction distance between memory
	// accesses (>= 1).
	MeanGap int
	// WriteFraction is the store ratio in [0, 1].
	WriteFraction float64
	// HotBytes, when nonzero, carves a hot region at the bottom of
	// the footprint receiving HotFraction of the run starts.
	HotBytes    uint64
	HotFraction float64
	// SequentialRun is the mean number of sequential 8 B words
	// touched per run before the next jump (>= 1). Long runs mean
	// high spatial locality; 1 means pure pointer chasing.
	SequentialRun int
	// Stream replaces random jumps with a pure sequential sweep
	// (HotBytes/HotFraction still apply).
	Stream bool
}

func (c *SyntheticConfig) validate() error {
	if c.Name == "" {
		return fmt.Errorf("workload: synthetic config needs a name")
	}
	if c.FootprintBytes == 0 || c.FootprintBytes%4096 != 0 {
		return fmt.Errorf("workload: footprint %d must be a positive multiple of 4096", c.FootprintBytes)
	}
	if c.MeanGap < 1 {
		return fmt.Errorf("workload: mean gap %d must be >= 1", c.MeanGap)
	}
	if c.WriteFraction < 0 || c.WriteFraction > 1 {
		return fmt.Errorf("workload: write fraction %v out of [0,1]", c.WriteFraction)
	}
	if c.HotFraction < 0 || c.HotFraction > 1 {
		return fmt.Errorf("workload: hot fraction %v out of [0,1]", c.HotFraction)
	}
	if c.HotBytes >= c.FootprintBytes {
		return fmt.Errorf("workload: hot region %d must be smaller than the footprint %d", c.HotBytes, c.FootprintBytes)
	}
	if c.HotBytes > 0 && c.HotBytes%block != 0 {
		return fmt.Errorf("workload: hot region %d must be block aligned", c.HotBytes)
	}
	if c.SequentialRun < 1 {
		return fmt.Errorf("workload: sequential run %d must be >= 1", c.SequentialRun)
	}
	return nil
}

// synthetic implements the configurable generator.
type synthetic struct {
	base
	cfg     SyntheticConfig
	hotCut  uint64 // precomputed cutoff(cfg.HotFraction)
	cur     uint64
	rem     int
	hotMod  umod
	coldMod umod
	runMod  umod
}

// NewSynthetic builds a generator from an explicit configuration.
func NewSynthetic(cfg SyntheticConfig) (Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &synthetic{
		base: base{
			name:      cfg.Name,
			footprint: cfg.FootprintBytes,
			meanGap:   cfg.MeanGap,
			writeFrac: cfg.WriteFraction,
		},
		cfg: cfg,
	}
	g.Reset(1)
	return g, nil
}

// Reset implements Generator.
func (g *synthetic) Reset(seed int64) {
	g.reset(seed)
	g.hotCut = cutoff(g.cfg.HotFraction)
	g.cur = 0
	g.rem = 0
	if g.cfg.HotBytes > 0 {
		g.hotMod = newUmod(g.cfg.HotBytes / block)
	}
	g.coldMod = newUmod((g.footprint - g.cfg.HotBytes) / block)
	if g.cfg.SequentialRun > 1 {
		g.runMod = newUmod(uint64(g.cfg.SequentialRun))
	}
}

// Next implements Generator.
func (g *synthetic) Next(a *Access) {
	if g.rem <= 0 {
		switch {
		case g.cfg.Stream:
			// Sequential sweep continues from cur; hot interleave
			// handled below via HotFraction jumps.
			if g.cfg.HotBytes > 0 && g.rng.next() < g.hotCut {
				g.cur = g.hotMod.rem(g.rng.next()) * block
			}
		case g.cfg.HotBytes > 0 && g.rng.next() < g.hotCut:
			g.cur = g.hotMod.rem(g.rng.next()) * block
		default:
			g.cur = g.cfg.HotBytes + g.coldMod.rem(g.rng.next())*block
		}
		g.rem = 1
		if g.cfg.SequentialRun > 1 {
			g.rem += int(g.runMod.rem(g.rng.next()))
		}
	}
	a.Addr = g.cur
	g.cur += word
	if g.cur >= g.footprint {
		g.cur = g.cfg.HotBytes
	}
	g.rem--
	a.Write = g.write()
	a.Gap = g.gap()
}
