package engine

import (
	"math/rand"
	"testing"

	"github.com/maps-sim/mapsim/internal/dram"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/secmem/ctr"
)

// The timing engine and the functional controller maintain counter
// state independently (one for overflow timing, one for real
// encryption). Driving both with the same write sequence must leave
// them with identical counter values — any divergence means one of
// the two models increments differently than the hardware would.
func TestTimingMatchesFunctionalCounters(t *testing.T) {
	layout := memlayout.MustNew(memlayout.PoisonIvy, 1<<20)
	timing := MustNew(Config{Layout: layout, DRAM: dram.MustNew(dram.Default())})
	functional, err := NewFunctional(layout, make([]byte, 16), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	var blk Block
	touched := map[uint64]bool{}
	for i := 0; i < 4000; i++ {
		addr := uint64(rng.Intn(int(layout.DataBytes()/64))) * 64
		timing.Writeback(0, addr)
		if err := functional.Store(addr, &blk); err != nil {
			t.Fatalf("functional store %#x: %v", addr, err)
		}
		touched[layout.CounterAddr(addr)] = true
	}

	var raw [memlayout.BlockSize]byte
	for cAddr := range touched {
		var want ctr.PIBlock
		functional.Memory().Read(cAddr, &raw)
		want.Decode(&raw)

		got := timing.counters[cAddr]
		if got == nil {
			t.Fatalf("timing engine never materialized counter %#x", cAddr)
		}
		if *got != want {
			t.Fatalf("counter %#x diverged:\n timing:     major=%d minors=%v\n functional: major=%d minors=%v",
				cAddr, got.Major, got.Minor[:8], want.Major, want.Minor[:8])
		}
	}
}

// Overflow events must also agree: hammering one block past the minor
// limit re-encrypts the page in both models, leaving the same major
// counter.
func TestTimingMatchesFunctionalOverflow(t *testing.T) {
	layout := memlayout.MustNew(memlayout.PoisonIvy, 1<<20)
	timing := MustNew(Config{Layout: layout, DRAM: dram.MustNew(dram.Default())})
	functional, err := NewFunctional(layout, make([]byte, 16), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	var blk Block
	const writes = 300 // > 2 overflows of the 7-bit minor
	for i := 0; i < writes; i++ {
		timing.Writeback(0, 0)
		if err := functional.Store(0, &blk); err != nil {
			t.Fatal(err)
		}
	}
	cAddr := layout.CounterAddr(0)
	var raw [memlayout.BlockSize]byte
	var want ctr.PIBlock
	functional.Memory().Read(cAddr, &raw)
	want.Decode(&raw)
	got := timing.counters[cAddr]
	if got.Major != want.Major || got.Minor != want.Minor {
		t.Fatalf("after %d writes: timing major=%d minor0=%d, functional major=%d minor0=%d",
			writes, got.Major, got.Minor[0], want.Major, want.Minor[0])
	}
	if timing.Stats().PageReencryptions != uint64(got.Major) {
		t.Errorf("re-encryptions %d != major counter %d", timing.Stats().PageReencryptions, got.Major)
	}
	// And the functional data is still loadable after re-encryptions.
	var out Block
	if err := functional.Load(0, &out); err != nil {
		t.Fatalf("load after overflows: %v", err)
	}
}
