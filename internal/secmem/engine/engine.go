// Package engine implements the memory encryption engine (MEE): the
// memory-controller logic that turns every LLC miss or writeback into
// the data access plus the counter, hash, and integrity-tree traffic
// that secure memory requires, filtered through an optional metadata
// cache.
//
// The engine follows the organization MAPS assumes:
//
//   - Reads fetch the data block and, in parallel, its counter; a
//     counter miss triggers a verification walk up the Bonsai Merkle
//     Tree that stops at the first cached (already-verified) ancestor.
//     The data hash is fetched for integrity verification.
//   - Writes (dirty LLC evictions) increment the counter and update
//     the data hash in the metadata cache; the tree update is deferred
//     until the dirty counter block is itself evicted, at which point
//     the update propagates one level per eviction (the paper's §IV-E
//     observation that metadata caches delay tree writes).
//   - With no metadata cache, every metadata access goes to memory
//     immediately, including tree writes right after counter writes.
//   - With speculation (PoisonIvy-style), verification latency is off
//     the critical path; decryption still needs the counter, so a
//     counter miss always costs latency.
package engine

import (
	"fmt"

	"github.com/maps-sim/mapsim/internal/dram"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/secmem/ctr"
	"github.com/maps-sim/mapsim/internal/trace"
)

// Config assembles an engine.
type Config struct {
	// Layout maps data addresses to their metadata.
	Layout *memlayout.Layout
	// Meta is the metadata cache; nil simulates no metadata cache.
	Meta *metacache.MetaCache
	// DRAM provides memory timing and energy; required.
	DRAM *dram.Memory
	// Speculation hides verification latency (PoisonIvy). Without
	// it, tree and hash verification serialize with the read.
	Speculation bool
	// SpeculationWindow bounds how much verification latency
	// speculation can hide, modelling the finite epoch/buffer depth
	// of PoisonIvy-style designs: verification beyond the window
	// stalls the pipeline. Zero means unbounded (the paper's default
	// assumption); ignored when Speculation is false.
	SpeculationWindow uint64
	// HashLatency is the HMAC engine latency in cycles (Table I: 40).
	HashLatency uint64
	// HashThroughputCycles is the HMAC engine issue interval: one
	// hash may start per this many cycles (Table I: one per DRAM
	// cycle ≈ 4 CPU cycles at 3 GHz / DDR3-1600). Zero selects 4.
	// Verification bursts that outpace the engine queue behind it.
	HashThroughputCycles uint64
	// Tap, when set, observes every metadata block request the
	// engine makes (for reuse analysis and trace recording). Cost is
	// the number of memory accesses the request itself triggered.
	Tap func(a trace.Access)

	// SeedCounters, when non-nil, initializes the logical counter
	// state instead of the all-zero map — the epoch-parallel driver
	// hands each epoch's engine the counter snapshot the sequential
	// run would have reached at the epoch boundary. The engine takes
	// ownership of the map; pass a private copy (CloneCounters).
	SeedCounters map[uint64]*ctr.PIBlock
	// SeedHashReady initializes the HMAC engine's next-issue cycle in
	// the new engine's cycle frame (an epoch's carried-over, rebased
	// hash-pipeline backlog). Zero — an idle hash engine — is the
	// ordinary fresh start.
	SeedHashReady uint64
}

// MemTraffic counts memory accesses by purpose.
type MemTraffic struct {
	DataReads     uint64
	DataWrites    uint64
	CounterReads  uint64
	CounterWrites uint64
	HashReads     uint64
	HashWrites    uint64
	TreeReads     uint64
	TreeWrites    uint64
}

// Total sums all traffic.
func (m MemTraffic) Total() uint64 {
	return m.DataReads + m.DataWrites + m.CounterReads + m.CounterWrites +
		m.HashReads + m.HashWrites + m.TreeReads + m.TreeWrites
}

// Metadata sums metadata-only traffic.
func (m MemTraffic) Metadata() uint64 {
	return m.Total() - m.DataReads - m.DataWrites
}

// Stats aggregates engine activity.
type Stats struct {
	Reads             uint64 // data read requests served
	Writebacks        uint64 // data writeback requests served
	Mem               MemTraffic
	PageReencryptions uint64 // split-counter minor overflows
	TreeWalkLevels    uint64 // tree nodes touched during verification
	SpecWindowStalls  uint64 // reads whose verification outran the window
}

// Engine is the behavioral/timing MEE.
type Engine struct {
	cfg     Config
	layout  *memlayout.Layout
	meta    *metacache.MetaCache
	dram    *dram.Memory
	stats   Stats
	evQueue []metacache.Evicted
	// hashReadyAt models the HMAC engine's issue throughput: the
	// cycle at which it can accept the next computation.
	hashReadyAt uint64

	// counters tracks per-block logical counter values so split-
	// counter overflows (page re-encryptions) happen exactly when
	// they would in hardware. Allocated lazily per counter block.
	counters map[uint64]*ctr.PIBlock
}

// New builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Layout == nil {
		return nil, fmt.Errorf("engine: layout is required")
	}
	if cfg.DRAM == nil {
		return nil, fmt.Errorf("engine: DRAM model is required")
	}
	if cfg.HashLatency == 0 {
		cfg.HashLatency = 40
	}
	if cfg.HashThroughputCycles == 0 {
		cfg.HashThroughputCycles = 4
	}
	counters := cfg.SeedCounters
	if counters == nil {
		counters = make(map[uint64]*ctr.PIBlock)
	}
	return &Engine{
		cfg:         cfg,
		layout:      cfg.Layout,
		meta:        cfg.Meta,
		dram:        cfg.DRAM,
		hashReadyAt: cfg.SeedHashReady,
		counters:    counters,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes statistics (cache/counter state persists) and the
// metadata cache counters with it.
func (e *Engine) ResetStats() {
	e.stats = Stats{}
	if e.meta != nil {
		e.meta.ResetStats()
	}
	e.dram.ResetStats()
}

// Meta exposes the metadata cache (nil when absent).
func (e *Engine) Meta() *metacache.MetaCache { return e.meta }

func (e *Engine) tap(addr uint64, kind memlayout.Kind, write bool, cost uint64) {
	if e.cfg.Tap == nil {
		return
	}
	c := cost
	if c > 255 {
		c = 255
	}
	e.cfg.Tap(trace.Access{Addr: addr, Write: write, Class: uint8(kind), Cost: uint8(c)})
}

// hashCompute charges one HMAC computation starting no earlier than
// `now`, returning its contribution to a serialized latency chain.
// Back-to-back verifications queue behind the engine's issue rate.
func (e *Engine) hashCompute(now uint64) uint64 {
	start := now
	if e.hashReadyAt > start {
		start = e.hashReadyAt
	}
	e.hashReadyAt = start + e.cfg.HashThroughputCycles
	return (start - now) + e.cfg.HashLatency
}

// Read services an LLC read miss for the data block at dataAddr,
// returning the critical-path latency in cycles.
func (e *Engine) Read(now uint64, dataAddr uint64) (latency uint64) {
	dataAddr = memlayout.BlockOf(dataAddr)
	e.stats.Reads++

	// Data fetch and counter fetch proceed in parallel.
	dataLat := e.dram.Access(now, dataAddr, false)
	e.stats.Mem.DataReads++

	counterLat, verifyLat := e.fetchCounter(now, dataAddr, false)

	// Data hash for integrity verification.
	hashLat := e.fetchHash(now, dataAddr)

	crit := dataLat
	if counterLat > crit {
		crit = counterLat
	}
	fullVerify := verifyLat + hashLat + e.hashCompute(now)
	switch {
	case !e.cfg.Speculation:
		// Verification serializes: tree hashes plus the data hash
		// check (fetch + one HMAC computation).
		crit += fullVerify
	case e.cfg.SpeculationWindow > 0 && fullVerify > e.cfg.SpeculationWindow:
		// The speculation window overflowed: the pipeline stalls for
		// the verification tail it could not buffer.
		crit += fullVerify - e.cfg.SpeculationWindow
		e.stats.SpecWindowStalls++
	}
	return crit
}

// Writeback services a dirty-data eviction from the LLC. The work is
// off the critical path; the returned occupancy latency is
// informational.
func (e *Engine) Writeback(now uint64, dataAddr uint64) (latency uint64) {
	dataAddr = memlayout.BlockOf(dataAddr)
	e.stats.Writebacks++

	// Counter increment: the counter block must be present (and
	// verified) to re-encrypt.
	cAddr := e.layout.CounterAddr(dataAddr)
	slot := e.layout.CounterSlot(dataAddr)
	switch {
	case e.meta != nil && e.meta.Allows(memlayout.KindCounter):
		cost := uint64(0)
		res := e.meta.Access(cAddr, memlayout.KindCounter, 0, true, -1)
		e.drainEvictions(now, res.Evicted)
		if !res.Hit {
			// Fetch and verify before modifying; the block is now
			// dirty in the cache.
			latency += e.dram.Access(now, cAddr, false)
			e.stats.Mem.CounterReads++
			cost = 1
			_, walkCost := e.verifyAncestors(now, cAddr)
			cost += walkCost
		}
		e.tap(cAddr, memlayout.KindCounter, true, cost)
	case e.meta != nil:
		// Counters bypass the cache: read-modify-write immediately
		// (verifying through the — possibly cached — tree) and push
		// the tree update out right away.
		e.meta.Access(cAddr, memlayout.KindCounter, 0, true, -1) // stats only
		latency += e.dram.Access(now, cAddr, false)
		e.dram.Access(now, cAddr, true)
		e.stats.Mem.CounterReads++
		e.stats.Mem.CounterWrites++
		_, walkCost := e.verifyAncestors(now, cAddr)
		e.tap(cAddr, memlayout.KindCounter, true, 2+walkCost)
		e.updateParent(now, cAddr)
	default:
		// No cache: read-modify-write the counter and update every
		// tree level immediately.
		latency += e.dram.Access(now, cAddr, false)
		e.dram.Access(now, cAddr, true)
		e.stats.Mem.CounterReads++
		e.stats.Mem.CounterWrites++
		e.tap(cAddr, memlayout.KindCounter, true, 2)
		for node := e.layout.Parent(cAddr); node != memlayout.RootAddr; node = e.layout.Parent(node) {
			e.dram.Access(now, node, true)
			e.stats.Mem.TreeWrites++
			e.stats.TreeWalkLevels++
			e.tap(node, memlayout.KindTree, true, 1)
		}
	}

	// Advance the logical counter; a minor overflow re-encrypts the
	// whole page (off the critical path but heavy on memory traffic).
	if e.increment(cAddr, slot) {
		e.stats.PageReencryptions++
		e.reencryptPage(now, dataAddr)
	}

	// Write the (re-encrypted) data block.
	latency += e.dram.Access(now, dataAddr, true)
	e.stats.Mem.DataWrites++

	// Update the data hash.
	hAddr := e.layout.HashAddr(dataAddr)
	hSlot := e.layout.HashSlot(dataAddr)
	if e.meta != nil && e.meta.Allows(memlayout.KindHash) {
		cost := uint64(0)
		res := e.meta.Access(hAddr, memlayout.KindHash, 0, true, hSlot)
		e.drainEvictions(now, res.Evicted)
		if !res.Hit && !res.TagHit {
			// Without partial writes the cache fetched nothing; the
			// whole block must come from memory before the update.
			// With partial writes the placeholder absorbs the write.
			if !e.partialWritesOn() {
				latency += e.dram.Access(now, hAddr, false)
				e.stats.Mem.HashReads++
				cost = 1
			}
		}
		e.tap(hAddr, memlayout.KindHash, true, cost)
	} else {
		if e.meta != nil {
			e.meta.Access(hAddr, memlayout.KindHash, 0, true, hSlot) // stats only
		}
		e.dram.Access(now, hAddr, false)
		e.dram.Access(now, hAddr, true)
		e.stats.Mem.HashReads++
		e.stats.Mem.HashWrites++
		e.tap(hAddr, memlayout.KindHash, true, 2)
	}
	return latency
}

func (e *Engine) partialWritesOn() bool {
	return e.meta != nil && e.meta.PartialWrites()
}

// fetchCounter obtains the counter protecting dataAddr for a read.
// It returns the decryption-critical latency and the
// verification-only latency (hidden under speculation).
func (e *Engine) fetchCounter(now uint64, dataAddr uint64, forWrite bool) (critLat, verifyLat uint64) {
	cAddr := e.layout.CounterAddr(dataAddr)
	if e.meta == nil {
		critLat = e.dram.Access(now, cAddr, false)
		e.stats.Mem.CounterReads++
		e.tap(cAddr, memlayout.KindCounter, forWrite, uint64(1+e.layout.TreeLevels()))
		for node := e.layout.Parent(cAddr); node != memlayout.RootAddr; node = e.layout.Parent(node) {
			verifyLat += e.dram.Access(now, node, false) + e.hashCompute(now)
			e.stats.Mem.TreeReads++
			e.stats.TreeWalkLevels++
			e.tap(node, memlayout.KindTree, false, 1)
		}
		return critLat, verifyLat
	}

	if !e.meta.Allows(memlayout.KindCounter) {
		// Bypassed counters always come from memory, verified
		// through the (possibly cached) tree.
		e.meta.Access(cAddr, memlayout.KindCounter, 0, forWrite, -1) // stats only
		critLat = e.dram.Access(now, cAddr, false)
		e.stats.Mem.CounterReads++
		var walkCost uint64
		verifyLat, walkCost = e.verifyAncestors(now, cAddr)
		e.tap(cAddr, memlayout.KindCounter, forWrite, 1+walkCost)
		return critLat, verifyLat
	}

	cost := uint64(0)
	res := e.meta.Access(cAddr, memlayout.KindCounter, 0, forWrite, -1)
	e.drainEvictions(now, res.Evicted)
	if !res.Hit {
		critLat = e.dram.Access(now, cAddr, false)
		e.stats.Mem.CounterReads++
		cost = 1
		var walkCost uint64
		verifyLat, walkCost = e.verifyAncestors(now, cAddr)
		cost += walkCost
	}
	e.tap(cAddr, memlayout.KindCounter, forWrite, cost)
	return critLat, verifyLat
}

// fetchHash obtains the data hash for dataAddr (read path), returning
// the fetch latency (zero on a metadata-cache hit).
func (e *Engine) fetchHash(now uint64, dataAddr uint64) (lat uint64) {
	hAddr := e.layout.HashAddr(dataAddr)
	hSlot := e.layout.HashSlot(dataAddr)
	if e.meta == nil {
		lat = e.dram.Access(now, hAddr, false)
		e.stats.Mem.HashReads++
		e.tap(hAddr, memlayout.KindHash, false, 1)
		return lat
	}
	cost := uint64(0)
	res := e.meta.Access(hAddr, memlayout.KindHash, 0, false, hSlot)
	e.drainEvictions(now, res.Evicted)
	if !res.Hit {
		lat = e.dram.Access(now, hAddr, false)
		e.stats.Mem.HashReads++
		cost = 1
	}
	e.tap(hAddr, memlayout.KindHash, false, cost)
	return lat
}

// verifyAncestors walks the tree upward from a freshly fetched
// counter or tree block, fetching nodes until one is already cached
// (hence verified) or the on-chip root is reached. It returns the
// serialized verification latency and the number of memory accesses
// performed.
func (e *Engine) verifyAncestors(now uint64, addr uint64) (lat, accesses uint64) {
	// The chain iterator decodes addr once; re-deriving each node's
	// level via Parent + Classify cost two layout decodes per level on
	// the counter-miss path.
	walk := e.layout.WalkFrom(addr)
	for {
		node, level, ok := walk.Next()
		if !ok {
			break
		}
		e.stats.TreeWalkLevels++
		cost := uint64(0)
		res := e.meta.Access(node, memlayout.KindTree, level, false, -1)
		e.drainEvictions(now, res.Evicted)
		hit := res.Hit
		if !hit {
			lat += e.dram.Access(now, node, false) + e.hashCompute(now)
			e.stats.Mem.TreeReads++
			accesses++
			cost = 1
		}
		e.tap(node, memlayout.KindTree, false, cost)
		if hit {
			break
		}
	}
	return lat, accesses
}

// drainEvictions handles dirty blocks displaced from the metadata
// cache: each is written to memory and, for counters and tree nodes,
// propagates an update into its parent tree node — which may displace
// further blocks, hence the explicit queue.
func (e *Engine) drainEvictions(now uint64, evicted []metacache.Evicted) {
	if len(evicted) == 0 {
		return
	}
	// Consume via an index instead of re-slicing the front so the
	// queue's capacity is reused across accesses (zero steady-state
	// allocations); handleEviction may append while we drain.
	e.evQueue = append(e.evQueue[:0], evicted...)
	for head := 0; head < len(e.evQueue); head++ {
		if head > 1<<20 {
			panic("engine: eviction cascade did not terminate")
		}
		e.handleEviction(now, e.evQueue[head])
	}
	e.evQueue = e.evQueue[:0]
}

func (e *Engine) handleEviction(now uint64, ev metacache.Evicted) {
	switch ev.Kind {
	case memlayout.KindCounter:
		e.dram.Access(now, ev.Addr, true)
		e.stats.Mem.CounterWrites++
		e.updateParent(now, ev.Addr)
	case memlayout.KindTree:
		if ev.Partial {
			// Unfilled slots must be read from memory before the
			// block can be written back whole.
			e.dram.Access(now, ev.Addr, false)
			e.stats.Mem.TreeReads++
		}
		e.dram.Access(now, ev.Addr, true)
		e.stats.Mem.TreeWrites++
		e.updateParent(now, ev.Addr)
	case memlayout.KindHash:
		if ev.Partial {
			e.dram.Access(now, ev.Addr, false)
			e.stats.Mem.HashReads++
		}
		e.dram.Access(now, ev.Addr, true)
		e.stats.Mem.HashWrites++
	}
}

// updateParent records the new HMAC of a written-back counter or
// tree block into its parent node (the on-chip root is free).
func (e *Engine) updateParent(now uint64, addr uint64) {
	parent, level, slot := e.layout.ParentInfo(addr)
	if parent == memlayout.RootAddr {
		return
	}
	if !e.meta.Allows(memlayout.KindTree) {
		// Tree nodes bypass the cache: push the update through every
		// level immediately, as in the cache-less organization.
		for node := parent; node != memlayout.RootAddr; node = e.layout.Parent(node) {
			e.meta.Access(node, memlayout.KindTree, 0, true, -1) // stats only
			e.dram.Access(now, node, true)
			e.stats.Mem.TreeWrites++
			e.tap(node, memlayout.KindTree, true, 1)
		}
		return
	}
	cost := uint64(0)
	res := e.meta.Access(parent, memlayout.KindTree, level, true, slot)
	if !res.Hit && !res.TagHit && !e.partialWritesOn() {
		// Fetch the parent before updating one of its slots.
		e.dram.Access(now, parent, false)
		e.stats.Mem.TreeReads++
		cost = 1
	}
	e.tap(parent, memlayout.KindTree, true, cost)
	// Nested evictions join the queue currently being drained.
	e.evQueue = append(e.evQueue, res.Evicted...)
}

// increment advances the logical counter for (counter block, slot)
// and reports a minor-counter overflow. SGX-organization layouts use
// 64-bit counters that never overflow.
func (e *Engine) increment(cAddr uint64, slot int) bool {
	if e.layout.Organization() == memlayout.SGX {
		return false
	}
	blk := e.counters[cAddr]
	if blk == nil {
		blk = &ctr.PIBlock{}
		e.counters[cAddr] = blk
	}
	return blk.Increment(slot)
}

// reencryptPage models a split-counter overflow: every block of the
// page is read, re-encrypted under the new major counter, and written
// back.
func (e *Engine) reencryptPage(now uint64, dataAddr uint64) {
	page := memlayout.PageOf(dataAddr)
	for b := uint64(0); b < memlayout.BlocksPerPage; b++ {
		addr := page + b*memlayout.BlockSize
		e.dram.Access(now, addr, false)
		e.dram.Access(now, addr, true)
		e.stats.Mem.DataReads++
		e.stats.Mem.DataWrites++
	}
}

// Flush drains all dirty metadata-cache state to memory, completing
// the deferred tree updates so accounting balances at simulation end.
// Draining re-dirties parent tree nodes inside the cache, so the
// flush iterates until the cache is clean; each round moves updates
// at least one level up the tree, bounding the iteration count.
func (e *Engine) Flush(now uint64) {
	if e.meta == nil {
		return
	}
	for round := 0; ; round++ {
		dirty := e.meta.Flush()
		if len(dirty) == 0 {
			return
		}
		if round > e.layout.TreeLevels()+2 {
			panic("engine: flush did not converge")
		}
		for _, ev := range dirty {
			e.drainEvictions(now, []metacache.Evicted{ev})
		}
	}
}
