package engine

import (
	"bytes"
	"errors"
	"testing"

	"github.com/maps-sim/mapsim/internal/memlayout"
)

func newFunctional(t testing.TB, org memlayout.Organization) *Functional {
	t.Helper()
	layout := memlayout.MustNew(org, 4<<20)
	f, err := NewFunctional(layout, bytes.Repeat([]byte{1}, 16), []byte("mac key"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func fill(b *Block, seed byte) {
	for i := range b {
		b[i] = seed + byte(i)
	}
}

func TestFunctionalRejectsHugeLayouts(t *testing.T) {
	layout := memlayout.MustNew(memlayout.PoisonIvy, 512<<20)
	if _, err := NewFunctional(layout, make([]byte, 16), nil); err == nil {
		t.Error("512MB functional layout accepted")
	}
	layout2 := memlayout.MustNew(memlayout.PoisonIvy, 1<<20)
	if _, err := NewFunctional(layout2, make([]byte, 5), nil); err == nil {
		t.Error("bad AES key accepted")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	for _, org := range []memlayout.Organization{memlayout.PoisonIvy, memlayout.SGX} {
		f := newFunctional(t, org)
		var in, out Block
		fill(&in, 7)
		if err := f.Store(4096, &in); err != nil {
			t.Fatalf("%v store: %v", org, err)
		}
		if err := f.Load(4096, &out); err != nil {
			t.Fatalf("%v load: %v", org, err)
		}
		if in != out {
			t.Fatalf("%v round trip corrupted data", org)
		}
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	f := newFunctional(t, memlayout.PoisonIvy)
	var in Block
	fill(&in, 3)
	if err := f.Store(0, &in); err != nil {
		t.Fatal(err)
	}
	stored := f.Memory().Snapshot(0)
	if stored == in {
		t.Fatal("data stored in plaintext")
	}
}

func TestSameDataTwiceDifferentCiphertext(t *testing.T) {
	// The counter bump guarantees fresh pads: storing identical
	// plaintext twice must yield different ciphertexts.
	f := newFunctional(t, memlayout.PoisonIvy)
	var in Block
	fill(&in, 9)
	if err := f.Store(0, &in); err != nil {
		t.Fatal(err)
	}
	first := f.Memory().Snapshot(0)
	if err := f.Store(0, &in); err != nil {
		t.Fatal(err)
	}
	second := f.Memory().Snapshot(0)
	if first == second {
		t.Fatal("pad reuse: identical ciphertexts across writes")
	}
	var out Block
	if err := f.Load(0, &out); err != nil || out != in {
		t.Fatalf("load after rewrite: %v", err)
	}
}

func TestLoadUninitialized(t *testing.T) {
	f := newFunctional(t, memlayout.PoisonIvy)
	var out Block
	if err := f.Load(0, &out); err == nil {
		t.Error("loading never-written block should fail")
	}
	if err := f.Load(f.Layout().DataBytes(), &out); err == nil {
		t.Error("out-of-range load should fail")
	}
	if err := f.Store(f.Layout().DataBytes(), &out); err == nil {
		t.Error("out-of-range store should fail")
	}
}

func TestDataTamperDetected(t *testing.T) {
	f := newFunctional(t, memlayout.PoisonIvy)
	var in, out Block
	fill(&in, 1)
	if err := f.Store(8192, &in); err != nil {
		t.Fatal(err)
	}
	f.Memory().FlipBit(8192, 100)
	err := f.Load(8192, &out)
	var ierr *IntegrityError
	if !errors.As(err, &ierr) {
		t.Fatalf("tampered data loaded: %v", err)
	}
	if ierr.Error() == "" {
		t.Error("empty error text")
	}
}

func TestHashTamperDetected(t *testing.T) {
	f := newFunctional(t, memlayout.PoisonIvy)
	var in, out Block
	fill(&in, 2)
	if err := f.Store(0, &in); err != nil {
		t.Fatal(err)
	}
	f.Memory().FlipBit(f.Layout().HashAddr(0), 3)
	if err := f.Load(0, &out); err == nil {
		t.Fatal("tampered hash accepted")
	}
}

func TestCounterTamperDetected(t *testing.T) {
	f := newFunctional(t, memlayout.PoisonIvy)
	var in, out Block
	fill(&in, 4)
	if err := f.Store(0, &in); err != nil {
		t.Fatal(err)
	}
	f.Memory().FlipBit(f.Layout().CounterAddr(0), 9)
	if err := f.Load(0, &out); err == nil {
		t.Fatal("tampered counter accepted")
	}
	// Stores must also refuse to trust a tampered counter.
	if err := f.Store(0, &in); err == nil {
		t.Fatal("store trusted a tampered counter")
	}
}

func TestReplayAttackDetected(t *testing.T) {
	f := newFunctional(t, memlayout.PoisonIvy)
	var v1, v2, out Block
	fill(&v1, 5)
	fill(&v2, 6)
	if err := f.Store(0, &v1); err != nil {
		t.Fatal(err)
	}
	// Attacker snapshots data + hash + counter.
	dataSnap := f.Memory().Snapshot(0)
	hashSnap := f.Memory().Snapshot(f.Layout().HashAddr(0))
	ctrSnap := f.Memory().Snapshot(f.Layout().CounterAddr(0))

	if err := f.Store(0, &v2); err != nil {
		t.Fatal(err)
	}
	// Replay all three: only the tree (rooted on chip) can catch it.
	f.Memory().Restore(0, dataSnap)
	f.Memory().Restore(f.Layout().HashAddr(0), hashSnap)
	f.Memory().Restore(f.Layout().CounterAddr(0), ctrSnap)
	if err := f.Load(0, &out); err == nil {
		t.Fatal("full replay (data+hash+counter) accepted — tree failed")
	}
}

func TestPageReencryptionPreservesData(t *testing.T) {
	f := newFunctional(t, memlayout.PoisonIvy)
	// Populate several blocks of one page.
	blocks := map[uint64]Block{}
	for b := uint64(0); b < 8; b++ {
		var in Block
		fill(&in, byte(b))
		addr := b * memlayout.BlockSize
		if err := f.Store(addr, &in); err != nil {
			t.Fatal(err)
		}
		blocks[addr] = in
	}
	// Overflow block 0's minor counter: 127 more stores.
	var v Block
	fill(&v, 0xAA)
	for i := 0; i < 127; i++ {
		if err := f.Store(0, &v); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
	}
	blocks[0] = v
	// All blocks still load correctly after re-encryption.
	for addr, want := range blocks {
		var out Block
		if err := f.Load(addr, &out); err != nil {
			t.Fatalf("load %#x after re-encryption: %v", addr, err)
		}
		if out != want {
			t.Fatalf("block %#x corrupted by re-encryption", addr)
		}
	}
}

func TestRootChangesOnEveryStore(t *testing.T) {
	f := newFunctional(t, memlayout.PoisonIvy)
	var in Block
	roots := map[[8]byte]bool{f.Root(): true}
	for i := 0; i < 5; i++ {
		fill(&in, byte(i))
		if err := f.Store(uint64(i)*memlayout.PageSize, &in); err != nil {
			t.Fatal(err)
		}
		r := f.Root()
		if roots[r] {
			t.Fatalf("root repeated after store %d", i)
		}
		roots[r] = true
	}
}
