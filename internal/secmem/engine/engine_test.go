package engine

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/dram"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/trace"
)

func newEngine(t testing.TB, metaSize int, partial bool) (*Engine, *memlayout.Layout) {
	t.Helper()
	layout := memlayout.MustNew(memlayout.PoisonIvy, 64<<20)
	var meta *metacache.MetaCache
	if metaSize > 0 {
		meta = metacache.MustNew(metacache.Config{
			Size: metaSize, Ways: 8, Policy: policy.NewLRU(), PartialWrites: partial,
		})
	}
	e := MustNew(Config{
		Layout: layout,
		Meta:   meta,
		DRAM:   dram.MustNew(dram.Default()),
	})
	return e, layout
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing layout accepted")
	}
	layout := memlayout.MustNew(memlayout.PoisonIvy, 1<<20)
	if _, err := New(Config{Layout: layout}); err == nil {
		t.Error("missing DRAM accepted")
	}
	e := MustNew(Config{Layout: layout, DRAM: dram.MustNew(dram.Default())})
	if e.cfg.HashLatency != 40 {
		t.Errorf("default hash latency = %d", e.cfg.HashLatency)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(Config{})
}

func TestReadNoCacheTraffic(t *testing.T) {
	e, layout := newEngine(t, 0, false)
	e.Read(0, 4096)
	s := e.Stats()
	// 1 data + 1 counter + full tree walk + 1 hash.
	if s.Mem.DataReads != 1 || s.Mem.CounterReads != 1 || s.Mem.HashReads != 1 {
		t.Errorf("traffic: %+v", s.Mem)
	}
	if s.Mem.TreeReads != uint64(layout.TreeLevels()) {
		t.Errorf("tree reads = %d, want %d", s.Mem.TreeReads, layout.TreeLevels())
	}
	if s.Reads != 1 {
		t.Errorf("reads = %d", s.Reads)
	}
}

func TestReadWithCacheSecondAccessFree(t *testing.T) {
	e, _ := newEngine(t, 64<<10, false)
	e.Read(0, 4096)
	before := e.Stats().Mem
	e.Read(1000, 4096+64) // same page, same counter/hash blocks? 4160 is same page, same hash block
	after := e.Stats().Mem
	if after.CounterReads != before.CounterReads {
		t.Error("cached counter refetched")
	}
	if after.TreeReads != before.TreeReads {
		t.Error("tree walked despite cached counter")
	}
	if after.HashReads != before.HashReads {
		t.Error("cached hash refetched")
	}
	if after.DataReads != before.DataReads+1 {
		t.Error("data read missing")
	}
}

func TestSpeculationHidesVerification(t *testing.T) {
	layout := memlayout.MustNew(memlayout.PoisonIvy, 64<<20)
	mk := func(spec bool) uint64 {
		e := MustNew(Config{Layout: layout, DRAM: dram.MustNew(dram.Default()), Speculation: spec})
		return e.Read(0, 4096)
	}
	if spec, noSpec := mk(true), mk(false); spec >= noSpec {
		t.Errorf("speculation latency %d should be below non-speculative %d", spec, noSpec)
	}
}

func TestTreeWalkStopsAtCachedAncestor(t *testing.T) {
	e, layout := newEngine(t, 1<<20, false)
	// First read walks the full tree and caches every node.
	e.Read(0, 0)
	walked := e.Stats().TreeWalkLevels
	if walked != uint64(layout.TreeLevels()) {
		t.Fatalf("first walk touched %d levels, want %d", walked, layout.TreeLevels())
	}
	// A read in a distant page shares only upper levels: the walk
	// must stop fetching at the first shared cached node (the hit
	// itself is visited but not fetched).
	reads := e.Stats().Mem.TreeReads
	e.Read(0, 32<<20)
	fetched := e.Stats().Mem.TreeReads - reads
	if fetched == 0 || fetched >= uint64(layout.TreeLevels()) {
		t.Errorf("second walk fetched %d levels, want in (0, %d)", fetched, layout.TreeLevels())
	}
}

func TestWritebackDefersTreeUpdate(t *testing.T) {
	e, _ := newEngine(t, 1<<20, false)
	e.Writeback(0, 4096)
	s := e.Stats()
	// With a big metadata cache, the dirty counter stays resident: no
	// tree writes yet.
	if s.Mem.TreeWrites != 0 {
		t.Errorf("tree writes = %d before any counter eviction", s.Mem.TreeWrites)
	}
	if s.Mem.DataWrites != 1 {
		t.Errorf("data writes = %d", s.Mem.DataWrites)
	}
	// Flush forces the deferred updates out.
	e.Flush(1000)
	s = e.Stats()
	if s.Mem.CounterWrites == 0 {
		t.Error("flush did not write back the dirty counter")
	}
	if s.Mem.TreeWrites == 0 {
		t.Error("flush did not propagate the tree update")
	}
}

func TestWritebackNoCacheImmediateTreeWrites(t *testing.T) {
	e, layout := newEngine(t, 0, false)
	e.Writeback(0, 4096)
	s := e.Stats()
	if s.Mem.TreeWrites != uint64(layout.TreeLevels()) {
		t.Errorf("tree writes = %d, want %d (immediate)", s.Mem.TreeWrites, layout.TreeLevels())
	}
	if s.Mem.CounterWrites != 1 || s.Mem.CounterReads != 1 {
		t.Errorf("counter RMW traffic: %+v", s.Mem)
	}
	if s.Mem.HashWrites != 1 {
		t.Errorf("hash writes = %d", s.Mem.HashWrites)
	}
}

func TestPartialWritesAvoidHashFetch(t *testing.T) {
	run := func(partial bool) MemTraffic {
		e, _ := newEngine(t, 64<<10, partial)
		e.Writeback(0, 4096)
		return e.Stats().Mem
	}
	with := run(true)
	without := run(false)
	if with.HashReads != 0 {
		t.Errorf("partial writes still fetched the hash block: %+v", with)
	}
	if without.HashReads != 1 {
		t.Errorf("non-partial write miss should fetch the hash block: %+v", without)
	}
}

func TestPartialHashEvictionPaysFillRead(t *testing.T) {
	// Tiny cache so the partial hash block gets evicted while still
	// incomplete.
	e, _ := newEngine(t, 8*64, true)
	e.Writeback(0, 0) // partial hash placeholder for block 0
	// Push enough other metadata through to evict it.
	for i := uint64(1); i < 40; i++ {
		e.Read(0, i*memlayout.PageSize*8)
	}
	e.Flush(0)
	s := e.Stats()
	if s.Mem.HashReads == 0 {
		t.Error("incomplete hash block written back without its fill read")
	}
	if s.Mem.HashWrites == 0 {
		t.Error("dirty hash never written back")
	}
}

func TestPageReencryptionOnOverflow(t *testing.T) {
	e, _ := newEngine(t, 64<<10, false)
	// 127 writes to the same block: minor counter reaches its limit.
	for i := 0; i < 127; i++ {
		e.Writeback(0, 0)
	}
	if e.Stats().PageReencryptions != 0 {
		t.Fatalf("premature re-encryption after 127 writes")
	}
	e.Writeback(0, 0)
	s := e.Stats()
	if s.PageReencryptions != 1 {
		t.Fatalf("re-encryptions = %d after 128 writes", s.PageReencryptions)
	}
	// The page re-encryption reads+writes all 64 blocks.
	if s.Mem.DataReads < memlayout.BlocksPerPage {
		t.Errorf("re-encryption data reads = %d", s.Mem.DataReads)
	}
}

func TestSGXOrganizationNeverOverflows(t *testing.T) {
	layout := memlayout.MustNew(memlayout.SGX, 16<<20)
	e := MustNew(Config{Layout: layout, DRAM: dram.MustNew(dram.Default())})
	for i := 0; i < 300; i++ {
		e.Writeback(0, 0)
	}
	if e.Stats().PageReencryptions != 0 {
		t.Error("SGX counters should not overflow")
	}
}

func TestTapObservesAllMetadata(t *testing.T) {
	layout := memlayout.MustNew(memlayout.PoisonIvy, 64<<20)
	var seen []trace.Access
	e := MustNew(Config{
		Layout: layout,
		DRAM:   dram.MustNew(dram.Default()),
		Tap:    func(a trace.Access) { seen = append(seen, a) },
	})
	e.Read(0, 4096)
	kinds := map[memlayout.Kind]int{}
	for _, a := range seen {
		kinds[memlayout.Kind(a.Class)]++
	}
	if kinds[memlayout.KindCounter] != 1 || kinds[memlayout.KindHash] != 1 {
		t.Errorf("tap kinds: %v", kinds)
	}
	if kinds[memlayout.KindTree] != layout.TreeLevels() {
		t.Errorf("tree taps = %d, want %d", kinds[memlayout.KindTree], layout.TreeLevels())
	}
	// Counter tap records the full miss cost (1 + tree levels).
	for _, a := range seen {
		if memlayout.Kind(a.Class) == memlayout.KindCounter && int(a.Cost) != 1+layout.TreeLevels() {
			t.Errorf("counter cost = %d, want %d", a.Cost, 1+layout.TreeLevels())
		}
	}

	seen = seen[:0]
	e.Writeback(0, 4096)
	foundWrite := false
	for _, a := range seen {
		if a.Write {
			foundWrite = true
		}
	}
	if !foundWrite {
		t.Error("writeback produced no write taps")
	}
}

func TestEvictionCascadeTerminates(t *testing.T) {
	// A stressful mix on a tiny cache exercises the cascade logic.
	e, _ := newEngine(t, 8*64, false)
	for i := uint64(0); i < 3000; i++ {
		if i%3 == 0 {
			e.Writeback(i, (i*7919)%(60<<20))
		} else {
			e.Read(i, (i*104729)%(60<<20))
		}
	}
	e.Flush(0)
	s := e.Stats()
	if s.Mem.CounterWrites == 0 || s.Mem.TreeWrites == 0 {
		t.Errorf("cascades produced no deferred writes: %+v", s.Mem)
	}
}

func TestResetStats(t *testing.T) {
	e, _ := newEngine(t, 64<<10, false)
	e.Read(0, 0)
	e.ResetStats()
	if e.Stats().Mem.Total() != 0 || e.Meta().TotalStats().Accesses != 0 {
		t.Error("reset incomplete")
	}
}

func TestMemTrafficHelpers(t *testing.T) {
	m := MemTraffic{DataReads: 1, DataWrites: 2, CounterReads: 3, HashWrites: 4, TreeReads: 5}
	if m.Total() != 15 {
		t.Errorf("total = %d", m.Total())
	}
	if m.Metadata() != 12 {
		t.Errorf("metadata = %d", m.Metadata())
	}
}

func TestHashThroughputBackpressure(t *testing.T) {
	// Two engines, identical except hash issue rate. Back-to-back
	// unverified reads at the same cycle must queue behind a slow
	// hash engine.
	layout := memlayout.MustNew(memlayout.PoisonIvy, 64<<20)
	mk := func(interval uint64) uint64 {
		e := MustNew(Config{
			Layout: layout, DRAM: dram.MustNew(dram.Default()),
			Speculation: false, HashThroughputCycles: interval,
		})
		var total uint64
		for i := uint64(0); i < 8; i++ {
			total += e.Read(0, i*memlayout.PageSize)
		}
		return total
	}
	fast := mk(1)
	slow := mk(200)
	if slow <= fast {
		t.Errorf("slow hash engine (%d cycles) should exceed fast (%d)", slow, fast)
	}
}
