package engine

import "testing"

// TestReadWritebackZeroAllocs pins the secure engine's per-miss
// metadata walk at zero heap allocations in steady state. The warmup
// pass touches the whole address window first so the lazily built
// counter blocks exist before measurement.
func TestReadWritebackZeroAllocs(t *testing.T) {
	e, _ := newEngine(t, 32<<10, false)
	var x uint64 = 7
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33 % (1 << 14)) * 64 // 1 MB window of data blocks
	}
	now := uint64(0)
	for i := 0; i < 50_000; i++ {
		if i%3 == 0 {
			now += e.Writeback(now, next())
		} else {
			now += e.Read(now, next())
		}
	}
	if avg := testing.AllocsPerRun(500, func() {
		now += e.Read(now, next())
	}); avg != 0 {
		t.Errorf("Read allocates %v per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(500, func() {
		now += e.Writeback(now, next())
	}); avg != 0 {
		t.Errorf("Writeback allocates %v per call, want 0", avg)
	}
}
