package engine

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/memlayout"
)

func newCached(t *testing.T) *CachedFunctional {
	t.Helper()
	layout := memlayout.MustNew(memlayout.PoisonIvy, 4<<20)
	f, err := NewFunctional(layout, make([]byte, 16), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCachedFunctional(f, 8*64, 8)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCachedFunctionalGeometryValidation(t *testing.T) {
	layout := memlayout.MustNew(memlayout.PoisonIvy, 1<<20)
	f, err := NewFunctional(layout, make([]byte, 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCachedFunctional(f, 100, 3); err == nil {
		t.Error("bad cache geometry accepted")
	}
}

func TestCachedHitSkipsTreeWalk(t *testing.T) {
	c := newCached(t)
	var in, out Block
	fill(&in, 1)
	if err := c.Store(0, &in); err != nil {
		t.Fatal(err)
	}
	walks := c.TreeWalks
	// Repeated loads of the same page hit the cached counter: no
	// further walks.
	for i := 0; i < 10; i++ {
		if err := c.Load(0, &out); err != nil {
			t.Fatal(err)
		}
	}
	if c.TreeWalks != walks {
		t.Errorf("cached loads walked the tree %d more times", c.TreeWalks-walks)
	}
	if out != in {
		t.Error("round trip corrupted")
	}
	if c.CounterHits == 0 {
		t.Error("no counter hits recorded")
	}
}

func TestCachedCounterImmuneToMemoryTamper(t *testing.T) {
	// The paper's security argument: once verified into the on-chip
	// cache, the counter is inside the trust boundary. Tampering with
	// the DRAM copy must not affect cached operation...
	c := newCached(t)
	var in, out Block
	fill(&in, 2)
	if err := c.Store(0, &in); err != nil {
		t.Fatal(err)
	}
	cAddr := c.Functional().Layout().CounterAddr(0)
	c.Functional().Memory().FlipBit(cAddr, 5)

	// Cached: load still succeeds using the trusted on-chip copy.
	if err := c.Load(0, &out); err != nil || out != in {
		t.Fatalf("cached load after DRAM tamper: %v", err)
	}

	// ...but once the cached copy is lost, the tampered DRAM copy
	// must fail verification on refetch.
	c.Invalidate(0)
	if err := c.Load(0, &out); err == nil {
		t.Fatal("tampered counter re-admitted without detection")
	}
}

func TestCachedStoreKeepsCopyCoherent(t *testing.T) {
	c := newCached(t)
	var v1, v2, out Block
	fill(&v1, 3)
	fill(&v2, 4)
	if err := c.Store(64, &v1); err != nil {
		t.Fatal(err)
	}
	// Store again (counter bumps); the cached copy must track it so
	// the next cached load decrypts with the right seed.
	if err := c.Store(64, &v2); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(64, &out); err != nil || out != v2 {
		t.Fatalf("cached load after rewrite: %v", err)
	}
}

func TestCachedEvictionForcesReverify(t *testing.T) {
	c := newCached(t)
	var in, out Block
	// Touch more pages than the 8-entry cache holds (distinct counter
	// blocks), evicting early entries.
	for p := uint64(0); p < 20; p++ {
		fill(&in, byte(p))
		if err := c.Store(p*memlayout.PageSize, &in); err != nil {
			t.Fatal(err)
		}
	}
	walks := c.TreeWalks
	// Page 0's counter was evicted: this load re-verifies.
	if err := c.Load(0, &out); err != nil {
		t.Fatal(err)
	}
	if c.TreeWalks != walks+1 {
		t.Errorf("expected one re-verification walk, got %d", c.TreeWalks-walks)
	}
}

func TestCachedRejectsBadAddresses(t *testing.T) {
	c := newCached(t)
	var out Block
	if err := c.Load(c.Functional().Layout().DataBytes(), &out); err == nil {
		t.Error("out-of-range load accepted")
	}
	if err := c.Load(0, &out); err == nil {
		t.Error("uninitialized load accepted")
	}
}
