package engine

import (
	"fmt"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/policy"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/secmem/ctr"
)

// CachedFunctional layers a data-carrying metadata cache over the
// functional controller, implementing the exact mechanism the paper's
// §II-A assumes: "If a counter block is found in the metadata cache,
// the memory controller does not need to traverse the BMT because the
// counter was verified when it was brought into the cache."
//
// Unlike the timing engine's tag-only cache, this cache holds the
// verified *contents* of counter blocks, so a cached hit really does
// skip both the memory read and the tree walk — and the security
// argument (on-chip copies are inside the trust boundary; attacks on
// DRAM cannot reach them) is testable rather than assumed.
type CachedFunctional struct {
	f *Functional
	// tags tracks residency/victims; contents holds the verified
	// counter block bytes for resident addresses.
	tags     *cache.Cache
	contents map[uint64]Block

	// Stats.
	CounterHits   uint64
	CounterMisses uint64
	TreeWalks     uint64
}

// NewCachedFunctional wraps a functional controller with a verified
// counter cache of the given geometry.
func NewCachedFunctional(f *Functional, cacheBytes, ways int) (*CachedFunctional, error) {
	tags, err := cache.New(cacheBytes, ways, policy.NewLRU())
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return &CachedFunctional{
		f:        f,
		tags:     tags,
		contents: make(map[uint64]Block),
	}, nil
}

// Functional exposes the wrapped controller (and through it the
// backing store, for attack injection).
func (c *CachedFunctional) Functional() *Functional { return c.f }

// counterBlock returns the verified counter block for dataAddr,
// fetching and tree-verifying on a miss.
func (c *CachedFunctional) counterBlock(dataAddr uint64) (Block, error) {
	cAddr := c.f.layout.CounterAddr(dataAddr)
	res := c.tags.Access(cAddr, false, cache.WholeBlock)
	if res.Hit {
		c.CounterHits++
		return c.contents[cAddr], nil
	}
	c.CounterMisses++
	c.TreeWalks++
	// Fetch from (untrusted) memory and verify through the tree
	// before admitting to the trusted on-chip copy.
	if err := c.f.tree.VerifyCounter(cAddr); err != nil {
		return Block{}, fmt.Errorf("engine: %w", err)
	}
	var blk Block
	c.f.mem.Read(cAddr, &blk)
	if res.Evicted.Valid {
		delete(c.contents, res.Evicted.Addr)
	}
	c.contents[cAddr] = blk
	return blk, nil
}

// Load behaves like Functional.Load but uses the verified counter
// cache: hits skip the memory read and the tree walk entirely.
func (c *CachedFunctional) Load(dataAddr uint64, plaintext *Block) error {
	dataAddr = memlayout.BlockOf(dataAddr)
	if !c.f.layout.Contains(dataAddr) {
		return fmt.Errorf("engine: address %#x outside protected data", dataAddr)
	}
	if !c.f.initialized[dataAddr] {
		return fmt.Errorf("engine: block %#x was never stored", dataAddr)
	}
	blk, err := c.counterBlock(dataAddr)
	if err != nil {
		return err
	}
	seed := c.f.seedFromBlock(dataAddr, &blk)

	var ciphertext Block
	c.f.mem.Read(dataAddr, &ciphertext)
	if !c.f.verifyData(dataAddr, seed, &ciphertext) {
		return &IntegrityError{Addr: dataAddr, Reason: "data HMAC mismatch"}
	}
	pad := c.f.cipher.Pad(dataAddr, seed)
	ctr.XOR(plaintext, &ciphertext, &pad)
	return nil
}

// Store behaves like Functional.Store but keeps the cached counter
// copy coherent: the trusted on-chip copy is updated alongside
// memory, so subsequent hits stay correct.
func (c *CachedFunctional) Store(dataAddr uint64, plaintext *Block) error {
	dataAddr = memlayout.BlockOf(dataAddr)
	// Ensure the counter is resident and verified before the bump.
	if _, err := c.counterBlock(dataAddr); err != nil {
		return fmt.Errorf("engine: counter verification before store: %w", err)
	}
	if err := c.f.Store(dataAddr, plaintext); err != nil {
		return err
	}
	// Refresh the cached copy from the just-written (trusted-path)
	// value.
	cAddr := c.f.layout.CounterAddr(dataAddr)
	if c.tags.Probe(cAddr) != nil {
		var blk Block
		c.f.mem.Read(cAddr, &blk)
		c.contents[cAddr] = blk
	}
	return nil
}

// Invalidate drops a cached counter, forcing re-verification on next
// use (tests use it to model cache pressure).
func (c *CachedFunctional) Invalidate(dataAddr uint64) {
	cAddr := c.f.layout.CounterAddr(dataAddr)
	if _, ok := c.tags.Invalidate(cAddr); ok {
		delete(c.contents, cAddr)
	}
}
