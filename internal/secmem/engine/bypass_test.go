package engine

import (
	"testing"

	"github.com/maps-sim/mapsim/internal/dram"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
)

// bypassEngine builds an engine whose metadata cache admits only the
// given content.
func bypassEngine(t *testing.T, content metacache.ContentPolicy) (*Engine, *memlayout.Layout) {
	t.Helper()
	layout := memlayout.MustNew(memlayout.PoisonIvy, 64<<20)
	meta := metacache.MustNew(metacache.Config{Size: 64 << 10, Ways: 8, Content: content})
	return MustNew(Config{Layout: layout, Meta: meta, DRAM: dram.MustNew(dram.Default())}), layout
}

func TestBypassedCounterWriteHitsMemory(t *testing.T) {
	// Hashes-only cache: counter writes must read-modify-write memory
	// and update the tree immediately.
	e, layout := bypassEngine(t, metacache.HashesOnly)
	e.Writeback(0, 4096)
	s := e.Stats()
	if s.Mem.CounterReads != 1 || s.Mem.CounterWrites != 1 {
		t.Errorf("counter RMW traffic: %+v", s.Mem)
	}
	// Immediate tree update through every level (tree also bypassed).
	if s.Mem.TreeWrites != uint64(layout.TreeLevels()) {
		t.Errorf("tree writes = %d, want %d", s.Mem.TreeWrites, layout.TreeLevels())
	}
	// The engine still counted the bypass in metadata-cache stats.
	if e.Meta().KindStats(memlayout.KindCounter).Bypassed == 0 {
		t.Error("bypassed counter access not recorded")
	}
}

func TestBypassedCounterWriteWithCachedTree(t *testing.T) {
	// Counters bypassed, tree cached: tree updates land in the cache
	// (dirty), not in memory, until evicted.
	e, _ := bypassEngine(t, metacache.HashesTree)
	e.Writeback(0, 4096)
	s := e.Stats()
	if s.Mem.CounterWrites != 1 {
		t.Errorf("counter writes = %d", s.Mem.CounterWrites)
	}
	// The leaf update was absorbed by the cache; deferred levels
	// flush later.
	before := s.Mem.TreeWrites
	e.Flush(0)
	after := e.Stats().Mem.TreeWrites
	if after <= before {
		t.Error("deferred tree updates never flushed")
	}
}

func TestBypassedHashWriteHitsMemory(t *testing.T) {
	e, _ := bypassEngine(t, metacache.CountersTree)
	e.Writeback(0, 4096)
	s := e.Stats()
	if s.Mem.HashReads != 1 || s.Mem.HashWrites != 1 {
		t.Errorf("hash RMW traffic: %+v", s.Mem)
	}
	if e.Meta().KindStats(memlayout.KindHash).Bypassed == 0 {
		t.Error("bypassed hash access not recorded")
	}
}

func TestBypassedCounterReadWalksCachedTree(t *testing.T) {
	// Counters bypassed but tree cached: first read walks and caches
	// the tree; the second read in a distant page re-fetches the
	// counter but stops the walk at the shared cached ancestor.
	e, layout := bypassEngine(t, metacache.HashesTree)
	e.Read(0, 0)
	first := e.Stats().Mem
	if first.TreeReads != uint64(layout.TreeLevels()) {
		t.Fatalf("first walk fetched %d levels", first.TreeReads)
	}
	e.Read(0, 32<<20)
	second := e.Stats().Mem
	if second.CounterReads != first.CounterReads+1 {
		t.Error("bypassed counter not refetched")
	}
	delta := second.TreeReads - first.TreeReads
	if delta == 0 || delta >= uint64(layout.TreeLevels()) {
		t.Errorf("second walk fetched %d levels, want partial", delta)
	}
}

func TestWriteTrafficConservedAcrossContents(t *testing.T) {
	// Every content policy must issue at least one data write and one
	// counter update (cached or not) per writeback; none may lose the
	// hash update.
	for _, content := range []metacache.ContentPolicy{
		metacache.AllTypes, metacache.CountersOnly, metacache.HashesOnly,
		metacache.TreeOnly, metacache.CountersHashes, metacache.CountersTree, metacache.HashesTree,
	} {
		e, _ := bypassEngine(t, content)
		for i := uint64(0); i < 50; i++ {
			e.Writeback(0, i*memlayout.PageSize)
		}
		e.Flush(0)
		s := e.Stats()
		if s.Mem.DataWrites != 50 {
			t.Errorf("%v: data writes = %d, want 50", content, s.Mem.DataWrites)
		}
		if s.Mem.CounterWrites == 0 {
			t.Errorf("%v: counter updates never reached memory", content)
		}
		if s.Mem.HashWrites == 0 {
			t.Errorf("%v: hash updates never reached memory", content)
		}
		if s.Mem.TreeWrites == 0 {
			t.Errorf("%v: tree updates never reached memory", content)
		}
	}
}
