package engine

import "github.com/maps-sim/mapsim/internal/secmem/ctr"

// CountersClone deep-copies the per-block logical counter map. The
// epoch-parallel driver replays the exact writeback stream through a
// standalone counter fold (see sim's epoch driver) and seeds each
// epoch's engine with a snapshot, so split-counter overflows — page
// re-encryptions — happen at exactly the writeback where the
// sequential run would trigger them.
func (e *Engine) CountersClone() map[uint64]*ctr.PIBlock {
	return CloneCounters(e.counters)
}

// CloneCounters deep-copies a counter map (nil stays nil).
func CloneCounters(m map[uint64]*ctr.PIBlock) map[uint64]*ctr.PIBlock {
	if m == nil {
		return nil
	}
	n := make(map[uint64]*ctr.PIBlock, len(m))
	for k, v := range m {
		blk := *v
		n[k] = &blk
	}
	return n
}

// HashReadyAt exposes the HMAC engine's next-issue cycle, in the
// engine's own cycle frame. Like DRAM bank readyAt it is translation-
// invariant: the caller rebases it across epoch boundaries by
// subtracting the boundary cycle (clamped at zero).
func (e *Engine) HashReadyAt() uint64 { return e.hashReadyAt }
