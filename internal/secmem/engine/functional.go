package engine

import (
	"fmt"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/secmem/bmt"
	"github.com/maps-sim/mapsim/internal/secmem/ctr"
	"github.com/maps-sim/mapsim/internal/secmem/mac"
	"github.com/maps-sim/mapsim/internal/secmem/store"
)

// Functional is the end-to-end secure memory controller: it really
// encrypts data with counter-derived one-time pads, really verifies
// truncated HMACs and the Bonsai Merkle Tree, and therefore really
// detects the physical attacks the architecture defends against.
// MAPS's characterization runs use the timing Engine; Functional
// exists so the substrate's security claims are testable, and it
// backs the tamper-detection example.
type Functional struct {
	layout *memlayout.Layout
	mem    *store.Memory
	cipher *ctr.Cipher
	keyed  *mac.Keyed
	tree   *bmt.Tree
	// initialized tracks blocks that have been stored at least once;
	// blocks never written have no valid HMAC and cannot be loaded.
	initialized map[uint64]bool
}

// Block is a 64 B data block.
type Block = [memlayout.BlockSize]byte

// NewFunctional builds a functional controller over a fresh backing
// store. encKey is the AES pad key (16/24/32 bytes); macKey keys
// every HMAC. Layouts above 256 MB of data are rejected: the
// functional path materializes tree state eagerly.
func NewFunctional(layout *memlayout.Layout, encKey, macKey []byte) (*Functional, error) {
	if layout.DataBytes() > 256<<20 {
		return nil, fmt.Errorf("engine: functional mode supports up to 256 MB of data, got %d", layout.DataBytes())
	}
	cipher, err := ctr.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	mem, err := store.New(layout.TotalBytes())
	if err != nil {
		return nil, err
	}
	keyed := mac.New(macKey)
	f := &Functional{
		layout:      layout,
		mem:         mem,
		cipher:      cipher,
		keyed:       keyed,
		tree:        bmt.New(layout, mem, keyed),
		initialized: make(map[uint64]bool),
	}
	return f, nil
}

// Memory exposes the backing store so tests and examples can mount
// physical attacks against it.
func (f *Functional) Memory() *store.Memory { return f.mem }

// Layout exposes the address map.
func (f *Functional) Layout() *memlayout.Layout { return f.layout }

// Root returns the current on-chip tree root.
func (f *Functional) Root() mac.Tag { return f.tree.Root() }

// counterBlock loads and decodes the counter block at cAddr.
func (f *Functional) counterBlock(cAddr uint64) (pi ctr.PIBlock, sgx ctr.SGXBlock) {
	var raw Block
	f.mem.Read(cAddr, &raw)
	if f.layout.Organization() == memlayout.SGX {
		sgx.Decode(&raw)
	} else {
		pi.Decode(&raw)
	}
	return pi, sgx
}

// seedOf returns the encryption seed for dataAddr from its decoded
// counter block.
func (f *Functional) seedOf(dataAddr uint64) uint64 {
	cAddr := f.layout.CounterAddr(dataAddr)
	slot := f.layout.CounterSlot(dataAddr)
	pi, sgx := f.counterBlock(cAddr)
	if f.layout.Organization() == memlayout.SGX {
		return sgx.Seed(slot)
	}
	return pi.Seed(slot)
}

// seedFromBlock returns dataAddr's encryption seed from an
// already-verified counter block image (the cached-functional path).
func (f *Functional) seedFromBlock(dataAddr uint64, raw *Block) uint64 {
	slot := f.layout.CounterSlot(dataAddr)
	if f.layout.Organization() == memlayout.SGX {
		var blk ctr.SGXBlock
		blk.Decode(raw)
		return blk.Seed(slot)
	}
	var blk ctr.PIBlock
	blk.Decode(raw)
	return blk.Seed(slot)
}

// Store encrypts plaintext and writes it to dataAddr, incrementing
// the block's counter, updating the data HMAC, and maintaining the
// integrity tree (including page re-encryption on minor-counter
// overflow).
func (f *Functional) Store(dataAddr uint64, plaintext *Block) error {
	dataAddr = memlayout.BlockOf(dataAddr)
	if !f.layout.Contains(dataAddr) {
		return fmt.Errorf("engine: address %#x outside protected data", dataAddr)
	}
	cAddr := f.layout.CounterAddr(dataAddr)
	slot := f.layout.CounterSlot(dataAddr)

	// Verify the counter block before trusting and bumping it.
	if err := f.tree.VerifyCounter(cAddr); err != nil {
		return fmt.Errorf("engine: counter verification before store: %w", err)
	}

	var raw Block
	f.mem.Read(cAddr, &raw)
	if f.layout.Organization() == memlayout.SGX {
		var blk ctr.SGXBlock
		blk.Decode(&raw)
		blk.Increment(slot)
		blk.Encode(&raw)
		f.mem.Write(cAddr, &raw)
		f.tree.UpdateCounter(cAddr)
		f.writeBlock(dataAddr, plaintext, blk.Seed(slot))
		return nil
	}

	var blk ctr.PIBlock
	blk.Decode(&raw)
	overflow := blk.Increment(slot)
	if overflow {
		// Re-encrypt the whole page under the new major counter.
		// Old seeds are reconstructed from the pre-overflow block:
		// the minors were valid right up to the reset.
		var old ctr.PIBlock
		old.Decode(&raw)
		if err := f.reencryptPage(dataAddr, &old, &blk); err != nil {
			return err
		}
	}
	blk.Encode(&raw)
	f.mem.Write(cAddr, &raw)
	f.tree.UpdateCounter(cAddr)
	f.writeBlock(dataAddr, plaintext, blk.Seed(slot))
	return nil
}

// writeBlock encrypts and writes one data block and its HMAC.
func (f *Functional) writeBlock(dataAddr uint64, plaintext *Block, seed uint64) {
	pad := f.cipher.Pad(dataAddr, seed)
	var ciphertext Block
	ctr.XOR(&ciphertext, plaintext, &pad)
	f.mem.Write(dataAddr, &ciphertext)

	// Data HMAC binds address, seed, and ciphertext.
	tag := f.keyed.Sum(dataAddr, seed, ciphertext[:])
	hAddr := f.layout.HashAddr(dataAddr)
	hSlot := f.layout.HashSlot(dataAddr)
	var hashBlk Block
	f.mem.Read(hAddr, &hashBlk)
	copy(hashBlk[hSlot*mac.Size:(hSlot+1)*mac.Size], tag[:])
	f.mem.Write(hAddr, &hashBlk)
	f.initialized[dataAddr] = true
}

// reencryptPage decrypts every block of dataAddr's page under its old
// seed and re-encrypts under the new counter block's seeds.
func (f *Functional) reencryptPage(dataAddr uint64, old, new_ *ctr.PIBlock) error {
	page := memlayout.PageOf(dataAddr)
	for b := uint64(0); b < memlayout.BlocksPerPage; b++ {
		addr := page + b*memlayout.BlockSize
		if !f.initialized[addr] {
			continue // never written: nothing to re-encrypt
		}
		slot := f.layout.CounterSlot(addr)
		var ciphertext, plaintext Block
		f.mem.Read(addr, &ciphertext)
		oldSeed := old.Seed(slot)
		// Verify against the stored HMAC before re-encrypting.
		if !f.verifyData(addr, oldSeed, &ciphertext) {
			return &IntegrityError{Addr: addr, Reason: "data HMAC mismatch during page re-encryption"}
		}
		pad := f.cipher.Pad(addr, oldSeed)
		ctr.XOR(&plaintext, &ciphertext, &pad)
		f.writeBlock(addr, &plaintext, new_.Seed(slot))
	}
	return nil
}

// verifyData checks a data block's stored HMAC.
func (f *Functional) verifyData(dataAddr uint64, seed uint64, ciphertext *Block) bool {
	hAddr := f.layout.HashAddr(dataAddr)
	hSlot := f.layout.HashSlot(dataAddr)
	var hashBlk Block
	f.mem.Read(hAddr, &hashBlk)
	var stored mac.Tag
	copy(stored[:], hashBlk[hSlot*mac.Size:(hSlot+1)*mac.Size])
	return f.keyed.Verify(dataAddr, seed, ciphertext[:], stored)
}

// IntegrityError reports a detected physical attack.
type IntegrityError struct {
	Addr   uint64
	Reason string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("engine: integrity violation at %#x: %s", e.Addr, e.Reason)
}

// Load fetches, verifies, and decrypts the data block at dataAddr.
// Any tampering with the data, its hash, its counter, or the tree
// yields an error instead of plaintext.
func (f *Functional) Load(dataAddr uint64, plaintext *Block) error {
	dataAddr = memlayout.BlockOf(dataAddr)
	if !f.layout.Contains(dataAddr) {
		return fmt.Errorf("engine: address %#x outside protected data", dataAddr)
	}
	if !f.initialized[dataAddr] {
		return fmt.Errorf("engine: block %#x was never stored", dataAddr)
	}
	cAddr := f.layout.CounterAddr(dataAddr)
	if err := f.tree.VerifyCounter(cAddr); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	seed := f.seedOf(dataAddr)
	var ciphertext Block
	f.mem.Read(dataAddr, &ciphertext)
	if !f.verifyData(dataAddr, seed, &ciphertext) {
		return &IntegrityError{Addr: dataAddr, Reason: "data HMAC mismatch"}
	}
	pad := f.cipher.Pad(dataAddr, seed)
	ctr.XOR(plaintext, &ciphertext, &pad)
	return nil
}
