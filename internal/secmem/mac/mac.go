// Package mac provides the keyed hashes used throughout secure
// memory: truncated 8 B HMACs over block contents, bound to the
// block's address and (for data blocks) its encryption seed so that
// blocks cannot be spliced or replayed across locations.
package mac

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"

	"github.com/maps-sim/mapsim/internal/memlayout"
)

// Size is the truncated HMAC length used by the paper's organization:
// an 8 B HMAC per protected block.
const Size = memlayout.HashSize

// Tag is a truncated HMAC.
type Tag [Size]byte

// Keyed computes address-bound truncated HMACs under a fixed key.
type Keyed struct {
	key []byte
}

// New creates a Keyed MAC. The key is copied.
func New(key []byte) *Keyed {
	k := make([]byte, len(key))
	copy(k, key)
	return &Keyed{key: k}
}

// Sum computes the tag over a block: HMAC-SHA-256(key, addr || seed ||
// data) truncated to Size bytes. seed is the encryption counter seed
// for data blocks and zero for metadata blocks (whose freshness is
// guaranteed by the tree above them).
func (k *Keyed) Sum(addr, seed uint64, data []byte) Tag {
	h := hmac.New(sha256.New, k.key)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], addr)
	binary.LittleEndian.PutUint64(hdr[8:16], seed)
	h.Write(hdr[:])
	h.Write(data)
	var tag Tag
	copy(tag[:], h.Sum(nil))
	return tag
}

// Verify reports whether tag matches the block in constant time.
func (k *Keyed) Verify(addr, seed uint64, data []byte, tag Tag) bool {
	want := k.Sum(addr, seed, data)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}
