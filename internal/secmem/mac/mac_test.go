package mac

import (
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	k := New([]byte("key"))
	a := k.Sum(64, 1, []byte("hello"))
	b := k.Sum(64, 1, []byte("hello"))
	if a != b {
		t.Fatal("same inputs produced different tags")
	}
}

func TestSumBindsAllInputs(t *testing.T) {
	k := New([]byte("key"))
	base := k.Sum(64, 1, []byte("hello"))
	if k.Sum(128, 1, []byte("hello")) == base {
		t.Error("tag does not bind address")
	}
	if k.Sum(64, 2, []byte("hello")) == base {
		t.Error("tag does not bind seed")
	}
	if k.Sum(64, 1, []byte("hellp")) == base {
		t.Error("tag does not bind data")
	}
	if New([]byte("other")).Sum(64, 1, []byte("hello")) == base {
		t.Error("tag does not bind key")
	}
}

func TestKeyIsCopied(t *testing.T) {
	key := []byte("secret")
	k := New(key)
	before := k.Sum(0, 0, nil)
	key[0] = 'X'
	if k.Sum(0, 0, nil) != before {
		t.Error("mutating the caller's key slice changed the MAC")
	}
}

func TestVerify(t *testing.T) {
	k := New([]byte("key"))
	data := []byte("block contents")
	tag := k.Sum(4096, 7, data)
	if !k.Verify(4096, 7, data, tag) {
		t.Error("valid tag rejected")
	}
	bad := tag
	bad[0] ^= 1
	if k.Verify(4096, 7, data, bad) {
		t.Error("corrupted tag accepted")
	}
	if k.Verify(4096, 8, data, tag) {
		t.Error("wrong seed accepted")
	}
}

func TestPropertyVerifyRoundTrip(t *testing.T) {
	k := New([]byte("property"))
	f := func(addr, seed uint64, data []byte) bool {
		tag := k.Sum(addr, seed, data)
		return k.Verify(addr, seed, data, tag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTamperDetected(t *testing.T) {
	k := New([]byte("property"))
	f := func(addr, seed uint64, data []byte, flip uint16) bool {
		if len(data) == 0 {
			return true
		}
		tag := k.Sum(addr, seed, data)
		mut := make([]byte, len(data))
		copy(mut, data)
		bit := int(flip) % (len(data) * 8)
		mut[bit/8] ^= 1 << (bit % 8)
		return !k.Verify(addr, seed, mut, tag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
