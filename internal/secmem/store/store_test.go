package store

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := New(100); err == nil {
		t.Error("unaligned limit accepted")
	}
	if m, err := New(1024); err != nil || m.Limit() != 1024 {
		t.Errorf("valid limit rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(1)
}

func TestReadUnwrittenIsZero(t *testing.T) {
	m := MustNew(1 << 20)
	var b [BlockSize]byte
	b[0] = 0xFF
	m.Read(64, &b)
	if b != ([BlockSize]byte{}) {
		t.Error("unwritten block read nonzero")
	}
	if m.Populated() != 0 {
		t.Error("read should not populate")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := MustNew(1 << 20)
	var in, out [BlockSize]byte
	for i := range in {
		in[i] = byte(i)
	}
	m.Write(128, &in)
	m.Read(128, &out)
	if in != out {
		t.Error("round trip failed")
	}
	if m.Populated() != 1 {
		t.Errorf("populated = %d, want 1", m.Populated())
	}
	// Overwrite.
	in[0] = 0xAA
	m.Write(128, &in)
	m.Read(128, &out)
	if out[0] != 0xAA {
		t.Error("overwrite lost")
	}
}

func TestAlignmentAndRangeChecks(t *testing.T) {
	m := MustNew(1 << 10)
	var b [BlockSize]byte
	for name, fn := range map[string]func(){
		"unaligned read":  func() { m.Read(1, &b) },
		"oob write":       func() { m.Write(1<<10, &b) },
		"oob flip":        func() { m.FlipBit(1<<10, 0) },
		"flip bit oob":    func() { m.FlipBit(0, BlockSize*8) },
		"unaligned write": func() { m.Write(63, &b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFlipBit(t *testing.T) {
	m := MustNew(1 << 10)
	m.FlipBit(0, 9) // byte 1, bit 1 — materializes the block
	var b [BlockSize]byte
	m.Read(0, &b)
	if b[1] != 2 {
		t.Errorf("byte 1 = %#x, want 2", b[1])
	}
	m.FlipBit(0, 9)
	m.Read(0, &b)
	if b[1] != 0 {
		t.Error("double flip did not restore")
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := MustNew(1 << 10)
	var v1, v2, got [BlockSize]byte
	v1[0], v2[0] = 1, 2
	m.Write(64, &v1)
	snap := m.Snapshot(64)
	m.Write(64, &v2)
	m.Restore(64, snap)
	m.Read(64, &got)
	if got != v1 {
		t.Error("restore did not replay old contents")
	}
}
