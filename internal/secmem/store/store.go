// Package store provides the simulated off-chip memory contents for
// the functional secure-memory path: a sparse, block-granular byte
// store with hooks for injecting the physical attacks (bit flips,
// block replay) that the integrity machinery must detect.
package store

import (
	"fmt"

	"github.com/maps-sim/mapsim/internal/memlayout"
)

// BlockSize is the granularity of every access.
const BlockSize = memlayout.BlockSize

// Memory is a sparse block-addressable backing store. All addresses
// must be BlockSize-aligned. The zero value is not usable; call New.
//
// Memory is deliberately not safe for concurrent use: the simulator
// core is single-threaded and the paper's experiments are sequential.
// Concurrent experiment sweeps each own a private Memory.
type Memory struct {
	limit  uint64
	blocks map[uint64]*[BlockSize]byte
}

// New creates a store covering [0, limit). limit must be a positive
// multiple of BlockSize.
func New(limit uint64) (*Memory, error) {
	if limit == 0 || limit%BlockSize != 0 {
		return nil, fmt.Errorf("store: limit %d must be a positive multiple of %d", limit, BlockSize)
	}
	return &Memory{limit: limit, blocks: make(map[uint64]*[BlockSize]byte)}, nil
}

// MustNew is New but panics on error.
func MustNew(limit uint64) *Memory {
	m, err := New(limit)
	if err != nil {
		panic(err)
	}
	return m
}

// Limit reports the size of the address space.
func (m *Memory) Limit() uint64 { return m.limit }

// Populated reports how many distinct blocks have been written.
func (m *Memory) Populated() int { return len(m.blocks) }

func (m *Memory) check(addr uint64) {
	if addr%BlockSize != 0 {
		panic(fmt.Sprintf("store: unaligned address %#x", addr))
	}
	if addr >= m.limit {
		panic(fmt.Sprintf("store: address %#x beyond limit %#x", addr, m.limit))
	}
}

// Read copies the 64 B block at addr into dst. Unwritten blocks read
// as zero.
func (m *Memory) Read(addr uint64, dst *[BlockSize]byte) {
	m.check(addr)
	if b, ok := m.blocks[addr]; ok {
		*dst = *b
		return
	}
	*dst = [BlockSize]byte{}
}

// Write stores the 64 B block at addr.
func (m *Memory) Write(addr uint64, src *[BlockSize]byte) {
	m.check(addr)
	b, ok := m.blocks[addr]
	if !ok {
		b = new([BlockSize]byte)
		m.blocks[addr] = b
	}
	*b = *src
}

// FlipBit injects a physical attack: it flips one bit of the stored
// block at addr. Flipping a bit in an unwritten block materializes it
// first (an attacker can write to the bus regardless).
func (m *Memory) FlipBit(addr uint64, bit uint) {
	m.check(addr)
	if bit >= BlockSize*8 {
		panic(fmt.Sprintf("store: bit %d out of range", bit))
	}
	b, ok := m.blocks[addr]
	if !ok {
		b = new([BlockSize]byte)
		m.blocks[addr] = b
	}
	b[bit/8] ^= 1 << (bit % 8)
}

// Snapshot returns a copy of the block at addr, for replay attacks.
func (m *Memory) Snapshot(addr uint64) [BlockSize]byte {
	var b [BlockSize]byte
	m.Read(addr, &b)
	return b
}

// Restore overwrites the block at addr with an earlier snapshot,
// modelling a replay attack.
func (m *Memory) Restore(addr uint64, snap [BlockSize]byte) {
	m.Write(addr, &snap)
}
