package ctr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/maps-sim/mapsim/internal/memlayout"
)

func TestPIBlockEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		var b PIBlock
		b.Major = rng.Uint64()
		for j := range b.Minor {
			b.Minor[j] = uint8(rng.Intn(MinorLimit))
		}
		var enc [memlayout.BlockSize]byte
		b.Encode(&enc)
		var got PIBlock
		got.Decode(&enc)
		if got != b {
			t.Fatalf("round trip mismatch: %+v != %+v", got, b)
		}
	}
}

func TestPIBlockEncodePanicsOnBadMinor(t *testing.T) {
	var b PIBlock
	b.Minor[3] = MinorLimit
	var enc [memlayout.BlockSize]byte
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range minor")
		}
	}()
	b.Encode(&enc)
}

func TestPIBlockPackingIsExact(t *testing.T) {
	// All-ones minors and major must fit with no spill: 8 + 56 = 64.
	var b PIBlock
	b.Major = ^uint64(0)
	for j := range b.Minor {
		b.Minor[j] = MinorLimit - 1
	}
	var enc [memlayout.BlockSize]byte
	b.Encode(&enc)
	var got PIBlock
	got.Decode(&enc)
	if got != b {
		t.Fatal("max-value block does not round trip")
	}
}

func TestPIIncrementOverflow(t *testing.T) {
	var b PIBlock
	b.Minor[5] = 3
	for i := 0; i < MinorLimit-1; i++ {
		if b.Increment(0) {
			t.Fatalf("unexpected overflow at minor=%d", i)
		}
	}
	if b.Minor[0] != MinorLimit-1 {
		t.Fatalf("minor[0] = %d, want %d", b.Minor[0], MinorLimit-1)
	}
	if !b.Increment(0) {
		t.Fatal("expected overflow")
	}
	if b.Major != 1 {
		t.Errorf("major = %d, want 1 after overflow", b.Major)
	}
	for j, m := range b.Minor {
		if m != 0 {
			t.Errorf("minor[%d] = %d, want 0 after page reset", j, m)
		}
	}
}

func TestPISeedStrictlyIncreases(t *testing.T) {
	// Across hundreds of interleaved writes to two slots of the same
	// page, each slot's seed must strictly increase (pad uniqueness).
	var b PIBlock
	prev := map[int]uint64{0: b.Seed(0), 7: b.Seed(7)}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		slot := []int{0, 7}[rng.Intn(2)]
		b.Increment(slot)
		for _, s := range []int{0, 7} {
			// The written slot must strictly increase; the other may
			// only increase (page overflow bumps it too).
			seed := b.Seed(s)
			if s == slot && seed <= prev[s] {
				t.Fatalf("seed for slot %d did not increase: %d -> %d", s, prev[s], seed)
			}
			if seed < prev[s] {
				t.Fatalf("seed for slot %d decreased: %d -> %d", s, prev[s], seed)
			}
			prev[s] = seed
		}
	}
}

func TestSGXBlockRoundTrip(t *testing.T) {
	f := func(c0, c1, c2, c3, c4, c5, c6, c7 uint64) bool {
		b := SGXBlock{Ctr: [SGXCounters]uint64{c0, c1, c2, c3, c4, c5, c6, c7}}
		var enc [memlayout.BlockSize]byte
		b.Encode(&enc)
		var got SGXBlock
		got.Decode(&enc)
		return got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSGXIncrement(t *testing.T) {
	var b SGXBlock
	if b.Increment(2) {
		t.Error("SGX increment should not overflow")
	}
	if b.Ctr[2] != 1 || b.Ctr[0] != 0 {
		t.Errorf("unexpected counters: %v", b.Ctr)
	}
	if b.Seed(2) != 1 {
		t.Errorf("seed = %d, want 1", b.Seed(2))
	}
}

func TestBitsHelpers(t *testing.T) {
	buf := make([]byte, 56)
	putBits(buf, 3, 7, 0x55)
	if got := getBits(buf, 3, 7); got != 0x55 {
		t.Fatalf("getBits = %#x, want 0x55", got)
	}
	// Overwrite with zeros clears.
	putBits(buf, 3, 7, 0)
	if got := getBits(buf, 3, 7); got != 0 {
		t.Fatalf("getBits after clear = %#x", got)
	}
	// Neighbors untouched.
	putBits(buf, 0, 7, 0x7f)
	putBits(buf, 7, 7, 0)
	if got := getBits(buf, 0, 7); got != 0x7f {
		t.Fatalf("neighbor clobbered: %#x", got)
	}
}

func TestCipherKeyValidation(t *testing.T) {
	if _, err := NewCipher(make([]byte, 15)); err == nil {
		t.Error("15-byte key should fail")
	}
	for _, n := range []int{16, 24, 32} {
		if _, err := NewCipher(make([]byte, n)); err != nil {
			t.Errorf("%d-byte key: %v", n, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewCipher should panic on bad key")
		}
	}()
	MustNewCipher(nil)
}

func TestPadEncryptDecrypt(t *testing.T) {
	c := MustNewCipher(bytes.Repeat([]byte{0xA5}, 16))
	var plain, enc, dec [memlayout.BlockSize]byte
	copy(plain[:], "the quick brown fox jumps over the lazy dog 0123456789abcdef!!")
	pad := c.Pad(0x1000, 42)
	XOR(&enc, &plain, &pad)
	if enc == plain {
		t.Fatal("ciphertext equals plaintext")
	}
	pad2 := c.Pad(0x1000, 42)
	XOR(&dec, &enc, &pad2)
	if dec != plain {
		t.Fatal("decrypt did not restore plaintext")
	}
}

func TestPadUniqueness(t *testing.T) {
	c := MustNewCipher(make([]byte, 16))
	seen := map[Pad]string{}
	add := func(name string, p Pad) {
		if prev, dup := seen[p]; dup {
			t.Fatalf("pad collision between %s and %s", name, prev)
		}
		seen[p] = name
	}
	add("a0s0", c.Pad(0, 0))
	add("a0s1", c.Pad(0, 1))
	add("a64s0", c.Pad(64, 0))
	add("a64s1", c.Pad(64, 1))
	add("a128s7", c.Pad(128, 7))
}

func TestPadQuartersDiffer(t *testing.T) {
	// The four 16 B AES blocks inside one pad must differ (distinct
	// counter inputs).
	c := MustNewCipher(make([]byte, 16))
	p := c.Pad(4096, 9)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if bytes.Equal(p[i*16:(i+1)*16], p[j*16:(j+1)*16]) {
				t.Fatalf("pad quarters %d and %d identical", i, j)
			}
		}
	}
}

func TestPadPanicsOnUnaligned(t *testing.T) {
	c := MustNewCipher(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unaligned address")
		}
	}()
	c.Pad(3, 0)
}

func TestXORInPlace(t *testing.T) {
	c := MustNewCipher(make([]byte, 16))
	var b [memlayout.BlockSize]byte
	copy(b[:], "in-place")
	orig := b
	pad := c.Pad(0, 5)
	XOR(&b, &b, &pad)
	XOR(&b, &b, &pad)
	if b != orig {
		t.Fatal("in-place double XOR did not restore")
	}
}
