// Package ctr implements the counter-mode encryption layer of secure
// memory: counter block formats for the split-counter (PoisonIvy) and
// monolithic (SGX) organizations, and AES-based one-time-pad
// generation.
//
// A pad is derived from (block address, counter seed) and never reused
// because the seed is strictly increasing across every write of a
// block: incrementing a minor counter increases it, and a minor
// overflow bumps the shared major counter, which increases the seed of
// every block in the page even though the minors reset.
package ctr

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"github.com/maps-sim/mapsim/internal/memlayout"
)

// Geometry of the split-counter block: one 8 B major counter plus
// sixty-four 7 b minors packs exactly into 64 B (8 + 64*7/8 = 64).
const (
	// MinorBits is the width of a per-block minor counter.
	MinorBits = 7
	// MinorLimit is the value at which a minor counter overflows and
	// forces a page re-encryption.
	MinorLimit = 1 << MinorBits
	// PIMinors is the number of minor counters in a PI counter block.
	PIMinors = memlayout.BlocksPerPage
	// SGXCounters is the number of 8 B counters in an SGX counter
	// block.
	SGXCounters = memlayout.BlockSize / 8
)

// PIBlock is a split-counter block: a per-page major counter and one
// 7-bit minor counter per 64 B data block in the page.
type PIBlock struct {
	Major uint64
	Minor [PIMinors]uint8
}

// Seed returns the encryption seed for the data block at the given
// slot. Seeds strictly increase across writes (see package comment).
func (b *PIBlock) Seed(slot int) uint64 {
	return b.Major<<MinorBits | uint64(b.Minor[slot])
}

// Increment advances the minor counter for slot prior to a write.
// If the minor overflows, the major counter is incremented, every
// minor resets to zero, and Increment reports true: the caller must
// re-encrypt all blocks of the page with their new seeds.
func (b *PIBlock) Increment(slot int) (overflow bool) {
	b.Minor[slot]++
	if b.Minor[slot] < MinorLimit {
		return false
	}
	b.Major++
	b.Minor = [PIMinors]uint8{}
	return true
}

// Encode packs the block into its 64 B memory representation:
// bytes 0..7 hold the major counter, bytes 8..63 hold the 64 packed
// 7-bit minors.
func (b *PIBlock) Encode(dst *[memlayout.BlockSize]byte) {
	*dst = [memlayout.BlockSize]byte{}
	binary.LittleEndian.PutUint64(dst[0:8], b.Major)
	for i, m := range b.Minor {
		if m >= MinorLimit {
			panic(fmt.Sprintf("ctr: minor %d out of range: %d", i, m))
		}
		putBits(dst[8:], uint(i)*MinorBits, MinorBits, uint64(m))
	}
}

// Decode unpacks a 64 B memory representation.
func (b *PIBlock) Decode(src *[memlayout.BlockSize]byte) {
	b.Major = binary.LittleEndian.Uint64(src[0:8])
	for i := range b.Minor {
		b.Minor[i] = uint8(getBits(src[8:], uint(i)*MinorBits, MinorBits))
	}
}

// SGXBlock is a monolithic counter block: eight 8 B counters, one per
// 64 B data block.
type SGXBlock struct {
	Ctr [SGXCounters]uint64
}

// Seed returns the encryption seed for the given slot.
func (b *SGXBlock) Seed(slot int) uint64 { return b.Ctr[slot] }

// Increment advances the counter for slot. A 64-bit counter never
// overflows in practice, so Increment always reports false.
func (b *SGXBlock) Increment(slot int) (overflow bool) {
	b.Ctr[slot]++
	return false
}

// Encode packs the block into its 64 B memory representation.
func (b *SGXBlock) Encode(dst *[memlayout.BlockSize]byte) {
	for i, c := range b.Ctr {
		binary.LittleEndian.PutUint64(dst[i*8:(i+1)*8], c)
	}
}

// Decode unpacks a 64 B memory representation.
func (b *SGXBlock) Decode(src *[memlayout.BlockSize]byte) {
	for i := range b.Ctr {
		b.Ctr[i] = binary.LittleEndian.Uint64(src[i*8 : (i+1)*8])
	}
}

// putBits writes width bits of v at bit offset off into buf.
func putBits(buf []byte, off, width uint, v uint64) {
	for i := uint(0); i < width; i++ {
		bit := (v >> i) & 1
		pos := off + i
		if bit != 0 {
			buf[pos/8] |= 1 << (pos % 8)
		} else {
			buf[pos/8] &^= 1 << (pos % 8)
		}
	}
}

// getBits reads width bits at bit offset off from buf.
func getBits(buf []byte, off, width uint) uint64 {
	var v uint64
	for i := uint(0); i < width; i++ {
		pos := off + i
		if buf[pos/8]&(1<<(pos%8)) != 0 {
			v |= 1 << i
		}
	}
	return v
}

// Pad is a 64 B one-time pad.
type Pad [memlayout.BlockSize]byte

// Cipher generates one-time pads with AES in counter mode. The slow
// pad generation is what real hardware overlaps with the DRAM access;
// here it provides the functional confidentiality guarantee.
type Cipher struct {
	block cipher.Block
}

// NewCipher creates a pad generator from a 16, 24, or 32-byte AES key.
func NewCipher(key []byte) (*Cipher, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("ctr: %w", err)
	}
	return &Cipher{block: b}, nil
}

// MustNewCipher is NewCipher but panics on error.
func MustNewCipher(key []byte) *Cipher {
	c, err := NewCipher(key)
	if err != nil {
		panic(err)
	}
	return c
}

// Pad derives the 64 B one-time pad for the data block at addr
// encrypted under the given counter seed. addr must be 64 B aligned;
// its free low bits index the four AES blocks of the pad.
func (c *Cipher) Pad(addr, seed uint64) Pad {
	if addr%memlayout.BlockSize != 0 {
		panic(fmt.Sprintf("ctr: unaligned address %#x", addr))
	}
	var pad Pad
	var in [aes.BlockSize]byte
	for i := 0; i < memlayout.BlockSize/aes.BlockSize; i++ {
		binary.LittleEndian.PutUint64(in[0:8], addr|uint64(i))
		binary.LittleEndian.PutUint64(in[8:16], seed)
		c.block.Encrypt(pad[i*aes.BlockSize:(i+1)*aes.BlockSize], in[:])
	}
	return pad
}

// XOR applies pad to src, writing the result to dst. Because XOR is
// an involution, the same call encrypts and decrypts. dst and src may
// be the same block.
func XOR(dst, src *[memlayout.BlockSize]byte, pad *Pad) {
	for i := range dst {
		dst[i] = src[i] ^ pad[i]
	}
}
