// Package bmt implements a functional Bonsai Merkle Tree: an 8-ary
// hash tree of truncated HMACs over the encryption-counter region,
// with the root held on chip. It detects tampering with — and replay
// of — counter blocks and tree nodes stored in off-chip memory.
package bmt

import (
	"fmt"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/secmem/mac"
	"github.com/maps-sim/mapsim/internal/secmem/store"
)

// VerificationError reports an integrity-check failure during a tree
// walk.
type VerificationError struct {
	// Addr is the block whose stored HMAC did not match.
	Addr memlayout.Addr
	// Level is the tree level of the mismatching parent, or -1 when
	// the mismatch was against the on-chip root.
	Level int
}

func (e *VerificationError) Error() string {
	if e.Level < 0 {
		return fmt.Sprintf("bmt: block %#x fails verification against the on-chip root", e.Addr)
	}
	return fmt.Sprintf("bmt: block %#x fails verification at tree level %d", e.Addr, e.Level)
}

// Tree verifies and maintains the integrity tree over the counter
// region of a layout. Tree nodes live in the backing store like any
// other metadata; only the root digest is on chip.
type Tree struct {
	layout *memlayout.Layout
	mem    *store.Memory
	keyed  *mac.Keyed
	root   mac.Tag
}

// New creates a tree for the given layout over mem, keyed with k, and
// builds the initial tree from the current counter-region contents.
func New(layout *memlayout.Layout, mem *store.Memory, k *mac.Keyed) *Tree {
	t := &Tree{layout: layout, mem: mem, keyed: k}
	t.Rebuild()
	return t
}

// Root returns the current on-chip root digest.
func (t *Tree) Root() mac.Tag { return t.root }

// Rebuild recomputes every tree node from the counter region and
// refreshes the on-chip root. Used at initialization and by tests.
func (t *Tree) Rebuild() {
	var child, node [memlayout.BlockSize]byte
	// Level 0: hash counter blocks.
	for lev := 0; lev < t.layout.TreeLevels(); lev++ {
		for idx := uint64(0); idx < t.layout.TreeLevelBlocks(lev); idx++ {
			nodeAddr := t.layout.TreeAddr(lev, idx)
			node = [memlayout.BlockSize]byte{}
			for slot := 0; slot < memlayout.TreeArity; slot++ {
				childAddr, ok := t.childAddr(lev, idx, slot)
				if !ok {
					break
				}
				t.mem.Read(childAddr, &child)
				tag := t.keyed.Sum(childAddr, 0, child[:])
				copy(node[slot*mac.Size:(slot+1)*mac.Size], tag[:])
			}
			t.mem.Write(nodeAddr, &node)
		}
	}
	top := t.layout.TreeAddr(t.layout.TreeLevels()-1, 0)
	t.mem.Read(top, &node)
	t.root = t.keyed.Sum(top, 0, node[:])
}

// childAddr returns the address of child `slot` of node idx at level
// lev, or ok=false if that slot is beyond the populated children.
func (t *Tree) childAddr(lev int, idx uint64, slot int) (memlayout.Addr, bool) {
	childIdx := idx*memlayout.TreeArity + uint64(slot)
	if lev == 0 {
		if childIdx >= t.layout.CounterBlocks() {
			return 0, false
		}
		return t.layout.CounterAddr(0) + childIdx*memlayout.BlockSize, true
	}
	if childIdx >= t.layout.TreeLevelBlocks(lev-1) {
		return 0, false
	}
	return t.layout.TreeAddr(lev-1, childIdx), true
}

// VerifyCounter checks the integrity of the counter block at
// counterAddr by walking its chain of tree nodes up to the on-chip
// root. It returns a *VerificationError if any stored HMAC
// mismatches.
//
// VerifyCounter models the full (uncached) traversal; the engine
// layered above decides how far to walk based on metadata-cache hits.
func (t *Tree) VerifyCounter(counterAddr memlayout.Addr) error {
	var blk, parentBlk [memlayout.BlockSize]byte
	addr := counterAddr
	t.mem.Read(addr, &blk)
	for {
		parent := t.layout.Parent(addr)
		tag := t.keyed.Sum(addr, 0, blk[:])
		if parent == memlayout.RootAddr {
			if tag != t.root {
				return &VerificationError{Addr: addr, Level: -1}
			}
			return nil
		}
		t.mem.Read(parent, &parentBlk)
		slot := t.layout.ChildSlot(addr)
		var stored mac.Tag
		copy(stored[:], parentBlk[slot*mac.Size:(slot+1)*mac.Size])
		if tag != stored {
			_, lev := t.layout.Classify(parent)
			return &VerificationError{Addr: addr, Level: lev}
		}
		addr, blk = parent, parentBlk
	}
}

// VerifyNode checks a single parent-child link: that the stored HMAC
// for the block at addr (a counter block or tree node) matches its
// parent's record. It is the unit step the engine uses when a cached
// ancestor truncates the walk.
func (t *Tree) VerifyNode(addr memlayout.Addr) error {
	var blk, parentBlk [memlayout.BlockSize]byte
	t.mem.Read(addr, &blk)
	tag := t.keyed.Sum(addr, 0, blk[:])
	parent := t.layout.Parent(addr)
	if parent == memlayout.RootAddr {
		if tag != t.root {
			return &VerificationError{Addr: addr, Level: -1}
		}
		return nil
	}
	t.mem.Read(parent, &parentBlk)
	slot := t.layout.ChildSlot(addr)
	var stored mac.Tag
	copy(stored[:], parentBlk[slot*mac.Size:(slot+1)*mac.Size])
	if tag != stored {
		_, lev := t.layout.Classify(parent)
		return &VerificationError{Addr: addr, Level: lev}
	}
	return nil
}

// UpdateCounter re-hashes the chain above counterAddr after its
// counter block has been written, updating every tree node on the
// path and the on-chip root. The write of the counter block itself is
// the caller's responsibility and must happen first.
func (t *Tree) UpdateCounter(counterAddr memlayout.Addr) {
	var blk, parentBlk [memlayout.BlockSize]byte
	addr := counterAddr
	t.mem.Read(addr, &blk)
	for {
		tag := t.keyed.Sum(addr, 0, blk[:])
		parent := t.layout.Parent(addr)
		if parent == memlayout.RootAddr {
			t.root = tag
			return
		}
		t.mem.Read(parent, &parentBlk)
		slot := t.layout.ChildSlot(addr)
		copy(parentBlk[slot*mac.Size:(slot+1)*mac.Size], tag[:])
		t.mem.Write(parent, &parentBlk)
		addr, blk = parent, parentBlk
	}
}
