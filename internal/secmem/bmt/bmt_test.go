package bmt

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/secmem/mac"
	"github.com/maps-sim/mapsim/internal/secmem/store"
)

func newTree(t *testing.T, org memlayout.Organization, dataBytes uint64) (*memlayout.Layout, *store.Memory, *Tree) {
	t.Helper()
	layout := memlayout.MustNew(org, dataBytes)
	mem := store.MustNew(layout.TotalBytes())
	keyed := mac.New([]byte("tree key"))
	// Put nonzero contents in a few counter blocks so the tree is not
	// hashing all-zero memory.
	rng := rand.New(rand.NewSource(3))
	var blk [memlayout.BlockSize]byte
	for i := uint64(0); i < layout.CounterBlocks(); i += 3 {
		rng.Read(blk[:])
		mem.Write(layout.CounterAddr(0)+i*memlayout.BlockSize, &blk)
	}
	return layout, mem, New(layout, mem, keyed)
}

func TestVerifyCleanCounters(t *testing.T) {
	layout, _, tree := newTree(t, memlayout.PoisonIvy, 4<<20)
	for i := uint64(0); i < layout.CounterBlocks(); i += 17 {
		addr := layout.CounterAddr(0) + i*memlayout.BlockSize
		if err := tree.VerifyCounter(addr); err != nil {
			t.Fatalf("clean counter %#x failed: %v", addr, err)
		}
	}
}

func TestVerifyDetectsCounterTamper(t *testing.T) {
	layout, mem, tree := newTree(t, memlayout.PoisonIvy, 4<<20)
	victim := layout.CounterAddr(100 * memlayout.PageSize)
	mem.FlipBit(victim, 13)
	err := tree.VerifyCounter(victim)
	var verr *VerificationError
	if !errors.As(err, &verr) {
		t.Fatalf("tampered counter verified: err=%v", err)
	}
	if verr.Addr != victim || verr.Level != 0 {
		t.Errorf("error = %+v, want addr %#x at level 0", verr, victim)
	}
	// Other counters (sharing upper tree levels) still verify.
	other := layout.CounterAddr(500 * memlayout.PageSize)
	if err := tree.VerifyCounter(other); err != nil {
		t.Errorf("untampered counter failed: %v", err)
	}
}

func TestVerifyDetectsTreeNodeTamper(t *testing.T) {
	layout, mem, tree := newTree(t, memlayout.PoisonIvy, 4<<20)
	victim := layout.CounterAddr(0)
	leaf := layout.TreeLeafFor(victim)
	mem.FlipBit(leaf, 200)
	err := tree.VerifyCounter(victim)
	var verr *VerificationError
	if !errors.As(err, &verr) {
		t.Fatalf("tampered leaf verified: err=%v", err)
	}
	// The mismatch could surface at the counter->leaf link (leaf's
	// stored tag was flipped) or at the leaf->parent link (leaf
	// contents changed); either way it must be detected.
}

func TestVerifyDetectsTopLevelTamperAgainstRoot(t *testing.T) {
	layout, mem, tree := newTree(t, memlayout.PoisonIvy, 4<<20)
	// The 4 MB layout's top node has only two populated child slots;
	// flipping a bit in unused slot 7 leaves every child link intact,
	// so the mismatch can only be caught by the on-chip root.
	top := layout.TreeAddr(layout.TreeLevels()-1, 0)
	mem.FlipBit(top, 7*memlayout.HashSize*8+2)
	err := tree.VerifyCounter(layout.CounterAddr(0))
	var verr *VerificationError
	if !errors.As(err, &verr) {
		t.Fatalf("tampered top node verified: err=%v", err)
	}
	if verr.Level != -1 {
		t.Errorf("mismatch level = %d, want -1 (root)", verr.Level)
	}
	if verr.Error() == "" {
		t.Error("empty error string")
	}
}

func TestUpdateCounterThenVerify(t *testing.T) {
	layout, mem, tree := newTree(t, memlayout.PoisonIvy, 4<<20)
	victim := layout.CounterAddr(7 * memlayout.PageSize)
	oldRoot := tree.Root()

	var blk [memlayout.BlockSize]byte
	mem.Read(victim, &blk)
	blk[0] ^= 0xFF // legitimate write through the controller
	mem.Write(victim, &blk)

	// Before the tree update the change looks like tampering.
	if err := tree.VerifyCounter(victim); err == nil {
		t.Fatal("stale tree accepted a modified counter")
	}
	tree.UpdateCounter(victim)
	if err := tree.VerifyCounter(victim); err != nil {
		t.Fatalf("verified update failed: %v", err)
	}
	if tree.Root() == oldRoot {
		t.Error("root unchanged after counter update")
	}
	// Unrelated counters still verify after the path update.
	if err := tree.VerifyCounter(layout.CounterAddr(900 * memlayout.PageSize)); err != nil {
		t.Errorf("unrelated counter failed after update: %v", err)
	}
}

func TestReplayAttackDetected(t *testing.T) {
	layout, mem, tree := newTree(t, memlayout.PoisonIvy, 4<<20)
	victim := layout.CounterAddr(3 * memlayout.PageSize)

	snap := mem.Snapshot(victim) // attacker records the old counter

	var blk [memlayout.BlockSize]byte
	mem.Read(victim, &blk)
	blk[5]++
	mem.Write(victim, &blk)
	tree.UpdateCounter(victim) // legitimate write & tree update

	mem.Restore(victim, snap) // attacker replays the stale counter
	if err := tree.VerifyCounter(victim); err == nil {
		t.Fatal("replayed counter block passed verification")
	}
}

func TestVerifyNodeSingleLink(t *testing.T) {
	layout, mem, tree := newTree(t, memlayout.PoisonIvy, 4<<20)
	c := layout.CounterAddr(0)
	if err := tree.VerifyNode(c); err != nil {
		t.Fatalf("clean single link failed: %v", err)
	}
	leaf := layout.TreeLeafFor(c)
	if err := tree.VerifyNode(leaf); err != nil {
		t.Fatalf("clean leaf link failed: %v", err)
	}
	top := layout.TreeAddr(layout.TreeLevels()-1, 0)
	if err := tree.VerifyNode(top); err != nil {
		t.Fatalf("clean top link failed: %v", err)
	}
	mem.FlipBit(c, 0)
	if err := tree.VerifyNode(c); err == nil {
		t.Fatal("tampered counter passed single-link check")
	}
	mem.FlipBit(top, 3)
	if err := tree.VerifyNode(top); err == nil {
		t.Fatal("tampered top passed root check")
	}
}

func TestSGXOrganizationTree(t *testing.T) {
	layout, mem, tree := newTree(t, memlayout.SGX, 2<<20)
	c := layout.CounterAddr(512 * 10)
	if err := tree.VerifyCounter(c); err != nil {
		t.Fatalf("clean SGX counter failed: %v", err)
	}
	mem.FlipBit(c, 77)
	if err := tree.VerifyCounter(c); err == nil {
		t.Fatal("tampered SGX counter verified")
	}
}

func TestRebuildAfterBulkChanges(t *testing.T) {
	layout, mem, tree := newTree(t, memlayout.PoisonIvy, 1<<20)
	// Scribble over many counters without tree maintenance, then
	// rebuild; everything verifies again.
	var blk [memlayout.BlockSize]byte
	rng := rand.New(rand.NewSource(9))
	for i := uint64(0); i < layout.CounterBlocks(); i++ {
		rng.Read(blk[:])
		mem.Write(layout.CounterAddr(0)+i*memlayout.BlockSize, &blk)
	}
	tree.Rebuild()
	for i := uint64(0); i < layout.CounterBlocks(); i += 11 {
		addr := layout.CounterAddr(0) + i*memlayout.BlockSize
		if err := tree.VerifyCounter(addr); err != nil {
			t.Fatalf("counter %#x failed after rebuild: %v", addr, err)
		}
	}
}

func TestTinyLayoutSingleLevel(t *testing.T) {
	// 4 KB of data: one counter block, one tree level with one node.
	layout := memlayout.MustNew(memlayout.PoisonIvy, memlayout.PageSize)
	mem := store.MustNew(layout.TotalBytes())
	tree := New(layout, mem, mac.New([]byte("k")))
	if layout.TreeLevels() != 1 {
		t.Fatalf("tree levels = %d, want 1", layout.TreeLevels())
	}
	c := layout.CounterAddr(0)
	if err := tree.VerifyCounter(c); err != nil {
		t.Fatalf("verify: %v", err)
	}
	mem.FlipBit(c, 9)
	if err := tree.VerifyCounter(c); err == nil {
		t.Fatal("tamper missed in single-level tree")
	}
}
