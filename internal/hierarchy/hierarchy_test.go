package hierarchy

import (
	"math/rand"
	"testing"
)

func TestLevelString(t *testing.T) {
	for l, s := range map[Level]string{L1: "L1", L2: "L2", L3: "L3", Memory: "memory"} {
		if l.String() != s {
			t.Errorf("%d.String() = %q", l, l.String())
		}
	}
	if Level(99).String() == "" {
		t.Error("unknown level should still print")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := Default()
	cfg.L1Size = 7
	if _, err := New(cfg); err == nil {
		t.Error("bad L1 accepted")
	}
	cfg = Default()
	cfg.L2Ways = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad L2 accepted")
	}
	cfg = Default()
	cfg.L3Size = 100
	if _, err := New(cfg); err == nil {
		t.Error("bad L3 accepted")
	}
}

func TestColdMissFillsAllLevels(t *testing.T) {
	h := MustNew(Default())
	out := h.Access(0, false)
	if out.Hit != Memory {
		t.Fatalf("cold access hit %v", out.Hit)
	}
	out = h.Access(0, false)
	if out.Hit != L1 {
		t.Fatalf("second access hit %v, want L1", out.Hit)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	cfg := Config{
		L1Size: 2 * 64, L1Ways: 2, // 1 set, 2 ways
		L2Size: 64 * 64, L2Ways: 8,
		L3Size: 1024 * 64, L3Ways: 8,
	}
	h := MustNew(cfg)
	h.Access(0, false)
	h.Access(64, false)
	h.Access(128, false) // evicts 0 from L1 (clean)
	out := h.Access(0, false)
	if out.Hit != L2 {
		t.Fatalf("hit %v, want L2", out.Hit)
	}
}

func TestDirtyCascadesToMemory(t *testing.T) {
	// Tiny single-set hierarchy: writing a stream of blocks must
	// eventually surface writebacks.
	cfg := Config{
		L1Size: 2 * 64, L1Ways: 2,
		L2Size: 2 * 64, L2Ways: 2,
		L3Size: 2 * 64, L3Ways: 2,
	}
	h := MustNew(cfg)
	var wb int
	for i := uint64(0); i < 32; i++ {
		out := h.Access(i*64*16, true) // distinct sets irrelevant: 1 set each
		wb += len(out.Writebacks)
	}
	if wb == 0 {
		t.Fatal("no writebacks from an all-store stream")
	}
}

func TestWritebackConservation(t *testing.T) {
	// Every written block is eventually written back exactly once:
	// during the run or at flush.
	cfg := Config{
		L1Size: 4 * 64, L1Ways: 4,
		L2Size: 8 * 64, L2Ways: 4,
		L3Size: 16 * 64, L3Ways: 4,
	}
	h := MustNew(cfg)
	written := map[uint64]bool{}
	got := map[uint64]int{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(64)) * 64
		write := rng.Intn(2) == 0
		if write {
			written[addr] = true
		}
		out := h.Access(addr, write)
		for _, wb := range out.Writebacks {
			got[wb]++
		}
	}
	for _, wb := range h.FlushWritebacks() {
		got[wb]++
	}
	for addr := range got {
		if !written[addr] {
			t.Errorf("block %#x written back but never stored", addr)
		}
	}
	// Every stored block must come back at least once (it was dirty
	// at some point and the hierarchy can't destroy dirty data).
	for addr := range written {
		if got[addr] == 0 {
			t.Errorf("stored block %#x never written back", addr)
		}
	}
}

func TestMPKIOrderingAcrossLevels(t *testing.T) {
	h := MustNew(Default())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		// 8 MB working set: misses at every level.
		addr := uint64(rng.Intn(8<<20/64)) * 64
		h.Access(addr, rng.Intn(5) == 0)
	}
	l1, l2, l3 := h.L1Stats(), h.L2Stats(), h.L3Stats()
	if !(l1.Misses >= l2.Misses && l2.Misses >= l3.Misses) {
		t.Errorf("miss filtering violated: L1 %d, L2 %d, L3 %d", l1.Misses, l2.Misses, l3.Misses)
	}
	if l3.Misses == 0 {
		t.Error("8MB working set should miss in 2MB LLC")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := MustNew(Default())
	h.Access(0, false)
	h.ResetStats()
	if h.L1Stats().Accesses != 0 {
		t.Error("stats not reset")
	}
	if out := h.Access(0, false); out.Hit != L1 {
		t.Error("contents lost on stats reset")
	}
	if h.LLCSize() != 2<<20 {
		t.Errorf("LLC size = %d", h.LLCSize())
	}
}
