// Package hierarchy models the processor's cache hierarchy (Table I:
// 32 KB L1, 256 KB L2, 2 MB L3, all 8-way) and produces the LLC
// miss/writeback stream that drives secure memory. Lower-level dirty
// evictions cascade downward; LLC dirty evictions surface to the
// caller as memory writebacks.
package hierarchy

import (
	"fmt"

	"github.com/maps-sim/mapsim/internal/cache"
	"github.com/maps-sim/mapsim/internal/cache/policy"
)

// Level identifies where an access was satisfied.
type Level int

// Hit levels. Memory means the access missed everywhere.
const (
	L1 Level = iota + 1
	L2
	L3
	Memory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config sets the geometry. The zero value is replaced by Table I's
// configuration via Default.
type Config struct {
	L1Size, L1Ways int
	L2Size, L2Ways int
	L3Size, L3Ways int
	// DisableFastPath forces every level's LRU through the generic
	// Policy interface instead of the cache's devirtualized fast path.
	// Results are bit-identical by contract; the cross-check tests use
	// this to prove it.
	DisableFastPath bool
}

// Default returns the paper's Table I hierarchy.
func Default() Config {
	return Config{
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 8,
		L3Size: 2 << 20, L3Ways: 8,
	}
}

// Outcome reports one access's journey.
type Outcome struct {
	// Hit is the level that supplied the data.
	Hit Level
	// Writebacks lists dirty blocks evicted from the LLC to memory
	// as a consequence of this access (at most a handful).
	Writebacks []uint64
}

// Hierarchy is a three-level, write-back, write-allocate,
// non-inclusive cache stack using true LRU at every level.
type Hierarchy struct {
	l1, l2, l3 *cache.Cache
	// scratch avoids an allocation per access.
	scratch []uint64
}

// New builds a hierarchy. Each level must satisfy the cache package's
// geometry rules.
func New(cfg Config) (*Hierarchy, error) {
	newLRU := func() cache.Policy {
		if cfg.DisableFastPath {
			return policy.Generic(policy.NewLRU())
		}
		return policy.NewLRU()
	}
	l1, err := cache.New(cfg.L1Size, cfg.L1Ways, newLRU())
	if err != nil {
		return nil, fmt.Errorf("hierarchy: L1: %w", err)
	}
	l2, err := cache.New(cfg.L2Size, cfg.L2Ways, newLRU())
	if err != nil {
		return nil, fmt.Errorf("hierarchy: L2: %w", err)
	}
	l3, err := cache.New(cfg.L3Size, cfg.L3Ways, newLRU())
	if err != nil {
		return nil, fmt.Errorf("hierarchy: L3: %w", err)
	}
	return &Hierarchy{l1: l1, l2: l2, l3: l3}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// L1Stats, L2Stats and L3Stats expose per-level counters.
func (h *Hierarchy) L1Stats() cache.Stats { return h.l1.Stats() }

// L2Stats returns the second-level counters.
func (h *Hierarchy) L2Stats() cache.Stats { return h.l2.Stats() }

// L3Stats returns the last-level counters.
func (h *Hierarchy) L3Stats() cache.Stats { return h.l3.Stats() }

// ResetStats zeroes all levels' counters (contents persist), for
// post-warmup measurement.
func (h *Hierarchy) ResetStats() {
	h.l1.ResetStats()
	h.l2.ResetStats()
	h.l3.ResetStats()
}

// LLCSize reports the last-level capacity in bytes.
func (h *Hierarchy) LLCSize() int { return h.l3.SizeBytes() }

// Access runs one data reference through the hierarchy. The returned
// Outcome's Writebacks slice is reused across calls; callers must
// consume it before the next Access.
func (h *Hierarchy) Access(addr uint64, write bool) Outcome {
	h.scratch = h.scratch[:0]
	out := Outcome{}

	hit1, ev1, dirty1 := h.l1.FastAccess(addr, write)
	if dirty1 {
		h.writeLower(h.l2, ev1)
	}
	if hit1 {
		out.Hit = L1
		out.Writebacks = h.scratch
		return out
	}

	hit2, ev2, dirty2 := h.l2.FastAccess(addr, false)
	if dirty2 {
		h.writeLower(h.l3, ev2)
	}
	if hit2 {
		out.Hit = L2
		out.Writebacks = h.scratch
		return out
	}

	hit3, ev3, dirty3 := h.l3.FastAccess(addr, false)
	if dirty3 {
		h.scratch = append(h.scratch, ev3)
	}
	if hit3 {
		out.Hit = L3
	} else {
		out.Hit = Memory
	}
	out.Writebacks = h.scratch
	return out
}

// writeLower installs a dirty block evicted from an upper level into
// the next level down, cascading further evictions. Writes into the
// LLC may push dirty blocks to memory.
func (h *Hierarchy) writeLower(c *cache.Cache, addr uint64) {
	_, evAddr, evDirty := c.FastAccess(addr, true)
	if !evDirty {
		return
	}
	if c == h.l2 {
		h.writeLower(h.l3, evAddr)
		return
	}
	h.scratch = append(h.scratch, evAddr)
}

// FlushWritebacks drains every dirty line in the hierarchy to memory
// addresses, used at simulation end so writeback accounting balances.
func (h *Hierarchy) FlushWritebacks() []uint64 {
	var out []uint64
	for _, l := range h.l1.Flush() {
		if l.Dirty {
			out = append(out, l.Addr)
		}
	}
	for _, l := range h.l2.Flush() {
		if l.Dirty {
			out = append(out, l.Addr)
		}
	}
	for _, l := range h.l3.Flush() {
		if l.Dirty {
			out = append(out, l.Addr)
		}
	}
	return out
}
