package hierarchy

import "testing"

// TestAccessZeroAllocs pins the hierarchy hot path at zero heap
// allocations per access once the writeback scratch buffer has grown
// to its steady-state capacity.
func TestAccessZeroAllocs(t *testing.T) {
	h := MustNew(Default())
	var x uint64 = 99
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33 % (1 << 18)) * 64 // 16 MB footprint: misses at every level
	}
	for i := 0; i < 200_000; i++ {
		h.Access(next(), i%4 == 0)
	}
	if avg := testing.AllocsPerRun(500, func() {
		h.Access(next(), true)
	}); avg != 0 {
		t.Errorf("Access allocates %v per call, want 0", avg)
	}
}
