package hierarchy

// Clone returns an independent hierarchy continuing from the current
// contents with all statistics zeroed, or false when any level's
// policy state cannot be snapshotted (see cache.Cache.Clone). The
// epoch-parallel driver clones hierarchies at epoch boundaries.
func (h *Hierarchy) Clone() (*Hierarchy, bool) {
	l1, ok := h.l1.Clone()
	if !ok {
		return nil, false
	}
	l2, ok := h.l2.Clone()
	if !ok {
		return nil, false
	}
	l3, ok := h.l3.Clone()
	if !ok {
		return nil, false
	}
	return &Hierarchy{l1: l1, l2: l2, l3: l3}, true
}

// Fingerprint digests the behavioral state of all three levels (see
// cache.Cache.Fingerprint for the convergence contract). Level
// position is mixed in so an L2/L3 content swap cannot cancel out.
func (h *Hierarchy) Fingerprint() uint64 {
	return h.l1.Fingerprint() ^ rotl(h.l2.Fingerprint(), 21) ^ rotl(h.l3.Fingerprint(), 42)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }
