package server

import (
	"net/http"
	"testing"
)

// With a single worker pinned by a long-running job, an identical
// queued submission must coalesce (singleflight) onto the queued job
// rather than enqueue a duplicate simulation.
func TestSubmitDedupsInflightJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	// Occupy the only worker so subsequent jobs stay queued.
	blocker := `{"type":"run","config":{"benchmark":"mcf","instructions":30000000}}`
	stBlock, _ := postJob(t, ts, blocker)

	queued := `{"type":"run","config":{"benchmark":"libquantum","instructions":20000000}}`
	st1, resp1 := postJob(t, ts, queued)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: status %d", resp1.StatusCode)
	}
	if st1.Deduped {
		t.Error("first submission reported deduped")
	}

	st2, resp2 := postJob(t, ts, queued)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("deduped submission: status %d, want 200", resp2.StatusCode)
	}
	if !st2.Deduped {
		t.Error("identical in-flight submission not deduped")
	}
	if st2.ID != st1.ID {
		t.Errorf("deduped submission got job %s, want the in-flight job %s", st2.ID, st1.ID)
	}
	if st2.Key != st1.Key {
		t.Errorf("key mismatch: %s vs %s", st2.Key, st1.Key)
	}

	// A different config must not coalesce.
	other := `{"type":"run","config":{"benchmark":"libquantum","instructions":20000000,"seed":2}}`
	st3, _ := postJob(t, ts, other)
	if st3.Deduped || st3.ID == st1.ID {
		t.Errorf("distinct config coalesced onto job %s", st1.ID)
	}

	// NoCache is a forced re-run: it must bypass singleflight too.
	forced := `{"type":"run","config":{"benchmark":"libquantum","instructions":20000000},"no_cache":true}`
	st4, _ := postJob(t, ts, forced)
	if st4.Deduped || st4.ID == st1.ID {
		t.Errorf("no_cache submission coalesced onto job %s", st1.ID)
	}

	if got := s.deduped.Load(); got != 1 {
		t.Errorf("dedup counter = %d, want 1", got)
	}

	// Cancelling the queued job must clear its registration so the
	// next identical submission gets a fresh job.
	for _, id := range []string{st1.ID, st3.ID, st4.ID, stBlock.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if _, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
	}
	st5, _ := postJob(t, ts, queued)
	if st5.Deduped || st5.ID == st1.ID {
		t.Errorf("submission after cancel coalesced onto dead job %s", st1.ID)
	}
}

// A finished job must not capture later submissions: once the run
// completes its singleflight registration is gone and the result cache
// (not dedup) answers.
func TestDedupClearsAfterCompletion(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	st1, _ := postJob(t, ts, smallRun)
	waitDone(t, ts, st1.ID)

	st2, _ := postJob(t, ts, smallRun)
	if st2.Deduped {
		t.Error("completed job still captured a new submission")
	}
	if !st2.CacheHit {
		t.Error("second submission of a finished config should be a cache hit")
	}
	if got := s.deduped.Load(); got != 0 {
		t.Errorf("dedup counter = %d, want 0", got)
	}
}
