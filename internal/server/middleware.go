package server

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"github.com/maps-sim/mapsim/internal/obs"
)

// statusRecorder captures the status code and response size a handler
// produced, for the access log and the per-status request counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

// WriteHeader records the status before delegating.
func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Write counts response bytes (and latches the implicit 200).
func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Flush delegates to the wrapped writer, keeping streaming responses
// (the sweep watch=1 NDJSON feed) working through the middleware —
// without it the wrapper hides the underlying http.Flusher and
// streaming handlers fall back to a single buffered response.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// httpStats counts served requests by status code for /metrics.
type httpStats struct {
	mu     sync.Mutex
	byCode map[int]uint64
}

func (h *httpStats) record(code int) {
	h.mu.Lock()
	if h.byCode == nil {
		h.byCode = make(map[int]uint64)
	}
	h.byCode[code]++
	h.mu.Unlock()
}

// snapshot returns a copy of the per-code counters.
func (h *httpStats) snapshot() map[int]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[int]uint64, len(h.byCode))
	for c, n := range h.byCode {
		out[c] = n
	}
	return out
}

// logMiddleware wraps the API mux: every request gets a request-scoped
// logger in its context (so downstream handlers inherit the method and
// path attrs), one access-log line on completion, and a per-status
// counter bump. /metrics and /healthz scrapes are counted but logged
// only at Debug — a 15-second Prometheus scrape interval would
// otherwise dominate the log.
func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		l := s.log.With("method", r.Method, "path", r.URL.Path)
		next.ServeHTTP(rec, r.WithContext(obs.Into(r.Context(), l)))
		s.http.record(rec.status)
		level := l.Info
		if r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			level = l.Debug
		}
		level("http request",
			"status", rec.status,
			"bytes", rec.bytes,
			"duration", time.Since(start),
			"remote", r.RemoteAddr)
	})
}

// recoverMiddleware isolates handler panics: the stack is logged, the
// mapsd_http_panics_total counter bumps, and the client gets a 500 —
// one request dies, not the connection's goroutine state or the
// daemon. (net/http would survive the panic too, but with a dropped
// connection and no accounting.) Headers may already be on the wire
// when the panic lands, in which case the error body is best-effort.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.httpPanics.Add(1)
				s.log.Error("handler panicked; request isolated",
					"method", r.Method,
					"path", r.URL.Path,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()))
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// metricsHTTPLines appends the per-status request counters in
// Prometheus text format, codes in ascending order for stable output.
func (h *httpStats) metricsLines() []string {
	snap := h.snapshot()
	codes := make([]int, 0, len(snap))
	for c := range snap {
		codes = append(codes, c)
	}
	// Insertion sort; the code set is tiny.
	for i := 1; i < len(codes); i++ {
		for j := i; j > 0 && codes[j] < codes[j-1]; j-- {
			codes[j], codes[j-1] = codes[j-1], codes[j]
		}
	}
	lines := make([]string, 0, len(codes)+1)
	lines = append(lines, "# TYPE mapsd_http_requests_total counter")
	for _, c := range codes {
		lines = append(lines, "mapsd_http_requests_total{code=\""+strconv.Itoa(c)+"\"} "+strconv.FormatUint(snap[c], 10))
	}
	return lines
}
