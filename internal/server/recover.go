package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/journal"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// sweepGridHash canonically fingerprints an expanded sweep grid: the
// sha256 over every point's result-store key, in grid order. A journal
// whose recorded hash no longer matches the grid re-expanded from its
// spec was written by a build with different expansion or keying
// semantics — resuming it would silently mix incompatible points, so
// replay quarantines it instead.
func sweepGridHash(points []sweep.Point) string {
	h := sha256.New()
	for _, p := range points {
		pol, part := sweep.CacheNames(p)
		key, err := results.PointKeyFor(p.Config, pol, part)
		if err != nil {
			// Unkeyable points still contribute deterministically so
			// the hash stays order- and content-sensitive.
			key = results.Key(fmt.Sprintf("!%d:%v", p.Index, err))
		}
		h.Write([]byte(key))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// recoverSweeps replays the journal directory and resumes every sweep
// that lacks a terminal status record. Terminal journals are evidence
// of finished work whose results live in the store; their files are
// removed. Called once from New, after the pool and store are serving.
func (s *Server) recoverSweeps() {
	sweeps, err := s.journal.Replay()
	if err != nil {
		s.log.Error("sweep journal replay failed; starting without recovery", "err", err)
		return
	}
	for _, sw := range sweeps {
		if sw.Status != nil {
			s.journal.Remove(sw.Admit.ID)
			continue
		}
		s.resumeSweep(sw)
	}
	s.evictSweeps(time.Now())
}

// resumeSweep validates a replayed journal against a fresh expansion
// of its recorded spec and, when the grids agree, reinstalls the sweep
// under its original ID. Any disagreement — undecodable spec, invalid
// grid, changed point count or grid hash — means the journal predates
// a semantic change; it is quarantined rather than half-resumed.
func (s *Server) resumeSweep(sw *journal.Sweep) {
	id := sw.Admit.ID
	var req SweepRequest
	if err := json.Unmarshal(sw.Admit.Spec, &req); err != nil {
		s.journal.Quarantine(id, fmt.Errorf("journaled spec undecodable: %w", err))
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		s.journal.Quarantine(id, fmt.Errorf("journaled spec invalid: %w", err))
		return
	}
	points, err := spec.Expand()
	if err != nil {
		s.journal.Quarantine(id, fmt.Errorf("journaled spec no longer expands: %w", err))
		return
	}
	if len(points) != sw.Admit.Total {
		s.journal.Quarantine(id, fmt.Errorf("grid size drifted: journal %d points, expansion %d",
			sw.Admit.Total, len(points)))
		return
	}
	if got := sweepGridHash(points); got != sw.Admit.GridHash {
		s.journal.Quarantine(id, fmt.Errorf("grid hash drifted: journal %s, expansion %s",
			sw.Admit.GridHash, got))
		return
	}
	s.installRecovered(id, sw, spec, req, points)
}

// installRecovered registers a validated recovered sweep under its
// original ID and restarts its coordinator with the journaled point
// completions pre-marked, so the store answers them without
// re-simulation.
func (s *Server) installRecovered(id string, sw *journal.Sweep, spec sweep.Spec, req SweepRequest, points []sweep.Point) {
	completed := make(map[int]bool, len(sw.Points))
	for _, p := range sw.Points {
		if p.Index >= 0 && p.Index < len(points) {
			completed[p.Index] = true
		}
	}

	wal, err := s.journal.Resume(sw)
	if err != nil {
		s.log.Warn("sweep journal resume failed; recovered sweep will not survive another restart",
			"sweep", id, "err", err)
		wal = nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &sweepJob{id: id, cancel: cancel, done: make(chan struct{}), wal: wal}
	j.status = SweepStatus{
		ID:      id,
		State:   jobs.StateRunning,
		Total:   len(points),
		Created: sw.Admit.Created,
	}
	s.mu.Lock()
	if n, ok := sweepSeqOf(id); ok && n > s.sweepSeq {
		s.sweepSeq = n
	}
	s.sweeps[id] = j
	s.mu.Unlock()
	s.sweepsStarted.Add(1)
	s.sweepsRecovered.Add(1)
	s.sweepPointsPlanned.Add(uint64(len(points)))

	s.startSweep(ctx, cancel, j, spec, req.Parallelism,
		time.Duration(req.TimeoutSec*float64(time.Second)), completed)

	s.log.Info("sweep recovered from journal",
		"sweep", id,
		"completed_points", len(completed),
		"total", len(points),
		"truncated_tail", sw.Truncated)
}

// sweepSeqOf extracts the numeric suffix of a server-allocated sweep
// ID ("s-%08d"). Recovery seeds the ID allocator past every recovered
// sweep so fresh submissions never collide with resumed ones.
func sweepSeqOf(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "s-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
