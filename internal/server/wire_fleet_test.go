package server

import (
	"strings"
	"testing"

	"github.com/maps-sim/mapsim/internal/dram"
	"github.com/maps-sim/mapsim/internal/hierarchy"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/sweep"
	"github.com/maps-sim/mapsim/internal/trace"
	"github.com/maps-sim/mapsim/internal/workload"
)

// TestSpecFromSimRoundTrip is the fleet's correctness keystone: every
// wire-expressible config must decode back to its exact content
// address, or a remote worker would simulate — and store — something
// subtly different from what the coordinator asked for.
func TestSpecFromSimRoundTrip(t *testing.T) {
	cases := []struct {
		name      string
		cfg       sim.Config
		policy    string
		partition string
	}{
		{name: "minimal", cfg: sim.Config{Benchmark: "canneal", Instructions: 10_000, Secure: true}},
		{name: "insecure", cfg: sim.Config{Benchmark: "fft", Instructions: 10_000}},
		{name: "meta defaults", cfg: sim.Config{
			Benchmark: "canneal", Instructions: 10_000, Secure: true,
			Meta: &metacache.Config{Size: 64 << 10, Ways: 8, Content: metacache.AllTypes},
		}},
		{name: "meta zero content", cfg: sim.Config{
			// Content 0 means AllTypes at materialization time; the wire
			// must preserve that equivalence, not change the hash.
			Benchmark: "libquantum", Instructions: 10_000, Secure: true,
			Meta: &metacache.Config{Size: 16 << 10, Ways: 8},
		}},
		{name: "counters with partial writes", cfg: sim.Config{
			Benchmark: "canneal", Instructions: 10_000, Secure: true,
			Meta: &metacache.Config{Size: 32 << 10, Ways: 4, Content: metacache.CountersOnly, PartialWrites: true},
		}},
		{name: "policy and partition names", cfg: sim.Config{
			Benchmark: "canneal", Instructions: 10_000, Secure: true,
			Meta: &metacache.Config{Size: 64 << 10, Ways: 8, Content: metacache.CountersHashes},
		}, policy: "srrip", partition: "dynamic"},
		{name: "sgx org with speculation", cfg: sim.Config{
			Benchmark: "fft", Instructions: 10_000, Secure: true,
			Org: memlayout.SGX, Speculation: true, SpeculationWindow: 32,
		}},
		{name: "custom hierarchy", cfg: sim.Config{
			Benchmark: "canneal", Instructions: 10_000, Secure: true,
			Hierarchy: hierarchy.Config{
				L1Size: 32 << 10, L1Ways: 8,
				L2Size: 256 << 10, L2Ways: 8,
				L3Size: 4 << 20, L3Ways: 16,
			},
		}},
		{name: "seed warmup cpi", cfg: sim.Config{
			Benchmark: "canneal", Instructions: 10_000, Warmup: 5_000,
			Seed: 42, Secure: true, BaseCPI: 1.5,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := results.PointKeyFor(tc.cfg, tc.policy, tc.partition)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := SpecFromSim(tc.cfg, tc.policy, tc.partition)
			if err != nil {
				t.Fatal(err)
			}
			back, err := spec.ToSim()
			if err != nil {
				t.Fatal(err)
			}
			pol, part, err := spec.pointNames()
			if err != nil {
				t.Fatal(err)
			}
			got, err := results.PointKeyFor(back, pol, part)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("round trip moved the content address:\n  direct: %s\n  wire:   %s\nspec: %+v", want, got, spec)
			}
		})
	}
}

// TestSpecFromSimRejectsInexpressible: configs the wire cannot carry
// faithfully must be refused, never approximated.
func TestSpecFromSimRejectsInexpressible(t *testing.T) {
	base := sim.Config{Benchmark: "canneal", Instructions: 10_000, Secure: true}
	pol, _ := sweep.NewPolicy("lru")
	cases := []struct {
		name string
		mut  func(c *sim.Config)
		want string
	}{
		{"workload", func(c *sim.Config) { c.Workload = workload.MustNew("canneal") }, "Workload"},
		{"tap", func(c *sim.Config) { c.Tap = func(trace.Access) {} }, "Tap"},
		{"custom dram", func(c *sim.Config) { c.DRAM = dram.Config{Banks: 16} }, "DRAM"},
		{"hit latency", func(c *sim.Config) { c.L2HitLatency = 12 }, "hit latencies"},
		{"stateful policy", func(c *sim.Config) {
			c.Meta = &metacache.Config{Size: 16 << 10, Ways: 8, Policy: pol}
		}, "stateful"},
		{"names without meta", nil, "metadata cache"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			policy := ""
			if tc.mut != nil {
				tc.mut(&cfg)
			} else {
				policy = "lru" // names without a metadata cache
			}
			_, err := SpecFromSim(cfg, policy, "")
			if err == nil {
				t.Fatal("want rejection")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
