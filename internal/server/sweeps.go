package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/maps-sim/mapsim/internal/fleet"
	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/journal"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sweep"
	wspec "github.com/maps-sim/mapsim/internal/workload/spec"
)

// maxSweepPoints caps one sweep's grid. A spec that expands past it is
// rejected with 400 rather than admitted and starved — split the sweep
// or raise the cap in code.
const maxSweepPoints = 4096

// SweepIntAxis is the wire form of sweep.IntAxis: byte-size points
// ("64KB" strings or numbers) or a min/max geometric range.
type SweepIntAxis struct {
	// Points lists explicit values in sweep order.
	Points []ByteSize `json:"points,omitempty"`
	// Min and Max bound a geometric range; Factor is its step
	// (default 2).
	Min    ByteSize `json:"min,omitempty"`
	Max    ByteSize `json:"max,omitempty"`
	Factor int      `json:"factor,omitempty"`
}

// toSweep converts to the engine's axis type.
func (a SweepIntAxis) toSweep() sweep.IntAxis {
	out := sweep.IntAxis{
		Min: int(a.Min), Max: int(a.Max), Factor: a.Factor,
	}
	for _, p := range a.Points {
		out.Points = append(out.Points, int(p))
	}
	return out
}

// SweepAxes is the wire form of sweep.Axes.
type SweepAxes struct {
	// Benchmarks, Secure, Contents, Policies, Partitions, and
	// PartialWrites sweep the corresponding sim.Config dimension;
	// LLC and Meta sweep capacities in bytes. Empty axes inherit the
	// base config.
	Benchmarks    []string     `json:"benchmarks,omitempty"`
	Secure        []bool       `json:"secure,omitempty"`
	LLC           SweepIntAxis `json:"llc,omitempty"`
	Meta          SweepIntAxis `json:"meta,omitempty"`
	Contents      []string     `json:"contents,omitempty"`
	Policies      []string     `json:"policies,omitempty"`
	Partitions    []string     `json:"partitions,omitempty"`
	PartialWrites []bool       `json:"partial_writes,omitempty"`
	// WorkloadSpecs extends the workload axis with declarative
	// multi-client specs, swept alongside (or instead of) Benchmarks.
	WorkloadSpecs []*wspec.Spec `json:"workload_specs,omitempty"`
}

// SweepRequest is the body of POST /v1/sweeps.
type SweepRequest struct {
	// Base is the configuration shared by every point (its Secure
	// default and Meta spec follow ConfigSpec rules); Axes declares
	// what varies.
	Base ConfigSpec `json:"base"`
	Axes SweepAxes  `json:"axes"`
	// Parallelism bounds the sweep's concurrent points (default: the
	// pool's worker count).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutSec caps each point's runtime; zero means no deadline.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// NoCache skips result-cache lookups; computed points are still
	// stored.
	NoCache bool `json:"no_cache,omitempty"`
}

// toSpec translates the wire request into an engine spec.
func (r SweepRequest) toSpec() (sweep.Spec, error) {
	base, err := r.Base.ToSim()
	if err != nil {
		return sweep.Spec{}, err
	}
	return sweep.Spec{
		Base:    base,
		NoCache: r.NoCache,
		Axes: sweep.Axes{
			Benchmarks:    r.Axes.Benchmarks,
			Secure:        r.Axes.Secure,
			LLC:           r.Axes.LLC.toSweep(),
			Meta:          r.Axes.Meta.toSweep(),
			Contents:      r.Axes.Contents,
			Policies:      r.Axes.Policies,
			Partitions:    r.Axes.Partitions,
			PartialWrites: r.Axes.PartialWrites,
			WorkloadSpecs: r.Axes.WorkloadSpecs,
		},
	}, nil
}

// SweepStatus is the wire form of a sweep's progress, returned by
// submit and status endpoints and streamed by ?watch=1.
type SweepStatus struct {
	ID string `json:"id"`
	// State is queued/running/done/failed/canceled (sweeps skip
	// queued: they start coordinating immediately and wait for pool
	// slots per point).
	State jobs.State `json:"state"`
	// Total, Done, and Deduped count grid points: planned, completed,
	// and served from the results cache without simulating.
	Total   int `json:"total"`
	Done    int `json:"done"`
	Deduped int `json:"deduped"`
	// Error is the first point failure (failed state).
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished,omitempty"`
	// Worker names the fleet worker that executed the most recently
	// completed point (empty for cached points), so each ?watch=1
	// stream line attributes the completion it reports.
	Worker string `json:"worker,omitempty"`
	// Workers counts completed points per fleet worker across the
	// sweep, so operators can see skew at a glance.
	Workers map[string]int `json:"workers,omitempty"`
}

// sweepJob is the server-side record of one sweep run.
type sweepJob struct {
	// id is the sweep's stable identifier, immutable after creation.
	id string
	// wal is the sweep's write-ahead journal; nil when journaling is
	// off or its admission failed (the sweep then runs fine but will
	// not survive a restart).
	wal *journal.Writer

	mu     sync.Mutex
	status SweepStatus
	result *sweep.Result
	cancel context.CancelFunc
	done   chan struct{} // closed on reaching a terminal state
}

// snapshot copies the current status under the lock, deep-copying the
// per-worker map so readers never alias the live counters.
func (j *sweepJob) snapshot() SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	if j.status.Workers != nil {
		st.Workers = make(map[string]int, len(j.status.Workers))
		for k, v := range j.status.Workers {
			st.Workers[k] = v
		}
	}
	return st
}

// registerSweepRoutes mounts the sweep endpoints on the API mux.
func (s *Server) registerSweepRoutes() {
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleSweepResult)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if err := faultSubmit.Hit(); err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterShed))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if s.draining.Load() || s.pool.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDraining))
		writeError(w, http.StatusServiceUnavailable, "%v", jobs.ErrDraining)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := req.toSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep base: %v", err)
		return
	}
	// Expand up front: a bad spec answers 400 before anything runs,
	// and Total is known from the first status response on.
	points, err := spec.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep: %v", err)
		return
	}
	if len(points) > maxSweepPoints {
		writeError(w, http.StatusBadRequest,
			"sweep expands to %d points, above the %d-point cap; split it", len(points), maxSweepPoints)
		return
	}

	// Submission doubles as the eviction trigger: finished sweeps past
	// their TTL, or past the registry cap, make room before this one
	// registers.
	s.evictSweeps(time.Now())

	ctx, cancel := context.WithCancel(context.Background())
	j := &sweepJob{cancel: cancel, done: make(chan struct{})}
	j.status = SweepStatus{
		State:   jobs.StateRunning,
		Total:   len(points),
		Created: time.Now(),
	}
	s.mu.Lock()
	s.sweepSeq++
	id := fmt.Sprintf("s-%08d", s.sweepSeq)
	j.id = id
	j.status.ID = id
	s.sweeps[id] = j
	s.mu.Unlock()
	s.sweepsStarted.Add(1)
	s.sweepPointsPlanned.Add(uint64(len(points)))
	j.wal = s.journalAdmit(id, req, points, j.status.Created)

	s.startSweep(ctx, cancel, j, spec, req.Parallelism,
		time.Duration(req.TimeoutSec*float64(time.Second)), nil)

	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// startSweep builds the sweep's fleet coordinator and runs it in its
// own goroutine, NOT as a pool job: a coordinator occupying a worker
// slot while waiting on its own point jobs could deadlock a full pool
// against itself. This daemon's pool is the first worker (bounded by
// parallelism), registered remotes are the rest; with no remotes this
// degenerates to exactly the single-node engine's behavior. completed
// pre-marks journal-recovered points (nil for fresh sweeps).
func (s *Server) startSweep(ctx context.Context, cancel context.CancelFunc, j *sweepJob,
	spec sweep.Spec, parallelism int, timeout time.Duration, completed map[int]bool) {
	if parallelism <= 0 {
		parallelism = s.pool.Stats().Workers
	}
	workers := make([]fleet.Worker, 0, len(s.fleetWorkers)+1)
	workers = append(workers, fleet.Worker{
		Runner:      &fleet.PoolRunner{Pool: s.pool},
		MaxInflight: parallelism,
	})
	workers = append(workers, s.fleetWorkers...)
	coord := &fleet.Coordinator{
		Workers:        workers,
		Cache:          s.store,
		Completed:      completed,
		Timeout:        timeout,
		StragglerAfter: s.stragglerAfter,
		Metrics:        s.fleetMetrics,
		Logger:         s.log,
		OnPoint: func(pr sweep.PointResult) {
			j.mu.Lock()
			j.status.Done++
			if pr.Cached {
				j.status.Deduped++
				s.sweepPointsDeduped.Add(1)
			}
			j.status.Worker = pr.Worker
			if pr.Worker != "" {
				if j.status.Workers == nil {
					j.status.Workers = make(map[string]int)
				}
				j.status.Workers[pr.Worker]++
			}
			j.mu.Unlock()
			s.sweepPointsDone.Add(1)
			s.journalPoint(j, pr)
		},
	}
	go func() {
		defer cancel()
		res, err := coord.Run(ctx, spec)
		j.mu.Lock()
		j.status.Finished = time.Now()
		switch {
		case err == nil:
			j.status.State = jobs.StateDone
			j.result = res
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			j.status.State = jobs.StateCanceled
			j.status.Error = err.Error()
		default:
			j.status.State = jobs.StateFailed
			j.status.Error = err.Error()
		}
		state, msg := j.status.State, j.status.Error
		j.mu.Unlock()
		if j.wal != nil {
			if state == jobs.StateCanceled && s.draining.Load() {
				// A draining shutdown is not a verdict on the sweep:
				// close the journal without a terminal record so the
				// next start resumes it exactly like a crash.
				j.wal.Close()
			} else {
				j.wal.Finish(journal.Status{State: string(state), Error: msg})
			}
		}
		close(j.done)
	}()
}

// journalAdmit opens the sweep's write-ahead log and records its
// admission. A nil return means journaling is off or degraded — the
// sweep runs fine but will not survive a restart (logged at Warn).
func (s *Server) journalAdmit(id string, req SweepRequest, points []sweep.Point, created time.Time) *journal.Writer {
	if s.journal == nil {
		return nil
	}
	spec, err := json.Marshal(req)
	if err == nil {
		var w *journal.Writer
		if w, err = s.journal.Create(journal.Admit{
			ID:       id,
			Created:  created.UTC(),
			Total:    len(points),
			GridHash: sweepGridHash(points),
			Spec:     spec,
		}); err == nil {
			return w
		}
	}
	s.log.Warn("sweep journal admission failed; sweep will not survive a restart",
		"sweep", id, "err", err)
	return nil
}

// journalPoint appends one completed point to the sweep's journal.
// Append failures degrade to an unjournaled point — a crash would
// re-dispatch it, and the store would answer — never a sweep failure.
func (s *Server) journalPoint(j *sweepJob, pr sweep.PointResult) {
	if j.wal == nil {
		return
	}
	pol, part := sweep.CacheNames(pr.Point)
	key, _ := results.PointKeyFor(pr.Point.Config, pol, part)
	if err := j.wal.Point(journal.Point{
		Index:  pr.Point.Index,
		Key:    string(key),
		Worker: pr.Worker,
		Cached: pr.Cached,
	}); err != nil {
		s.log.Debug("sweep journal append dropped",
			"sweep", j.id, "point", pr.Point.Index, "err", err)
	}
}

// evictSweeps drops finished sweeps from the registry: first every
// one finished longer than the TTL ago, then the oldest finished ones
// past the registry cap. Running sweeps are never evicted. A sweep's
// journal goes with its registry entry — by then its points live in
// the result store, so nothing irreplaceable is lost. Called
// opportunistically on submissions and /metrics scrapes.
func (s *Server) evictSweeps(now time.Time) {
	if s.sweepTTL <= 0 && s.maxSweeps <= 0 {
		return
	}
	type cand struct {
		id       string
		finished time.Time
	}
	s.mu.Lock()
	var terminal []cand
	for id, j := range s.sweeps {
		if st := j.snapshot(); st.State.Terminal() {
			terminal = append(terminal, cand{id, st.Finished})
		}
	}
	sort.Slice(terminal, func(i, k int) bool {
		return terminal[i].finished.Before(terminal[k].finished)
	})
	keep := len(s.sweeps)
	var evicted []string
	for _, c := range terminal {
		expired := s.sweepTTL > 0 && now.Sub(c.finished) > s.sweepTTL
		over := s.maxSweeps > 0 && keep > s.maxSweeps
		if !expired && !over {
			break
		}
		delete(s.sweeps, c.id)
		keep--
		evicted = append(evicted, c.id)
	}
	s.mu.Unlock()
	for _, id := range evicted {
		s.sweepsEvicted.Add(1)
		if s.journal != nil {
			s.journal.Remove(id)
		}
		s.log.Debug("sweep evicted", "sweep", id)
	}
}

// awaitSweeps blocks (bounded by ctx) until every sweep coordinator
// has recorded its terminal state and settled its journal — the
// shutdown step that makes a graceful restart resume cleanly.
func (s *Server) awaitSweeps(ctx context.Context) {
	s.mu.Lock()
	active := make([]*sweepJob, 0, len(s.sweeps))
	for _, j := range s.sweeps {
		active = append(active, j)
	}
	s.mu.Unlock()
	for _, j := range active {
		select {
		case <-j.done:
		case <-ctx.Done():
			return
		}
	}
}

// sweepByID looks up a sweep record.
func (s *Server) sweepByID(id string) (*sweepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.sweeps[id]
	return j, ok
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sweepByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("watch") == "" {
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	s.streamSweep(w, r, j)
}

// streamSweep writes newline-delimited SweepStatus JSON: one line per
// per-point completion count change, plus the terminal line, then
// closes. Clients see completion counts live instead of polling.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, j *sweepJob) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	lastDone := -1
	for {
		st := j.snapshot()
		if st.Done != lastDone || st.State.Terminal() {
			lastDone = st.Done
			if enc.Encode(st) != nil {
				return // client went away
			}
			flusher.Flush()
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-j.done:
			// Loop once more to emit the terminal line.
		case <-ticker.C:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sweepByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep %q", id)
		return
	}
	j.mu.Lock()
	st, res := j.status, j.result
	j.mu.Unlock()
	switch st.State {
	case jobs.StateDone:
		writeJSON(w, http.StatusOK, res)
	case jobs.StateRunning:
		writeError(w, http.StatusConflict,
			"sweep %s is running (%d/%d points); poll GET /v1/sweeps/%s until done", id, st.Done, st.Total, id)
	default:
		writeError(w, http.StatusConflict, "sweep %s is %s: %s", id, st.State, st.Error)
	}
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.sweepByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep %q", id)
		return
	}
	j.cancel()
	<-j.done // the coordinator records the terminal state
	writeJSON(w, http.StatusOK, j.snapshot())
}

// cancelSweeps aborts every non-terminal sweep; Shutdown calls it so
// coordinators never outlive the pool they submit to.
func (s *Server) cancelSweeps() {
	s.mu.Lock()
	active := make([]*sweepJob, 0, len(s.sweeps))
	for _, j := range s.sweeps {
		active = append(active, j)
	}
	s.mu.Unlock()
	for _, j := range active {
		j.cancel()
	}
}

// SweepStats reports cumulative sweep counters (tests and /metrics).
type SweepStats struct {
	// Started counts sweeps admitted; PointsPlanned, PointsDone, and
	// PointsDeduped count grid points across all of them. A deduped
	// point is also a done point.
	Started       uint64 `json:"started"`
	PointsPlanned uint64 `json:"points_planned"`
	PointsDone    uint64 `json:"points_done"`
	PointsDeduped uint64 `json:"points_deduped"`
}

// SweepStatsSnapshot returns the cumulative sweep counters.
func (s *Server) SweepStatsSnapshot() SweepStats {
	return SweepStats{
		Started:       s.sweepsStarted.Load(),
		PointsPlanned: s.sweepPointsPlanned.Load(),
		PointsDone:    s.sweepPointsDone.Load(),
		PointsDeduped: s.sweepPointsDeduped.Load(),
	}
}
