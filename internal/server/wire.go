package server

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/maps-sim/mapsim/internal/cliutil"
	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
)

// Job types accepted by POST /v1/jobs.
const (
	TypeRun   = "run"   // one benchmark, one sim.Result
	TypeSuite = "suite" // benchmark fan-out, one sim.SuiteResult
)

// ByteSize is an int byte count that also unmarshals from strings
// like "64KB" or "1MB", so curl requests read like the CLI flags.
type ByteSize int

// UnmarshalJSON accepts either a JSON number (bytes) or a size
// string understood by cliutil.ParseSize.
func (b *ByteSize) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		n, err := cliutil.ParseSize(s)
		if err != nil {
			return err
		}
		*b = ByteSize(n)
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*b = ByteSize(n)
	return nil
}

// MetaSpec is the wire form of metacache.Config. Replacement policy
// and partitioning are deliberately absent: they are stateful
// instances with no canonical encoding, so jobs always run the
// pseudo-LRU default (the paper's baseline) and stay cacheable.
type MetaSpec struct {
	Size ByteSize `json:"size"`
	// Ways defaults to 8 (Table I).
	Ways int `json:"ways,omitempty"`
	// Content names the content policy ("counters",
	// "counters+hashes", "all", ...); empty means all.
	Content       string `json:"content,omitempty"`
	PartialWrites bool   `json:"partial_writes,omitempty"`
}

// ConfigSpec is the wire form of sim.Config: the JSON-expressible
// subset (no Workload, Tap, Policy, or Partition — exactly the fields
// sim.Config.Canonical admits). Zero fields take the simulator's
// defaults, except Secure which defaults to true — a secure-memory
// service that silently simulated insecure baselines would be a trap.
type ConfigSpec struct {
	Benchmark         string    `json:"benchmark"`
	Instructions      uint64    `json:"instructions,omitempty"`
	Warmup            uint64    `json:"warmup,omitempty"`
	Seed              int64     `json:"seed,omitempty"`
	Secure            *bool     `json:"secure,omitempty"`
	Org               string    `json:"org,omitempty"` // "pi" (default) or "sgx"
	Speculation       bool      `json:"speculation,omitempty"`
	SpeculationWindow uint64    `json:"speculation_window,omitempty"`
	Meta              *MetaSpec `json:"meta,omitempty"`
	BaseCPI           float64   `json:"base_cpi,omitempty"`
}

// ToSim translates the wire config into a sim.Config.
func (c ConfigSpec) ToSim() (sim.Config, error) {
	cfg := sim.Config{
		Benchmark:         c.Benchmark,
		Instructions:      c.Instructions,
		Warmup:            c.Warmup,
		Seed:              c.Seed,
		Secure:            true,
		Speculation:       c.Speculation,
		SpeculationWindow: c.SpeculationWindow,
		BaseCPI:           c.BaseCPI,
	}
	if c.Secure != nil {
		cfg.Secure = *c.Secure
	}
	switch c.Org {
	case "", "pi", "poisonivy":
		cfg.Org = memlayout.PoisonIvy
	case "sgx":
		cfg.Org = memlayout.SGX
	default:
		return sim.Config{}, fmt.Errorf("unknown org %q (want pi or sgx)", c.Org)
	}
	if c.Meta != nil {
		if c.Meta.Size <= 0 {
			return sim.Config{}, fmt.Errorf("meta.size must be positive")
		}
		content, err := metacache.ParseContent(c.Meta.Content)
		if err != nil {
			return sim.Config{}, err
		}
		ways := c.Meta.Ways
		if ways == 0 {
			ways = 8
		}
		cfg.Meta = &metacache.Config{
			Size:          int(c.Meta.Size),
			Ways:          ways,
			Content:       content,
			PartialWrites: c.Meta.PartialWrites,
		}
	}
	return cfg, nil
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Type selects run or suite; empty defaults to run.
	Type   string     `json:"type,omitempty"`
	Config ConfigSpec `json:"config"`
	// Benchmarks restricts a suite fan-out (empty = full registry).
	// Run jobs must leave it empty and name Config.Benchmark instead.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Parallelism bounds a suite's concurrent simulations inside its
	// one job slot (default NumCPU).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutSec caps the job's runtime; zero means no deadline.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// NoCache skips the result-cache lookup (the computed result is
	// still stored), for forced re-runs.
	NoCache bool `json:"no_cache,omitempty"`
}

// JobStatus is the wire form of a job, returned by submit, status,
// and cancel endpoints.
type JobStatus struct {
	ID       string     `json:"id"`
	Type     string     `json:"type"`
	State    jobs.State `json:"state"`
	Key      string     `json:"key"`
	CacheHit bool       `json:"cache_hit"`
	// Deduped marks a submission that was coalesced onto an identical
	// job already queued or running (singleflight): the returned ID is
	// that existing job's, and polling it yields the shared result.
	Deduped  bool      `json:"deduped,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	Error    string    `json:"error,omitempty"`
}

// JobProgress is the body of GET /v1/jobs/{id}/progress: how far a
// running job's simulation has come, in retired instructions (warmup
// included). Counts are monotonically non-decreasing across polls of
// the same job. A cache-hit job never simulated, so its counts are
// zero while Fraction reports 1.
type JobProgress struct {
	ID    string     `json:"id"`
	State jobs.State `json:"state"`
	// InstructionsDone counts instructions retired so far; for suite
	// jobs it sums across the whole fan-out.
	InstructionsDone uint64 `json:"instructions_done"`
	// InstructionsTotal is the expected total (0 until the run
	// publishes it).
	InstructionsTotal uint64 `json:"instructions_total"`
	// Fraction is done/total in [0,1]; forced to 1 once the job is
	// done.
	Fraction float64 `json:"fraction"`
	// ElapsedSec is time since the first instruction retired.
	ElapsedSec float64 `json:"elapsed_sec"`
	// RemainingSec linearly extrapolates time left; 0 when unknown.
	RemainingSec float64 `json:"remaining_sec"`
	// CacheHit marks jobs answered from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// JobResult is the body of GET /v1/jobs/{id}/result. Exactly one of
// Run/Suite is set, matching Type.
type JobResult struct {
	ID    string           `json:"id"`
	Type  string           `json:"type"`
	Run   *sim.Result      `json:"run,omitempty"`
	Suite *sim.SuiteResult `json:"suite,omitempty"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}
