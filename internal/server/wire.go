package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/maps-sim/mapsim/internal/cliutil"
	"github.com/maps-sim/mapsim/internal/dram"
	"github.com/maps-sim/mapsim/internal/hierarchy"
	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/memlayout"
	"github.com/maps-sim/mapsim/internal/metacache"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/sweep"
	wspec "github.com/maps-sim/mapsim/internal/workload/spec"
)

// Job types accepted by POST /v1/jobs.
const (
	TypeRun   = "run"   // one benchmark, one sim.Result
	TypeSuite = "suite" // benchmark fan-out, one sim.SuiteResult
)

// ByteSize is an int byte count that also unmarshals from strings
// like "64KB" or "1MB", so curl requests read like the CLI flags.
type ByteSize int

// UnmarshalJSON accepts either a JSON number (bytes) or a size
// string understood by cliutil.ParseSize.
func (b *ByteSize) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		n, err := cliutil.ParseSize(s)
		if err != nil {
			return err
		}
		*b = ByteSize(n)
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*b = ByteSize(n)
	return nil
}

// MetaSpec is the wire form of metacache.Config. Replacement policy
// and partitioning travel as names, not instances: the server
// instantiates fresh stateful policy/partition objects per run (via
// sweep.Instantiate, the same path grid points take), and the names
// feed results.PointKeyFor so remotely executed sweep points land on
// exactly the same content address a local run would.
type MetaSpec struct {
	Size ByteSize `json:"size"`
	// Ways defaults to 8 (Table I).
	Ways int `json:"ways,omitempty"`
	// Content names the content policy ("counters",
	// "counters+hashes", "all", ...); empty means all.
	Content       string `json:"content,omitempty"`
	PartialWrites bool   `json:"partial_writes,omitempty"`
	// Policy names the replacement policy ("plru", "lru", "srrip",
	// "eva", ...); empty means the pseudo-LRU default. Run jobs only —
	// suites always run the default.
	Policy string `json:"policy,omitempty"`
	// Partition names the way-partition scheme; empty means none.
	// Run jobs only.
	Partition string `json:"partition,omitempty"`
}

// HierarchySpec is the wire form of hierarchy.Config: per-level cache
// sizes and associativities. Omitting the whole block keeps Table I's
// defaults; a partially filled block is taken literally (the
// simulator rejects impossible shapes at run time), so senders should
// fill every level — which is what SpecFromSim does.
type HierarchySpec struct {
	L1Size ByteSize `json:"l1_size,omitempty"`
	L1Ways int      `json:"l1_ways,omitempty"`
	L2Size ByteSize `json:"l2_size,omitempty"`
	L2Ways int      `json:"l2_ways,omitempty"`
	L3Size ByteSize `json:"l3_size,omitempty"`
	L3Ways int      `json:"l3_ways,omitempty"`
}

// ConfigSpec is the wire form of sim.Config: the JSON-expressible
// subset (no Workload or Tap — exactly the fields sim.Config.Canonical
// admits, with policy/partition as names). Zero fields take the
// simulator's defaults, except Secure which defaults to true — a
// secure-memory service that silently simulated insecure baselines
// would be a trap.
type ConfigSpec struct {
	Benchmark string `json:"benchmark"`
	// Workload, when set, is a declarative multi-client workload spec
	// replacing the named benchmark; Benchmark may be empty or must
	// equal the spec's name. Specs are pure data, so spec-driven jobs
	// canonicalize and dedupe exactly like named-benchmark jobs.
	Workload          *wspec.Spec    `json:"workload,omitempty"`
	Instructions      uint64         `json:"instructions,omitempty"`
	Warmup            uint64         `json:"warmup,omitempty"`
	Seed              int64          `json:"seed,omitempty"`
	Secure            *bool          `json:"secure,omitempty"`
	Org               string         `json:"org,omitempty"` // "pi" (default) or "sgx"
	Speculation       bool           `json:"speculation,omitempty"`
	SpeculationWindow uint64         `json:"speculation_window,omitempty"`
	Hierarchy         *HierarchySpec `json:"hierarchy,omitempty"`
	Meta              *MetaSpec      `json:"meta,omitempty"`
	BaseCPI           float64        `json:"base_cpi,omitempty"`
}

// ToSim translates the wire config into a sim.Config.
func (c ConfigSpec) ToSim() (sim.Config, error) {
	cfg := sim.Config{
		Benchmark:         c.Benchmark,
		WorkloadSpec:      c.Workload,
		Instructions:      c.Instructions,
		Warmup:            c.Warmup,
		Seed:              c.Seed,
		Secure:            true,
		Speculation:       c.Speculation,
		SpeculationWindow: c.SpeculationWindow,
		BaseCPI:           c.BaseCPI,
	}
	if c.Secure != nil {
		cfg.Secure = *c.Secure
	}
	if c.Hierarchy != nil {
		cfg.Hierarchy = hierarchy.Config{
			L1Size: int(c.Hierarchy.L1Size), L1Ways: c.Hierarchy.L1Ways,
			L2Size: int(c.Hierarchy.L2Size), L2Ways: c.Hierarchy.L2Ways,
			L3Size: int(c.Hierarchy.L3Size), L3Ways: c.Hierarchy.L3Ways,
		}
	}
	switch c.Org {
	case "", "pi", "poisonivy":
		cfg.Org = memlayout.PoisonIvy
	case "sgx":
		cfg.Org = memlayout.SGX
	default:
		return sim.Config{}, fmt.Errorf("unknown org %q (want pi or sgx)", c.Org)
	}
	if c.Meta != nil {
		if c.Meta.Size <= 0 {
			return sim.Config{}, fmt.Errorf("meta.size must be positive")
		}
		content, err := metacache.ParseContent(c.Meta.Content)
		if err != nil {
			return sim.Config{}, err
		}
		ways := c.Meta.Ways
		if ways == 0 {
			ways = 8
		}
		cfg.Meta = &metacache.Config{
			Size:          int(c.Meta.Size),
			Ways:          ways,
			Content:       content,
			PartialWrites: c.Meta.PartialWrites,
		}
	}
	return cfg, nil
}

// pointNames extracts and validates the config's replacement-policy
// and partition names, normalized so the defaults map to "" — sharing
// content addresses with plain default-policy jobs, exactly as
// sweep.CacheNames does for grid points.
func (c ConfigSpec) pointNames() (string, string, error) {
	if c.Meta == nil {
		return "", "", nil
	}
	pol := strings.ToLower(strings.TrimSpace(c.Meta.Policy))
	part := strings.ToLower(strings.TrimSpace(c.Meta.Partition))
	if _, err := sweep.NewPolicy(pol); err != nil {
		return "", "", err
	}
	if _, err := sweep.NewPartition(part); err != nil {
		return "", "", err
	}
	if pol == sweep.DefaultPolicy {
		pol = ""
	}
	if part == sweep.DefaultPartition {
		part = ""
	}
	return pol, part, nil
}

// SpecFromSim converts a materialized simulation config back to its
// wire form — the inverse of ConfigSpec.ToSim — so a coordinator can
// dispatch sweep grid points to remote workers. The policy and
// partition names (a point's, already normalized or not) ride in
// Meta. Configs carrying state or fields the wire cannot express
// (Workload, Tap, custom DRAM timing, custom hit latencies) are
// rejected: a remote worker would silently simulate something else.
func SpecFromSim(cfg sim.Config, policy, partition string) (ConfigSpec, error) {
	switch {
	case cfg.Workload != nil:
		return ConfigSpec{}, errors.New("config with a caller-supplied Workload is not wire-expressible")
	case cfg.TracePath != "":
		return ConfigSpec{}, errors.New("config with a TracePath is not wire-expressible (trace files are machine-local)")
	case cfg.Tap != nil:
		return ConfigSpec{}, errors.New("config with a Tap is not wire-expressible")
	case cfg.DRAM != (dram.Config{}):
		return ConfigSpec{}, errors.New("config with custom DRAM timing is not wire-expressible")
	case cfg.L2HitLatency != 0 || cfg.L3HitLatency != 0:
		return ConfigSpec{}, errors.New("config with custom hit latencies is not wire-expressible")
	}
	secure := cfg.Secure
	spec := ConfigSpec{
		Benchmark:         cfg.Benchmark,
		Workload:          cfg.WorkloadSpec,
		Instructions:      cfg.Instructions,
		Warmup:            cfg.Warmup,
		Seed:              cfg.Seed,
		Secure:            &secure,
		Speculation:       cfg.Speculation,
		SpeculationWindow: cfg.SpeculationWindow,
		BaseCPI:           cfg.BaseCPI,
	}
	switch cfg.Org {
	case memlayout.PoisonIvy:
		spec.Org = "pi"
	case memlayout.SGX:
		spec.Org = "sgx"
	default:
		return ConfigSpec{}, fmt.Errorf("unknown organization %v is not wire-expressible", cfg.Org)
	}
	h := cfg.Hierarchy
	h.DisableFastPath = false // erased in canonicalization, carries no identity
	if h != (hierarchy.Config{}) {
		spec.Hierarchy = &HierarchySpec{
			L1Size: ByteSize(h.L1Size), L1Ways: h.L1Ways,
			L2Size: ByteSize(h.L2Size), L2Ways: h.L2Ways,
			L3Size: ByteSize(h.L3Size), L3Ways: h.L3Ways,
		}
	}
	if cfg.Meta != nil {
		if cfg.Meta.Policy != nil || cfg.Meta.Partition != nil {
			return ConfigSpec{}, errors.New("config with a stateful Meta.Policy or Meta.Partition is not wire-expressible (send names instead)")
		}
		content := ""
		if cfg.Meta.Content != 0 {
			content = cfg.Meta.Content.String()
			if _, err := metacache.ParseContent(content); err != nil {
				return ConfigSpec{}, fmt.Errorf("content policy %v is not wire-expressible", cfg.Meta.Content)
			}
		}
		spec.Meta = &MetaSpec{
			Size:          ByteSize(cfg.Meta.Size),
			Ways:          cfg.Meta.Ways,
			Content:       content,
			PartialWrites: cfg.Meta.PartialWrites,
			Policy:        policy,
			Partition:     partition,
		}
	} else if policy != "" || partition != "" {
		return ConfigSpec{}, errors.New("policy/partition names require a metadata cache")
	}
	return spec, nil
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Type selects run or suite; empty defaults to run.
	Type   string     `json:"type,omitempty"`
	Config ConfigSpec `json:"config"`
	// Benchmarks restricts a suite fan-out (empty = full registry).
	// Run jobs must leave it empty and name Config.Benchmark instead.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Parallelism bounds a suite's concurrent simulations inside its
	// one job slot (default NumCPU).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutSec caps the job's runtime; zero means no deadline.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// NoCache skips the result-cache lookup (the computed result is
	// still stored), for forced re-runs.
	NoCache bool `json:"no_cache,omitempty"`
}

// JobStatus is the wire form of a job, returned by submit, status,
// and cancel endpoints.
type JobStatus struct {
	ID       string     `json:"id"`
	Type     string     `json:"type"`
	State    jobs.State `json:"state"`
	Key      string     `json:"key"`
	CacheHit bool       `json:"cache_hit"`
	// Deduped marks a submission that was coalesced onto an identical
	// job already queued or running (singleflight): the returned ID is
	// that existing job's, and polling it yields the shared result.
	Deduped  bool      `json:"deduped,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	Error    string    `json:"error,omitempty"`
}

// JobProgress is the body of GET /v1/jobs/{id}/progress: how far a
// running job's simulation has come, in retired instructions (warmup
// included). Counts are monotonically non-decreasing across polls of
// the same job. A cache-hit job never simulated, so its counts are
// zero while Fraction reports 1.
type JobProgress struct {
	ID    string     `json:"id"`
	State jobs.State `json:"state"`
	// InstructionsDone counts instructions retired so far; for suite
	// jobs it sums across the whole fan-out.
	InstructionsDone uint64 `json:"instructions_done"`
	// InstructionsTotal is the expected total (0 until the run
	// publishes it).
	InstructionsTotal uint64 `json:"instructions_total"`
	// Fraction is done/total in [0,1]; forced to 1 once the job is
	// done.
	Fraction float64 `json:"fraction"`
	// ElapsedSec is time since the first instruction retired.
	ElapsedSec float64 `json:"elapsed_sec"`
	// RemainingSec linearly extrapolates time left; 0 when unknown.
	RemainingSec float64 `json:"remaining_sec"`
	// CacheHit marks jobs answered from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// JobResult is the body of GET /v1/jobs/{id}/result. Exactly one of
// Run/Suite is set, matching Type.
type JobResult struct {
	ID    string           `json:"id"`
	Type  string           `json:"type"`
	Run   *sim.Result      `json:"run,omitempty"`
	Suite *sim.SuiteResult `json:"suite,omitempty"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}
