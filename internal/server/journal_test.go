package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/faults"
	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/journal"
	"github.com/maps-sim/mapsim/internal/results"
	"github.com/maps-sim/mapsim/internal/sim"
	"github.com/maps-sim/mapsim/internal/store"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// newJournalServer starts a "daemon" whose sweep journal and result
// store both live under dir, returning an explicit shutdown func so a
// test can stop one instance and start the next against the same
// directories — the in-process restart.
func newJournalServer(t *testing.T, dir string, workers int) (*Server, *httptest.Server, *journal.Dir, func()) {
	t.Helper()
	jd, err := journal.Open(journal.Options{Dir: filepath.Join(dir, "journal")})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{
		Memory: results.New(64),
		Dir:    filepath.Join(dir, "store"),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: workers, QueueDepth: 16, Store: st, Journal: jd})
	ts := httptest.NewServer(s.Handler())
	done := false
	shutdown := func() {
		if done {
			return
		}
		done = true
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
	t.Cleanup(shutdown)
	return s, ts, jd, shutdown
}

// sanitizeResult strips the run-dependent fields (wall time, worker
// attribution, cache provenance, phase timing) so two runs of the same
// sweep can be compared byte for byte.
func sanitizeResult(t *testing.T, res *sweep.Result) []byte {
	t.Helper()
	cp := *res
	cp.Wall = 0
	cp.Deduped = 0
	cp.Points = append([]sweep.PointResult(nil), res.Points...)
	for i := range cp.Points {
		cp.Points[i].Worker = ""
		cp.Points[i].Cached = false
		if cp.Points[i].Result != nil {
			r := *cp.Points[i].Result
			r.Timing = sim.PhaseTiming{}
			cp.Points[i].Result = &r
		}
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepRestartResume is the in-process restart drill: stop a
// daemon mid-sweep (graceful shutdown closes the journal without a
// terminal record), start a second one over the same journal and store
// directories, and the sweep resumes under its original ID, serves the
// already-finished points from the store without re-simulating them,
// and produces a result byte-identical to an uninterrupted run.
func TestSweepRestartResume(t *testing.T) {
	dir := t.TempDir()
	_, ts1, _, shutdown1 := newJournalServer(t, dir, 1)

	// One worker and several multi-million-instruction points keep the
	// sweep running long enough to interrupt deterministically.
	body := `{
		"base": {"instructions": 8000000, "speculation": true},
		"axes": {"benchmarks": ["fft"], "meta": {"points": ["16KB", "32KB", "64KB", "128KB"]}}
	}`
	st, resp := postSweep(t, ts1, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	id, total := st.ID, st.Total

	// Wait for at least one completed point, so the restart has
	// something to recover.
	deadline := time.Now().Add(30 * time.Second)
	var done1 int
	for time.Now().Before(deadline) {
		var cur SweepStatus
		getJSON(t, ts1, "/v1/sweeps/"+id, &cur)
		if done1 = cur.Done; done1 >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if done1 < 1 {
		t.Fatal("sweep made no progress before shutdown")
	}
	shutdown1()

	s2, ts2, jd2, _ := newJournalServer(t, dir, 2)
	if s2.SweepsRecovered() != 1 {
		t.Fatalf("SweepsRecovered = %d, want 1 (journal stats %+v)",
			s2.SweepsRecovered(), jd2.Stats())
	}
	// The sweep reattaches under its original ID.
	final := waitSweepDone(t, ts2, id)
	if final.State != jobs.StateDone || final.Done != total {
		t.Fatalf("recovered sweep: %+v", final)
	}
	// Every point the first daemon finished was served from the store,
	// not re-simulated: the second daemon's pool only saw the rest.
	if final.Deduped < done1 {
		t.Fatalf("Deduped = %d, want >= %d recovered points", final.Deduped, done1)
	}
	if got := s2.PoolStats().Submitted; got != uint64(total-final.Deduped) {
		t.Fatalf("restart daemon simulated %d points, want %d", got, total-final.Deduped)
	}
	var res sweep.Result
	if resp := getJSON(t, ts2, "/v1/sweeps/"+id+"/result", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}

	// Fresh IDs keep advancing past the recovered sweep.
	st2, _ := postSweep(t, ts2, sweepBody)
	if st2.ID == id {
		t.Fatalf("fresh sweep reused recovered ID %q", id)
	}

	// Byte-identity against an uninterrupted run on a fresh daemon.
	_, ts3, _, _ := newJournalServer(t, filepath.Join(t.TempDir(), "fresh"), 2)
	ref, _ := postSweep(t, ts3, body)
	refSt := waitSweepDone(t, ts3, ref.ID)
	if refSt.State != jobs.StateDone {
		t.Fatalf("reference sweep: %+v", refSt)
	}
	var refRes sweep.Result
	getJSON(t, ts3, "/v1/sweeps/"+ref.ID+"/result", &refRes)
	if got, want := sanitizeResult(t, &res), sanitizeResult(t, &refRes); string(got) != string(want) {
		t.Fatalf("recovered result differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestSweepRecoveryQuarantinesDriftedGrid plants a journal whose
// admission no longer matches what its spec expands to; startup must
// quarantine it rather than resume against the wrong grid.
func TestSweepRecoveryQuarantinesDriftedGrid(t *testing.T) {
	dir := t.TempDir()
	jd, err := journal.Open(journal.Options{Dir: filepath.Join(dir, "journal")})
	if err != nil {
		t.Fatal(err)
	}
	w, err := jd.Create(journal.Admit{
		ID:       "s-00000042",
		Created:  time.Now().UTC(),
		Total:    999, // sweepBody expands to 4 points
		GridHash: "bogus",
		Spec:     json.RawMessage(sweepBody),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts, jd2, _ := newJournalServer(t, dir, 1)
	if jd2.Stats().Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", jd2.Stats().Quarantined)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/s-00000042")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drifted sweep answered %d, want 404", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal", "quarantine", "s-00000042.wal")); err != nil {
		t.Fatalf("quarantined journal missing: %v", err)
	}
}

// TestSweepEviction covers both eviction triggers: the registry cap
// evicts the oldest finished sweeps, the TTL evicts expired ones, and
// either way the journal file goes too.
func TestSweepEviction(t *testing.T) {
	dir := t.TempDir()
	jd, err := journal.Open(journal.Options{Dir: filepath.Join(dir, "journal")})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16,
		Journal: jd, MaxSweeps: 2, SweepTTL: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	var ids []string
	for i := 0; i < 3; i++ {
		st, _ := postSweep(t, ts, sweepBody)
		waitSweepDone(t, ts, st.ID)
		ids = append(ids, st.ID)
	}
	// The scrape runs the eviction pass: 3 finished sweeps, cap 2.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := s.SweepsEvicted(); got != 1 {
		t.Fatalf("SweepsEvicted = %d, want 1", got)
	}
	r0, _ := http.Get(ts.URL + "/v1/sweeps/" + ids[0])
	r0.Body.Close()
	if r0.StatusCode != http.StatusNotFound {
		t.Fatalf("oldest sweep still answers %d, want 404", r0.StatusCode)
	}
	r1, _ := http.Get(ts.URL + "/v1/sweeps/" + ids[1])
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("kept sweep answers %d, want 200", r1.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal", ids[0]+".wal")); !os.IsNotExist(err) {
		t.Fatalf("evicted sweep's journal still on disk (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal", ids[1]+".wal")); err != nil {
		t.Fatalf("kept sweep's journal missing: %v", err)
	}

	// TTL path: a server whose finished sweeps expire immediately.
	s2 := New(Config{Workers: 2, QueueDepth: 16, CacheEntries: 16,
		SweepTTL: time.Nanosecond})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})
	st, _ := postSweep(t, ts2, sweepBody)
	waitSweepDone(t, ts2, st.ID)
	time.Sleep(5 * time.Millisecond)
	r, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if got := s2.SweepsEvicted(); got != 1 {
		t.Fatalf("TTL eviction: SweepsEvicted = %d, want 1", got)
	}
}

// TestSweepJournalAppendChaos arms the journal.append fault at full
// rate: every append drops, and the sweep must still run to completion
// — journal loss degrades recovery, never availability.
func TestSweepJournalAppendChaos(t *testing.T) {
	t.Cleanup(faults.Reset)
	if err := faults.P(journal.FaultAppend).Arm(faults.Injection{Mode: faults.ModeErr}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	_, ts, jd, _ := newJournalServer(t, dir, 2)
	st, resp := postSweep(t, ts, sweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	final := waitSweepDone(t, ts, st.ID)
	if final.State != jobs.StateDone || final.Done != final.Total {
		t.Fatalf("sweep under append faults: %+v", final)
	}
	if jd.Stats().DroppedAppends == 0 {
		t.Fatal("append fault armed but nothing dropped")
	}
}
