package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/maps-sim/mapsim/internal/jobs"
	"github.com/maps-sim/mapsim/internal/sweep"
)

// sweepBody is a miniature fig1 grid: 1 benchmark × 2 meta sizes × 2
// content policies, cheap enough for tests.
const sweepBody = `{
	"base": {"instructions": 20000, "speculation": true},
	"axes": {
		"benchmarks": ["fft"],
		"meta": {"points": ["16KB", "64KB"]},
		"contents": ["counters", "all"]
	}
}`

func postSweep(t *testing.T, ts *httptest.Server, body string) (SweepStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var st SweepStatus
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
	}
	return st, resp
}

func waitSweepDone(t *testing.T, ts *httptest.Server, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st SweepStatus
		getJSON(t, ts, "/v1/sweeps/"+id, &st)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish", id)
	return SweepStatus{}
}

// TestSweepEndToEndWithDedupe is the acceptance check from the sweep
// issue: the same spec POSTed twice reports >0 deduped points the
// second time, served from the shared results cache.
func TestSweepEndToEndWithDedupe(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16, CacheEntries: 64})

	st, resp := postSweep(t, ts, sweepBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st.Total != 4 {
		t.Fatalf("total %d, want 4", st.Total)
	}
	st = waitSweepDone(t, ts, st.ID)
	if st.State != jobs.StateDone || st.Done != 4 || st.Deduped != 0 {
		t.Fatalf("first sweep: %+v", st)
	}

	var res sweep.Result
	if resp := getJSON(t, ts, "/v1/sweeps/"+st.ID+"/result", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	if len(res.Points) != 4 || res.Points[0].Result == nil {
		t.Fatalf("result shape: %d points", len(res.Points))
	}

	st2, _ := postSweep(t, ts, sweepBody)
	st2 = waitSweepDone(t, ts, st2.ID)
	if st2.State != jobs.StateDone || st2.Deduped == 0 {
		t.Fatalf("second sweep not deduped: %+v", st2)
	}

	if stats := s.SweepStatsSnapshot(); stats.Started != 2 || stats.PointsDeduped == 0 {
		t.Fatalf("sweep stats: %+v", stats)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	metrics := buf.String()
	for _, want := range []string{
		"mapsd_sweeps_started_total 2",
		"mapsd_sweep_points_planned_total 8",
		"mapsd_sweep_points_deduped_total 4",
		"mapsd_sweeps_running 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// The watch=1 stream must deliver monotonically non-decreasing Done
// counts ending in a terminal state, as newline-delimited JSON.
func TestSweepWatchStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16, CacheEntries: 16})
	st, _ := postSweep(t, ts, sweepBody)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var last SweepStatus
	lastDone := -1
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if last.Done < lastDone {
			t.Fatalf("Done went backwards: %d then %d", lastDone, last.Done)
		}
		lastDone = last.Done
	}
	if !last.State.Terminal() || last.State != jobs.StateDone || last.Done != last.Total {
		t.Fatalf("stream did not end terminal: %+v", last)
	}
}

func TestSweepBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	cases := map[string]string{
		"unknown field":  `{"base": {}, "axes": {}, "bogus": 1}`,
		"unknown bench":  `{"base": {"instructions": 1000}, "axes": {"benchmarks": ["quake4"]}}`,
		"no benchmark":   `{"base": {"instructions": 1000}, "axes": {}}`,
		"axis w/o meta":  `{"base": {"instructions": 1000}, "axes": {"benchmarks": ["fft"], "policies": ["lru"]}}`,
		"unknown policy": `{"base": {"instructions": 1000}, "axes": {"benchmarks": ["fft"], "meta": {"points": ["64KB"]}, "policies": ["mru"]}}`,
		"inverted range": `{"base": {"instructions": 1000}, "axes": {"benchmarks": ["fft"], "meta": {"min": "64KB", "max": "16KB"}}}`,
	}
	for name, body := range cases {
		if _, resp := postSweep(t, ts, body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", name, resp.StatusCode)
		}
	}

	// A grid above maxSweepPoints is rejected before anything runs.
	points := make([]string, 0, maxSweepPoints+1)
	for i := 0; i <= maxSweepPoints; i++ {
		points = append(points, `"16KB"`)
	}
	big := fmt.Sprintf(`{"base": {"instructions": 1000}, "axes": {"benchmarks": ["fft"], "meta": {"points": [%s]}}}`,
		strings.Join(points, ","))
	if _, resp := postSweep(t, ts, big); resp.StatusCode != http.StatusRequestEntityTooLarge &&
		resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized grid: got %d, want 400 or 413", resp.StatusCode)
	}
}

func TestSweepCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, CacheEntries: 8})
	// One worker and several slow points keep the sweep running long
	// enough to cancel deterministically.
	body := `{
		"base": {"instructions": 3000000, "speculation": true},
		"axes": {"benchmarks": ["fft"], "meta": {"points": ["16KB", "32KB", "64KB", "128KB"]}}
	}`
	st, _ := postSweep(t, ts, body)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.State.Terminal() {
		t.Fatalf("cancel returned non-terminal state %s", got.State)
	}
	if got.State == jobs.StateDone && got.Done != got.Total {
		t.Fatalf("done sweep with %d/%d points", got.Done, got.Total)
	}

	// The result endpoint answers 409 for a canceled sweep.
	if got.State == jobs.StateCanceled {
		r2, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusConflict {
			t.Fatalf("result of canceled sweep: %d, want 409", r2.StatusCode)
		}
	}
}

func TestSweepNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	for _, path := range []string{"/v1/sweeps/s-99999999", "/v1/sweeps/s-99999999/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: got %d, want 404", path, resp.StatusCode)
		}
	}
}
